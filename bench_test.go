// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation section, plus ablation benchmarks for the design choices called
// out in DESIGN.md and micro-benchmarks of the hot paths.
//
// The figure benchmarks run the full simulation-and-query pipeline at a
// reduced (but representative) workload per iteration and attach the paper's
// accuracy metrics to the benchmark output via b.ReportMetric, so a single
//
//	go test -bench=Fig -benchmem
//
// regenerates the relative PF-vs-SM picture of every figure. The full-scale
// numbers recorded in EXPERIMENTS.md come from cmd/experiments.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/anchor"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/particle"
	"repro/internal/rfid"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/walkgraph"
)

// benchParams is the reduced workload used by the figure benchmarks.
func benchParams() experiments.Params {
	p := experiments.Quick()
	p.Objects = 30
	p.WarmupSeconds = 60
	p.Timestamps = 3
	p.RangeWindows = 10
	p.KNNPoints = 5
	return p
}

// reportAccuracy attaches the paper's metrics to the benchmark output.
func reportAccuracy(b *testing.B, m experiments.Measurement) {
	b.ReportMetric(m.PFKL, "PF_KL")
	b.ReportMetric(m.SMKL, "SM_KL")
	b.ReportMetric(m.PFHit, "PF_hit")
	b.ReportMetric(m.SMHit, "SM_hit")
	b.ReportMetric(m.Top1, "top1")
	b.ReportMetric(m.Top2, "top2")
}

func runFigurePoint(b *testing.B, p experiments.Params) {
	b.Helper()
	var m experiments.Measurement
	var err error
	for i := 0; i < b.N; i++ {
		m, err = experiments.Run(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAccuracy(b, m)
}

// BenchmarkFig09QueryWindowSize regenerates Figure 9: range query KL
// divergence (PF vs SM) as the query window grows from 1% to 5% of the
// floor area.
func BenchmarkFig09QueryWindowSize(b *testing.B) {
	for _, pct := range []float64{1, 2, 3, 4, 5} {
		b.Run(fmt.Sprintf("window=%g%%", pct), func(b *testing.B) {
			p := benchParams()
			p.WindowPct = pct
			runFigurePoint(b, p)
		})
	}
}

// BenchmarkFig10K regenerates Figure 10: kNN average hit rate (PF vs SM) for
// k from 2 to 9.
func BenchmarkFig10K(b *testing.B) {
	for _, k := range []int{2, 3, 5, 7, 9} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			p := benchParams()
			p.K = k
			runFigurePoint(b, p)
		})
	}
}

// BenchmarkFig11Particles regenerates Figure 11: KL divergence, kNN hit
// rate, and top-k success rate as the particle count sweeps 2 to 512.
func BenchmarkFig11Particles(b *testing.B) {
	for _, ns := range []int{2, 8, 64, 512} {
		b.Run(fmt.Sprintf("particles=%d", ns), func(b *testing.B) {
			p := benchParams()
			p.Particles = ns
			runFigurePoint(b, p)
		})
	}
}

// BenchmarkFig12Objects regenerates Figure 12: the same metrics as the
// population scales 1x to 5x.
func BenchmarkFig12Objects(b *testing.B) {
	for _, n := range []int{30, 90, 150} {
		b.Run(fmt.Sprintf("objects=%d", n), func(b *testing.B) {
			p := benchParams()
			p.Objects = n
			runFigurePoint(b, p)
		})
	}
}

// BenchmarkFig13ActivationRange regenerates Figure 13: the same metrics as
// the reader activation range sweeps 0.5 m to 2.5 m.
func BenchmarkFig13ActivationRange(b *testing.B) {
	for _, r := range []float64{0.5, 1.0, 1.5, 2.0, 2.5} {
		b.Run(fmt.Sprintf("range=%gm", r), func(b *testing.B) {
			p := benchParams()
			p.ActivationRange = r
			runFigurePoint(b, p)
		})
	}
}

// Ablation benchmarks: design choices called out in DESIGN.md.

// BenchmarkAblationResampling compares the paper's systematic resampling
// (Algorithm 1) with the multinomial baseline.
func BenchmarkAblationResampling(b *testing.B) {
	for _, variant := range []struct {
		name string
		fn   particle.ResampleFunc
	}{
		{"systematic", particle.Systematic},
		{"multinomial", particle.Multinomial},
	} {
		b.Run(variant.name, func(b *testing.B) {
			p := benchParams()
			p.Tweak = func(c *engine.Config) { c.Particle.Resample = variant.fn }
			runFigurePoint(b, p)
		})
	}
}

// BenchmarkAblationAnchorSpacing sweeps the anchor point spacing: finer
// anchors improve resolution at index and query cost.
func BenchmarkAblationAnchorSpacing(b *testing.B) {
	for _, s := range []float64{0.5, 1.0, 2.0} {
		b.Run(fmt.Sprintf("spacing=%gm", s), func(b *testing.B) {
			p := benchParams()
			p.Tweak = func(c *engine.Config) { c.AnchorSpacing = s }
			runFigurePoint(b, p)
		})
	}
}

// BenchmarkAblationNegativeInfo measures the benefit of treating silent
// seconds as observations (an extension over the paper's Algorithm 2).
func BenchmarkAblationNegativeInfo(b *testing.B) {
	for _, on := range []bool{true, false} {
		b.Run(fmt.Sprintf("negative=%v", on), func(b *testing.B) {
			p := benchParams()
			p.Tweak = func(c *engine.Config) { c.Particle.UseNegativeInfo = on }
			runFigurePoint(b, p)
		})
	}
}

// BenchmarkAblationRoomExit sweeps the particle room-exit probability
// around the paper's 0.1.
func BenchmarkAblationRoomExit(b *testing.B) {
	for _, pr := range []float64{0.05, 0.1, 0.2} {
		b.Run(fmt.Sprintf("exit=%g", pr), func(b *testing.B) {
			p := benchParams()
			p.Tweak = func(c *engine.Config) { c.Particle.RoomExitProb = pr }
			runFigurePoint(b, p)
		})
	}
}

// benchSystem builds a warmed-up system + simulator for the latency
// benchmarks.
func benchSystem(b *testing.B, tweak func(*engine.Config)) (*engine.System, *sim.Simulator) {
	b.Helper()
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	cfg := engine.DefaultConfig()
	if tweak != nil {
		tweak(&cfg)
	}
	sys := engine.MustNew(plan, dep, cfg)
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 50
	tc.DwellMin, tc.DwellMax = 2, 10
	world := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), tc, 123)
	for i := 0; i < 120; i++ {
		t, raws := world.Step()
		sys.Ingest(t, raws)
	}
	return sys, world
}

// BenchmarkAblationPruning measures snapshot range query latency with the
// query aware optimization module on and off.
func BenchmarkAblationPruning(b *testing.B) {
	for _, on := range []bool{true, false} {
		b.Run(fmt.Sprintf("pruning=%v", on), func(b *testing.B) {
			sys, _ := benchSystem(b, func(c *engine.Config) {
				c.UsePruning = on
				c.UseCache = false
			})
			win := geom.RectWH(10, 9, 10, 6)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.RangeQuery(win)
			}
		})
	}
}

// BenchmarkAblationCache measures repeated-query latency with the cache
// management module on and off (Section 4.5's claimed benefit).
func BenchmarkAblationCache(b *testing.B) {
	for _, on := range []bool{true, false} {
		b.Run(fmt.Sprintf("cache=%v", on), func(b *testing.B) {
			sys, _ := benchSystem(b, func(c *engine.Config) { c.UseCache = on })
			win := geom.RectWH(10, 9, 30, 6)
			sys.RangeQuery(win) // populate
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.RangeQuery(win)
			}
		})
	}
}

// BenchmarkRegistryEventDriven measures registered-query maintenance with
// the critical-device optimization on and off, during quiet stretches (no
// readings): the event-driven registry skips untouched range queries.
func BenchmarkRegistryEventDriven(b *testing.B) {
	for _, on := range []bool{true, false} {
		b.Run(fmt.Sprintf("eventDriven=%v", on), func(b *testing.B) {
			sys, _ := benchSystem(b, nil)
			reg := engine.NewRegistry(sys)
			reg.SetEventDriven(on)
			for i := 0; i < 6; i++ {
				reg.RegisterRange(geom.RectWH(2+float64(i)*10, 11, 8, 2), 0.5)
			}
			reg.Evaluate() // baseline
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.Ingest(sys.Now()+1, nil) // a quiet second
				reg.Evaluate()
			}
		})
	}
}

// BenchmarkPTKNN measures the probabilistic threshold kNN evaluation.
func BenchmarkPTKNN(b *testing.B) {
	sys, _ := benchSystem(b, nil)
	q := geom.Pt(35, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.PTKNNQuery(q, 3, 0.3)
	}
}

// Micro-benchmarks of the hot paths.

// BenchmarkParticleStep measures one motion-model step of a full particle
// set.
func BenchmarkParticleStep(b *testing.B) {
	plan := floorplan.DefaultOffice()
	g := walkgraph.MustBuild(plan)
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	f := particle.MustNew(particle.DefaultConfig(), g, dep)
	src := rng.New(1)
	st := f.InitAt(src, 1, 0, 0)
	cfg := f.Config()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range st.Particles {
			cfg.Step(src, g, &st.Particles[j], 1.0)
		}
	}
}

// BenchmarkFilterRun measures a full Algorithm 2 run for one object with a
// two-device reading history.
func BenchmarkFilterRun(b *testing.B) {
	plan := floorplan.DefaultOffice()
	g := walkgraph.MustBuild(plan)
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	f := particle.MustNew(particle.DefaultConfig(), g, dep)
	src := rng.New(1)
	entries := []model.AggregatedReading{
		{Object: 1, Reader: 2, Time: 0},
		{Object: 1, Reader: 2, Time: 1},
		{Object: 1, Reader: 2, Time: 2},
		{Object: 1, Reader: 3, Time: 10},
		{Object: 1, Reader: 3, Time: 11},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Run(src, 1, entries, 30); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDijkstra measures a single-source shortest path over the office
// walking graph.
func BenchmarkDijkstra(b *testing.B) {
	g := walkgraph.MustBuild(floorplan.DefaultOffice())
	loc := g.NearestLocation(geom.Pt(35, 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.DistancesFromLocation(loc)
	}
}

// BenchmarkAStarVsDijkstra compares the two network-distance algorithms on
// the two-story office (the larger built-in graph).
func BenchmarkAStarVsDijkstra(b *testing.B) {
	g := walkgraph.MustBuild(floorplan.TwoStoryOffice())
	src := rng.New(1)
	type pair struct{ a, z walkgraph.Location }
	pairs := make([]pair, 256)
	for i := range pairs {
		e1 := g.Edge(walkgraph.EdgeID(src.Intn(g.NumEdges())))
		e2 := g.Edge(walkgraph.EdgeID(src.Intn(g.NumEdges())))
		pairs[i] = pair{
			a: walkgraph.Location{Edge: e1.ID, Offset: src.Uniform(0, e1.Length)},
			z: walkgraph.Location{Edge: e2.ID, Offset: src.Uniform(0, e2.Length)},
		}
	}
	b.Run("astar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			g.AStar(p.a, p.z)
		}
	})
	b.Run("dijkstra", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			g.DistBetween(p.a, p.z)
		}
	})
}

// BenchmarkAnchorSnap measures nearest-anchor assignment.
func BenchmarkAnchorSnap(b *testing.B) {
	g := walkgraph.MustBuild(floorplan.DefaultOffice())
	idx := anchor.MustBuildIndex(g, anchor.DefaultSpacing)
	src := rng.New(1)
	locs := make([]walkgraph.Location, 1024)
	for i := range locs {
		e := g.Edge(walkgraph.EdgeID(src.Intn(g.NumEdges())))
		locs[i] = walkgraph.Location{Edge: e.ID, Offset: src.Uniform(0, e.Length)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Snap(locs[i%len(locs)])
	}
}

// BenchmarkRangeQueryEval measures Algorithm 3 against a populated table.
func BenchmarkRangeQueryEval(b *testing.B) {
	sys, _ := benchSystem(b, nil)
	tab := sys.Preprocess(sys.Collector().KnownObjects())
	win := geom.RectWH(10, 9, 10, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.RangeQueryOn(tab, win)
	}
}

// BenchmarkKNNQueryEval measures Algorithm 4 against a populated table.
func BenchmarkKNNQueryEval(b *testing.B) {
	sys, _ := benchSystem(b, nil)
	tab := sys.Preprocess(sys.Collector().KnownObjects())
	q := geom.Pt(35, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.KNNQueryOn(tab, q, 3)
	}
}
