// Quickstart: build the paper's office, stream simulated RFID readings into
// the system for two minutes, then ask one indoor range query and one indoor
// kNN query and compare both answers with the ground truth.
package main

import (
	"fmt"

	"repro"
)

func main() {
	// 1. The indoor space: 30 rooms, 4 hallways, and 19 RFID readers with
	//    2 m activation ranges deployed uniformly along the hallways.
	plan := repro.DefaultOffice()
	dep := repro.MustDeployUniform(plan, repro.DefaultReaders, repro.DefaultActivationRange)

	// 2. The query evaluation system (particle filter, anchor index, cache).
	sys := repro.MustNewSystem(plan, dep, repro.DefaultConfig())

	// 3. A simulator standing in for the physical world: 25 people walking
	//    between rooms, read by the noisy sensors.
	tc := repro.DefaultTraceConfig()
	tc.NumObjects = 25
	world := repro.MustNewSimulator(sys.Graph(), repro.NewSensor(dep), tc, 42)

	// 4. Stream two minutes of raw readings into the system.
	for i := 0; i < 120; i++ {
		t, raws := world.Step()
		sys.Ingest(t, raws)
	}

	// 5. Indoor range query: who is in the north-west quadrant?
	window := repro.RectWH(2, 18, 28, 14)
	answer := sys.RangeQuery(window)
	fmt.Printf("range query %v\n", window)
	fmt.Printf("  ground truth: %v\n", world.TrueRange(window))
	for _, obj := range repro.TopKObjects(answer, 5) {
		fmt.Printf("  o%-3d P(in window) = %.2f\n", obj, answer[obj])
	}

	// 6. Indoor kNN query: the 3 nearest people to the middle of the south
	//    hallway, by shortest indoor walking distance.
	q := repro.Pt(35, 12)
	knn := sys.KNNQuery(q, 3)
	fmt.Printf("\n3NN query at %v\n", q)
	fmt.Printf("  ground truth: %v\n", world.TrueKNN(q, 3))
	fmt.Printf("  answer:       %v (hit rate %.2f)\n",
		repro.TopKObjects(knn, 3), repro.HitRate(knn.Objects(), world.TrueKNN(q, 3)))
}
