// Security zone monitoring: a facilities team marks two restricted zones of
// an office floor and registers continuous range queries over them. The
// system cleanses the noisy RFID stream with the particle filter and raises
// an event whenever a badge's probability of being inside a zone crosses a
// threshold — the kind of probabilistic trigger raw RFID data is too noisy
// to drive directly. The example also contrasts the particle filter's answer
// with the symbolic baseline to show why the filter is worth its cost.
package main

import (
	"fmt"

	"repro"
)

func main() {
	plan := repro.DefaultOffice()
	dep := repro.MustDeployUniform(plan, repro.DefaultReaders, repro.DefaultActivationRange)
	sys := repro.MustNewSystem(plan, dep, repro.DefaultConfig())

	tc := repro.DefaultTraceConfig()
	tc.NumObjects = 30
	world := repro.MustNewSimulator(sys.Graph(), repro.NewSensor(dep), tc, 99)

	for i := 0; i < 100; i++ {
		t, raws := world.Step()
		sys.Ingest(t, raws)
	}

	zones := map[string]repro.Rect{
		"server-room-wing": repro.RectWH(55, 25, 14, 11), // north-east rooms
		"records-corridor": repro.RectWH(40, 11, 20, 2),  // east stretch of the south hallway
	}
	monitors := make(map[string]*repro.ContinuousRange, len(zones))
	for name, zone := range zones {
		monitors[name] = repro.NewContinuousRange(zone, 0.5)
	}

	fmt.Println("monitoring restricted zones (threshold P >= 0.5):")
	for round := 0; round < 8; round++ {
		for i := 0; i < 10; i++ {
			t, raws := world.Step()
			sys.Ingest(t, raws)
		}
		for _, name := range []string{"records-corridor", "server-room-wing"} {
			zone := zones[name]
			answer := sys.RangeQuery(zone)
			entered, left := monitors[name].Update(answer)
			for _, o := range entered {
				fmt.Printf("t=%4d  ALERT  badge o%d entered %s (P=%.2f, truly inside: %v)\n",
					sys.Now(), o, name, answer[o], contains(world.TrueRange(zone), o))
			}
			for _, o := range left {
				fmt.Printf("t=%4d  clear  badge o%d left %s\n", sys.Now(), o, name)
			}
		}
	}

	// Side-by-side with the symbolic baseline on the last snapshot.
	zone := zones["server-room-wing"]
	pf := sys.RangeQuery(zone)
	smv := sys.SMRangeQuery(zone)
	truth := repro.ResultSet{}
	for _, o := range world.TrueRange(zone) {
		truth[o] = 1
	}
	fmt.Printf("\nfinal snapshot of %v:\n", zone)
	fmt.Printf("  truth: %v\n", world.TrueRange(zone))
	fmt.Printf("  particle filter KL = %.3f, symbolic model KL = %.3f (lower is better)\n",
		repro.KLDivergence(truth, pf), repro.KLDivergence(truth, smv))
}

func contains(ids []repro.ObjectID, o repro.ObjectID) bool {
	for _, id := range ids {
		if id == o {
			return true
		}
	}
	return false
}
