// Multi-floor deployment: a two-story office joined by staircases. Objects
// roam both floors; queries are answered per floor and across floors, with
// the shortest indoor walking distance correctly routing through the stairs
// — the subway-station scale the paper's introduction motivates.
package main

import (
	"fmt"

	"repro"
)

func main() {
	plan := repro.TwoStoryOffice()
	// 19 readers per floor, deployed uniformly over all hallways.
	dep := repro.MustDeployUniform(plan, 38, repro.DefaultActivationRange)
	sys := repro.MustNewSystem(plan, dep, repro.DefaultConfig())

	tc := repro.DefaultTraceConfig()
	tc.NumObjects = 40
	tc.DwellMin, tc.DwellMax = 2, 10
	world := repro.MustNewSimulator(sys.Graph(), repro.NewSensor(dep), tc, 17)

	fmt.Printf("two-story office: %d rooms, %d hallways, %d staircases, %d readers\n",
		len(plan.Rooms()), len(plan.Hallways()), len(plan.Links()), dep.NumReaders())

	for i := 0; i < 300; i++ {
		t, raws := world.Step()
		sys.Ingest(t, raws)
	}

	// Population per floor (ground floor occupies x < 70).
	floorOf := func(p repro.Point) string {
		if p.X < 70 {
			return "ground"
		}
		return "upper"
	}
	counts := map[string]int{}
	for _, o := range world.Objects() {
		counts[floorOf(world.TruePosition(o))]++
	}
	fmt.Printf("true population: %d on ground, %d upstairs\n\n", counts["ground"], counts["upper"])

	// Per-floor occupancy estimates from one preprocessing pass.
	groundWin := repro.RectWH(1, 3, 68, 30)
	upperWin := repro.RectWH(73, 3, 68, 30)
	gRS := sys.RangeQuery(groundWin)
	uRS := sys.RangeQuery(upperWin)
	fmt.Printf("estimated occupancy: ground %.1f, upper %.1f (expected object-counts)\n",
		gRS.TotalProb(), uRS.TotalProb())

	// Cross-floor kNN: nearest colleagues to someone at the upper stair
	// landing — candidates on the ground floor are reachable through the
	// 8 m staircase, and the network distance accounts for it.
	q := repro.Pt(74, 18)
	knn := sys.KNNQuery(q, 4)
	fmt.Printf("\n4NN at the upper stair landing %v:\n", q)
	for _, o := range repro.TopKObjects(knn, 4) {
		p := world.TruePosition(o)
		fmt.Printf("  o%-3d P=%.2f  (truly on %s floor at %v)\n", o, knn[o], floorOf(p), p)
	}
	truth := world.TrueKNN(q, 4)
	fmt.Printf("  ground truth: %v  hit rate: %.2f\n", truth, repro.HitRate(knn.Objects(), truth))
}
