// Asset tracking: follow one tagged object (a hospital infusion pump, say)
// through the building in real time, then reconstruct where it was earlier —
// the RFID track-and-trace application that motivates the paper, built on
// the localization API and historical queries.
package main

import (
	"fmt"

	"repro"
)

func main() {
	plan := repro.DefaultOffice()
	dep := repro.MustDeployUniform(plan, repro.DefaultReaders, repro.DefaultActivationRange)
	cfg := repro.DefaultConfig()
	cfg.KeepHistory = true // enable historical reconstruction
	sys := repro.MustNewSystem(plan, dep, cfg)

	tc := repro.DefaultTraceConfig()
	tc.NumObjects = 12
	tc.DwellMin, tc.DwellMax = 3, 12
	world := repro.MustNewSimulator(sys.Graph(), repro.NewSensor(dep), tc, 31)

	const asset = repro.ObjectID(4)
	roomName := func(r repro.RoomID) string {
		if r == -1 {
			return "hallway"
		}
		return "room " + plan.Room(r).Name
	}

	fmt.Printf("tracking asset o%d (estimate vs truth every 15 s):\n\n", asset)
	for i := 1; i <= 150; i++ {
		t, raws := world.Step()
		sys.Ingest(t, raws)
		if i%15 != 0 {
			continue
		}
		loc, ok := sys.Localize(asset)
		truePos := world.TruePosition(asset)
		if !ok {
			fmt.Printf("t=%4d  (no readings yet)  truth=%v\n", t, truePos)
			continue
		}
		fmt.Printf("t=%4d  est=%v (%s, P=%.2f, entropy %.2f)  truth=%v  err=%.1f m\n",
			t, loc.Mean, roomName(loc.Room), loc.RoomProb, loc.Entropy,
			truePos, loc.Mean.Dist(truePos))
	}

	// Room-level odds right now.
	fmt.Printf("\nwhere is o%d now?\n", asset)
	if odds, ok := sys.RoomDistribution(asset); ok {
		for i, ro := range odds {
			if i >= 4 {
				break
			}
			fmt.Printf("  %-12s P=%.2f\n", roomName(ro.Room), ro.P)
		}
	}

	// Historical reconstruction: where was it a minute ago?
	past := sys.Now() - 60
	fmt.Printf("\nwhere was o%d at t=%d? (historical query)\n", asset, past)
	rs := sys.KNNQueryAt(repro.Pt(35, 12), 3, past)
	fmt.Printf("  3NN of (35,12) back then: %v\n", repro.TopKObjects(rs, 3))
}
