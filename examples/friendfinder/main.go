// Friend finder: the paper's motivating application. A user standing in a
// large indoor space (think subway station or convention center) registers a
// continuous kNN query — "keep telling me which three friends are nearest to
// me" — and the system maintains the answer as everyone moves, reporting
// only membership changes. A closest-pairs query at the end finds the two
// friends most likely to be walking together.
package main

import (
	"fmt"

	"repro"
)

func main() {
	plan := repro.DefaultOffice()
	dep := repro.MustDeployUniform(plan, repro.DefaultReaders, repro.DefaultActivationRange)
	sys := repro.MustNewSystem(plan, dep, repro.DefaultConfig())

	tc := repro.DefaultTraceConfig()
	tc.NumObjects = 20 // twenty friends carrying RFID badges
	tc.DwellMin, tc.DwellMax = 2, 8
	world := repro.MustNewSimulator(sys.Graph(), repro.NewSensor(dep), tc, 7)

	// Warm up: let everyone walk around and be observed.
	for i := 0; i < 100; i++ {
		t, raws := world.Step()
		sys.Ingest(t, raws)
	}

	// The user stands at the junction of the south and west hallways.
	me := repro.Pt(2, 12)
	monitor := repro.NewContinuousKNN(me, 3)
	fmt.Printf("continuous 3NN at %v, updated every 10 s:\n\n", me)

	for round := 0; round < 6; round++ {
		for i := 0; i < 10; i++ {
			t, raws := world.Step()
			sys.Ingest(t, raws)
		}
		answer := sys.KNNQuery(me, 3)
		added, removed := monitor.Update(answer)
		truth := world.TrueKNN(me, 3)
		fmt.Printf("t=%4d  nearest=%v  truth=%v", sys.Now(), monitor.Result(), truth)
		if len(added) > 0 {
			fmt.Printf("  +%v", added)
		}
		if len(removed) > 0 {
			fmt.Printf("  -%v", removed)
		}
		fmt.Println()
	}

	// Walking directions to the nearest friend right now.
	final := sys.KNNQuery(me, 1)
	if nearest := repro.TopKObjects(final, 1); len(nearest) == 1 {
		g := sys.Graph()
		from := g.NearestLocation(me)
		to := g.NearestLocation(world.TruePosition(nearest[0]))
		pts, dist := g.Route(from, to)
		fmt.Printf("\nroute to o%d (%.0f m):", nearest[0], dist)
		for _, p := range pts {
			fmt.Printf(" %v", p)
		}
		fmt.Println()
	}

	// Which two friends are most likely walking together right now?
	pairs := sys.ClosestPairs(3)
	fmt.Printf("\nclosest pairs (expected walking distance):\n")
	for _, p := range pairs {
		da := world.TruePosition(p.A)
		db := world.TruePosition(p.B)
		fmt.Printf("  o%d & o%d: E[d] = %.1f m (true positions %v, %v)\n", p.A, p.B, p.Dist, da, db)
	}
}
