package repro_test

import (
	"fmt"

	"repro"
)

// Example demonstrates the minimal end-to-end flow: build the paper's
// office, stream simulated readings, and ask both query types.
func Example() {
	plan := repro.DefaultOffice()
	dep := repro.MustDeployUniform(plan, repro.DefaultReaders, repro.DefaultActivationRange)
	sys := repro.MustNewSystem(plan, dep, repro.DefaultConfig())

	tc := repro.DefaultTraceConfig()
	tc.NumObjects = 10
	world := repro.MustNewSimulator(sys.Graph(), repro.NewSensor(dep), tc, 42)
	for i := 0; i < 120; i++ {
		t, raws := world.Step()
		sys.Ingest(t, raws)
	}

	rs := sys.RangeQuery(plan.Bounds()) // whole floor
	fmt.Println("objects localized:", len(rs) > 0)
	knn := sys.KNNQuery(repro.Pt(35, 12), 3)
	fmt.Println("kNN mass at least k:", knn.TotalProb() >= 3 || len(knn) < 3)
	// Output:
	// objects localized: true
	// kNN mass at least k: true
}

// ExamplePlanBuilder shows how to describe a custom building instead of
// using the presets.
func ExamplePlanBuilder() {
	b := repro.NewPlanBuilder()
	hall := b.AddHallway("main", repro.Seg(repro.Pt(0, 10), repro.Pt(30, 10)), 2)
	b.AddRoom("lab", repro.RectWH(4, 3, 8, 6), hall)
	b.AddRoom("office", repro.RectWH(16, 3, 8, 6), hall)
	plan, err := b.Build()
	if err != nil {
		fmt.Println("build failed:", err)
		return
	}
	fmt.Println("rooms:", len(plan.Rooms()))
	fmt.Println("hallway meters:", plan.TotalHallwayLength())
	// Output:
	// rooms: 2
	// hallway meters: 30
}

// ExampleSystem_Localize shows the track-and-trace view on a single badge.
func ExampleSystem_Localize() {
	plan := repro.DefaultOffice()
	dep := repro.MustDeployUniform(plan, repro.DefaultReaders, repro.DefaultActivationRange)
	sys := repro.MustNewSystem(plan, dep, repro.DefaultConfig())
	tc := repro.DefaultTraceConfig()
	tc.NumObjects = 5
	world := repro.MustNewSimulator(sys.Graph(), repro.NewSensor(dep), tc, 7)
	for i := 0; i < 150; i++ {
		t, raws := world.Step()
		sys.Ingest(t, raws)
	}
	loc, ok := sys.Localize(0)
	fmt.Println("localized:", ok)
	fmt.Println("estimate inside building:", plan.Bounds().Expand(1).Contains(loc.Mean))
	// Output:
	// localized: true
	// estimate inside building: true
}
