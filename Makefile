# Convenience targets; everything is plain `go` underneath.

.PHONY: build test race bench experiments examples vet

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# Regenerate every paper figure at full scale (~15 minutes).
experiments:
	go run ./cmd/experiments -fig all

examples:
	go run ./examples/quickstart
	go run ./examples/friendfinder
	go run ./examples/securityzone
	go run ./examples/tracking
	go run ./examples/multifloor
