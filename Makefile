# Convenience targets; everything is plain `go` underneath.

.PHONY: build test race bench bench-smoke bench-json bench-diff bench-sharded chaos cluster-e2e check experiments examples vet vuln profile

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# Known-vulnerability scan. The module is stdlib-only, so findings are Go
# toolchain/stdlib advisories. Skips with a notice when govulncheck is not
# installed (offline sandboxes); CI installs it and enforces the scan.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vuln: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# Static analysis, the vulnerability scan, the full suite under the race
# detector, and one iteration of every hot-path benchmark so a compile- or
# panic-level regression in the benchmarked paths cannot land silently.
check:
	go vet ./...
	$(MAKE) vuln
	go test -race ./...
	$(MAKE) bench-smoke

# Chaos scenarios in short mode: crash-at-random-points, per-shard
# disk-fault schedules (quarantine + heal), and two-node peer faults
# (kill/partition/heal) diffed against unfaulted oracles. On failure, each
# scenario writes its conservation ledger to $(CHAOS_LEDGER) (default
# chaos-ledger.txt) so CI can upload it as an artifact.
CHAOS_LEDGER ?= chaos-ledger.txt
chaos:
	CHAOS_LEDGER=$(CHAOS_LEDGER) go test -short -race ./internal/sim/chaos/

# Two-node cluster smoke over real HTTP: both servers on loopback listeners,
# gob RPC via /cluster/rpc, a batch ingested through node-0 must be queryable
# identically through both nodes.
cluster-e2e:
	go test -race -run TestClusterE2E -v ./internal/server/

bench:
	go test -bench=. -benchmem ./...

# One iteration of each internal hot-path benchmark: catches breakage, does
# not measure (the root-package paper benchmarks are too slow for smoke).
bench-smoke:
	go test -run '^$$' -bench . -benchtime=1x ./internal/...

# Run the hot-path benchmarks (indexed coverage index vs. geometric
# reference, the engine step benchmarks, and the tracing-overhead pair) and
# record the parsed results plus the speedups over the checked-in
# pre-tracing baseline BENCH_3.json.
bench-json:
	go run ./cmd/benchjson -out BENCH_4.json -baseline BENCH_3.json

# Regression gate: re-run the hot-path benchmarks and fail loudly if the
# indexed FilterStep, the single-engine 1k-object step, or the one-shard
# router step is more than 20% slower than the checked-in BENCH_3.json.
# Writes nothing; used by CI next to bench-smoke.
bench-diff:
	go run ./cmd/benchjson -out '' -baseline BENCH_3.json -maxregress 0.20

# Record the sharded-engine scaling report: the hot-path benchmarks plus the
# EngineStep benchmarks at shards 1/4/16, with speedups over the pre-sharding
# BENCH_2.json baseline embedded as speedups_vs_baseline.
bench-sharded:
	go run ./cmd/benchjson -out BENCH_3.json -baseline BENCH_2.json

# Regenerate every paper figure at full scale (~15 minutes).
experiments:
	go run ./cmd/experiments -fig all

# Run the demo server with profiling on: pprof at :8080/debug/pprof/,
# metrics at :8080/metrics.
profile:
	go run ./cmd/server -demo -pprof

examples:
	go run ./examples/quickstart
	go run ./examples/friendfinder
	go run ./examples/securityzone
	go run ./examples/tracking
	go run ./examples/multifloor
