# Convenience targets; everything is plain `go` underneath.

.PHONY: build test race bench bench-json check experiments examples vet

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# Static analysis plus the full suite under the race detector.
check:
	go vet ./...
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# Run the particle-filter hot-path benchmarks (indexed coverage index vs.
# geometric reference) and record the parsed results plus speedups.
bench-json:
	go run ./cmd/benchjson -out BENCH_1.json

# Regenerate every paper figure at full scale (~15 minutes).
experiments:
	go run ./cmd/experiments -fig all

examples:
	go run ./examples/quickstart
	go run ./examples/friendfinder
	go run ./examples/securityzone
	go run ./examples/tracking
	go run ./examples/multifloor
