// Command benchjson runs the particle-filter hot-path micro-benchmarks
// (indexed coverage path vs. geometric reference path) and writes the parsed
// results as JSON, so speedups can be tracked across revisions without
// eyeballing `go test -bench` output.
//
// Usage:
//
//	benchjson                      # writes BENCH_1.json in the cwd
//	benchjson -out results.json -benchtime 2s
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// benchPattern selects the hot-path benchmarks with indexed/geometric
// sub-benchmarks.
const benchPattern = "BenchmarkFilterStep|BenchmarkNegativeUpdate|BenchmarkInitAt|BenchmarkReweight"

// result is one parsed benchmark line.
type result struct {
	Name        string  `json:"name"`       // e.g. "FilterStep"
	Path        string  `json:"path"`       // "indexed" or "geometric"
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// report is the file layout: the raw results plus the indexed-over-geometric
// speedup per benchmark.
type report struct {
	GoOS     string             `json:"goos,omitempty"`
	GoArch   string             `json:"goarch,omitempty"`
	CPU      string             `json:"cpu,omitempty"`
	Results  []result           `json:"results"`
	Speedups map[string]float64 `json:"speedups"`
}

func main() {
	out := flag.String("out", "BENCH_1.json", "output file")
	benchtime := flag.String("benchtime", "1s", "value passed to -benchtime")
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", benchPattern, "-benchmem", "-benchtime", *benchtime,
		"./internal/particle/")
	cmd.Stderr = os.Stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		fatal(err)
	}
	if err := cmd.Start(); err != nil {
		fatal(err)
	}

	rep := report{Speedups: map[string]float64{}}
	sc := bufio.NewScanner(outPipe)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		default:
			if r, ok := parseLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		fatal(fmt.Errorf("go test -bench: %w", err))
	}
	if len(rep.Results) == 0 {
		fatal(fmt.Errorf("no benchmark lines parsed"))
	}

	// Speedup = geometric ns/op over indexed ns/op, per benchmark name.
	byKey := map[string]map[string]float64{}
	for _, r := range rep.Results {
		if byKey[r.Name] == nil {
			byKey[r.Name] = map[string]float64{}
		}
		byKey[r.Name][r.Path] = r.NsPerOp
	}
	for name, paths := range byKey {
		if geo, ok := paths["geometric"]; ok {
			if idx, ok := paths["indexed"]; ok && idx > 0 {
				rep.Speedups[name] = geo / idx
			}
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d results)\n", *out, len(rep.Results))
	for name, s := range rep.Speedups {
		fmt.Printf("  %-16s %.2fx\n", name, s)
	}
}

// parseLine parses a `go test -bench` result line of the form
//
//	BenchmarkName/sub-N   iters   123.4 ns/op   56 B/op   7 allocs/op
//
// and keeps only the indexed/geometric sub-benchmarks.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	// Strip the trailing -N GOMAXPROCS suffix, then split name/path.
	full := fields[0]
	if i := strings.LastIndex(full, "-"); i > 0 {
		full = full[:i]
	}
	name, path, ok := strings.Cut(strings.TrimPrefix(full, "Benchmark"), "/")
	if !ok || (path != "indexed" && path != "geometric") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: name, Path: path, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v := fields[i]
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp, _ = strconv.ParseFloat(v, 64)
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(v, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(v, 10, 64)
		}
	}
	if r.NsPerOp == 0 {
		return result{}, false
	}
	return r, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
