// Command benchjson runs the particle-filter hot-path micro-benchmarks
// (indexed coverage path vs. geometric reference path) plus the engine-level
// 1k-object step benchmark, and writes the parsed results as JSON, so
// speedups can be tracked across revisions without eyeballing
// `go test -bench` output.
//
// Usage:
//
//	benchjson                                # writes BENCH_1.json in the cwd
//	benchjson -out BENCH_2.json -baseline BENCH_1.json
//	benchjson -baseline BENCH_2.json -maxregress 0.20   # CI regression gate
//
// With -baseline, each result is compared against the same benchmark in the
// baseline file and the per-benchmark speedup (baseline ns/op over current
// ns/op) is embedded as "speedups_vs_baseline". With -maxregress P, the run
// exits non-zero if the indexed FilterStep, the 1k-object engine step, or
// the one-shard sharded engine step is more than P (fraction) slower than
// the baseline — the loud CI failure mode for hot-path regressions.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// benchPattern selects the hot-path benchmarks with indexed/geometric
// sub-benchmarks.
const benchPattern = "BenchmarkFilterStep|BenchmarkNegativeUpdate|BenchmarkInitAt|BenchmarkReweight"

// enginePattern selects the engine-level population benchmarks: the
// single-engine 1k-object step (no sub-benchmark path), its sharded-router
// variant (shards=N sub-benchmarks showing scaling with the shard count), and
// the tracing-overhead pair (enabled/disabled sub-benchmarks pinning the cost
// of the request tracer on the filter step).
const enginePattern = "BenchmarkEngineStep|BenchmarkFilterStepTraced"

// result is one parsed benchmark line.
type result struct {
	Name        string  `json:"name"`           // e.g. "FilterStep"
	Path        string  `json:"path,omitempty"` // "indexed", "geometric", or "" for whole-engine benchmarks
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	ObjsPerSec  float64 `json:"objs_per_sec,omitempty"`
}

// key identifies a result across runs for baseline comparison.
func (r result) key() string {
	if r.Path == "" {
		return r.Name
	}
	return r.Name + "/" + r.Path
}

// report is the file layout: the raw results, the indexed-over-geometric
// speedup per benchmark, and (when -baseline is given) the per-benchmark
// speedup over the baseline file.
type report struct {
	GoOS       string             `json:"goos,omitempty"`
	GoArch     string             `json:"goarch,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Results    []result           `json:"results"`
	Speedups   map[string]float64 `json:"speedups"`
	Baseline   string             `json:"baseline,omitempty"`
	VsBaseline map[string]float64 `json:"speedups_vs_baseline,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_1.json", "output file (empty: don't write)")
	benchtime := flag.String("benchtime", "1s", "value passed to -benchtime")
	baseline := flag.String("baseline", "", "previous benchjson report to compute speedups_vs_baseline against")
	maxregress := flag.Float64("maxregress", 0, "fail if indexed FilterStep regresses more than this fraction vs -baseline (0 disables)")
	flag.Parse()

	rep := report{Speedups: map[string]float64{}}
	runBench(&rep, benchPattern, "./internal/particle/", *benchtime)
	runBench(&rep, enginePattern, "./internal/engine/", *benchtime)
	if len(rep.Results) == 0 {
		fatal(fmt.Errorf("no benchmark lines parsed"))
	}

	// Speedup = geometric ns/op over indexed ns/op, per benchmark name.
	byKey := map[string]map[string]float64{}
	for _, r := range rep.Results {
		if byKey[r.Name] == nil {
			byKey[r.Name] = map[string]float64{}
		}
		byKey[r.Name][r.Path] = r.NsPerOp
	}
	for name, paths := range byKey {
		if geo, ok := paths["geometric"]; ok {
			if idx, ok := paths["indexed"]; ok && idx > 0 {
				rep.Speedups[name] = geo / idx
			}
		}
	}

	if *baseline != "" {
		base, err := loadReport(*baseline)
		if err != nil {
			fatal(err)
		}
		rep.Baseline = *baseline
		rep.VsBaseline = map[string]float64{}
		baseNs := map[string]float64{}
		for _, r := range base.Results {
			baseNs[r.key()] = r.NsPerOp
		}
		for _, r := range rep.Results {
			if b, ok := baseNs[r.key()]; ok && r.NsPerOp > 0 {
				rep.VsBaseline[r.key()] = b / r.NsPerOp
			}
		}
		// When the baseline predates the sharded benchmark, anchor the
		// one-shard router result to the plain engine step — same workload,
		// the router is the only difference.
		const single = "EngineStepSharded1kObjects/shards=1"
		if _, ok := rep.VsBaseline[single]; !ok {
			if b, ok := baseNs["EngineStep1kObjects"]; ok {
				for _, r := range rep.Results {
					if r.key() == single && r.NsPerOp > 0 {
						rep.VsBaseline[single] = b / r.NsPerOp
					}
				}
			}
		}
	}

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d results)\n", *out, len(rep.Results))
	}
	for name, s := range rep.Speedups {
		fmt.Printf("  %-24s %.2fx vs geometric\n", name, s)
	}
	for key, s := range rep.VsBaseline {
		fmt.Printf("  %-24s %.2fx vs %s\n", key, s, rep.Baseline)
	}

	if *maxregress > 0 {
		if rep.Baseline == "" {
			fatal(fmt.Errorf("-maxregress requires -baseline"))
		}
		// Gate the filter hot path, the whole-engine step, and the sharded
		// router at one shard: the router must stay free when N=1.
		for _, gate := range []string{"FilterStep/indexed", "EngineStep1kObjects",
			"EngineStepSharded1kObjects/shards=1"} {
			s, ok := rep.VsBaseline[gate]
			if !ok {
				fatal(fmt.Errorf("-maxregress: %s missing from current run or baseline", gate))
			}
			// speedup < 1/(1+p) means the hot path got more than p slower.
			if s < 1/(1+*maxregress) {
				fatal(fmt.Errorf("REGRESSION: %s is %.0f%% slower than %s (speedup %.2fx, limit -%.0f%%)",
					gate, (1/s-1)*100, rep.Baseline, s, *maxregress*100))
			}
			fmt.Printf("bench-diff OK: %s at %.2fx of %s (within -%.0f%% budget)\n",
				gate, s, rep.Baseline, *maxregress*100)
		}
	}
}

// runBench executes `go test -bench pattern` for one package and appends the
// parsed result lines to the report.
func runBench(rep *report, pattern, pkg, benchtime string) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", pattern, "-benchmem", "-benchtime", benchtime, pkg)
	cmd.Stderr = os.Stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		fatal(err)
	}
	if err := cmd.Start(); err != nil {
		fatal(err)
	}
	sc := bufio.NewScanner(outPipe)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		default:
			if r, ok := parseLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		fatal(fmt.Errorf("go test -bench %s: %w", pkg, err))
	}
}

// loadReport reads a previously written benchjson file.
func loadReport(path string) (report, error) {
	var rep report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, fmt.Errorf("baseline: %w", err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("baseline %s: %w", path, err)
	}
	return rep, nil
}

// parseLine parses a `go test -bench` result line of the form
//
//	BenchmarkName/sub-N   iters   123.4 ns/op   56 B/op   7 allocs/op
//
// keeping indexed/geometric sub-benchmarks and whole-package benchmarks
// without a sub-benchmark path.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	// Strip the trailing -N GOMAXPROCS suffix, then split name/path.
	full := fields[0]
	if i := strings.LastIndex(full, "-"); i > 0 {
		full = full[:i]
	}
	name, path, ok := strings.Cut(strings.TrimPrefix(full, "Benchmark"), "/")
	if ok && path != "indexed" && path != "geometric" && path != "enabled" &&
		path != "disabled" && !strings.HasPrefix(path, "shards=") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: name, Path: path, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v := fields[i]
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp, _ = strconv.ParseFloat(v, 64)
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(v, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(v, 10, 64)
		case "objs/s":
			r.ObjsPerSec, _ = strconv.ParseFloat(v, 64)
		}
	}
	if r.NsPerOp == 0 {
		return result{}, false
	}
	return r, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
