// Command floorplan inspects the default office floor plan: it prints an
// ASCII rendering of rooms, hallways, readers, and anchor points, followed by
// summary statistics of the derived walking graph and deployment.
//
// Usage:
//
//	floorplan            # render the default office
//	floorplan -readers 10 -range 1.5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/anchor"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/rfid"
	"repro/internal/walkgraph"
)

func main() {
	var (
		readers  = flag.Int("readers", rfid.DefaultReaders, "number of readers to deploy")
		rng      = flag.Float64("range", rfid.DefaultActivationRange, "reader activation range in meters")
		spacing  = flag.Float64("spacing", anchor.DefaultSpacing, "anchor point spacing in meters")
		scale    = flag.Float64("scale", 1.0, "characters per meter horizontally")
		planFile = flag.String("plan", "", "load a floor plan from a JSON file instead of the default office")
		twoStory = flag.Bool("two", false, "use the two-story office preset")
	)
	flag.Parse()

	var plan *floorplan.Plan
	switch {
	case *planFile != "":
		data, err := os.ReadFile(*planFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "floorplan: %v\n", err)
			os.Exit(1)
		}
		plan, err = floorplan.Decode(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "floorplan: %v\n", err)
			os.Exit(1)
		}
	case *twoStory:
		plan = floorplan.TwoStoryOffice()
	default:
		plan = floorplan.DefaultOffice()
	}
	dep, err := rfid.DeployUniform(plan, *readers, *rng)
	if err != nil {
		fmt.Fprintf(os.Stderr, "floorplan: %v\n", err)
		os.Exit(1)
	}
	g, err := walkgraph.Build(plan)
	if err != nil {
		fmt.Fprintf(os.Stderr, "floorplan: %v\n", err)
		os.Exit(1)
	}
	idx, err := anchor.BuildIndex(g, *spacing)
	if err != nil {
		fmt.Fprintf(os.Stderr, "floorplan: %v\n", err)
		os.Exit(1)
	}

	render(plan, dep, *scale)

	fmt.Printf("\nFloor plan: %d rooms, %d hallways, %d doors; total area %.0f m^2, hallway length %.0f m\n",
		len(plan.Rooms()), len(plan.Hallways()), len(plan.Doors()), plan.TotalArea(), plan.TotalHallwayLength())
	fmt.Printf("Walking graph: %d nodes, %d edges, total edge length %.0f m\n",
		g.NumNodes(), g.NumEdges(), g.TotalEdgeLength())
	fmt.Printf("Anchor index: %d anchor points at %.1f m spacing\n", idx.NumAnchors(), idx.Spacing())
	if n := len(plan.Links()); n > 0 {
		fmt.Printf("Links: %d (stairs/elevators)\n", n)
	}
	fmt.Printf("Deployment: %d readers, %.1f m activation range, disjoint=%v\n",
		dep.NumReaders(), *rng, dep.Disjoint())
}

// render draws the plan on a character grid: '#' walls, 'D' doors, 'R'
// readers, '.' hallway floor, room names inside rooms.
func render(plan *floorplan.Plan, dep *rfid.Deployment, scale float64) {
	b := plan.Bounds()
	// Terminal cells are roughly twice as tall as wide; use half vertical
	// resolution.
	w := int(b.Width()*scale) + 1
	h := int(b.Height()*scale/2) + 1
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	put := func(p geom.Point, c byte) {
		x := int((p.X - b.Min.X) * scale)
		y := h - 1 - int((p.Y-b.Min.Y)*scale/2)
		if x >= 0 && x < w && y >= 0 && y < h {
			grid[y][x] = c
		}
	}
	// Hallway floor.
	for _, hw := range plan.Hallways() {
		s := hw.Strip()
		for x := s.Min.X; x <= s.Max.X; x += 0.5 / scale {
			for y := s.Min.Y; y <= s.Max.Y; y += 1 / scale {
				put(geom.Pt(x, y), '.')
			}
		}
	}
	// Room walls and labels.
	for _, r := range plan.Rooms() {
		for _, rb := range r.AllParts() {
			for x := rb.Min.X; x <= rb.Max.X; x += 0.5 / scale {
				put(geom.Pt(x, rb.Min.Y), '#')
				put(geom.Pt(x, rb.Max.Y), '#')
			}
			for y := rb.Min.Y; y <= rb.Max.Y; y += 1 / scale {
				put(geom.Pt(rb.Min.X, y), '#')
				put(geom.Pt(rb.Max.X, y), '#')
			}
		}
		c := r.Center()
		x := int((c.X-b.Min.X)*scale) - len(r.Name)/2
		y := h - 1 - int((c.Y-b.Min.Y)*scale/2)
		if y >= 0 && y < h {
			for i := 0; i < len(r.Name); i++ {
				if x+i >= 0 && x+i < w {
					grid[y][x+i] = r.Name[i]
				}
			}
		}
	}
	// Doors and readers on top.
	for _, d := range plan.Doors() {
		put(d.Pos, 'D')
	}
	for _, r := range dep.Readers() {
		put(r.Pos, 'R')
	}
	for _, row := range grid {
		fmt.Println(string(row))
	}
}
