// Command experiments regenerates the paper's evaluation figures (Figures 9
// through 13) by running the full simulation pipeline: ground-truth traces,
// noisy RFID readings, the particle filter-based system, and the symbolic
// model baseline, reporting KL divergence, kNN hit rate, and top-k success
// rate exactly as the paper does.
//
// Usage:
//
//	experiments -list              # show the default parameters (Table 2)
//	experiments -fig 9             # regenerate one figure
//	experiments -fig all           # regenerate every figure
//	experiments -fig 11 -quick     # reduced workload for a fast smoke run
//	experiments -fig 12 -objects 100 -timestamps 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		fig        = flag.String("fig", "", "figure to regenerate: 9, 10, 11, 12, 13, or all")
		list       = flag.Bool("list", false, "print the default parameters (paper Table 2) and exit")
		quick      = flag.Bool("quick", false, "use a reduced workload for a fast run")
		objects    = flag.Int("objects", 0, "override the number of moving objects")
		particles  = flag.Int("particles", 0, "override the particle count")
		timestamps = flag.Int("timestamps", 0, "override the number of query time stamps")
		windows    = flag.Int("windows", 0, "override the range windows per time stamp")
		knnPoints  = flag.Int("knnpoints", 0, "override the kNN query points per time stamp")
		seed       = flag.Int64("seed", 1, "random seed")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		ablation   = flag.String("ablation", "", "run a design-choice ablation instead of a figure: "+strings.Join(experiments.AblationIDs(), ", "))
	)
	flag.Parse()

	base := experiments.Default()
	if *quick {
		base = experiments.Quick()
	}
	base.Seed = *seed
	if *objects > 0 {
		base.Objects = *objects
	}
	if *particles > 0 {
		base.Particles = *particles
	}
	if *timestamps > 0 {
		base.Timestamps = *timestamps
	}
	if *windows > 0 {
		base.RangeWindows = *windows
	}
	if *knnPoints > 0 {
		base.KNNPoints = *knnPoints
	}

	if *list {
		fmt.Printf("Default parameters (paper Table 2):\n")
		fmt.Printf("  particles          %d\n", base.Particles)
		fmt.Printf("  query window       %.0f%% of floor area\n", base.WindowPct)
		fmt.Printf("  moving objects     %d\n", base.Objects)
		fmt.Printf("  k                  %d\n", base.K)
		fmt.Printf("  activation range   %.1f m\n", base.ActivationRange)
		fmt.Printf("  readers            %d\n", base.Readers)
		fmt.Printf("  time stamps        %d (every %d s after %d s warm-up)\n",
			base.Timestamps, base.StepBetween, base.WarmupSeconds)
		fmt.Printf("  range windows      %d per time stamp\n", base.RangeWindows)
		fmt.Printf("  kNN query points   %d per time stamp\n", base.KNNPoints)
		return
	}

	if *ablation != "" {
		run, ok := experiments.Ablations()[*ablation]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown ablation %q (known: %v)\n", *ablation, experiments.AblationIDs())
			os.Exit(2)
		}
		f, err := run(base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		write := f.Write
		if *csv {
			write = f.WriteCSV
		}
		if err := write(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *fig == "" {
		fmt.Fprintln(os.Stderr, "experiments: -fig or -ablation is required; see -h")
		os.Exit(2)
	}

	var ids []string
	if *fig == "all" {
		ids = experiments.FigureIDs()
	} else {
		ids = []string{*fig}
	}
	figs := experiments.Figures()
	for _, id := range ids {
		run, ok := figs[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown figure %q (known: %v)\n", id, experiments.FigureIDs())
			os.Exit(2)
		}
		start := time.Now()
		f, err := run(base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		write := f.Write
		if *csv {
			write = f.WriteCSV
		}
		if err := write(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if !*csv {
			fmt.Printf("# elapsed: %v\n\n", time.Since(start).Round(time.Millisecond))
		}
	}
}
