// Command simulate runs the full pipeline live: simulated objects move
// through the default office, noisy RFID readings stream into the system,
// and at a fixed cadence the tool issues one range query and one kNN query,
// printing the particle filter's answers next to the ground truth.
//
// Usage:
//
//	simulate                       # 60 s with defaults
//	simulate -objects 50 -seconds 300 -interval 15 -k 5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/engine"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/query"
	"repro/internal/rfid"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/viz"
)

func main() {
	var (
		objects  = flag.Int("objects", 30, "number of moving objects")
		seconds  = flag.Int("seconds", 60, "seconds to simulate after warm-up")
		warmup   = flag.Int("warmup", 90, "warm-up seconds before the first query")
		interval = flag.Int("interval", 10, "seconds between queries")
		k        = flag.Int("k", 3, "k for the kNN query")
		seed     = flag.Int64("seed", 1, "random seed")
		record   = flag.String("record", "", "record prefix: writes <prefix>.plan.json, <prefix>.deployment.json, <prefix>.readings.jsonl")
		svgOut   = flag.String("svg", "", "write a final-state SVG snapshot (plan, readers, distributions, truth) to this file")
	)
	flag.Parse()

	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	cfg := engine.DefaultConfig()
	cfg.Seed = *seed
	sys, err := engine.New(plan, dep, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simulate: %v\n", err)
		os.Exit(1)
	}
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = *objects
	simulator, err := sim.New(sys.Graph(), rfid.NewSensor(dep), tc, *seed+7)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simulate: %v\n", err)
		os.Exit(1)
	}

	var rec *recorder
	if *record != "" {
		rec, err = newRecorder(*record, plan, dep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simulate: %v\n", err)
			os.Exit(1)
		}
		defer rec.close()
	}

	fmt.Printf("simulating %d objects, %d readers, warm-up %d s\n", *objects, dep.NumReaders(), *warmup)
	for i := 0; i < *warmup; i++ {
		t, raws := simulator.Step()
		sys.Ingest(t, raws)
		rec.write(raws)
	}

	src := rng.New(*seed + 99)
	for elapsed := 0; elapsed < *seconds; elapsed += *interval {
		for i := 0; i < *interval; i++ {
			t, raws := simulator.Step()
			sys.Ingest(t, raws)
			rec.write(raws)
		}
		now := sys.Now()

		// A random 2%-area window.
		area := plan.TotalArea() * 0.02
		w := 8.0
		h := area / w
		b := plan.Bounds()
		win := geom.RectWH(src.Uniform(b.Min.X, b.Max.X-w), src.Uniform(b.Min.Y, b.Max.Y-h), w, h)
		truth := simulator.TrueRange(win)
		rs := sys.RangeQuery(win)
		fmt.Printf("\n[t=%4d] RANGE %v\n", now, win)
		fmt.Printf("  truth: %v\n", truth)
		fmt.Printf("  answer (top by probability):\n")
		for _, op := range topPairs(rs, 5) {
			marker := " "
			for _, o := range truth {
				if o == op.obj {
					marker = "*"
				}
			}
			fmt.Printf("   %s o%-3d p=%.2f\n", marker, op.obj, op.p)
		}

		// A kNN query from a random hallway point.
		d := src.Uniform(0, plan.TotalHallwayLength())
		pt, _ := plan.PointOnHallway(d)
		ktruth := simulator.TrueKNN(pt, *k)
		krs := sys.KNNQuery(pt, *k)
		returned := query.TopKObjects(krs, *k)
		fmt.Printf("[t=%4d] %dNN at %v\n", now, *k, pt)
		fmt.Printf("  truth: %v  answer: %v  hit-rate: %.2f\n",
			ktruth, returned, metrics.HitRate(krs.Objects(), ktruth))
	}
	if *svgOut != "" {
		if err := writeSnapshot(*svgOut, sys, simulator, plan, dep); err != nil {
			fmt.Fprintf(os.Stderr, "simulate: svg: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote snapshot to %s\n", *svgOut)
	}
	hits, misses := sys.CacheStats()
	fmt.Printf("\ncache: %d hits, %d misses\n", hits, misses)
	if rec != nil {
		fmt.Printf("recorded %d raw readings to %s.readings.jsonl\n", rec.count, *record)
	}
}

// recorder persists the plan, deployment, and raw reading stream so
// cmd/replay can re-process the session offline.
type recorder struct {
	f     *os.File
	enc   *json.Encoder
	count int
}

func newRecorder(prefix string, plan *floorplan.Plan, dep *rfid.Deployment) (*recorder, error) {
	planData, err := json.MarshalIndent(plan, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(prefix+".plan.json", planData, 0o644); err != nil {
		return nil, err
	}
	depData, err := json.MarshalIndent(dep, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(prefix+".deployment.json", depData, 0o644); err != nil {
		return nil, err
	}
	f, err := os.Create(prefix + ".readings.jsonl")
	if err != nil {
		return nil, err
	}
	return &recorder{f: f, enc: json.NewEncoder(f)}, nil
}

func (r *recorder) write(raws []model.RawReading) {
	if r == nil {
		return
	}
	for _, raw := range raws {
		if err := r.enc.Encode(raw); err != nil {
			fmt.Fprintf(os.Stderr, "simulate: record: %v\n", err)
			os.Exit(1)
		}
		r.count++
	}
}

func (r *recorder) close() {
	if r != nil {
		r.f.Close()
	}
}

// writeSnapshot renders the final system state: the plan and deployment,
// every object's inferred distribution, and the true positions.
func writeSnapshot(path string, sys *engine.System, world *sim.Simulator, plan *floorplan.Plan, dep *rfid.Deployment) error {
	c := viz.NewCanvas(plan, 10)
	c.DrawPlan(plan)
	c.DrawDeployment(dep)
	tab := sys.Preprocess(sys.Collector().KnownObjects())
	colors := []string{"#d62728", "#ff7f0e", "#9467bd", "#17becf", "#bcbd22", "#e377c2"}
	for i, obj := range sys.Collector().KnownObjects() {
		dist := tab.DistributionOf(obj)
		if len(dist) == 0 {
			continue
		}
		c.DrawDistribution(sys.AnchorIndex(), dist, colors[i%len(colors)])
	}
	truth := make(map[model.ObjectID]geom.Point)
	for _, o := range world.Objects() {
		truth[o] = world.TruePosition(o)
	}
	c.DrawObjects(truth, "#333333")
	return os.WriteFile(path, []byte(c.SVG()), 0o644)
}

type objProb struct {
	obj model.ObjectID
	p   float64
}

func topPairs(rs model.ResultSet, n int) []objProb {
	out := make([]objProb, 0, len(rs))
	for o, p := range rs {
		out = append(out, objProb{obj: o, p: p})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].p != out[j].p {
			return out[i].p > out[j].p
		}
		return out[i].obj < out[j].obj
	})
	if n > len(out) {
		n = len(out)
	}
	return out[:n]
}
