// Command replay re-processes a recorded RFID session offline: it loads a
// floor plan, a reader deployment, and a raw reading log (as written by
// `simulate -record`), ingests the stream with full history retention, and
// answers snapshot or historical queries.
//
// Usage:
//
//	simulate -record session          # produce session.{plan,deployment}.json + session.readings.jsonl
//	replay -prefix session -range 10,9,20,8
//	replay -prefix session -knn 35,12,3 -at 120
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/engine"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/rfid"
)

func main() {
	var (
		prefix   = flag.String("prefix", "", "recording prefix (required)")
		rangeStr = flag.String("range", "", "range query: x,y,w,h")
		knnStr   = flag.String("knn", "", "kNN query: x,y,k")
		at       = flag.Int64("at", 0, "historical time stamp (0 = live, at the end of the log)")
	)
	flag.Parse()
	if *prefix == "" {
		fmt.Fprintln(os.Stderr, "replay: -prefix is required; see -h")
		os.Exit(2)
	}

	plan, dep, err := loadSession(*prefix)
	if err != nil {
		fmt.Fprintf(os.Stderr, "replay: %v\n", err)
		os.Exit(1)
	}
	cfg := engine.DefaultConfig()
	cfg.KeepHistory = true
	sys, err := engine.New(plan, dep, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "replay: %v\n", err)
		os.Exit(1)
	}

	count, err := ingestLog(sys, *prefix+".readings.jsonl")
	if err != nil {
		fmt.Fprintf(os.Stderr, "replay: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("replayed %d raw readings up to t=%d; %d objects known\n",
		count, sys.Now(), len(sys.Collector().KnownObjects()))

	when := sys.Now()
	historical := false
	if *at > 0 {
		when = model.Time(*at)
		historical = true
	}

	if *rangeStr != "" {
		vals, err := parseFloats(*rangeStr, 4)
		if err != nil {
			fmt.Fprintf(os.Stderr, "replay: -range: %v\n", err)
			os.Exit(2)
		}
		win := geom.RectWH(vals[0], vals[1], vals[2], vals[3])
		var rs model.ResultSet
		if historical {
			rs = sys.RangeQueryAt(win, when)
		} else {
			rs = sys.RangeQuery(win)
		}
		fmt.Printf("range %v at t=%d:\n", win, when)
		printResult(rs)
	}

	if *knnStr != "" {
		vals, err := parseFloats(*knnStr, 3)
		if err != nil {
			fmt.Fprintf(os.Stderr, "replay: -knn: %v\n", err)
			os.Exit(2)
		}
		q := geom.Pt(vals[0], vals[1])
		k := int(vals[2])
		var rs model.ResultSet
		if historical {
			rs = sys.KNNQueryAt(q, k, when)
		} else {
			rs = sys.KNNQuery(q, k)
		}
		fmt.Printf("%dNN at %v, t=%d:\n", k, q, when)
		printResult(rs)
	}
}

func loadSession(prefix string) (*floorplan.Plan, *rfid.Deployment, error) {
	planData, err := os.ReadFile(prefix + ".plan.json")
	if err != nil {
		return nil, nil, err
	}
	plan, err := floorplan.Decode(planData)
	if err != nil {
		return nil, nil, err
	}
	depData, err := os.ReadFile(prefix + ".deployment.json")
	if err != nil {
		return nil, nil, err
	}
	dep, err := rfid.DecodeDeployment(depData, plan)
	if err != nil {
		return nil, nil, err
	}
	return plan, dep, nil
}

// ingestLog streams the JSONL reading log into the system, grouping entries
// by second as the live collector expects.
func ingestLog(sys *engine.System, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	count := 0
	var batch []model.RawReading
	var batchTime model.Time = -1
	flush := func() {
		if batchTime >= 0 {
			sys.Ingest(batchTime, batch)
			batch = batch[:0]
		}
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r model.RawReading
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return count, fmt.Errorf("bad reading line: %w", err)
		}
		if r.Time != batchTime {
			flush()
			batchTime = r.Time
		}
		batch = append(batch, r)
		count++
	}
	flush()
	return count, sc.Err()
}

func parseFloats(s string, n int) ([]float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("want %d comma-separated values, got %d", n, len(parts))
	}
	out := make([]float64, n)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func printResult(rs model.ResultSet) {
	type op struct {
		o model.ObjectID
		p float64
	}
	all := make([]op, 0, len(rs))
	for o, p := range rs {
		all = append(all, op{o, p})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].p != all[j].p {
			return all[i].p > all[j].p
		}
		return all[i].o < all[j].o
	})
	for _, e := range all {
		fmt.Printf("  o%-4d p=%.3f\n", e.o, e.p)
	}
	if len(all) == 0 {
		fmt.Println("  (empty)")
	}
}
