package main

import (
	"io"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/floorplan"
	"repro/internal/rfid"
	"repro/internal/sim"
	"repro/internal/sim/errfs"
	"repro/internal/wal"
)

// buildShardedDir grows a real 4-shard durable data directory with shard 2
// quarantined partway through (its marker left on disk), then closes the
// engine cleanly. walctl must read it purely from the files.
func buildShardedDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	fsys := errfs.New(nil, 3)
	cfg := engine.DefaultConfig()
	cfg.Seed = 41
	cfg.Shards = 4
	cfg.Particle.Ns = 16
	cfg.Durability = engine.DurabilityConfig{
		Dir:           dir,
		Fsync:         wal.SyncAlways,
		FS:            fsys,
		SnapshotEvery: 5,
		HealBaseDelay: time.Hour,
		HealMaxDelay:  time.Hour,
	}
	sys, err := engine.OpenSharded(plan, dep, cfg)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 12
	tc.DwellMin, tc.DwellMax = 2, 6
	world := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), tc, 99)
	for i := 0; i < 16; i++ {
		if i == 10 {
			fsys.Fail(errfs.Rule{Ops: errfs.OpWrite, Path: "shard-0002"})
		}
		tm, raws := world.Step()
		sys.Ingest(tm, raws) // quarantined drops are expected after the fault
	}
	sys.FlushIngest()
	fsys.Clear()
	if err := sys.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return dir
}

// captureStdout runs fn with os.Stdout redirected and returns what it printed.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := fn()
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), ferr
}

func TestInspectShardedDir(t *testing.T) {
	dir := buildShardedDir(t)
	if n := shardCount(dir); n != 4 {
		t.Fatalf("shardCount = %d, want 4", n)
	}
	quar := quarantinedShards(dir, 4)
	if len(quar) != 1 || quar[2] == "" {
		t.Fatalf("quarantinedShards = %v, want a marker for shard 2", quar)
	}

	out, err := captureStdout(t, func() error { return inspect(dir) })
	if err != nil {
		t.Fatalf("inspect: %v\n%s", err, out)
	}
	for _, want := range []string{
		"sharded data directory: 4 shard(s)",
		"router snapshot(s)",
		"shard 0\n", "shard 1\n", "shard 3\n",
		"shard 2  QUARANTINED at seq " + quar[2],
	} {
		if !strings.Contains(out, want) {
			t.Errorf("inspect output missing %q:\n%s", want, out)
		}
	}
}

func TestVerifyShardedDir(t *testing.T) {
	dir := buildShardedDir(t)
	out, err := captureStdout(t, func() error { return verify(dir) })
	if err != nil {
		t.Fatalf("verify found damage in a cleanly closed directory: %v\n%s", err, out)
	}
	for _, want := range []string{
		"sharded data directory: 4 shard(s)",
		"shard 0:", "shard 1:", "shard 3:",
		"QUARANTINED at seq",
		"ok:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("verify output missing %q:\n%s", want, out)
		}
	}
	// The quarantined shard's log legitimately ends early; every line still
	// reports a seq range without flagging damage.
	if strings.Contains(out, "damage") {
		t.Errorf("verify reported damage:\n%s", out)
	}
}

func TestVerifyFlagsDamagedShard(t *testing.T) {
	dir := buildShardedDir(t)
	segs, err := wal.SegmentInfos(dir + "/shard-0001")
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments for shard 1: %v", err)
	}
	// Flip a byte mid-file: CRC damage verify must catch and count.
	data, err := os.ReadFile(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0].Path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := captureStdout(t, func() error { return verify(dir) })
	if err == nil {
		t.Fatalf("verify missed the corrupted shard log:\n%s", out)
	}
	if !strings.Contains(err.Error(), "damage") {
		t.Errorf("verify error %q does not mention damage", err)
	}
}

func TestTruncateAndDumpRefuseShardedRoot(t *testing.T) {
	dir := buildShardedDir(t)
	// main() routes sharded roots away from truncate/dump; the guard lives
	// there, so reproduce its check directly.
	if n := shardCount(dir); n == 0 {
		t.Fatal("sharded root not detected")
	}
	// A shard subdirectory is a plain log: dump must work on it.
	out, err := captureStdout(t, func() error { return dump(dir+"/shard-0000", 3) })
	if err != nil {
		t.Fatalf("dump on shard subdir: %v", err)
	}
	if !strings.Contains(out, "seq") {
		t.Errorf("dump printed no records:\n%s", out)
	}
}
