// Command walctl inspects and repairs a server data directory (WAL segments
// plus engine snapshots) offline. It never needs the server's floor plan: it
// works at the framing layer the wal package defines, decoding batch payloads
// opportunistically for display.
//
// Usage:
//
//	walctl inspect <dir>            # list segments and snapshots with seq ranges
//	walctl verify <dir>             # scan every record's CRC; exit 1 on damage
//	walctl truncate <dir>           # cut torn/corrupt tails in place (what the
//	                                # server does on startup, made explicit)
//	walctl dump <dir> [-n 10]       # print the last n records' decoded batches
//
// verify and inspect are read-only. truncate modifies files and prints every
// repair it performs; run verify first to see what it would do.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/wal"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 2 {
		usage()
		os.Exit(2)
	}
	cmd, dir := flag.Arg(0), flag.Arg(1)
	var err error
	switch cmd {
	case "inspect":
		err = inspect(dir)
	case "verify":
		err = verify(dir)
	case "truncate":
		err = truncate(dir)
	case "dump":
		n := 10
		if flag.NArg() > 2 {
			if _, serr := fmt.Sscanf(flag.Arg(2), "%d", &n); serr != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "walctl: bad record count %q\n", flag.Arg(2))
				os.Exit(2)
			}
		}
		err = dump(dir, n)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "walctl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: walctl <command> <data-dir> [args]

commands:
  inspect   list segments and snapshots with sequence ranges (read-only)
  verify    scan every record CRC, report damage; exit 1 if any (read-only)
  truncate  repair torn/corrupt tails in place
  dump      print the last N records' decoded batches (default 10)
`)
}

// inspect lists segments (with a scan per segment for seq ranges) and
// snapshots. It is read-only and tolerant: damaged segments are listed with
// their damage, not skipped.
func inspect(dir string) error {
	segs, err := wal.SegmentInfos(dir)
	if err != nil {
		return err
	}
	fmt.Printf("%d segment(s) in %s\n", len(segs), dir)
	total := 0
	for _, seg := range segs {
		scan, err := wal.ScanSegment(seg.Path, func(wal.Rec) error { return nil })
		if err != nil {
			return fmt.Errorf("%s: %w", seg.Path, err)
		}
		total += scan.Records
		fmt.Printf("  %-28s %8d bytes  records=%-6d seq=[%d..%d]  stream=%016x",
			filepath.Base(seg.Path), scan.FileSize, scan.Records, scan.FirstSeq, scan.LastSeq, scan.StreamID)
		if scan.Tail > 0 {
			fmt.Printf("  TAIL=%d bytes (%s)", scan.Tail, scan.Reason)
		}
		fmt.Println()
	}
	snaps, err := wal.ListSnapshots(dir)
	if err != nil {
		return err
	}
	fmt.Printf("%d snapshot(s)\n", len(snaps))
	for _, sn := range snaps {
		fmt.Printf("  %-28s %8d bytes  seq=%d\n", filepath.Base(sn.Path), sn.Size, sn.Seq)
	}
	fmt.Printf("total valid records: %d\n", total)
	return nil
}

// verify scans every record of every segment and reports CRC/framing damage
// and inter-segment sequence gaps. Exit status 1 (via a returned error) when
// anything is wrong, so it scripts cleanly.
func verify(dir string) error {
	segs, err := wal.SegmentInfos(dir)
	if err != nil {
		return err
	}
	var (
		damaged  int
		lastSeq  uint64
		haveSeqs bool
	)
	for _, seg := range segs {
		scan, err := wal.ScanSegment(seg.Path, func(r wal.Rec) error {
			if _, derr := wal.DecodeBatch(r.Payload); derr != nil {
				return fmt.Errorf("seq %d: undecodable batch payload: %w", r.Seq, derr)
			}
			if haveSeqs && r.Seq != lastSeq+1 {
				fmt.Printf("  %s: seq gap: %d follows %d\n", filepath.Base(seg.Path), r.Seq, lastSeq)
				damaged++
			}
			lastSeq, haveSeqs = r.Seq, true
			return nil
		})
		if err != nil {
			return fmt.Errorf("%s: %w", seg.Path, err)
		}
		if scan.BadRecord || scan.Tail > 0 {
			fmt.Printf("  %s: %d tail byte(s) after %d valid record(s): %s\n",
				filepath.Base(seg.Path), scan.Tail, scan.Records, scan.Reason)
			damaged++
		}
	}
	var snapBad int
	snaps, err := wal.ListSnapshots(dir)
	if err != nil {
		return err
	}
	for _, sn := range snaps {
		// Stream ID 0 is never assigned, so pass the snapshot's own header
		// check but treat a mismatch report as "unknown stream", not damage:
		// walctl has no floor plan to derive the expected ID from. Only
		// structural corruption counts.
		if _, _, rerr := wal.ReadSnapshotFile(sn.Path, 0); rerr != nil {
			var mm *wal.MismatchError
			if errors.As(rerr, &mm) {
				continue
			}
			fmt.Printf("  %s: %v\n", filepath.Base(sn.Path), rerr)
			snapBad++
		}
	}
	if damaged > 0 || snapBad > 0 {
		return fmt.Errorf("damage found: %d log issue(s), %d corrupt snapshot(s)", damaged, snapBad)
	}
	fmt.Printf("ok: %d segment(s), %d snapshot(s), last seq %d\n", len(segs), len(snaps), lastSeq)
	return nil
}

// truncate performs the same tail repair the server performs on startup, by
// opening the log read-write and immediately closing it. Every repair is
// reported from the OpenReport.
func truncate(dir string) error {
	// Adopt the stream ID from the first segment present; an empty dir has
	// nothing to repair.
	segs, err := wal.SegmentInfos(dir)
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		fmt.Println("no segments; nothing to repair")
		return nil
	}
	scan, err := wal.ScanSegment(segs[0].Path, func(wal.Rec) error { return nil })
	if err != nil {
		return fmt.Errorf("%s: %w", segs[0].Path, err)
	}
	l, report, err := wal.Open(dir, wal.Options{StreamID: scan.StreamID}, nil)
	if err != nil {
		return err
	}
	if cerr := l.Close(); cerr != nil {
		return cerr
	}
	if report.Corrupt {
		fmt.Printf("repaired: truncated %d byte(s), removed %d orphaned segment(s)\n",
			report.TruncatedBytes, report.RemovedSegments)
	} else {
		fmt.Println("clean: nothing to repair")
	}
	fmt.Printf("%d record(s) remain, seq=[%d..%d]\n", report.Records, report.FirstSeq, report.LastSeq)
	return nil
}

// dump prints the last n records' decoded batch payloads.
func dump(dir string, n int) error {
	segs, err := wal.SegmentInfos(dir)
	if err != nil {
		return err
	}
	type rec struct {
		seq   uint64
		batch wal.Batch
	}
	var tail []rec
	for _, seg := range segs {
		_, err := wal.ScanSegment(seg.Path, func(r wal.Rec) error {
			b, derr := wal.DecodeBatch(r.Payload)
			if derr != nil {
				return fmt.Errorf("seq %d: %w", r.Seq, derr)
			}
			tail = append(tail, rec{r.Seq, b})
			if len(tail) > n {
				tail = tail[1:]
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("%s: %w", seg.Path, err)
		}
	}
	for _, r := range tail {
		b := &r.batch
		fmt.Printf("seq=%d t=%d maxSeen=%d readings=%d forced=%d gaps=%d\n",
			r.seq, b.Time, b.MaxSeen, len(b.Readings), b.Forced, b.Drops.GapSeconds)
	}
	return nil
}
