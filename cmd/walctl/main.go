// Command walctl inspects and repairs a server data directory (WAL segments
// plus engine snapshots) offline. It never needs the server's floor plan: it
// works at the framing layer the wal package defines, decoding batch payloads
// opportunistically for display.
//
// Both layouts are understood: a single engine's flat directory, and a
// sharded engine's root (detected by its SHARDS guard file), which holds
// router snapshots, optional quarantine markers, and one shard-NNNN/
// subdirectory per shard. inspect and verify walk every shard of a sharded
// root; truncate and dump operate on one log, so point them at a shard
// subdirectory.
//
// Usage:
//
//	walctl inspect <dir>            # list segments and snapshots with seq ranges
//	walctl verify <dir>             # scan every record's CRC; exit 1 on damage
//	walctl truncate <dir>           # cut torn/corrupt tails in place (what the
//	                                # server does on startup, made explicit)
//	walctl dump <dir> [-n 10]       # print the last n records' decoded batches
//
// verify and inspect are read-only. truncate modifies files and prints every
// repair it performs; run verify first to see what it would do.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/wal"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 2 {
		usage()
		os.Exit(2)
	}
	cmd, dir := flag.Arg(0), flag.Arg(1)
	var err error
	switch cmd {
	case "inspect":
		err = inspect(dir)
	case "verify":
		err = verify(dir)
	case "truncate":
		if n := shardCount(dir); n > 0 {
			err = fmt.Errorf("%s is a sharded data directory (%d shards); truncate one log at a time: walctl truncate %s", dir, n, filepath.Join(dir, "shard-0000"))
			break
		}
		err = truncate(dir)
	case "dump":
		n := 10
		if flag.NArg() > 2 {
			if _, serr := fmt.Sscanf(flag.Arg(2), "%d", &n); serr != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "walctl: bad record count %q\n", flag.Arg(2))
				os.Exit(2)
			}
		}
		if sc := shardCount(dir); sc > 0 {
			err = fmt.Errorf("%s is a sharded data directory (%d shards); dump one log at a time: walctl dump %s", dir, sc, filepath.Join(dir, "shard-0000"))
			break
		}
		err = dump(dir, n)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "walctl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: walctl <command> <data-dir> [args]

commands:
  inspect   list segments and snapshots with sequence ranges (read-only;
            walks every shard of a sharded directory)
  verify    scan every record CRC, report damage; exit 1 if any (read-only;
            walks every shard of a sharded directory)
  truncate  repair torn/corrupt tails in place (one log: for sharded
            directories point at a shard-NNNN subdirectory)
  dump      print the last N records' decoded batches (default 10; one log)
`)
}

// shardCount reads the SHARDS guard file a sharded engine pins its data
// directory with. 0 means a flat (single-engine) directory.
func shardCount(dir string) int {
	data, err := os.ReadFile(filepath.Join(dir, "SHARDS"))
	if err != nil {
		return 0
	}
	n, err := strconv.Atoi(strings.TrimSpace(string(data)))
	if err != nil || n <= 0 {
		return 0
	}
	return n
}

// quarantinedShards lists the shard indexes with a quarantine marker, with
// the seq each marker records.
func quarantinedShards(dir string, n int) map[int]string {
	out := make(map[int]string)
	for i := 0; i < n; i++ {
		data, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("quarantine-%04d", i)))
		if err != nil {
			continue
		}
		out[i] = strings.TrimSpace(string(data))
	}
	return out
}

// inspect lists segments (with a scan per segment for seq ranges) and
// snapshots. It is read-only and tolerant: damaged segments are listed with
// their damage, not skipped. Sharded directories are walked shard by shard.
func inspect(dir string) error {
	n := shardCount(dir)
	if n == 0 {
		return inspectDir(dir, "")
	}
	fmt.Printf("sharded data directory: %d shard(s)\n", n)
	quar := quarantinedShards(dir, n)
	snaps, err := wal.ListSnapshots(dir)
	if err != nil {
		return err
	}
	fmt.Printf("%d router snapshot(s)\n", len(snaps))
	for _, sn := range snaps {
		fmt.Printf("  %-28s %8d bytes  seq=%d\n", filepath.Base(sn.Path), sn.Size, sn.Seq)
	}
	for i := 0; i < n; i++ {
		state := ""
		if seq, ok := quar[i]; ok {
			state = fmt.Sprintf("  QUARANTINED at seq %s", seq)
		}
		fmt.Printf("shard %d%s\n", i, state)
		if err := inspectDir(filepath.Join(dir, fmt.Sprintf("shard-%04d", i)), "  "); err != nil {
			return err
		}
	}
	return nil
}

func inspectDir(dir, indent string) error {
	segs, err := wal.SegmentInfos(dir)
	if err != nil {
		return err
	}
	fmt.Printf("%s%d segment(s) in %s\n", indent, len(segs), dir)
	total := 0
	for _, seg := range segs {
		scan, err := wal.ScanSegment(seg.Path, func(wal.Rec) error { return nil })
		if err != nil {
			return fmt.Errorf("%s: %w", seg.Path, err)
		}
		total += scan.Records
		fmt.Printf("%s  %-28s %8d bytes  records=%-6d seq=[%d..%d]  stream=%016x",
			indent, filepath.Base(seg.Path), scan.FileSize, scan.Records, scan.FirstSeq, scan.LastSeq, scan.StreamID)
		if scan.Tail > 0 {
			fmt.Printf("  TAIL=%d bytes (%s)", scan.Tail, scan.Reason)
		}
		fmt.Println()
	}
	snaps, err := wal.ListSnapshots(dir)
	if err != nil {
		return err
	}
	fmt.Printf("%s%d snapshot(s)\n", indent, len(snaps))
	for _, sn := range snaps {
		fmt.Printf("%s  %-28s %8d bytes  seq=%d\n", indent, filepath.Base(sn.Path), sn.Size, sn.Seq)
	}
	fmt.Printf("%stotal valid records: %d\n", indent, total)
	return nil
}

// verify scans every record of every segment and reports CRC/framing damage
// and inter-segment sequence gaps. Exit status 1 (via a returned error) when
// anything is wrong, so it scripts cleanly. On a sharded directory every
// shard is verified and its seq range reported; a quarantined shard's log
// legitimately ends early, so raggedness across shards is informational,
// not damage.
func verify(dir string) error {
	n := shardCount(dir)
	if n == 0 {
		segs, snaps, lastSeq, damaged, err := verifyDir(dir, "")
		if err != nil {
			return err
		}
		if damaged > 0 {
			return fmt.Errorf("damage found: %d issue(s)", damaged)
		}
		fmt.Printf("ok: %d segment(s), %d snapshot(s), last seq %d\n", segs, snaps, lastSeq)
		return nil
	}
	fmt.Printf("sharded data directory: %d shard(s)\n", n)
	quar := quarantinedShards(dir, n)
	totalDamage := 0
	rsnaps, err := wal.ListSnapshots(dir)
	if err != nil {
		return err
	}
	totalDamage += verifySnapshots(dir, rsnaps, "")
	for i := 0; i < n; i++ {
		sub := filepath.Join(dir, fmt.Sprintf("shard-%04d", i))
		segs, snaps, lastSeq, damaged, err := verifyDir(sub, "  ")
		if err != nil {
			return err
		}
		totalDamage += damaged
		state := ""
		if seq, ok := quar[i]; ok {
			state = fmt.Sprintf("  QUARANTINED at seq %s", seq)
		}
		fmt.Printf("shard %d: %d segment(s), %d snapshot(s), last seq %d%s\n",
			i, segs, snaps, lastSeq, state)
	}
	if totalDamage > 0 {
		return fmt.Errorf("damage found: %d issue(s)", totalDamage)
	}
	fmt.Printf("ok: %d router snapshot(s), %d shard(s)\n", len(rsnaps), n)
	return nil
}

func verifyDir(dir, indent string) (segCount, snapCount int, lastSeq uint64, damaged int, err error) {
	segs, err := wal.SegmentInfos(dir)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	haveSeqs := false
	for _, seg := range segs {
		scan, serr := wal.ScanSegment(seg.Path, func(r wal.Rec) error {
			if _, derr := wal.DecodeBatch(r.Payload); derr != nil {
				return fmt.Errorf("seq %d: undecodable batch payload: %w", r.Seq, derr)
			}
			if haveSeqs && r.Seq != lastSeq+1 {
				fmt.Printf("%s%s: seq gap: %d follows %d\n", indent, filepath.Base(seg.Path), r.Seq, lastSeq)
				damaged++
			}
			lastSeq, haveSeqs = r.Seq, true
			return nil
		})
		if serr != nil {
			return 0, 0, 0, 0, fmt.Errorf("%s: %w", seg.Path, serr)
		}
		if scan.BadRecord || scan.Tail > 0 {
			fmt.Printf("%s%s: %d tail byte(s) after %d valid record(s): %s\n",
				indent, filepath.Base(seg.Path), scan.Tail, scan.Records, scan.Reason)
			damaged++
		}
	}
	snaps, err := wal.ListSnapshots(dir)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	damaged += verifySnapshots(dir, snaps, indent)
	return len(segs), len(snaps), lastSeq, damaged, nil
}

func verifySnapshots(dir string, snaps []wal.SnapshotInfo, indent string) int {
	bad := 0
	for _, sn := range snaps {
		// Stream ID 0 is never assigned, so pass the snapshot's own header
		// check but treat a mismatch report as "unknown stream", not damage:
		// walctl has no floor plan to derive the expected ID from. Only
		// structural corruption counts.
		if _, _, rerr := wal.ReadSnapshotFile(sn.Path, 0); rerr != nil {
			var mm *wal.MismatchError
			if errors.As(rerr, &mm) {
				continue
			}
			fmt.Printf("%s%s: %v\n", indent, filepath.Base(sn.Path), rerr)
			bad++
		}
	}
	return bad
}

// truncate performs the same tail repair the server performs on startup, by
// opening the log read-write and immediately closing it. Every repair is
// reported from the OpenReport.
func truncate(dir string) error {
	// Adopt the stream ID from the first segment present; an empty dir has
	// nothing to repair.
	segs, err := wal.SegmentInfos(dir)
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		fmt.Println("no segments; nothing to repair")
		return nil
	}
	scan, err := wal.ScanSegment(segs[0].Path, func(wal.Rec) error { return nil })
	if err != nil {
		return fmt.Errorf("%s: %w", segs[0].Path, err)
	}
	l, report, err := wal.Open(dir, wal.Options{StreamID: scan.StreamID}, nil)
	if err != nil {
		return err
	}
	if cerr := l.Close(); cerr != nil {
		return cerr
	}
	if report.Corrupt {
		fmt.Printf("repaired: truncated %d byte(s), removed %d orphaned segment(s)\n",
			report.TruncatedBytes, report.RemovedSegments)
	} else {
		fmt.Println("clean: nothing to repair")
	}
	fmt.Printf("%d record(s) remain, seq=[%d..%d]\n", report.Records, report.FirstSeq, report.LastSeq)
	return nil
}

// dump prints the last n records' decoded batch payloads.
func dump(dir string, n int) error {
	segs, err := wal.SegmentInfos(dir)
	if err != nil {
		return err
	}
	type rec struct {
		seq   uint64
		batch wal.Batch
	}
	var tail []rec
	for _, seg := range segs {
		_, err := wal.ScanSegment(seg.Path, func(r wal.Rec) error {
			b, derr := wal.DecodeBatch(r.Payload)
			if derr != nil {
				return fmt.Errorf("seq %d: %w", r.Seq, derr)
			}
			tail = append(tail, rec{r.Seq, b})
			if len(tail) > n {
				tail = tail[1:]
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("%s: %w", seg.Path, err)
		}
	}
	for _, r := range tail {
		b := &r.batch
		fmt.Printf("seq=%d t=%d maxSeen=%d readings=%d forced=%d gaps=%d\n",
			r.seq, b.Time, b.MaxSeen, len(b.Readings), b.Forced, b.Drops.GapSeconds)
	}
	return nil
}
