// Command server runs the indoor spatial query system as an HTTP service:
// reader gateways POST raw readings to /ingest and applications query
// /range, /knn, /localize, /occupancy, /stats, /plan, and /snapshot.svg.
//
// Usage:
//
//	server                        # default office on :8080
//	server -addr :9000 -plan my-building.json -readers 24 -range 1.5
//	server -demo                  # also run a built-in simulator feeding readings
//	server -data-dir ./data       # durable: WAL + snapshots, recover on restart
//	server -addr :8080 -node-id 10.0.0.1:8080 \
//	       -peers 10.0.0.1:8080,10.0.0.2:8080   # one node of a static cluster
//
// With -data-dir set the server opens (or creates) a write-ahead log and
// snapshot store there, recovers any prior state on startup, and on SIGINT or
// SIGTERM drains in-flight requests, flushes the reorder buffer, and writes a
// final snapshot before exiting.
//
// With -peers set the node joins a static cluster: every node is given the
// same member list, owns the objects the shared jump hash assigns it, and
// forwards the rest over gob RPC on /cluster/rpc (see DESIGN.md §17).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/floorplan"
	"repro/internal/health"
	"repro/internal/obs/trace"
	"repro/internal/rfid"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/wal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "server: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		planFile = flag.String("plan", "", "floor plan JSON file (default: built-in office)")
		readers  = flag.Int("readers", rfid.DefaultReaders, "readers to deploy uniformly")
		rdRange  = flag.Float64("range", rfid.DefaultActivationRange, "reader activation range (m)")
		history  = flag.Bool("history", true, "retain full reading history for historical queries")
		demo     = flag.Bool("demo", false, "run a built-in simulator that feeds readings")
		objects  = flag.Int("objects", 30, "simulated objects in -demo mode")
		seed     = flag.Int64("seed", 1, "random seed")
		pprofOn  = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		slowQ    = flag.Duration("slow-query", 100*time.Millisecond, "slow-query log threshold (0 disables the log)")
		shards   = flag.Int("shards", 1, "engine shards; >1 partitions objects across independently locked shards")
		traceSmp = flag.Float64("trace-sample", 0.01, "probability an unremarkable request trace is kept at /debug/traces (slow/shed/deadline/errored traces are always kept; negative disables tracing)")

		healthOn    = flag.Bool("reader-health", true, "infer per-reader liveness and compensate the sensing model for SUSPECT/DEAD readers")
		maxInFlight = flag.Int("max-inflight", 4, "concurrent queries admitted (0 disables admission control and overload shedding)")
		maxQueue    = flag.Int("max-queue", 32, "queries allowed to wait for an admission slot before shedding with 429")
		maxWait     = flag.Duration("max-wait", 500*time.Millisecond, "longest a query waits for an admission slot before 429")
		degradedNs  = flag.Int("degraded-particles", 32, "per-object particle budget under sustained overload (0 disables degraded mode)")
		ingestBytes = flag.Int64("ingest-max-bytes", server.DefaultMaxIngestBytes, "POST /ingest body cap in bytes (negative disables)")

		peersFlag = flag.String("peers", "", "comma-separated cluster membership host:port list, including this node (empty: single-node)")
		nodeID    = flag.String("node-id", "", "this node's address exactly as it appears in -peers (required with -peers)")

		dataDir   = flag.String("data-dir", "", "data directory for the WAL and snapshots (empty: in-memory only)")
		fsync     = flag.String("fsync", "always", "WAL fsync policy: always, interval, or off")
		fsyncIvl  = flag.Duration("fsync-interval", time.Second, "minimum spacing between fsyncs under -fsync=interval")
		snapEvery = flag.Int("snapshot-every", 300, "write an engine snapshot every N acked stream seconds (0: only on shutdown)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
	)
	flag.Parse()

	plan := floorplan.DefaultOffice()
	if *planFile != "" {
		data, err := os.ReadFile(*planFile)
		if err != nil {
			return err
		}
		plan, err = floorplan.Decode(data)
		if err != nil {
			return err
		}
	}
	dep, err := rfid.DeployUniform(plan, *readers, *rdRange)
	if err != nil {
		return err
	}
	cfg := engine.DefaultConfig()
	cfg.KeepHistory = *history
	cfg.Seed = *seed
	cfg.SlowQueryThreshold = *slowQ
	if !*healthOn {
		cfg.Health = health.Config{}
	}
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			return err
		}
		cfg.Durability = engine.DurabilityConfig{
			Dir:           *dataDir,
			Fsync:         policy,
			FsyncInterval: *fsyncIvl,
			SnapshotEvery: *snapEvery,
		}
	}
	var sys server.Engine
	var eng cluster.Local
	if *shards > 1 {
		cfg.Shards = *shards
		sh, serr := engine.OpenSharded(plan, dep, cfg)
		sys, eng, err = sh, sh, serr
	} else {
		sg, serr := engine.Open(plan, dep, cfg)
		sys, eng, err = sg, sg, serr
	}
	if err != nil {
		return err
	}
	if *peersFlag != "" {
		var members []string
		for _, p := range strings.Split(*peersFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				members = append(members, p)
			}
		}
		node, err := cluster.New(eng, cluster.Config{
			Self:      *nodeID,
			Peers:     members,
			Transport: cluster.NewHTTPTransport(),
			Seed:      *seed,
			// Bound concurrent remote evaluates by the same knob that bounds
			// client queries, so a forwarded scatter cannot starve local ones.
			EvaluateSlots: *maxInFlight,
		})
		if err != nil {
			return err
		}
		sys = node
		fmt.Printf("cluster: node %s of %v\n", *nodeID, node.Members())
	}
	adm := server.DefaultAdmissionConfig()
	adm.MaxInFlight = *maxInFlight
	adm.MaxQueue = *maxQueue
	adm.MaxWait = *maxWait
	adm.DegradedParticles = *degradedNs
	srv := server.NewWith(sys, plan, dep, server.Config{
		Admission:      adm,
		MaxIngestBytes: *ingestBytes,
		Trace: trace.Config{
			Sample: *traceSmp,
			Slow:   *slowQ,
			Seed:   *seed,
		},
	})
	if rec := sys.Recovery(); rec.Enabled {
		fmt.Printf("durability: data-dir=%s fsync=%s; recovered snapshot seq=%d, replayed %d records (%d readings)",
			*dataDir, *fsync, rec.SnapshotSeq, rec.RecordsReplayed, rec.ReadingsReplayed)
		if rec.Corrupt {
			fmt.Printf("; repaired torn tail (%d bytes truncated)", rec.TruncatedBytes)
		}
		fmt.Println()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *demo {
		tc := sim.DefaultTraceConfig()
		tc.NumObjects = *objects
		world, err := sim.New(sys.Graph(), rfid.NewSensor(dep), tc, *seed+7)
		if err != nil {
			return err
		}
		// After a recovery the stream clock is past zero; fast-forward the
		// simulator so its deliveries land ahead of the watermark instead of
		// being rejected as late retransmissions.
		for world.Now() < sys.Now() {
			world.Step()
		}
		go func() {
			// One simulated second per wall-clock second, ingested through
			// the same code path HTTP clients use.
			ticker := time.NewTicker(time.Second)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					t, raws := world.Step()
					srv.IngestDirect(t, raws)
				}
			}
		}()
		fmt.Printf("demo simulator running: %d objects\n", *objects)
	}

	fmt.Printf("indoor query server on %s (%d rooms, %d readers)\n",
		*addr, len(plan.Rooms()), dep.NumReaders())
	fmt.Printf("telemetry: /metrics, /debug/filtertrace and /debug/traces")
	if *pprofOn {
		fmt.Printf(", pprof on /debug/pprof/")
	}
	fmt.Println()

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.HandlerWith(server.HandlerConfig{EnablePProf: *pprofOn}),
		// Bound every connection phase so a slow or malicious client cannot
		// hold a goroutine forever (slowloris): headers within 5s, the whole
		// request within 30s, responses within 2m (SVG snapshots and pprof
		// profiles are the slow ones), idle keep-alives recycled at 2m.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop admitting (readyz goes 503 so load balancers
	// route away), drain in-flight requests up to the deadline, then flush
	// the reorder buffer and write a final snapshot via srv.Close.
	fmt.Println("server: shutting down, draining requests")
	srv.SetReady(false)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "server: drain: %v\n", err)
		httpSrv.Close()
	}
	if err := srv.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	fmt.Println("server: state persisted, bye")
	return nil
}
