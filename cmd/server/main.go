// Command server runs the indoor spatial query system as an HTTP service:
// reader gateways POST raw readings to /ingest and applications query
// /range, /knn, /localize, /occupancy, /stats, /plan, and /snapshot.svg.
//
// Usage:
//
//	server                        # default office on :8080
//	server -addr :9000 -plan my-building.json -readers 24 -range 1.5
//	server -demo                  # also run a built-in simulator feeding readings
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/engine"
	"repro/internal/floorplan"
	"repro/internal/rfid"
	"repro/internal/server"
	"repro/internal/sim"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		planFile = flag.String("plan", "", "floor plan JSON file (default: built-in office)")
		readers  = flag.Int("readers", rfid.DefaultReaders, "readers to deploy uniformly")
		rdRange  = flag.Float64("range", rfid.DefaultActivationRange, "reader activation range (m)")
		history  = flag.Bool("history", true, "retain full reading history for historical queries")
		demo     = flag.Bool("demo", false, "run a built-in simulator that feeds readings")
		objects  = flag.Int("objects", 30, "simulated objects in -demo mode")
		seed     = flag.Int64("seed", 1, "random seed")
		pprofOn  = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		slowQ    = flag.Duration("slow-query", 100*time.Millisecond, "slow-query log threshold (0 disables the log)")
	)
	flag.Parse()

	plan := floorplan.DefaultOffice()
	if *planFile != "" {
		data, err := os.ReadFile(*planFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "server: %v\n", err)
			os.Exit(1)
		}
		plan, err = floorplan.Decode(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "server: %v\n", err)
			os.Exit(1)
		}
	}
	dep, err := rfid.DeployUniform(plan, *readers, *rdRange)
	if err != nil {
		fmt.Fprintf(os.Stderr, "server: %v\n", err)
		os.Exit(1)
	}
	cfg := engine.DefaultConfig()
	cfg.KeepHistory = *history
	cfg.Seed = *seed
	cfg.SlowQueryThreshold = *slowQ
	sys, err := engine.New(plan, dep, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "server: %v\n", err)
		os.Exit(1)
	}
	srv := server.New(sys, plan, dep)

	if *demo {
		tc := sim.DefaultTraceConfig()
		tc.NumObjects = *objects
		world, err := sim.New(sys.Graph(), rfid.NewSensor(dep), tc, *seed+7)
		if err != nil {
			fmt.Fprintf(os.Stderr, "server: %v\n", err)
			os.Exit(1)
		}
		go func() {
			// One simulated second per wall-clock second, ingested through
			// the same code path HTTP clients use.
			ticker := time.NewTicker(time.Second)
			defer ticker.Stop()
			for range ticker.C {
				t, raws := world.Step()
				srv.IngestDirect(t, raws)
			}
		}()
		fmt.Printf("demo simulator running: %d objects\n", *objects)
	}

	fmt.Printf("indoor query server on %s (%d rooms, %d readers)\n",
		*addr, len(plan.Rooms()), dep.NumReaders())
	fmt.Printf("telemetry: /metrics and /debug/filtertrace")
	if *pprofOn {
		fmt.Printf(", pprof on /debug/pprof/")
	}
	fmt.Println()
	handler := srv.HandlerWith(server.HandlerConfig{EnablePProf: *pprofOn})
	if err := http.ListenAndServe(*addr, handler); err != nil {
		fmt.Fprintf(os.Stderr, "server: %v\n", err)
		os.Exit(1)
	}
}
