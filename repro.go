// Package repro is an RFID and particle filter-based indoor spatial query
// evaluation system, reproducing Yu, Ku, Sun, and Lu, "An RFID and Particle
// Filter-Based Indoor Spatial Query Evaluation System" (EDBT 2013).
//
// The system ingests noisy raw RFID readings from readers deployed along the
// hallways of an indoor floor plan, cleanses them with a particle filter
// constrained to the indoor walking graph, indexes the resulting location
// distributions on anchor points, and answers probabilistic indoor range and
// k-nearest-neighbor queries. A symbolic model baseline (uniform over
// reachable locations) is included for comparison, together with a full
// simulator and the benchmark harness regenerating every figure of the
// paper's evaluation.
//
// Quick start:
//
//	plan := repro.DefaultOffice()
//	dep := repro.MustDeployUniform(plan, repro.DefaultReaders, repro.DefaultActivationRange)
//	sys := repro.MustNewSystem(plan, dep, repro.DefaultConfig())
//	// feed sys.Ingest(t, raws) every second, then:
//	result := sys.RangeQuery(repro.RectWH(10, 9, 20, 8))
//
// The package is a thin facade: the subsystems live in internal packages
// (walkgraph, particle, anchor, symbolic, query, ...) and are re-exported
// here as type aliases, so this one import gives access to the full public
// surface.
package repro

import (
	"repro/internal/anchor"
	"repro/internal/engine"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/particle"
	"repro/internal/query"
	"repro/internal/rfid"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/walkgraph"
)

// Geometry.

// Point is a 2-D floor-plan coordinate in meters.
type Point = geom.Point

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// Rect is an axis-aligned rectangle (query window, room bounds).
type Rect = geom.Rect

// RectWH builds a Rect from its lower-left corner, width, and height.
func RectWH(x, y, w, h float64) Rect { return geom.RectWH(x, y, w, h) }

// RectFromCorners builds a Rect from two opposite corners.
func RectFromCorners(a, b Point) Rect { return geom.RectFromCorners(a, b) }

// Circle is a disk (reader activation range, uncertain region).
type Circle = geom.Circle

// Segment is a line segment (hallway centerline).
type Segment = geom.Segment

// Seg is shorthand for Segment{a, b}.
func Seg(a, b Point) Segment { return geom.Seg(a, b) }

// Floor plans.

// FloorPlan is an immutable indoor floor plan: rooms, hallways, doors.
type FloorPlan = floorplan.Plan

// PlanBuilder assembles a FloorPlan incrementally.
type PlanBuilder = floorplan.Builder

// NewPlanBuilder returns an empty PlanBuilder.
func NewPlanBuilder() *PlanBuilder { return floorplan.NewBuilder() }

// RoomID identifies a room; HallwayID a hallway.
type RoomID = floorplan.RoomID

// HallwayID identifies a hallway within a plan.
type HallwayID = floorplan.HallwayID

// DefaultOffice returns the paper's evaluation floor plan: 30 rooms and 4
// hallways forming a ring corridor on a single floor.
func DefaultOffice() *FloorPlan { return floorplan.DefaultOffice() }

// TwoStoryOffice returns a two-story variant of the default office, joined
// by staircase links.
func TwoStoryOffice() *FloorPlan { return floorplan.TwoStoryOffice() }

// RandomOffice generates a random valid office layout, useful for testing
// deployments across many geometries.
func RandomOffice(seed int64, hallways int) *FloorPlan {
	return floorplan.RandomOffice(rng.New(seed), hallways)
}

// Link is an abstract walkable connection between hallway points (stairs,
// elevator) with an explicit walking length.
type Link = floorplan.Link

// Walking graph.

// WalkGraph is the indoor walking graph G(N, E) derived from a floor plan.
type WalkGraph = walkgraph.Graph

// Location is a point on the walking graph (edge + offset).
type Location = walkgraph.Location

// BuildWalkGraph constructs the walking graph for a plan.
func BuildWalkGraph(plan *FloorPlan) (*WalkGraph, error) { return walkgraph.Build(plan) }

// RFID substrate.

// Reader is a deployed RFID reader.
type Reader = rfid.Reader

// Deployment is a set of deployed readers.
type Deployment = rfid.Deployment

// Sensor is the noisy read-process model producing raw readings.
type Sensor = rfid.Sensor

// Deployment defaults from the paper's evaluation (Section 5, Table 2).
const (
	DefaultReaders         = rfid.DefaultReaders
	DefaultActivationRange = rfid.DefaultActivationRange
)

// DeployUniform places n readers with the given activation range at uniform
// spacing along the plan's hallways.
func DeployUniform(plan *FloorPlan, n int, activationRange float64) (*Deployment, error) {
	return rfid.DeployUniform(plan, n, activationRange)
}

// MustDeployUniform is DeployUniform for known-valid parameters.
func MustDeployUniform(plan *FloorPlan, n int, activationRange float64) *Deployment {
	return rfid.MustDeployUniform(plan, n, activationRange)
}

// NewDeployment builds a deployment from an explicit reader list.
func NewDeployment(readers []Reader) *Deployment { return rfid.NewDeployment(readers) }

// NewSensor returns a Sensor with the default noise parameters.
func NewSensor(d *Deployment) *Sensor { return rfid.NewSensor(d) }

// Identifiers and records.

// ObjectID identifies a moving object (and its RFID tag).
type ObjectID = model.ObjectID

// ReaderID identifies a reader.
type ReaderID = model.ReaderID

// Time is a simulation time stamp in whole seconds.
type Time = model.Time

// RawReading is one raw RFID read.
type RawReading = model.RawReading

// Batch is one gateway delivery: the readings for batch second Time.
type Batch = model.Batch

// ResultSet is a probabilistic query answer: object -> probability.
type ResultSet = model.ResultSet

// AnchorID identifies an anchor point.
type AnchorID = anchor.ID

// AnchorTable is the APtoObjHT hash table mapping anchor points to object
// probabilities.
type AnchorTable = anchor.Table

// The system.

// Config parameterizes a System.
type Config = engine.Config

// ParticleConfig holds the particle filter parameters.
type ParticleConfig = particle.Config

// DefaultConfig returns the paper's default parameters (Table 2).
func DefaultConfig() Config { return engine.DefaultConfig() }

// System is the assembled indoor spatial query evaluation system of the
// paper's Figure 3.
type System = engine.System

// NewSystem assembles a System over a floor plan and reader deployment.
func NewSystem(plan *FloorPlan, dep *Deployment, cfg Config) (*System, error) {
	return engine.New(plan, dep, cfg)
}

// MustNewSystem is NewSystem for known-valid inputs.
func MustNewSystem(plan *FloorPlan, dep *Deployment, cfg Config) *System {
	return engine.MustNew(plan, dep, cfg)
}

// Localization (track-and-trace view).

// Localization summarizes an object's inferred whereabouts.
type Localization = engine.Localization

// RoomOdds is one entry of a room-level localization ranking.
type RoomOdds = engine.RoomOdds

// TrajectoryPoint is one reconstructed sample of an object's past movement.
type TrajectoryPoint = engine.TrajectoryPoint

// Stats are the system's cumulative work counters.
type Stats = engine.Stats

// Hardened ingestion front end.

// IngestConfig parameterizes the reorder buffer in front of the collector:
// lateness horizon, skew tolerance, and buffer bound (Config.Ingest). The
// zero value keeps the strict in-order contract. With a non-zero Horizon
// the newest Horizon seconds stay buffered until a later batch closes
// them, so call System.FlushIngest at end of stream before final queries.
type IngestConfig = ingest.Config

// IngestError is the typed error returned by the Ingest family whenever
// input is refused or discarded: late, duplicate, mis-stamped, or invalid.
type IngestError = ingest.Error

// IngestDrops is the explicit drop accounting of the ingestion path,
// exposed through Stats.Ingest.
type IngestDrops = ingest.Drops

// Registered continuous queries.

// Registry tracks registered continuous queries and emits result-set change
// events on each evaluation — the paper's "registered queries" flow.
type Registry = engine.Registry

// NewRegistry creates a query registry over a system.
func NewRegistry(sys *System) *Registry { return engine.NewRegistry(sys) }

// QueryID identifies a registered query; QueryEvent is a result change.
type QueryID = engine.QueryID

// QueryEvent is one result-set change of a registered query.
type QueryEvent = engine.QueryEvent

// Serialization.

// DecodePlan parses the portable floor-plan JSON format.
func DecodePlan(data []byte) (*FloorPlan, error) { return floorplan.Decode(data) }

// DecodeDeployment parses the portable deployment JSON format.
func DecodeDeployment(data []byte, plan *FloorPlan) (*Deployment, error) {
	return rfid.DecodeDeployment(data, plan)
}

// Simulation.

// Simulator generates ground-truth traces and noisy raw readings.
type Simulator = sim.Simulator

// TraceConfig parameterizes the true trace generator.
type TraceConfig = sim.TraceConfig

// DefaultTraceConfig returns the paper's trace parameters.
func DefaultTraceConfig() TraceConfig { return sim.DefaultTraceConfig() }

// NewSimulator builds a simulator over a walking graph and sensor.
func NewSimulator(g *WalkGraph, sensor *Sensor, cfg TraceConfig, seed int64) (*Simulator, error) {
	return sim.New(g, sensor, cfg, seed)
}

// MustNewSimulator is NewSimulator for known-valid parameters.
func MustNewSimulator(g *WalkGraph, sensor *Sensor, cfg TraceConfig, seed int64) *Simulator {
	return sim.MustNew(g, sensor, cfg, seed)
}

// FaultConfig parameterizes the fault-injection layer between the sensor
// model and the ingestion path (dropout, burst loss, clock skew, delays,
// duplicate deliveries).
type FaultConfig = sim.FaultConfig

// FaultInjector degrades a simulated reading stream with configured faults
// while accounting for every reading it touches.
type FaultInjector = sim.Injector

// NewFaultInjector builds a fault injector over numReaders readers.
func NewFaultInjector(cfg FaultConfig, numReaders int, seed int64) (*FaultInjector, error) {
	return sim.NewInjector(cfg, numReaders, seed)
}

// Query extensions (the paper's future-work query types).

// Pair is a closest-pairs result: two objects and their expected network
// distance.
type Pair = query.Pair

// PTKNNResult is one probabilistic-threshold kNN answer entry.
type PTKNNResult = query.PTKNNResult

// ContinuousRange monitors a registered range query across snapshots.
type ContinuousRange = query.ContinuousRange

// NewContinuousRange registers a continuous range query with a membership
// probability threshold.
func NewContinuousRange(window Rect, threshold float64) *ContinuousRange {
	return query.NewContinuousRange(window, threshold)
}

// ContinuousKNN monitors a registered kNN query across snapshots.
type ContinuousKNN = query.ContinuousKNN

// NewContinuousKNN registers a continuous kNN query.
func NewContinuousKNN(q Point, k int) *ContinuousKNN { return query.NewContinuousKNN(q, k) }

// TopKObjects ranks a probabilistic result set and returns the k most likely
// objects.
func TopKObjects(rs ResultSet, k int) []ObjectID { return query.TopKObjects(rs, k) }

// Metrics.

// KLDivergence returns the smoothed Kullback-Leibler divergence between a
// ground-truth result set and a probabilistic answer.
func KLDivergence(truth, answer ResultSet) float64 {
	return metrics.KLDivergence(truth, answer, metrics.DefaultEpsilon)
}

// HitRate returns the fraction of the ground-truth result a method found.
func HitRate(returned, truth []ObjectID) float64 { return metrics.HitRate(returned, truth) }
