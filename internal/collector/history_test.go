package collector

import (
	"testing"

	"repro/internal/model"
)

func TestHistoryRetainsAllRuns(t *testing.T) {
	c := NewWithHistory()
	if !c.Historic() {
		t.Fatal("Historic() false")
	}
	c.IngestSecond(1, raw(1, 2, 1, 5))
	c.IngestSecond(5, raw(1, 3, 5, 5))
	c.IngestSecond(9, raw(1, 4, 9, 5))
	// Live view still trims to the two most recent devices.
	di, dj := c.RecentDevices(1)
	if di != 3 || dj != 4 {
		t.Errorf("RecentDevices = %d, %d", di, dj)
	}
	// But the history can reconstruct the past.
	ag := c.AggregatedUpTo(1, 6)
	if len(ag) != 2 || ag[0].Reader != 2 || ag[1].Reader != 3 {
		t.Errorf("AggregatedUpTo(6) = %+v", ag)
	}
}

func TestDefaultCollectorTrimsRuns(t *testing.T) {
	c := New()
	if c.Historic() {
		t.Fatal("default collector historic")
	}
	c.IngestSecond(1, raw(1, 2, 1, 5))
	c.IngestSecond(5, raw(1, 3, 5, 5))
	c.IngestSecond(9, raw(1, 4, 9, 5))
	// Without history, entries from device 2 are gone even for past queries.
	ag := c.AggregatedUpTo(1, 6)
	if len(ag) != 1 || ag[0].Reader != 3 {
		t.Errorf("AggregatedUpTo(6) without history = %+v", ag)
	}
}

func TestAggregatedUpToClipsWithinRun(t *testing.T) {
	c := NewWithHistory()
	c.IngestSecond(1, raw(1, 2, 1, 5))
	c.IngestSecond(2, raw(1, 2, 2, 5))
	c.IngestSecond(3, raw(1, 2, 3, 5))
	ag := c.AggregatedUpTo(1, 2)
	if len(ag) != 2 || ag[1].Time != 2 {
		t.Errorf("clip = %+v", ag)
	}
	// Before any reading: empty.
	if got := c.AggregatedUpTo(1, 0); got != nil {
		t.Errorf("pre-history = %+v", got)
	}
	// Unknown object: empty.
	if got := c.AggregatedUpTo(9, 5); got != nil {
		t.Errorf("unknown object = %+v", got)
	}
}

func TestAggregatedUpToTwoDeviceWindowMoves(t *testing.T) {
	c := NewWithHistory()
	c.IngestSecond(1, raw(1, 2, 1, 5))
	c.IngestSecond(5, raw(1, 3, 5, 5))
	c.IngestSecond(9, raw(1, 4, 9, 5))
	c.IngestSecond(13, raw(1, 5, 13, 5))
	// As of t=10, the two most recent devices were 3 and 4.
	ag := c.AggregatedUpTo(1, 10)
	if len(ag) != 2 || ag[0].Reader != 3 || ag[1].Reader != 4 {
		t.Errorf("window at t=10: %+v", ag)
	}
	// As of t=100, devices 4 and 5.
	ag = c.AggregatedUpTo(1, 100)
	if len(ag) != 2 || ag[0].Reader != 4 || ag[1].Reader != 5 {
		t.Errorf("window at t=100: %+v", ag)
	}
}

func TestLastReadingAtAndRecentDevicesAt(t *testing.T) {
	c := NewWithHistory()
	c.IngestSecond(1, raw(1, 2, 1, 5))
	c.IngestSecond(5, raw(1, 3, 5, 5))
	lr, ok := c.LastReadingAt(1, 3)
	if !ok || lr.Reader != 2 || lr.Time != 1 {
		t.Errorf("LastReadingAt(3) = %+v, %v", lr, ok)
	}
	if _, ok := c.LastReadingAt(1, 0); ok {
		t.Error("LastReadingAt before first reading should miss")
	}
	di, dj := c.RecentDevicesAt(1, 3)
	if di != model.NoReader || dj != 2 {
		t.Errorf("RecentDevicesAt(3) = %d, %d", di, dj)
	}
	di, dj = c.RecentDevicesAt(1, 10)
	if di != 2 || dj != 3 {
		t.Errorf("RecentDevicesAt(10) = %d, %d", di, dj)
	}
}
