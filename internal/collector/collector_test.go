package collector

import (
	"errors"
	"testing"

	"repro/internal/ingest"
	"repro/internal/model"
)

func raw(obj model.ObjectID, rd model.ReaderID, t model.Time, n int) []model.RawReading {
	out := make([]model.RawReading, n)
	for i := range out {
		out[i] = model.RawReading{Object: obj, Reader: rd, Time: t}
	}
	return out
}

func TestAggregationOneEntryPerSecond(t *testing.T) {
	c := New()
	c.IngestSecond(10, raw(1, 2, 10, 7)) // seven samples in one second
	ag := c.Aggregated(1)
	if len(ag) != 1 {
		t.Fatalf("aggregated entries = %d, want 1", len(ag))
	}
	if ag[0].Reader != 2 || ag[0].Time != 10 || !ag[0].Detected() {
		t.Errorf("entry = %+v", ag[0])
	}
}

func TestAggregationPicksMajorityReader(t *testing.T) {
	c := New()
	raws := append(raw(1, 2, 10, 3), raw(1, 5, 10, 6)...)
	c.IngestSecond(10, raws)
	ag := c.Aggregated(1)
	if len(ag) != 1 || ag[0].Reader != 5 {
		t.Fatalf("aggregated = %+v, want reader 5", ag)
	}
}

func TestAggregationTieBreaksLowerID(t *testing.T) {
	c := New()
	raws := append(raw(1, 7, 10, 3), raw(1, 2, 10, 3)...)
	c.IngestSecond(10, raws)
	if ag := c.Aggregated(1); ag[0].Reader != 2 {
		t.Fatalf("tie went to reader %d, want 2", ag[0].Reader)
	}
}

func TestEnterLeaveEvents(t *testing.T) {
	c := New()
	c.IngestSecond(1, raw(1, 2, 1, 5))
	c.IngestSecond(2, raw(1, 2, 2, 5))
	c.IngestSecond(3, nil) // left the range
	c.IngestSecond(4, raw(1, 3, 4, 5))
	ev := c.DrainEvents()
	want := []model.Event{
		{Kind: model.Enter, Object: 1, Reader: 2, Time: 1},
		{Kind: model.Leave, Object: 1, Reader: 2, Time: 3},
		{Kind: model.Enter, Object: 1, Reader: 3, Time: 4},
	}
	if len(ev) != len(want) {
		t.Fatalf("events = %v", ev)
	}
	for i := range want {
		if ev[i] != want[i] {
			t.Errorf("event[%d] = %v, want %v", i, ev[i], want[i])
		}
	}
	// Drained: second call is empty.
	if len(c.DrainEvents()) != 0 {
		t.Error("DrainEvents not drained")
	}
}

func TestDirectHandoffEmitsLeaveAndEnter(t *testing.T) {
	c := New()
	c.IngestSecond(1, raw(1, 2, 1, 5))
	c.IngestSecond(2, raw(1, 3, 2, 5)) // adjacent ranges, no gap second
	ev := c.DrainEvents()
	if len(ev) != 3 {
		t.Fatalf("events = %v", ev)
	}
	if ev[1].Kind != model.Leave || ev[1].Reader != 2 || ev[2].Kind != model.Enter || ev[2].Reader != 3 {
		t.Errorf("handoff events = %v", ev)
	}
}

func TestTwoDeviceRetention(t *testing.T) {
	c := New()
	c.IngestSecond(1, raw(1, 2, 1, 5))
	c.IngestSecond(5, raw(1, 3, 5, 5))
	c.IngestSecond(9, raw(1, 4, 9, 5)) // third device: drop device 2
	ag := c.Aggregated(1)
	if len(ag) != 2 {
		t.Fatalf("aggregated = %+v", ag)
	}
	if ag[0].Reader != 3 || ag[1].Reader != 4 {
		t.Errorf("retained readers = %d, %d; want 3, 4", ag[0].Reader, ag[1].Reader)
	}
	di, dj := c.RecentDevices(1)
	if di != 3 || dj != 4 {
		t.Errorf("RecentDevices = %d, %d", di, dj)
	}
}

func TestReentrySameDeviceExtendsRun(t *testing.T) {
	c := New()
	c.IngestSecond(1, raw(1, 2, 1, 5))
	c.IngestSecond(2, nil)
	c.IngestSecond(3, raw(1, 2, 3, 5)) // back into the same reader
	di, dj := c.RecentDevices(1)
	if di != model.NoReader || dj != 2 {
		t.Errorf("RecentDevices = %d, %d; want NoReader, 2", di, dj)
	}
	if ag := c.Aggregated(1); len(ag) != 2 {
		t.Errorf("aggregated = %+v", ag)
	}
}

func TestRecentDevicesSingleAndUnknown(t *testing.T) {
	c := New()
	di, dj := c.RecentDevices(9)
	if di != model.NoReader || dj != model.NoReader {
		t.Error("unknown object should have no devices")
	}
	c.IngestSecond(1, raw(1, 2, 1, 5))
	di, dj = c.RecentDevices(1)
	if di != model.NoReader || dj != 2 {
		t.Errorf("RecentDevices = %d, %d", di, dj)
	}
}

func TestLastReading(t *testing.T) {
	c := New()
	if _, ok := c.LastReading(1); ok {
		t.Error("LastReading on unknown object")
	}
	c.IngestSecond(1, raw(1, 2, 1, 5))
	c.IngestSecond(2, raw(1, 2, 2, 5))
	lr, ok := c.LastReading(1)
	if !ok || lr.Time != 2 || lr.Reader != 2 {
		t.Errorf("LastReading = %+v, %v", lr, ok)
	}
}

func TestReadingAt(t *testing.T) {
	c := New()
	c.IngestSecond(1, raw(1, 2, 1, 5))
	c.IngestSecond(3, raw(1, 3, 3, 5))
	if r := c.ReadingAt(1, 1); r.Reader != 2 {
		t.Errorf("ReadingAt(1) = %+v", r)
	}
	if r := c.ReadingAt(1, 2); r.Detected() {
		t.Errorf("gap second reported detected: %+v", r)
	}
	if r := c.ReadingAt(1, 3); r.Reader != 3 {
		t.Errorf("ReadingAt(3) = %+v", r)
	}
	if r := c.ReadingAt(99, 3); r.Detected() {
		t.Error("unknown object detected")
	}
}

func TestCurrentlyDetectedBy(t *testing.T) {
	c := New()
	if c.CurrentlyDetectedBy(1) != model.NoReader {
		t.Error("unknown object currently detected")
	}
	c.IngestSecond(1, raw(1, 2, 1, 5))
	if c.CurrentlyDetectedBy(1) != 2 {
		t.Error("not detected by 2")
	}
	c.IngestSecond(2, nil)
	if c.CurrentlyDetectedBy(1) != model.NoReader {
		t.Error("still detected after leaving")
	}
}

func TestIgnoresWrongTimeAndDuplicateSeconds(t *testing.T) {
	c := New()
	c.IngestSecond(5, raw(1, 2, 9, 5)) // wrong time stamp: ignored
	if len(c.Aggregated(1)) != 0 {
		t.Error("wrong-time readings aggregated")
	}
	c.IngestSecond(6, raw(1, 2, 6, 5))
	c.IngestSecond(6, raw(1, 3, 6, 5)) // duplicate second: ignored
	if ag := c.Aggregated(1); len(ag) != 1 || ag[0].Reader != 2 {
		t.Errorf("aggregated = %+v", ag)
	}
}

func TestKnownObjects(t *testing.T) {
	c := New()
	c.IngestSecond(1, append(raw(5, 2, 1, 1), raw(3, 2, 1, 1)...))
	objs := c.KnownObjects()
	if len(objs) != 2 || objs[0] != 3 || objs[1] != 5 {
		t.Errorf("KnownObjects = %v", objs)
	}
}

func TestNowAndEmptyState(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Error("fresh collector Now != 0")
	}
	c.IngestSecond(42, nil)
	if c.Now() != 42 {
		t.Errorf("Now = %d", c.Now())
	}
	if c.Aggregated(1) != nil {
		t.Error("unknown object has aggregated readings")
	}
}

func TestForgetBefore(t *testing.T) {
	c := New()
	c.IngestSecond(1, raw(1, 2, 1, 5))
	c.IngestSecond(5, raw(1, 3, 5, 5))
	c.IngestSecond(6, nil)
	// Forget everything before t=4: device 2's run ends at 1, so it goes.
	c.ForgetBefore(4)
	di, dj := c.RecentDevices(1)
	if di != model.NoReader || dj != 3 {
		t.Errorf("after ForgetBefore: devices %d, %d", di, dj)
	}
	// Forgetting past everything drops idle objects entirely.
	c.ForgetBefore(100)
	if len(c.KnownObjects()) != 0 {
		t.Errorf("objects after full forget: %v", c.KnownObjects())
	}
}

func TestEventOrderingDeterministic(t *testing.T) {
	// Many objects entering in one second must come out sorted by object ID.
	c := New()
	var raws []model.RawReading
	for obj := 20; obj >= 1; obj-- {
		raws = append(raws, raw(model.ObjectID(obj), 2, 1, 1)...)
	}
	c.IngestSecond(1, raws)
	ev := c.DrainEvents()
	if len(ev) != 20 {
		t.Fatalf("events = %d", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Object < ev[i-1].Object {
			t.Fatal("events not sorted by object")
		}
	}
}

func TestDropsAreTypedAndCounted(t *testing.T) {
	c := New()
	// Wrong-time readings: still ignored, now counted and reported.
	err := c.IngestSecond(5, raw(1, 2, 9, 3))
	var ie *ingest.Error
	if !errors.As(err, &ie) || ie.Kind != ingest.KindMisstamped || ie.Rejected {
		t.Fatalf("wrong-time error = %v", err)
	}
	if ie.Dropped != 3 {
		t.Errorf("wrong-time dropped %d, want 3", ie.Dropped)
	}
	// Duplicate second: refused whole.
	c.IngestSecond(6, raw(1, 2, 6, 5))
	err = c.IngestSecond(6, raw(1, 3, 6, 5))
	if !errors.As(err, &ie) || ie.Kind != ingest.KindLate || !ie.Rejected {
		t.Fatalf("duplicate-second error = %v", err)
	}
	// Reader-less readings: counted as invalid.
	err = c.IngestSecond(7, []model.RawReading{{Object: 1, Reader: model.NoReader, Time: 7}})
	if !errors.As(err, &ie) || ie.Kind != ingest.KindInvalid || ie.Dropped != 1 {
		t.Fatalf("invalid error = %v", err)
	}
	// A clean second returns nil.
	if err := c.IngestSecond(8, raw(1, 2, 8, 2)); err != nil {
		t.Fatalf("clean second: %v", err)
	}
	d := c.Drops()
	if d.MisstampedReadings != 3 || d.LateBatches != 1 || d.LateReadings != 5 || d.InvalidReadings != 1 {
		t.Errorf("drops = %+v", d)
	}
	if d.Readings() != 9 {
		t.Errorf("total dropped readings = %d, want 9", d.Readings())
	}
}
