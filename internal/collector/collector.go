// Package collector implements the paper's event-driven raw data collector,
// the front end of the system. It aggregates the high-rate raw RFID stream
// into one-second entries per object (mitigating false negatives: one
// successful sample in a second marks the whole second detected), detects
// ENTER and LEAVE events, and retains readings of only the two most recent
// consecutive detecting devices per object, discarding older history.
package collector

import (
	"sort"

	"repro/internal/ingest"
	"repro/internal/model"
)

// run is a maximal period during which one device was the object's detecting
// device (re-entries to the same device extend the run).
type run struct {
	reader  model.ReaderID
	entries []model.AggregatedReading
}

// objectLog is the retained state for one object.
type objectLog struct {
	runs []run
	// in is the reader currently detecting the object, or NoReader.
	in model.ReaderID
	// lastSeen is the time of the most recent detected entry.
	lastSeen model.Time
}

// Collector aggregates raw readings and maintains per-object retention.
// Feed it one full second of raw readings at a time with IngestSecond.
type Collector struct {
	objects  map[model.ObjectID]*objectLog
	events   []model.Event
	now      model.Time
	started  bool
	historic bool
	// drops accounts for every reading or batch the collector refused, so
	// degraded input is visible instead of silently vanishing.
	drops ingest.Drops
}

// New returns an empty Collector with the paper's default retention: only
// the readings of each object's two most recent consecutive detecting
// devices are kept.
func New() *Collector {
	return &Collector{objects: make(map[model.ObjectID]*objectLog)}
}

// NewWithHistory returns a Collector that retains the full reading history,
// enabling historical queries (the paper notes the data collector must be
// modified this way for systems answering queries about past time stamps).
func NewWithHistory() *Collector {
	c := New()
	c.historic = true
	return c
}

// Historic reports whether full history retention is enabled.
func (c *Collector) Historic() bool { return c.historic }

// Now returns the time of the most recently ingested second.
func (c *Collector) Now() model.Time { return c.now }

// NumObjects returns the number of objects with retained state, without the
// allocation KnownObjects pays — the telemetry layer reads it every scrape.
func (c *Collector) NumObjects() int { return len(c.objects) }

// Drops returns the cumulative accounting of batches and readings the
// collector refused (non-increasing seconds, mis-stamped or reader-less
// readings).
func (c *Collector) Drops() ingest.Drops { return c.drops }

// IngestSecond processes every raw reading produced during second t. Calls
// must be made with strictly increasing t; a batch for a second at or
// before the current one is refused whole with a typed *ingest.Error.
// Readings whose time stamp differs from t, or with no reader attached,
// are discarded, counted in Drops, and reported through the returned
// *ingest.Error (the rest of the batch is still processed). A nil return
// means every reading was accepted.
//
// Aggregation: an object detected by at least one sample of a reader during
// the second gets a single aggregated entry for that second (when several
// readers saw it, the one with the most samples wins, ties to the lower ID).
func (c *Collector) IngestSecond(t model.Time, raws []model.RawReading) error {
	if c.started && t <= c.now {
		c.drops.LateBatches++
		c.drops.LateReadings += len(raws)
		return &ingest.Error{Kind: ingest.KindLate, Time: t, Watermark: c.now, Dropped: len(raws), Rejected: true}
	}
	c.now = t
	c.started = true

	// Tally samples per (object, reader).
	type key struct {
		obj model.ObjectID
		rd  model.ReaderID
	}
	var misstamped, invalid int
	counts := make(map[key]int)
	for _, r := range raws {
		if r.Reader == model.NoReader {
			invalid++
			continue
		}
		if r.Time != t {
			misstamped++
			continue
		}
		counts[key{r.Object, r.Reader}]++
	}
	c.drops.MisstampedReadings += misstamped
	c.drops.InvalidReadings += invalid
	// Pick the winning reader per object.
	winners := make(map[model.ObjectID]model.ReaderID)
	best := make(map[model.ObjectID]int)
	for k, n := range counts {
		cur, seen := winners[k.obj]
		if !seen || n > best[k.obj] || (n == best[k.obj] && k.rd < cur) {
			winners[k.obj] = k.rd
			best[k.obj] = n
		}
	}

	// Record detections.
	for obj, rd := range winners {
		log := c.objects[obj]
		if log == nil {
			log = &objectLog{in: model.NoReader}
			c.objects[obj] = log
		}
		if log.in != rd {
			if log.in != model.NoReader {
				c.events = append(c.events, model.Event{Kind: model.Leave, Object: obj, Reader: log.in, Time: t})
			}
			c.events = append(c.events, model.Event{Kind: model.Enter, Object: obj, Reader: rd, Time: t})
		}
		log.in = rd
		log.lastSeen = t
		// Extend or open the device run.
		if len(log.runs) == 0 || log.runs[len(log.runs)-1].reader != rd {
			log.runs = append(log.runs, run{reader: rd})
			// Retain only the two most recent consecutive detecting devices,
			// unless full history is kept for historical queries.
			if !c.historic && len(log.runs) > 2 {
				log.runs = log.runs[len(log.runs)-2:]
			}
		}
		last := &log.runs[len(log.runs)-1]
		last.entries = append(last.entries, model.AggregatedReading{Object: obj, Reader: rd, Time: t})
	}

	// Emit LEAVE for objects that were in a range but got no reading this
	// second.
	for obj, log := range c.objects {
		if log.in != model.NoReader {
			if _, detected := winners[obj]; !detected {
				c.events = append(c.events, model.Event{Kind: model.Leave, Object: obj, Reader: log.in, Time: t})
				log.in = model.NoReader
			}
		}
	}
	// Keep event order deterministic (map iteration above is not). The sort
	// is stable so a handoff's LEAVE stays before its ENTER.
	sort.SliceStable(c.events, func(i, j int) bool {
		a, b := c.events[i], c.events[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		return a.Object < b.Object
	})

	if misstamped+invalid > 0 {
		kind := ingest.KindMisstamped
		if misstamped == 0 {
			kind = ingest.KindInvalid
		}
		return &ingest.Error{Kind: kind, Time: t, Watermark: c.now, Dropped: misstamped + invalid}
	}
	return nil
}

// DrainEvents returns the ENTER/LEAVE events recorded since the previous
// drain, oldest first.
func (c *Collector) DrainEvents() []model.Event {
	ev := c.events
	c.events = nil
	return ev
}

// Aggregated returns the retained one-second entries for the object (the
// readings of up to its two most recent consecutive detecting devices),
// oldest first. The result is a copy.
func (c *Collector) Aggregated(obj model.ObjectID) []model.AggregatedReading {
	log := c.objects[obj]
	if log == nil {
		return nil
	}
	runs := log.runs
	if len(runs) > 2 {
		// With full history retention the live view still presents only the
		// two most recent detecting devices, as Algorithm 2 expects.
		runs = runs[len(runs)-2:]
	}
	var out []model.AggregatedReading
	for _, r := range runs {
		out = append(out, r.entries...)
	}
	return out
}

// RecentDevices returns the object's second-most-recent and most-recent
// detecting devices (di, dj in the paper's Algorithm 2). If the object has
// been detected by a single device so far, di is NoReader. Both are NoReader
// for unknown objects.
func (c *Collector) RecentDevices(obj model.ObjectID) (di, dj model.ReaderID) {
	log := c.objects[obj]
	if log == nil || len(log.runs) == 0 {
		return model.NoReader, model.NoReader
	}
	if len(log.runs) == 1 {
		return model.NoReader, log.runs[0].reader
	}
	last := len(log.runs) - 1
	return log.runs[last-1].reader, log.runs[last].reader
}

// LastReading returns the most recent aggregated entry for the object.
func (c *Collector) LastReading(obj model.ObjectID) (model.AggregatedReading, bool) {
	log := c.objects[obj]
	if log == nil || len(log.runs) == 0 {
		return model.AggregatedReading{}, false
	}
	entries := log.runs[len(log.runs)-1].entries
	return entries[len(entries)-1], true
}

// ReadingAt returns the aggregated entry of the object for second t, or an
// undetected entry (Reader == NoReader) when the object produced no reading
// that second (the paper's reading.Device = null case).
func (c *Collector) ReadingAt(obj model.ObjectID, t model.Time) model.AggregatedReading {
	log := c.objects[obj]
	if log != nil {
		for i := len(log.runs) - 1; i >= 0; i-- {
			entries := log.runs[i].entries
			j := sort.Search(len(entries), func(k int) bool { return entries[k].Time >= t })
			if j < len(entries) && entries[j].Time == t {
				return entries[j]
			}
		}
	}
	return model.AggregatedReading{Object: obj, Reader: model.NoReader, Time: t}
}

// AggregatedUpTo returns the aggregated entries the paper's Algorithm 2
// would use for a historical query at time t: the readings of the object's
// two most recent consecutive detecting devices as of t, clipped to entries
// no later than t. It requires full history retention for times older than
// the live retention window; with the default retention it simply clips the
// retained entries.
func (c *Collector) AggregatedUpTo(obj model.ObjectID, t model.Time) []model.AggregatedReading {
	log := c.objects[obj]
	if log == nil {
		return nil
	}
	// Collect runs that have at least one entry at or before t, clipped.
	type clipped struct {
		entries []model.AggregatedReading
	}
	var kept []clipped
	for _, r := range log.runs {
		n := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].Time > t })
		if n > 0 {
			kept = append(kept, clipped{entries: r.entries[:n]})
		}
	}
	if len(kept) > 2 {
		kept = kept[len(kept)-2:]
	}
	var out []model.AggregatedReading
	for _, r := range kept {
		out = append(out, r.entries...)
	}
	return out
}

// LastReadingAt returns the most recent aggregated entry at or before t.
func (c *Collector) LastReadingAt(obj model.ObjectID, t model.Time) (model.AggregatedReading, bool) {
	entries := c.AggregatedUpTo(obj, t)
	if len(entries) == 0 {
		return model.AggregatedReading{}, false
	}
	return entries[len(entries)-1], true
}

// RecentDevicesAt returns the object's second-most-recent and most-recent
// detecting devices as of time t (NoReader when absent).
func (c *Collector) RecentDevicesAt(obj model.ObjectID, t model.Time) (di, dj model.ReaderID) {
	di, dj = model.NoReader, model.NoReader
	entries := c.AggregatedUpTo(obj, t)
	for _, e := range entries {
		if e.Reader != dj {
			di, dj = dj, e.Reader
		}
	}
	return di, dj
}

// CurrentlyDetectedBy returns the reader currently detecting the object, or
// NoReader.
func (c *Collector) CurrentlyDetectedBy(obj model.ObjectID) model.ReaderID {
	if log := c.objects[obj]; log != nil {
		return log.in
	}
	return model.NoReader
}

// KnownObjects returns the IDs of all objects the collector has seen,
// in ascending order.
func (c *Collector) KnownObjects() []model.ObjectID {
	out := make([]model.ObjectID, 0, len(c.objects))
	for o := range c.objects {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ForgetBefore drops retained entries older than t for all objects (cache
// aging support). Whole runs that end before t are removed; the most recent
// run is always kept so RecentDevices stays meaningful.
func (c *Collector) ForgetBefore(t model.Time) {
	for obj, log := range c.objects {
		for len(log.runs) > 1 {
			entries := log.runs[0].entries
			if len(entries) == 0 || entries[len(entries)-1].Time < t {
				log.runs = log.runs[1:]
			} else {
				break
			}
		}
		if len(log.runs) == 1 {
			entries := log.runs[0].entries
			if len(entries) > 0 && entries[len(entries)-1].Time < t && log.in == model.NoReader {
				delete(c.objects, obj)
			}
		}
	}
}
