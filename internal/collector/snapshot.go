package collector

import (
	"sort"

	"repro/internal/ingest"
	"repro/internal/model"
)

// Snapshot is the collector's complete serializable state. All fields are
// exported so the engine can encode it with encoding/gob; objects are sorted
// by ID so the encoding of a given state is deterministic.
type Snapshot struct {
	Objects  []ObjectSnapshot
	Now      model.Time
	Started  bool
	Historic bool
	Drops    ingest.Drops
}

// ObjectSnapshot is the retained state for one object.
type ObjectSnapshot struct {
	Object   model.ObjectID
	In       model.ReaderID
	LastSeen model.Time
	Runs     []RunSnapshot
}

// RunSnapshot is one device run (consecutive detection by a single reader).
type RunSnapshot struct {
	Reader  model.ReaderID
	Entries []model.AggregatedReading
}

// Snapshot captures the collector state. Pending (undrained) events are NOT
// part of the snapshot: the engine drains them synchronously inside every
// ingested second, so at snapshot time the event queue is always empty.
func (c *Collector) Snapshot() Snapshot {
	s := Snapshot{
		Now:      c.now,
		Started:  c.started,
		Historic: c.historic,
		Drops:    c.drops,
		Objects:  make([]ObjectSnapshot, 0, len(c.objects)),
	}
	for obj, log := range c.objects {
		os := ObjectSnapshot{
			Object:   obj,
			In:       log.in,
			LastSeen: log.lastSeen,
			Runs:     make([]RunSnapshot, len(log.runs)),
		}
		for i, r := range log.runs {
			os.Runs[i] = RunSnapshot{
				Reader:  r.reader,
				Entries: append([]model.AggregatedReading(nil), r.entries...),
			}
		}
		s.Objects = append(s.Objects, os)
	}
	sort.Slice(s.Objects, func(i, j int) bool { return s.Objects[i].Object < s.Objects[j].Object })
	return s
}

// Restore replaces the collector's state with the snapshot's. The receiver's
// prior contents are discarded.
func (c *Collector) Restore(s Snapshot) {
	c.now = s.Now
	c.started = s.Started
	c.historic = s.Historic
	c.drops = s.Drops
	c.events = nil
	c.objects = make(map[model.ObjectID]*objectLog, len(s.Objects))
	for _, os := range s.Objects {
		log := &objectLog{in: os.In, lastSeen: os.LastSeen, runs: make([]run, len(os.Runs))}
		for i, r := range os.Runs {
			log.runs[i] = run{
				reader:  r.Reader,
				entries: append([]model.AggregatedReading(nil), r.Entries...),
			}
		}
		c.objects[os.Object] = log
	}
}
