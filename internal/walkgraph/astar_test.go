package walkgraph

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/rng"
)

// TestAStarMatchesDijkstra is the correctness property: A* must return
// exactly the shortest network distance on every plan it is used with.
func TestAStarMatchesDijkstra(t *testing.T) {
	plans := []*floorplan.Plan{
		floorplan.DefaultOffice(),
		floorplan.TwoStoryOffice(),
	}
	for _, seed := range []int64{1, 2, 3} {
		plans = append(plans, floorplan.RandomOffice(rng.New(seed), 1+int(seed)%3))
	}
	for pi, plan := range plans {
		g := MustBuild(plan)
		src := rng.New(int64(100 + pi))
		for trial := 0; trial < 60; trial++ {
			e1 := g.Edge(EdgeID(src.Intn(g.NumEdges())))
			e2 := g.Edge(EdgeID(src.Intn(g.NumEdges())))
			a := Location{Edge: e1.ID, Offset: src.Uniform(0, e1.Length)}
			b := Location{Edge: e2.ID, Offset: src.Uniform(0, e2.Length)}
			want := g.DistBetween(a, b)
			got := g.AStar(a, b)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("plan %d: AStar(%v, %v) = %v, Dijkstra = %v", pi, a, b, got, want)
			}
		}
	}
}

func TestAStarSameEdge(t *testing.T) {
	g := MustBuild(floorplan.DefaultOffice())
	e := g.Edge(0)
	a := Location{Edge: e.ID, Offset: 0.5}
	b := Location{Edge: e.ID, Offset: e.Length - 0.5}
	want := g.DistBetween(a, b)
	if got := g.AStar(a, b); math.Abs(got-want) > 1e-9 {
		t.Errorf("same-edge AStar = %v, want %v", got, want)
	}
	// Identical locations.
	if got := g.AStar(a, a); got != 0 {
		t.Errorf("self distance = %v", got)
	}
}

func TestAStarSymmetric(t *testing.T) {
	g := MustBuild(floorplan.TwoStoryOffice())
	src := rng.New(7)
	for trial := 0; trial < 40; trial++ {
		e1 := g.Edge(EdgeID(src.Intn(g.NumEdges())))
		e2 := g.Edge(EdgeID(src.Intn(g.NumEdges())))
		a := Location{Edge: e1.ID, Offset: src.Uniform(0, e1.Length)}
		b := Location{Edge: e2.ID, Offset: src.Uniform(0, e2.Length)}
		d1, d2 := g.AStar(a, b), g.AStar(b, a)
		if math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("asymmetric: %v vs %v", d1, d2)
		}
	}
}
