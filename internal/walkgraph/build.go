package walkgraph

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/floorplan"
	"repro/internal/geom"
)

// Build constructs the indoor walking graph for a floor plan.
//
// For every hallway, the centerline is cut at its endpoints, at crossings
// with other hallway centerlines, and at every door's projection point; the
// cuts become Junction nodes and the pieces between consecutive cuts become
// HallwayEdge edges. Every room contributes one RoomCenter node joined to
// each of its doors' junctions by a DoorEdge whose length is the walking
// distance from the hallway centerline through the door to the room center.
func Build(plan *floorplan.Plan) (*Graph, error) {
	g := &Graph{
		plan:      plan,
		roomNodes: make(map[floorplan.RoomID]NodeID),
	}
	b := builder{g: g, byPos: make(map[posKey]NodeID)}

	// Cut parameters per hallway, as distances along the centerline.
	cuts := make([][]float64, len(plan.Hallways()))
	for _, h := range plan.Hallways() {
		cuts[h.ID] = []float64{0, h.Length()}
	}
	// Crossings between hallway centerlines.
	halls := plan.Hallways()
	for i := range halls {
		for j := i + 1; j < len(halls); j++ {
			p, ok := axisAlignedIntersection(halls[i].Center, halls[j].Center)
			if !ok {
				continue
			}
			cuts[halls[i].ID] = append(cuts[halls[i].ID], halls[i].Center.Project(p)*halls[i].Length())
			cuts[halls[j].ID] = append(cuts[halls[j].ID], halls[j].Center.Project(p)*halls[j].Length())
		}
	}
	// Door projection points.
	for _, d := range plan.Doors() {
		h := plan.Hallway(d.Hallway)
		cuts[h.ID] = append(cuts[h.ID], h.Center.Project(d.HallwayPoint)*h.Length())
	}
	// Link endpoints.
	for _, l := range plan.Links() {
		ha, hb := plan.Hallway(l.HallwayA), plan.Hallway(l.HallwayB)
		cuts[ha.ID] = append(cuts[ha.ID], ha.Center.Project(l.A)*ha.Length())
		cuts[hb.ID] = append(cuts[hb.ID], hb.Center.Project(l.B)*hb.Length())
	}

	// Create hallway nodes and edges.
	for _, h := range plan.Hallways() {
		cs := dedupeSorted(cuts[h.ID])
		prev := NoNode
		var prevAt float64
		for _, c := range cs {
			pos := h.Center.At(c / h.Length())
			n := b.junction(pos)
			if prev != NoNode && n != prev {
				b.edge(Edge{
					A:       prev,
					B:       n,
					Length:  c - prevAt,
					Kind:    HallwayEdge,
					Hallway: h.ID,
					Room:    floorplan.NoRoom,
				})
			}
			prev, prevAt = n, c
		}
	}

	// Create room nodes and door edges.
	for _, d := range plan.Doors() {
		room := plan.Room(d.Room)
		roomNode, ok := g.roomNodes[room.ID]
		if !ok {
			roomNode = b.node(Node{
				Pos:  room.Center(),
				Kind: RoomCenter,
				Room: room.ID,
			})
			g.roomNodes[room.ID] = roomNode
		}
		hallNode, ok := b.byPos[keyOf(d.HallwayPoint)]
		if !ok {
			return nil, fmt.Errorf("walkgraph: door %d hallway point %v has no junction node", d.ID, d.HallwayPoint)
		}
		// Walking length through the door: centerline to door plus door to
		// room center.
		toDoor := d.HallwayPoint.Dist(d.Pos)
		length := toDoor + d.Pos.Dist(room.Center())
		b.edge(Edge{
			A:       hallNode,
			B:       roomNode,
			Length:  length,
			Kind:    DoorEdge,
			Hallway: floorplan.NoHallway,
			Room:    room.ID,
			DoorAt:  toDoor,
		})
	}

	// Create link edges (stairs, elevators) between their hallway junctions.
	for _, l := range plan.Links() {
		na, okA := b.byPos[keyOf(l.A)]
		nb, okB := b.byPos[keyOf(l.B)]
		if !okA || !okB {
			return nil, fmt.Errorf("walkgraph: link %d endpoints have no junction nodes", l.ID)
		}
		if na == nb {
			return nil, fmt.Errorf("walkgraph: link %d connects a point to itself", l.ID)
		}
		b.edge(Edge{
			A:       na,
			B:       nb,
			Length:  l.Length,
			Kind:    LinkEdge,
			Hallway: floorplan.NoHallway,
			Room:    floorplan.NoRoom,
		})
	}

	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustBuild is Build for plans known to be valid; it panics on error.
func MustBuild(plan *floorplan.Plan) *Graph {
	g, err := Build(plan)
	if err != nil {
		panic(err)
	}
	return g
}

type posKey struct{ x, y int64 }

func keyOf(p geom.Point) posKey {
	const q = 1e6 // micrometers: far below any meaningful plan feature size
	return posKey{int64(math.Round(p.X * q)), int64(math.Round(p.Y * q))}
}

type builder struct {
	g     *Graph
	byPos map[posKey]NodeID
}

// junction returns the Junction node at pos, creating it if needed. Nodes
// are deduplicated by position so crossing hallways share their junction.
func (b *builder) junction(pos geom.Point) NodeID {
	if id, ok := b.byPos[keyOf(pos)]; ok {
		return id
	}
	id := b.node(Node{Pos: pos, Kind: Junction, Room: floorplan.NoRoom})
	b.byPos[keyOf(pos)] = id
	return id
}

func (b *builder) node(n Node) NodeID {
	n.ID = NodeID(len(b.g.nodes))
	b.g.nodes = append(b.g.nodes, n)
	return n.ID
}

func (b *builder) edge(e Edge) EdgeID {
	e.ID = EdgeID(len(b.g.edges))
	b.g.edges = append(b.g.edges, e)
	b.g.nodes[e.A].edges = append(b.g.nodes[e.A].edges, e.ID)
	b.g.nodes[e.B].edges = append(b.g.nodes[e.B].edges, e.ID)
	return e.ID
}

// axisAlignedIntersection returns the intersection point of two axis-aligned
// segments, if they touch or cross.
func axisAlignedIntersection(a, b geom.Segment) (geom.Point, bool) {
	ah := a.A.Y == a.B.Y
	bh := b.A.Y == b.B.Y
	switch {
	case ah && !bh:
		x, y := b.A.X, a.A.Y
		if between(x, a.A.X, a.B.X) && between(y, b.A.Y, b.B.Y) {
			return geom.Pt(x, y), true
		}
	case !ah && bh:
		x, y := a.A.X, b.A.Y
		if between(x, b.A.X, b.B.X) && between(y, a.A.Y, a.B.Y) {
			return geom.Pt(x, y), true
		}
	case ah && bh:
		// Collinear horizontal segments: report a shared endpoint if any.
		if a.A.Y == b.A.Y {
			return sharedEndpoint(a, b)
		}
	default:
		if a.A.X == b.A.X {
			return sharedEndpoint(a, b)
		}
	}
	return geom.Point{}, false
}

func sharedEndpoint(a, b geom.Segment) (geom.Point, bool) {
	for _, p := range []geom.Point{a.A, a.B} {
		for _, q := range []geom.Point{b.A, b.B} {
			if p.Equal(q) {
				return p, true
			}
		}
	}
	return geom.Point{}, false
}

func between(v, a, b float64) bool {
	lo, hi := math.Min(a, b), math.Max(a, b)
	return v >= lo-geom.Eps && v <= hi+geom.Eps
}

// dedupeSorted sorts vs and removes near-duplicate values (within 1e-6 m).
func dedupeSorted(vs []float64) []float64 {
	sort.Float64s(vs)
	out := vs[:0]
	for _, v := range vs {
		if len(out) == 0 || v-out[len(out)-1] > 1e-6 {
			out = append(out, v)
		}
	}
	return out
}
