package walkgraph

import "repro/internal/geom"

// Route returns the shortest walking route between two locations as a
// geometric polyline (plan coordinates) plus its walking length — the
// indoor navigation primitive built on the same graph the inference uses.
// The polyline starts at a's position and ends at b's; consecutive duplicate
// points are collapsed. For unreachable pairs (impossible on validated
// graphs) it returns nil and +Inf.
func (g *Graph) Route(a, b Location) ([]geom.Point, float64) {
	a, b = g.Clamp(a), g.Clamp(b)

	// Same edge: straight along the edge.
	if a.Edge == b.Edge {
		return dedupePoints([]geom.Point{g.Point(a), g.Point(b)}),
			absf(a.Offset - b.Offset)
	}

	// Shortest node path from a to an endpoint chain ending at b: try both
	// endpoints of b's edge and keep the shorter total.
	be := g.edges[b.Edge]
	bestLen := Unreachable
	var bestPath []NodeID
	for _, end := range []struct {
		node NodeID
		tail float64
	}{
		{be.A, b.Offset},
		{be.B, be.Length - b.Offset},
	} {
		path, d := g.PathFromLocation(a, end.node)
		if len(path) == 0 {
			continue
		}
		if total := d + end.tail; total < bestLen {
			bestLen = total
			bestPath = path
		}
	}
	if bestPath == nil {
		return nil, Unreachable
	}

	pts := make([]geom.Point, 0, len(bestPath)+2)
	pts = append(pts, g.Point(a))
	for _, n := range bestPath {
		pts = append(pts, g.nodes[n].Pos)
	}
	pts = append(pts, g.Point(b))
	return dedupePoints(pts), bestLen
}

func dedupePoints(pts []geom.Point) []geom.Point {
	out := pts[:0]
	for _, p := range pts {
		if len(out) == 0 || !out[len(out)-1].Equal(p) {
			out = append(out, p)
		}
	}
	return out
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
