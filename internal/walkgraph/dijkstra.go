package walkgraph

import (
	"container/heap"
	"math"
)

// Unreachable is the distance reported for nodes that cannot be reached.
// A valid walking graph is connected, so it only appears for corrupt graphs.
var Unreachable = math.Inf(1)

// pqItem is an entry of the Dijkstra priority queue.
type pqItem struct {
	node NodeID
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// dijkstra runs Dijkstra's algorithm from the given seed distances.
// seeds maps node IDs to their initial distances (a virtual source).
func (g *Graph) dijkstra(seeds map[NodeID]float64) (dist []float64, prev []NodeID) {
	dist = make([]float64, len(g.nodes))
	prev = make([]NodeID, len(g.nodes))
	for i := range dist {
		dist[i] = Unreachable
		prev[i] = NoNode
	}
	q := make(pq, 0, len(seeds))
	for n, d := range seeds {
		dist[n] = d
		q = append(q, pqItem{node: n, dist: d})
	}
	heap.Init(&q)
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		if it.dist > dist[it.node] {
			continue // stale entry
		}
		for _, eid := range g.nodes[it.node].edges {
			e := g.edges[eid]
			next := e.B
			if next == it.node {
				next = e.A
			}
			nd := it.dist + e.Length
			if nd < dist[next] {
				dist[next] = nd
				prev[next] = it.node
				heap.Push(&q, pqItem{node: next, dist: nd})
			}
		}
	}
	return dist, prev
}

// ShortestFromNode returns, for every node, the shortest network distance
// from src and the predecessor on one shortest path.
func (g *Graph) ShortestFromNode(src NodeID) (dist []float64, prev []NodeID) {
	return g.dijkstra(map[NodeID]float64{src: 0})
}

// DistancesFromLocation returns, for every node, the shortest network
// distance from the given location (which may be mid-edge).
func (g *Graph) DistancesFromLocation(l Location) []float64 {
	l = g.Clamp(l)
	e := g.edges[l.Edge]
	seeds := map[NodeID]float64{
		e.A: l.Offset,
		e.B: e.Length - l.Offset,
	}
	// A and B can coincide in degenerate graphs; keep the smaller seed.
	if e.A == e.B && e.Length-l.Offset < l.Offset {
		seeds[e.A] = e.Length - l.Offset
	}
	dist, _ := g.dijkstra(seeds)
	return dist
}

// DistToLocation returns the shortest network distance from a location to a
// target location, given the node distances previously computed with
// DistancesFromLocation (or ShortestFromNode) for the source. It accounts
// for the case of both locations sharing an edge.
func (g *Graph) DistToLocation(src Location, nodeDist []float64, dst Location) float64 {
	src, dst = g.Clamp(src), g.Clamp(dst)
	e := g.edges[dst.Edge]
	d := math.Min(nodeDist[e.A]+dst.Offset, nodeDist[e.B]+e.Length-dst.Offset)
	if src.Edge == dst.Edge {
		d = math.Min(d, math.Abs(src.Offset-dst.Offset))
	}
	return d
}

// DistBetween returns the shortest network distance between two locations.
// For repeated queries from the same source, compute DistancesFromLocation
// once and use DistToLocation instead.
func (g *Graph) DistBetween(a, b Location) float64 {
	if a.Edge == b.Edge {
		direct := math.Abs(a.Offset - b.Offset)
		// The around-the-loop path can theoretically be shorter only when
		// the edge is longer than the loop, which Build never produces; but
		// compute it anyway for correctness on arbitrary graphs.
		nd := g.DistancesFromLocation(a)
		return math.Min(direct, g.DistToLocation(a, nd, b))
	}
	nd := g.DistancesFromLocation(a)
	return g.DistToLocation(a, nd, b)
}

// PathBetweenNodes returns a shortest node path from a to b (inclusive) and
// its length.
func (g *Graph) PathBetweenNodes(a, b NodeID) ([]NodeID, float64) {
	dist, prev := g.ShortestFromNode(a)
	if math.IsInf(dist[b], 1) {
		return nil, Unreachable
	}
	var rev []NodeID
	for n := b; n != NoNode; n = prev[n] {
		rev = append(rev, n)
		if n == a {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, dist[b]
}

// PathFromLocation returns a shortest node path from the given mid-edge
// location to the destination node. The first element of the path is the
// endpoint of l.Edge the walker should head to first; the total length
// includes the initial on-edge stretch.
func (g *Graph) PathFromLocation(l Location, dest NodeID) ([]NodeID, float64) {
	l = g.Clamp(l)
	e := g.edges[l.Edge]
	if ln := g.NodeAt(l, 1e-9); ln != NoNode {
		return g.PathBetweenNodes(ln, dest)
	}
	distA, prevA := g.ShortestFromNode(e.A)
	distB, prevB := g.ShortestFromNode(e.B)
	viaA := l.Offset + distA[dest]
	viaB := (e.Length - l.Offset) + distB[dest]
	var prev []NodeID
	var start NodeID
	var total float64
	if viaA <= viaB {
		prev, start, total = prevA, e.A, viaA
	} else {
		prev, start, total = prevB, e.B, viaB
	}
	if math.IsInf(total, 1) {
		return nil, Unreachable
	}
	var rev []NodeID
	for n := dest; n != NoNode; n = prev[n] {
		rev = append(rev, n)
		if n == start {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, total
}

// EdgeBetween returns the shortest edge directly connecting nodes a and b.
func (g *Graph) EdgeBetween(a, b NodeID) (EdgeID, bool) {
	best := NoEdge
	bestLen := math.Inf(1)
	for _, eid := range g.nodes[a].edges {
		e := g.edges[eid]
		if (e.A == a && e.B == b) || (e.B == a && e.A == b) {
			if e.Length < bestLen {
				best, bestLen = eid, e.Length
			}
		}
	}
	return best, best != NoEdge
}
