package walkgraph

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/rng"
)

// smallPlan builds a single 20 m hallway with one room on each side:
//
//	 [R0]          (room 0: x 4..10, y 11..17, door at (7,11)->(7,10))
//	A────────────B (centerline y=10, x 0..20)
//	      [R1]     (room 1: x 8..14, y 3..9, door at (11,9)->(11,10))
func smallPlan(t *testing.T) *floorplan.Plan {
	t.Helper()
	b := floorplan.NewBuilder()
	h := b.AddHallway("h", geom.Seg(geom.Pt(0, 10), geom.Pt(20, 10)), 2)
	b.AddRoom("R0", geom.RectWH(4, 11, 6, 6), h)
	b.AddRoom("R1", geom.RectWH(8, 3, 6, 6), h)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("smallPlan: %v", err)
	}
	return p
}

func TestBuildSmallPlan(t *testing.T) {
	g := MustBuild(smallPlan(t))
	// Junctions: x=0, 7, 11, 20 on the centerline; plus 2 room nodes.
	if got := g.NumNodes(); got != 6 {
		t.Errorf("NumNodes = %d, want 6", got)
	}
	// Hallway edges: 0-7, 7-11, 11-20; plus 2 door edges.
	if got := g.NumEdges(); got != 5 {
		t.Errorf("NumEdges = %d, want 5", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuildDefaultOffice(t *testing.T) {
	g := MustBuild(floorplan.DefaultOffice())
	// Each horizontal hallway: 2 endpoints + 15 door junctions = 17 nodes,
	// 16 edges; vertical hallways reuse the corner junctions and add 1 edge
	// each. Rooms: 30 nodes, 30 door edges.
	wantNodes := 17 + 17 + 30
	wantEdges := 16 + 16 + 1 + 1 + 30
	if got := g.NumNodes(); got != wantNodes {
		t.Errorf("NumNodes = %d, want %d", got, wantNodes)
	}
	if got := g.NumEdges(); got != wantEdges {
		t.Errorf("NumEdges = %d, want %d", got, wantEdges)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestRoomNodesAndDoorEdges(t *testing.T) {
	g := MustBuild(smallPlan(t))
	n0 := g.RoomNode(0)
	if n0 == NoNode {
		t.Fatal("room 0 has no node")
	}
	node := g.Node(n0)
	if node.Kind != RoomCenter || node.Room != 0 {
		t.Errorf("room node = %+v", node)
	}
	if !node.Pos.Equal(geom.Pt(7, 14)) {
		t.Errorf("room node pos = %v, want (7, 14)", node.Pos)
	}
	// Door edge length: centerline (7,10) -> door (7,11) -> center (7,14).
	var doorEdge Edge
	found := false
	for _, e := range g.Edges() {
		if e.Kind == DoorEdge && e.Room == 0 {
			doorEdge, found = e, true
		}
	}
	if !found {
		t.Fatal("no door edge for room 0")
	}
	if math.Abs(doorEdge.Length-4) > 1e-9 {
		t.Errorf("door edge length = %v, want 4", doorEdge.Length)
	}
	if math.Abs(doorEdge.DoorAt-1) > 1e-9 {
		t.Errorf("DoorAt = %v, want 1", doorEdge.DoorAt)
	}
	if g.RoomNode(floorplan.RoomID(99)) != NoNode {
		t.Error("unknown room should return NoNode")
	}
}

func TestPointAndClamp(t *testing.T) {
	g := MustBuild(smallPlan(t))
	// Find the hallway edge from x=0 to x=7.
	var e Edge
	for _, cand := range g.Edges() {
		if cand.Kind == HallwayEdge && g.Node(cand.A).Pos.Equal(geom.Pt(0, 10)) {
			e = cand
		}
	}
	p := g.Point(Location{Edge: e.ID, Offset: 3})
	if !p.Equal(geom.Pt(3, 10)) {
		t.Errorf("Point = %v, want (3, 10)", p)
	}
	c := g.Clamp(Location{Edge: e.ID, Offset: 100})
	if c.Offset != e.Length {
		t.Errorf("Clamp high = %v", c.Offset)
	}
	c = g.Clamp(Location{Edge: e.ID, Offset: -5})
	if c.Offset != 0 {
		t.Errorf("Clamp low = %v", c.Offset)
	}
	// Point clamps out-of-range offsets too.
	if got := g.Point(Location{Edge: e.ID, Offset: -1}); !got.Equal(geom.Pt(0, 10)) {
		t.Errorf("Point(-1) = %v", got)
	}
}

func TestDistBetweenOnHallway(t *testing.T) {
	g := MustBuild(smallPlan(t))
	a := g.NearestLocation(geom.Pt(2, 10))
	b := g.NearestLocation(geom.Pt(15, 10))
	if d := g.DistBetween(a, b); math.Abs(d-13) > 1e-9 {
		t.Errorf("DistBetween = %v, want 13", d)
	}
	// Symmetry.
	if d, d2 := g.DistBetween(a, b), g.DistBetween(b, a); math.Abs(d-d2) > 1e-9 {
		t.Errorf("asymmetric: %v vs %v", d, d2)
	}
	// Zero distance to self.
	if d := g.DistBetween(a, a); d != 0 {
		t.Errorf("self distance = %v", d)
	}
}

func TestDistBetweenThroughRooms(t *testing.T) {
	g := MustBuild(smallPlan(t))
	// Room 0 center (7,14) to room 1 center (11,6): door edge 4 m down to
	// (7,10), 4 m along the hallway, 4 m up into room 1 => 12 m.
	a := g.LocationAtNode(g.RoomNode(0))
	b := g.LocationAtNode(g.RoomNode(1))
	if d := g.DistBetween(a, b); math.Abs(d-12) > 1e-9 {
		t.Errorf("room-to-room distance = %v, want 12", d)
	}
}

func TestNearestLocationInsideRoomSnapsToDoorEdge(t *testing.T) {
	g := MustBuild(smallPlan(t))
	loc := g.NearestLocation(geom.Pt(5, 13)) // inside room 0
	e := g.Edge(loc.Edge)
	if e.Kind != DoorEdge || e.Room != 0 {
		t.Errorf("room point snapped to %+v", e)
	}
	// A hallway point snaps to a hallway edge.
	loc = g.NearestLocation(geom.Pt(3, 10.5))
	if g.Edge(loc.Edge).Kind != HallwayEdge {
		t.Errorf("hallway point snapped to %v", g.Edge(loc.Edge).Kind)
	}
	if !g.Point(loc).Equal(geom.Pt(3, 10)) {
		t.Errorf("hallway snap = %v, want (3, 10)", g.Point(loc))
	}
}

func TestRoomAtLocation(t *testing.T) {
	g := MustBuild(smallPlan(t))
	var door Edge
	for _, e := range g.Edges() {
		if e.Kind == DoorEdge && e.Room == 0 {
			door = e
		}
	}
	if r := g.RoomAt(Location{Edge: door.ID, Offset: 0.5}); r != floorplan.NoRoom {
		t.Errorf("hallway-side of door edge reported room %d", r)
	}
	if r := g.RoomAt(Location{Edge: door.ID, Offset: 2}); r != 0 {
		t.Errorf("room-side of door edge reported %d", r)
	}
	// Hallway edges are never rooms.
	for _, e := range g.Edges() {
		if e.Kind == HallwayEdge {
			if r := g.RoomAt(Location{Edge: e.ID, Offset: e.Length / 2}); r != floorplan.NoRoom {
				t.Errorf("hallway edge reported room %d", r)
			}
			break
		}
	}
}

func TestShortestFromNode(t *testing.T) {
	g := MustBuild(smallPlan(t))
	// From the west end (0,10).
	var west NodeID = NoNode
	for _, n := range g.Nodes() {
		if n.Pos.Equal(geom.Pt(0, 10)) {
			west = n.ID
		}
	}
	if west == NoNode {
		t.Fatal("west end node not found")
	}
	dist, prev := g.ShortestFromNode(west)
	if dist[west] != 0 || prev[west] != NoNode {
		t.Error("source distance/prev wrong")
	}
	// Distance to room 1 node: 11 along hallway + 4 door edge = 15.
	if d := dist[g.RoomNode(1)]; math.Abs(d-15) > 1e-9 {
		t.Errorf("dist to room 1 = %v, want 15", d)
	}
}

func TestPathBetweenNodes(t *testing.T) {
	g := MustBuild(smallPlan(t))
	a, b := g.RoomNode(0), g.RoomNode(1)
	path, total := g.PathBetweenNodes(a, b)
	if math.Abs(total-12) > 1e-9 {
		t.Errorf("path length = %v, want 12", total)
	}
	if len(path) < 2 || path[0] != a || path[len(path)-1] != b {
		t.Errorf("path = %v", path)
	}
	// Consecutive path nodes must be joined by an edge.
	for i := 0; i+1 < len(path); i++ {
		if _, ok := g.EdgeBetween(path[i], path[i+1]); !ok {
			t.Errorf("no edge between path[%d]=%d and path[%d]=%d", i, path[i], i+1, path[i+1])
		}
	}
	// Path to self.
	p, d := g.PathBetweenNodes(a, a)
	if d != 0 || len(p) != 1 || p[0] != a {
		t.Errorf("self path = %v, %v", p, d)
	}
}

func TestPathFromLocation(t *testing.T) {
	g := MustBuild(smallPlan(t))
	// Start mid-hallway at (2,10), destination room 1 node.
	loc := g.NearestLocation(geom.Pt(2, 10))
	dest := g.RoomNode(1)
	path, total := g.PathFromLocation(loc, dest)
	// 9 m along the hallway to (11,10), then 4 m up the door edge.
	if math.Abs(total-13) > 1e-9 {
		t.Errorf("total = %v, want 13", total)
	}
	if len(path) == 0 || path[len(path)-1] != dest {
		t.Fatalf("path = %v", path)
	}
	// First node must be an endpoint of the starting edge.
	e := g.Edge(loc.Edge)
	if path[0] != e.A && path[0] != e.B {
		t.Errorf("path[0] = %d is not an endpoint of edge %d", path[0], loc.Edge)
	}
}

func TestPathFromLocationAtNode(t *testing.T) {
	g := MustBuild(smallPlan(t))
	loc := g.LocationAtNode(g.RoomNode(0))
	path, total := g.PathFromLocation(loc, g.RoomNode(1))
	if math.Abs(total-12) > 1e-9 {
		t.Errorf("total = %v, want 12", total)
	}
	if path[0] != g.RoomNode(0) {
		t.Errorf("path[0] = %v, want room 0 node", path[0])
	}
}

func TestDistancesFromLocationMatchesDistBetween(t *testing.T) {
	g := MustBuild(floorplan.DefaultOffice())
	r := rng.New(42)
	randLoc := func() Location {
		e := g.Edge(EdgeID(r.Intn(g.NumEdges())))
		return Location{Edge: e.ID, Offset: r.Uniform(0, e.Length)}
	}
	for i := 0; i < 50; i++ {
		src := randLoc()
		nd := g.DistancesFromLocation(src)
		for j := 0; j < 10; j++ {
			dst := randLoc()
			d1 := g.DistToLocation(src, nd, dst)
			d2 := g.DistBetween(src, dst)
			if math.Abs(d1-d2) > 1e-9 {
				t.Fatalf("DistToLocation=%v DistBetween=%v for %v -> %v", d1, d2, src, dst)
			}
		}
	}
}

func TestTriangleInequality(t *testing.T) {
	g := MustBuild(floorplan.DefaultOffice())
	r := rng.New(7)
	randLoc := func() Location {
		e := g.Edge(EdgeID(r.Intn(g.NumEdges())))
		return Location{Edge: e.ID, Offset: r.Uniform(0, e.Length)}
	}
	for i := 0; i < 200; i++ {
		a, b, c := randLoc(), randLoc(), randLoc()
		ab := g.DistBetween(a, b)
		bc := g.DistBetween(b, c)
		ac := g.DistBetween(a, c)
		if ac > ab+bc+1e-6 {
			t.Fatalf("triangle inequality violated: d(a,c)=%v > %v+%v", ac, ab, bc)
		}
	}
}

func TestNetworkDistanceAtLeastEuclidean(t *testing.T) {
	g := MustBuild(floorplan.DefaultOffice())
	r := rng.New(13)
	for i := 0; i < 200; i++ {
		e1 := g.Edge(EdgeID(r.Intn(g.NumEdges())))
		e2 := g.Edge(EdgeID(r.Intn(g.NumEdges())))
		a := Location{Edge: e1.ID, Offset: r.Uniform(0, e1.Length)}
		b := Location{Edge: e2.ID, Offset: r.Uniform(0, e2.Length)}
		net := g.DistBetween(a, b)
		// Door edges are folded paths (centerline -> door -> center), so the
		// geometric straight-line between two points of the *graph drawing*
		// can exceed the path metric only through that folding; allow it by
		// comparing against endpoints-only Euclidean distance for hallway
		// edges.
		if e1.Kind == HallwayEdge && e2.Kind == HallwayEdge {
			euc := g.Point(a).Dist(g.Point(b))
			if net < euc-1e-6 {
				t.Fatalf("network %v < euclidean %v", net, euc)
			}
		}
	}
}

func TestOtherEnd(t *testing.T) {
	g := MustBuild(smallPlan(t))
	e := g.Edge(0)
	if g.OtherEnd(e.ID, e.A) != e.B || g.OtherEnd(e.ID, e.B) != e.A {
		t.Error("OtherEnd wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-endpoint")
		}
	}()
	g.OtherEnd(e.ID, NodeID(9999))
}

func TestDegreeAndIncidentEdges(t *testing.T) {
	g := MustBuild(smallPlan(t))
	// The junction at (7,10) joins two hallway edges and one door edge.
	for _, n := range g.Nodes() {
		if n.Pos.Equal(geom.Pt(7, 10)) {
			if g.Degree(n.ID) != 3 {
				t.Errorf("degree at (7,10) = %d, want 3", g.Degree(n.ID))
			}
			if len(g.IncidentEdges(n.ID)) != 3 {
				t.Errorf("incident edges = %v", g.IncidentEdges(n.ID))
			}
		}
	}
	// Room nodes have degree 1 (one door).
	if g.Degree(g.RoomNode(0)) != 1 {
		t.Errorf("room node degree = %d", g.Degree(g.RoomNode(0)))
	}
}

func TestEdgeBetween(t *testing.T) {
	g := MustBuild(smallPlan(t))
	room := g.RoomNode(0)
	doorEdge := g.IncidentEdges(room)[0]
	hall := g.OtherEnd(doorEdge, room)
	if e, ok := g.EdgeBetween(room, hall); !ok || e != doorEdge {
		t.Errorf("EdgeBetween = %v, %v", e, ok)
	}
	if _, ok := g.EdgeBetween(g.RoomNode(0), g.RoomNode(1)); ok {
		t.Error("EdgeBetween found nonexistent edge")
	}
}

func TestKindStrings(t *testing.T) {
	if Junction.String() != "junction" || RoomCenter.String() != "room" {
		t.Error("NodeKind strings")
	}
	if HallwayEdge.String() != "hallway" || DoorEdge.String() != "door" {
		t.Error("EdgeKind strings")
	}
	if NodeKind(9).String() == "" || EdgeKind(9).String() == "" {
		t.Error("unknown kind strings empty")
	}
	loc := Location{Edge: 3, Offset: 1.5}
	if loc.String() != "e3+1.50" {
		t.Errorf("Location.String() = %q", loc.String())
	}
}

func TestDefaultOfficeRingDistance(t *testing.T) {
	g := MustBuild(floorplan.DefaultOffice())
	// Two points on opposite horizontal hallways at the same x should be
	// reachable both ways around the ring; the shortest is via the nearer
	// vertical hallway.
	a := g.NearestLocation(geom.Pt(10, 12))
	b := g.NearestLocation(geom.Pt(10, 24))
	// Via west hallway: 8 + 12 + 8 = 28.
	if d := g.DistBetween(a, b); math.Abs(d-28) > 1e-9 {
		t.Errorf("ring distance = %v, want 28", d)
	}
}

func TestTotalEdgeLength(t *testing.T) {
	g := MustBuild(smallPlan(t))
	// Hallway 20 m + door edges 4 m + 4 m.
	if got := g.TotalEdgeLength(); math.Abs(got-28) > 1e-9 {
		t.Errorf("TotalEdgeLength = %v, want 28", got)
	}
}
