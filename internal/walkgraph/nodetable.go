package walkgraph

import "sync"

// NodeTable is the per-node counterpart of EdgeTable: the node-side fields
// the particle motion kernel reads at every edge crossing, flattened so the
// hot loop never copies a Node struct or chases the per-node edge slices.
// Incident edges are stored in CSR form — AdjEdges[AdjStart[n]:AdjStart[n+1]]
// lists node n's incident edge IDs in exactly the order Graph.IncidentEdges
// returns them, which keeps the kernel's random edge picks consuming the
// random stream identically to the reference path. The table is immutable
// once built and safe for concurrent readers.
type NodeTable struct {
	// IsRoom reports whether the node is a RoomCenter.
	IsRoom []bool
	// AdjStart is the CSR row index into AdjEdges; len is NumNodes+1.
	AdjStart []int32
	// AdjEdges is the concatenated incident-edge lists.
	AdjEdges []int32
}

// nodeTableState carries the lazily built NodeTable on the Graph.
type nodeTableState struct {
	once  sync.Once
	table *NodeTable
}

// NodeTable returns the graph's per-node hot-loop table, building it on
// first use. The result is shared and must not be modified.
func (g *Graph) NodeTable() *NodeTable {
	g.ntable.once.Do(func() {
		t := &NodeTable{
			IsRoom:   make([]bool, len(g.nodes)),
			AdjStart: make([]int32, len(g.nodes)+1),
		}
		total := 0
		for _, n := range g.nodes {
			total += len(n.edges)
		}
		t.AdjEdges = make([]int32, 0, total)
		for i, n := range g.nodes {
			t.IsRoom[i] = n.Kind == RoomCenter
			t.AdjStart[i] = int32(len(t.AdjEdges))
			for _, e := range n.edges {
				t.AdjEdges = append(t.AdjEdges, int32(e))
			}
		}
		t.AdjStart[len(g.nodes)] = int32(len(t.AdjEdges))
		g.ntable.table = t
	})
	return g.ntable.table
}

// Incident returns node n's incident edge IDs as a sub-slice of the CSR
// array, in Graph.IncidentEdges order. The slice must not be modified.
func (t *NodeTable) Incident(n int32) []int32 {
	return t.AdjEdges[t.AdjStart[n]:t.AdjStart[n+1]]
}
