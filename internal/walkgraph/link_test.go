package walkgraph

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
)

func TestTwoStoryGraphConnected(t *testing.T) {
	p := floorplan.TwoStoryOffice()
	g := MustBuild(p)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	links := 0
	for _, e := range g.Edges() {
		if e.Kind == LinkEdge {
			links++
			if e.Length != 8 {
				t.Errorf("link edge length = %v, want 8", e.Length)
			}
		}
	}
	if links != 2 {
		t.Fatalf("link edges = %d, want 2", links)
	}
}

func TestCrossFloorDistanceUsesStairs(t *testing.T) {
	p := floorplan.TwoStoryOffice()
	g := MustBuild(p)
	// From the ground-floor stair landing (68, 20) to the upper-floor stair
	// landing (74, 20): exactly the 8 m stair walk.
	a := g.NearestLocation(geom.Pt(68, 20))
	b := g.NearestLocation(geom.Pt(74, 20))
	if d := g.DistBetween(a, b); math.Abs(d-8) > 1e-9 {
		t.Errorf("stair-to-stair distance = %v, want 8", d)
	}
	// A room on the ground floor to a room on the upper floor is reachable
	// and the distance includes a stair traversal.
	r1 := g.LocationAtNode(g.RoomNode(0))  // ground 1-S1
	r2 := g.LocationAtNode(g.RoomNode(30)) // upper 2-S1
	d := g.DistBetween(r1, r2)
	if math.IsInf(d, 1) {
		t.Fatal("floors not connected")
	}
	if d < 8 {
		t.Errorf("cross-floor distance %v implausibly small", d)
	}
}

func TestNearestLocationNeverOnLink(t *testing.T) {
	p := floorplan.TwoStoryOffice()
	g := MustBuild(p)
	// A point in the gap between the buildings, nearest (geometrically) to a
	// link's drawn segment, must still snap to a hallway edge.
	loc := g.NearestLocation(geom.Pt(71, 18))
	if g.Edge(loc.Edge).Kind == LinkEdge {
		t.Error("snapped onto a link edge")
	}
}

func TestLinkEdgeKindString(t *testing.T) {
	if LinkEdge.String() != "link" {
		t.Errorf("LinkEdge.String() = %q", LinkEdge)
	}
}
