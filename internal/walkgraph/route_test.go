package walkgraph

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/rng"
)

func TestRouteSameEdge(t *testing.T) {
	g := MustBuild(floorplan.DefaultOffice())
	e := g.Edge(0)
	a := Location{Edge: e.ID, Offset: 0.5}
	b := Location{Edge: e.ID, Offset: e.Length - 0.5}
	pts, d := g.Route(a, b)
	if len(pts) != 2 {
		t.Fatalf("points = %v", pts)
	}
	if math.Abs(d-(e.Length-1)) > 1e-9 {
		t.Errorf("length = %v", d)
	}
}

func TestRouteLengthMatchesDistBetween(t *testing.T) {
	for _, plan := range []*floorplan.Plan{floorplan.DefaultOffice(), floorplan.TwoStoryOffice()} {
		g := MustBuild(plan)
		src := rng.New(5)
		for trial := 0; trial < 60; trial++ {
			e1 := g.Edge(EdgeID(src.Intn(g.NumEdges())))
			e2 := g.Edge(EdgeID(src.Intn(g.NumEdges())))
			a := Location{Edge: e1.ID, Offset: src.Uniform(0, e1.Length)}
			b := Location{Edge: e2.ID, Offset: src.Uniform(0, e2.Length)}
			pts, d := g.Route(a, b)
			want := g.DistBetween(a, b)
			if math.Abs(d-want) > 1e-9 {
				t.Fatalf("route length %v != shortest %v", d, want)
			}
			if len(pts) < 1 {
				t.Fatal("empty polyline")
			}
			if !pts[0].Equal(g.Point(a)) || !pts[len(pts)-1].Equal(g.Point(b)) {
				t.Fatalf("polyline endpoints wrong: %v .. %v", pts[0], pts[len(pts)-1])
			}
		}
	}
}

func TestRoutePolylineSegmentsOnGraph(t *testing.T) {
	g := MustBuild(floorplan.DefaultOffice())
	a := g.LocationAtNode(g.RoomNode(0))
	b := g.LocationAtNode(g.RoomNode(25))
	pts, d := g.Route(a, b)
	if math.IsInf(d, 1) || len(pts) < 3 {
		t.Fatalf("route = %v (%v)", pts, d)
	}
	// No consecutive duplicates.
	for i := 1; i < len(pts); i++ {
		if pts[i].Equal(pts[i-1]) {
			t.Fatalf("duplicate point at %d", i)
		}
	}
	// Polyline geometric length is at most the walking length for hallway
	// routes without links (door edges fold, so allow equality tolerance).
	geomLen := 0.0
	for i := 1; i < len(pts); i++ {
		geomLen += pts[i].Dist(pts[i-1])
	}
	if geomLen > d+1e-6 {
		t.Errorf("polyline %v m longer than walking length %v", geomLen, d)
	}
	_ = geom.Point{}
}
