package walkgraph

import (
	"fmt"
	"math"

	"repro/internal/floorplan"
	"repro/internal/geom"
)

// Location is a point on the walking graph: a distance offset from endpoint
// A along an edge. All moving entities (objects, particles) and query points
// are Locations.
type Location struct {
	Edge   EdgeID
	Offset float64
}

// String implements fmt.Stringer.
func (l Location) String() string {
	return fmt.Sprintf("e%d+%.2f", l.Edge, l.Offset)
}

// Point returns the plan coordinates of a location.
func (g *Graph) Point(l Location) geom.Point {
	e := g.edges[l.Edge]
	if e.Length <= 0 {
		return g.nodes[e.A].Pos
	}
	t := l.Offset / e.Length
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return g.nodes[e.A].Pos.Lerp(g.nodes[e.B].Pos, t)
}

// Clamp returns l with its offset clamped into [0, edge length].
func (g *Graph) Clamp(l Location) Location {
	e := g.edges[l.Edge]
	if l.Offset < 0 {
		l.Offset = 0
	} else if l.Offset > e.Length {
		l.Offset = e.Length
	}
	return l
}

// LocationAtNode returns a Location coinciding with node n, placed on one of
// its incident edges.
func (g *Graph) LocationAtNode(n NodeID) Location {
	e := g.nodes[n].edges[0]
	if g.edges[e].A == n {
		return Location{Edge: e, Offset: 0}
	}
	return Location{Edge: e, Offset: g.edges[e].Length}
}

// NodeAt returns the node a location coincides with (within tol meters of an
// edge endpoint), or NoNode.
func (g *Graph) NodeAt(l Location, tol float64) NodeID {
	e := g.edges[l.Edge]
	if l.Offset <= tol {
		return e.A
	}
	if l.Offset >= e.Length-tol {
		return e.B
	}
	return NoNode
}

// RoomAt returns the room a location lies in: for a DoorEdge, the room once
// the offset passes the door position; floorplan.NoRoom otherwise.
func (g *Graph) RoomAt(l Location) floorplan.RoomID {
	e := g.edges[l.Edge]
	if e.Kind == DoorEdge && l.Offset >= e.DoorAt {
		return e.Room
	}
	return floorplan.NoRoom
}

// NearestLocation returns the walking-graph location nearest to an arbitrary
// plan point. Points inside a room snap onto that room's door edges only
// (never through a wall onto a hallway); other points snap onto hallway
// edges and the hallway-side portion of door edges.
func (g *Graph) NearestLocation(p geom.Point) Location {
	room := g.plan.RoomAt(p)
	best := Location{Edge: NoEdge}
	bestDist := math.Inf(1)
	for _, e := range g.edges {
		if e.Kind == LinkEdge {
			continue // links are not physical space; never snap onto them
		}
		if room != floorplan.NoRoom {
			if e.Kind != DoorEdge || e.Room != room {
				continue
			}
		} else if e.Kind == DoorEdge {
			continue
		}
		seg := g.EdgeSegment(e.ID)
		t := seg.Project(p)
		d := seg.At(t).Dist(p)
		if d < bestDist {
			bestDist = d
			best = Location{Edge: e.ID, Offset: t * e.Length}
		}
	}
	if best.Edge == NoEdge {
		// No candidate edges (e.g. a room without doors cannot occur in a
		// valid plan); fall back to a global scan.
		for _, e := range g.edges {
			seg := g.EdgeSegment(e.ID)
			t := seg.Project(p)
			d := seg.At(t).Dist(p)
			if d < bestDist {
				bestDist = d
				best = Location{Edge: e.ID, Offset: t * e.Length}
			}
		}
	}
	return best
}
