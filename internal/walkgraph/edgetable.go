package walkgraph

import (
	"math"

	"repro/internal/floorplan"
)

// EdgeTable is a struct-of-arrays snapshot of the per-edge fields the
// particle filter's inner loop touches every second for every particle.
// Reading Kind[e] or DoorAt[e] out of a flat array avoids copying the full
// 80-byte Edge struct per predicate, which is what Graph.Edge does; on the
// 1 Hz × Ns-particles hot path that copy dominates the classification cost.
// The table is immutable once built and safe for concurrent readers.
type EdgeTable struct {
	// Kind mirrors Edge.Kind.
	Kind []EdgeKind
	// Length mirrors Edge.Length.
	Length []float64
	// DoorAt is the room-interval start: offsets at or beyond DoorAt[e] are
	// inside Room[e]. For non-door edges it is +Inf so the comparison
	// `off >= DoorAt[e]` is false for every finite offset, making RoomAt a
	// single branch-free compare on the hot path.
	DoorAt []float64
	// Room mirrors Edge.Room (floorplan.NoRoom for non-door edges).
	Room []floorplan.RoomID
	// A and B mirror Edge.A and Edge.B as int32, sized for the SoA motion
	// kernel's flat particle arrays (graphs are far below 2^31 nodes).
	A, B []int32
	// RoomEnd is the RoomCenter endpoint of a door edge (the node a resting
	// particle's room-exit step leaves from), or -1 for edges without one.
	RoomEnd []int32
	// Walk packs the fields the motion kernel's walk loop reads on every
	// iteration into one 16-byte row, so advancing a particle along an edge
	// costs a single indexed load instead of three independent array
	// accesses. Walk[e] duplicates Length[e], A[e], B[e].
	Walk []WalkRow
}

// WalkRow is one row of EdgeTable.Walk: the per-edge fields consumed by each
// iteration of the particle walk loop. The 16-byte size keeps indexing a
// shift instead of a multiply.
type WalkRow struct {
	Length float64
	A, B   int32
}

// EdgeTable returns the graph's per-edge hot-loop table, building it on
// first use. The result is shared and must not be modified.
func (g *Graph) EdgeTable() *EdgeTable {
	g.tableOnce.Do(func() {
		t := &EdgeTable{
			Kind:    make([]EdgeKind, len(g.edges)),
			Length:  make([]float64, len(g.edges)),
			DoorAt:  make([]float64, len(g.edges)),
			Room:    make([]floorplan.RoomID, len(g.edges)),
			A:       make([]int32, len(g.edges)),
			B:       make([]int32, len(g.edges)),
			RoomEnd: make([]int32, len(g.edges)),
			Walk:    make([]WalkRow, len(g.edges)),
		}
		for i, e := range g.edges {
			t.Kind[i] = e.Kind
			t.Length[i] = e.Length
			t.Room[i] = e.Room
			if e.Kind == DoorEdge {
				t.DoorAt[i] = e.DoorAt
			} else {
				t.DoorAt[i] = math.Inf(1)
			}
			t.A[i] = int32(e.A)
			t.B[i] = int32(e.B)
			t.Walk[i] = WalkRow{Length: e.Length, A: int32(e.A), B: int32(e.B)}
			t.RoomEnd[i] = -1
			if g.nodes[e.B].Kind == RoomCenter {
				t.RoomEnd[i] = int32(e.B)
			} else if g.nodes[e.A].Kind == RoomCenter {
				t.RoomEnd[i] = int32(e.A)
			}
		}
		g.table = t
	})
	return g.table
}

// RoomAt is the EdgeTable equivalent of Graph.RoomAt: the room a location
// lies in (a DoorEdge offset at or past the door position), or
// floorplan.NoRoom. The two are exactly interchangeable; this one avoids the
// Edge struct copy.
func (t *EdgeTable) RoomAt(l Location) floorplan.RoomID {
	if l.Offset >= t.DoorAt[l.Edge] {
		return t.Room[l.Edge]
	}
	return floorplan.NoRoom
}

// InRoom reports whether a location lies inside a room (equivalent to
// RoomAt(l) != floorplan.NoRoom).
func (t *EdgeTable) InRoom(l Location) bool {
	return l.Offset >= t.DoorAt[l.Edge]
}
