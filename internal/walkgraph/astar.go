package walkgraph

import (
	"container/heap"
	"math"
)

// AStar returns the shortest network distance between two locations using
// A* with the Euclidean lower bound as its heuristic. The heuristic is
// admissible on walking graphs built by this package: every hallway and door
// edge is at least as long as its endpoints' straight-line distance, and
// link edges declare lengths no shorter than their geometric gap (enforced
// by floorplan validation), so network distance can never undercut the
// Euclidean distance.
//
// It returns the same values as DistBetween but typically visits far fewer
// nodes on large graphs; see BenchmarkAStarVsDijkstra.
func (g *Graph) AStar(a, b Location) float64 {
	a, b = g.Clamp(a), g.Clamp(b)
	if a.Edge == b.Edge {
		direct := math.Abs(a.Offset - b.Offset)
		// Going around could only win on degenerate graphs; fall through to
		// the search and take the minimum.
		if around := g.aStarSearch(a, b); around < direct {
			return around
		}
		return direct
	}
	return g.aStarSearch(a, b)
}

func (g *Graph) aStarSearch(a, b Location) float64 {
	target := g.Point(b)
	be := g.edges[b.Edge]

	// gScore per node; seeded from the two endpoints of a's edge.
	gScore := make(map[NodeID]float64, 64)
	h := func(n NodeID) float64 { return g.nodes[n].Pos.Dist(target) }

	pqd := &pq{}
	push := func(n NodeID, d float64) {
		if cur, ok := gScore[n]; !ok || d < cur {
			gScore[n] = d
			heap.Push(pqd, pqItem{node: n, dist: d + h(n)})
		}
	}
	ae := g.edges[a.Edge]
	push(ae.A, a.Offset)
	push(ae.B, ae.Length-a.Offset)

	best := math.Inf(1)
	for pqd.Len() > 0 {
		it := heap.Pop(pqd).(pqItem)
		n := it.node
		gn, ok := gScore[n]
		if !ok || it.dist-h(n) > gn+1e-12 {
			continue // stale entry
		}
		if gn >= best {
			continue
		}
		// Relax the goal if n is an endpoint of b's edge.
		if n == be.A {
			if d := gn + b.Offset; d < best {
				best = d
			}
		}
		if n == be.B {
			if d := gn + be.Length - b.Offset; d < best {
				best = d
			}
		}
		// A* terminates when the best frontier f-score cannot beat the
		// incumbent: f = g + h >= true remaining distance.
		if it.dist >= best {
			break
		}
		for _, eid := range g.nodes[n].edges {
			e := g.edges[eid]
			next := e.B
			if next == n {
				next = e.A
			}
			push(next, gn+e.Length)
		}
	}
	return best
}
