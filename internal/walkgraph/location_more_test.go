package walkgraph

import (
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
)

func TestNodeAt(t *testing.T) {
	g := MustBuild(floorplan.DefaultOffice())
	e := g.Edge(0)
	if got := g.NodeAt(Location{Edge: e.ID, Offset: 0}, 1e-9); got != e.A {
		t.Errorf("NodeAt(offset 0) = %v, want %v", got, e.A)
	}
	if got := g.NodeAt(Location{Edge: e.ID, Offset: e.Length}, 1e-9); got != e.B {
		t.Errorf("NodeAt(offset L) = %v, want %v", got, e.B)
	}
	if got := g.NodeAt(Location{Edge: e.ID, Offset: e.Length / 2}, 1e-9); got != NoNode {
		t.Errorf("NodeAt(middle) = %v, want NoNode", got)
	}
	// Tolerance widens the match window.
	if got := g.NodeAt(Location{Edge: e.ID, Offset: 0.05}, 0.1); got != e.A {
		t.Errorf("NodeAt with tolerance = %v", got)
	}
}

func TestLocationAtNodeBothEnds(t *testing.T) {
	g := MustBuild(floorplan.DefaultOffice())
	for _, n := range g.Nodes() {
		loc := g.LocationAtNode(n.ID)
		if !g.Point(loc).Equal(n.Pos) {
			t.Fatalf("LocationAtNode(%d) at %v, node at %v", n.ID, g.Point(loc), n.Pos)
		}
	}
}

func TestPathFromLocationUnreachable(t *testing.T) {
	// Two disjoint hallways cannot happen in a valid plan (Validate rejects
	// disconnected graphs), so unreachability is tested through the node
	// path API on a valid graph with an impossible destination check:
	g := MustBuild(floorplan.DefaultOffice())
	// Self path from a node location.
	n := g.Node(0)
	loc := g.LocationAtNode(n.ID)
	path, d := g.PathFromLocation(loc, n.ID)
	if d != 0 || len(path) != 1 || path[0] != n.ID {
		t.Errorf("self path = %v, %v", path, d)
	}
}

func TestDistancesFromLocationAtNode(t *testing.T) {
	g := MustBuild(floorplan.DefaultOffice())
	n := g.Node(0)
	loc := g.LocationAtNode(n.ID)
	dist := g.DistancesFromLocation(loc)
	if dist[n.ID] != 0 {
		t.Errorf("distance to self = %v", dist[n.ID])
	}
	for id, d := range dist {
		if d < 0 {
			t.Errorf("negative distance to node %d: %v", id, d)
		}
	}
}

func TestEdgeSegmentMatchesEndpoints(t *testing.T) {
	g := MustBuild(floorplan.DefaultOffice())
	for _, e := range g.Edges() {
		seg := g.EdgeSegment(e.ID)
		if !seg.A.Equal(g.Node(e.A).Pos) || !seg.B.Equal(g.Node(e.B).Pos) {
			t.Fatalf("edge %d segment endpoints mismatch", e.ID)
		}
		// Hallway and door edge lengths at least the straight-line distance.
		if e.Kind != LinkEdge && e.Length < seg.Length()-1e-9 {
			t.Fatalf("edge %d shorter than its geometry: %v < %v", e.ID, e.Length, seg.Length())
		}
	}
}

func TestNearestLocationOutsidePlan(t *testing.T) {
	g := MustBuild(floorplan.DefaultOffice())
	// Far outside: still returns some hallway location without panicking.
	loc := g.NearestLocation(geom.Pt(-500, -500))
	if g.Edge(loc.Edge).Kind == DoorEdge {
		t.Error("outside point snapped to a door edge")
	}
}
