// Package walkgraph implements the paper's indoor walking graph model: a
// graph G(N, E) abstracted from the regular walking patterns of people in an
// indoor space. Hallway centerlines contribute chains of edges; each room
// contributes a room node joined to the hallway by a door edge. All object
// and particle movement in the system is constrained to the edges of this
// graph, and the distance metric for queries is the shortest network
// distance on it.
package walkgraph

import (
	"fmt"
	"sync"

	"repro/internal/floorplan"
	"repro/internal/geom"
)

// NodeID identifies a node of the walking graph.
type NodeID int

// NoNode marks the absence of a node.
const NoNode NodeID = -1

// EdgeID identifies an edge of the walking graph.
type EdgeID int

// NoEdge marks the absence of an edge.
const NoEdge EdgeID = -1

// NodeKind classifies graph nodes.
type NodeKind int

const (
	// Junction is a node on a hallway centerline: an endpoint, a crossing
	// with another hallway, or a door's projection point.
	Junction NodeKind = iota
	// RoomCenter is the single node representing a room's interior.
	RoomCenter
)

// String implements fmt.Stringer.
func (k NodeKind) String() string {
	switch k {
	case Junction:
		return "junction"
	case RoomCenter:
		return "room"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is a vertex of the walking graph.
type Node struct {
	ID   NodeID
	Pos  geom.Point
	Kind NodeKind
	// Room is the room this node represents (RoomCenter nodes only);
	// floorplan.NoRoom otherwise.
	Room floorplan.RoomID
	// edges lists incident edge IDs.
	edges []EdgeID
}

// EdgeKind classifies graph edges.
type EdgeKind int

const (
	// HallwayEdge runs along a hallway centerline between two junctions.
	HallwayEdge EdgeKind = iota
	// DoorEdge connects a door's hallway projection to a room's center.
	DoorEdge
	// LinkEdge is an abstract walkable connection (stairs, elevator)
	// between two hallway points; its length is the link's declared walking
	// distance, not the geometric distance, and its drawn segment is not
	// physical space (no reader coverage, no room membership).
	LinkEdge
)

// String implements fmt.Stringer.
func (k EdgeKind) String() string {
	switch k {
	case HallwayEdge:
		return "hallway"
	case DoorEdge:
		return "door"
	case LinkEdge:
		return "link"
	default:
		return fmt.Sprintf("EdgeKind(%d)", int(k))
	}
}

// Edge is an undirected edge of the walking graph. Locations along the edge
// are measured as a distance offset from endpoint A.
type Edge struct {
	ID     EdgeID
	A, B   NodeID
	Length float64
	Kind   EdgeKind
	// Hallway is set for HallwayEdge edges, floorplan.NoHallway otherwise.
	Hallway floorplan.HallwayID
	// Room is set for DoorEdge edges, floorplan.NoRoom otherwise.
	Room floorplan.RoomID
	// DoorAt is, for DoorEdge edges, the offset from A at which the door
	// itself (the room wall) is crossed; offsets beyond it are inside the
	// room. It is 0 for hallway edges.
	DoorAt float64
}

// Graph is the immutable indoor walking graph. Construct one with Build.
type Graph struct {
	plan      *floorplan.Plan
	nodes     []Node
	edges     []Edge
	roomNodes map[floorplan.RoomID]NodeID
	// table is the lazily built per-edge hot-loop table (see EdgeTable);
	// ntable its per-node counterpart (see NodeTable).
	tableOnce sync.Once
	table     *EdgeTable
	ntable    nodeTableState
}

// Plan returns the floor plan the graph was built from.
func (g *Graph) Plan() *floorplan.Plan { return g.plan }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// Nodes returns all nodes indexed by NodeID. The slice must not be modified.
func (g *Graph) Nodes() []Node { return g.nodes }

// Edges returns all edges indexed by EdgeID. The slice must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// IncidentEdges returns the IDs of edges incident to node id. The slice must
// not be modified.
func (g *Graph) IncidentEdges(id NodeID) []EdgeID { return g.nodes[id].edges }

// Degree returns the number of edges incident to node id.
func (g *Graph) Degree(id NodeID) int { return len(g.nodes[id].edges) }

// OtherEnd returns the endpoint of edge e opposite to node n. It panics if n
// is not an endpoint of e.
func (g *Graph) OtherEnd(e EdgeID, n NodeID) NodeID {
	edge := g.edges[e]
	switch n {
	case edge.A:
		return edge.B
	case edge.B:
		return edge.A
	default:
		panic(fmt.Sprintf("walkgraph: node %d is not an endpoint of edge %d", n, e))
	}
}

// RoomNode returns the RoomCenter node for the given room, or NoNode if the
// room has no door (which Build rejects, so only for foreign IDs).
func (g *Graph) RoomNode(r floorplan.RoomID) NodeID {
	if id, ok := g.roomNodes[r]; ok {
		return id
	}
	return NoNode
}

// EdgeSegment returns the geometric segment of edge e, directed A to B.
func (g *Graph) EdgeSegment(e EdgeID) geom.Segment {
	edge := g.edges[e]
	return geom.Seg(g.nodes[edge.A].Pos, g.nodes[edge.B].Pos)
}

// TotalEdgeLength returns the summed length of all edges.
func (g *Graph) TotalEdgeLength() float64 {
	l := 0.0
	for _, e := range g.edges {
		l += e.Length
	}
	return l
}

// Validate checks the graph's structural invariants.
func (g *Graph) Validate() error {
	for _, e := range g.edges {
		if e.Length <= 0 {
			return fmt.Errorf("walkgraph: edge %d has non-positive length %v", e.ID, e.Length)
		}
		if int(e.A) < 0 || int(e.A) >= len(g.nodes) || int(e.B) < 0 || int(e.B) >= len(g.nodes) {
			return fmt.Errorf("walkgraph: edge %d has dangling endpoint", e.ID)
		}
		if e.A == e.B {
			return fmt.Errorf("walkgraph: edge %d is a self-loop", e.ID)
		}
	}
	for _, n := range g.nodes {
		if len(n.edges) == 0 {
			return fmt.Errorf("walkgraph: node %d (%s at %v) is isolated", n.ID, n.Kind, n.Pos)
		}
		for _, e := range n.edges {
			edge := g.edges[e]
			if edge.A != n.ID && edge.B != n.ID {
				return fmt.Errorf("walkgraph: node %d lists edge %d which does not touch it", n.ID, e)
			}
		}
	}
	// The walking graph must be connected: every location must be reachable,
	// otherwise shortest network distances are undefined for some pairs.
	if len(g.nodes) > 0 {
		dist, _ := g.ShortestFromNode(0)
		for id, d := range dist {
			if d == Unreachable {
				return fmt.Errorf("walkgraph: node %d unreachable from node 0", id)
			}
		}
	}
	return nil
}
