// Package symbolic implements the symbolic model-based location inference
// baseline (Yang et al. [29, 30] in the paper): an object is assumed to be
// uniformly distributed over all locations it could have reached since its
// last reading, constrained by the maximum walking speed and by the
// deployment-graph cells — it cannot have crossed a partitioning reader's
// activation range without being detected. Directed partitioning pairs halve
// the search space when the crossing direction is known, and presence
// devices bound the object to its current cell, matching the paper's Cases
// 1-4.
package symbolic

import (
	"fmt"
	"sort"

	"repro/internal/anchor"
	"repro/internal/depgraph"
	"repro/internal/floorplan"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/rng"
	"repro/internal/walkgraph"
)

// Sighting summarizes what the collector knows about an object: its most
// recent detecting device, when, and whether the object is inside the range
// right now. Prev is the previous distinct detecting device (NoReader when
// unknown); when (Prev, Reader) form a declared directed partitioning pair,
// the crossing direction is used to halve the search space (the paper's
// Case 3).
type Sighting struct {
	Reader model.ReaderID
	Time   model.Time
	// Current reports whether the object is currently being observed.
	Current bool
	// Prev is the second most recent detecting device, or NoReader.
	Prev model.ReaderID
}

// Model is the symbolic model-based location inference baseline.
type Model struct {
	g    *walkgraph.Graph
	dep  *rfid.Deployment
	idx  *anchor.Index
	umax float64
	dg   *depgraph.Graph
}

// DefaultMaxSpeed is the maximum walking speed umax assumed by the symbolic
// model's reachability constraint, in m/s.
const DefaultMaxSpeed = 1.5

// New builds the symbolic model over a walking graph, a reader deployment,
// and the anchor index used to discretize its distributions (sharing the
// anchor support with the particle filter makes the two methods directly
// comparable).
func New(g *walkgraph.Graph, dep *rfid.Deployment, idx *anchor.Index, umax float64) (*Model, error) {
	if umax <= 0 {
		return nil, fmt.Errorf("symbolic: umax must be positive, got %v", umax)
	}
	dg, err := depgraph.Build(g, dep)
	if err != nil {
		return nil, err
	}
	return &Model{g: g, dep: dep, idx: idx, umax: umax, dg: dg}, nil
}

// MustNew is New for known-valid parameters.
func MustNew(g *walkgraph.Graph, dep *rfid.Deployment, idx *anchor.Index, umax float64) *Model {
	m, err := New(g, dep, idx, umax)
	if err != nil {
		panic(err)
	}
	return m
}

// MaxSpeed returns the model's umax.
func (m *Model) MaxSpeed() float64 { return m.umax }

// Region returns the locations the object may occupy at time now under the
// symbolic model: the reader's own covered region while detected, otherwise
// everything reachable within umax*(now - lastSeen) of the range boundary
// without crossing any reader.
func (m *Model) Region(s Sighting, now model.Time) Region {
	if s.Current {
		return coveredRegion(m.dg, s.Reader)
	}
	maxDist := m.umax * float64(now-s.Time)
	reg := reachableRegion(m.dg, s.Reader, s.Prev, maxDist)
	if len(reg.Intervals) == 0 {
		// The object left the range this very second; it is on the boundary,
		// which the covered region approximates best.
		return coveredRegion(m.dg, s.Reader)
	}
	return reg
}

// DeploymentGraph exposes the underlying deployment graph (cells and
// fragments) for inspection.
func (m *Model) DeploymentGraph() *depgraph.Graph { return m.dg }

// Distribution infers the object's location distribution over anchor points:
// uniform over the region by floor area (hallway intervals weigh
// length x hallway width; a reachable room weighs its full area, at room
// granularity). The result sums to 1.
func (m *Model) Distribution(s Sighting, now model.Time) map[anchor.ID]float64 {
	return m.weights(m.Region(s, now))
}

// weights converts a region into a normalized anchor-point distribution.
func (m *Model) weights(reg Region) map[anchor.ID]float64 {
	plan := m.g.Plan()
	out := make(map[anchor.ID]float64)
	roomSeen := make(map[floorplan.RoomID]bool)
	for _, iv := range reg.Intervals {
		e := m.g.Edge(iv.Edge)
		switch e.Kind {
		case walkgraph.HallwayEdge:
			width := plan.Hallway(e.Hallway).Width
			ids := m.idx.OnEdge(iv.Edge)
			if len(ids) == 0 {
				continue
			}
			step := e.Length / float64(len(ids))
			for i, id := range ids {
				lo, hi := float64(i)*step, float64(i+1)*step
				if iv.Lo > lo {
					lo = iv.Lo
				}
				if iv.Hi < hi {
					hi = iv.Hi
				}
				if hi > lo {
					out[id] += (hi - lo) * width
				}
			}
		case walkgraph.DoorEdge:
			// Reaching past the door means the object may be anywhere in the
			// room (room-granularity resolution).
			if iv.Hi >= e.DoorAt && !roomSeen[e.Room] {
				roomSeen[e.Room] = true
				ap := m.idx.RoomAnchor(e.Room)
				if ap != anchor.NoAnchor {
					out[ap] += plan.Room(e.Room).Area()
				}
			}
		}
	}
	// Normalize, summing in anchor-ID order so the result is bit-for-bit
	// deterministic regardless of map layout.
	ids := make([]anchor.ID, 0, len(out))
	for id := range out {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	total := 0.0
	for _, id := range ids {
		total += out[id]
	}
	if total <= 0 {
		return nil
	}
	for _, id := range ids {
		out[id] /= total
	}
	return out
}

// KNNMaxProbSet computes the symbolic model's kNN answer: the maximum
// probability result set of the probabilistic threshold kNN formulation,
// estimated by Monte Carlo — every trial samples a position for each
// candidate from its distribution, ranks candidates by network distance from
// the query anchor ordering, and the most frequent k-set wins. anchorDist
// must map every anchor to its network distance from the query point
// (e.g. from anchor.Index.AnchorsByNetworkDistance). Candidates with nil
// distributions are skipped. The returned set has at most k objects.
func KNNMaxProbSet(src *rng.Source, k int, dists map[model.ObjectID]map[anchor.ID]float64, anchorDist map[anchor.ID]float64, trials int) []model.ObjectID {
	type objDist struct {
		obj     model.ObjectID
		anchors []anchor.ID
		weights []float64
	}
	var objs []objDist
	for obj, d := range dists {
		if len(d) == 0 {
			continue
		}
		od := objDist{obj: obj}
		for ap := range d {
			od.anchors = append(od.anchors, ap)
		}
		// Deterministic sampling: anchor order must not depend on map
		// iteration order.
		sort.Slice(od.anchors, func(i, j int) bool { return od.anchors[i] < od.anchors[j] })
		od.weights = make([]float64, len(od.anchors))
		for i, ap := range od.anchors {
			od.weights[i] = d[ap]
		}
		objs = append(objs, od)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].obj < objs[j].obj })
	if len(objs) == 0 || k <= 0 {
		return nil
	}
	if k > len(objs) {
		k = len(objs)
	}

	counts := make(map[string]int)
	sets := make(map[string][]model.ObjectID)
	best := ""
	type ranked struct {
		obj model.ObjectID
		d   float64
	}
	rankBuf := make([]ranked, len(objs))
	for trial := 0; trial < trials; trial++ {
		for i, od := range objs {
			ap := od.anchors[src.Categorical(od.weights)]
			rankBuf[i] = ranked{obj: od.obj, d: anchorDist[ap]}
		}
		sort.Slice(rankBuf, func(i, j int) bool {
			if rankBuf[i].d != rankBuf[j].d {
				return rankBuf[i].d < rankBuf[j].d
			}
			return rankBuf[i].obj < rankBuf[j].obj
		})
		ids := make([]model.ObjectID, k)
		for i := 0; i < k; i++ {
			ids[i] = rankBuf[i].obj
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		key := fmt.Sprint(ids)
		counts[key]++
		if _, ok := sets[key]; !ok {
			sets[key] = ids
		}
		if best == "" || counts[key] > counts[best] {
			best = key
		}
	}
	return sets[best]
}
