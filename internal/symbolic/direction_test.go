package symbolic

import (
	"testing"

	"repro/internal/anchor"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/walkgraph"
)

// pairedCorridor: a 60 m hallway with a directed partitioning pair at
// x = 28 (entry) and x = 32 (exit) plus end readers.
func pairedCorridor(t *testing.T) (*walkgraph.Graph, *rfid.Deployment, *anchor.Index) {
	t.Helper()
	b := floorplan.NewBuilder()
	h := b.AddHallway("h", geom.Seg(geom.Pt(0, 10), geom.Pt(60, 10)), 2)
	b.AddRoom("W", geom.RectWH(8, 3, 6, 6), h)
	b.AddRoom("E", geom.RectWH(44, 3, 6, 6), h)
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := walkgraph.MustBuild(plan)
	dep := rfid.NewDeployment([]rfid.Reader{
		{Pos: geom.Pt(28, 10), Range: 1.5},
		{Pos: geom.Pt(32, 10), Range: 1.5},
	})
	if err := dep.AddDirectedPair(0, 1); err != nil {
		t.Fatal(err)
	}
	return g, dep, anchor.MustBuildIndex(g, 1.0)
}

// TestCase3DirectedPairHalvesRegion verifies the paper's Case 3: after being
// seen at the pair's entry and then its exit, the object must be east of the
// pair; without direction knowledge the region spans both sides.
func TestCase3DirectedPairHalvesRegion(t *testing.T) {
	g, dep, idx := pairedCorridor(t)
	m := MustNew(g, dep, idx, DefaultMaxSpeed)

	directed := Sighting{Reader: 1, Prev: 0, Time: 100, Current: false}
	blind := Sighting{Reader: 1, Prev: model.NoReader, Time: 100, Current: false}

	regionSides := func(s Sighting) (west, east bool) {
		reg := m.Region(s, 110)
		for _, iv := range reg.Intervals {
			e := g.Edge(iv.Edge)
			if e.Kind != walkgraph.HallwayEdge {
				continue
			}
			for _, off := range []float64{iv.Lo + 1e-6, iv.Hi - 1e-6} {
				x := g.Point(walkgraph.Location{Edge: iv.Edge, Offset: off}).X
				if x < 30 {
					west = true
				}
				if x > 33.5 {
					east = true
				}
			}
		}
		return west, east
	}

	west, east := regionSides(directed)
	if west {
		t.Error("directed sighting leaked west of the pair")
	}
	if !east {
		t.Error("directed sighting has no mass east of the pair")
	}

	west, east = regionSides(blind)
	if !west || !east {
		t.Errorf("undirected sighting should span both sides: west=%v east=%v", west, east)
	}
}

// TestCase3ReverseDirection checks the opposite crossing: exit seen first,
// then entry, places the object west of the pair.
func TestCase3ReverseDirection(t *testing.T) {
	g, dep, idx := pairedCorridor(t)
	m := MustNew(g, dep, idx, DefaultMaxSpeed)
	s := Sighting{Reader: 0, Prev: 1, Time: 100, Current: false}
	reg := m.Region(s, 110)
	for _, iv := range reg.Intervals {
		e := g.Edge(iv.Edge)
		if e.Kind != walkgraph.HallwayEdge {
			continue
		}
		for _, off := range []float64{iv.Lo + 1e-6, iv.Hi - 1e-6} {
			x := g.Point(walkgraph.Location{Edge: iv.Edge, Offset: off}).X
			if x > 29.5 {
				t.Errorf("reverse crossing leaked east: x = %v", x)
			}
		}
	}
}

// TestCase2PresenceDeviceKeepsObjectInCell verifies the paper's Case 2: an
// object that left a presence device is still in the cell containing it.
func TestCase2PresenceDeviceKeepsObjectInCell(t *testing.T) {
	b := floorplan.NewBuilder()
	b.AddHallway("h", geom.Seg(geom.Pt(0, 10), geom.Pt(40, 10)), 2)
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := walkgraph.MustBuild(plan)
	dep := rfid.NewDeployment([]rfid.Reader{
		{Pos: geom.Pt(10, 10), Range: 1.5},                      // partitioning
		{Pos: geom.Pt(25, 10), Range: 1.5, Kind: rfid.Presence}, // presence
	})
	idx := anchor.MustBuildIndex(g, 1.0)
	m := MustNew(g, dep, idx, DefaultMaxSpeed)
	// Long after leaving the presence device, the region fills the cell east
	// of the partitioning reader but never crosses it.
	reg := m.Region(Sighting{Reader: 1, Prev: model.NoReader, Time: 0, Current: false}, 1000)
	minX, maxX := 1e9, -1e9
	for _, iv := range reg.Intervals {
		for _, off := range []float64{iv.Lo + 1e-6, iv.Hi - 1e-6} {
			x := g.Point(walkgraph.Location{Edge: iv.Edge, Offset: off}).X
			if x < minX {
				minX = x
			}
			if x > maxX {
				maxX = x
			}
		}
	}
	if minX < 11.4 {
		t.Errorf("region crossed the partitioning reader: minX = %v", minX)
	}
	if maxX < 39 {
		t.Errorf("region should fill the cell to the east end: maxX = %v", maxX)
	}
	// The presence device's own covered stretch is part of the cell and so
	// part of the region (it senses, but does not block).
	covered := false
	for _, iv := range reg.Intervals {
		mid := g.Point(walkgraph.Location{Edge: iv.Edge, Offset: (iv.Lo + iv.Hi) / 2})
		if mid.Dist(geom.Pt(25, 10)) < 1.5 {
			covered = true
		}
	}
	if !covered {
		t.Error("presence-covered stretch missing from the region")
	}
}
