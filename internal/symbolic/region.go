package symbolic

import (
	"math"
	"sort"

	"repro/internal/depgraph"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/walkgraph"
)

// EdgeInterval is a contiguous piece of a walking-graph edge.
type EdgeInterval struct {
	Edge   walkgraph.EdgeID
	Lo, Hi float64
}

// Length returns the interval's length.
func (iv EdgeInterval) Length() float64 { return iv.Hi - iv.Lo }

// Region is a set of edge intervals: the locations an object may occupy.
type Region struct {
	Intervals []EdgeInterval
}

// TotalLength returns the summed interval length.
func (r Region) TotalLength() float64 {
	total := 0.0
	for _, iv := range r.Intervals {
		total += iv.Length()
	}
	return total
}

// coveredRegion returns the region of a reader's covered fragments.
func coveredRegion(dg *depgraph.Graph, reader model.ReaderID) Region {
	var out Region
	for _, fid := range dg.OfReader(reader) {
		f := dg.Fragment(fid)
		out.Intervals = append(out.Intervals, EdgeInterval{Edge: f.Edge, Lo: f.Lo, Hi: f.Hi})
	}
	return out
}

// fragEndPos returns the walking-graph position of a fragment endpoint.
func fragEndPos(dg *depgraph.Graph, f depgraph.Fragment, node int) geom.Point {
	g := dg.WalkGraph()
	off := f.Lo
	if node == f.B {
		off = f.Hi
	}
	return g.Point(walkgraph.Location{Edge: f.Edge, Offset: off})
}

// boundarySeeds returns the Dijkstra seeds for an object that just left
// reader `from`: the boundary nodes of the reader's covered fragments. When
// the previous reading came from the paired reader of a directed
// partitioning device, the crossing direction is known, and only the
// boundary nodes on the far side (away from the previous reader) are seeded
// — the paper's Case 3.
func boundarySeeds(dg *depgraph.Graph, from, prev model.ReaderID) map[int]float64 {
	seeds := make(map[int]float64)
	directional := false
	var prevPos geom.Point
	if prev != model.NoReader {
		if _, ok := dg.Deployment().PairFor(prev, from); ok {
			directional = true
			prevPos = dg.Deployment().Reader(prev).Pos
		}
	}
	for _, fid := range dg.OfReader(from) {
		f := dg.Fragment(fid)
		if !f.Blocking {
			// Presence device: the object remains in the surrounding cell;
			// both ends seed (the paper's Case 2).
			seeds[f.A] = 0
			seeds[f.B] = 0
			continue
		}
		if directional {
			// Seed only the endpoint farther from the paired entry reader.
			da := fragEndPos(dg, f, f.A).Dist(prevPos)
			db := fragEndPos(dg, f, f.B).Dist(prevPos)
			if da > db {
				seeds[f.A] = 0
			} else {
				seeds[f.B] = 0
			}
			continue
		}
		seeds[f.A] = 0
		seeds[f.B] = 0
	}
	return seeds
}

// reachableRegion returns the region reachable within maxDist of leaving
// reader `from` (with optional direction knowledge from reader `prev`),
// excluding every partitioning reader's covered fragments.
func reachableRegion(dg *depgraph.Graph, from, prev model.ReaderID, maxDist float64) Region {
	dist := dg.ReachableNodeDists(boundarySeeds(dg, from, prev))
	var out Region
	for _, f := range dg.Fragments() {
		if f.Blocking {
			continue
		}
		var ivs []EdgeInterval
		if da := dist[f.A]; da <= maxDist {
			if reach := math.Min(f.Length(), maxDist-da); reach > 1e-9 {
				ivs = append(ivs, EdgeInterval{Edge: f.Edge, Lo: f.Lo, Hi: f.Lo + reach})
			}
		}
		if db := dist[f.B]; db <= maxDist {
			if reach := math.Min(f.Length(), maxDist-db); reach > 1e-9 {
				ivs = append(ivs, EdgeInterval{Edge: f.Edge, Lo: f.Hi - reach, Hi: f.Hi})
			}
		}
		out.Intervals = append(out.Intervals, mergeIntervals(ivs)...)
	}
	return out
}

// mergeIntervals merges overlapping intervals on the same edge.
func mergeIntervals(ivs []EdgeInterval) []EdgeInterval {
	if len(ivs) <= 1 {
		return ivs
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Lo < ivs[j].Lo })
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi {
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}
