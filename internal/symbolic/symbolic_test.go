package symbolic

import (
	"math"
	"testing"

	"repro/internal/anchor"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/rng"
	"repro/internal/walkgraph"
)

// corridor: a 40 m hallway with rooms north and south, and three readers at
// x = 10, 20, 30 with 2 m ranges, partitioning the hallway into sections.
func corridor(t *testing.T) (*walkgraph.Graph, *rfid.Deployment, *anchor.Index) {
	t.Helper()
	b := floorplan.NewBuilder()
	h := b.AddHallway("h", geom.Seg(geom.Pt(0, 10), geom.Pt(40, 10)), 2)
	b.AddRoom("R3", geom.RectWH(12, 3, 6, 6), h)
	b.AddRoom("R7", geom.RectWH(24, 11, 6, 6), h)
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := walkgraph.MustBuild(plan)
	dep := rfid.NewDeployment([]rfid.Reader{
		{Pos: geom.Pt(10, 10), Range: 2},
		{Pos: geom.Pt(20, 10), Range: 2},
		{Pos: geom.Pt(30, 10), Range: 2},
	})
	return g, dep, anchor.MustBuildIndex(g, 1.0)
}

func TestNewRejectsBadSpeed(t *testing.T) {
	g, dep, idx := corridor(t)
	if _, err := New(g, dep, idx, 0); err == nil {
		t.Error("expected error for umax = 0")
	}
	if _, err := New(g, dep, idx, -1); err == nil {
		t.Error("expected error for negative umax")
	}
}

func TestCurrentlyDetectedRegionIsReaderRange(t *testing.T) {
	g, dep, idx := corridor(t)
	m := MustNew(g, dep, idx, DefaultMaxSpeed)
	reg := m.Region(Sighting{Reader: 1, Time: 100, Current: true, Prev: model.NoReader}, 100)
	// Reader 1 covers x in [18, 22] on the hallway: total about 4 m.
	if l := reg.TotalLength(); math.Abs(l-4) > 0.1 {
		t.Errorf("covered region length = %v, want ~4", l)
	}
	for _, iv := range reg.Intervals {
		mid := walkgraph.Location{Edge: iv.Edge, Offset: (iv.Lo + iv.Hi) / 2}
		if d := g.Point(mid).Dist(geom.Pt(20, 10)); d > 2.01 {
			t.Errorf("region point %v outside reader range", g.Point(mid))
		}
	}
}

func TestReachabilityGrowsWithTime(t *testing.T) {
	g, dep, idx := corridor(t)
	m := MustNew(g, dep, idx, DefaultMaxSpeed)
	s := Sighting{Reader: 1, Time: 100, Current: false, Prev: model.NoReader}
	l2 := m.Region(s, 102).TotalLength()
	l5 := m.Region(s, 105).TotalLength()
	if l5 <= l2 {
		t.Errorf("region did not grow: %v then %v", l2, l5)
	}
}

func TestReachabilityBlockedByOtherReaders(t *testing.T) {
	g, dep, idx := corridor(t)
	m := MustNew(g, dep, idx, DefaultMaxSpeed)
	// Long after leaving reader 1, the region must still exclude everything
	// beyond readers 0 and 2 (the object would have been detected crossing
	// them). x < 8 and x > 32 on the hallway are unreachable.
	reg := m.Region(Sighting{Reader: 1, Time: 0, Current: false, Prev: model.NoReader}, 1000)
	for _, iv := range reg.Intervals {
		e := g.Edge(iv.Edge)
		if e.Kind != walkgraph.HallwayEdge {
			continue
		}
		for _, off := range []float64{iv.Lo + 1e-6, iv.Hi - 1e-6} {
			x := g.Point(walkgraph.Location{Edge: iv.Edge, Offset: off}).X
			if x < 8-1e-6 || x > 32+1e-6 {
				t.Errorf("region leaked past readers: x = %v", x)
			}
		}
	}
	// But it must include the rooms between the readers.
	dist := m.Distribution(Sighting{Reader: 1, Time: 0, Current: false, Prev: model.NoReader}, 1000)
	r3 := idx.RoomAnchor(0)
	r7 := idx.RoomAnchor(1)
	if dist[r3] <= 0 || dist[r7] <= 0 {
		t.Errorf("rooms missing from distribution: R3=%v R7=%v", dist[r3], dist[r7])
	}
}

func TestDistributionNormalized(t *testing.T) {
	g, dep, idx := corridor(t)
	m := MustNew(g, dep, idx, DefaultMaxSpeed)
	for _, s := range []Sighting{
		{Reader: 0, Time: 50, Current: true},
		{Reader: 1, Time: 50, Current: false},
		{Reader: 2, Time: 40, Current: false},
	} {
		dist := m.Distribution(s, 55)
		if len(dist) == 0 {
			t.Fatalf("empty distribution for %+v", s)
		}
		total := 0.0
		for _, p := range dist {
			if p < 0 {
				t.Fatalf("negative probability for %+v", s)
			}
			total += p
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("distribution sums to %v for %+v", total, s)
		}
	}
}

func TestJustLeftFallsBackToCoveredRegion(t *testing.T) {
	g, dep, idx := corridor(t)
	m := MustNew(g, dep, idx, DefaultMaxSpeed)
	// now == lastSeen: reachable region is empty, so the covered region must
	// be used and yield a valid distribution.
	dist := m.Distribution(Sighting{Reader: 1, Time: 77, Current: false, Prev: model.NoReader}, 77)
	if len(dist) == 0 {
		t.Fatal("empty fallback distribution")
	}
	total := 0.0
	for _, p := range dist {
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("fallback distribution sums to %v", total)
	}
}

func TestRoomWeightUsesArea(t *testing.T) {
	g, dep, idx := corridor(t)
	m := MustNew(g, dep, idx, DefaultMaxSpeed)
	// With a huge time budget the region covers the full middle cell:
	// hallway x in [8, 32] minus covered pieces, plus both 36 m^2 rooms.
	dist := m.Distribution(Sighting{Reader: 1, Time: 0, Current: false, Prev: model.NoReader}, 1000)
	pRoom := dist[idx.RoomAnchor(0)]
	// Free hallway: [8,18] u [22,28] minus... between readers 0 and 2 the
	// uncovered hallway is (12,18) u (22,28): 12 m of 2 m wide strip = 24;
	// actually the region also includes the covered boundaries' own free
	// fragments behind reader 1? No: covered pieces excluded. Free area =
	// ((18-12) + (28-22)) * 2 = 24. Each room is 36. Total = 24 + 72 = 96.
	want := 36.0 / 96.0
	if math.Abs(pRoom-want) > 0.05 {
		t.Errorf("room probability = %v, want ~%v", pRoom, want)
	}
}

func TestMergeIntervals(t *testing.T) {
	ivs := []EdgeInterval{
		{Edge: 1, Lo: 5, Hi: 8},
		{Edge: 1, Lo: 0, Hi: 3},
		{Edge: 1, Lo: 2, Hi: 6},
	}
	out := mergeIntervals(ivs)
	if len(out) != 1 || out[0].Lo != 0 || out[0].Hi != 8 {
		t.Errorf("merged = %v", out)
	}
	// Disjoint intervals stay apart.
	out = mergeIntervals([]EdgeInterval{{Lo: 0, Hi: 1}, {Lo: 2, Hi: 3}})
	if len(out) != 2 {
		t.Errorf("disjoint merged = %v", out)
	}
	if got := mergeIntervals(nil); got != nil {
		t.Errorf("nil merge = %v", got)
	}
}

func TestKNNMaxProbSet(t *testing.T) {
	src := rng.New(9)
	// Three objects with point distributions at anchors 1, 2, 3; distances
	// 1, 2, 3 from the query. 2NN must be {1, 2}.
	dists := map[model.ObjectID]map[anchor.ID]float64{
		1: {anchor.ID(1): 1},
		2: {anchor.ID(2): 1},
		3: {anchor.ID(3): 1},
	}
	anchorDist := map[anchor.ID]float64{1: 1, 2: 2, 3: 3}
	got := KNNMaxProbSet(src, 2, dists, anchorDist, 50)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("KNNMaxProbSet = %v, want [1 2]", got)
	}
}

func TestKNNMaxProbSetProbabilistic(t *testing.T) {
	src := rng.New(10)
	// Object 2 is usually at distance 5 but sometimes at distance 0.5; the
	// modal 1NN set must be {1} (distance 1).
	dists := map[model.ObjectID]map[anchor.ID]float64{
		1: {anchor.ID(1): 1},
		2: {anchor.ID(2): 0.8, anchor.ID(3): 0.2},
	}
	anchorDist := map[anchor.ID]float64{1: 1, 2: 5, 3: 0.5}
	got := KNNMaxProbSet(src, 1, dists, anchorDist, 500)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("modal 1NN = %v, want [1]", got)
	}
}

func TestKNNMaxProbSetEdgeCases(t *testing.T) {
	src := rng.New(11)
	if got := KNNMaxProbSet(src, 3, nil, nil, 10); got != nil {
		t.Errorf("empty candidates = %v", got)
	}
	// k larger than candidate count returns all candidates.
	dists := map[model.ObjectID]map[anchor.ID]float64{
		1: {anchor.ID(1): 1},
	}
	got := KNNMaxProbSet(src, 5, dists, map[anchor.ID]float64{1: 1}, 10)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("oversized k = %v", got)
	}
	// Objects with empty distributions are skipped.
	dists[2] = nil
	got = KNNMaxProbSet(src, 5, dists, map[anchor.ID]float64{1: 1}, 10)
	if len(got) != 1 {
		t.Errorf("nil distribution not skipped: %v", got)
	}
	if got := KNNMaxProbSet(src, 0, dists, nil, 10); got != nil {
		t.Errorf("k=0 = %v", got)
	}
}

func TestDefaultOfficeModelBuilds(t *testing.T) {
	plan := floorplan.DefaultOffice()
	g := walkgraph.MustBuild(plan)
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	idx := anchor.MustBuildIndex(g, 1.0)
	m := MustNew(g, dep, idx, DefaultMaxSpeed)
	// Sanity: every reader yields a normalized distribution after 10 s.
	for _, r := range dep.Readers() {
		dist := m.Distribution(Sighting{Reader: r.ID, Time: 0, Current: false, Prev: model.NoReader}, 10)
		total := 0.0
		for _, p := range dist {
			total += p
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("reader %d: distribution sums to %v", r.ID, total)
		}
	}
}
