package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// tiny returns the smallest configuration that still exercises every code
// path, for unit tests.
func tiny() Params {
	p := Quick()
	p.Objects = 15
	p.WarmupSeconds = 60
	p.Timestamps = 2
	p.RangeWindows = 8
	p.KNNPoints = 4
	return p
}

func TestRunProducesFiniteMetrics(t *testing.T) {
	m, err := Run(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"PFKL": m.PFKL, "SMKL": m.SMKL,
		"PFHit": m.PFHit, "SMHit": m.SMHit,
		"Top1": m.Top1, "Top2": m.Top2,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Errorf("%s = %v", name, v)
		}
	}
	if m.PFHit > 1 || m.SMHit > 1 || m.Top1 > 1 || m.Top2 > 1 {
		t.Errorf("rates above 1: %+v", m)
	}
	if m.RangeQueries == 0 || m.KNNQueries == 0 {
		t.Errorf("no queries evaluated: %+v", m)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(tiny())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("equal-seed runs differ:\n%+v\n%+v", a, b)
	}
}

func TestTop2AtLeastTop1(t *testing.T) {
	m, err := Run(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if m.Top2 < m.Top1 {
		t.Errorf("top2 %v < top1 %v", m.Top2, m.Top1)
	}
}

func TestRunRejectsBadParams(t *testing.T) {
	p := tiny()
	p.Readers = 0
	if _, err := Run(p); err == nil {
		t.Error("zero readers accepted")
	}
	p = tiny()
	p.Particles = 0
	if _, err := Run(p); err == nil {
		t.Error("zero particles accepted")
	}
	p = tiny()
	p.Objects = 0
	if _, err := Run(p); err == nil {
		t.Error("zero objects accepted")
	}
}

func TestFigureSweepAndWrite(t *testing.T) {
	base := tiny()
	fig, err := sweep(base, "X", "test sweep", "k", []string{"PF_hit", "SM_hit"},
		[]float64{2, 3}, func(p *Params, x float64) { p.K = int(x) })
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 2 {
		t.Fatalf("points = %d", len(fig.Points))
	}
	var buf bytes.Buffer
	if err := fig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# Figure X: test sweep") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "PF_hit") || !strings.Contains(out, "SM_hit") {
		t.Errorf("missing columns:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Errorf("unexpected line count:\n%s", out)
	}
}

func TestFiguresRegistry(t *testing.T) {
	figs := Figures()
	for _, id := range []string{"9", "10", "11", "12", "13"} {
		if figs[id] == nil {
			t.Errorf("figure %s missing", id)
		}
	}
	ids := FigureIDs()
	if len(ids) != 5 || ids[0] != "9" || ids[4] != "13" {
		t.Errorf("FigureIDs = %v", ids)
	}
}

func TestRandomWindowAreaAndBounds(t *testing.T) {
	p := tiny()
	m, err := Run(p) // warms nothing extra; just ensures package-level helpers work
	_ = m
	if err != nil {
		t.Fatal(err)
	}
}

func TestMeasurementValue(t *testing.T) {
	m := Measurement{PFKL: 1, SMKL: 2, PFHit: 3, SMHit: 4, Top1: 5, Top2: 6}
	for name, want := range map[string]float64{
		"PF_KL": 1, "SM_KL": 2, "PF_hit": 3, "SM_hit": 4, "top1": 5, "top2": 6,
	} {
		if got := m.value(name); got != want {
			t.Errorf("value(%s) = %v", name, got)
		}
	}
	if m.value("nope") != 0 {
		t.Error("unknown metric should be 0")
	}
}
