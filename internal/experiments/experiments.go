// Package experiments regenerates every figure of the paper's evaluation
// (Section 5): the simulator produces ground-truth traces and noisy raw
// readings over the default office, both the particle filter-based system
// and the symbolic model baseline answer the same randomized range and kNN
// workloads, and the paper's metrics (KL divergence, kNN hit rate, top-k
// success rate) are averaged over query windows, query points, and time
// stamps.
package experiments

import (
	"math"

	"repro/internal/engine"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Params parameterizes one experiment configuration. Zero values are not
// usable; start from Default.
type Params struct {
	// Particles is the particle count Ns (Table 2 default: 64).
	Particles int
	// WindowPct is the range query window size as a percentage of the total
	// floor area (default: 2).
	WindowPct float64
	// Objects is the number of moving objects (default: 200).
	Objects int
	// K is the kNN k (default: 3).
	K int
	// ActivationRange is the reader activation range in meters (default: 2).
	ActivationRange float64
	// Readers is the number of deployed readers (paper: 19).
	Readers int
	// WarmupSeconds runs the simulation before the first query time stamp.
	WarmupSeconds int
	// Timestamps is the number of query time stamps (paper: 50).
	Timestamps int
	// StepBetween is the number of simulated seconds between time stamps.
	StepBetween int
	// RangeWindows is the number of random query windows per time stamp
	// (paper: 100).
	RangeWindows int
	// KNNPoints is the number of random kNN query points per time stamp
	// (paper: 30).
	KNNPoints int
	// DwellMin and DwellMax bound the uniform in-room dwell time of the
	// simulated objects. The paper's trace generator has objects walking
	// continuously between random destination rooms; a short dwell keeps
	// them mostly in motion while still exercising in-room inference.
	DwellMin, DwellMax int
	// Seed drives all randomness.
	Seed int64
	// Tweak, when non-nil, adjusts the engine configuration after the sweep
	// parameters are applied and before the system is built. The ablation
	// benchmarks use it to flip individual design choices (resampling
	// variant, negative information, cache, pruning, anchor spacing).
	Tweak func(*engine.Config)
}

// Default returns the paper's experiment defaults (Table 2 and Section 5).
func Default() Params {
	return Params{
		Particles:       64,
		WindowPct:       2,
		Objects:         200,
		K:               3,
		ActivationRange: 2,
		Readers:         19,
		WarmupSeconds:   120,
		Timestamps:      50,
		StepBetween:     10,
		RangeWindows:    100,
		KNNPoints:       30,
		DwellMin:        2,
		DwellMax:        10,
		Seed:            1,
	}
}

// Quick returns reduced parameters for fast smoke runs and tests.
func Quick() Params {
	p := Default()
	p.Objects = 40
	p.WarmupSeconds = 80
	p.Timestamps = 6
	p.RangeWindows = 20
	p.KNNPoints = 8
	return p
}

// Measurement is the averaged outcome of one configuration.
type Measurement struct {
	// PFKL and SMKL are mean KL divergences of range query answers.
	PFKL, SMKL float64
	// PFHit and SMHit are mean kNN hit rates.
	PFHit, SMHit float64
	// Top1 and Top2 are the particle filter's top-k success rates.
	Top1, Top2 float64
	// RangeQueries and KNNQueries count the evaluated queries.
	RangeQueries, KNNQueries int
}

// Run executes one experiment configuration and returns its averaged
// measurement.
func Run(p Params) (Measurement, error) {
	plan := floorplan.DefaultOffice()
	dep, err := rfid.DeployUniform(plan, p.Readers, p.ActivationRange)
	if err != nil {
		return Measurement{}, err
	}
	cfg := engine.DefaultConfig()
	cfg.Particle.Ns = p.Particles
	cfg.Seed = p.Seed
	if p.Tweak != nil {
		p.Tweak(&cfg)
	}
	sys, err := engine.New(plan, dep, cfg)
	if err != nil {
		return Measurement{}, err
	}
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = p.Objects
	tc.DwellMin = model.Time(p.DwellMin)
	tc.DwellMax = model.Time(p.DwellMax)
	simulator, err := sim.New(sys.Graph(), rfid.NewSensor(dep), tc, p.Seed+77)
	if err != nil {
		return Measurement{}, err
	}
	for i := 0; i < p.WarmupSeconds; i++ {
		t, raws := simulator.Step()
		sys.Ingest(t, raws)
	}

	src := rng.New(p.Seed + 555)
	var (
		pfKL, smKL, pfHit, smHit []float64
		top1Hits, top2Hits       int
		topTotal                 int
	)
	for ts := 0; ts < p.Timestamps; ts++ {
		for i := 0; i < p.StepBetween; i++ {
			t, raws := simulator.Step()
			sys.Ingest(t, raws)
		}
		objs := sys.Collector().KnownObjects()
		pfTab := sys.Preprocess(objs)
		smTab := sys.SMPreprocess(objs)

		// Range queries.
		for w := 0; w < p.RangeWindows; w++ {
			win := randomWindow(src, plan, p.WindowPct)
			truth := make(model.ResultSet)
			for _, o := range simulator.TrueRange(win) {
				truth[o] = 1
			}
			if len(truth) == 0 {
				continue
			}
			pfKL = append(pfKL, metrics.KLDivergence(truth, sys.RangeQueryOn(pfTab, win), metrics.DefaultEpsilon))
			smKL = append(smKL, metrics.KLDivergence(truth, sys.RangeQueryOn(smTab, win), metrics.DefaultEpsilon))
		}

		// kNN queries.
		for q := 0; q < p.KNNPoints; q++ {
			pt := randomHallwayPoint(src, plan)
			truth := simulator.TrueKNN(pt, p.K)
			pfRS := sys.KNNQueryOn(pfTab, pt, p.K)
			pfHit = append(pfHit, metrics.HitRate(pfRS.Objects(), truth))
			smSet := sys.SMKNNQueryOn(smTab, pt, p.K)
			smHit = append(smHit, metrics.HitRate(smSet, truth))
		}

		// Top-k success of the particle filter's inferred locations.
		idx := sys.AnchorIndex()
		for _, obj := range objs {
			dist := pfTab.DistributionOf(obj)
			if len(dist) == 0 {
				continue
			}
			trueAnchor := idx.Snap(simulator.TrueLocation(obj))
			topTotal++
			if metrics.TopKSuccess(dist, trueAnchor, 1) {
				top1Hits++
			}
			if metrics.TopKSuccess(dist, trueAnchor, 2) {
				top2Hits++
			}
		}
	}

	m := Measurement{
		PFKL:         metrics.Mean(pfKL),
		SMKL:         metrics.Mean(smKL),
		PFHit:        metrics.Mean(pfHit),
		SMHit:        metrics.Mean(smHit),
		RangeQueries: len(pfKL),
		KNNQueries:   len(pfHit),
	}
	if topTotal > 0 {
		m.Top1 = float64(top1Hits) / float64(topTotal)
		m.Top2 = float64(top2Hits) / float64(topTotal)
	}
	return m, nil
}

// randomWindow draws a random rectangle covering pct percent of the plan's
// total area, with a random aspect ratio, fully inside the plan bounds.
func randomWindow(src *rng.Source, plan *floorplan.Plan, pct float64) geom.Rect {
	bounds := plan.Bounds()
	area := plan.TotalArea() * pct / 100
	aspect := src.Uniform(0.5, 2.0)
	w := math.Sqrt(area * aspect)
	h := area / w
	if w > bounds.Width() {
		w = bounds.Width()
		h = area / w
	}
	if h > bounds.Height() {
		h = bounds.Height()
		w = area / h
	}
	x := src.Uniform(bounds.Min.X, math.Max(bounds.Min.X, bounds.Max.X-w))
	y := src.Uniform(bounds.Min.Y, math.Max(bounds.Min.Y, bounds.Max.Y-h))
	return geom.RectWH(x, y, w, h)
}

// randomHallwayPoint draws a random point on a hallway centerline, weighted
// by hallway length (query points are approximated onto the walking graph by
// the evaluator anyway).
func randomHallwayPoint(src *rng.Source, plan *floorplan.Plan) geom.Point {
	d := src.Uniform(0, plan.TotalHallwayLength())
	pt, _ := plan.PointOnHallway(d)
	return pt
}
