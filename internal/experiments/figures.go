package experiments

import (
	"fmt"
	"io"
	"sort"
)

// SweepPoint is one x-value of a figure together with its measurement.
type SweepPoint struct {
	X float64
	M Measurement
}

// Figure is a regenerated paper figure: a parameter sweep with one
// measurement per swept value.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	// Metrics names the measurement columns this figure reports.
	Metrics []string
	Points  []SweepPoint
}

// FigureFunc runs a figure's sweep from base parameters.
type FigureFunc func(base Params) (Figure, error)

// Figures maps figure IDs ("9" .. "13") to their runners, in paper order.
func Figures() map[string]FigureFunc {
	return map[string]FigureFunc{
		"9":  Fig9,
		"10": Fig10,
		"11": Fig11,
		"12": Fig12,
		"13": Fig13,
	}
}

// FigureIDs returns the known figure IDs in paper order.
func FigureIDs() []string {
	ids := make([]string, 0, len(Figures()))
	for id := range Figures() {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		return len(ids[i]) < len(ids[j]) || (len(ids[i]) == len(ids[j]) && ids[i] < ids[j])
	})
	return ids
}

func sweep(base Params, id, title, xlabel string, metricNames []string, xs []float64, apply func(*Params, float64)) (Figure, error) {
	f := Figure{ID: id, Title: title, XLabel: xlabel, Metrics: metricNames}
	for _, x := range xs {
		p := base
		apply(&p, x)
		m, err := Run(p)
		if err != nil {
			return Figure{}, fmt.Errorf("experiments: figure %s at %s=%v: %w", id, xlabel, x, err)
		}
		f.Points = append(f.Points, SweepPoint{X: x, M: m})
	}
	return f, nil
}

// Fig9 regenerates Figure 9: effects of query window size on range query KL
// divergence (PF vs SM), window sizes 1% to 5%.
func Fig9(base Params) (Figure, error) {
	return sweep(base, "9", "Effects of query window size", "window%",
		[]string{"PF_KL", "SM_KL"},
		[]float64{1, 2, 3, 4, 5},
		func(p *Params, x float64) { p.WindowPct = x })
}

// Fig10 regenerates Figure 10: effects of k on kNN average hit rate
// (PF vs SM), k from 2 to 9.
func Fig10(base Params) (Figure, error) {
	return sweep(base, "10", "Effects of k", "k",
		[]string{"PF_hit", "SM_hit"},
		[]float64{2, 3, 4, 5, 6, 7, 8, 9},
		func(p *Params, x float64) { p.K = int(x) })
}

// Fig11 regenerates Figure 11: impact of the number of particles on
// (a) KL divergence, (b) kNN hit rate, and (c) top-k success rate,
// Ns from 2 to 512.
func Fig11(base Params) (Figure, error) {
	return sweep(base, "11", "Impact of the number of particles", "particles",
		[]string{"PF_KL", "SM_KL", "PF_hit", "SM_hit", "top1", "top2"},
		[]float64{2, 4, 8, 16, 32, 64, 128, 256, 512},
		func(p *Params, x float64) { p.Particles = int(x) })
}

// Fig12 regenerates Figure 12: impact of the number of moving objects,
// 200 to 1000.
func Fig12(base Params) (Figure, error) {
	return sweep(base, "12", "Impact of the number of moving objects", "objects",
		[]string{"PF_KL", "SM_KL", "PF_hit", "SM_hit", "top1", "top2"},
		[]float64{200, 400, 600, 800, 1000},
		func(p *Params, x float64) { p.Objects = int(x) })
}

// Fig12Scaled is Fig12 with the object counts scaled down by the base
// parameter ratio, for quick runs: it keeps the 1x..5x progression.
func Fig12Scaled(base Params) (Figure, error) {
	n := base.Objects
	return sweep(base, "12", "Impact of the number of moving objects", "objects",
		[]string{"PF_KL", "SM_KL", "PF_hit", "SM_hit", "top1", "top2"},
		[]float64{float64(n), float64(2 * n), float64(3 * n), float64(4 * n), float64(5 * n)},
		func(p *Params, x float64) { p.Objects = int(x) })
}

// Fig13 regenerates Figure 13: impact of the activation range, 0.5 m to
// 2.5 m.
func Fig13(base Params) (Figure, error) {
	return sweep(base, "13", "Impact of activation range", "range_m",
		[]string{"PF_KL", "SM_KL", "PF_hit", "SM_hit", "top1", "top2"},
		[]float64{0.5, 1.0, 1.5, 2.0, 2.5},
		func(p *Params, x float64) { p.ActivationRange = x })
}

// value extracts a named metric from a measurement.
func (m Measurement) value(name string) float64 {
	switch name {
	case "PF_KL":
		return m.PFKL
	case "SM_KL":
		return m.SMKL
	case "PF_hit":
		return m.PFHit
	case "SM_hit":
		return m.SMHit
	case "top1":
		return m.Top1
	case "top2":
		return m.Top2
	default:
		return 0
	}
}

// WriteCSV renders the figure as CSV for external plotting tools.
func (f Figure) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s", f.XLabel); err != nil {
		return err
	}
	for _, m := range f.Metrics {
		if _, err := fmt.Fprintf(w, ",%s", m); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, pt := range f.Points {
		if _, err := fmt.Fprintf(w, "%g", pt.X); err != nil {
			return err
		}
		for _, m := range f.Metrics {
			if _, err := fmt.Fprintf(w, ",%.6f", pt.M.value(m)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// Write renders the figure as an aligned text table.
func (f Figure) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# Figure %s: %s\n", f.ID, f.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-12s", f.XLabel); err != nil {
		return err
	}
	for _, m := range f.Metrics {
		if _, err := fmt.Fprintf(w, " %10s", m); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, pt := range f.Points {
		if _, err := fmt.Fprintf(w, "%-12g", pt.X); err != nil {
			return err
		}
		for _, m := range f.Metrics {
			if _, err := fmt.Fprintf(w, " %10.4f", pt.M.value(m)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
