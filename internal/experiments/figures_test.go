package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/engine"
)

// micro returns the absolute minimum configuration for exercising the
// figure runners end to end.
func micro() Params {
	p := Quick()
	p.Objects = 8
	p.WarmupSeconds = 40
	p.Timestamps = 1
	p.RangeWindows = 3
	p.KNNPoints = 2
	return p
}

func TestAllFigureRunnersExecute(t *testing.T) {
	base := micro()
	for id, run := range Figures() {
		// Shrink the heavier sweeps further: keep only the sweep mechanics.
		fig, err := run(base)
		if err != nil {
			t.Fatalf("figure %s: %v", id, err)
		}
		if fig.ID != id {
			t.Errorf("figure %s reports ID %s", id, fig.ID)
		}
		if len(fig.Points) == 0 {
			t.Errorf("figure %s has no points", id)
		}
		var buf bytes.Buffer
		if err := fig.Write(&buf); err != nil {
			t.Errorf("figure %s: Write: %v", id, err)
		}
		if !strings.Contains(buf.String(), "# Figure "+id) {
			t.Errorf("figure %s: header missing", id)
		}
		buf.Reset()
		if err := fig.WriteCSV(&buf); err != nil {
			t.Errorf("figure %s: WriteCSV: %v", id, err)
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		if len(lines) != len(fig.Points)+1 {
			t.Errorf("figure %s: CSV rows = %d, want %d", id, len(lines), len(fig.Points)+1)
		}
		for _, line := range lines {
			if strings.Count(line, ",") != len(fig.Metrics) {
				t.Errorf("figure %s: bad CSV row %q", id, line)
			}
		}
	}
}

func TestFig12ScaledUsesBaseMultiples(t *testing.T) {
	base := micro()
	fig, err := Fig12Scaled(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 5 {
		t.Fatalf("points = %d", len(fig.Points))
	}
	for i, pt := range fig.Points {
		want := float64((i + 1) * base.Objects)
		if pt.X != want {
			t.Errorf("point %d x = %v, want %v", i, pt.X, want)
		}
	}
}

func TestTweakHookApplies(t *testing.T) {
	p := micro()
	applied := false
	p.Tweak = func(c *engine.Config) { applied = true }
	if _, err := Run(p); err != nil {
		t.Fatal(err)
	}
	if !applied {
		t.Error("Tweak hook not invoked")
	}
}

func TestAblationRunnersExecute(t *testing.T) {
	base := micro()
	for name, run := range Ablations() {
		fig, err := run(base)
		if err != nil {
			t.Fatalf("ablation %s: %v", name, err)
		}
		if len(fig.Points) < 2 {
			t.Errorf("ablation %s has %d points", name, len(fig.Points))
		}
	}
	ids := AblationIDs()
	if len(ids) != len(Ablations()) {
		t.Error("AblationIDs out of sync")
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] < ids[i-1] {
			t.Error("AblationIDs not sorted")
		}
	}
}
