package experiments

import (
	"sort"

	"repro/internal/engine"
	"repro/internal/particle"
)

// Ablations expose the design-choice sweeps of DESIGN.md as figure-shaped
// runners, so `cmd/experiments -ablation <name>` regenerates them at any
// scale (the benchmark harness runs the same sweeps at reduced scale).

// AblationFunc runs one ablation from base parameters.
type AblationFunc func(base Params) (Figure, error)

// Ablations maps ablation names to their runners.
func Ablations() map[string]AblationFunc {
	return map[string]AblationFunc{
		"resampling":   AblationResampling,
		"negativeinfo": AblationNegativeInfo,
		"roomexit":     AblationRoomExit,
		"anchor":       AblationAnchorSpacing,
	}
}

// AblationIDs returns the known ablation names, sorted.
func AblationIDs() []string {
	out := make([]string, 0, len(Ablations()))
	for name := range Ablations() {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func ablationSweep(base Params, name, xlabel string, xs []float64, apply func(*Params, float64)) (Figure, error) {
	return sweep(base, "A/"+name, "Ablation: "+name, xlabel,
		[]string{"PF_KL", "SM_KL", "PF_hit", "SM_hit", "top1", "top2"}, xs, apply)
}

// AblationResampling compares systematic (0) and multinomial (1) resampling.
func AblationResampling(base Params) (Figure, error) {
	return ablationSweep(base, "resampling", "multinomial", []float64{0, 1},
		func(p *Params, x float64) {
			fn := particle.Systematic
			if x == 1 {
				fn = particle.Multinomial
			}
			prev := p.Tweak
			p.Tweak = func(c *engine.Config) {
				if prev != nil {
					prev(c)
				}
				c.Particle.Resample = fn
			}
		})
}

// AblationNegativeInfo toggles the negative-information extension
// (0 = paper's literal Algorithm 2, 1 = with silence observations).
func AblationNegativeInfo(base Params) (Figure, error) {
	return ablationSweep(base, "negativeinfo", "enabled", []float64{0, 1},
		func(p *Params, x float64) {
			on := x == 1
			prev := p.Tweak
			p.Tweak = func(c *engine.Config) {
				if prev != nil {
					prev(c)
				}
				c.Particle.UseNegativeInfo = on
			}
		})
}

// AblationRoomExit sweeps the particle room-exit probability around the
// paper's 0.1.
func AblationRoomExit(base Params) (Figure, error) {
	return ablationSweep(base, "roomexit", "exitProb", []float64{0.05, 0.1, 0.2, 0.4},
		func(p *Params, x float64) {
			prev := p.Tweak
			p.Tweak = func(c *engine.Config) {
				if prev != nil {
					prev(c)
				}
				c.Particle.RoomExitProb = x
			}
		})
}

// AblationAnchorSpacing sweeps the anchor point spacing.
func AblationAnchorSpacing(base Params) (Figure, error) {
	return ablationSweep(base, "anchor", "spacing_m", []float64{0.5, 1.0, 2.0},
		func(p *Params, x float64) {
			prev := p.Tweak
			p.Tweak = func(c *engine.Config) {
				if prev != nil {
					prev(c)
				}
				c.AnchorSpacing = x
			}
		})
}
