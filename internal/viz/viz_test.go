package viz

import (
	"strings"
	"testing"

	"repro/internal/anchor"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/walkgraph"
)

func TestCanvasProducesWellFormedSVG(t *testing.T) {
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	g := walkgraph.MustBuild(plan)
	idx := anchor.MustBuildIndex(g, 1.0)

	c := NewCanvas(plan, 10)
	c.DrawPlan(plan)
	c.DrawDeployment(dep)
	c.DrawDistribution(idx, map[anchor.ID]float64{
		idx.RoomAnchor(0): 0.7,
		anchor.ID(5):      0.3,
	}, "#d62728")
	c.DrawWindow(geom.RectWH(10, 9, 20, 8), "#ff7f0e")
	c.DrawMarker(geom.Pt(35, 12), "truth", "#2ca02c")
	c.DrawObjects(map[model.ObjectID]geom.Point{1: geom.Pt(5, 12)}, "#333333")

	svg := c.SVG()
	for _, want := range []string{
		"<svg xmlns=", "</svg>",
		"<rect", "<circle", "<text", "<path",
		"S1",    // a room label
		"truth", // the marker label
		"o1",    // the object label
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Balanced document: one opening and one closing svg tag.
	if strings.Count(svg, "<svg") != 1 || strings.Count(svg, "</svg>") != 1 {
		t.Error("unbalanced svg tags")
	}
}

func TestCanvasEscapesLabels(t *testing.T) {
	b := floorplan.NewBuilder()
	h := b.AddHallway("h", geom.Seg(geom.Pt(0, 10), geom.Pt(20, 10)), 2)
	b.AddRoom("A<&>B", geom.RectWH(4, 3, 6, 6), h)
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := NewCanvas(plan, 10)
	c.DrawPlan(plan)
	svg := c.SVG()
	if strings.Contains(svg, "A<&>B") {
		t.Error("unescaped label in SVG")
	}
	if !strings.Contains(svg, "A&lt;&amp;&gt;B") {
		t.Error("escaped label missing")
	}
}

func TestCanvasLinksDashed(t *testing.T) {
	plan := floorplan.TwoStoryOffice()
	c := NewCanvas(plan, 8)
	c.DrawPlan(plan)
	if got := strings.Count(c.SVG(), "stroke-dasharray"); got != 2 {
		t.Errorf("dashed link lines = %d, want 2", got)
	}
}

func TestCanvasDefaultScale(t *testing.T) {
	plan := floorplan.DefaultOffice()
	c := NewCanvas(plan, 0)
	if c.scale != 10 {
		t.Errorf("default scale = %v", c.scale)
	}
}

func TestDistributionRadiiScaleWithMass(t *testing.T) {
	plan := floorplan.DefaultOffice()
	g := walkgraph.MustBuild(plan)
	idx := anchor.MustBuildIndex(g, 1.0)
	c := NewCanvas(plan, 10)
	c.DrawDistribution(idx, map[anchor.ID]float64{0: 1.0}, "#d62728")
	big := c.SVG()
	c2 := NewCanvas(plan, 10)
	c2.DrawDistribution(idx, map[anchor.ID]float64{0: 0.01}, "#d62728")
	small := c2.SVG()
	if big == small {
		t.Error("distribution mass does not affect rendering")
	}
	// Zero mass draws nothing.
	c3 := NewCanvas(plan, 10)
	c3.DrawDistribution(idx, map[anchor.ID]float64{0: 0}, "#d62728")
	if strings.Contains(c3.SVG(), "fill-opacity") {
		t.Error("zero-mass anchor rendered")
	}
}
