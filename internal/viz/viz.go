// Package viz renders floor plans, reader deployments, and inferred
// location distributions as standalone SVG documents, using only the
// standard library. The output is meant for debugging deployments and for
// illustrating query answers; every drawing call appends to an in-memory
// document that is serialized once at the end.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/anchor"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/rfid"
)

// Canvas accumulates SVG elements over a floor plan's coordinate system.
// The Y axis is flipped so the plan's north is up.
type Canvas struct {
	bounds geom.Rect
	scale  float64
	body   strings.Builder
}

// NewCanvas creates a canvas covering the plan's bounds at the given scale
// (pixels per meter; 10 is a good default).
func NewCanvas(plan *floorplan.Plan, scale float64) *Canvas {
	if scale <= 0 {
		scale = 10
	}
	return &Canvas{bounds: plan.Bounds().Expand(1), scale: scale}
}

func (c *Canvas) x(v float64) float64 { return (v - c.bounds.Min.X) * c.scale }
func (c *Canvas) y(v float64) float64 { return (c.bounds.Max.Y - v) * c.scale }

// DrawPlan draws hallway strips, room outlines with names, and doors.
func (c *Canvas) DrawPlan(plan *floorplan.Plan) {
	for _, h := range plan.Hallways() {
		s := h.Strip()
		c.rect(s, "#e8e8e8", "none", 0)
	}
	for _, r := range plan.Rooms() {
		for _, part := range r.AllParts() {
			c.rect(part, "#f7f3e8", "#888888", 1)
		}
		ctr := r.Center()
		fmt.Fprintf(&c.body,
			`<text x="%.1f" y="%.1f" font-size="%.1f" text-anchor="middle" fill="#777777">%s</text>`+"\n",
			c.x(ctr.X), c.y(ctr.Y), c.scale*1.2, escape(r.Name))
	}
	for _, d := range plan.Doors() {
		c.circle(d.Pos, 0.3, "#8b5a2b", "none", 0)
	}
	for _, l := range plan.Links() {
		fmt.Fprintf(&c.body,
			`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#9467bd" stroke-width="2" stroke-dasharray="6,4"/>`+"\n",
			c.x(l.A.X), c.y(l.A.Y), c.x(l.B.X), c.y(l.B.Y))
	}
}

// DrawDeployment draws readers and their activation ranges.
func (c *Canvas) DrawDeployment(dep *rfid.Deployment) {
	for _, r := range dep.Readers() {
		fill := "#1f77b4"
		if r.Kind == rfid.Presence {
			fill = "#2ca02c"
		}
		c.circle(r.Pos, r.Range, "none", fill, 1)
		c.circle(r.Pos, 0.4, fill, "none", 0)
	}
}

// DrawDistribution draws an object's anchor-point distribution as filled
// circles whose radii scale with probability mass, in the given color
// (e.g. "#d62728").
func (c *Canvas) DrawDistribution(idx *anchor.Index, dist map[anchor.ID]float64, color string) {
	ids := make([]anchor.ID, 0, len(dist))
	for ap := range dist {
		ids = append(ids, ap)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, ap := range ids {
		p := dist[ap]
		if p <= 0 {
			continue
		}
		a := idx.Anchor(ap)
		radius := 0.3 + 1.7*p
		fmt.Fprintf(&c.body,
			`<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" fill-opacity="0.6"/>`+"\n",
			c.x(a.Pos.X), c.y(a.Pos.Y), radius*c.scale, color)
	}
}

// DrawMarker draws a labelled cross marker (e.g. an object's true position).
func (c *Canvas) DrawMarker(p geom.Point, label, color string) {
	s := 0.6 * c.scale
	x, y := c.x(p.X), c.y(p.Y)
	fmt.Fprintf(&c.body,
		`<path d="M %.1f %.1f L %.1f %.1f M %.1f %.1f L %.1f %.1f" stroke="%s" stroke-width="2"/>`+"\n",
		x-s, y-s, x+s, y+s, x-s, y+s, x+s, y-s, color)
	if label != "" {
		fmt.Fprintf(&c.body,
			`<text x="%.1f" y="%.1f" font-size="%.1f" fill="%s">%s</text>`+"\n",
			x+s+2, y-s, c.scale*1.2, color, escape(label))
	}
}

// DrawWindow outlines a query window.
func (c *Canvas) DrawWindow(w geom.Rect, color string) {
	c.rect(w, "none", color, 2)
}

// DrawObjects draws true object positions from a position map.
func (c *Canvas) DrawObjects(positions map[model.ObjectID]geom.Point, color string) {
	ids := make([]model.ObjectID, 0, len(positions))
	for o := range positions {
		ids = append(ids, o)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, o := range ids {
		c.DrawMarker(positions[o], fmt.Sprintf("o%d", o), color)
	}
}

// SVG serializes the document.
func (c *Canvas) SVG() string {
	w := c.bounds.Width() * c.scale
	h := c.bounds.Height() * c.scale
	var out strings.Builder
	fmt.Fprintf(&out,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		w, h, w, h)
	out.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	out.WriteString(c.body.String())
	out.WriteString("</svg>\n")
	return out.String()
}

func (c *Canvas) rect(r geom.Rect, fill, stroke string, strokeWidth float64) {
	fmt.Fprintf(&c.body,
		`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="%s" stroke-width="%.1f"/>`+"\n",
		c.x(r.Min.X), c.y(r.Max.Y), r.Width()*c.scale, r.Height()*c.scale, fill, stroke, strokeWidth)
}

func (c *Canvas) circle(p geom.Point, r float64, fill, stroke string, strokeWidth float64) {
	fmt.Fprintf(&c.body,
		`<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" stroke="%s" stroke-width="%.1f"/>`+"\n",
		c.x(p.X), c.y(p.Y), r*c.scale, fill, stroke, strokeWidth)
}

func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}
