// Package anchor implements the paper's anchor point indexing model. Anchor
// points discretize the continuous walking-graph edges: they are predefined
// points at a uniform spacing on hallway edges plus one anchor per room (at
// the room's center, matching the paper's room-granularity resolution).
// After particle filtering, each particle is snapped to its network-nearest
// anchor point, and the resulting probability masses are indexed in the
// APtoObjHT hash table that query evaluation reads.
package anchor

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/walkgraph"
)

// ID identifies an anchor point.
type ID int

// NoAnchor marks the absence of an anchor point.
const NoAnchor ID = -1

// Anchor is a single anchor point.
type Anchor struct {
	ID  ID
	Loc walkgraph.Location
	Pos geom.Point
	// Room is set for the per-room anchor, floorplan.NoRoom for hallway
	// anchors.
	Room floorplan.RoomID
	// Hallway is set for hallway anchors, floorplan.NoHallway otherwise.
	Hallway floorplan.HallwayID
}

// Index is the immutable set of anchor points for a walking graph, with the
// acceleration structures needed to snap particles and expand searches.
type Index struct {
	g       *walkgraph.Graph
	spacing float64
	anchors []Anchor
	// byEdge lists, per edge, the anchors on it sorted by offset.
	byEdge [][]ID
	// roomAnchor maps each room to its single anchor.
	roomAnchor map[floorplan.RoomID]ID
	// nodeNearest holds, per node, the network-nearest anchor and its
	// distance, for O(1) snapping across edges.
	nodeNearest []nodeNearest
}

type nodeNearest struct {
	anchor ID
	dist   float64
}

// DefaultSpacing is the paper's example anchor spacing: one meter.
const DefaultSpacing = 1.0

// BuildIndex places anchor points on the walking graph at the given spacing
// (in meters) and precomputes the snapping structures.
func BuildIndex(g *walkgraph.Graph, spacing float64) (*Index, error) {
	if spacing <= 0 {
		return nil, fmt.Errorf("anchor: spacing must be positive, got %v", spacing)
	}
	idx := &Index{
		g:          g,
		spacing:    spacing,
		byEdge:     make([][]ID, g.NumEdges()),
		roomAnchor: make(map[floorplan.RoomID]ID),
	}
	for _, e := range g.Edges() {
		switch e.Kind {
		case walkgraph.HallwayEdge:
			n := int(math.Round(e.Length / spacing))
			if n < 1 {
				n = 1
			}
			step := e.Length / float64(n)
			for i := 0; i < n; i++ {
				off := (float64(i) + 0.5) * step
				loc := walkgraph.Location{Edge: e.ID, Offset: off}
				idx.add(Anchor{
					Loc:     loc,
					Pos:     g.Point(loc),
					Room:    floorplan.NoRoom,
					Hallway: e.Hallway,
				})
			}
		case walkgraph.LinkEdge:
			// Links carry no anchors: they are transit space, not queryable
			// floor area. Particles on a link snap through its endpoints.
		case walkgraph.DoorEdge:
			if _, ok := idx.roomAnchor[e.Room]; ok {
				continue // room already has its anchor via another door
			}
			loc := walkgraph.Location{Edge: e.ID, Offset: e.Length}
			id := idx.add(Anchor{
				Loc:     loc,
				Pos:     g.Point(loc),
				Room:    e.Room,
				Hallway: floorplan.NoHallway,
			})
			idx.roomAnchor[e.Room] = id
		}
	}
	idx.computeNodeNearest()
	return idx, nil
}

// MustBuildIndex is BuildIndex for known-valid parameters; panics on error.
func MustBuildIndex(g *walkgraph.Graph, spacing float64) *Index {
	idx, err := BuildIndex(g, spacing)
	if err != nil {
		panic(err)
	}
	return idx
}

func (idx *Index) add(a Anchor) ID {
	a.ID = ID(len(idx.anchors))
	idx.anchors = append(idx.anchors, a)
	idx.byEdge[a.Loc.Edge] = append(idx.byEdge[a.Loc.Edge], a.ID)
	return a.ID
}

// Graph returns the walking graph the index was built on.
func (idx *Index) Graph() *walkgraph.Graph { return idx.g }

// Spacing returns the anchor spacing in meters.
func (idx *Index) Spacing() float64 { return idx.spacing }

// Anchors returns all anchors indexed by ID. The slice must not be modified.
func (idx *Index) Anchors() []Anchor { return idx.anchors }

// NumAnchors returns the anchor count.
func (idx *Index) NumAnchors() int { return len(idx.anchors) }

// Anchor returns the anchor with the given ID.
func (idx *Index) Anchor(id ID) Anchor { return idx.anchors[id] }

// RoomAnchor returns the anchor representing a room, or NoAnchor.
func (idx *Index) RoomAnchor(r floorplan.RoomID) ID {
	if id, ok := idx.roomAnchor[r]; ok {
		return id
	}
	return NoAnchor
}

// OnEdge returns the anchors on the given edge, sorted by offset. The slice
// must not be modified.
func (idx *Index) OnEdge(e walkgraph.EdgeID) []ID { return idx.byEdge[e] }

// anchorHeapItem propagates (distance, anchor) pairs for node-nearest
// computation.
type anchorHeapItem struct {
	node   walkgraph.NodeID
	dist   float64
	anchor ID
}

type anchorHeap []anchorHeapItem

func (h anchorHeap) Len() int            { return len(h) }
func (h anchorHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h anchorHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *anchorHeap) Push(x interface{}) { *h = append(*h, x.(anchorHeapItem)) }
func (h *anchorHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// computeNodeNearest runs a multi-source Dijkstra seeded by every anchor's
// distance to its edge endpoints, yielding the exact network-nearest anchor
// for every node.
func (idx *Index) computeNodeNearest() {
	g := idx.g
	idx.nodeNearest = make([]nodeNearest, g.NumNodes())
	for i := range idx.nodeNearest {
		idx.nodeNearest[i] = nodeNearest{anchor: NoAnchor, dist: math.Inf(1)}
	}
	h := anchorHeap{}
	for _, a := range idx.anchors {
		e := g.Edge(a.Loc.Edge)
		h = append(h,
			anchorHeapItem{node: e.A, dist: a.Loc.Offset, anchor: a.ID},
			anchorHeapItem{node: e.B, dist: e.Length - a.Loc.Offset, anchor: a.ID},
		)
	}
	heap.Init(&h)
	for h.Len() > 0 {
		it := heap.Pop(&h).(anchorHeapItem)
		cur := &idx.nodeNearest[it.node]
		if it.dist >= cur.dist {
			continue
		}
		*cur = nodeNearest{anchor: it.anchor, dist: it.dist}
		for _, eid := range g.IncidentEdges(it.node) {
			e := g.Edge(eid)
			next := e.B
			if next == it.node {
				next = e.A
			}
			nd := it.dist + e.Length
			if nd < idx.nodeNearest[next].dist {
				heap.Push(&h, anchorHeapItem{node: next, dist: nd, anchor: it.anchor})
			}
		}
	}
}

// Snap returns the network-nearest anchor to the given location. This is the
// paper's particle-to-anchor assignment.
func (idx *Index) Snap(loc walkgraph.Location) ID {
	g := idx.g
	loc = g.Clamp(loc)
	e := g.Edge(loc.Edge)
	best, bestDist := NoAnchor, math.Inf(1)
	// Anchors on the same edge.
	ids := idx.byEdge[loc.Edge]
	if len(ids) > 0 {
		// Binary search the insertion point among sorted offsets.
		i := sort.Search(len(ids), func(i int) bool {
			return idx.anchors[ids[i]].Loc.Offset >= loc.Offset
		})
		for _, j := range []int{i - 1, i} {
			if j >= 0 && j < len(ids) {
				d := math.Abs(idx.anchors[ids[j]].Loc.Offset - loc.Offset)
				if d < bestDist {
					best, bestDist = ids[j], d
				}
			}
		}
	}
	// Anchors reachable through the endpoints.
	if nn := idx.nodeNearest[e.A]; nn.anchor != NoAnchor {
		if d := loc.Offset + nn.dist; d < bestDist {
			best, bestDist = nn.anchor, d
		}
	}
	if nn := idx.nodeNearest[e.B]; nn.anchor != NoAnchor {
		if d := (e.Length - loc.Offset) + nn.dist; d < bestDist {
			best, bestDist = nn.anchor, d
		}
	}
	return best
}

// SnapPoint snaps an arbitrary plan point: it is located onto the walking
// graph first, then snapped to the nearest anchor.
func (idx *Index) SnapPoint(p geom.Point) ID {
	return idx.Snap(idx.g.NearestLocation(p))
}

// AnchorsByNetworkDistance returns all anchor IDs sorted by ascending
// shortest network distance from the given location, together with the
// distances. This is the visit order of the paper's kNN expansion
// (Algorithm 4 expands the frontier one anchor at a time; visiting anchors
// in ascending network distance is equivalent).
func (idx *Index) AnchorsByNetworkDistance(from walkgraph.Location) ([]ID, []float64) {
	nd := idx.g.DistancesFromLocation(from)
	ids := make([]ID, len(idx.anchors))
	dists := make([]float64, len(idx.anchors))
	for i, a := range idx.anchors {
		ids[i] = a.ID
		dists[i] = idx.g.DistToLocation(from, nd, a.Loc)
	}
	sort.Sort(&byDist{ids: ids, dists: dists})
	return ids, dists
}

type byDist struct {
	ids   []ID
	dists []float64
}

func (b *byDist) Len() int           { return len(b.ids) }
func (b *byDist) Less(i, j int) bool { return b.dists[i] < b.dists[j] }
func (b *byDist) Swap(i, j int) {
	b.ids[i], b.ids[j] = b.ids[j], b.ids[i]
	b.dists[i], b.dists[j] = b.dists[j], b.dists[i]
}
