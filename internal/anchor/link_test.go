package anchor

import (
	"testing"

	"repro/internal/floorplan"
	"repro/internal/walkgraph"
)

func TestLinkEdgesCarryNoAnchors(t *testing.T) {
	g := walkgraph.MustBuild(floorplan.TwoStoryOffice())
	idx := MustBuildIndex(g, 1.0)
	for _, e := range g.Edges() {
		if e.Kind == walkgraph.LinkEdge && len(idx.OnEdge(e.ID)) != 0 {
			t.Fatalf("link edge %d has anchors", e.ID)
		}
	}
}

func TestSnapOnLinkEdgeUsesEndpoints(t *testing.T) {
	g := walkgraph.MustBuild(floorplan.TwoStoryOffice())
	idx := MustBuildIndex(g, 1.0)
	for _, e := range g.Edges() {
		if e.Kind != walkgraph.LinkEdge {
			continue
		}
		// A particle one meter up the stairs snaps to an anchor near the
		// stair landing, never to NoAnchor.
		ap := idx.Snap(walkgraph.Location{Edge: e.ID, Offset: 1})
		if ap == NoAnchor {
			t.Fatal("mid-stair particle snapped to NoAnchor")
		}
		a := idx.Anchor(ap)
		landing := g.Node(e.A).Pos
		if d := a.Pos.Dist(landing); d > 3 {
			t.Errorf("stair snap landed %v m from the landing", d)
		}
		// Deep into the stairs, it snaps toward the other landing.
		ap2 := idx.Snap(walkgraph.Location{Edge: e.ID, Offset: e.Length - 1})
		if ap2 == NoAnchor {
			t.Fatal("far-stair particle snapped to NoAnchor")
		}
		other := g.Node(e.B).Pos
		if d := idx.Anchor(ap2).Pos.Dist(other); d > 3 {
			t.Errorf("far stair snap landed %v m from the far landing", d)
		}
	}
}

func TestTwoStoryAnchorCounts(t *testing.T) {
	g := walkgraph.MustBuild(floorplan.TwoStoryOffice())
	idx := MustBuildIndex(g, 1.0)
	rooms := 0
	for _, a := range idx.Anchors() {
		if a.Room != floorplan.NoRoom {
			rooms++
		}
	}
	if rooms != 60 {
		t.Errorf("room anchors = %d, want 60", rooms)
	}
}
