package anchor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestTableAddAndGet(t *testing.T) {
	tb := NewTable()
	tb.Add(ID(3), 1, 0.14)
	tb.Add(ID(3), 3, 0.03)
	tb.Add(ID(3), 7, 0.37)
	// This mirrors the paper's APtoObjHT example entry:
	// (8.5,6.2) -> {<o1,0.14>, <o3,0.03>, <o7,0.37>}.
	rs := tb.Get(ID(3))
	if len(rs) != 3 || rs[1] != 0.14 || rs[3] != 0.03 || rs[7] != 0.37 {
		t.Errorf("Get = %v", rs)
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestTableAccumulates(t *testing.T) {
	tb := NewTable()
	tb.Add(ID(1), 5, 0.25)
	tb.Add(ID(1), 5, 0.25)
	if got := tb.Get(ID(1))[5]; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("accumulated = %v", got)
	}
	if got := tb.TotalProbOf(5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("TotalProbOf = %v", got)
	}
}

func TestTableIgnoresNonPositive(t *testing.T) {
	tb := NewTable()
	tb.Add(ID(1), 5, 0)
	tb.Add(ID(1), 5, -0.5)
	if tb.Len() != 0 || tb.HasObject(5) {
		t.Error("non-positive probabilities were stored")
	}
}

func TestTableReverseIndex(t *testing.T) {
	tb := NewTable()
	tb.Add(ID(1), 5, 0.3)
	tb.Add(ID(2), 5, 0.7)
	dist := tb.DistributionOf(5)
	if len(dist) != 2 || dist[ID(1)] != 0.3 || dist[ID(2)] != 0.7 {
		t.Errorf("DistributionOf = %v", dist)
	}
	if !tb.HasObject(5) || tb.HasObject(6) {
		t.Error("HasObject wrong")
	}
	objs := tb.Objects()
	if len(objs) != 1 || objs[0] != 5 {
		t.Errorf("Objects = %v", objs)
	}
}

func TestTableRemoveObject(t *testing.T) {
	tb := NewTable()
	tb.Add(ID(1), 5, 0.3)
	tb.Add(ID(1), 6, 0.4)
	tb.Add(ID(2), 5, 0.7)
	tb.RemoveObject(5)
	if tb.HasObject(5) {
		t.Error("object 5 still present")
	}
	if tb.Get(ID(1))[6] != 0.4 {
		t.Error("object 6 disturbed")
	}
	// Anchor 2 had only object 5; it should be gone entirely.
	if tb.Get(ID(2)) != nil {
		t.Error("empty anchor entry not removed")
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestTableSetDistributionReplaces(t *testing.T) {
	tb := NewTable()
	tb.Add(ID(1), 5, 1.0)
	tb.SetDistribution(5, map[ID]float64{ID(2): 0.5, ID(3): 0.5})
	if _, ok := tb.Get(ID(1))[5]; ok {
		t.Error("old entry survived SetDistribution")
	}
	if tb.Get(ID(2))[5] != 0.5 || tb.Get(ID(3))[5] != 0.5 {
		t.Error("new distribution not stored")
	}
}

func TestTableClear(t *testing.T) {
	tb := NewTable()
	tb.Add(ID(1), 5, 1.0)
	tb.Clear()
	if tb.Len() != 0 || tb.HasObject(5) {
		t.Error("Clear left entries")
	}
}

func TestTableForwardReverseConsistent(t *testing.T) {
	// Property: after arbitrary adds, the forward and reverse maps agree.
	f := func(adds []struct {
		AP  uint8
		Obj uint8
		P   float64
	}) bool {
		tb := NewTable()
		for _, a := range adds {
			tb.Add(ID(a.AP), model.ObjectID(a.Obj), math.Abs(math.Mod(a.P, 1)))
		}
		for _, obj := range tb.Objects() {
			for ap, p := range tb.DistributionOf(obj) {
				if math.Abs(tb.Get(ap)[obj]-p) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTableObjectsSorted pins Objects() to ascending object-ID order: every
// float accumulation over a preprocessing table iterates in this order, so
// sortedness is what makes engine answers identical run to run and across
// the single and sharded engines.
func TestTableObjectsSorted(t *testing.T) {
	f := func(ids []uint16) bool {
		tb := NewTable()
		for i, id := range ids {
			tb.Add(ID(i%7), model.ObjectID(id), 0.5)
		}
		objs := tb.Objects()
		for i := 1; i < len(objs); i++ {
			if objs[i-1] >= objs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
