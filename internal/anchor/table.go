package anchor

import (
	"sort"

	"repro/internal/model"
)

// Table is the paper's APtoObjHT hash table: it maps an anchor point to the
// list of objects possibly located there with their probabilities, and (for
// the metrics modules) the reverse map from an object to its distribution
// over anchor points.
type Table struct {
	byAnchor map[ID]model.ResultSet
	byObject map[model.ObjectID]map[ID]float64
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{
		byAnchor: make(map[ID]model.ResultSet),
		byObject: make(map[model.ObjectID]map[ID]float64),
	}
}

// Add accumulates probability p for the object at the anchor point.
func (t *Table) Add(ap ID, obj model.ObjectID, p float64) {
	if p <= 0 {
		return
	}
	rs, ok := t.byAnchor[ap]
	if !ok {
		rs = make(model.ResultSet)
		t.byAnchor[ap] = rs
	}
	rs[obj] += p
	dist, ok := t.byObject[obj]
	if !ok {
		dist = make(map[ID]float64)
		t.byObject[obj] = dist
	}
	dist[ap] += p
}

// SetDistribution replaces the object's distribution over anchor points.
func (t *Table) SetDistribution(obj model.ObjectID, dist map[ID]float64) {
	t.RemoveObject(obj)
	for ap, p := range dist {
		t.Add(ap, obj, p)
	}
}

// RemoveObject deletes every entry for the object.
func (t *Table) RemoveObject(obj model.ObjectID) {
	for ap := range t.byObject[obj] {
		rs := t.byAnchor[ap]
		delete(rs, obj)
		if len(rs) == 0 {
			delete(t.byAnchor, ap)
		}
	}
	delete(t.byObject, obj)
}

// Get returns the object probabilities indexed at the anchor point. The
// returned set is shared; callers must not modify it.
func (t *Table) Get(ap ID) model.ResultSet { return t.byAnchor[ap] }

// DistributionOf returns the object's probability distribution over anchor
// points. The returned map is shared; callers must not modify it.
func (t *Table) DistributionOf(obj model.ObjectID) map[ID]float64 {
	return t.byObject[obj]
}

// Objects returns the IDs of all objects present in the table, ascending.
// The sorted order makes every consumer that iterates objects (occupancy
// accumulation, SVG rendering, shard gather merges) deterministic.
func (t *Table) Objects() []model.ObjectID {
	out := make([]model.ObjectID, 0, len(t.byObject))
	for o := range t.byObject {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasObject reports whether the table holds a distribution for the object.
func (t *Table) HasObject(obj model.ObjectID) bool {
	_, ok := t.byObject[obj]
	return ok
}

// TotalProbOf returns the summed probability mass stored for the object
// (1.0 for a complete distribution, within rounding).
func (t *Table) TotalProbOf(obj model.ObjectID) float64 {
	total := 0.0
	for _, p := range t.byObject[obj] {
		total += p
	}
	return total
}

// Clear empties the table.
func (t *Table) Clear() {
	t.byAnchor = make(map[ID]model.ResultSet)
	t.byObject = make(map[model.ObjectID]map[ID]float64)
}

// Len returns the number of anchor points with at least one indexed object.
func (t *Table) Len() int { return len(t.byAnchor) }
