package anchor

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/walkgraph"
)

func smallGraph(t *testing.T) *walkgraph.Graph {
	t.Helper()
	b := floorplan.NewBuilder()
	h := b.AddHallway("h", geom.Seg(geom.Pt(0, 10), geom.Pt(20, 10)), 2)
	b.AddRoom("R0", geom.RectWH(4, 11, 6, 6), h)
	b.AddRoom("R1", geom.RectWH(8, 3, 6, 6), h)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return walkgraph.MustBuild(p)
}

func TestBuildIndexCounts(t *testing.T) {
	g := smallGraph(t)
	idx := MustBuildIndex(g, 1.0)
	// Hallway edges: 7 m + 4 m + 9 m => 7 + 4 + 9 anchors; plus 2 rooms.
	want := 7 + 4 + 9 + 2
	if got := idx.NumAnchors(); got != want {
		t.Errorf("NumAnchors = %d, want %d", got, want)
	}
	if idx.Spacing() != 1.0 {
		t.Errorf("Spacing = %v", idx.Spacing())
	}
	if idx.Graph() != g {
		t.Error("Graph() identity lost")
	}
}

func TestBuildIndexRejectsBadSpacing(t *testing.T) {
	g := smallGraph(t)
	if _, err := BuildIndex(g, 0); err == nil {
		t.Error("expected error for zero spacing")
	}
	if _, err := BuildIndex(g, -1); err == nil {
		t.Error("expected error for negative spacing")
	}
}

func TestRoomAnchorsAtRoomCenters(t *testing.T) {
	g := smallGraph(t)
	idx := MustBuildIndex(g, 1.0)
	a0 := idx.RoomAnchor(0)
	if a0 == NoAnchor {
		t.Fatal("room 0 has no anchor")
	}
	if !idx.Anchor(a0).Pos.Equal(geom.Pt(7, 14)) {
		t.Errorf("room 0 anchor at %v, want room center (7,14)", idx.Anchor(a0).Pos)
	}
	if idx.Anchor(a0).Room != 0 {
		t.Errorf("room 0 anchor Room = %d", idx.Anchor(a0).Room)
	}
	if idx.RoomAnchor(floorplan.RoomID(55)) != NoAnchor {
		t.Error("unknown room should have NoAnchor")
	}
}

func TestMultiDoorRoomGetsOneAnchor(t *testing.T) {
	b := floorplan.NewBuilder()
	h1 := b.AddHallway("h1", geom.Seg(geom.Pt(0, 10), geom.Pt(30, 10)), 2)
	h2 := b.AddHallway("h2", geom.Seg(geom.Pt(0, 20), geom.Pt(30, 20)), 2)
	b.AddHallway("v", geom.Seg(geom.Pt(0, 10), geom.Pt(0, 20)), 2)
	r := b.AddRoom("mid", geom.RectWH(10, 11, 10, 8), h1)
	b.AddDoor(r, h2, geom.Pt(15, 19))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := walkgraph.MustBuild(p)
	idx := MustBuildIndex(g, 1.0)
	count := 0
	for _, a := range idx.Anchors() {
		if a.Room == r {
			count++
		}
	}
	if count != 1 {
		t.Errorf("room with two doors has %d anchors, want 1", count)
	}
}

func TestHallwayAnchorSpacingUniform(t *testing.T) {
	g := smallGraph(t)
	idx := MustBuildIndex(g, 1.0)
	for _, e := range g.Edges() {
		if e.Kind != walkgraph.HallwayEdge {
			continue
		}
		ids := idx.OnEdge(e.ID)
		if len(ids) == 0 {
			t.Fatalf("hallway edge %d has no anchors", e.ID)
		}
		// Offsets ascend and successive gaps are equal.
		var prev float64 = -1
		gap := -1.0
		for i, id := range ids {
			off := idx.Anchor(id).Loc.Offset
			if off <= prev {
				t.Fatalf("edge %d anchors not sorted by offset", e.ID)
			}
			if i > 0 {
				if gap < 0 {
					gap = off - prev
				} else if math.Abs(off-prev-gap) > 1e-9 {
					t.Fatalf("edge %d non-uniform gaps", e.ID)
				}
			}
			prev = off
		}
	}
}

func TestSnapSameEdge(t *testing.T) {
	g := smallGraph(t)
	idx := MustBuildIndex(g, 1.0)
	// Point at (2.6, 10): nearest anchor should be within half a spacing.
	loc := g.NearestLocation(geom.Pt(2.6, 10))
	ap := idx.Snap(loc)
	if ap == NoAnchor {
		t.Fatal("Snap returned NoAnchor")
	}
	if d := idx.Anchor(ap).Pos.Dist(geom.Pt(2.6, 10)); d > 0.5+1e-9 {
		t.Errorf("snapped anchor %v is %v m away", idx.Anchor(ap).Pos, d)
	}
}

func TestSnapInsideRoomGoesToRoomAnchor(t *testing.T) {
	g := smallGraph(t)
	idx := MustBuildIndex(g, 1.0)
	// Deep inside room 0: the nearest anchor by network distance must be the
	// room's own anchor, never a hallway anchor through the wall.
	ap := idx.SnapPoint(geom.Pt(6, 15))
	if idx.Anchor(ap).Room != 0 {
		t.Errorf("room interior snapped to %+v", idx.Anchor(ap))
	}
}

func TestSnapDoorEdgeHallwaySide(t *testing.T) {
	g := smallGraph(t)
	idx := MustBuildIndex(g, 1.0)
	// Find room 0's door edge; a location at its very start (on the hallway
	// centerline) is nearer to a hallway anchor (0.5 m) than to the room
	// anchor (4 m away).
	for _, e := range g.Edges() {
		if e.Kind == walkgraph.DoorEdge && e.Room == 0 {
			ap := idx.Snap(walkgraph.Location{Edge: e.ID, Offset: 0})
			if idx.Anchor(ap).Room == 0 {
				t.Error("door-edge start snapped into the room")
			}
			// And near the room end it must snap to the room anchor.
			ap = idx.Snap(walkgraph.Location{Edge: e.ID, Offset: e.Length - 0.1})
			if idx.Anchor(ap).Room != 0 {
				t.Error("door-edge end did not snap to the room anchor")
			}
		}
	}
}

func TestSnapIsNetworkNearestBruteForce(t *testing.T) {
	g := walkgraph.MustBuild(floorplan.DefaultOffice())
	idx := MustBuildIndex(g, 1.0)
	r := rng.New(17)
	for trial := 0; trial < 100; trial++ {
		e := g.Edge(walkgraph.EdgeID(r.Intn(g.NumEdges())))
		loc := walkgraph.Location{Edge: e.ID, Offset: r.Uniform(0, e.Length)}
		got := idx.Snap(loc)
		// Brute force: network distance to every anchor.
		nd := g.DistancesFromLocation(loc)
		bestDist := math.Inf(1)
		for _, a := range idx.Anchors() {
			if d := g.DistToLocation(loc, nd, a.Loc); d < bestDist {
				bestDist = d
			}
		}
		gotDist := g.DistBetween(loc, idx.Anchor(got).Loc)
		if math.Abs(gotDist-bestDist) > 1e-9 {
			t.Fatalf("Snap(%v) dist %v, brute-force best %v", loc, gotDist, bestDist)
		}
	}
}

func TestAnchorsByNetworkDistanceSorted(t *testing.T) {
	g := walkgraph.MustBuild(floorplan.DefaultOffice())
	idx := MustBuildIndex(g, 1.0)
	from := g.NearestLocation(geom.Pt(30, 12))
	ids, dists := idx.AnchorsByNetworkDistance(from)
	if len(ids) != idx.NumAnchors() || len(dists) != idx.NumAnchors() {
		t.Fatalf("lengths = %d, %d", len(ids), len(dists))
	}
	for i := 1; i < len(dists); i++ {
		if dists[i] < dists[i-1] {
			t.Fatalf("distances not ascending at %d: %v < %v", i, dists[i], dists[i-1])
		}
	}
	// The nearest anchor must be within half a spacing of the query point.
	if dists[0] > 0.5+1e-9 {
		t.Errorf("nearest anchor %v m away", dists[0])
	}
	// Verify a few entries against DistBetween.
	for _, i := range []int{0, len(ids) / 2, len(ids) - 1} {
		want := g.DistBetween(from, idx.Anchor(ids[i]).Loc)
		if math.Abs(dists[i]-want) > 1e-9 {
			t.Errorf("dists[%d] = %v, want %v", i, dists[i], want)
		}
	}
}

func TestDefaultOfficeAnchorCount(t *testing.T) {
	g := walkgraph.MustBuild(floorplan.DefaultOffice())
	idx := MustBuildIndex(g, 1.0)
	// ~156 m of hallway at 1 m spacing plus 30 room anchors.
	hallway := 0
	rooms := 0
	for _, a := range idx.Anchors() {
		if a.Room == floorplan.NoRoom {
			hallway++
		} else {
			rooms++
		}
	}
	if rooms != 30 {
		t.Errorf("room anchors = %d, want 30", rooms)
	}
	if hallway < 150 || hallway > 162 {
		t.Errorf("hallway anchors = %d, want ~156", hallway)
	}
}
