// Package cache implements the paper's cache management module: it stores
// per-object particle states between queries so that a later query for the
// same object resumes particle filtering from the cached time stamp instead
// of re-running it from the first reading. Entries are discarded whenever
// the object is detected by a new device (keeping every object's filtering
// based on the readings of its two most recent devices) and age out after a
// configurable lifetime, since moving patterns from a distant past add
// nothing to current inferences.
package cache

import (
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/particle"
)

// DefaultLifetime is the default entry lifetime in seconds. It matches the
// particle filter's coast limit: a state older than that cannot influence
// the present distribution anyway.
const DefaultLifetime model.Time = 60

// Cache stores particle states keyed by object.
type Cache struct {
	lifetime model.Time
	entries  map[model.ObjectID]entry
	hits     int
	misses   int
	// Optional live telemetry mirrors of the counters above plus an
	// eviction count; nil until Instrument attaches them.
	mHits, mMisses, mEvictions *obs.Counter
}

// Instrument attaches telemetry counters incremented alongside the cache's
// own accounting: hits and misses mirror Stats, and evictions counts every
// entry removed other than by a Put overwrite (staleness on Get, the ENTER
// invalidation rule, lifetime expiry, and explicit Remove).
func (c *Cache) Instrument(hits, misses, evictions *obs.Counter) {
	c.mHits, c.mMisses, c.mEvictions = hits, misses, evictions
}

func (c *Cache) countHit() {
	c.hits++
	if c.mHits != nil {
		c.mHits.Inc()
	}
}

func (c *Cache) countMiss() {
	c.misses++
	if c.mMisses != nil {
		c.mMisses.Inc()
	}
}

func (c *Cache) countEviction() {
	if c.mEvictions != nil {
		c.mEvictions.Inc()
	}
}

type entry struct {
	state  *particle.State
	device model.ReaderID
}

// New returns an empty cache with the given entry lifetime. Non-positive
// lifetimes fall back to DefaultLifetime.
func New(lifetime model.Time) *Cache {
	if lifetime <= 0 {
		lifetime = DefaultLifetime
	}
	return &Cache{lifetime: lifetime, entries: make(map[model.ObjectID]entry)}
}

// Put stores (a copy of) the object's particle state together with the
// device that was its most recent detector when the state was computed.
func (c *Cache) Put(st *particle.State, device model.ReaderID) {
	c.entries[st.Object] = entry{state: st.Clone(), device: device}
}

// Get returns a copy of the cached state for the object if it is usable: the
// object's current most recent device must equal the cached one (otherwise
// the entry is stale by the paper's invalidation rule and is dropped), and
// the entry must be younger than the lifetime. The returned state may be
// advanced freely by the caller.
func (c *Cache) Get(obj model.ObjectID, currentDevice model.ReaderID, now model.Time) (*particle.State, bool) {
	e, ok := c.entries[obj]
	if !ok {
		c.countMiss()
		return nil, false
	}
	if e.device != currentDevice || now-e.state.Time > c.lifetime {
		delete(c.entries, obj)
		c.countEviction()
		c.countMiss()
		return nil, false
	}
	c.countHit()
	return e.state.Clone(), true
}

// Invalidate removes the object's entry if its most recent device changed.
// The engine calls this on every ENTER event.
func (c *Cache) Invalidate(obj model.ObjectID, newDevice model.ReaderID) {
	if e, ok := c.entries[obj]; ok && e.device != newDevice {
		delete(c.entries, obj)
		c.countEviction()
	}
}

// Remove unconditionally drops the object's entry.
func (c *Cache) Remove(obj model.ObjectID) {
	if _, ok := c.entries[obj]; ok {
		delete(c.entries, obj)
		c.countEviction()
	}
}

// EvictExpired drops every entry older than the lifetime.
func (c *Cache) EvictExpired(now model.Time) {
	for obj, e := range c.entries {
		if now-e.state.Time > c.lifetime {
			delete(c.entries, obj)
			c.countEviction()
		}
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int { return len(c.entries) }

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int) { return c.hits, c.misses }

// Clear empties the cache and resets statistics.
func (c *Cache) Clear() {
	c.entries = make(map[model.ObjectID]entry)
	c.hits, c.misses = 0, 0
}
