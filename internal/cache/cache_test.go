package cache

import (
	"testing"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/particle"
	"repro/internal/walkgraph"
)

func state(obj model.ObjectID, t model.Time) *particle.State {
	return &particle.State{
		Object: obj,
		Time:   t,
		Particles: []particle.Particle{
			{Loc: walkgraph.Location{Edge: 1, Offset: 2}, Speed: 1, Weight: 1},
		},
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	c := New(60)
	c.Put(state(1, 100), 5)
	got, ok := c.Get(1, 5, 110)
	if !ok {
		t.Fatal("expected hit")
	}
	if got.Object != 1 || got.Time != 100 {
		t.Errorf("state = %+v", got)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 0 {
		t.Errorf("stats = %d, %d", hits, misses)
	}
}

func TestGetMissUnknownObject(t *testing.T) {
	c := New(60)
	if _, ok := c.Get(9, 5, 100); ok {
		t.Fatal("hit on empty cache")
	}
	if _, misses := c.Stats(); misses != 1 {
		t.Error("miss not counted")
	}
}

func TestGetMissOnDeviceChange(t *testing.T) {
	c := New(60)
	c.Put(state(1, 100), 5)
	if _, ok := c.Get(1, 6, 110); ok {
		t.Fatal("hit despite device change")
	}
	// The stale entry must be dropped entirely.
	if c.Len() != 0 {
		t.Error("stale entry kept")
	}
}

func TestGetMissOnExpiry(t *testing.T) {
	c := New(60)
	c.Put(state(1, 100), 5)
	if _, ok := c.Get(1, 5, 161); ok {
		t.Fatal("hit on expired entry")
	}
	if c.Len() != 0 {
		t.Error("expired entry kept")
	}
	// Exactly at the lifetime is still valid.
	c.Put(state(2, 100), 5)
	if _, ok := c.Get(2, 5, 160); !ok {
		t.Error("entry at exact lifetime should hit")
	}
}

func TestGetReturnsIndependentCopy(t *testing.T) {
	c := New(60)
	c.Put(state(1, 100), 5)
	got, _ := c.Get(1, 5, 100)
	got.Particles[0].Speed = 99
	got.Time = 999
	again, _ := c.Get(1, 5, 100)
	if again.Particles[0].Speed != 1 || again.Time != 100 {
		t.Error("cached state aliased by Get")
	}
}

func TestPutStoresCopy(t *testing.T) {
	c := New(60)
	st := state(1, 100)
	c.Put(st, 5)
	st.Particles[0].Speed = 77
	got, _ := c.Get(1, 5, 100)
	if got.Particles[0].Speed != 1 {
		t.Error("cached state aliased by Put")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(60)
	c.Put(state(1, 100), 5)
	c.Invalidate(1, 5) // same device: keep
	if c.Len() != 1 {
		t.Error("same-device invalidate dropped entry")
	}
	c.Invalidate(1, 6) // new device: drop
	if c.Len() != 0 {
		t.Error("new-device invalidate kept entry")
	}
	c.Invalidate(42, 1) // unknown object: no-op
}

func TestRemoveAndClear(t *testing.T) {
	c := New(60)
	c.Put(state(1, 100), 5)
	c.Put(state(2, 100), 5)
	c.Remove(1)
	if c.Len() != 1 {
		t.Error("Remove failed")
	}
	c.Get(2, 5, 100)
	c.Clear()
	if c.Len() != 0 {
		t.Error("Clear failed")
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Error("Clear did not reset stats")
	}
}

func TestEvictExpired(t *testing.T) {
	c := New(60)
	c.Put(state(1, 100), 5)
	c.Put(state(2, 150), 5)
	c.EvictExpired(190)
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	if _, ok := c.Get(2, 5, 190); !ok {
		t.Error("young entry evicted")
	}
}

func TestDefaultLifetime(t *testing.T) {
	c := New(0)
	c.Put(state(1, 100), 5)
	if _, ok := c.Get(1, 5, 100+DefaultLifetime); !ok {
		t.Error("default lifetime not applied")
	}
	if _, ok := c.Get(1, 5, 100+DefaultLifetime+1); ok {
		t.Error("entry outlived default lifetime")
	}
}

// TestInstrumentCounters drives every eviction path and checks the attached
// telemetry counters track the cache's own accounting.
func TestInstrumentCounters(t *testing.T) {
	reg := obs.NewRegistry()
	events := reg.CounterVec("cache_events_total", "test", "event")
	hit, miss, evict := events.With("hit"), events.With("miss"), events.With("evict")
	c := New(60)
	c.Instrument(hit, miss, evict)

	c.Get(1, 5, 100) // miss: unknown
	c.Put(state(1, 100), 5)
	c.Get(1, 5, 110) // hit
	c.Get(1, 7, 110) // device changed: eviction + miss
	c.Put(state(2, 100), 5)
	c.Get(2, 5, 500) // expired: eviction + miss
	c.Put(state(3, 100), 5)
	c.Invalidate(3, 9) // eviction
	c.Put(state(4, 100), 5)
	c.Remove(4) // eviction
	c.Remove(4) // no entry: no eviction
	c.Put(state(5, 100), 5)
	c.EvictExpired(1000) // eviction

	hits, misses := c.Stats()
	if got := hit.Value(); got != uint64(hits) || got != 1 {
		t.Errorf("hit counter %d, stats %d, want 1", got, hits)
	}
	if got := miss.Value(); got != uint64(misses) || got != 3 {
		t.Errorf("miss counter %d, stats %d, want 3", got, misses)
	}
	if got := evict.Value(); got != 5 {
		t.Errorf("eviction counter %d, want 5", got)
	}
}

// TestUninstrumentedCacheSafe checks the nil-counter path stays silent.
func TestUninstrumentedCacheSafe(t *testing.T) {
	c := New(60)
	c.Put(state(1, 100), 5)
	c.Get(1, 5, 110)
	c.Get(1, 7, 110)
	c.Remove(1)
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d, %d", hits, misses)
	}
}
