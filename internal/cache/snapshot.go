package cache

import (
	"sort"

	"repro/internal/model"
	"repro/internal/particle"
)

// Entry is one cached particle state in serializable form (exported fields
// for encoding/gob).
type Entry struct {
	State  particle.State
	Device model.ReaderID
}

// Dump returns every live entry sorted by object ID, with deep-copied
// particle states, for inclusion in an engine snapshot. The states'
// LastRun stage timings are zeroed: they are wall-clock diagnostics, and
// leaving them in would make the snapshot encoding of one logical state
// differ run to run (the engine's parallel-determinism tests compare
// snapshots byte for byte).
func (c *Cache) Dump() []Entry {
	out := make([]Entry, 0, len(c.entries))
	for _, e := range c.entries {
		st := *e.state.Clone()
		st.LastRun = particle.RunStats{}
		out = append(out, Entry{State: st, Device: e.device})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].State.Object < out[j].State.Object })
	return out
}

// RestoreEntries replaces the cache contents with the dumped entries. Hit and
// miss counters are untouched; use RestoreStats for those.
func (c *Cache) RestoreEntries(entries []Entry) {
	c.entries = make(map[model.ObjectID]entry, len(entries))
	for _, e := range entries {
		st := e.State
		c.entries[st.Object] = entry{state: st.Clone(), device: e.Device}
	}
}

// RestoreStats overwrites the cumulative hit and miss counters (recovery
// support; the live telemetry mirrors are not replayed).
func (c *Cache) RestoreStats(hits, misses int) {
	c.hits, c.misses = hits, misses
}
