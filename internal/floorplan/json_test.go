package floorplan

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/geom"
)

func TestPlanJSONRoundTrip(t *testing.T) {
	orig := DefaultOffice()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rooms()) != len(orig.Rooms()) ||
		len(got.Hallways()) != len(orig.Hallways()) ||
		len(got.Doors()) != len(orig.Doors()) {
		t.Fatalf("round trip changed counts: %d/%d/%d vs %d/%d/%d",
			len(got.Rooms()), len(got.Hallways()), len(got.Doors()),
			len(orig.Rooms()), len(orig.Hallways()), len(orig.Doors()))
	}
	if math.Abs(got.TotalArea()-orig.TotalArea()) > 1e-9 {
		t.Errorf("TotalArea changed: %v vs %v", got.TotalArea(), orig.TotalArea())
	}
	for i, r := range orig.Rooms() {
		gr := got.Room(RoomID(i))
		if gr.Name != r.Name || gr.Bounds != r.Bounds {
			t.Errorf("room %d changed: %+v vs %+v", i, gr, r)
		}
	}
	for i, d := range orig.Doors() {
		gd := got.Door(DoorID(i))
		if !gd.Pos.Equal(d.Pos) || !gd.HallwayPoint.Equal(d.HallwayPoint) {
			t.Errorf("door %d changed: %+v vs %+v", i, gd, d)
		}
	}
}

func TestPlanJSONMultiDoorRoom(t *testing.T) {
	b := NewBuilder()
	h1 := b.AddHallway("h1", geom.Seg(geom.Pt(0, 10), geom.Pt(50, 10)), 2)
	h2 := b.AddHallway("h2", geom.Seg(geom.Pt(0, 20), geom.Pt(50, 20)), 2)
	r := b.AddRoom("mid", geom.RectWH(10, 11, 10, 8), h1)
	b.AddDoor(r, h2, geom.Pt(15, 19))
	orig, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Room(0).Doors) != 2 {
		t.Errorf("multi-door room lost a door: %v", got.Room(0).Doors)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("{not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Decode([]byte(`{"hallways":[],"rooms":[]}`)); err == nil {
		t.Error("plan without hallways accepted")
	}
	// Room without doors.
	bad := `{"hallways":[{"name":"h","from":[0,10],"to":[50,10],"width":2}],
	         "rooms":[{"name":"a","min":[0,0],"max":[5,9],"doors":[]}]}`
	if _, err := Decode([]byte(bad)); err == nil {
		t.Error("doorless room accepted")
	}
	// Door referencing an unknown hallway.
	bad = `{"hallways":[{"name":"h","from":[0,10],"to":[50,10],"width":2}],
	        "rooms":[{"name":"a","min":[0,0],"max":[5,9],"doors":[{"hallway":7,"pos":[2,9]}]}]}`
	if _, err := Decode([]byte(bad)); err == nil {
		t.Error("bad hallway reference accepted")
	}
}
