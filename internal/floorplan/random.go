package floorplan

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/rng"
)

// RandomOffice generates a random but always-valid office layout: several
// parallel horizontal hallways joined by a vertical connector, with randomly
// sized rooms along each hallway side. It exists so property tests and
// robustness checks can exercise the whole pipeline across many geometries,
// and doubles as a starting point for users sketching their own buildings.
//
// floors of hallways are spaced 14 m apart; rooms are 6 m deep with widths
// drawn from [4, 10] m. The plan always validates.
func RandomOffice(src *rng.Source, hallways int) *Plan {
	if hallways < 1 {
		hallways = 1
	}
	const (
		spacing   = 14.0
		width     = 2.0
		roomDepth = 6.0
		firstY    = 10.0
	)
	length := src.Uniform(40, 80)
	b := NewBuilder()

	ys := make([]float64, hallways)
	ids := make([]HallwayID, hallways)
	for i := 0; i < hallways; i++ {
		ys[i] = firstY + spacing*float64(i)
		ids[i] = b.AddHallway(fmt.Sprintf("H%d", i+1),
			geom.Seg(geom.Pt(2, ys[i]), geom.Pt(2+length, ys[i])), width)
	}
	if hallways > 1 {
		b.AddHallway("V", geom.Seg(geom.Pt(2, ys[0]), geom.Pt(2, ys[hallways-1])), width)
	}

	room := 0
	addRow := func(h HallwayID, yLo float64) {
		// Random partition of the x extent into rooms with random gaps.
		// Rooms start at x = 3.5 to stay clear of the vertical connector's
		// strip (x in [1, 3]).
		x := 3.5
		for x+4 <= 2+length {
			w := src.Uniform(4, 10)
			if x+w > 2+length {
				w = 2 + length - x
			}
			if w < 4 {
				break
			}
			room++
			b.AddRoom(fmt.Sprintf("R%d", room), geom.RectWH(x, yLo, w, roomDepth), h)
			x += w
			if src.Bool(0.3) {
				x += src.Uniform(1, 4) // leave a gap (e.g. a utility shaft)
			}
		}
	}

	for i := 0; i < hallways; i++ {
		// Rooms below this hallway (the band under the strip).
		addRow(ids[i], ys[i]-1-roomDepth)
		// Rooms above the top hallway only; inner bands belong to the
		// hallway below to avoid overlaps.
		if i == hallways-1 {
			addRow(ids[i], ys[i]+1)
		}
	}

	p, err := b.Build()
	if err != nil {
		// The construction above is overlap-free by design; failure is a
		// programming error worth failing loudly on.
		panic("floorplan: RandomOffice invalid: " + err.Error())
	}
	return p
}
