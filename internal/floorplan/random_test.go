package floorplan

import (
	"testing"

	"repro/internal/rng"
)

func TestRandomOfficeAlwaysValid(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		src := rng.New(seed)
		hallways := 1 + src.Intn(4)
		p := RandomOffice(src, hallways)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d (%d hallways): %v", seed, hallways, err)
		}
		if len(p.Rooms()) == 0 {
			t.Fatalf("seed %d: no rooms", seed)
		}
		// Every room has a usable door on a real hallway.
		for _, r := range p.Rooms() {
			if len(r.Doors) == 0 {
				t.Fatalf("seed %d: room %s doorless", seed, r.Name)
			}
		}
	}
}

func TestRandomOfficeHallwayCount(t *testing.T) {
	src := rng.New(5)
	p := RandomOffice(src, 3)
	// 3 horizontal + 1 vertical connector.
	if got := len(p.Hallways()); got != 4 {
		t.Errorf("hallways = %d, want 4", got)
	}
	src = rng.New(6)
	p = RandomOffice(src, 1)
	if got := len(p.Hallways()); got != 1 {
		t.Errorf("single-hallway plan has %d hallways", got)
	}
}

func TestRandomOfficeClampsBadInput(t *testing.T) {
	src := rng.New(7)
	p := RandomOffice(src, 0) // clamps to 1
	if len(p.Hallways()) != 1 {
		t.Errorf("hallways = %d", len(p.Hallways()))
	}
}

func TestRandomOfficeDeterministic(t *testing.T) {
	a := RandomOffice(rng.New(11), 2)
	b := RandomOffice(rng.New(11), 2)
	if len(a.Rooms()) != len(b.Rooms()) {
		t.Fatal("equal seeds gave different room counts")
	}
	for i := range a.Rooms() {
		if a.Rooms()[i].Bounds != b.Rooms()[i].Bounds {
			t.Fatal("equal seeds gave different rooms")
		}
	}
}
