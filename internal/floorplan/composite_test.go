package floorplan

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/geom"
)

// lRoomPlan builds a hallway with one L-shaped room south of it:
//
//	───────────── hallway (y=10) ─────────────
//	┌────────┐
//	│  top   │   top:  x 4..10, y 6..9
//	│        ├──┐
//	│  base  │  │ base: x 4..16, y 2..6
//	└────────┴──┘
func lRoomPlan(t *testing.T) *Plan {
	t.Helper()
	b := NewBuilder()
	h := b.AddHallway("h", geom.Seg(geom.Pt(0, 10), geom.Pt(40, 10)), 2)
	b.AddCompositeRoom("L", []geom.Rect{
		geom.RectWH(4, 2, 12, 4), // base
		geom.RectWH(4, 6, 6, 3),  // top
	}, h)
	b.AddRoom("plain", geom.RectWH(20, 3, 6, 6), h)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompositeRoomGeometry(t *testing.T) {
	p := lRoomPlan(t)
	room := p.Room(0)
	if got := room.Area(); math.Abs(got-(48+18)) > 1e-9 {
		t.Errorf("L area = %v, want 66", got)
	}
	// Bounds is the bounding box.
	if room.Bounds != geom.RectFromCorners(geom.Pt(4, 2), geom.Pt(16, 9)) {
		t.Errorf("bounds = %v", room.Bounds)
	}
	// Containment respects the notch: (12, 7) is inside the bounding box but
	// outside the L.
	if !room.Contains(geom.Pt(5, 7)) || !room.Contains(geom.Pt(14, 4)) {
		t.Error("interior points rejected")
	}
	if room.Contains(geom.Pt(12, 7)) {
		t.Error("notch point accepted")
	}
	if got := p.RoomAt(geom.Pt(12, 7)); got != NoRoom {
		t.Errorf("RoomAt(notch) = %d", got)
	}
	// IntersectArea over the notch region counts only real footprint.
	win := geom.RectFromCorners(geom.Pt(10, 6), geom.Pt(16, 9))
	if got := room.IntersectArea(win); got != 0 {
		t.Errorf("notch intersect area = %v, want 0", got)
	}
	win = geom.RectFromCorners(geom.Pt(4, 2), geom.Pt(16, 9))
	if got := room.IntersectArea(win); math.Abs(got-66) > 1e-9 {
		t.Errorf("full intersect area = %v, want 66", got)
	}
	// Center is inside the largest part (the base).
	if !room.Contains(room.Center()) {
		t.Errorf("center %v outside the room", room.Center())
	}
}

func TestCompositeRoomValidation(t *testing.T) {
	// Overlapping parts: rejected.
	b := NewBuilder()
	h := b.AddHallway("h", geom.Seg(geom.Pt(0, 10), geom.Pt(40, 10)), 2)
	b.AddCompositeRoom("bad", []geom.Rect{
		geom.RectWH(4, 2, 10, 6),
		geom.RectWH(8, 2, 10, 6),
	}, h)
	if _, err := b.Build(); err == nil {
		t.Error("overlapping parts accepted")
	}
	// Disconnected parts: rejected.
	b = NewBuilder()
	h = b.AddHallway("h", geom.Seg(geom.Pt(0, 10), geom.Pt(40, 10)), 2)
	b.AddCompositeRoom("bad", []geom.Rect{
		geom.RectWH(4, 2, 4, 4),
		geom.RectWH(20, 2, 4, 4),
	}, h)
	if _, err := b.Build(); err == nil {
		t.Error("disconnected parts accepted")
	}
	// Empty part list: rejected at Build.
	b = NewBuilder()
	h = b.AddHallway("h", geom.Seg(geom.Pt(0, 10), geom.Pt(40, 10)), 2)
	b.AddCompositeRoom("bad", nil, h)
	if _, err := b.Build(); err == nil {
		t.Error("empty composite accepted")
	}
	// Composite overlapping another room: rejected.
	b = NewBuilder()
	h = b.AddHallway("h", geom.Seg(geom.Pt(0, 10), geom.Pt(40, 10)), 2)
	b.AddRoom("plain", geom.RectWH(10, 2, 6, 6), h)
	b.AddCompositeRoom("bad", []geom.Rect{
		geom.RectWH(4, 2, 12, 4),
		geom.RectWH(4, 6, 6, 3),
	}, h)
	if _, err := b.Build(); err == nil {
		t.Error("composite overlapping a plain room accepted")
	}
}

func TestCompositeRoomDoorOnNearestPart(t *testing.T) {
	p := lRoomPlan(t)
	d := p.Door(p.Room(0).Doors[0])
	// The top part (y up to 9) is nearest the hallway at y=10; the door must
	// sit on its boundary.
	if d.Pos.Y != 9 {
		t.Errorf("door at %v, want on the top part's upper edge (y=9)", d.Pos)
	}
}

func TestCompositeRoomJSONRoundTrip(t *testing.T) {
	orig := lRoomPlan(t)
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	room := got.Room(0)
	if len(room.Parts) != 2 {
		t.Fatalf("parts lost: %d", len(room.Parts))
	}
	if math.Abs(room.Area()-66) > 1e-9 {
		t.Errorf("area after round trip = %v", room.Area())
	}
	d := got.Door(room.Doors[0])
	od := orig.Door(orig.Room(0).Doors[0])
	if !d.Pos.Equal(od.Pos) {
		t.Errorf("door moved in round trip: %v vs %v", d.Pos, od.Pos)
	}
}
