package floorplan

import (
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestDefaultOfficeShape(t *testing.T) {
	p := DefaultOffice()
	if got := len(p.Rooms()); got != OfficeRooms {
		t.Errorf("rooms = %d, want %d", got, OfficeRooms)
	}
	if got := len(p.Hallways()); got != OfficeHallways {
		t.Errorf("hallways = %d, want %d", got, OfficeHallways)
	}
	if got := len(p.Doors()); got != OfficeRooms {
		t.Errorf("doors = %d, want %d (one per room)", got, OfficeRooms)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestDefaultOfficeEveryRoomHasDoorOnItsBoundary(t *testing.T) {
	p := DefaultOffice()
	for _, r := range p.Rooms() {
		if len(r.Doors) == 0 {
			t.Fatalf("room %s has no door", r.Name)
		}
		for _, did := range r.Doors {
			d := p.Door(did)
			if r.Bounds.DistToPoint(d.Pos) > geom.Eps {
				t.Errorf("room %s door %d at %v not on boundary %v", r.Name, did, d.Pos, r.Bounds)
			}
		}
	}
}

func TestDefaultOfficeHallwayLengths(t *testing.T) {
	p := DefaultOffice()
	// Two 66 m horizontal hallways plus two 12 m vertical ones.
	want := 66.0 + 66.0 + 12.0 + 12.0
	if got := p.TotalHallwayLength(); math.Abs(got-want) > 1e-9 {
		t.Errorf("TotalHallwayLength = %v, want %v", got, want)
	}
}

func TestDefaultOfficeTotalArea(t *testing.T) {
	p := DefaultOffice()
	got := p.TotalArea()
	// 20 outer rooms of 6.6x7 plus 10 inner rooms of 12.8x5 plus hallway
	// strips (2 m wide, lengths 66+66+12+12 with half-width end caps).
	rooms := 20*6.6*7 + 10*12.8*5
	halls := 2*(68.0*2) + 2*(14.0*2)
	want := rooms + halls
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("TotalArea = %v, want %v", got, want)
	}
}

func TestRoomAtAndHallwayAt(t *testing.T) {
	p := DefaultOffice()
	// Center of room S1.
	if got := p.RoomAt(geom.Pt(5, 7)); got != 0 {
		t.Errorf("RoomAt(S1 center) = %d", got)
	}
	// A point on the south hallway.
	if got := p.HallwayAt(geom.Pt(30, 12)); got != 0 {
		t.Errorf("HallwayAt(hall-south point) = %d", got)
	}
	// Outside everything.
	if got := p.RoomAt(geom.Pt(-50, -50)); got != NoRoom {
		t.Errorf("RoomAt(outside) = %d", got)
	}
	if got := p.HallwayAt(geom.Pt(-50, -50)); got != NoHallway {
		t.Errorf("HallwayAt(outside) = %d", got)
	}
	// Hallway points are not in rooms and room interiors are not hallways.
	if got := p.RoomAt(geom.Pt(30, 12)); got != NoRoom {
		t.Errorf("hallway point reported inside room %d", got)
	}
	if got := p.HallwayAt(geom.Pt(5, 7)); got != NoHallway {
		t.Errorf("room interior reported on hallway %d", got)
	}
}

func TestPointOnHallwayWalksConcatenation(t *testing.T) {
	p := DefaultOffice()
	// Distance 0 is the start of hall-south.
	pt, h := p.PointOnHallway(0)
	if h != 0 || !pt.Equal(geom.Pt(2, 12)) {
		t.Errorf("PointOnHallway(0) = %v on %d", pt, h)
	}
	// 33 m along is the middle of hall-south.
	pt, h = p.PointOnHallway(33)
	if h != 0 || !pt.Equal(geom.Pt(35, 12)) {
		t.Errorf("PointOnHallway(33) = %v on %d", pt, h)
	}
	// 66 + 12 + 33 m is the middle of hall-north (walked east to west).
	pt, h = p.PointOnHallway(111)
	if h != 2 || !pt.Equal(geom.Pt(35, 24)) {
		t.Errorf("PointOnHallway(111) = %v on %d", pt, h)
	}
	// Past the end clamps to the last hallway's endpoint (hall-west ends at
	// the ring origin).
	pt, h = p.PointOnHallway(1e6)
	if h != 3 || !pt.Equal(geom.Pt(2, 12)) {
		t.Errorf("PointOnHallway(huge) = %v on %d", pt, h)
	}
	// Negative clamps to the start.
	pt, _ = p.PointOnHallway(-5)
	if !pt.Equal(geom.Pt(2, 12)) {
		t.Errorf("PointOnHallway(-5) = %v", pt)
	}
}

func TestHallwayStrip(t *testing.T) {
	h := Hallway{Center: geom.Seg(geom.Pt(2, 12), geom.Pt(68, 12)), Width: 2}
	s := h.Strip()
	if s.Min != geom.Pt(1, 11) || s.Max != geom.Pt(69, 13) {
		t.Errorf("Strip = %v", s)
	}
	if !h.Horizontal() {
		t.Error("horizontal hallway not detected")
	}
	v := Hallway{Center: geom.Seg(geom.Pt(2, 12), geom.Pt(2, 24)), Width: 2}
	if v.Horizontal() {
		t.Error("vertical hallway reported horizontal")
	}
}

func TestBuilderRejectsUnknownHallway(t *testing.T) {
	b := NewBuilder()
	b.AddRoom("bad", geom.RectWH(0, 0, 5, 5), HallwayID(7))
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for unknown hallway reference")
	}
}

func TestBuilderRejectsOverlappingRooms(t *testing.T) {
	b := NewBuilder()
	h := b.AddHallway("h", geom.Seg(geom.Pt(0, 10), geom.Pt(50, 10)), 2)
	b.AddRoom("a", geom.RectWH(0, 0, 10, 9), h)
	b.AddRoom("b", geom.RectWH(5, 0, 10, 9), h)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("expected room-overlap error, got %v", err)
	}
}

func TestBuilderRejectsRoomOverHallway(t *testing.T) {
	b := NewBuilder()
	h := b.AddHallway("h", geom.Seg(geom.Pt(0, 10), geom.Pt(50, 10)), 2)
	b.AddRoom("a", geom.RectWH(0, 5, 10, 10), h) // spans the strip
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "overlaps hallway") {
		t.Fatalf("expected room-hallway overlap error, got %v", err)
	}
}

func TestBuilderRejectsZeroWidthHallway(t *testing.T) {
	b := NewBuilder()
	b.AddHallway("h", geom.Seg(geom.Pt(0, 10), geom.Pt(50, 10)), 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for zero-width hallway")
	}
}

func TestBuilderRejectsDiagonalHallway(t *testing.T) {
	b := NewBuilder()
	b.AddHallway("h", geom.Seg(geom.Pt(0, 0), geom.Pt(10, 10)), 2)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for diagonal hallway")
	}
}

func TestBuilderRejectsEmptyPlan(t *testing.T) {
	if _, err := NewBuilder().Build(); err == nil {
		t.Fatal("expected error for plan with no hallways")
	}
}

func TestAddDoorSecondDoor(t *testing.T) {
	b := NewBuilder()
	h1 := b.AddHallway("h1", geom.Seg(geom.Pt(0, 10), geom.Pt(50, 10)), 2)
	h2 := b.AddHallway("h2", geom.Seg(geom.Pt(0, 20), geom.Pt(50, 20)), 2)
	// Room between the two hallways, with a door to each.
	r := b.AddRoom("mid", geom.RectWH(10, 11, 10, 8), h1)
	b.AddDoor(r, h2, geom.Pt(15, 19))
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := len(p.Room(r).Doors); got != 2 {
		t.Fatalf("doors on room = %d, want 2", got)
	}
	d := p.Door(p.Room(r).Doors[1])
	if !d.HallwayPoint.Equal(geom.Pt(15, 20)) {
		t.Errorf("second door hallway point = %v", d.HallwayPoint)
	}
}

func TestAddDoorRejectsUnknownIDs(t *testing.T) {
	b := NewBuilder()
	h := b.AddHallway("h", geom.Seg(geom.Pt(0, 10), geom.Pt(50, 10)), 2)
	b.AddDoor(RoomID(5), h, geom.Pt(1, 9))
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for unknown room in AddDoor")
	}
	b2 := NewBuilder()
	h2 := b2.AddHallway("h", geom.Seg(geom.Pt(0, 10), geom.Pt(50, 10)), 2)
	r := b2.AddRoom("a", geom.RectWH(0, 0, 10, 9), h2)
	b2.AddDoor(r, HallwayID(9), geom.Pt(1, 9))
	if _, err := b2.Build(); err == nil {
		t.Fatal("expected error for unknown hallway in AddDoor")
	}
}

func TestValidateRejectsDoorOffBoundary(t *testing.T) {
	b := NewBuilder()
	h := b.AddHallway("h", geom.Seg(geom.Pt(0, 10), geom.Pt(50, 10)), 2)
	b.AddRoomWithDoor("a", geom.RectWH(0, 0, 10, 9), h, geom.Pt(30, 30))
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for door off the room boundary")
	}
}

func TestDefaultOfficeRoomNamesUnique(t *testing.T) {
	p := DefaultOffice()
	seen := map[string]bool{}
	for _, r := range p.Rooms() {
		if seen[r.Name] {
			t.Errorf("duplicate room name %q", r.Name)
		}
		seen[r.Name] = true
	}
}

func TestDefaultOfficeDoorsWithinHallwayWidth(t *testing.T) {
	p := DefaultOffice()
	for _, d := range p.Doors() {
		h := p.Hallway(d.Hallway)
		if dist := d.Pos.Dist(d.HallwayPoint); dist > h.Width {
			t.Errorf("door %d is %v m from centerline (width %v)", d.ID, dist, h.Width)
		}
	}
}
