package floorplan

import (
	"fmt"

	"repro/internal/geom"
)

// Parameters of the default office layout, mirroring the paper's evaluation
// setting (Section 5): 30 rooms and 4 hallways on a single floor, all rooms
// connected to hallways by doors.
const (
	// OfficeRooms is the number of rooms in the default office.
	OfficeRooms = 30
	// OfficeHallways is the number of hallways in the default office.
	OfficeHallways = 4
	// OfficeHallwayWidth is the full hallway width in meters. The paper
	// assumes reader detection ranges cover the full hallway width
	// (detection range up to ~3 m), so 2 m is a realistic office corridor.
	OfficeHallwayWidth = 2.0
)

// DefaultOffice builds the evaluation floor plan used throughout the
// experiments: a rectangular ring corridor of four hallways with ten rooms
// along the south wall, ten along the north wall, and ten in the inner
// block, every room opening onto a hallway.
//
// The layout (centerlines):
//
//	(2,24) ─────────── H-north ─────────── (68,24)
//	   │   [10 north rooms above]               │
//	 H-west    [10 inner rooms]              H-east
//	   │   [10 south rooms below]               │
//	(2,12) ─────────── H-south ─────────── (68,12)
func DefaultOffice() *Plan {
	// The hallways are declared in ring order (south, east, north, west) with
	// consistent orientation, so walking the concatenated centerlines
	// traverses the closed corridor loop once; uniform reader deployment
	// along the concatenation is then uniform along the physical loop.
	b := NewBuilder()
	addOfficeFloor(b, 0, "")
	p, err := b.Build()
	if err != nil {
		// The default office is a compile-time-fixed layout; failure to
		// build it is a programming error.
		panic("floorplan: DefaultOffice invalid: " + err.Error())
	}
	return p
}

// TwoStoryOffice builds a two-story variant: two copies of the default
// office floor laid out side by side in plan coordinates (the second story
// shifted east), joined by two staircase links whose walking lengths are the
// true stair distances. It demonstrates the link mechanism used to model
// multi-story buildings, subway mezzanines, and skybridges.
func TwoStoryOffice() *Plan {
	const dx = 72 // second story's plan offset; keeps a 4 m stair gap
	b := NewBuilder()
	ground := addOfficeFloor(b, 0, "1-")
	upper := addOfficeFloor(b, dx, "2-")
	// Two staircases join the ground floor's east hallway to the upper
	// floor's west hallway. Each stair walks 8 m (two flights), more than
	// the 6 m plan-space gap, preserving Euclidean pruning soundness.
	b.AddLink("stair-north", ground.east, geom.Pt(68, 20), upper.west, geom.Pt(2+dx, 20), 8)
	b.AddLink("stair-south", ground.east, geom.Pt(68, 16), upper.west, geom.Pt(2+dx, 16), 8)
	p, err := b.Build()
	if err != nil {
		panic("floorplan: TwoStoryOffice invalid: " + err.Error())
	}
	return p
}

// officeFloor records the hallway IDs of one office floor.
type officeFloor struct {
	south, east, north, west HallwayID
}

// addOfficeFloor lays out one ring-corridor office floor shifted east by dx,
// with room and hallway names prefixed to stay unique across floors.
func addOfficeFloor(b *Builder, dx float64, prefix string) officeFloor {
	var f officeFloor
	f.south = b.AddHallway(prefix+"hall-south", geom.Seg(geom.Pt(2+dx, 12), geom.Pt(68+dx, 12)), OfficeHallwayWidth)
	f.east = b.AddHallway(prefix+"hall-east", geom.Seg(geom.Pt(68+dx, 12), geom.Pt(68+dx, 24)), OfficeHallwayWidth)
	f.north = b.AddHallway(prefix+"hall-north", geom.Seg(geom.Pt(68+dx, 24), geom.Pt(2+dx, 24)), OfficeHallwayWidth)
	f.west = b.AddHallway(prefix+"hall-west", geom.Seg(geom.Pt(2+dx, 24), geom.Pt(2+dx, 12)), OfficeHallwayWidth)

	// Ten rooms along the south wall (below hall-south).
	for i := 0; i < 10; i++ {
		x := 2 + dx + 6.6*float64(i)
		b.AddRoom(fmt.Sprintf("%sS%d", prefix, i+1), geom.RectWH(x, 4, 6.6, 7), f.south)
	}
	// Ten rooms along the north wall (above hall-north).
	for i := 0; i < 10; i++ {
		x := 2 + dx + 6.6*float64(i)
		b.AddRoom(fmt.Sprintf("%sN%d", prefix, i+1), geom.RectWH(x, 25, 6.6, 7), f.north)
	}
	// Ten inner-block rooms between the two horizontal hallways: five open
	// south, five open north.
	for i := 0; i < 5; i++ {
		x := 3 + dx + 12.8*float64(i)
		b.AddRoom(fmt.Sprintf("%sIS%d", prefix, i+1), geom.RectWH(x, 13, 12.8, 5), f.south)
	}
	for i := 0; i < 5; i++ {
		x := 3 + dx + 12.8*float64(i)
		b.AddRoom(fmt.Sprintf("%sIN%d", prefix, i+1), geom.RectWH(x, 18, 12.8, 5), f.north)
	}
	return f
}
