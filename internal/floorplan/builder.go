package floorplan

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Builder assembles a Plan incrementally and validates it on Build.
type Builder struct {
	plan Plan
	err  error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// AddHallway appends an axis-aligned hallway with the given centerline and
// full width and returns its ID.
func (b *Builder) AddHallway(name string, center geom.Segment, width float64) HallwayID {
	id := HallwayID(len(b.plan.hallways))
	b.plan.hallways = append(b.plan.hallways, Hallway{
		ID:     id,
		Name:   name,
		Center: center,
		Width:  width,
	})
	return id
}

// AddRoom appends a room and connects it to the given hallway with a door
// placed at the point of the room boundary nearest the hallway centerline
// (horizontally or vertically centered on the shared wall). It returns the
// room's ID.
func (b *Builder) AddRoom(name string, bounds geom.Rect, hallway HallwayID) RoomID {
	if int(hallway) < 0 || int(hallway) >= len(b.plan.hallways) {
		b.fail(fmt.Errorf("floorplan: AddRoom(%q): unknown hallway %d", name, hallway))
		return NoRoom
	}
	h := b.plan.hallways[hallway]
	center := bounds.Center()
	// Project the room center onto the hallway centerline, then walk from
	// that projection back to the room boundary to find the door position on
	// the shared wall.
	hp := h.Center.ClosestPoint(center)
	doorPos := bounds.ClosestPoint(hp)
	return b.AddRoomWithDoor(name, bounds, hallway, doorPos)
}

// AddRoomWithDoor appends a room with an explicit door position on its
// boundary, connected to the given hallway. The door's hallway point is the
// projection of the door onto the hallway centerline.
func (b *Builder) AddRoomWithDoor(name string, bounds geom.Rect, hallway HallwayID, doorPos geom.Point) RoomID {
	if int(hallway) < 0 || int(hallway) >= len(b.plan.hallways) {
		b.fail(fmt.Errorf("floorplan: AddRoomWithDoor(%q): unknown hallway %d", name, hallway))
		return NoRoom
	}
	roomID := RoomID(len(b.plan.rooms))
	doorID := DoorID(len(b.plan.doors))
	h := b.plan.hallways[hallway]
	b.plan.rooms = append(b.plan.rooms, Room{
		ID:     roomID,
		Name:   name,
		Bounds: bounds,
		Doors:  []DoorID{doorID},
	})
	b.plan.doors = append(b.plan.doors, Door{
		ID:           doorID,
		Room:         roomID,
		Hallway:      hallway,
		Pos:          doorPos,
		HallwayPoint: h.Center.ClosestPoint(doorPos),
	})
	return roomID
}

// AddCompositeRoom appends a room composed of several disjoint, connected
// rectangles (an L/T/U shape) and connects it to the hallway with a door on
// the part nearest the hallway centerline. It returns the room's ID.
func (b *Builder) AddCompositeRoom(name string, parts []geom.Rect, hallway HallwayID) RoomID {
	if len(parts) == 0 {
		b.fail(fmt.Errorf("floorplan: AddCompositeRoom(%q): no parts", name))
		return NoRoom
	}
	if int(hallway) < 0 || int(hallway) >= len(b.plan.hallways) {
		b.fail(fmt.Errorf("floorplan: AddCompositeRoom(%q): unknown hallway %d", name, hallway))
		return NoRoom
	}
	h := b.plan.hallways[hallway]
	bounds := parts[0]
	for _, p := range parts[1:] {
		bounds = bounds.Union(p)
	}
	// Door on the part whose boundary comes closest to the centerline.
	best := parts[0]
	bestDist := math.Inf(1)
	for _, p := range parts {
		hp := h.Center.ClosestPoint(p.Center())
		if d := p.DistToPoint(hp); d < bestDist {
			best, bestDist = p, d
		}
	}
	hp := h.Center.ClosestPoint(best.Center())
	doorPos := best.ClosestPoint(hp)

	roomID := RoomID(len(b.plan.rooms))
	doorID := DoorID(len(b.plan.doors))
	b.plan.rooms = append(b.plan.rooms, Room{
		ID:     roomID,
		Name:   name,
		Bounds: bounds,
		Parts:  append([]geom.Rect(nil), parts...),
		Doors:  []DoorID{doorID},
	})
	b.plan.doors = append(b.plan.doors, Door{
		ID:           doorID,
		Room:         roomID,
		Hallway:      hallway,
		Pos:          doorPos,
		HallwayPoint: h.Center.ClosestPoint(doorPos),
	})
	return roomID
}

// AddDoor adds an extra door to an existing room (rooms created by AddRoom
// already have one door).
func (b *Builder) AddDoor(room RoomID, hallway HallwayID, doorPos geom.Point) DoorID {
	if int(room) < 0 || int(room) >= len(b.plan.rooms) {
		b.fail(fmt.Errorf("floorplan: AddDoor: unknown room %d", room))
		return -1
	}
	if int(hallway) < 0 || int(hallway) >= len(b.plan.hallways) {
		b.fail(fmt.Errorf("floorplan: AddDoor: unknown hallway %d", hallway))
		return -1
	}
	doorID := DoorID(len(b.plan.doors))
	h := b.plan.hallways[hallway]
	b.plan.doors = append(b.plan.doors, Door{
		ID:           doorID,
		Room:         room,
		Hallway:      hallway,
		Pos:          doorPos,
		HallwayPoint: h.Center.ClosestPoint(doorPos),
	})
	b.plan.rooms[room].Doors = append(b.plan.rooms[room].Doors, doorID)
	return doorID
}

// AddLink connects two hallway points with an abstract walkable link (a
// staircase, elevator, or escalator) of the given walking length. Each
// endpoint snaps to the nearest point of its hallway's centerline.
func (b *Builder) AddLink(name string, ha HallwayID, a geom.Point, hb HallwayID, bPt geom.Point, length float64) LinkID {
	if int(ha) < 0 || int(ha) >= len(b.plan.hallways) || int(hb) < 0 || int(hb) >= len(b.plan.hallways) {
		b.fail(fmt.Errorf("floorplan: AddLink(%q): unknown hallway", name))
		return -1
	}
	id := LinkID(len(b.plan.links))
	b.plan.links = append(b.plan.links, Link{
		ID:       id,
		Name:     name,
		A:        b.plan.hallways[ha].Center.ClosestPoint(a),
		B:        b.plan.hallways[hb].Center.ClosestPoint(bPt),
		HallwayA: ha,
		HallwayB: hb,
		Length:   length,
	})
	return id
}

// setRoomDoors replaces a room's doors with an explicit serialized list
// (used by the JSON decoder to round-trip composite rooms exactly).
func (b *Builder) setRoomDoors(room RoomID, doors []doorJSON) {
	if int(room) < 0 || int(room) >= len(b.plan.rooms) {
		return
	}
	// Remove the auto-created door (always the most recent one, owned by
	// this room).
	r := &b.plan.rooms[room]
	if len(r.Doors) == 1 && int(r.Doors[0]) == len(b.plan.doors)-1 {
		b.plan.doors = b.plan.doors[:len(b.plan.doors)-1]
		r.Doors = nil
	}
	for _, d := range doors {
		h := b.plan.hallways[d.Hallway]
		doorID := DoorID(len(b.plan.doors))
		b.plan.doors = append(b.plan.doors, Door{
			ID:           doorID,
			Room:         room,
			Hallway:      HallwayID(d.Hallway),
			Pos:          pt(d.Pos),
			HallwayPoint: h.Center.ClosestPoint(pt(d.Pos)),
		})
		r.Doors = append(r.Doors, doorID)
	}
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build validates and returns the assembled plan. The Builder must not be
// reused afterwards.
func (b *Builder) Build() (*Plan, error) {
	if b.err != nil {
		return nil, b.err
	}
	p := &b.plan
	// Compute the overall bounds.
	first := true
	for _, h := range p.hallways {
		if first {
			p.bounds = h.Strip()
			first = false
		} else {
			p.bounds = p.bounds.Union(h.Strip())
		}
	}
	for _, r := range p.rooms {
		if first {
			p.bounds = r.Bounds
			first = false
		} else {
			p.bounds = p.bounds.Union(r.Bounds)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
