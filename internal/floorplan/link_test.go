package floorplan

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/geom"
)

func TestTwoStoryOfficeShape(t *testing.T) {
	p := TwoStoryOffice()
	if got := len(p.Rooms()); got != 60 {
		t.Errorf("rooms = %d, want 60", got)
	}
	if got := len(p.Hallways()); got != 8 {
		t.Errorf("hallways = %d, want 8", got)
	}
	if got := len(p.Links()); got != 2 {
		t.Errorf("links = %d, want 2", got)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Links connect the ground east hallway to the upper west hallway with
	// the declared stair length.
	for _, l := range p.Links() {
		if l.Length != 8 {
			t.Errorf("link %s length %v", l.Name, l.Length)
		}
		if l.Length < l.A.Dist(l.B) {
			t.Errorf("link %s shorter than its straight-line gap", l.Name)
		}
	}
}

func TestLinkValidationRejectsTooShort(t *testing.T) {
	b := NewBuilder()
	h1 := b.AddHallway("h1", geom.Seg(geom.Pt(0, 10), geom.Pt(20, 10)), 2)
	h2 := b.AddHallway("h2", geom.Seg(geom.Pt(40, 10), geom.Pt(60, 10)), 2)
	// Gap is 20 m; a 5 m link would break Euclidean pruning soundness.
	b.AddLink("teleporter", h1, geom.Pt(20, 10), h2, geom.Pt(40, 10), 5)
	if _, err := b.Build(); err == nil {
		t.Fatal("too-short link accepted")
	}
}

func TestLinkValidationRejectsUnknownHallway(t *testing.T) {
	b := NewBuilder()
	h1 := b.AddHallway("h1", geom.Seg(geom.Pt(0, 10), geom.Pt(20, 10)), 2)
	b.AddLink("bad", h1, geom.Pt(20, 10), HallwayID(9), geom.Pt(40, 10), 30)
	if _, err := b.Build(); err == nil {
		t.Fatal("unknown hallway link accepted")
	}
}

func TestLinkEndpointsSnapToCenterlines(t *testing.T) {
	b := NewBuilder()
	h1 := b.AddHallway("h1", geom.Seg(geom.Pt(0, 10), geom.Pt(20, 10)), 2)
	h2 := b.AddHallway("h2", geom.Seg(geom.Pt(30, 10), geom.Pt(50, 10)), 2)
	// Endpoint given off-centerline snaps onto it.
	b.AddLink("s", h1, geom.Pt(20, 11.5), h2, geom.Pt(30, 8.7), 12)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	l := p.Link(0)
	if !l.A.Equal(geom.Pt(20, 10)) || !l.B.Equal(geom.Pt(30, 10)) {
		t.Errorf("endpoints = %v, %v", l.A, l.B)
	}
}

func TestPlanJSONRoundTripWithLinks(t *testing.T) {
	orig := TwoStoryOffice()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Links()) != 2 {
		t.Fatalf("links lost in round trip: %d", len(got.Links()))
	}
	for i, l := range orig.Links() {
		gl := got.Link(LinkID(i))
		if gl.Name != l.Name || math.Abs(gl.Length-l.Length) > 1e-12 ||
			!gl.A.Equal(l.A) || !gl.B.Equal(l.B) {
			t.Errorf("link %d changed: %+v vs %+v", i, gl, l)
		}
	}
}
