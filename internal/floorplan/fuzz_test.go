package floorplan

import (
	"encoding/json"
	"testing"
)

// FuzzDecode hardens the plan decoder: arbitrary input must either fail
// cleanly or yield a plan that passes validation (Decode runs Build, which
// validates) — never panic.
func FuzzDecode(f *testing.F) {
	valid, err := json.Marshal(DefaultOffice())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	twoStory, err := json.Marshal(TwoStoryOffice())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(twoStory)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"hallways":[{"name":"h","from":[0,0],"to":[0,0],"width":0}]}`))
	f.Add([]byte(`{"hallways":[{"name":"h","from":[0,10],"to":[50,10],"width":2}],
	               "rooms":[{"name":"a","min":[0,0],"max":[5,9],"doors":[{"hallway":0,"pos":[2,9]}]}],
	               "links":[{"name":"l","hallwayA":0,"a":[0,10],"hallwayB":0,"b":[50,10],"length":60}]}`))
	f.Add([]byte(`{"hallways":[{"name":"h","from":[1e308,10],"to":[-1e308,10],"width":2}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		plan, err := Decode(data)
		if err != nil {
			return
		}
		if verr := plan.Validate(); verr != nil {
			t.Fatalf("Decode accepted an invalid plan: %v", verr)
		}
	})
}
