// Package floorplan models a single-floor indoor space: rooms, hallways, and
// the doors that connect rooms to hallways. It is the geometric substrate on
// which the indoor walking graph (package walkgraph) is built.
//
// Hallways are modelled as axis-aligned strips around a centerline segment,
// matching the paper's assumption that the detection range of an RFID reader
// covers the full hallway width and that positions across the width cannot
// be inferred. Rooms are axis-aligned rectangles attached to hallways by
// doors.
package floorplan

import (
	"fmt"

	"repro/internal/geom"
)

// RoomID identifies a room within a plan.
type RoomID int

// NoRoom marks "not a room" (for example, a hallway location).
const NoRoom RoomID = -1

// HallwayID identifies a hallway within a plan.
type HallwayID int

// NoHallway marks "not a hallway" (for example, a room location).
const NoHallway HallwayID = -1

// DoorID identifies a door within a plan.
type DoorID int

// Room is a room composed of one or more axis-aligned rectangles (a plain
// rectangle or an L/T/U-shaped composite). Movement resolution inside rooms
// is a single room (no readers are deployed inside rooms), so a room carries
// no interior structure beyond its footprint.
type Room struct {
	ID   RoomID
	Name string
	// Bounds is the bounding box of the room's footprint.
	Bounds geom.Rect
	// Parts are the disjoint rectangles composing the footprint. Empty means
	// the room is the single rectangle Bounds.
	Parts []geom.Rect
	// Doors lists the doors that connect this room to hallways.
	Doors []DoorID
}

// AllParts returns the room's footprint rectangles (at least one).
func (r Room) AllParts() []geom.Rect {
	if len(r.Parts) == 0 {
		return []geom.Rect{r.Bounds}
	}
	return r.Parts
}

// Area returns the room's floor area in square meters.
func (r Room) Area() float64 {
	a := 0.0
	for _, p := range r.AllParts() {
		a += p.Area()
	}
	return a
}

// Contains reports whether the point lies inside the room's footprint.
func (r Room) Contains(p geom.Point) bool {
	for _, part := range r.AllParts() {
		if part.Contains(p) {
			return true
		}
	}
	return false
}

// IntersectArea returns the area of the room's footprint inside the window.
func (r Room) IntersectArea(window geom.Rect) float64 {
	a := 0.0
	for _, part := range r.AllParts() {
		ov := part.Intersect(window)
		if !ov.Empty() {
			a += ov.Area()
		}
	}
	return a
}

// OverlapsRect reports whether the footprint shares area with the rectangle.
func (r Room) OverlapsRect(o geom.Rect) bool {
	for _, part := range r.AllParts() {
		if part.Overlaps(o) {
			return true
		}
	}
	return false
}

// overlapsRoom reports whether two footprints share area.
func (r Room) overlapsRoom(o Room) bool {
	for _, part := range o.AllParts() {
		if r.OverlapsRect(part) {
			return true
		}
	}
	return false
}

// Center returns the room's walking-graph node position: the center of the
// largest footprint part, which is always inside the room (the bounding-box
// center of an L-shape may not be).
func (r Room) Center() geom.Point {
	parts := r.AllParts()
	best := parts[0]
	for _, p := range parts[1:] {
		if p.Area() > best.Area() {
			best = p
		}
	}
	return best.Center()
}

// Hallway is an axis-aligned hallway strip.
type Hallway struct {
	ID     HallwayID
	Name   string
	Center geom.Segment // centerline; horizontal or vertical
	Width  float64      // full width of the strip, in meters
}

// Length returns the centerline length.
func (h Hallway) Length() float64 { return h.Center.Length() }

// Strip returns the rectangular footprint of the hallway.
func (h Hallway) Strip() geom.Rect {
	half := h.Width / 2
	r := geom.RectFromCorners(h.Center.A, h.Center.B)
	return r.Expand(half)
}

// Horizontal reports whether the centerline runs along the X axis.
func (h Hallway) Horizontal() bool {
	return h.Center.A.Y == h.Center.B.Y
}

// Door connects a room to a hallway.
type Door struct {
	ID      DoorID
	Room    RoomID
	Hallway HallwayID
	// Pos is the door's position on the room boundary.
	Pos geom.Point
	// HallwayPoint is the projection of the door onto the hallway
	// centerline; it becomes a walking-graph node.
	HallwayPoint geom.Point
}

// LinkID identifies a link within a plan.
type LinkID int

// Link is an abstract walkable connection between two hallway points whose
// walking length is specified explicitly rather than derived from geometry:
// a staircase, elevator, or escalator. Multi-story buildings are modelled by
// laying the floors out side by side in the plan coordinate space and
// joining them with links whose lengths are the true stair walking
// distances.
type Link struct {
	ID   LinkID
	Name string
	// A and B are the link's endpoints; each must lie on a hallway
	// centerline.
	A, B geom.Point
	// HallwayA and HallwayB are the hallways the endpoints sit on.
	HallwayA, HallwayB HallwayID
	// Length is the walking distance through the link in meters. It must be
	// at least the straight-line distance between A and B, which keeps
	// Euclidean uncertain-region pruning sound.
	Length float64
}

// Plan is an immutable floor plan. Construct one with a Builder.
type Plan struct {
	rooms    []Room
	hallways []Hallway
	doors    []Door
	links    []Link
	bounds   geom.Rect
}

// Rooms returns all rooms, indexed by RoomID.
func (p *Plan) Rooms() []Room { return p.rooms }

// Hallways returns all hallways, indexed by HallwayID.
func (p *Plan) Hallways() []Hallway { return p.hallways }

// Doors returns all doors, indexed by DoorID.
func (p *Plan) Doors() []Door { return p.doors }

// Links returns all links (stairs, elevators), indexed by LinkID.
func (p *Plan) Links() []Link { return p.links }

// Link returns the link with the given ID.
func (p *Plan) Link(id LinkID) Link { return p.links[id] }

// Room returns the room with the given ID.
func (p *Plan) Room(id RoomID) Room { return p.rooms[id] }

// Hallway returns the hallway with the given ID.
func (p *Plan) Hallway(id HallwayID) Hallway { return p.hallways[id] }

// Door returns the door with the given ID.
func (p *Plan) Door(id DoorID) Door { return p.doors[id] }

// Bounds returns the bounding box of the whole plan.
func (p *Plan) Bounds() geom.Rect { return p.bounds }

// TotalArea returns the summed area of all rooms and hallway strips. Query
// window sizes in the experiments are expressed as a percentage of this.
func (p *Plan) TotalArea() float64 {
	a := 0.0
	for _, r := range p.rooms {
		a += r.Area()
	}
	for _, h := range p.hallways {
		a += h.Strip().Area()
	}
	return a
}

// TotalHallwayLength returns the summed centerline length of all hallways,
// used to place readers at uniform spacing.
func (p *Plan) TotalHallwayLength() float64 {
	l := 0.0
	for _, h := range p.hallways {
		l += h.Length()
	}
	return l
}

// RoomAt returns the room whose footprint contains p, or NoRoom.
func (pl *Plan) RoomAt(pt geom.Point) RoomID {
	for _, r := range pl.rooms {
		if r.Contains(pt) {
			return r.ID
		}
	}
	return NoRoom
}

// partsConnected reports whether the rectangles form one connected region
// (touching edges count as connected).
func partsConnected(parts []geom.Rect) bool {
	n := len(parts)
	visited := make([]bool, n)
	queue := []int{0}
	visited[0] = true
	count := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for j := 0; j < n; j++ {
			if visited[j] {
				continue
			}
			// Touching: expanded-by-eps rectangles overlap.
			if parts[cur].Expand(1e-6).Overlaps(parts[j]) {
				visited[j] = true
				count++
				queue = append(queue, j)
			}
		}
	}
	return count == n
}

// HallwayAt returns the hallway whose strip contains p, or NoHallway. When
// strips overlap (at hallway junctions), the lowest-ID hallway wins.
func (pl *Plan) HallwayAt(pt geom.Point) HallwayID {
	for _, h := range pl.hallways {
		if h.Strip().Contains(pt) {
			return h.ID
		}
	}
	return NoHallway
}

// PointOnHallway returns the point at the given distance along the
// concatenated hallway centerlines (in HallwayID order), together with the
// hallway it falls on. It is used to deploy readers at uniform spacing.
// The distance is clamped to [0, TotalHallwayLength].
func (pl *Plan) PointOnHallway(dist float64) (geom.Point, HallwayID) {
	if dist < 0 {
		dist = 0
	}
	for _, h := range pl.hallways {
		l := h.Length()
		if dist <= l {
			t := 0.0
			if l > 0 {
				t = dist / l
			}
			return h.Center.At(t), h.ID
		}
		dist -= l
	}
	last := pl.hallways[len(pl.hallways)-1]
	return last.Center.B, last.ID
}

// Validate checks the structural invariants of the plan. It is called by
// Builder.Build and exported for tests and externally constructed plans.
func (p *Plan) Validate() error {
	if len(p.hallways) == 0 {
		return fmt.Errorf("floorplan: no hallways")
	}
	for _, h := range p.hallways {
		if h.Width <= 0 {
			return fmt.Errorf("floorplan: hallway %d has non-positive width %v", h.ID, h.Width)
		}
		if !h.Horizontal() && h.Center.A.X != h.Center.B.X {
			return fmt.Errorf("floorplan: hallway %d centerline is not axis-aligned", h.ID)
		}
		if h.Length() <= 0 {
			return fmt.Errorf("floorplan: hallway %d has zero length", h.ID)
		}
	}
	for _, r := range p.rooms {
		if r.Bounds.Empty() {
			return fmt.Errorf("floorplan: room %d has empty bounds", r.ID)
		}
		if len(r.Doors) == 0 {
			return fmt.Errorf("floorplan: room %d has no doors", r.ID)
		}
		parts := r.AllParts()
		for i, a := range parts {
			if a.Empty() {
				return fmt.Errorf("floorplan: room %d has an empty part", r.ID)
			}
			if !r.Bounds.Contains(a.Min) || !r.Bounds.Contains(a.Max) {
				return fmt.Errorf("floorplan: room %d part outside its bounds", r.ID)
			}
			for _, b := range parts[i+1:] {
				if a.Overlaps(b) {
					return fmt.Errorf("floorplan: room %d parts overlap (area double-counted)", r.ID)
				}
			}
		}
		if len(parts) > 1 && !partsConnected(parts) {
			return fmt.Errorf("floorplan: room %d parts are disconnected", r.ID)
		}
		for _, o := range p.rooms {
			if o.ID > r.ID && r.overlapsRoom(o) {
				return fmt.Errorf("floorplan: rooms %d and %d overlap", r.ID, o.ID)
			}
		}
		for _, h := range p.hallways {
			if r.OverlapsRect(h.Strip()) {
				return fmt.Errorf("floorplan: room %d overlaps hallway %d", r.ID, h.ID)
			}
		}
	}
	for _, l := range p.links {
		if int(l.HallwayA) < 0 || int(l.HallwayA) >= len(p.hallways) ||
			int(l.HallwayB) < 0 || int(l.HallwayB) >= len(p.hallways) {
			return fmt.Errorf("floorplan: link %d references unknown hallway", l.ID)
		}
		if p.hallways[l.HallwayA].Center.DistToPoint(l.A) > geom.Eps {
			return fmt.Errorf("floorplan: link %d endpoint A %v not on hallway %d centerline", l.ID, l.A, l.HallwayA)
		}
		if p.hallways[l.HallwayB].Center.DistToPoint(l.B) > geom.Eps {
			return fmt.Errorf("floorplan: link %d endpoint B %v not on hallway %d centerline", l.ID, l.B, l.HallwayB)
		}
		if l.Length < l.A.Dist(l.B)-geom.Eps {
			return fmt.Errorf("floorplan: link %d length %v shorter than straight-line distance %v (breaks Euclidean pruning soundness)",
				l.ID, l.Length, l.A.Dist(l.B))
		}
		if l.Length <= 0 {
			return fmt.Errorf("floorplan: link %d has non-positive length %v", l.ID, l.Length)
		}
	}
	for _, d := range p.doors {
		if int(d.Room) < 0 || int(d.Room) >= len(p.rooms) {
			return fmt.Errorf("floorplan: door %d references unknown room %d", d.ID, d.Room)
		}
		if int(d.Hallway) < 0 || int(d.Hallway) >= len(p.hallways) {
			return fmt.Errorf("floorplan: door %d references unknown hallway %d", d.ID, d.Hallway)
		}
		room := p.rooms[d.Room]
		onBoundary := false
		for _, part := range room.AllParts() {
			if part.DistToPoint(d.Pos) <= geom.Eps {
				onBoundary = true
				break
			}
		}
		if !onBoundary {
			return fmt.Errorf("floorplan: door %d position %v not on room %d boundary", d.ID, d.Pos, d.Room)
		}
		h := p.hallways[d.Hallway]
		if h.Center.DistToPoint(d.HallwayPoint) > geom.Eps {
			return fmt.Errorf("floorplan: door %d hallway point %v not on hallway %d centerline", d.ID, d.HallwayPoint, d.Hallway)
		}
		if d.Pos.Dist(d.HallwayPoint) > h.Width {
			return fmt.Errorf("floorplan: door %d is %v m from hallway %d centerline, exceeding hallway width %v",
				d.ID, d.Pos.Dist(d.HallwayPoint), d.Hallway, h.Width)
		}
	}
	return nil
}
