package floorplan

import (
	"encoding/json"
	"fmt"

	"repro/internal/geom"
)

// The JSON format is a portable description of a floor plan, so real
// deployments can load their own layouts instead of the built-in office:
//
//	{
//	  "hallways": [{"name": "hall", "from": [2,12], "to": [68,12], "width": 2}],
//	  "rooms": [{"name": "S1", "min": [2,4], "max": [8.6,11],
//	             "doors": [{"hallway": 0, "pos": [5.3,11]}]}]
//	}

type hallwayJSON struct {
	Name  string     `json:"name"`
	From  [2]float64 `json:"from"`
	To    [2]float64 `json:"to"`
	Width float64    `json:"width"`
}

type doorJSON struct {
	Hallway int        `json:"hallway"`
	Pos     [2]float64 `json:"pos"`
}

type roomJSON struct {
	Name string     `json:"name"`
	Min  [2]float64 `json:"min"`
	Max  [2]float64 `json:"max"`
	// Parts lists the rectangles of a composite room; empty means the room
	// is the single rectangle [Min, Max].
	Parts []rectJSON `json:"parts,omitempty"`
	Doors []doorJSON `json:"doors"`
}

type rectJSON struct {
	Min [2]float64 `json:"min"`
	Max [2]float64 `json:"max"`
}

type linkJSON struct {
	Name     string     `json:"name"`
	HallwayA int        `json:"hallwayA"`
	A        [2]float64 `json:"a"`
	HallwayB int        `json:"hallwayB"`
	B        [2]float64 `json:"b"`
	Length   float64    `json:"length"`
}

type planJSON struct {
	Hallways []hallwayJSON `json:"hallways"`
	Rooms    []roomJSON    `json:"rooms"`
	Links    []linkJSON    `json:"links,omitempty"`
}

func pt(a [2]float64) geom.Point  { return geom.Pt(a[0], a[1]) }
func arr(p geom.Point) [2]float64 { return [2]float64{p.X, p.Y} }

// MarshalJSON encodes the plan in the portable JSON format.
func (p *Plan) MarshalJSON() ([]byte, error) {
	out := planJSON{}
	for _, h := range p.hallways {
		out.Hallways = append(out.Hallways, hallwayJSON{
			Name:  h.Name,
			From:  arr(h.Center.A),
			To:    arr(h.Center.B),
			Width: h.Width,
		})
	}
	for _, r := range p.rooms {
		rj := roomJSON{Name: r.Name, Min: arr(r.Bounds.Min), Max: arr(r.Bounds.Max)}
		for _, part := range r.Parts {
			rj.Parts = append(rj.Parts, rectJSON{Min: arr(part.Min), Max: arr(part.Max)})
		}
		for _, did := range r.Doors {
			d := p.doors[did]
			rj.Doors = append(rj.Doors, doorJSON{Hallway: int(d.Hallway), Pos: arr(d.Pos)})
		}
		out.Rooms = append(out.Rooms, rj)
	}
	for _, l := range p.links {
		out.Links = append(out.Links, linkJSON{
			Name:     l.Name,
			HallwayA: int(l.HallwayA),
			A:        arr(l.A),
			HallwayB: int(l.HallwayB),
			B:        arr(l.B),
			Length:   l.Length,
		})
	}
	return json.Marshal(out)
}

// Decode parses the portable JSON format and builds a validated plan.
func Decode(data []byte) (*Plan, error) {
	var in planJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("floorplan: decode: %w", err)
	}
	b := NewBuilder()
	for _, h := range in.Hallways {
		b.AddHallway(h.Name, geom.Seg(pt(h.From), pt(h.To)), h.Width)
	}
	for _, r := range in.Rooms {
		if len(r.Doors) == 0 {
			return nil, fmt.Errorf("floorplan: decode: room %q has no doors", r.Name)
		}
		bounds := geom.RectFromCorners(pt(r.Min), pt(r.Max))
		var room RoomID
		if len(r.Parts) > 0 {
			parts := make([]geom.Rect, 0, len(r.Parts))
			for _, part := range r.Parts {
				parts = append(parts, geom.RectFromCorners(pt(part.Min), pt(part.Max)))
			}
			room = b.AddCompositeRoom(r.Name, parts, HallwayID(r.Doors[0].Hallway))
			// A composite room's door was chosen by the builder; honor the
			// serialized doors exactly by replacing with the explicit list.
			b.setRoomDoors(room, r.Doors)
		} else {
			room = b.AddRoomWithDoor(r.Name, bounds, HallwayID(r.Doors[0].Hallway), pt(r.Doors[0].Pos))
			for _, d := range r.Doors[1:] {
				b.AddDoor(room, HallwayID(d.Hallway), pt(d.Pos))
			}
		}
	}
	for _, l := range in.Links {
		b.AddLink(l.Name, HallwayID(l.HallwayA), pt(l.A), HallwayID(l.HallwayB), pt(l.B), l.Length)
	}
	return b.Build()
}
