package ingest

import (
	"errors"
	"testing"

	"repro/internal/model"
)

// recorder collects flushed seconds for assertions.
type recorder struct {
	secs []model.Time
	raws map[model.Time][]model.RawReading
}

func newRecorder() *recorder {
	return &recorder{raws: make(map[model.Time][]model.RawReading)}
}

func (r *recorder) sink(t model.Time, raws []model.RawReading) {
	r.secs = append(r.secs, t)
	r.raws[t] = raws
}

func rd(obj, reader int, t model.Time) model.RawReading {
	return model.RawReading{Object: model.ObjectID(obj), Reader: model.ReaderID(reader), Time: t}
}

func TestInOrderFlushesImmediately(t *testing.T) {
	rec := newRecorder()
	b := NewReorder(Config{}, rec.sink)
	for sec := model.Time(10); sec <= 13; sec++ {
		if err := b.Offer(sec, []model.RawReading{rd(1, 2, sec)}); err != nil {
			t.Fatalf("t=%d: %v", sec, err)
		}
		if got := rec.secs[len(rec.secs)-1]; got != sec {
			t.Fatalf("t=%d flushed %d", sec, got)
		}
	}
	if b.PendingSeconds() != 0 || b.PendingReadings() != 0 {
		t.Errorf("pending %d seconds / %d readings after in-order stream",
			b.PendingSeconds(), b.PendingReadings())
	}
	if d := b.Drops(); d.Readings() != 0 || d.GapSeconds != 0 {
		t.Errorf("clean stream recorded drops: %+v", d)
	}
}

func TestLateBatchRejectedTyped(t *testing.T) {
	rec := newRecorder()
	b := NewReorder(Config{}, rec.sink)
	b.Offer(10, []model.RawReading{rd(1, 2, 10)})
	err := b.Offer(9, []model.RawReading{rd(1, 2, 9), rd(2, 2, 9)})
	var ie *Error
	if !errors.As(err, &ie) {
		t.Fatalf("late batch error = %v, want *Error", err)
	}
	if ie.Kind != KindLate || !ie.Rejected || ie.Dropped != 2 || ie.Time != 9 {
		t.Errorf("late error = %+v", ie)
	}
	d := b.Drops()
	if d.LateBatches != 1 || d.LateReadings != 2 {
		t.Errorf("drops = %+v", d)
	}
	if len(rec.raws[9]) != 0 {
		t.Error("late batch leaked into the sink")
	}
}

func TestOutOfOrderWithinHorizon(t *testing.T) {
	rec := newRecorder()
	b := NewReorder(Config{Horizon: 3}, rec.sink)
	// Deliver 10, 12, 11, 13, 14: nothing may flush before the watermark
	// (maxSeen-3) passes it, and flushes must come out in order.
	b.Offer(10, []model.RawReading{rd(1, 2, 10)})
	b.Offer(12, []model.RawReading{rd(1, 2, 12)})
	if err := b.Offer(11, []model.RawReading{rd(1, 2, 11)}); err != nil {
		t.Fatalf("in-horizon delivery refused: %v", err)
	}
	b.Offer(13, []model.RawReading{rd(1, 2, 13)})
	b.Offer(14, []model.RawReading{rd(1, 2, 14)})
	// maxSeen=14 -> watermark 11: seconds 10 and 11 flushed, in order.
	if len(rec.secs) != 2 || rec.secs[0] != 10 || rec.secs[1] != 11 {
		t.Fatalf("flushed %v, want [10 11]", rec.secs)
	}
	b.FlushAll()
	if len(rec.secs) != 5 {
		t.Fatalf("after FlushAll flushed %v", rec.secs)
	}
	for i, sec := range rec.secs {
		if want := model.Time(10 + i); sec != want {
			t.Errorf("flush %d = %d, want %d", i, sec, want)
		}
		if len(rec.raws[sec]) != 1 {
			t.Errorf("second %d flushed %d readings", sec, len(rec.raws[sec]))
		}
	}
	if d := b.Drops(); d.Readings() != 0 {
		t.Errorf("drops = %+v", d)
	}
}

func TestDuplicateDeliveryDeduped(t *testing.T) {
	rec := newRecorder()
	b := NewReorder(Config{Horizon: 5}, rec.sink)
	batch := []model.RawReading{rd(1, 2, 10), rd(1, 2, 10), rd(2, 3, 10)}
	if err := b.Offer(10, batch); err != nil {
		t.Fatal(err)
	}
	err := b.Offer(10, batch) // retransmission while still pending
	var ie *Error
	if !errors.As(err, &ie) || ie.Kind != KindDuplicate || ie.Rejected {
		t.Fatalf("duplicate error = %v", err)
	}
	if ie.Dropped != 3 {
		t.Errorf("duplicate dropped %d, want 3", ie.Dropped)
	}
	d := b.Drops()
	if d.DuplicateDeliveries != 1 || d.DuplicateReadings != 3 {
		t.Errorf("drops = %+v", d)
	}
	b.FlushAll()
	// The flushed second holds the original multiset once: both samples of
	// object 1 survive (they are samples, not retransmissions).
	if got := len(rec.raws[10]); got != 3 {
		t.Errorf("flushed %d readings, want 3", got)
	}
}

func TestDistinctDeliveriesSameSecondMerge(t *testing.T) {
	rec := newRecorder()
	b := NewReorder(Config{Horizon: 5}, rec.sink)
	b.Offer(10, []model.RawReading{rd(1, 2, 10)})
	if err := b.Offer(10, []model.RawReading{rd(2, 3, 10)}); err != nil {
		t.Fatalf("distinct sub-batch refused: %v", err)
	}
	b.FlushAll()
	if got := len(rec.raws[10]); got != 2 {
		t.Errorf("merged second has %d readings, want 2", got)
	}
}

func TestMultiSecondBatchRouted(t *testing.T) {
	rec := newRecorder()
	b := NewReorder(Config{Horizon: 4}, rec.sink)
	// One delivery carrying readings for three neighboring seconds.
	if err := b.Offer(11, []model.RawReading{rd(1, 2, 10), rd(1, 2, 11), rd(1, 2, 12)}); err != nil {
		t.Fatal(err)
	}
	b.FlushAll()
	for _, sec := range []model.Time{10, 11, 12} {
		if len(rec.raws[sec]) != 1 {
			t.Errorf("second %d got %d readings", sec, len(rec.raws[sec]))
		}
	}
}

func TestMisstampedBeyondSkewDropped(t *testing.T) {
	rec := newRecorder()
	b := NewReorder(Config{Horizon: 2, MaxSkew: 5}, rec.sink)
	err := b.Offer(10, []model.RawReading{rd(1, 2, 10), rd(1, 2, 99)})
	var ie *Error
	if !errors.As(err, &ie) || ie.Kind != KindMisstamped || ie.Dropped != 1 {
		t.Fatalf("misstamped error = %v", err)
	}
	if d := b.Drops(); d.MisstampedReadings != 1 {
		t.Errorf("drops = %+v", d)
	}
}

func TestInvalidReaderDropped(t *testing.T) {
	b := NewReorder(Config{}, newRecorder().sink)
	err := b.Offer(10, []model.RawReading{{Object: 1, Reader: model.NoReader, Time: 10}})
	var ie *Error
	if !errors.As(err, &ie) || ie.Kind != KindInvalid || ie.Dropped != 1 {
		t.Fatalf("invalid error = %v", err)
	}
}

func TestGapSecondsCounted(t *testing.T) {
	rec := newRecorder()
	b := NewReorder(Config{}, rec.sink)
	b.Offer(10, []model.RawReading{rd(1, 2, 10)})
	b.Offer(14, []model.RawReading{rd(1, 2, 14)}) // 11..13 lost upstream
	if d := b.Drops(); d.GapSeconds != 3 {
		t.Errorf("gaps = %d, want 3", d.GapSeconds)
	}
	// Gap seconds are skipped, not delivered as empty ticks.
	if len(rec.secs) != 2 || rec.secs[0] != 10 || rec.secs[1] != 14 {
		t.Errorf("flushed %v", rec.secs)
	}
	if d := b.Drops(); d.Of(KindGap) != 3 {
		t.Errorf("Of(KindGap) = %d", d.Of(KindGap))
	}
}

func TestMaxPendingForcesFlush(t *testing.T) {
	rec := newRecorder()
	b := NewReorder(Config{Horizon: 100, MaxPending: 4}, rec.sink)
	for sec := model.Time(1); sec <= 10; sec++ {
		b.Offer(sec, []model.RawReading{rd(1, 2, sec)})
	}
	// Horizon would hold all ten seconds; the bound must cap the span at 4.
	if span := 10 - len(rec.secs); span > 4 {
		t.Errorf("%d seconds still open, bound is 4 (flushed %v)", span, rec.secs)
	}
	if b.ForcedFlushes() == 0 {
		t.Error("forced flushes not counted")
	}
	// A second that was force-flushed is now late.
	err := b.Offer(2, []model.RawReading{rd(1, 2, 2)})
	var ie *Error
	if !errors.As(err, &ie) || ie.Kind != KindLate {
		t.Errorf("post-force delivery error = %v", err)
	}
}

func TestHugeTimeJumpFlushesArithmetically(t *testing.T) {
	// Batch times are untrusted input: a jump of 2^40 seconds must cost
	// O(buffered), not one loop iteration per skipped second. If the flush
	// walked the span, this test would not finish in a lifetime.
	rec := newRecorder()
	b := NewReorder(Config{}, rec.sink)
	b.Offer(10, []model.RawReading{rd(1, 2, 10)})
	const far = model.Time(1) << 40
	if err := b.Offer(far, []model.RawReading{rd(1, 2, far)}); err != nil {
		t.Fatal(err)
	}
	if len(rec.secs) != 2 || rec.secs[0] != 10 || rec.secs[1] != far {
		t.Fatalf("flushed %v, want [10 %d]", rec.secs, far)
	}
	if d := b.Drops(); model.Time(d.GapSeconds) != far-11 {
		t.Errorf("gap seconds = %d, want %d", d.GapSeconds, far-11)
	}
	// The jump closed everything behind it: older batches are late now.
	err := b.Offer(20, []model.RawReading{rd(1, 2, 20)})
	var ie *Error
	if !errors.As(err, &ie) || ie.Kind != KindLate || !ie.Rejected {
		t.Errorf("post-jump delivery error = %v", err)
	}
}

func TestCorruptFirstStampDoesNotPoisonWatermark(t *testing.T) {
	// A corrupt tiny time stamp inside the first delivery must not open the
	// stream eons before the first honest second: the backward tolerance is
	// MaxSkew, and anything earlier is a counted late drop.
	rec := newRecorder()
	b := NewReorder(Config{MaxSkew: 5}, rec.sink)
	err := b.Offer(1000, []model.RawReading{rd(1, 2, 3), rd(1, 2, 1000)})
	var ie *Error
	if !errors.As(err, &ie) || ie.Kind != KindLate || ie.Rejected || ie.Dropped != 1 {
		t.Fatalf("corrupt-stamp error = %v", err)
	}
	if d := b.Drops(); d.LateReadings != 1 || d.GapSeconds != 5 {
		t.Errorf("drops = %+v, want 1 late reading and 5 gap seconds", d)
	}
	if len(rec.raws[1000]) != 1 {
		t.Errorf("second 1000 flushed %d readings, want 1", len(rec.raws[1000]))
	}
}

func TestMaxPendingBoundsBufferedSeconds(t *testing.T) {
	// MaxPending must bound the actual number of buffered seconds, including
	// buckets stamped ahead of the newest batch second — a single delivery
	// fanning readings over many future seconds may not evade the bound.
	rec := newRecorder()
	b := NewReorder(Config{Horizon: 50, MaxPending: 4}, rec.sink)
	var raws []model.RawReading
	for i := model.Time(0); i < 10; i++ {
		raws = append(raws, rd(1, 2, 100+i))
	}
	if err := b.Offer(100, raws); err != nil {
		t.Fatal(err)
	}
	if got := b.PendingSeconds(); got > 4 {
		t.Errorf("%d seconds buffered, bound is 4", got)
	}
	if b.ForcedFlushes() != 6 {
		t.Errorf("forced flushes = %d, want 6", b.ForcedFlushes())
	}
	for i, sec := range rec.secs {
		if want := model.Time(100 + i); sec != want {
			t.Errorf("flush %d = %d, want %d", i, sec, want)
		}
	}
	if d := b.Drops(); d.Readings() != 0 || d.GapSeconds != 0 {
		t.Errorf("force-flushing a dense stream counted drops: %+v", d)
	}
}

func TestZeroHorizonDropsAheadStampedAsMisstamped(t *testing.T) {
	// With no horizon every second closes immediately, so a reading stamped
	// ahead of its batch second has no later flush to release it; it must be
	// a counted mis-stamped drop, not buffered forever.
	rec := newRecorder()
	b := NewReorder(Config{}, rec.sink)
	err := b.Offer(10, []model.RawReading{rd(1, 2, 10), rd(1, 2, 11)})
	var ie *Error
	if !errors.As(err, &ie) || ie.Kind != KindMisstamped || ie.Dropped != 1 {
		t.Fatalf("ahead-stamped error = %v", err)
	}
	if b.PendingReadings() != 0 {
		t.Errorf("%d readings still pending under zero horizon", b.PendingReadings())
	}
	// The next second's own delivery is not polluted by the dropped reading.
	b.Offer(11, []model.RawReading{rd(3, 4, 11)})
	if got := len(rec.raws[11]); got != 1 {
		t.Errorf("second 11 flushed %d readings, want 1", got)
	}
	if d := b.Drops(); d.MisstampedReadings != 1 {
		t.Errorf("drops = %+v", d)
	}
}

func TestLateReadingInsideAcceptableBatch(t *testing.T) {
	rec := newRecorder()
	b := NewReorder(Config{}, rec.sink)
	b.Offer(10, []model.RawReading{rd(1, 2, 10)})
	// Batch 11 is fine, but it carries one reading for the closed second 9.
	err := b.Offer(11, []model.RawReading{rd(1, 2, 11), rd(1, 2, 9)})
	var ie *Error
	if !errors.As(err, &ie) || ie.Kind != KindLate || ie.Rejected {
		t.Fatalf("err = %v", err)
	}
	if len(rec.raws[11]) != 1 {
		t.Errorf("second 11 flushed %d readings, want 1", len(rec.raws[11]))
	}
	if d := b.Drops(); d.LateReadings != 1 || d.LateBatches != 0 {
		t.Errorf("drops = %+v", d)
	}
}

func TestWatermarkAndAccounting(t *testing.T) {
	rec := newRecorder()
	b := NewReorder(Config{Horizon: 2}, rec.sink)
	if _, ok := b.Watermark(); ok {
		t.Error("watermark defined before first delivery")
	}
	offered := 0
	for sec := model.Time(1); sec <= 9; sec++ {
		b.Offer(sec, []model.RawReading{rd(1, 2, sec), rd(2, 3, sec)})
		offered += 2
	}
	w, ok := b.Watermark()
	if !ok || w != 7 {
		t.Errorf("watermark = %d/%v, want 7", w, ok)
	}
	flushed := 0
	for _, raws := range rec.raws {
		flushed += len(raws)
	}
	if flushed+b.PendingReadings()+b.Drops().Readings() != offered {
		t.Errorf("accounting broken: flushed %d + pending %d + dropped %d != offered %d",
			flushed, b.PendingReadings(), b.Drops().Readings(), offered)
	}
}

func TestErrorStringAndKinds(t *testing.T) {
	e := &Error{Kind: KindDuplicate, Time: 12, Watermark: 10, Dropped: 3}
	if s := e.Error(); s == "" {
		t.Error("empty error string")
	}
	for k := KindLate; k <= KindGap; k++ {
		if k.String() == "" {
			t.Errorf("Kind(%d) has no name", k)
		}
	}
	var d Drops
	d.LateReadings, d.DuplicateReadings, d.MisstampedReadings, d.InvalidReadings = 1, 2, 3, 4
	if d.Readings() != 10 {
		t.Errorf("Readings() = %d", d.Readings())
	}
	var m Drops
	m.Merge(d)
	m.Merge(d)
	if m.Readings() != 20 {
		t.Errorf("merged Readings() = %d", m.Readings())
	}
}
