package ingest

import (
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/model"
)

// DefaultMaxSkew is the default tolerance for readings stamped ahead of
// their delivery's batch second.
const DefaultMaxSkew model.Time = 60

// Config parameterizes the reorder buffer. The zero value keeps the
// historical strict in-order contract: every delivery flushes immediately,
// anything older than the newest flushed second is a late drop, and
// readings stamped ahead of their batch second are dropped as mis-stamped
// (with no horizon there is no later flush that could ever release them).
type Config struct {
	// Horizon is the lateness horizon in seconds: a delivery for second t
	// is accepted as long as no batch newer than t+Horizon has been seen.
	// Seconds flush, in order, once the watermark (newest batch second
	// minus Horizon) passes them. 0 means in-order only: nothing is held
	// across deliveries, and ahead-stamped readings are mis-stamped drops
	// instead of being buffered. With a non-zero horizon the newest Horizon
	// seconds stay buffered until a later batch closes them, so callers
	// must drain via FlushAll (engine.System.FlushIngest) at end of stream.
	Horizon model.Time
	// MaxSkew caps how far a reading's stamp may disagree with its
	// delivery's batch second: more than MaxSkew ahead is discarded as
	// mis-stamped, and the stream cannot open more than MaxSkew behind the
	// first batch second. 0 means DefaultMaxSkew.
	MaxSkew model.Time
	// MaxPending bounds the number of buffered, not-yet-flushed seconds,
	// ahead-stamped buckets included; when a delivery leaves more than
	// MaxPending seconds pending, the oldest are force-flushed early.
	// 0 derives max(4*Horizon, 64).
	MaxPending int
}

// withDefaults fills in the derived defaults.
func (c Config) withDefaults() Config {
	if c.MaxSkew == 0 {
		c.MaxSkew = DefaultMaxSkew
	}
	if c.MaxPending == 0 {
		c.MaxPending = int(4 * c.Horizon)
		if c.MaxPending < 64 {
			c.MaxPending = 64
		}
	}
	return c
}

// Sink receives one flushed second of raw readings, in strictly increasing
// second order. Seconds with no delivery at all are counted as gaps and
// skipped, so the sink sees exactly the seconds that were delivered.
type Sink func(t model.Time, raws []model.RawReading)

// pendingSecond is the buffered state of one not-yet-flushed second.
type pendingSecond struct {
	raws []model.RawReading
	// prints are the fingerprints of the sub-batches merged into this
	// second, used to drop retransmissions.
	prints []uint64
}

// Reorder is the bounded reorder buffer: it accepts out-of-order and
// multi-second deliveries, deduplicates retransmitted sub-batches, and
// flushes whole seconds to the sink in order once the watermark closes
// them. It is not safe for concurrent use.
type Reorder struct {
	cfg  Config
	sink Sink

	pending map[model.Time]*pendingSecond
	// maxSeen is the newest batch second delivered; watermark the newest
	// second closed (flushed or passed). Both are meaningful only once
	// started is set.
	maxSeen   model.Time
	watermark model.Time
	started   bool
	drops     Drops
	forced    int
}

// NewReorder builds a reorder buffer flushing into sink.
func NewReorder(cfg Config, sink Sink) *Reorder {
	return &Reorder{cfg: cfg.withDefaults(), sink: sink, pending: make(map[model.Time]*pendingSecond)}
}

// Drops returns the cumulative drop accounting.
func (b *Reorder) Drops() Drops { return b.drops }

// ForcedFlushes returns how many seconds were flushed early because the
// number of buffered seconds hit the MaxPending bound.
func (b *Reorder) ForcedFlushes() int { return b.forced }

// PendingSeconds returns the number of buffered, not-yet-flushed seconds.
func (b *Reorder) PendingSeconds() int { return len(b.pending) }

// PendingReadings returns the number of buffered raw readings.
func (b *Reorder) PendingReadings() int {
	n := 0
	for _, ps := range b.pending {
		n += len(ps.raws)
	}
	return n
}

// Watermark returns the newest closed second; ok is false before the first
// delivery.
func (b *Reorder) Watermark() (model.Time, bool) { return b.watermark, b.started }

// MaxSeen returns the newest delivered batch second; ok is false before the
// first delivery.
func (b *Reorder) MaxSeen() (model.Time, bool) { return b.maxSeen, b.started }

// Restore positions an empty buffer at a recovered stream point: the next
// accepted delivery must be newer than watermark, and the cumulative drop
// and forced-flush accounting continues from the restored values. Buffered
// seconds are not restorable — unflushed input is by definition unacked — so
// Restore refuses nothing but silently discards any pending state.
func (b *Reorder) Restore(watermark, maxSeen model.Time, drops Drops, forced int) {
	b.pending = make(map[model.Time]*pendingSecond)
	b.watermark = watermark
	b.maxSeen = maxSeen
	b.started = true
	b.drops = drops
	b.forced = forced
}

// Lag returns the width of the open window in seconds: the newest delivered
// batch second minus the newest closed second. It is 0 before the first
// delivery and at horizon 0 (every second closes immediately); with a
// lateness horizon it measures how far ingestion currently runs behind the
// stream head — the watermark lag exported at /metrics.
func (b *Reorder) Lag() model.Time {
	if !b.started {
		return 0
	}
	return b.maxSeen - b.watermark
}

// Fingerprint hashes the multiset of readings of one sub-batch (FNV-1a over
// the sorted readings), so an identical retransmission hashes equal
// regardless of reading order. The reorder buffer uses it for duplicate
// detection; the cluster layer keys idempotent ingest forwards on it.
func Fingerprint(raws []model.RawReading) uint64 { return fingerprint(raws) }

// fingerprint is the implementation behind Fingerprint.
func fingerprint(raws []model.RawReading) uint64 {
	sorted := append([]model.RawReading(nil), raws...)
	sort.Slice(sorted, func(i, j int) bool {
		a, c := sorted[i], sorted[j]
		if a.Time != c.Time {
			return a.Time < c.Time
		}
		if a.Object != c.Object {
			return a.Object < c.Object
		}
		return a.Reader < c.Reader
	})
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, r := range sorted {
		word(uint64(r.Object))
		word(uint64(r.Reader))
		word(uint64(r.Time))
	}
	return h.Sum64()
}

// Offer delivers one batch: the readings produced (or retransmitted) for
// batch second t. Readings are routed to the buffer bucket of their own
// time stamp, so a single delivery may cover several seconds. Whenever
// input is refused or discarded, Offer returns a typed *Error describing
// it; a nil return means every reading was accepted. Unless Error.Rejected
// is set, the remaining readings of the delivery were still accepted.
func (b *Reorder) Offer(t model.Time, raws []model.RawReading) error {
	if b.started && t <= b.watermark {
		b.drops.LateBatches++
		b.drops.LateReadings += len(raws)
		return &Error{Kind: KindLate, Time: t, Watermark: b.watermark, Dropped: len(raws), Rejected: true}
	}
	if !b.started {
		// Open the stream at the earliest second this delivery mentions, so
		// the first flush starts there instead of counting phantom gaps. The
		// backward tolerance mirrors MaxSkew: one corrupt tiny stamp must not
		// open the stream absurdly early (everything up to the first honest
		// second would then count as gaps); such readings drop as late below.
		lo := t
		for _, r := range raws {
			if r.Reader != model.NoReader && r.Time < lo {
				lo = r.Time
			}
		}
		if lo < t-b.cfg.MaxSkew {
			lo = t - b.cfg.MaxSkew
		}
		b.started = true
		b.maxSeen = t
		b.watermark = lo - 1
	} else if t > b.maxSeen {
		b.maxSeen = t
	}

	// Route readings to their own second, validating as we go.
	var late, misstamped, invalid, duplicate, dupDeliveries int
	buckets := make(map[model.Time][]model.RawReading)
	for _, r := range raws {
		switch {
		case r.Reader == model.NoReader:
			invalid++
		case r.Time <= b.watermark:
			late++
		case r.Time > t+b.cfg.MaxSkew || (b.cfg.Horizon == 0 && r.Time > t):
			// Beyond the skew tolerance, or ahead-stamped with no horizon:
			// at horizon 0 every second closes immediately, so a reading
			// parked in a future bucket would never be released.
			misstamped++
		default:
			buckets[r.Time] = append(buckets[r.Time], r)
		}
	}
	// Merge each sub-batch into its pending second unless its fingerprint
	// marks it as a retransmission of one already buffered. Seconds are
	// visited in ascending order so the accounting is deterministic.
	secs := make([]model.Time, 0, len(buckets))
	for sec := range buckets {
		secs = append(secs, sec)
	}
	sort.Slice(secs, func(i, j int) bool { return secs[i] < secs[j] })
	for _, sec := range secs {
		sub := buckets[sec]
		ps := b.pending[sec]
		if ps == nil {
			ps = &pendingSecond{}
			b.pending[sec] = ps
		}
		fp := fingerprint(sub)
		seen := false
		for _, p := range ps.prints {
			if p == fp {
				seen = true
				break
			}
		}
		if seen {
			dupDeliveries++
			duplicate += len(sub)
			continue
		}
		ps.prints = append(ps.prints, fp)
		ps.raws = append(ps.raws, sub...)
	}
	// The batch second itself was delivered, even when empty: make sure it
	// exists so the flush ticks it instead of counting a gap.
	if _, ok := b.pending[t]; !ok {
		b.pending[t] = &pendingSecond{}
	}

	b.drops.LateReadings += late
	b.drops.MisstampedReadings += misstamped
	b.drops.InvalidReadings += invalid
	b.drops.DuplicateReadings += duplicate
	b.drops.DuplicateDeliveries += dupDeliveries

	b.flushUpTo(b.maxSeen - b.cfg.Horizon)
	if over := len(b.pending) - b.cfg.MaxPending; over > 0 {
		// The horizon left more seconds buffered than MaxPending allows
		// (ahead-stamped buckets included): force-flush the oldest so the
		// bound holds on actual buffered state, not on the watermark span.
		secs := make([]model.Time, 0, len(b.pending))
		for sec := range b.pending {
			secs = append(secs, sec)
		}
		sort.Slice(secs, func(i, j int) bool { return secs[i] < secs[j] })
		b.forced += over
		b.flushUpTo(secs[over-1])
	}

	if n := late + misstamped + invalid + duplicate; n > 0 {
		kind := KindLate
		switch {
		case duplicate > 0:
			kind = KindDuplicate
		case misstamped > 0:
			kind = KindMisstamped
		case late > 0:
			kind = KindLate
		default:
			kind = KindInvalid
		}
		return &Error{Kind: kind, Time: t, Watermark: b.watermark, Dropped: n}
	}
	return nil
}

// flushUpTo closes every second up to and including target: buffered
// seconds in (watermark, target] are delivered to the sink in order, and
// the rest of the span is counted as gaps. The watermark and gap accounting
// advance BEFORE each sink call, so state the sink reads back (durability
// records, drop snapshots) is consistent with the second it receives. The
// cost is O(buffered), never O(span): batch times come from untrusted
// input, and walking an attacker-chosen span second by second would stall
// the whole server inside one delivery.
func (b *Reorder) flushUpTo(target model.Time) {
	if target <= b.watermark {
		return
	}
	secs := make([]model.Time, 0, len(b.pending))
	for sec := range b.pending {
		if sec <= target {
			secs = append(secs, sec)
		}
	}
	sort.Slice(secs, func(i, j int) bool { return secs[i] < secs[j] })
	for _, sec := range secs {
		ps := b.pending[sec]
		delete(b.pending, sec)
		// The uint64 subtraction yields the exact skipped span even when the
		// int64 difference overflows; the gap counter saturates instead of
		// wrapping. Every pending second is > watermark, so the -1 is safe.
		b.drops.GapSeconds = satAdd(b.drops.GapSeconds, uint64(sec)-uint64(b.watermark)-1)
		b.watermark = sec
		b.sink(sec, ps.raws)
	}
	if target > b.watermark {
		b.drops.GapSeconds = satAdd(b.drops.GapSeconds, uint64(target)-uint64(b.watermark))
		b.watermark = target
	}
}

// satAdd adds d to the non-negative counter a, saturating at MaxInt.
func satAdd(a int, d uint64) int {
	if d > uint64(math.MaxInt-a) {
		return math.MaxInt
	}
	return a + int(d)
}

// FlushAll drains every buffered second regardless of the horizon, in
// order. Use it at end of stream, before final queries, or on shutdown.
func (b *Reorder) FlushAll() {
	if !b.started {
		return
	}
	hi := b.maxSeen
	for sec := range b.pending {
		if sec > hi {
			hi = sec
		}
	}
	b.flushUpTo(hi)
}
