// Package ingest hardens the front of the reading pipeline. The paper's
// event-driven collector assumes a clean, strictly increasing one-second
// stream, but real RFID gateways deliver batches late, duplicated, and
// mis-stamped. This package makes that messiness explicit: a bounded,
// watermark-based reorder buffer accepts out-of-order and multi-second
// deliveries and flushes whole seconds in order, and every reading the
// pipeline refuses is classified by a typed error taxonomy and counted, so
// nothing is ever discarded silently.
package ingest

import (
	"fmt"

	"repro/internal/model"
)

// Kind classifies why the ingestion path refused a delivery or discarded a
// reading.
type Kind int

const (
	// KindLate marks input for a second the watermark has already closed:
	// the batch (or reading) arrived after its second was flushed.
	KindLate Kind = iota
	// KindDuplicate marks a re-delivery of a batch already buffered for the
	// same second (a gateway retransmission).
	KindDuplicate
	// KindMisstamped marks a reading stamped further ahead of its delivery's
	// batch second than the configured skew tolerance (a broken clock).
	KindMisstamped
	// KindInvalid marks a reading with no reader attached.
	KindInvalid
	// KindGap marks a second the watermark passed without any delivery at
	// all (lost batch). Gaps are observations, not drops: they are counted,
	// never returned as errors from Offer.
	KindGap
	// KindOversized marks a whole HTTP delivery refused before decoding
	// because its body exceeded the configured byte cap (the 413 path). The
	// reading count inside is unknown, so it is accounted at batch
	// granularity only.
	KindOversized
	// KindQuarantined marks readings dropped because the shard owning their
	// objects is quarantined after a WAL fail-stop (sharded engine only).
	// The rest of the delivery is accepted; healthy shards are unaffected.
	KindQuarantined
	// KindUnreachable marks readings dropped because the cluster peer owning
	// their objects was unreachable (DEAD, or a forward exhausted its
	// retries). The local partition of the delivery is still accepted.
	KindUnreachable
)

// ReadingKinds lists the kinds that classify dropped readings (KindGap is
// excluded: gaps count missing seconds, not readings). The telemetry layer
// iterates it to export one drop counter per kind.
var ReadingKinds = []Kind{KindLate, KindDuplicate, KindMisstamped, KindInvalid, KindQuarantined, KindUnreachable}

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindLate:
		return "late"
	case KindDuplicate:
		return "duplicate"
	case KindMisstamped:
		return "misstamped"
	case KindInvalid:
		return "invalid"
	case KindGap:
		return "gap"
	case KindOversized:
		return "oversized"
	case KindQuarantined:
		return "quarantined"
	case KindUnreachable:
		return "unreachable"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Error is the typed error returned by the Ingest family. Unless Rejected
// is set, the delivery was partially accepted and the error is a report of
// what was discarded, not a refusal.
type Error struct {
	// Kind is the dominant classification of the discarded input.
	Kind Kind
	// Time is the offending delivery's batch second.
	Time model.Time
	// Watermark is the newest second already closed when the delivery
	// arrived.
	Watermark model.Time
	// Dropped is the number of raw readings discarded by this delivery.
	Dropped int
	// Rejected reports whether the whole delivery was refused (true for a
	// late batch) rather than partially accepted.
	Rejected bool
}

// Error implements the error interface.
func (e *Error) Error() string {
	verb := "dropped"
	if e.Rejected {
		verb = "rejected"
	}
	return fmt.Sprintf("ingest: %s batch t=%d (watermark %d): %d readings %s",
		e.Kind, e.Time, e.Watermark, e.Dropped, verb)
}

// Drops is the explicit accounting of everything the ingestion path
// discarded or observed going missing. A healthy pipeline keeps
// offered == accepted + Readings() + pending at all times.
type Drops struct {
	// LateBatches counts whole deliveries refused because their batch
	// second was already closed by the watermark.
	LateBatches int
	// LateReadings counts readings in late batches plus readings stamped
	// before the watermark inside otherwise acceptable deliveries.
	LateReadings int
	// DuplicateDeliveries counts retransmitted sub-batches dropped by the
	// reorder buffer's fingerprint dedup.
	DuplicateDeliveries int
	// DuplicateReadings counts the readings inside those retransmissions.
	DuplicateReadings int
	// MisstampedReadings counts readings whose time stamp disagrees with
	// their second (beyond the skew tolerance at the reorder buffer, or
	// != t at the collector).
	MisstampedReadings int
	// InvalidReadings counts readings with no reader attached.
	InvalidReadings int
	// GapSeconds counts seconds the watermark passed with no delivery at
	// all — batches lost upstream of the system.
	GapSeconds int
	// OversizedBatches counts whole HTTP deliveries refused undecoded
	// because the body exceeded the ingest byte cap (the 413 path). Their
	// reading counts are unknowable, so like LateBatches this is batch-level
	// accounting and excluded from Readings().
	OversizedBatches int
	// QuarantinedReadings counts readings dropped because their objects'
	// shard was quarantined after a WAL fail-stop. Router-owned and volatile
	// across a crash (like OversizedBatches): the readings never reach any
	// WAL, so the count cannot be recovered from one.
	QuarantinedReadings int
	// UnreachableReadings counts readings dropped because the cluster peer
	// owning their objects was unreachable when the forward gave up.
	// Forwarder-owned and volatile, like QuarantinedReadings.
	UnreachableReadings int
}

// Readings returns the total number of raw readings dropped.
func (d Drops) Readings() int {
	return d.LateReadings + d.DuplicateReadings + d.MisstampedReadings +
		d.InvalidReadings + d.QuarantinedReadings + d.UnreachableReadings
}

// Of returns the reading count (or, for KindGap, the second count)
// attributed to one taxonomy kind.
func (d Drops) Of(k Kind) int {
	switch k {
	case KindLate:
		return d.LateReadings
	case KindDuplicate:
		return d.DuplicateReadings
	case KindMisstamped:
		return d.MisstampedReadings
	case KindInvalid:
		return d.InvalidReadings
	case KindGap:
		return d.GapSeconds
	case KindOversized:
		return d.OversizedBatches
	case KindQuarantined:
		return d.QuarantinedReadings
	case KindUnreachable:
		return d.UnreachableReadings
	default:
		return 0
	}
}

// Merge adds another accounting into d.
func (d *Drops) Merge(o Drops) {
	d.LateBatches += o.LateBatches
	d.LateReadings += o.LateReadings
	d.DuplicateDeliveries += o.DuplicateDeliveries
	d.DuplicateReadings += o.DuplicateReadings
	d.MisstampedReadings += o.MisstampedReadings
	d.InvalidReadings += o.InvalidReadings
	d.GapSeconds += o.GapSeconds
	d.OversizedBatches += o.OversizedBatches
	d.QuarantinedReadings += o.QuarantinedReadings
	d.UnreachableReadings += o.UnreachableReadings
}
