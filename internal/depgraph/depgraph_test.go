package depgraph

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/walkgraph"
)

// corridor: 40 m hallway, rooms on both sides, three partitioning readers at
// x = 10, 20, 30 (range 2) cutting the hallway into four sections.
func corridor(t *testing.T) (*walkgraph.Graph, *rfid.Deployment) {
	t.Helper()
	b := floorplan.NewBuilder()
	h := b.AddHallway("h", geom.Seg(geom.Pt(0, 10), geom.Pt(40, 10)), 2)
	b.AddRoom("R0", geom.RectWH(12, 3, 6, 6), h)
	b.AddRoom("R1", geom.RectWH(24, 11, 6, 6), h)
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := walkgraph.MustBuild(plan)
	dep := rfid.NewDeployment([]rfid.Reader{
		{Pos: geom.Pt(10, 10), Range: 2},
		{Pos: geom.Pt(20, 10), Range: 2},
		{Pos: geom.Pt(30, 10), Range: 2},
	})
	return g, dep
}

func TestFragmentsTileEveryEdge(t *testing.T) {
	g, dep := corridor(t)
	dg := MustBuild(g, dep)
	for _, e := range g.Edges() {
		ids := dg.OnEdge(e.ID)
		if len(ids) == 0 {
			t.Fatalf("edge %d has no fragments", e.ID)
		}
		cursor := 0.0
		for _, fid := range ids {
			f := dg.Fragment(fid)
			if math.Abs(f.Lo-cursor) > 1e-6 {
				t.Fatalf("edge %d fragment gap at %v", e.ID, cursor)
			}
			cursor = f.Hi
		}
		if math.Abs(cursor-e.Length) > 1e-6 {
			t.Fatalf("edge %d fragments end at %v of %v", e.ID, cursor, e.Length)
		}
	}
}

func TestEveryReaderHasFragments(t *testing.T) {
	g, dep := corridor(t)
	dg := MustBuild(g, dep)
	for _, r := range dep.Readers() {
		if len(dg.OfReader(r.ID)) == 0 {
			t.Errorf("reader %d has no covered fragments", r.ID)
		}
		for _, fid := range dg.OfReader(r.ID) {
			if !dg.Fragment(fid).Blocking {
				t.Errorf("partitioning reader %d has non-blocking fragment", r.ID)
			}
		}
	}
}

func TestCellPartition(t *testing.T) {
	g, dep := corridor(t)
	dg := MustBuild(g, dep)
	// Three readers cut the single hallway into four cells.
	if got := len(dg.Cells()); got != 4 {
		t.Fatalf("cells = %d, want 4", got)
	}
	// The two rooms belong to the cells of their door sections: room 0's
	// door is at x=15 (between readers 0 and 1), room 1's at x=27 (between
	// readers 1 and 2).
	var roomCell [2]CellID
	for _, c := range dg.Cells() {
		for _, r := range c.Rooms {
			roomCell[r] = c.ID
		}
	}
	if roomCell[0] == roomCell[1] {
		t.Errorf("rooms in the same cell despite reader between their doors")
	}
	// Total cell area: free hallway (40 - 3*~4 covered) * 2 wide + rooms.
	total := 0.0
	for _, c := range dg.Cells() {
		total += c.Area
	}
	want := (40-12)*2.0 + 36 + 36
	if math.Abs(total-want) > 1.0 {
		t.Errorf("total cell area = %v, want ~%v", total, want)
	}
}

func TestCellAt(t *testing.T) {
	g, dep := corridor(t)
	dg := MustBuild(g, dep)
	// Points in different sections land in different cells.
	locA := g.NearestLocation(geom.Pt(5, 10))
	locB := g.NearestLocation(geom.Pt(15, 10))
	ca, cb := dg.CellAt(locA), dg.CellAt(locB)
	if ca == NoCell || cb == NoCell || ca == cb {
		t.Errorf("cells: %d vs %d", ca, cb)
	}
	// A point inside a reader's range belongs to no cell.
	locR := g.NearestLocation(geom.Pt(10, 10))
	if got := dg.CellAt(locR); got != NoCell {
		t.Errorf("covered point in cell %d", got)
	}
}

func TestCellsAdjacentToPartitioningReader(t *testing.T) {
	g, dep := corridor(t)
	dg := MustBuild(g, dep)
	// The middle reader separates the second and third hallway sections.
	cells := dg.CellsAdjacentTo(model.ReaderID(1))
	if len(cells) != 2 {
		t.Fatalf("adjacent cells = %v, want 2", cells)
	}
	// End readers also separate two cells each.
	if got := dg.CellsAdjacentTo(model.ReaderID(0)); len(got) != 2 {
		t.Errorf("reader 0 adjacent cells = %v", got)
	}
}

// TestPresenceDeviceDoesNotPartition mirrors the paper's reader3: a presence
// device senses its surroundings but objects can pass it undetected, so the
// space is not split.
func TestPresenceDeviceDoesNotPartition(t *testing.T) {
	b := floorplan.NewBuilder()
	h := b.AddHallway("h", geom.Seg(geom.Pt(0, 10), geom.Pt(40, 10)), 2)
	b.AddRoom("R0", geom.RectWH(12, 3, 6, 6), h)
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := walkgraph.MustBuild(plan)
	dep := rfid.NewDeployment([]rfid.Reader{
		{Pos: geom.Pt(20, 10), Range: 2, Kind: rfid.Presence},
	})
	dg := MustBuild(g, dep)
	if got := len(dg.Cells()); got != 1 {
		t.Fatalf("cells with a single presence device = %d, want 1", got)
	}
	// Its fragments are sensed but not blocking.
	for _, fid := range dg.OfReader(0) {
		if dg.Fragment(fid).Blocking {
			t.Error("presence fragment marked blocking")
		}
		if dg.CellOfFragment(fid) == NoCell {
			t.Error("presence fragment outside any cell")
		}
	}
	// The presence device is adjacent to exactly the one cell containing it.
	if got := dg.CellsAdjacentTo(0); len(got) != 1 {
		t.Errorf("presence adjacency = %v", got)
	}
}

// TestFigure2Deployment reproduces the topology of the paper's Figure 2: a
// hallway connecting a staircase-like end section (separated by a directed
// pair) and rooms reachable without detection, plus a presence reader inside
// the middle cell.
func TestFigure2Deployment(t *testing.T) {
	b := floorplan.NewBuilder()
	h := b.AddHallway("hall", geom.Seg(geom.Pt(0, 10), geom.Pt(60, 10)), 2)
	b.AddRoom("roomA", geom.RectWH(20, 3, 8, 6), h)  // opens mid-hallway
	b.AddRoom("roomB", geom.RectWH(30, 3, 8, 6), h)  // opens mid-hallway
	b.AddRoom("stair", geom.RectWH(52, 11, 8, 6), h) // the "staircase" end
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := walkgraph.MustBuild(plan)
	dep := rfid.NewDeployment([]rfid.Reader{
		{Pos: geom.Pt(44, 10), Range: 1.5},                      // reader1
		{Pos: geom.Pt(48, 10), Range: 1.5},                      // reader1'
		{Pos: geom.Pt(10, 10), Range: 1.5},                      // reader4 (undirected)
		{Pos: geom.Pt(30, 10), Range: 1.5, Kind: rfid.Presence}, // reader3
	})
	if err := dep.AddDirectedPair(0, 1); err != nil {
		t.Fatal(err)
	}
	dg := MustBuild(g, dep)
	// Cells: west end (left of reader4), the large middle cell with both
	// rooms and the presence reader, the small gap between the pair, and the
	// staircase cell east of reader1'.
	if got := len(dg.Cells()); got != 4 {
		t.Fatalf("cells = %d, want 4", got)
	}
	// Both mid rooms share the middle cell.
	var midCell CellID = NoCell
	for _, c := range dg.Cells() {
		for _, r := range c.Rooms {
			if plan.Room(r).Name == "roomA" {
				midCell = c.ID
			}
		}
	}
	if midCell == NoCell {
		t.Fatal("roomA not in any cell")
	}
	foundB := false
	for _, r := range dg.Cell(midCell).Rooms {
		if plan.Room(r).Name == "roomB" {
			foundB = true
		}
	}
	if !foundB {
		t.Error("roomA and roomB should share a cell (reachable undetected)")
	}
	// The presence reader lives inside the middle cell.
	adj := dg.CellsAdjacentTo(3)
	if len(adj) != 1 || adj[0] != midCell {
		t.Errorf("presence reader adjacency = %v, want [%d]", adj, midCell)
	}
	// The directed pair is registered and resolvable in both orders.
	if _, ok := dep.PairFor(0, 1); !ok {
		t.Error("PairFor(0,1) not found")
	}
	if _, ok := dep.PairFor(1, 0); !ok {
		t.Error("PairFor(1,0) not found")
	}
	if _, ok := dep.PairFor(0, 2); ok {
		t.Error("PairFor(0,2) should not exist")
	}
}

func TestAddDirectedPairValidation(t *testing.T) {
	_, dep := corridor(t)
	if err := dep.AddDirectedPair(0, 0); err == nil {
		t.Error("same-reader pair accepted")
	}
	if err := dep.AddDirectedPair(0, 99); err == nil {
		t.Error("unknown reader accepted")
	}
	presDep := rfid.NewDeployment([]rfid.Reader{
		{Pos: geom.Pt(0, 0), Range: 1},
		{Pos: geom.Pt(5, 0), Range: 1, Kind: rfid.Presence},
	})
	if err := presDep.AddDirectedPair(0, 1); err == nil {
		t.Error("presence reader in pair accepted")
	}
}

func TestReachableNodeDistsBlocked(t *testing.T) {
	g, dep := corridor(t)
	dg := MustBuild(g, dep)
	// Seed at the west end: distances east of reader 0 must be unreachable.
	westLoc := g.NearestLocation(geom.Pt(0, 10))
	e := g.Edge(westLoc.Edge)
	seeds := map[int]float64{int(e.A): 0}
	dist := dg.ReachableNodeDists(seeds)
	reachedFar := false
	for _, f := range dg.Fragments() {
		if f.Blocking {
			continue
		}
		mid := g.Point(walkgraph.Location{Edge: f.Edge, Offset: (f.Lo + f.Hi) / 2})
		if mid.X > 12 && (dist[f.A] < math.Inf(1) || dist[f.B] < math.Inf(1)) {
			reachedFar = true
		}
	}
	if reachedFar {
		t.Error("Dijkstra leaked past a blocking fragment")
	}
}

func TestReaderKindString(t *testing.T) {
	if rfid.Partitioning.String() != "partitioning" || rfid.Presence.String() != "presence" {
		t.Error("kind strings")
	}
	if rfid.ReaderKind(9).String() == "" {
		t.Error("unknown kind string empty")
	}
}
