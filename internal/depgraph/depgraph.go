// Package depgraph constructs the paper's deployment graph (Section 3.3,
// following Jensen et al. [9]): the indoor space is partitioned into cells —
// maximal regions an object can roam without being detected by any
// positioning device — and the devices form the edges separating them.
//
// The construction is realized on the indoor walking graph: every walking
// edge is cut at the boundaries of reader-covered intervals, producing a
// fragment graph. Fragments covered by partitioning readers cannot be
// traversed undetected and separate cells; fragments covered by presence
// readers sense but do not partition. Cells are the connected components of
// the traversable fragments.
package depgraph

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/floorplan"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/walkgraph"
)

// FragID indexes a fragment of the deployment graph.
type FragID int

// Fragment is a maximal piece of a walking-graph edge covered by at most one
// reader.
type Fragment struct {
	ID   FragID
	Edge walkgraph.EdgeID
	// Lo and Hi are the offsets bounding the fragment on its edge.
	Lo, Hi float64
	// Reader covers this fragment, or model.NoReader for free fragments.
	Reader model.ReaderID
	// Blocking marks fragments that cannot be traversed undetected
	// (covered by a partitioning reader).
	Blocking bool
	// A and B are the fragment-graph node indices at the Lo and Hi ends.
	// Nodes 0..NumWalkNodes-1 coincide with walking-graph nodes; higher
	// indices are interior cut points.
	A, B int
}

// Length returns the fragment's length in meters.
func (f Fragment) Length() float64 { return f.Hi - f.Lo }

// CellID identifies a deployment-graph cell.
type CellID int

// NoCell marks locations inside a blocking fragment (covered space belongs
// to its device, not to any cell).
const NoCell CellID = -1

// Cell is one deployment-graph cell: everything reachable without being
// detected by a partitioning device.
type Cell struct {
	ID CellID
	// Fragments lists the traversable fragments composing the cell.
	Fragments []FragID
	// Rooms lists the rooms opening into the cell.
	Rooms []floorplan.RoomID
	// HallwayLength is the total free hallway centerline length.
	HallwayLength float64
	// Area is the cell's floor area: hallway strips plus room areas.
	Area float64
}

// Graph is the deployment graph of a reader deployment over a walking graph.
type Graph struct {
	g   *walkgraph.Graph
	dep *rfid.Deployment

	frags    []Fragment
	incident [][]FragID
	byReader map[model.ReaderID][]FragID
	byEdge   [][]FragID
	numNodes int

	cells      []Cell
	cellOfFrag []CellID
	// readerCells maps every reader to the cells its covered fragments
	// touch (the deployment-graph edges incident to that device).
	readerCells map[model.ReaderID][]CellID
}

// Build constructs the deployment graph.
func Build(g *walkgraph.Graph, dep *rfid.Deployment) (*Graph, error) {
	dg := &Graph{
		g:           g,
		dep:         dep,
		byReader:    make(map[model.ReaderID][]FragID),
		byEdge:      make([][]FragID, g.NumEdges()),
		numNodes:    g.NumNodes(),
		readerCells: make(map[model.ReaderID][]CellID),
	}
	if err := dg.buildFragments(); err != nil {
		return nil, err
	}
	dg.buildCells()
	return dg, nil
}

// MustBuild is Build for known-valid inputs.
func MustBuild(g *walkgraph.Graph, dep *rfid.Deployment) *Graph {
	dg, err := Build(g, dep)
	if err != nil {
		panic(err)
	}
	return dg
}

type covered struct {
	lo, hi float64
	reader model.ReaderID
}

func (dg *Graph) buildFragments() error {
	g := dg.g
	for _, e := range g.Edges() {
		seg := g.EdgeSegment(e.ID)
		var covs []covered
		if e.Kind == walkgraph.LinkEdge {
			// Stairwells are walled off: no reader coverage applies.
			dg.emit(e.ID, 0, e.Length, model.NoReader, int(e.A), int(e.B))
			continue
		}
		for _, r := range dg.dep.Readers() {
			t0, t1, ok := r.Circle().SegmentIntersection(seg)
			if !ok {
				continue
			}
			lo, hi := t0*e.Length, t1*e.Length
			// Walls block reads: only the hallway-side portion of a door
			// edge can be covered.
			if e.Kind == walkgraph.DoorEdge && hi > e.DoorAt {
				hi = e.DoorAt
			}
			if hi-lo <= 1e-9 {
				continue
			}
			covs = append(covs, covered{lo: lo, hi: hi, reader: r.ID})
		}
		sort.Slice(covs, func(i, j int) bool { return covs[i].lo < covs[j].lo })
		// Clip overlaps between readers (normally disjoint; earlier wins).
		for i := 1; i < len(covs); i++ {
			if covs[i].lo < covs[i-1].hi {
				covs[i].lo = covs[i-1].hi
			}
		}

		cursor := 0.0
		prevNode := int(e.A)
		for _, cv := range covs {
			if cv.hi <= cv.lo {
				continue
			}
			if cv.lo > cursor+1e-9 {
				prevNode = dg.emit(e.ID, cursor, cv.lo, model.NoReader, prevNode, -1)
				cursor = cv.lo
			}
			endNode := -1
			if e.Length-cv.hi <= 1e-9 {
				endNode = int(e.B)
			}
			prevNode = dg.emit(e.ID, cursor, cv.hi, cv.reader, prevNode, endNode)
			cursor = cv.hi
		}
		if e.Length-cursor > 1e-9 || len(dg.byEdge[e.ID]) == 0 {
			dg.emit(e.ID, cursor, e.Length, model.NoReader, prevNode, int(e.B))
		}
	}
	dg.incident = make([][]FragID, dg.numNodes)
	for _, f := range dg.frags {
		dg.incident[f.A] = append(dg.incident[f.A], f.ID)
		dg.incident[f.B] = append(dg.incident[f.B], f.ID)
	}
	if len(dg.frags) == 0 {
		return fmt.Errorf("depgraph: empty fragment graph")
	}
	return nil
}

func (dg *Graph) emit(e walkgraph.EdgeID, lo, hi float64, reader model.ReaderID, startNode, endNode int) int {
	if endNode < 0 {
		endNode = dg.numNodes
		dg.numNodes++
	}
	blocking := false
	if reader != model.NoReader {
		blocking = dg.dep.Reader(reader).Kind == rfid.Partitioning
	}
	f := Fragment{
		ID:       FragID(len(dg.frags)),
		Edge:     e,
		Lo:       lo,
		Hi:       hi,
		Reader:   reader,
		Blocking: blocking,
		A:        startNode,
		B:        endNode,
	}
	dg.frags = append(dg.frags, f)
	dg.byEdge[e] = append(dg.byEdge[e], f.ID)
	if reader != model.NoReader {
		dg.byReader[reader] = append(dg.byReader[reader], f.ID)
	}
	return endNode
}

// buildCells labels the connected components of traversable fragments and
// computes per-cell geometry, then derives the reader-to-cells adjacency.
func (dg *Graph) buildCells() {
	dg.cellOfFrag = make([]CellID, len(dg.frags))
	for i := range dg.cellOfFrag {
		dg.cellOfFrag[i] = NoCell
	}
	plan := dg.g.Plan()
	for _, f := range dg.frags {
		if f.Blocking || dg.cellOfFrag[f.ID] != NoCell {
			continue
		}
		id := CellID(len(dg.cells))
		cell := Cell{ID: id}
		roomSeen := make(map[floorplan.RoomID]bool)
		// BFS over traversable fragments.
		queue := []FragID{f.ID}
		dg.cellOfFrag[f.ID] = id
		for len(queue) > 0 {
			cur := dg.frags[queue[0]]
			queue = queue[1:]
			cell.Fragments = append(cell.Fragments, cur.ID)
			e := dg.g.Edge(cur.Edge)
			switch e.Kind {
			case walkgraph.HallwayEdge:
				cell.HallwayLength += cur.Length()
				cell.Area += cur.Length() * plan.Hallway(e.Hallway).Width
			case walkgraph.DoorEdge:
				if cur.Hi >= e.DoorAt && !roomSeen[e.Room] {
					roomSeen[e.Room] = true
					cell.Rooms = append(cell.Rooms, e.Room)
					cell.Area += plan.Room(e.Room).Area()
				}
			}
			for _, n := range []int{cur.A, cur.B} {
				for _, next := range dg.incident[n] {
					nf := dg.frags[next]
					if nf.Blocking || dg.cellOfFrag[next] != NoCell {
						continue
					}
					dg.cellOfFrag[next] = id
					queue = append(queue, next)
				}
			}
		}
		sort.Slice(cell.Rooms, func(i, j int) bool { return cell.Rooms[i] < cell.Rooms[j] })
		dg.cells = append(dg.cells, cell)
	}

	// Reader adjacency: the cells touched by each reader's fragments.
	for reader, fids := range dg.byReader {
		seen := make(map[CellID]bool)
		for _, fid := range fids {
			f := dg.frags[fid]
			if !f.Blocking {
				// Presence fragments belong to a cell themselves.
				if c := dg.cellOfFrag[fid]; c != NoCell && !seen[c] {
					seen[c] = true
				}
				continue
			}
			for _, n := range []int{f.A, f.B} {
				for _, next := range dg.incident[n] {
					if c := dg.cellOfFrag[next]; c != NoCell && !seen[c] {
						seen[c] = true
					}
				}
			}
		}
		cells := make([]CellID, 0, len(seen))
		for c := range seen {
			cells = append(cells, c)
		}
		sort.Slice(cells, func(i, j int) bool { return cells[i] < cells[j] })
		dg.readerCells[reader] = cells
	}
}

// WalkGraph returns the underlying walking graph.
func (dg *Graph) WalkGraph() *walkgraph.Graph { return dg.g }

// Deployment returns the underlying reader deployment.
func (dg *Graph) Deployment() *rfid.Deployment { return dg.dep }

// Fragments returns all fragments indexed by FragID. Must not be modified.
func (dg *Graph) Fragments() []Fragment { return dg.frags }

// Fragment returns one fragment.
func (dg *Graph) Fragment(id FragID) Fragment { return dg.frags[id] }

// OnEdge returns the fragments of a walking-graph edge, ordered by Lo.
func (dg *Graph) OnEdge(e walkgraph.EdgeID) []FragID { return dg.byEdge[e] }

// OfReader returns the fragments covered by a reader.
func (dg *Graph) OfReader(r model.ReaderID) []FragID { return dg.byReader[r] }

// Incident returns the fragments touching a fragment-graph node.
func (dg *Graph) Incident(node int) []FragID { return dg.incident[node] }

// NumNodes returns the fragment-graph node count.
func (dg *Graph) NumNodes() int { return dg.numNodes }

// Cells returns all cells indexed by CellID. Must not be modified.
func (dg *Graph) Cells() []Cell { return dg.cells }

// Cell returns one cell.
func (dg *Graph) Cell(id CellID) Cell { return dg.cells[id] }

// CellOfFragment returns the cell containing a fragment (NoCell for
// blocking fragments).
func (dg *Graph) CellOfFragment(f FragID) CellID { return dg.cellOfFrag[f] }

// CellAt returns the cell containing a walking-graph location, or NoCell
// when the location is inside a partitioning reader's covered interval.
func (dg *Graph) CellAt(loc walkgraph.Location) CellID {
	loc = dg.g.Clamp(loc)
	for _, fid := range dg.byEdge[loc.Edge] {
		f := dg.frags[fid]
		if loc.Offset >= f.Lo-1e-9 && loc.Offset <= f.Hi+1e-9 {
			return dg.cellOfFrag[fid]
		}
	}
	return NoCell
}

// CellsAdjacentTo returns the cells separated or sensed by a reader: for a
// partitioning device, the cells on its sides; for a presence device, the
// cell containing it.
func (dg *Graph) CellsAdjacentTo(r model.ReaderID) []CellID { return dg.readerCells[r] }

// ReachableNodeDists runs Dijkstra over traversable fragments from the given
// seed nodes (with initial distances), returning per-node shortest distances.
// Blocking fragments are never traversed.
func (dg *Graph) ReachableNodeDists(seeds map[int]float64) []float64 {
	dist := make([]float64, dg.numNodes)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	inQueue := make(map[int]bool)
	for n, d := range seeds {
		if d < dist[n] {
			dist[n] = d
			inQueue[n] = true
		}
	}
	for len(inQueue) > 0 {
		best, bestD := -1, math.Inf(1)
		for n := range inQueue {
			if dist[n] < bestD {
				best, bestD = n, dist[n]
			}
		}
		delete(inQueue, best)
		for _, fid := range dg.incident[best] {
			f := dg.frags[fid]
			if f.Blocking {
				continue
			}
			other := f.A
			if other == best {
				other = f.B
			}
			if nd := bestD + f.Length(); nd < dist[other] {
				dist[other] = nd
				inQueue[other] = true
			}
		}
	}
	return dist
}
