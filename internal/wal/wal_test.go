package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/ingest"
	"repro/internal/model"
)

// collect opens the log and gathers every replayed record.
func collect(t *testing.T, dir string, opts Options) (*Log, OpenReport, []Rec) {
	t.Helper()
	var recs []Rec
	l, rep, err := Open(dir, opts, func(seq uint64, payload []byte) error {
		recs = append(recs, Rec{Seq: seq, Payload: append([]byte(nil), payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rep, recs
}

func TestAppendReopenRoundtrip(t *testing.T) {
	dir := t.TempDir()
	opts := Options{StreamID: 42}
	l, rep, _ := collect(t, dir, opts)
	if rep.Records != 0 || rep.Segments != 0 {
		t.Fatalf("fresh dir: unexpected report %+v", rep)
	}
	var want []Rec
	for seq := uint64(1); seq <= 25; seq++ {
		payload := []byte(fmt.Sprintf("record-%d", seq))
		if err := l.Append(seq, payload); err != nil {
			t.Fatalf("Append(%d): %v", seq, err)
		}
		want = append(want, Rec{Seq: seq, Payload: payload})
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rep2, got := collect(t, dir, opts)
	defer l2.Close()
	if rep2.Records != 25 || rep2.LastSeq != 25 || rep2.Corrupt || rep2.TruncatedBytes != 0 {
		t.Fatalf("reopen report %+v", rep2)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("record %d: got (%d, %q), want (%d, %q)", i, got[i].Seq, got[i].Payload, want[i].Seq, want[i].Payload)
		}
	}
	// Appends continue after the recovered tail.
	if err := l2.Append(25, []byte("x")); err == nil {
		t.Fatal("Append with stale seq succeeded")
	}
	if err := l2.Append(26, []byte("x")); err != nil {
		t.Fatalf("Append(26): %v", err)
	}
}

func TestRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	opts := Options{StreamID: 1, SegmentBytes: 128}
	l, _, _ := collect(t, dir, opts)
	payload := bytes.Repeat([]byte("p"), 40) // 56 bytes per record with framing
	for seq := uint64(1); seq <= 10; seq++ {
		if err := l.Append(seq, payload); err != nil {
			t.Fatalf("Append(%d): %v", seq, err)
		}
	}
	if l.Segments() < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", l.Segments())
	}
	segsBefore := l.Segments()
	// Pruning up to seq 5 must keep every record >= 6 replayable.
	if _, err := l.PruneSegments(5); err != nil {
		t.Fatalf("PruneSegments: %v", err)
	}
	if l.Segments() >= segsBefore {
		t.Fatalf("prune removed nothing (%d segments)", l.Segments())
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, rep, recs := collect(t, dir, opts)
	defer l2.Close()
	if rep.LastSeq != 10 {
		t.Fatalf("after prune, LastSeq = %d, want 10", rep.LastSeq)
	}
	for _, r := range recs {
		if r.Seq > 5 {
			return // records past the prune bound survived
		}
	}
	t.Fatal("no record past the prune bound survived")
}

// TestCrashAtEveryOffset is the framing-level crash property: truncating the
// log at ANY byte offset must recover exactly the records whose bytes fully
// survive, without error or panic, and leave the log appendable.
func TestCrashAtEveryOffset(t *testing.T) {
	dir := t.TempDir()
	opts := Options{StreamID: 7}
	l, _, _ := collect(t, dir, opts)
	type mark struct {
		end  int64
		recs int
	}
	var marks []mark
	var end int64 = segHeaderSize
	for seq := uint64(1); seq <= 12; seq++ {
		payload := bytes.Repeat([]byte{byte(seq)}, int(seq)*3)
		if err := l.Append(seq, payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
		end += recHeaderSize + int64(len(payload))
		marks = append(marks, mark{end: end, recs: int(seq)})
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := SegmentInfos(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("want a single segment, got %v (%v)", segs, err)
	}
	full, err := os.ReadFile(segs[0].Path)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	if int64(len(full)) != end {
		t.Fatalf("segment size %d, expected %d", len(full), end)
	}

	for off := int64(0); off <= int64(len(full)); off++ {
		wantRecs := 0
		for _, m := range marks {
			if m.end <= off {
				wantRecs = m.recs
			}
		}
		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, filepath.Base(segs[0].Path)), full[:off], 0o644); err != nil {
			t.Fatalf("write truncated copy: %v", err)
		}
		got := 0
		var lastSeq uint64
		l2, rep, err := Open(cdir, opts, func(seq uint64, payload []byte) error {
			got++
			lastSeq = seq
			return nil
		})
		if err != nil {
			t.Fatalf("offset %d: Open: %v", off, err)
		}
		if got != wantRecs || rep.Records != wantRecs {
			t.Fatalf("offset %d: recovered %d records (report %d), want %d", off, got, rep.Records, wantRecs)
		}
		if wantRecs > 0 && lastSeq != uint64(wantRecs) {
			t.Fatalf("offset %d: last seq %d, want %d", off, lastSeq, wantRecs)
		}
		// The log must accept appends from the recovered position.
		if err := l2.Append(uint64(wantRecs)+1, []byte("post-crash")); err != nil {
			t.Fatalf("offset %d: post-recovery append: %v", off, err)
		}
		l2.Close()
	}
}

func TestCorruptionMidSegmentTruncates(t *testing.T) {
	dir := t.TempDir()
	opts := Options{StreamID: 3}
	l, _, _ := collect(t, dir, opts)
	for seq := uint64(1); seq <= 8; seq++ {
		if err := l.Append(seq, bytes.Repeat([]byte("d"), 32)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, _ := SegmentInfos(dir)
	data, err := os.ReadFile(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of record 4 (records are 48 bytes each).
	off := segHeaderSize + 3*48 + recHeaderSize + 5
	data[off] ^= 0xff
	if err := os.WriteFile(segs[0].Path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rep, recs := collect(t, dir, opts)
	defer l2.Close()
	if len(recs) != 3 || rep.Records != 3 || rep.LastSeq != 3 {
		t.Fatalf("recovered %d records (report %+v), want 3", len(recs), rep)
	}
	if !rep.Corrupt || rep.TruncatedBytes == 0 {
		t.Fatalf("corruption not reported: %+v", rep)
	}
	// The repair is persistent: a second open sees a clean 3-record log.
	l2.Close()
	l3, rep3, _ := collect(t, dir, opts)
	defer l3.Close()
	if rep3.Records != 3 || rep3.Corrupt || rep3.TruncatedBytes != 0 {
		t.Fatalf("repair not persistent: %+v", rep3)
	}
}

func TestCorruptionOrphansLaterSegments(t *testing.T) {
	dir := t.TempDir()
	opts := Options{StreamID: 3, SegmentBytes: 100}
	l, _, _ := collect(t, dir, opts)
	for seq := uint64(1); seq <= 6; seq++ {
		if err := l.Append(seq, bytes.Repeat([]byte("d"), 40)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, _ := SegmentInfos(dir)
	if len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(segs))
	}
	// Corrupt the FIRST segment's first record: everything after is
	// unreachable and must be removed, leaving a clean empty log tail.
	data, _ := os.ReadFile(segs[0].Path)
	data[segHeaderSize+recHeaderSize] ^= 0xff
	os.WriteFile(segs[0].Path, data, 0o644)

	l2, rep, recs := collect(t, dir, opts)
	defer l2.Close()
	if len(recs) != 0 {
		t.Fatalf("recovered %d records, want 0", len(recs))
	}
	if rep.RemovedSegments != len(segs)-1 {
		t.Fatalf("removed %d orphaned segments, want %d", rep.RemovedSegments, len(segs)-1)
	}
	if !rep.Corrupt {
		t.Fatalf("corruption not flagged: %+v", rep)
	}
}

func TestStreamMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{StreamID: 1})
	if err := l.Append(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, _, err := Open(dir, Options{StreamID: 2}, func(seq uint64, payload []byte) error {
		t.Fatal("record of a foreign stream was replayed")
		return nil
	})
	var me *MismatchError
	if !errors.As(err, &me) {
		t.Fatalf("Open returned %v, want *MismatchError", err)
	}
	if me.Want != 2 || me.Got != 1 {
		t.Fatalf("mismatch detail %+v", me)
	}
}

func TestSnapshotStore(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("snap"), 100)
	if _, err := WriteSnapshot(dir, 9, 100, payload); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if _, err := WriteSnapshot(dir, 9, 200, []byte("newer")); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	seq, got, ok, skipped, err := ReadLatestSnapshot(dir, 9)
	if err != nil || !ok || skipped != 0 {
		t.Fatalf("ReadLatestSnapshot: ok=%v skipped=%d err=%v", ok, skipped, err)
	}
	if seq != 200 || string(got) != "newer" {
		t.Fatalf("got (%d, %q)", seq, got)
	}

	// Corrupt the newest: the store falls back to the older snapshot.
	snaps, _ := ListSnapshots(dir)
	data, _ := os.ReadFile(snaps[1].Path)
	data[len(data)-1] ^= 0xff
	os.WriteFile(snaps[1].Path, data, 0o644)
	seq, got, ok, skipped, err = ReadLatestSnapshot(dir, 9)
	if err != nil || !ok || skipped != 1 {
		t.Fatalf("fallback: ok=%v skipped=%d err=%v", ok, skipped, err)
	}
	if seq != 100 || !bytes.Equal(got, payload) {
		t.Fatalf("fallback got (%d, %d bytes)", seq, len(got))
	}

	// Stream mismatch is fatal, not a fallback.
	_, _, _, _, err = ReadLatestSnapshot(dir, 8)
	var me *MismatchError
	if !errors.As(err, &me) {
		t.Fatalf("mismatched stream returned %v, want *MismatchError", err)
	}

	// Prune keeps the newest and reports the safe segment bound.
	if _, err := WriteSnapshot(dir, 9, 300, []byte("third")); err != nil {
		t.Fatal(err)
	}
	oldest, removed, err := PruneSnapshots(dir, 2)
	if err != nil {
		t.Fatalf("PruneSnapshots: %v", err)
	}
	if removed != 1 || oldest != 200 {
		t.Fatalf("prune removed=%d oldest=%d", removed, oldest)
	}
}

func TestBatchCodecRoundtrip(t *testing.T) {
	b := Batch{
		Time:    77,
		MaxSeen: 81,
		Forced:  3,
		Drops: ingest.Drops{
			LateBatches: 1, LateReadings: 2, DuplicateDeliveries: 3, DuplicateReadings: 4,
			MisstampedReadings: 5, InvalidReadings: 6, GapSeconds: 7,
		},
		Readings: []model.RawReading{
			{Object: 1, Reader: 2, Time: 77},
			{Object: 9, Reader: model.NoReader, Time: 77},
		},
	}
	enc := b.Encode(nil)
	if len(enc) != b.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(enc), b.EncodedSize())
	}
	got, err := DecodeBatch(enc)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if !reflect.DeepEqual(b, got) {
		t.Fatalf("roundtrip mismatch:\n  in  %+v\n  out %+v", b, got)
	}
	// Empty readings stay nil-safe.
	empty := Batch{Time: 1, MaxSeen: 1}
	got, err = DecodeBatch(empty.Encode(nil))
	if err != nil || len(got.Readings) != 0 {
		t.Fatalf("empty batch roundtrip: %v %+v", err, got)
	}
	if _, err := DecodeBatch([]byte{recBatch, 1, 2}); err == nil {
		t.Fatal("short batch decoded without error")
	}
	if _, err := DecodeBatch([]byte{99}); err == nil {
		t.Fatal("unknown record type decoded without error")
	}
}

func TestSyncPolicyParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"interval", SyncInterval}, {"off", SyncOff}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy parsed without error")
	}
}

// TestTruncateTo drops a ragged tail at every possible cut point of a
// multi-segment log and verifies the surviving prefix replays exactly, the
// reported byte count matches the on-disk shrinkage, and the log stays
// appendable from the cut.
func TestTruncateTo(t *testing.T) {
	const n = 10
	payload := bytes.Repeat([]byte("p"), 40)
	for cut := uint64(0); cut <= n; cut++ {
		dir := t.TempDir()
		opts := Options{StreamID: 9, SegmentBytes: 128}
		l, _, _ := collect(t, dir, opts)
		for seq := uint64(1); seq <= n; seq++ {
			if err := l.Append(seq, payload); err != nil {
				t.Fatalf("Append(%d): %v", seq, err)
			}
		}
		sizeBefore := dirBytes(t, dir)
		removed, err := l.TruncateTo(cut)
		if err != nil {
			t.Fatalf("TruncateTo(%d): %v", cut, err)
		}
		if got := l.LastSeq(); got != cut {
			t.Fatalf("TruncateTo(%d): LastSeq = %d", cut, got)
		}
		if want := sizeBefore - dirBytes(t, dir); removed != want {
			t.Fatalf("TruncateTo(%d): reported %d bytes removed, disk shrank by %d", cut, removed, want)
		}
		if cut < n && removed <= 0 {
			t.Fatalf("TruncateTo(%d): removed %d bytes, want > 0", cut, removed)
		}
		// The log must accept the next sequence straight away...
		if err := l.Append(cut+1, []byte("resume")); err != nil {
			t.Fatalf("Append(%d) after truncate: %v", cut+1, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		// ...and a reopen must see the prefix plus the resumed record.
		l2, rep, recs := collect(t, dir, opts)
		if rep.Corrupt {
			t.Fatalf("cut=%d: reopen reports corruption: %+v", cut, rep)
		}
		if rep.LastSeq != cut+1 {
			t.Fatalf("cut=%d: reopen LastSeq = %d, want %d", cut, rep.LastSeq, cut+1)
		}
		for i, r := range recs {
			if r.Seq != uint64(i)+1 {
				t.Fatalf("cut=%d: record %d has seq %d", cut, i, r.Seq)
			}
			want := payload
			if r.Seq == cut+1 {
				want = []byte("resume")
			}
			if !bytes.Equal(r.Payload, want) {
				t.Fatalf("cut=%d: record seq %d payload %q", cut, r.Seq, r.Payload)
			}
		}
		if len(recs) != int(cut)+1 {
			t.Fatalf("cut=%d: replayed %d records, want %d", cut, len(recs), cut+1)
		}
		l2.Close()
	}
}

// TestTruncateToNoop verifies TruncateTo at or past the tail changes nothing.
func TestTruncateToNoop(t *testing.T) {
	dir := t.TempDir()
	opts := Options{StreamID: 9}
	l, _, _ := collect(t, dir, opts)
	for seq := uint64(1); seq <= 3; seq++ {
		if err := l.Append(seq, []byte("x")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	for _, cut := range []uint64{3, 4, 100} {
		removed, err := l.TruncateTo(cut)
		if err != nil || removed != 0 {
			t.Fatalf("TruncateTo(%d) = (%d, %v), want no-op", cut, removed, err)
		}
	}
	if l.LastSeq() != 3 {
		t.Fatalf("LastSeq = %d after no-op truncations", l.LastSeq())
	}
	l.Close()
}

// dirBytes sums the size of every file under dir.
func dirBytes(t *testing.T, dir string) int64 {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var total int64
	for _, e := range ents {
		info, err := e.Info()
		if err != nil {
			t.Fatalf("Info: %v", err)
		}
		total += info.Size()
	}
	return total
}
