package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Snapshot file layout: a 36-byte header (magic "RSNP", format version,
// stream ID, last covered record seq, payload length, payload CRC-32)
// followed by the opaque payload the engine encoded. Snapshots are written
// to a temp file, fsynced, and renamed into place, so a crash mid-write
// never leaves a readable-but-partial snapshot under the final name.

const snapHeaderSize = 4 + 4 + 8 + 8 + 8 + 4

// SnapshotInfo describes one snapshot file on disk.
type SnapshotInfo struct {
	Path string
	Seq  uint64
	Size int64
}

// WriteSnapshot atomically writes a snapshot covering every record up to and
// including seq.
func WriteSnapshot(dir string, streamID, seq uint64, payload []byte) (string, error) {
	return WriteSnapshotFS(OS, dir, streamID, seq, payload)
}

// WriteSnapshotFS is WriteSnapshot through an injectable filesystem.
func WriteSnapshotFS(fsys FS, dir string, streamID, seq uint64, payload []byte) (string, error) {
	fsys = fsOrOS(fsys)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("wal: create dir: %w", err)
	}
	final := filepath.Join(dir, fmt.Sprintf("%s%020d%s", snapPrefix, seq, snapSuffix))
	tmp := final + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", fmt.Errorf("wal: create snapshot: %w", err)
	}
	var hdr [snapHeaderSize]byte
	copy(hdr[0:4], snapMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], Version)
	binary.LittleEndian.PutUint64(hdr[8:16], streamID)
	binary.LittleEndian.PutUint64(hdr[16:24], seq)
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[32:36], crc32.ChecksumIEEE(payload))
	_, err = f.Write(hdr[:])
	if err == nil {
		_, err = f.Write(payload)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fsys.Remove(tmp)
		return "", fmt.Errorf("wal: write snapshot: %w", err)
	}
	if err := fsys.Rename(tmp, final); err != nil {
		fsys.Remove(tmp)
		return "", fmt.Errorf("wal: commit snapshot: %w", err)
	}
	// Best-effort directory sync so the rename itself is durable.
	if d, err := fsys.OpenFile(dir, os.O_RDONLY, 0); err == nil {
		d.Sync()
		d.Close()
	}
	return final, nil
}

// ListSnapshots returns the snapshot files in dir, ascending by covered
// sequence number. Leftover temp files and unparsable names are ignored.
func ListSnapshots(dir string) ([]SnapshotInfo, error) {
	return ListSnapshotsFS(OS, dir)
}

// ListSnapshotsFS is ListSnapshots through an injectable filesystem.
func ListSnapshotsFS(fsys FS, dir string) ([]SnapshotInfo, error) {
	ents, err := fsOrOS(fsys).ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: list snapshots: %w", err)
	}
	var out []SnapshotInfo
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		var seq uint64
		core := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
		if _, err := fmt.Sscanf(core, "%d", &seq); err != nil {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		out = append(out, SnapshotInfo{Path: filepath.Join(dir, name), Seq: seq, Size: info.Size()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// ReadSnapshotFile reads and verifies one snapshot file. A zero streamID in
// the file or an expected streamID of 0 is still checked: the caller passes
// the identity it requires and a mismatch returns *MismatchError. Corruption
// (bad magic, short file, CRC failure) returns an error that is NOT a
// MismatchError, so callers can fall back to an older snapshot.
func ReadSnapshotFile(path string, streamID uint64) (seq uint64, payload []byte, err error) {
	return ReadSnapshotFileFS(OS, path, streamID)
}

// ReadSnapshotFileFS is ReadSnapshotFile through an injectable filesystem.
func ReadSnapshotFileFS(fsys FS, path string, streamID uint64) (seq uint64, payload []byte, err error) {
	f, err := fsOrOS(fsys).OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return 0, nil, fmt.Errorf("wal: open snapshot: %w", err)
	}
	defer f.Close()
	var hdr [snapHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("wal: snapshot %s: short header", path)
	}
	if string(hdr[0:4]) != snapMagic {
		return 0, nil, fmt.Errorf("wal: snapshot %s: bad magic", path)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != Version {
		return 0, nil, fmt.Errorf("wal: snapshot %s: unsupported format version %d (want %d)", path, v, Version)
	}
	if got := binary.LittleEndian.Uint64(hdr[8:16]); got != streamID {
		return 0, nil, &MismatchError{Path: path, Want: streamID, Got: got}
	}
	seq = binary.LittleEndian.Uint64(hdr[16:24])
	n := binary.LittleEndian.Uint64(hdr[24:32])
	if n > maxSnapshotPayload {
		return 0, nil, fmt.Errorf("wal: snapshot %s: implausible payload length %d", path, n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(f, payload); err != nil {
		return 0, nil, fmt.Errorf("wal: snapshot %s: short payload", path)
	}
	if crc := crc32.ChecksumIEEE(payload); crc != binary.LittleEndian.Uint32(hdr[32:36]) {
		return 0, nil, fmt.Errorf("wal: snapshot %s: payload CRC mismatch", path)
	}
	return seq, payload, nil
}

// maxSnapshotPayload bounds snapshot payloads against corrupt length fields.
const maxSnapshotPayload = 1 << 31

// ReadLatestSnapshot returns the newest verifiable snapshot in dir. Corrupt
// snapshots are skipped (newest first) and counted; a stream-identity
// mismatch is fatal and returned immediately. ok is false when no usable
// snapshot exists (not an error: a fresh or snapshot-less log).
func ReadLatestSnapshot(dir string, streamID uint64) (seq uint64, payload []byte, ok bool, skipped int, err error) {
	return ReadLatestSnapshotFS(OS, dir, streamID)
}

// ReadLatestSnapshotFS is ReadLatestSnapshot through an injectable
// filesystem.
func ReadLatestSnapshotFS(fsys FS, dir string, streamID uint64) (seq uint64, payload []byte, ok bool, skipped int, err error) {
	fsys = fsOrOS(fsys)
	snaps, err := ListSnapshotsFS(fsys, dir)
	if err != nil {
		return 0, nil, false, 0, err
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		seq, payload, rerr := ReadSnapshotFileFS(fsys, snaps[i].Path, streamID)
		if rerr == nil {
			return seq, payload, true, skipped, nil
		}
		var me *MismatchError
		if errors.As(rerr, &me) {
			return 0, nil, false, skipped, rerr
		}
		skipped++
	}
	return 0, nil, false, skipped, nil
}

// PruneSnapshots removes all but the newest keep snapshots. It returns the
// covered seq of the oldest snapshot kept (0 when none remain), which is the
// safe bound for Log.PruneSegments: segments below it are redundant for
// every retained snapshot.
func PruneSnapshots(dir string, keep int) (oldestKept uint64, removed int, err error) {
	return PruneSnapshotsFS(OS, dir, keep)
}

// PruneSnapshotsFS is PruneSnapshots through an injectable filesystem.
func PruneSnapshotsFS(fsys FS, dir string, keep int) (oldestKept uint64, removed int, err error) {
	fsys = fsOrOS(fsys)
	if keep < 1 {
		keep = 1
	}
	snaps, err := ListSnapshotsFS(fsys, dir)
	if err != nil {
		return 0, 0, err
	}
	for len(snaps) > keep {
		if err := fsys.Remove(snaps[0].Path); err != nil {
			return 0, removed, fmt.Errorf("wal: prune snapshot: %w", err)
		}
		snaps = snaps[1:]
		removed++
	}
	if len(snaps) > 0 {
		oldestKept = snaps[0].Seq
	}
	return oldestKept, removed, nil
}
