// Package wal implements the crash-safe durability substrate of the system:
// a segmented, CRC-checksummed write-ahead log of acked per-second reading
// batches, plus an atomic snapshot store, so a restarted process recovers by
// loading the newest snapshot and replaying the bounded WAL suffix instead of
// the full reading history.
//
// The package deals in framing and files only; the engine owns record
// semantics (what a batch means, what a snapshot payload contains). Both
// layers share one invariant: every byte that can be misread is covered by a
// CRC, and a torn or corrupt tail truncates the log — recovery never panics
// on bad input and never silently skips over it.
//
// On-disk layout (DESIGN.md §11):
//
//	<dir>/
//	  00000000000000000001.wal   segment, named by its first record's seq
//	  00000000000000004096.wal
//	  snap-00000000000000003000.snap
//
// Segment file = 16-byte header (magic "RWAL", format version, stream ID)
// followed by records. Record = 16-byte frame (payload length u32, CRC-32
// u32 over seq+payload, seq u64) + payload. Sequence numbers are assigned by
// the caller and must be strictly increasing across the whole log.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

const (
	segMagic  = "RWAL"
	snapMagic = "RSNP"
	// Version is the on-disk format version written to every segment and
	// snapshot header. Readers refuse other versions.
	Version = 1

	segHeaderSize = 16
	recHeaderSize = 16

	// maxPayload bounds a record's payload so a corrupt length field cannot
	// drive a multi-gigabyte allocation; anything larger is corruption.
	maxPayload = 64 << 20

	segSuffix  = ".wal"
	snapPrefix = "snap-"
	snapSuffix = ".snap"

	// DefaultSegmentBytes is the rotation threshold when Options leaves it 0.
	DefaultSegmentBytes = 8 << 20
)

// SyncPolicy selects when appended records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs before an append batch is acknowledged: an acked
	// batch survives any crash.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at a configurable wall-clock interval: a crash can
	// lose at most the last interval's acked batches.
	SyncInterval
	// SyncOff never fsyncs on the append path (the OS decides; Close still
	// syncs). Fastest, weakest.
	SyncOff
)

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the -fsync flag values "always", "interval", "off".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval, or off)", s)
	}
}

// MismatchError reports a stream-identity mismatch: the log or snapshot on
// disk was written for a different floor plan / deployment / seed than the
// one now opening it. Loading would silently mix incompatible state, so the
// open refuses instead.
type MismatchError struct {
	Path string
	Want uint64
	Got  uint64
}

// Error implements the error interface.
func (e *MismatchError) Error() string {
	return fmt.Sprintf("wal: %s belongs to stream %016x, not %016x: refusing to load", e.Path, e.Got, e.Want)
}

// Options parameterizes Open.
type Options struct {
	// StreamID identifies the logical stream (the engine hashes floor plan,
	// deployment, and seed into it). Segments and snapshots carry it in their
	// headers; a mismatch fails Open with *MismatchError.
	StreamID uint64
	// SegmentBytes is the rotation threshold. 0 means DefaultSegmentBytes.
	SegmentBytes int64
	// FS is the filesystem the log reads and writes through. nil means the
	// real OS filesystem; tests inject fault-wrapped filesystems.
	FS FS
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.FS == nil {
		o.FS = OS
	}
	return o
}

// OpenReport describes what Open found and repaired.
type OpenReport struct {
	// Segments is the number of segment files present after repair.
	Segments int
	// Records is the number of valid records replayed.
	Records int
	// FirstSeq and LastSeq bound the replayed records (0 when none).
	FirstSeq, LastSeq uint64
	// TruncatedBytes counts bytes discarded from a torn or CRC-failing tail.
	TruncatedBytes int64
	// RemovedSegments counts whole segment files discarded because they
	// followed a mid-log corruption (their records are unreachable once the
	// log loses framing sync).
	RemovedSegments int
	// Corrupt reports whether any truncation was due to a CRC failure or
	// framing damage rather than a clean end of log.
	Corrupt bool
}

// Log is an open write-ahead log positioned for appending. It is not safe
// for concurrent use; the engine serializes access under the server lock.
type Log struct {
	dir     string
	opts    Options
	f       File
	size    int64 // size of the active segment file
	lastSeq uint64
	dirty   bool // appended since the last sync
	closed  bool
	// segments tracks (firstSeq, path) for every live segment, ascending.
	segments []segmentRef
}

type segmentRef struct {
	firstSeq uint64
	path     string
}

// Open recovers the log in dir and opens it for appending. Every valid
// record is passed to replay in order before Open returns; a torn or
// CRC-failing record truncates the log at the last valid boundary (the file
// is repaired in place, later orphaned segments are removed) so appends
// continue from a consistent state. A replay error aborts the open. A nil
// replay opens (and repairs) the log at the framing layer only — walctl uses
// this to run the server's tail repair without engine state.
//
// The directory is created if missing. An empty directory yields an empty
// log whose first Append creates the first segment.
func Open(dir string, opts Options, replay func(seq uint64, payload []byte) error) (*Log, OpenReport, error) {
	opts = opts.withDefaults()
	fsys := opts.FS
	var rep OpenReport
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, rep, fmt.Errorf("wal: create dir: %w", err)
	}
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return nil, rep, err
	}

	l := &Log{dir: dir, opts: opts}
	// Replay segment by segment. The first bad record ends the log: the
	// active segment is truncated at the last valid boundary and any later
	// segments are unreachable (framing is lost), so they are removed.
	truncated := false
	for _, seg := range segs {
		if truncated {
			if err := fsys.Remove(seg.path); err != nil {
				return nil, rep, fmt.Errorf("wal: remove orphaned segment: %w", err)
			}
			rep.RemovedSegments++
			continue
		}
		// Verify stream identity BEFORE replaying anything from the segment:
		// records of a foreign stream must never reach the engine.
		sid, hdrOK, err := segmentStreamID(fsys, seg.path)
		if err != nil {
			return nil, rep, err
		}
		if hdrOK && sid != opts.StreamID {
			return nil, rep, &MismatchError{Path: seg.path, Want: opts.StreamID, Got: sid}
		}
		scan, err := ScanSegmentFS(fsys, seg.path, func(r Rec) error {
			if l.lastSeq != 0 && r.Seq <= l.lastSeq {
				// Sequence regression is framing damage, not a replayable
				// record; stop here like any other corruption.
				return errStopScan
			}
			if replay != nil {
				if err := replay(r.Seq, r.Payload); err != nil {
					return err
				}
			}
			if rep.Records == 0 {
				rep.FirstSeq = r.Seq
			}
			rep.Records++
			l.lastSeq = r.Seq
			return nil
		})
		if err != nil {
			return nil, rep, err
		}
		if scan.Tail > 0 || scan.Stopped {
			// Torn or corrupt tail: repair in place by truncating at the last
			// valid record boundary. Everything after (this tail plus any
			// later segment) is discarded and counted, never applied. A
			// segment with no surviving header is removed outright — an
			// empty file could not take appends.
			rep.TruncatedBytes += scan.Tail
			if scan.BadRecord {
				rep.Corrupt = true
			}
			if scan.EndOffset < segHeaderSize {
				if err := fsys.Remove(seg.path); err != nil {
					return nil, rep, fmt.Errorf("wal: remove unreadable segment: %w", err)
				}
				truncated = true
				continue
			}
			if err := fsys.Truncate(seg.path, scan.EndOffset); err != nil {
				return nil, rep, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			truncated = true
		}
		l.segments = append(l.segments, segmentRef{firstSeq: seg.firstSeq, path: seg.path})
	}
	rep.LastSeq = l.lastSeq
	rep.Segments = len(l.segments)

	// Position the append handle at the end of the last live segment.
	if n := len(l.segments); n > 0 {
		path := l.segments[n-1].path
		f, err := fsys.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			return nil, rep, fmt.Errorf("wal: open active segment: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, rep, fmt.Errorf("wal: stat active segment: %w", err)
		}
		if _, err := f.Seek(0, 2); err != nil {
			f.Close()
			return nil, rep, fmt.Errorf("wal: seek active segment: %w", err)
		}
		l.f = f
		l.size = st.Size()
	}
	return l, rep, nil
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// LastSeq returns the sequence number of the newest record (0 when empty).
func (l *Log) LastSeq() uint64 { return l.lastSeq }

// Segments returns the number of live segment files.
func (l *Log) Segments() int { return len(l.segments) }

// Append writes one record. seq must be strictly greater than every
// previously appended or recovered sequence number; the engine owns the
// numbering so it can continue a sequence that a snapshot advanced past a
// truncated log tail.
func (l *Log) Append(seq uint64, payload []byte) error {
	if l.closed {
		return fmt.Errorf("wal: append on closed log")
	}
	if seq <= l.lastSeq {
		return fmt.Errorf("wal: append seq %d not after last seq %d", seq, l.lastSeq)
	}
	if len(payload) > maxPayload {
		return fmt.Errorf("wal: payload %d bytes exceeds limit %d", len(payload), maxPayload)
	}
	if l.f == nil || l.size+recHeaderSize+int64(len(payload)) > l.opts.SegmentBytes {
		if err := l.rotate(seq); err != nil {
			return err
		}
	}
	var hdr [recHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	crc := crc32.ChecksumIEEE(hdr[8:16])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	if _, err := l.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.f.Write(payload); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += recHeaderSize + int64(len(payload))
	l.lastSeq = seq
	l.dirty = true
	return nil
}

// ResetTail undoes the on-disk effect of a failed Append so the same record
// can be retried: the active segment is truncated back to the last durable
// record boundary and the write position is restored. Without it, retrying
// an append whose write failed part-way would frame a new record after
// garbage bytes — unreachable on replay yet acknowledged to the caller. It
// is a no-op when no segment is open.
func (l *Log) ResetTail() error {
	if l.closed || l.f == nil || len(l.segments) == 0 {
		return nil
	}
	path := l.segments[len(l.segments)-1].path
	if err := l.opts.FS.Truncate(path, l.size); err != nil {
		return fmt.Errorf("wal: reset tail: %w", err)
	}
	if _, err := l.f.Seek(l.size, 0); err != nil {
		return fmt.Errorf("wal: reset tail: %w", err)
	}
	return nil
}

// rotate closes the active segment (syncing it) and starts a new one whose
// file name is the next record's sequence number.
func (l *Log) rotate(firstSeq uint64) error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync before rotate: %w", err)
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: close before rotate: %w", err)
		}
		l.f = nil
	}
	path := filepath.Join(l.dir, fmt.Sprintf("%020d%s", firstSeq, segSuffix))
	f, err := l.opts.FS.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	var hdr [segHeaderSize]byte
	copy(hdr[0:4], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], Version)
	binary.LittleEndian.PutUint64(hdr[8:16], l.opts.StreamID)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		// Remove the half-born segment so a retried rotate's O_EXCL create
		// does not trip over it.
		l.opts.FS.Remove(path)
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	l.f = f
	l.size = segHeaderSize
	l.segments = append(l.segments, segmentRef{firstSeq: firstSeq, path: path})
	l.dirty = true
	return nil
}

// Sync flushes appended records to stable storage. It is a no-op when
// nothing was appended since the last sync, so calling it per delivery under
// SyncAlways costs nothing on idle seconds.
func (l *Log) Sync() error {
	if l.closed || l.f == nil || !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.dirty = false
	return nil
}

// Close syncs and closes the log. The log cannot be used afterwards.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	if err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

// PruneSegments removes segment files made fully redundant by a snapshot
// covering every record up to and including seq: a segment may go once every
// record after seq lives in a later segment. The active segment is never
// removed. It returns the number of files deleted.
func (l *Log) PruneSegments(seq uint64) (int, error) {
	removed := 0
	for len(l.segments) > 1 && l.segments[1].firstSeq <= seq+1 {
		if err := l.opts.FS.Remove(l.segments[0].path); err != nil {
			return removed, fmt.Errorf("wal: prune segment: %w", err)
		}
		l.segments = l.segments[1:]
		removed++
	}
	return removed, nil
}

// SegmentInfo describes one segment file on disk.
type SegmentInfo struct {
	Path     string
	FirstSeq uint64
	Size     int64
}

type segEntry struct {
	firstSeq uint64
	path     string
}

// listSegments returns the segment files in dir, ascending by first
// sequence number. Files whose names do not parse are ignored.
func listSegments(fsys FS, dir string) ([]segEntry, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: list segments: %w", err)
	}
	var out []segEntry
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var first uint64
		if _, err := fmt.Sscanf(strings.TrimSuffix(name, segSuffix), "%d", &first); err != nil {
			continue
		}
		out = append(out, segEntry{firstSeq: first, path: filepath.Join(dir, name)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].firstSeq < out[j].firstSeq })
	return out, nil
}

// SegmentInfos returns the segments of dir with their sizes, for inspection
// tools.
func SegmentInfos(dir string) ([]SegmentInfo, error) {
	return SegmentInfosFS(OS, dir)
}

// SegmentInfosFS is SegmentInfos through an injectable filesystem.
func SegmentInfosFS(fsys FS, dir string) ([]SegmentInfo, error) {
	fsys = fsOrOS(fsys)
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return nil, err
	}
	out := make([]SegmentInfo, 0, len(segs))
	for _, s := range segs {
		st, err := fsys.Stat(s.path)
		if err != nil {
			return nil, fmt.Errorf("wal: stat segment: %w", err)
		}
		out = append(out, SegmentInfo{Path: s.path, FirstSeq: s.firstSeq, Size: st.Size()})
	}
	return out, nil
}

// TruncateTo discards every record with sequence number greater than seq,
// leaving the log positioned so the next Append continues at seq+1. The
// sharded engine uses it to even out ragged shard logs after a crash
// between the per-shard appends of one flushed second: the shards that got
// further are cut back to the last second every shard holds. It returns the
// number of bytes removed.
func (l *Log) TruncateTo(seq uint64) (int64, error) {
	if l.closed {
		return 0, fmt.Errorf("wal: truncate on closed log")
	}
	if seq >= l.lastSeq {
		return 0, nil
	}
	// Close the append handle; it is re-opened on the surviving tail.
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return 0, fmt.Errorf("wal: sync before truncate: %w", err)
		}
		if err := l.f.Close(); err != nil {
			return 0, fmt.Errorf("wal: close before truncate: %w", err)
		}
		l.f = nil
	}
	var removed int64
	// Only the last surviving segment can straddle seq (any earlier one ends
	// before its successor's firstSeq <= seq), so walk backwards: drop whole
	// segments past seq, then cut the straddling one at the record boundary.
	for len(l.segments) > 0 {
		ref := l.segments[len(l.segments)-1]
		var cut int64
		var lastKept uint64
		scan, err := ScanSegmentFS(l.opts.FS, ref.path, func(r Rec) error {
			if r.Seq > seq {
				return errStopScan
			}
			cut = r.End
			lastKept = r.Seq
			return nil
		})
		if err != nil {
			return removed, err
		}
		if lastKept == 0 {
			// No record at or below seq survives here; remove the segment
			// (header included — the whole file leaves the disk).
			removed += scan.FileSize
			if err := l.opts.FS.Remove(ref.path); err != nil {
				return removed, fmt.Errorf("wal: remove segment: %w", err)
			}
			l.segments = l.segments[:len(l.segments)-1]
			continue
		}
		if cut < scan.FileSize {
			removed += scan.FileSize - cut
			if err := l.opts.FS.Truncate(ref.path, cut); err != nil {
				return removed, fmt.Errorf("wal: truncate segment: %w", err)
			}
		}
		l.lastSeq = lastKept
		break
	}
	if len(l.segments) == 0 {
		// Everything after seq is gone and nothing before it remains on
		// disk (snapshots cover it); appends continue from seq.
		l.lastSeq = seq
		l.size = 0
		l.dirty = false
		return removed, nil
	}
	// Re-open the append handle at the end of the surviving segment.
	path := l.segments[len(l.segments)-1].path
	f, err := l.opts.FS.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return removed, fmt.Errorf("wal: open active segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return removed, fmt.Errorf("wal: stat active segment: %w", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return removed, fmt.Errorf("wal: seek active segment: %w", err)
	}
	l.f = f
	l.size = st.Size()
	l.dirty = false
	return removed, nil
}
