package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// errStopScan makes the scan callback stop cleanly, treating the current
// record as the end of the usable log (used for sequence regressions).
var errStopScan = errors.New("wal: stop scan")

// Rec is one record handed to a scan callback.
type Rec struct {
	Seq     uint64
	Payload []byte
	// Start and End are the record's byte offsets within its segment file
	// (End is the offset just past the payload).
	Start, End int64
}

// SegmentScan summarizes one segment scan.
type SegmentScan struct {
	// StreamID is the stream identity from the segment header.
	StreamID uint64
	// Records is the number of valid records seen.
	Records int
	// FirstSeq and LastSeq bound the valid records (0 when none).
	FirstSeq, LastSeq uint64
	// EndOffset is the offset just past the last valid record — the truncate
	// point when the tail is damaged.
	EndOffset int64
	// FileSize is the segment file's size.
	FileSize int64
	// Tail is FileSize - EndOffset: bytes past the last valid record.
	Tail int64
	// Stopped reports that the scan ended before the end of file (bad
	// record, CRC failure, or a sequence regression signaled by the
	// callback).
	Stopped bool
	// BadRecord reports that the stop was a framing/CRC failure rather than
	// a clean end (a partially written final record also sets it when any
	// tail bytes exist).
	BadRecord bool
	// Reason describes the stop for diagnostics ("" when the segment is
	// clean).
	Reason string
}

// segmentStreamID reads a segment's header and returns its stream identity.
// ok is false when the header is too short or the magic is wrong (the file
// is damage, not a different stream); a version mismatch is an error.
func segmentStreamID(fsys FS, path string) (streamID uint64, ok bool, err error) {
	f, err := fsOrOS(fsys).OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return 0, false, fmt.Errorf("wal: open segment: %w", err)
	}
	defer f.Close()
	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, false, nil
	}
	if string(hdr[0:4]) != segMagic {
		return 0, false, nil
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != Version {
		return 0, false, fmt.Errorf("wal: %s: unsupported format version %d (want %d)", path, v, Version)
	}
	return binary.LittleEndian.Uint64(hdr[8:16]), true, nil
}

// ScanSegment reads one segment file, calling fn for every record whose
// frame and CRC verify. It never returns an error for corruption — damage is
// reported in the SegmentScan so callers choose between repairing (Open,
// walctl truncate) and reporting (walctl verify). It returns an error only
// for I/O failures, an unreadable header, or a non-nil error from fn other
// than the stop sentinel.
func ScanSegment(path string, fn func(Rec) error) (SegmentScan, error) {
	return ScanSegmentFS(OS, path, fn)
}

// ScanSegmentFS is ScanSegment through an injectable filesystem.
func ScanSegmentFS(fsys FS, path string, fn func(Rec) error) (SegmentScan, error) {
	var s SegmentScan
	f, err := fsOrOS(fsys).OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return s, fmt.Errorf("wal: open segment: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return s, fmt.Errorf("wal: stat segment: %w", err)
	}
	s.FileSize = st.Size()

	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		// A file too short for its own header holds no records at all;
		// EndOffset 0 means "truncate to nothing" (the whole file is tail).
		s.Stopped, s.BadRecord = true, true
		s.Tail = s.FileSize
		s.Reason = "short segment header"
		return s, nil
	}
	if string(hdr[0:4]) != segMagic {
		s.Stopped, s.BadRecord = true, true
		s.Tail = s.FileSize
		s.Reason = "bad segment magic"
		return s, nil
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != Version {
		return s, fmt.Errorf("wal: %s: unsupported format version %d (want %d)", path, v, Version)
	}
	s.StreamID = binary.LittleEndian.Uint64(hdr[8:16])
	s.EndOffset = segHeaderSize

	stop := func(reason string, bad bool) {
		s.Stopped = true
		s.Reason = reason
		s.Tail = s.FileSize - s.EndOffset
		// A clean kill mid-write leaves a partial record; that is still a
		// "bad record" for accounting (bytes discarded), distinguished only
		// by reason.
		s.BadRecord = bad
	}

	var rec [recHeaderSize]byte
	for {
		off := s.EndOffset
		if _, err := io.ReadFull(f, rec[:]); err != nil {
			if err == io.EOF {
				return s, nil // clean end of segment
			}
			if err == io.ErrUnexpectedEOF {
				stop("torn record header", true)
				return s, nil
			}
			return s, fmt.Errorf("wal: read segment: %w", err)
		}
		length := binary.LittleEndian.Uint32(rec[0:4])
		wantCRC := binary.LittleEndian.Uint32(rec[4:8])
		seq := binary.LittleEndian.Uint64(rec[8:16])
		if length > maxPayload {
			stop(fmt.Sprintf("implausible record length %d at offset %d", length, off), true)
			return s, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				stop(fmt.Sprintf("torn record payload at offset %d", off), true)
				return s, nil
			}
			return s, fmt.Errorf("wal: read segment: %w", err)
		}
		crc := crc32.ChecksumIEEE(rec[8:16])
		crc = crc32.Update(crc, crc32.IEEETable, payload)
		if crc != wantCRC {
			stop(fmt.Sprintf("CRC mismatch at offset %d (seq %d)", off, seq), true)
			return s, nil
		}
		if fn != nil {
			if err := fn(Rec{Seq: seq, Payload: payload, Start: off, End: off + recHeaderSize + int64(length)}); err != nil {
				if errors.Is(err, errStopScan) {
					stop(fmt.Sprintf("sequence regression at offset %d (seq %d)", off, seq), true)
					return s, nil
				}
				return s, err
			}
		}
		if s.Records == 0 {
			s.FirstSeq = seq
		}
		s.Records++
		s.LastSeq = seq
		s.EndOffset = off + recHeaderSize + int64(length)
	}
}
