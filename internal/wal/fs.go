package wal

import (
	"errors"
	"io"
	"os"
	"syscall"
)

// File is the subset of *os.File the WAL writes through. Every byte the log
// or snapshot store touches goes through this interface, so tests can wrap
// the real filesystem with deterministic fault injection (internal/sim/errfs)
// without changing any durability code path.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Seek(offset int64, whence int) (int64, error)
	Sync() error
	Stat() (os.FileInfo, error)
}

// FS is the filesystem seam for the WAL and snapshot store. The default
// implementation is the real OS filesystem (OS); Options.FS and the engine's
// DurabilityConfig.FS inject alternatives.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Remove(name string) error
	Rename(oldpath, newpath string) error
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]os.DirEntry, error)
	Stat(name string) (os.FileInfo, error)
	Truncate(name string, size int64) error
}

// OS is the real operating-system filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }

// fsOrOS resolves a possibly-nil FS to the real filesystem.
func fsOrOS(fsys FS) FS {
	if fsys == nil {
		return OS
	}
	return fsys
}

// ReadFileFS reads a whole file through fsys (the FS analogue of
// os.ReadFile). The engine uses it for small control files (shard guard,
// quarantine markers) so those reads share the injectable seam.
func ReadFileFS(fsys FS, name string) ([]byte, error) {
	f, err := fsOrOS(fsys).OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// WriteFileFS writes (and fsyncs) a whole file through fsys. Unlike
// os.WriteFile it syncs before returning: the callers are durability control
// files whose presence must survive a crash.
func WriteFileFS(fsys FS, name string, data []byte, perm os.FileMode) error {
	f, err := fsOrOS(fsys).OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// IsTransient classifies a durability error as retryable. An error is
// transient when any error in its chain declares Temporary() true (the
// convention errfs-injected faults and net errors follow), or when it is a
// retry-at-will syscall error. Everything else — ENOSPC, EIO, permission
// failures, corruption — is permanent: retrying cannot help and the caller
// must fail stop (single engine) or quarantine the shard (sharded engine).
func IsTransient(err error) bool {
	var t interface{ Temporary() bool }
	if errors.As(err, &t) {
		return t.Temporary()
	}
	return errors.Is(err, syscall.EINTR) || errors.Is(err, syscall.EAGAIN)
}
