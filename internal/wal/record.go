package wal

import (
	"encoding/binary"
	"fmt"

	"repro/internal/ingest"
	"repro/internal/model"
)

// recBatch is the payload type byte of a batch record. The single byte
// leaves room for future record kinds (membership changes, shard moves)
// without a format bump.
const recBatch = 1

// Batch is the payload of one WAL record: a flushed second of accepted raw
// readings, plus the reorder buffer's position and cumulative drop
// accounting at the moment the second was acked. Embedding the accounting
// makes recovered Stats exact — the drops describing input that never became
// an acked record (late, duplicate, garbage) would otherwise vanish with the
// process.
type Batch struct {
	// Time is the flushed second.
	Time model.Time
	// MaxSeen is the newest delivered batch second when this record was
	// appended (the watermark equals Time at that point).
	MaxSeen model.Time
	// Forced is the reorder buffer's cumulative forced-flush count.
	Forced int
	// Drops is the reorder buffer's cumulative drop accounting.
	Drops ingest.Drops
	// Readings are the accepted raw readings of the second.
	Readings []model.RawReading
}

// EncodedSize returns the encoded payload length in bytes.
func (b *Batch) EncodedSize() int { return 1 + 8*10 + 4 + 24*len(b.Readings) }

// Encode appends the batch's binary encoding (the record payload) to dst.
func (b *Batch) Encode(dst []byte) []byte {
	dst = append(dst, recBatch)
	var w [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		dst = append(dst, w[:]...)
	}
	word(uint64(b.Time))
	word(uint64(b.MaxSeen))
	word(uint64(b.Forced))
	word(uint64(b.Drops.LateBatches))
	word(uint64(b.Drops.LateReadings))
	word(uint64(b.Drops.DuplicateDeliveries))
	word(uint64(b.Drops.DuplicateReadings))
	word(uint64(b.Drops.MisstampedReadings))
	word(uint64(b.Drops.InvalidReadings))
	word(uint64(b.Drops.GapSeconds))
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(b.Readings)))
	dst = append(dst, n[:]...)
	for _, r := range b.Readings {
		word(uint64(r.Object))
		word(uint64(r.Reader))
		word(uint64(r.Time))
	}
	return dst
}

// DecodeBatch parses a record payload produced by Encode. The payload is
// CRC-verified by the framing layer before it gets here, so a decode failure
// means a format error (wrong type byte, truncated encoder bug), not disk
// corruption.
func DecodeBatch(p []byte) (Batch, error) {
	var b Batch
	if len(p) < 1 || p[0] != recBatch {
		return b, fmt.Errorf("wal: not a batch record (type %d)", typeOf(p))
	}
	p = p[1:]
	need := 8*10 + 4
	if len(p) < need {
		return b, fmt.Errorf("wal: batch record too short (%d bytes)", len(p))
	}
	word := func() uint64 {
		v := binary.LittleEndian.Uint64(p[:8])
		p = p[8:]
		return v
	}
	b.Time = model.Time(word())
	b.MaxSeen = model.Time(word())
	b.Forced = int(word())
	b.Drops.LateBatches = int(word())
	b.Drops.LateReadings = int(word())
	b.Drops.DuplicateDeliveries = int(word())
	b.Drops.DuplicateReadings = int(word())
	b.Drops.MisstampedReadings = int(word())
	b.Drops.InvalidReadings = int(word())
	b.Drops.GapSeconds = int(word())
	n := binary.LittleEndian.Uint32(p[:4])
	p = p[4:]
	if uint64(len(p)) != uint64(n)*24 {
		return b, fmt.Errorf("wal: batch record reading count %d disagrees with %d payload bytes", n, len(p))
	}
	if n > 0 {
		b.Readings = make([]model.RawReading, n)
		for i := range b.Readings {
			b.Readings[i].Object = model.ObjectID(word())
			b.Readings[i].Reader = model.ReaderID(word())
			b.Readings[i].Time = model.Time(word())
		}
	}
	return b, nil
}

func typeOf(p []byte) int {
	if len(p) == 0 {
		return -1
	}
	return int(p[0])
}
