package sim

import (
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/walkgraph"
)

func office(t *testing.T) (*walkgraph.Graph, *rfid.Sensor) {
	t.Helper()
	plan := floorplan.DefaultOffice()
	g := walkgraph.MustBuild(plan)
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	return g, rfid.NewSensor(dep)
}

func TestTraceConfigValidate(t *testing.T) {
	good := DefaultTraceConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	cases := []func(*TraceConfig){
		func(c *TraceConfig) { c.NumObjects = 0 },
		func(c *TraceConfig) { c.SpeedMean = 0 },
		func(c *TraceConfig) { c.SpeedStd = -1 },
		func(c *TraceConfig) { c.MinSpeed = 0 },
		func(c *TraceConfig) { c.MaxSpeed = 0.01 },
		func(c *TraceConfig) { c.DwellMin = -1 },
		func(c *TraceConfig) { c.DwellMax = 0; c.DwellMin = 5 },
	}
	for i, mut := range cases {
		cfg := good
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestSimulatorDeterministic(t *testing.T) {
	g, sensor := office(t)
	cfg := DefaultTraceConfig()
	cfg.NumObjects = 20
	a := MustNew(g, sensor, cfg, 7)
	b := MustNew(g, sensor, cfg, 7)
	for i := 0; i < 50; i++ {
		ta, rawsA := a.Step()
		tb, rawsB := b.Step()
		if ta != tb || len(rawsA) != len(rawsB) {
			t.Fatalf("divergence at step %d", i)
		}
	}
	for _, obj := range a.Objects() {
		if a.TruePosition(obj) != b.TruePosition(obj) {
			t.Fatalf("object %d position diverged", obj)
		}
	}
}

func TestObjectsStayOnWalkableSpace(t *testing.T) {
	g, sensor := office(t)
	cfg := DefaultTraceConfig()
	cfg.NumObjects = 30
	s := MustNew(g, sensor, cfg, 1)
	plan := g.Plan()
	for step := 0; step < 300; step++ {
		s.Step()
		for _, obj := range s.Objects() {
			p := s.TruePosition(obj)
			inRoom := plan.RoomAt(p) != floorplan.NoRoom
			onHall := plan.HallwayAt(p) != floorplan.NoHallway
			if !inRoom && !onHall {
				t.Fatalf("object %d at %v is neither in a room nor on a hallway (step %d)", obj, p, step)
			}
			// Consistency between InRoom and the graph location.
			if s.InRoom(obj) && !inRoom {
				t.Fatalf("object %d claims to dwell but is at %v", obj, p)
			}
		}
	}
}

func TestObjectsActuallyMove(t *testing.T) {
	g, sensor := office(t)
	cfg := DefaultTraceConfig()
	cfg.NumObjects = 20
	cfg.DwellMin, cfg.DwellMax = 1, 3
	s := MustNew(g, sensor, cfg, 2)
	start := make(map[model.ObjectID]geom.Point)
	for _, o := range s.Objects() {
		start[o] = s.TruePosition(o)
	}
	s.Run(120)
	moved := 0
	for _, o := range s.Objects() {
		if s.TruePosition(o).Dist(start[o]) > 3 {
			moved++
		}
	}
	if moved < 15 {
		t.Errorf("only %d/20 objects moved after 120 s", moved)
	}
}

func TestReadingsAreGenerated(t *testing.T) {
	g, sensor := office(t)
	cfg := DefaultTraceConfig()
	cfg.NumObjects = 50
	cfg.DwellMin, cfg.DwellMax = 1, 5
	s := MustNew(g, sensor, cfg, 3)
	total := 0
	for i := 0; i < 200; i++ {
		_, raws := s.Step()
		total += len(raws)
		for _, r := range raws {
			if r.Time != s.Now() {
				t.Fatalf("raw reading with wrong time: %v at now=%d", r, s.Now())
			}
			reader := sensor.Deployment.Reader(r.Reader)
			if !reader.Covers(s.TruePosition(r.Object)) {
				t.Fatalf("reading from reader %d not covering object %d", r.Reader, r.Object)
			}
		}
	}
	if total == 0 {
		t.Fatal("no raw readings in 200 s of 50 objects")
	}
}

func TestTrueRange(t *testing.T) {
	g, sensor := office(t)
	cfg := DefaultTraceConfig()
	cfg.NumObjects = 40
	s := MustNew(g, sensor, cfg, 4)
	s.Run(60)
	// The whole floor contains every object.
	all := s.TrueRange(g.Plan().Bounds())
	if len(all) != 40 {
		t.Errorf("whole-floor range = %d objects, want 40", len(all))
	}
	// An empty window contains none.
	if got := s.TrueRange(geom.RectWH(-100, -100, 1, 1)); len(got) != 0 {
		t.Errorf("far window = %v", got)
	}
	// Results are consistent with positions.
	q := geom.RectWH(10, 10, 20, 10)
	got := s.TrueRange(q)
	seen := map[model.ObjectID]bool{}
	for _, o := range got {
		seen[o] = true
		if !q.Contains(s.TruePosition(o)) {
			t.Errorf("object %d reported in window but at %v", o, s.TruePosition(o))
		}
	}
	for _, o := range s.Objects() {
		if !seen[o] && q.Contains(s.TruePosition(o)) {
			t.Errorf("object %d missed by TrueRange", o)
		}
	}
}

func TestTrueKNN(t *testing.T) {
	g, sensor := office(t)
	cfg := DefaultTraceConfig()
	cfg.NumObjects = 40
	s := MustNew(g, sensor, cfg, 5)
	s.Run(60)
	q := geom.Pt(35, 12)
	got := s.TrueKNN(q, 5)
	if len(got) != 5 {
		t.Fatalf("kNN size = %d", len(got))
	}
	// Verify ordering: every returned object must be at most as far as any
	// non-returned object.
	loc := g.NearestLocation(q)
	nd := g.DistancesFromLocation(loc)
	maxIn := 0.0
	for _, o := range got {
		if d := g.DistToLocation(loc, nd, s.TrueLocation(o)); d > maxIn {
			maxIn = d
		}
	}
	in := map[model.ObjectID]bool{}
	for _, o := range got {
		in[o] = true
	}
	for _, o := range s.Objects() {
		if in[o] {
			continue
		}
		if d := g.DistToLocation(loc, nd, s.TrueLocation(o)); d < maxIn-1e-9 {
			t.Errorf("object %d at %v is closer than returned max %v", o, d, maxIn)
		}
	}
	// k larger than the population returns everyone.
	if got := s.TrueKNN(q, 100); len(got) != 40 {
		t.Errorf("oversized k = %d objects", len(got))
	}
}

func TestLateralOffsetsWithinHallwayWidth(t *testing.T) {
	g, sensor := office(t)
	cfg := DefaultTraceConfig()
	cfg.NumObjects = 25
	cfg.DwellMin, cfg.DwellMax = 1, 3
	s := MustNew(g, sensor, cfg, 6)
	plan := g.Plan()
	for step := 0; step < 200; step++ {
		s.Step()
		for _, o := range s.Objects() {
			if s.InRoom(o) {
				continue
			}
			p := s.TruePosition(o)
			cp := g.Point(s.TrueLocation(o))
			if p.Dist(cp) > plan.Hallways()[0].Width/2+1e-9 {
				t.Fatalf("lateral offset %v exceeds half width", p.Dist(cp))
			}
		}
	}
}
