// Package netsim is a deterministic in-memory cluster.Transport with fault
// injection, the network-layer sibling of the durability layer's errfs:
// production nodes talk HTTP/gob, tests talk netsim, and the cluster code
// cannot tell the difference. Every request and response is gob round-tripped
// even in memory, so wire-encodability is validated on every test delivery
// and no node can mutate another's memory through a shared pointer.
//
// Faults are programmed as rules keyed by (from, to) link and armed by a
// deterministic delivery counter — never by wall clock — so a test run
// replays identically: drop the request, drop only the reply (the owner
// applied it, the forwarder times out — the idempotency case), delay,
// duplicate, or fail with a typed error. Partition and Kill are rule bundles
// over whole nodes, and Heal removes them.
package netsim

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
)

// Error is the typed transport failure injected by rules (and produced for
// unknown addresses), distinguishable from real encode bugs.
type Error struct {
	From, To string
	Reason   string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("netsim: %s -> %s: %s", e.From, e.To, e.Reason)
}

// Rule matches deliveries on one directed link and injects one fault.
// Zero-valued match fields match everything.
type Rule struct {
	// From and To restrict the rule to one directed link ("" matches any).
	From, To string
	// Node restricts the rule to any link touching the node, in either
	// direction (used by Kill and Partition).
	Node string
	// After arms the rule starting at the Nth matching delivery (0-based
	// among the deliveries this rule matches).
	After int
	// Times bounds how many deliveries the rule fires on once armed
	// (0: unbounded).
	Times int
	// Prob fires the rule on approximately this fraction of armed deliveries
	// (0 or 1: always), decided by the seeded deterministic stream.
	Prob float64

	// Drop discards the request before the handler runs.
	Drop bool
	// DropReply runs the handler but discards the response — the owner
	// applied the batch, the forwarder sees a timeout. This is the fault the
	// idempotent forward path exists for.
	DropReply bool
	// Delay adds synthetic latency before delivery.
	Delay time.Duration
	// Duplicate delivers the request twice (second response discarded),
	// exercising dedup on the owner.
	Duplicate bool
	// Err fails the delivery with this reason (Drop with a distinguishable
	// message).
	Err string
}

func (r *Rule) matches(from, to string) bool {
	if r.Node != "" && from != r.Node && to != r.Node {
		return false
	}
	if r.From != "" && r.From != from {
		return false
	}
	if r.To != "" && r.To != to {
		return false
	}
	return true
}

// Handle names an installed rule so tests can observe and remove it.
type Handle struct {
	net *Network
	id  int
}

// Fired returns how many deliveries the rule has fired on.
func (h *Handle) Fired() int {
	h.net.mu.Lock()
	defer h.net.mu.Unlock()
	for _, ir := range h.net.rules {
		if ir.id == h.id {
			return ir.fired
		}
	}
	return 0
}

// Clear removes the rule.
func (h *Handle) Clear() {
	h.net.mu.Lock()
	defer h.net.mu.Unlock()
	for i, ir := range h.net.rules {
		if ir.id == h.id {
			h.net.rules = append(h.net.rules[:i], h.net.rules[i+1:]...)
			return
		}
	}
}

type installedRule struct {
	Rule
	id        int
	seen      int // matching deliveries observed (arms After)
	fired     int
	rngCursor uint64
}

// Network connects in-process cluster nodes by address and applies fault
// rules to every delivery. Safe for concurrent use.
type Network struct {
	mu     sync.Mutex
	nodes  map[string]*cluster.Node
	rules  []*installedRule
	nextID int
	seed   uint64
	// deliveries counts every Send in arrival order; rules arm off their own
	// per-rule match counters derived from it.
	deliveries int
}

// New builds an empty network; seed keys the Prob decision stream.
func New(seed int64) *Network {
	return &Network{nodes: map[string]*cluster.Node{}, seed: uint64(seed)}
}

// AddNode registers a node under its address. Call after cluster.New so the
// address matches the membership entry.
func (n *Network) AddNode(addr string, node *cluster.Node) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes[addr] = node
}

// Install adds a fault rule and returns its handle.
func (n *Network) Install(r Rule) *Handle {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextID++
	ir := &installedRule{Rule: r, id: n.nextID}
	n.rules = append(n.rules, ir)
	return &Handle{net: n, id: n.nextID}
}

// Kill drops every delivery touching addr (both directions) until cleared:
// the process is gone.
func (n *Network) Kill(addr string) *Handle {
	return n.Install(Rule{Node: addr, Drop: true})
}

// Partition drops both directions of the (a, b) link until cleared: both
// processes run, neither can reach the other.
func (n *Network) Partition(a, b string) (*Handle, *Handle) {
	return n.Install(Rule{From: a, To: b, Drop: true}), n.Install(Rule{From: b, To: a, Drop: true})
}

// Clear removes every installed rule (full heal).
func (n *Network) Clear() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rules = nil
}

// Deliveries returns the total Send count so far (the fault clock).
func (n *Network) Deliveries() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.deliveries
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// plan decides, under the lock, what happens to one delivery.
type plan struct {
	drop      bool
	dropReply bool
	delay     time.Duration
	duplicate bool
	errReason string
	target    *cluster.Node
	to        string
}

func (n *Network) planDelivery(from, to string) plan {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.deliveries++
	pl := plan{target: n.nodes[to], to: to}
	for _, ir := range n.rules {
		if !ir.matches(from, to) {
			continue
		}
		ir.seen++
		if ir.seen <= ir.After {
			continue
		}
		if ir.Times > 0 && ir.fired >= ir.Times {
			continue
		}
		if ir.Prob > 0 && ir.Prob < 1 {
			ir.rngCursor++
			x := splitmix64(n.seed ^ uint64(ir.id)<<32 ^ ir.rngCursor)
			if float64(x>>11)/float64(1<<53) >= ir.Prob {
				continue
			}
		}
		ir.fired++
		if ir.Drop {
			pl.drop = true
		}
		if ir.DropReply {
			pl.dropReply = true
		}
		if ir.Delay > pl.delay {
			pl.delay = ir.Delay
		}
		if ir.Duplicate {
			pl.duplicate = true
		}
		if ir.Err != "" {
			pl.errReason = ir.Err
		}
	}
	return pl
}

// Transport returns the cluster.Transport a node at addr should be built
// with: every Send is attributed to addr as the sender.
func (n *Network) Transport(addr string) cluster.Transport {
	return &transport{net: n, from: addr}
}

type transport struct {
	net  *Network
	from string
}

// Send implements cluster.Transport: gob round-trip the request, apply the
// link's fault plan, dispatch to the target node's HandleRPC, gob round-trip
// the response.
func (t *transport) Send(ctx context.Context, addr string, req *cluster.Request) (*cluster.Response, error) {
	pl := t.net.planDelivery(t.from, addr)
	if pl.delay > 0 {
		select {
		case <-time.After(pl.delay):
		case <-ctx.Done():
			return nil, &Error{From: t.from, To: addr, Reason: "delayed past deadline: " + ctx.Err().Error()}
		}
	}
	if pl.errReason != "" {
		return nil, &Error{From: t.from, To: addr, Reason: pl.errReason}
	}
	if pl.drop {
		return nil, &Error{From: t.from, To: addr, Reason: "dropped"}
	}
	if pl.target == nil {
		return nil, &Error{From: t.from, To: addr, Reason: "unknown address"}
	}
	wireReq, err := roundTrip(req, new(cluster.Request))
	if err != nil {
		return nil, fmt.Errorf("netsim: request not wire-encodable: %w", err)
	}
	resp, err := pl.target.HandleRPC(ctx, wireReq)
	if pl.duplicate && err == nil {
		dup, derr := roundTrip(req, new(cluster.Request))
		if derr == nil {
			_, _ = pl.target.HandleRPC(ctx, dup)
		}
	}
	if err != nil {
		return nil, err
	}
	if pl.dropReply {
		return nil, &Error{From: t.from, To: addr, Reason: "reply dropped"}
	}
	wireResp, err := roundTrip(resp, new(cluster.Response))
	if err != nil {
		return nil, fmt.Errorf("netsim: response not wire-encodable: %w", err)
	}
	return wireResp, nil
}

// roundTrip gob-encodes src and decodes it into dst, returning dst: the
// in-memory equivalent of putting the value on the wire.
func roundTrip[T any](src *T, dst *T) (*T, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(src); err != nil {
		return nil, err
	}
	if err := gob.NewDecoder(&buf).Decode(dst); err != nil {
		return nil, err
	}
	return dst, nil
}
