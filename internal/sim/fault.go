package sim

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/rng"
)

// FaultConfig parameterizes the fault-injection layer between the sensor
// model and the ingestion path. It reproduces the delivery-level failure
// modes of real RFID deployments — readers dropping out, gateways losing,
// delaying, and retransmitting batches, and skewed reader clocks — so the
// hardened ingestion front end can be exercised end to end. All
// probabilities are evaluated once per second from the injector's own
// seeded stream, keeping fault patterns reproducible.
type FaultConfig struct {
	// DropoutProb is the per-reader per-second probability that an online
	// reader goes dark (its readings vanish before delivery).
	DropoutProb float64
	// RecoverProb is the per-reader per-second probability that a dark
	// reader comes back.
	RecoverProb float64
	// BurstLossProb is the per-second probability that the whole second's
	// delivery is lost in transit — the ingestion path sees a gap.
	BurstLossProb float64
	// SkewProb is the per-reader per-second probability that the reader's
	// readings this second carry a skewed clock.
	SkewProb float64
	// SkewMax bounds the skew offset: nonzero, uniform in [-SkewMax, SkewMax].
	SkewMax model.Time
	// DelayProb is the per-batch probability that delivery is deferred by
	// 1..DelayMax seconds (arriving out of order).
	DelayProb float64
	// DelayMax bounds the delivery delay in seconds.
	DelayMax model.Time
	// DuplicateProb is the per-batch probability that a gateway retransmits
	// the delivery 1..DelayMax (or 1) seconds later.
	DuplicateProb float64
	// Outages schedules deterministic reader downtime on top of the random
	// dropout model: during [From, To] the reader's readings vanish before
	// delivery. Scheduled outages make recall-under-outage experiments
	// reproducible where DropoutProb alone would randomize which reader dies
	// and when.
	Outages []Outage
}

// Outage is one scheduled reader blackout, inclusive on both ends.
type Outage struct {
	Reader   model.ReaderID
	From, To model.Time
}

// Validate checks the configuration.
func (c FaultConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"DropoutProb", c.DropoutProb}, {"RecoverProb", c.RecoverProb},
		{"BurstLossProb", c.BurstLossProb}, {"SkewProb", c.SkewProb},
		{"DelayProb", c.DelayProb}, {"DuplicateProb", c.DuplicateProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("sim: %s %v out of [0, 1]", p.name, p.v)
		}
	}
	if c.SkewProb > 0 && c.SkewMax <= 0 {
		return fmt.Errorf("sim: SkewProb needs positive SkewMax, got %d", c.SkewMax)
	}
	if (c.DelayProb > 0 || c.DuplicateProb > 0) && c.DelayMax <= 0 {
		return fmt.Errorf("sim: DelayProb/DuplicateProb need positive DelayMax, got %d", c.DelayMax)
	}
	for _, o := range c.Outages {
		if o.Reader < 0 {
			return fmt.Errorf("sim: outage references negative reader %d", o.Reader)
		}
		if o.To < o.From {
			return fmt.Errorf("sim: outage for reader %d ends (%d) before it starts (%d)", o.Reader, o.To, o.From)
		}
	}
	return nil
}

// FaultStats accounts for everything the injector did to the stream, so a
// robustness run can prove no reading went missing unaccounted: every
// produced reading is either lost here (counted) or delivered at least
// once, and every extra delivery is counted as duplication.
type FaultStats struct {
	// ReadingsProduced counts readings entering the injector.
	ReadingsProduced int
	// ReadingsDelivered counts readings leaving the injector across all
	// deliveries, retransmissions included.
	ReadingsDelivered int
	// ReadingsLost counts readings suppressed by dropout or burst loss.
	ReadingsLost int
	// ReadingsDuplicated counts the extra copies injected by retransmission.
	ReadingsDuplicated int
	// ReadingsSkewed counts delivered readings carrying a skewed stamp.
	ReadingsSkewed int
	// BatchesLost, BatchesDelayed, BatchesDuplicated count whole-delivery
	// fault events.
	BatchesLost, BatchesDelayed, BatchesDuplicated int
}

// Injector applies configured faults to the per-second batches of a
// simulation before they reach the ingestion path. It owns an internal
// delivery queue for delayed and retransmitted batches. Not safe for
// concurrent use.
type Injector struct {
	cfg        FaultConfig
	src        *rng.Source
	numReaders int
	offline    map[model.ReaderID]bool
	queue      map[model.Time][]model.Batch
	stats      FaultStats
	// now is the last second fed to Apply, so Offline can answer for the
	// scheduled outages too.
	now model.Time
}

// NewInjector builds a fault injector over numReaders readers with its own
// seeded randomness (independent of the simulator's stream, so enabling
// faults does not perturb the true traces).
func NewInjector(cfg FaultConfig, numReaders int, seed int64) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numReaders <= 0 {
		return nil, fmt.Errorf("sim: injector needs a positive reader count, got %d", numReaders)
	}
	return &Injector{
		cfg:        cfg,
		src:        rng.New(seed),
		numReaders: numReaders,
		offline:    make(map[model.ReaderID]bool),
		queue:      make(map[model.Time][]model.Batch),
	}, nil
}

// MustNewInjector is NewInjector for known-valid parameters.
func MustNewInjector(cfg FaultConfig, numReaders int, seed int64) *Injector {
	f, err := NewInjector(cfg, numReaders, seed)
	if err != nil {
		panic(err)
	}
	return f
}

// Stats returns the cumulative fault accounting.
func (f *Injector) Stats() FaultStats { return f.stats }

// Offline reports whether the injector currently suppresses a reader, by
// random dropout or by a scheduled outage covering the last applied second.
func (f *Injector) Offline(id model.ReaderID) bool {
	return f.offline[id] || f.scheduledOut(id, f.now)
}

// scheduledOut reports whether a scheduled outage covers reader id at t.
func (f *Injector) scheduledOut(id model.ReaderID, t model.Time) bool {
	for _, o := range f.cfg.Outages {
		if o.Reader == id && t >= o.From && t <= o.To {
			return true
		}
	}
	return false
}

// Apply feeds the true batch for second t through the fault model and
// returns the deliveries due now: the (possibly degraded) current batch
// unless it was lost or delayed, plus any previously deferred deliveries
// whose time has come. Deliveries are ordered by ascending batch second
// for determinism.
func (f *Injector) Apply(t model.Time, raws []model.RawReading) []model.Batch {
	f.now = t
	f.stats.ReadingsProduced += len(raws)

	// Flip per-reader dropout and skew states, scanning readers in ID order
	// so the random stream is deterministic.
	skew := make(map[model.ReaderID]model.Time)
	for id := model.ReaderID(0); int(id) < f.numReaders; id++ {
		if f.offline[id] {
			if f.cfg.RecoverProb > 0 && f.src.Bool(f.cfg.RecoverProb) {
				delete(f.offline, id)
			}
		} else if f.cfg.DropoutProb > 0 && f.src.Bool(f.cfg.DropoutProb) {
			f.offline[id] = true
		}
		if f.cfg.SkewProb > 0 && f.src.Bool(f.cfg.SkewProb) {
			off := model.Time(f.src.Intn(int(2*f.cfg.SkewMax))) - f.cfg.SkewMax
			if off >= 0 {
				off++ // skip zero: a skewed clock is off by at least a second
			}
			skew[id] = off
		}
	}

	// Degrade the batch: offline readers lose their readings, skewed
	// readers mis-stamp theirs.
	kept := make([]model.RawReading, 0, len(raws))
	for _, r := range raws {
		if f.offline[r.Reader] || f.scheduledOut(r.Reader, t) {
			f.stats.ReadingsLost++
			continue
		}
		if off, ok := skew[r.Reader]; ok {
			r.Time += off
			f.stats.ReadingsSkewed++
		}
		kept = append(kept, r)
	}

	// Whole-delivery faults: burst loss, delay, retransmission.
	if f.cfg.BurstLossProb > 0 && f.src.Bool(f.cfg.BurstLossProb) {
		f.stats.BatchesLost++
		f.stats.ReadingsLost += len(kept)
	} else {
		batch := model.Batch{Time: t, Readings: kept}
		due := t
		if f.cfg.DelayProb > 0 && f.src.Bool(f.cfg.DelayProb) {
			due = t + 1 + model.Time(f.src.Intn(int(f.cfg.DelayMax)))
			f.stats.BatchesDelayed++
		}
		f.enqueue(due, batch)
		f.stats.ReadingsDelivered += len(kept)
		if f.cfg.DuplicateProb > 0 && f.src.Bool(f.cfg.DuplicateProb) {
			redue := t + 1 + model.Time(f.src.Intn(int(f.cfg.DelayMax)))
			f.enqueue(redue, batch)
			f.stats.BatchesDuplicated++
			f.stats.ReadingsDuplicated += len(kept)
			f.stats.ReadingsDelivered += len(kept)
		}
	}

	return f.takeDue(t)
}

// Drain returns every still-queued delivery in due order (end of stream).
func (f *Injector) Drain() []model.Batch {
	dues := make([]model.Time, 0, len(f.queue))
	for due := range f.queue {
		dues = append(dues, due)
	}
	sort.Slice(dues, func(i, j int) bool { return dues[i] < dues[j] })
	var out []model.Batch
	for _, due := range dues {
		out = append(out, f.sorted(f.queue[due])...)
		delete(f.queue, due)
	}
	return out
}

func (f *Injector) enqueue(due model.Time, b model.Batch) {
	f.queue[due] = append(f.queue[due], b)
}

// takeDue pops the deliveries due at or before t, ordered by due second
// then ascending batch second (so an old batch tied with a newer one never
// sees the newer one advance the watermark first).
func (f *Injector) takeDue(t model.Time) []model.Batch {
	dues := make([]model.Time, 0, len(f.queue))
	for due := range f.queue {
		if due <= t {
			dues = append(dues, due)
		}
	}
	sort.Slice(dues, func(i, j int) bool { return dues[i] < dues[j] })
	var out []model.Batch
	for _, due := range dues {
		out = append(out, f.sorted(f.queue[due])...)
		delete(f.queue, due)
	}
	return out
}

// sorted orders one due-second's deliveries by ascending batch second.
func (f *Injector) sorted(bs []model.Batch) []model.Batch {
	sort.SliceStable(bs, func(i, j int) bool { return bs[i].Time < bs[j].Time })
	return bs
}
