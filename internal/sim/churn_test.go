package sim

import (
	"testing"

	"repro/internal/floorplan"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/walkgraph"
)

func churnWorld(t *testing.T) *Simulator {
	t.Helper()
	plan := floorplan.DefaultOffice()
	g := walkgraph.MustBuild(plan)
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	cfg := DefaultTraceConfig()
	cfg.NumObjects = 20
	cfg.DwellMin, cfg.DwellMax = 1, 4
	cfg.ChurnProb = 0.4
	cfg.AwayMin, cfg.AwayMax = 20, 60
	return MustNew(g, rfid.NewSensor(dep), cfg, 77)
}

func TestChurnValidation(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.ChurnProb = 1.5
	if err := cfg.Validate(); err == nil {
		t.Error("ChurnProb > 1 accepted")
	}
	cfg = DefaultTraceConfig()
	cfg.ChurnProb = 0.2 // away bounds unset
	if err := cfg.Validate(); err == nil {
		t.Error("churn without away bounds accepted")
	}
	cfg.AwayMin, cfg.AwayMax = 10, 30
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid churn config rejected: %v", err)
	}
}

func TestChurnObjectsLeaveAndReturn(t *testing.T) {
	s := churnWorld(t)
	sawAway, sawReturn := false, false
	wasAway := make(map[model.ObjectID]bool)
	for i := 0; i < 400; i++ {
		_, raws := s.Step()
		for _, o := range s.Objects() {
			if s.Away(o) {
				sawAway = true
				wasAway[o] = true
			} else if wasAway[o] {
				sawReturn = true
				delete(wasAway, o)
			}
		}
		// Away objects never produce readings.
		for _, r := range raws {
			if s.Away(r.Object) {
				t.Fatalf("away object %d produced a reading", r.Object)
			}
		}
	}
	if !sawAway || !sawReturn {
		t.Errorf("churn never cycled: away=%v return=%v", sawAway, sawReturn)
	}
}

func TestChurnGroundTruthExcludesAway(t *testing.T) {
	s := churnWorld(t)
	for i := 0; i < 300; i++ {
		s.Step()
	}
	whole := s.Graph().Plan().Bounds()
	inRange := map[model.ObjectID]bool{}
	for _, o := range s.TrueRange(whole) {
		inRange[o] = true
	}
	knn := map[model.ObjectID]bool{}
	for _, o := range s.TrueKNN(whole.Center(), len(s.Objects())) {
		knn[o] = true
	}
	for _, o := range s.Objects() {
		if s.Away(o) {
			if inRange[o] {
				t.Errorf("away object %d in TrueRange", o)
			}
			if knn[o] {
				t.Errorf("away object %d in TrueKNN", o)
			}
		} else {
			if !inRange[o] {
				t.Errorf("present object %d missing from whole-floor TrueRange", o)
			}
		}
	}
}

func TestNoChurnByDefault(t *testing.T) {
	plan := floorplan.DefaultOffice()
	g := walkgraph.MustBuild(plan)
	dep := rfid.MustDeployUniform(plan, 19, 2)
	cfg := DefaultTraceConfig()
	cfg.NumObjects = 10
	s := MustNew(g, rfid.NewSensor(dep), cfg, 5)
	for i := 0; i < 200; i++ {
		s.Step()
	}
	for _, o := range s.Objects() {
		if s.Away(o) {
			t.Fatalf("object %d went away without churn", o)
		}
	}
}
