package sim

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/floorplan"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/rfid"
)

func faultyConfig() FaultConfig {
	return FaultConfig{
		DropoutProb:   0.02,
		RecoverProb:   0.3,
		BurstLossProb: 0.05,
		SkewProb:      0.02,
		SkewMax:       3,
		DelayProb:     0.2,
		DelayMax:      4,
		DuplicateProb: 0.1,
	}
}

func TestFaultConfigValidate(t *testing.T) {
	if err := faultyConfig().Validate(); err != nil {
		t.Fatalf("valid config refused: %v", err)
	}
	cases := []func(*FaultConfig){
		func(c *FaultConfig) { c.DropoutProb = -0.1 },
		func(c *FaultConfig) { c.BurstLossProb = 1.5 },
		func(c *FaultConfig) { c.SkewMax = 0 },
		func(c *FaultConfig) { c.DelayMax = 0 },
	}
	for i, mutate := range cases {
		c := faultyConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
	if _, err := NewInjector(faultyConfig(), 0, 1); err == nil {
		t.Error("zero readers accepted")
	}
}

func TestInjectorDeterministic(t *testing.T) {
	g, sensor := office(t)
	tc := DefaultTraceConfig()
	tc.NumObjects = 10
	run := func() string {
		s := MustNew(g, sensor, tc, 5)
		inj := MustNewInjector(faultyConfig(), rfid.DefaultReaders, 17)
		out := ""
		for i := 0; i < 60; i++ {
			tm, raws := s.Step()
			for _, b := range inj.Apply(tm, raws) {
				out += fmt.Sprintf("%d:%d:%d;", tm, b.Time, len(b.Readings))
			}
		}
		for _, b := range inj.Drain() {
			out += fmt.Sprintf("d:%d:%d;", b.Time, len(b.Readings))
		}
		return out + fmt.Sprintf("%+v", inj.Stats())
	}
	if run() != run() {
		t.Error("same seeds produced different fault patterns")
	}
}

func TestInjectorDropoutSuppressesReadings(t *testing.T) {
	// Dropout with no recovery: every reader eventually goes dark and the
	// stream dries up, with every suppressed reading counted as lost.
	inj := MustNewInjector(FaultConfig{DropoutProb: 0.5}, 4, 3)
	raws := func(tm model.Time) []model.RawReading {
		var out []model.RawReading
		for rd := 0; rd < 4; rd++ {
			out = append(out, model.RawReading{Object: 1, Reader: model.ReaderID(rd), Time: tm})
		}
		return out
	}
	produced, delivered := 0, 0
	for tm := model.Time(1); tm <= 20; tm++ {
		produced += 4
		for _, b := range inj.Apply(tm, raws(tm)) {
			delivered += len(b.Readings)
			for _, r := range b.Readings {
				if inj.Offline(r.Reader) {
					t.Errorf("t=%d: offline reader %d delivered", tm, r.Reader)
				}
			}
		}
	}
	st := inj.Stats()
	if st.ReadingsLost == 0 {
		t.Fatal("no readings lost under 50% dropout")
	}
	if st.ReadingsProduced != produced || st.ReadingsDelivered != delivered {
		t.Errorf("accounting: %+v vs produced %d delivered %d", st, produced, delivered)
	}
	if produced != st.ReadingsDelivered+st.ReadingsLost {
		t.Errorf("produced %d != delivered %d + lost %d", produced, st.ReadingsDelivered, st.ReadingsLost)
	}
}

// TestFaultedPipelineNoSilentDrops is the end-to-end robustness check of the
// hardened ingestion path: a full simulation degraded by dropout, burst
// loss, clock skew, delivery delays, and retransmissions flows through the
// reorder buffer, and afterwards every single reading is accounted for —
// ingested, dropped with a counted reason, or lost upstream with a counted
// reason. Zero silent drops.
func TestFaultedPipelineNoSilentDrops(t *testing.T) {
	const seconds = 240
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	cfg := engine.DefaultConfig()
	cfg.Seed = 11
	// Horizon must cover DelayMax plus the skew span so nothing honest
	// arrives late: 4 + 3 < 8.
	cfg.Ingest = ingest.Config{Horizon: 8}
	sys := engine.MustNew(plan, dep, cfg)

	tc := DefaultTraceConfig()
	tc.NumObjects = 20
	sim := MustNew(sys.Graph(), rfid.NewSensor(dep), tc, 23)
	inj := MustNewInjector(faultyConfig(), rfid.DefaultReaders, 29)

	offered := 0
	deliver := func(b model.Batch) {
		offered += len(b.Readings)
		sys.Ingest(b.Time, b.Readings)
	}
	for i := 0; i < seconds; i++ {
		tm, raws := sim.Step()
		for _, b := range inj.Apply(tm, raws) {
			deliver(b)
		}
	}
	for _, b := range inj.Drain() {
		deliver(b)
	}
	sys.FlushIngest()

	fs := inj.Stats()
	if fs.BatchesLost == 0 || fs.BatchesDelayed == 0 || fs.BatchesDuplicated == 0 || fs.ReadingsSkewed == 0 {
		t.Fatalf("fault pattern degenerate, nothing to harden against: %+v", fs)
	}
	// Injector-side conservation: every produced reading was delivered or
	// counted lost; every extra delivery is a counted duplicate.
	if fs.ReadingsProduced+fs.ReadingsDuplicated != fs.ReadingsDelivered+fs.ReadingsLost {
		t.Errorf("injector accounting broken: %+v", fs)
	}
	if offered != fs.ReadingsDelivered {
		t.Errorf("offered %d != delivered %d", offered, fs.ReadingsDelivered)
	}

	// System-side conservation: no reading vanished without a counter.
	st := sys.Stats()
	if loss := metrics.SilentLoss(offered, st.ReadingsIngested, st.ReadingsDropped, st.ReadingsPending); loss != 0 {
		t.Errorf("silent loss = %d (offered %d, ingested %d, dropped %d, pending %d)",
			loss, offered, st.ReadingsIngested, st.ReadingsDropped, st.ReadingsPending)
	}
	if st.ReadingsPending != 0 {
		t.Errorf("%d readings pending after flush", st.ReadingsPending)
	}
	// Within the horizon nothing honest is late or mis-stamped; the only
	// system-side drops are deduplicated retransmissions, and burst-lost
	// seconds surface as counted gaps.
	if st.Ingest.LateReadings != 0 || st.Ingest.MisstampedReadings != 0 || st.Ingest.InvalidReadings != 0 {
		t.Errorf("unexpected drop kinds: %+v", st.Ingest)
	}
	if st.Ingest.DuplicateReadings != fs.ReadingsDuplicated {
		t.Errorf("duplicates dropped %d, injected %d", st.Ingest.DuplicateReadings, fs.ReadingsDuplicated)
	}
	if st.Ingest.GapSeconds == 0 {
		t.Error("burst losses produced no counted gaps")
	}
	// The degraded system still answers queries.
	objs := sys.Collector().KnownObjects()
	if len(objs) == 0 {
		t.Fatal("no objects survived the faults")
	}
	if rs := sys.RangeQuery(plan.Bounds()); len(rs) == 0 {
		t.Error("whole-floor range query empty on faulted stream")
	}
}
