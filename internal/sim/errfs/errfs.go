// Package errfs wraps a wal.FS with deterministic fault injection: rules
// select filesystem operations by kind, path substring, call ordinal, and
// probability, then fail them with transient or permanent errors — including
// a torn-write mode that persists a prefix of the data before failing, the
// way a real disk tears a record mid-write. It is the disk-fault story for
// every durability test: the chaos harness schedules per-shard faults through
// it, and the engine's retry/quarantine/heal paths are proven against it.
//
// All randomness comes from a splitmix64 stream seeded at construction, so a
// given rule set fails the exact same calls on every run.
package errfs

import (
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/internal/wal"
)

// Op is a bitmask of filesystem operation kinds a Rule can match.
type Op uint32

const (
	OpOpen Op = 1 << iota
	OpWrite
	OpSync
	OpRename
	OpRemove
	OpTruncate
	OpMkdir
	OpReadDir
	OpStat
	OpRead

	// OpAll matches every operation.
	OpAll Op = 1<<iota - 1
)

func (o Op) String() string {
	names := []struct {
		op   Op
		name string
	}{
		{OpOpen, "open"}, {OpWrite, "write"}, {OpSync, "sync"},
		{OpRename, "rename"}, {OpRemove, "remove"}, {OpTruncate, "truncate"},
		{OpMkdir, "mkdir"}, {OpReadDir, "readdir"}, {OpStat, "stat"},
		{OpRead, "read"},
	}
	s := ""
	for _, n := range names {
		if o&n.op != 0 {
			if s != "" {
				s += "|"
			}
			s += n.name
		}
	}
	if s == "" {
		return "none"
	}
	return s
}

// Error is the fault injected by a rule without a custom Err. Transient
// errors report Temporary() true, which wal.IsTransient classifies as
// retryable; permanent ones do not.
type Error struct {
	Op        Op
	Path      string
	Transient bool
}

// Error implements the error interface.
func (e *Error) Error() string {
	kind := "permanent"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("errfs: injected %s %s error on %s", kind, e.Op, e.Path)
}

// Temporary reports whether the fault is transient (retryable).
func (e *Error) Temporary() bool { return e.Transient }

// Rule selects calls to fail. The zero value matches every operation on
// every path, always, permanently.
type Rule struct {
	// Ops is the operation kinds to match; 0 means all.
	Ops Op
	// Path is a substring the operation's path must contain; "" matches all.
	// Rename matches on either path.
	Path string
	// After skips the first After matching calls before the rule can fire
	// (fail "at a chosen offset" into an I/O sequence).
	After int
	// Times bounds how many calls the rule fails; <= 0 means every matching
	// call fails until the rule is removed — a permanent fault.
	Times int
	// Prob fires the rule on a matching call with this probability; <= 0 or
	// >= 1 means always. Draws come from the FS's deterministic stream.
	Prob float64
	// Transient marks injected errors temporary, i.e. retryable.
	Transient bool
	// TornBytes, on a write fault, persists that prefix of the data through
	// the inner filesystem before failing — a torn write. <= 0 tears at 0.
	TornBytes int
	// Err overrides the injected error (default: *Error).
	Err error
}

// Handle identifies an installed rule so it can be removed and its fire
// count read.
type Handle struct {
	fs   *FS
	rule *Rule

	mu      sync.Mutex
	matched int
	fired   int
}

// Fired returns how many calls the rule has failed.
func (h *Handle) Fired() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fired
}

// FS wraps an inner wal.FS with fault injection. Safe for concurrent use.
type FS struct {
	inner wal.FS

	mu    sync.Mutex
	rng   uint64
	rules []*Handle
}

// New wraps inner (nil means the real OS filesystem) with a deterministic
// fault-injecting layer.
func New(inner wal.FS, seed int64) *FS {
	if inner == nil {
		inner = wal.OS
	}
	return &FS{inner: inner, rng: uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d}
}

// Fail installs a rule and returns its handle.
func (f *FS) Fail(r Rule) *Handle {
	h := &Handle{fs: f, rule: &r}
	f.mu.Lock()
	f.rules = append(f.rules, h)
	f.mu.Unlock()
	return h
}

// Clear removes the given rules, or every rule when called with none.
func (f *FS) Clear(hs ...*Handle) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(hs) == 0 {
		f.rules = nil
		return
	}
	keep := f.rules[:0]
	for _, r := range f.rules {
		drop := false
		for _, h := range hs {
			if r == h {
				drop = true
				break
			}
		}
		if !drop {
			keep = append(keep, r)
		}
	}
	f.rules = keep
}

func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// check consults the rules for one operation. For writes it also returns the
// number of bytes to persist before failing (torn write).
func (f *FS) check(op Op, path, path2 string) (error, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, h := range f.rules {
		r := h.rule
		if r.Ops != 0 && r.Ops&op == 0 {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) && !strings.Contains(path2, r.Path) {
			continue
		}
		h.mu.Lock()
		h.matched++
		skip := h.matched <= r.After
		spent := r.Times > 0 && h.fired >= r.Times
		h.mu.Unlock()
		if skip || spent {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 {
			draw := float64(splitmix64(&f.rng)>>11) / float64(1<<53)
			if draw >= r.Prob {
				continue
			}
		}
		h.mu.Lock()
		h.fired++
		h.mu.Unlock()
		err := r.Err
		if err == nil {
			err = &Error{Op: op, Path: path, Transient: r.Transient}
		}
		return err, r.TornBytes
	}
	return nil, 0
}

// OpenFile implements wal.FS.
func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (wal.File, error) {
	if err, _ := f.check(OpOpen, name, ""); err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, path: name, inner: inner}, nil
}

// Remove implements wal.FS.
func (f *FS) Remove(name string) error {
	if err, _ := f.check(OpRemove, name, ""); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// Rename implements wal.FS.
func (f *FS) Rename(oldpath, newpath string) error {
	if err, _ := f.check(OpRename, oldpath, newpath); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

// MkdirAll implements wal.FS.
func (f *FS) MkdirAll(path string, perm os.FileMode) error {
	if err, _ := f.check(OpMkdir, path, ""); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

// ReadDir implements wal.FS.
func (f *FS) ReadDir(name string) ([]os.DirEntry, error) {
	if err, _ := f.check(OpReadDir, name, ""); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

// Stat implements wal.FS.
func (f *FS) Stat(name string) (os.FileInfo, error) {
	if err, _ := f.check(OpStat, name, ""); err != nil {
		return nil, err
	}
	return f.inner.Stat(name)
}

// Truncate implements wal.FS.
func (f *FS) Truncate(name string, size int64) error {
	if err, _ := f.check(OpTruncate, name, ""); err != nil {
		return err
	}
	return f.inner.Truncate(name, size)
}

// file wraps an open file, consulting the rules on write, sync, and read.
type file struct {
	fs    *FS
	path  string
	inner wal.File
}

func (f *file) Read(p []byte) (int, error) {
	if err, _ := f.fs.check(OpRead, f.path, ""); err != nil {
		return 0, err
	}
	return f.inner.Read(p)
}

func (f *file) Write(p []byte) (int, error) {
	if err, torn := f.fs.check(OpWrite, f.path, ""); err != nil {
		n := 0
		if torn > 0 {
			if torn > len(p) {
				torn = len(p)
			}
			// Persist a prefix through the real filesystem, then fail: the
			// classic torn write. The caller sees the error; the bytes stay.
			n, _ = f.inner.Write(p[:torn])
		}
		return n, err
	}
	return f.inner.Write(p)
}

func (f *file) Seek(offset int64, whence int) (int64, error) { return f.inner.Seek(offset, whence) }

func (f *file) Sync() error {
	if err, _ := f.fs.check(OpSync, f.path, ""); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *file) Stat() (os.FileInfo, error) { return f.inner.Stat() }
func (f *file) Close() error               { return f.inner.Close() }
