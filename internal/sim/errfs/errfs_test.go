package errfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/wal"
)

func writeThrough(t *testing.T, fsys *FS, path string, data []byte) error {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(data)
	return err
}

func TestRuleMatchesOpAndPath(t *testing.T) {
	dir := t.TempDir()
	fsys := New(nil, 1)
	fsys.Fail(Rule{Ops: OpWrite, Path: "shard-0002"})

	if err := writeThrough(t, fsys, filepath.Join(dir, "shard-0001.wal"), []byte("ok")); err != nil {
		t.Fatalf("unmatched path failed: %v", err)
	}
	err := writeThrough(t, fsys, filepath.Join(dir, "shard-0002.wal"), []byte("no"))
	if err == nil {
		t.Fatal("matched write did not fail")
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Op != OpWrite || fe.Transient {
		t.Fatalf("injected error = %v, want permanent write *Error", err)
	}
	if wal.IsTransient(err) {
		t.Error("permanent injection classified transient")
	}
	// Other ops on the matched path pass: the rule is write-only.
	if _, err := fsys.OpenFile(filepath.Join(dir, "shard-0002.wal"), os.O_RDONLY, 0); err != nil {
		t.Fatalf("open of matched path failed under write-only rule: %v", err)
	}
}

func TestTransientClassification(t *testing.T) {
	dir := t.TempDir()
	fsys := New(nil, 2)
	h := fsys.Fail(Rule{Ops: OpSync, Transient: true, Times: 1})
	f, err := fsys.OpenFile(filepath.Join(dir, "a"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); !wal.IsTransient(err) {
		t.Fatalf("transient sync injection classified permanent: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("rule spent after Times=1 but sync still fails: %v", err)
	}
	if h.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", h.Fired())
	}
}

func TestAfterSkipsEarlyCalls(t *testing.T) {
	dir := t.TempDir()
	fsys := New(nil, 3)
	fsys.Fail(Rule{Ops: OpWrite, After: 2})
	path := filepath.Join(dir, "x")
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 2; i++ {
		if _, err := f.Write([]byte("a")); err != nil {
			t.Fatalf("write %d inside the After window failed: %v", i, err)
		}
	}
	if _, err := f.Write([]byte("a")); err == nil {
		t.Fatal("third write passed; After offset ignored")
	}
}

func TestTornWritePersistsPrefix(t *testing.T) {
	dir := t.TempDir()
	fsys := New(nil, 4)
	fsys.Fail(Rule{Ops: OpWrite, TornBytes: 3, Times: 1})
	path := filepath.Join(dir, "torn")
	err := writeThrough(t, fsys, path, []byte("abcdef"))
	if err == nil {
		t.Fatal("torn write did not fail")
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(got) != "abc" {
		t.Fatalf("persisted prefix = %q, want %q", got, "abc")
	}
	// Rule spent: a second write appends cleanly after the torn prefix.
	if err := func() error {
		f, err := fsys.OpenFile(path, os.O_RDWR|os.O_APPEND, 0)
		if err != nil {
			return err
		}
		defer f.Close()
		_, err = f.Write([]byte("XY"))
		return err
	}(); err != nil {
		t.Fatalf("write after spent rule: %v", err)
	}
}

func TestProbDeterministic(t *testing.T) {
	fire := func(seed int64) []bool {
		dir := t.TempDir()
		fsys := New(nil, seed)
		fsys.Fail(Rule{Ops: OpWrite, Prob: 0.5})
		f, err := fsys.OpenFile(filepath.Join(dir, "p"), os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		out := make([]bool, 32)
		for i := range out {
			_, werr := f.Write([]byte("z"))
			out[i] = werr != nil
		}
		return out
	}
	a, b := fire(99), fire(99)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("Prob=0.5 fired %d/%d times; not probabilistic", fired, len(a))
	}
}

func TestClearRemovesRules(t *testing.T) {
	dir := t.TempDir()
	fsys := New(nil, 5)
	h := fsys.Fail(Rule{Ops: OpWrite})
	path := filepath.Join(dir, "c")
	if err := writeThrough(t, fsys, path, []byte("x")); err == nil {
		t.Fatal("rule did not fire")
	}
	fsys.Clear(h)
	if err := writeThrough(t, fsys, path, []byte("x")); err != nil {
		t.Fatalf("write after Clear failed: %v", err)
	}
}

func TestCustomErr(t *testing.T) {
	sentinel := errors.New("boom")
	dir := t.TempDir()
	fsys := New(nil, 6)
	fsys.Fail(Rule{Ops: OpMkdir, Err: sentinel})
	if err := fsys.MkdirAll(filepath.Join(dir, "sub"), 0o755); !errors.Is(err, sentinel) {
		t.Fatalf("custom error not injected: %v", err)
	}
}
