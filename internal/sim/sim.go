// Package sim implements the paper's simulator (Section 5.1, Figure 8): a
// true trace generator that moves objects along shortest walking-graph paths
// between randomly chosen destination rooms at Gaussian walking speeds, a
// raw reading generator that runs the noisy RFID sensor model against the
// true positions, and ground-truth query evaluation for scoring the
// probabilistic methods.
package sim

import (
	"fmt"
	"sort"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/rng"
	"repro/internal/walkgraph"
)

// TraceConfig parameterizes the true trace generator.
type TraceConfig struct {
	// NumObjects is the number of moving objects (paper default: 200).
	NumObjects int
	// SpeedMean/SpeedStd parameterize walking speeds (paper: 1 m/s, 0.1).
	SpeedMean, SpeedStd float64
	// MinSpeed/MaxSpeed truncate sampled speeds.
	MinSpeed, MaxSpeed float64
	// DwellMin/DwellMax bound the uniform dwell time an object spends in a
	// destination room before choosing the next destination.
	DwellMin, DwellMax model.Time
	// ChurnProb is the probability, evaluated each time a dwell ends, that
	// the object leaves the building instead of starting a new trip. Away
	// objects produce no readings and are excluded from ground truth until
	// they re-enter. Zero (the default) disables churn.
	ChurnProb float64
	// AwayMin/AwayMax bound the uniform time an object stays away.
	AwayMin, AwayMax model.Time
}

// DefaultTraceConfig returns the paper's trace parameters.
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{
		NumObjects: 200,
		SpeedMean:  1.0,
		SpeedStd:   0.1,
		MinSpeed:   0.1,
		MaxSpeed:   2.5,
		DwellMin:   5,
		DwellMax:   30,
	}
}

// Validate checks the configuration.
func (c TraceConfig) Validate() error {
	if c.NumObjects <= 0 {
		return fmt.Errorf("sim: NumObjects must be positive, got %d", c.NumObjects)
	}
	if c.SpeedMean <= 0 || c.SpeedStd < 0 {
		return fmt.Errorf("sim: invalid speed distribution (%v, %v)", c.SpeedMean, c.SpeedStd)
	}
	if c.MinSpeed <= 0 || c.MaxSpeed < c.MinSpeed {
		return fmt.Errorf("sim: invalid speed bounds [%v, %v]", c.MinSpeed, c.MaxSpeed)
	}
	if c.DwellMin < 0 || c.DwellMax < c.DwellMin {
		return fmt.Errorf("sim: invalid dwell bounds [%d, %d]", c.DwellMin, c.DwellMax)
	}
	if c.ChurnProb < 0 || c.ChurnProb > 1 {
		return fmt.Errorf("sim: ChurnProb %v out of [0, 1]", c.ChurnProb)
	}
	if c.ChurnProb > 0 && (c.AwayMin <= 0 || c.AwayMax < c.AwayMin) {
		return fmt.Errorf("sim: invalid away bounds [%d, %d]", c.AwayMin, c.AwayMax)
	}
	return nil
}

// walker is one simulated person.
type walker struct {
	id  model.ObjectID
	loc walkgraph.Location
	// path is the remaining node sequence to the destination; empty while
	// dwelling.
	path  []walkgraph.NodeID
	speed float64
	// dwellUntil is set while the walker rests inside a room.
	dwellUntil model.Time
	// roomPos is the walker's 2-D position inside the room while dwelling.
	roomPos geom.Point
	inRoom  bool
	// lateral is the walker's offset across the hallway width for the
	// current trip, making true positions genuinely two-dimensional.
	lateral float64
	// away marks a walker that left the building; returnAt is when it
	// re-enters.
	away     bool
	returnAt model.Time
}

// Simulator owns the true traces and the raw reading generation.
type Simulator struct {
	g      *walkgraph.Graph
	sensor *rfid.Sensor
	cfg    TraceConfig
	src    *rng.Source
	ws     []*walker
	now    model.Time
}

// New builds a simulator with the given seed. Objects start dwelling in
// uniformly random rooms.
func New(g *walkgraph.Graph, sensor *rfid.Sensor, cfg TraceConfig, seed int64) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{g: g, sensor: sensor, cfg: cfg, src: rng.New(seed)}
	rooms := g.Plan().Rooms()
	if len(rooms) == 0 {
		return nil, fmt.Errorf("sim: plan has no rooms to walk between")
	}
	for i := 0; i < cfg.NumObjects; i++ {
		room := rooms[s.src.Intn(len(rooms))]
		w := &walker{
			id:         model.ObjectID(i),
			loc:        g.LocationAtNode(g.RoomNode(room.ID)),
			inRoom:     true,
			roomPos:    s.randomPointInRoom(room),
			dwellUntil: model.Time(s.src.Intn(int(cfg.DwellMax-cfg.DwellMin+1))) + cfg.DwellMin,
		}
		s.ws = append(s.ws, w)
	}
	return s, nil
}

// MustNew is New for known-valid parameters.
func MustNew(g *walkgraph.Graph, sensor *rfid.Sensor, cfg TraceConfig, seed int64) *Simulator {
	s, err := New(g, sensor, cfg, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// randomPointInRoom draws a uniform point over the room's footprint,
// weighting composite parts by area.
func (s *Simulator) randomPointInRoom(r floorplan.Room) geom.Point {
	parts := r.AllParts()
	part := parts[0]
	// Single-part rooms skip the part draw, keeping the random stream (and
	// thus every seeded simulation) identical to plans without composites.
	if len(parts) > 1 {
		weights := make([]float64, len(parts))
		for i, p := range parts {
			weights[i] = p.Area()
		}
		part = parts[s.src.Categorical(weights)]
	}
	return geom.Pt(s.src.Uniform(part.Min.X, part.Max.X), s.src.Uniform(part.Min.Y, part.Max.Y))
}

// Now returns the current simulation second.
func (s *Simulator) Now() model.Time { return s.now }

// Graph returns the walking graph traces move on.
func (s *Simulator) Graph() *walkgraph.Graph { return s.g }

// Objects returns all object IDs in ascending order.
func (s *Simulator) Objects() []model.ObjectID {
	out := make([]model.ObjectID, len(s.ws))
	for i, w := range s.ws {
		out[i] = w.id
	}
	return out
}

// Step advances the simulation by one second: every walker moves along its
// trace, and the sensor model produces this second's raw readings.
func (s *Simulator) Step() (model.Time, []model.RawReading) {
	s.now++
	var raws []model.RawReading
	for _, w := range s.ws {
		s.advance(w)
		if w.away {
			continue // outside the building: no readings
		}
		if s.g.Edge(w.loc.Edge).Kind == walkgraph.LinkEdge {
			continue // stairwells are walled off from the readers
		}
		pos := s.truePoint(w)
		// Walls block RF: a tag inside a room is never read by the hallway
		// readers, even when Euclidean distance alone would allow it.
		if s.g.Plan().RoomAt(pos) != floorplan.NoRoom {
			continue
		}
		raws = append(raws, s.sensor.ReadSecond(s.src, w.id, pos, s.now)...)
	}
	return s.now, raws
}

// Run advances n seconds, discarding readings (warm-up helper).
func (s *Simulator) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// advance moves one walker one second forward.
func (s *Simulator) advance(w *walker) {
	if w.away {
		if s.now < w.returnAt {
			return
		}
		// Re-enter at a random room.
		rooms := s.g.Plan().Rooms()
		room := rooms[s.src.Intn(len(rooms))]
		w.away = false
		w.inRoom = true
		w.loc = s.g.LocationAtNode(s.g.RoomNode(room.ID))
		w.roomPos = s.randomPointInRoom(room)
		w.dwellUntil = s.now + s.dwell()
		return
	}
	if w.inRoom {
		if s.now < w.dwellUntil {
			return
		}
		// The dwell ended: maybe leave the building entirely.
		if s.cfg.ChurnProb > 0 && s.src.Bool(s.cfg.ChurnProb) {
			w.away = true
			w.returnAt = s.now + model.Time(s.src.Intn(int(s.cfg.AwayMax-s.cfg.AwayMin+1))) + s.cfg.AwayMin
			return
		}
		// Otherwise choose a new destination room and leave.
		s.startTrip(w)
		if w.inRoom {
			return // degenerate: chose the same room
		}
	}
	remaining := w.speed
	for remaining > 0 && len(w.path) > 0 {
		next := w.path[0]
		e := s.g.Edge(w.loc.Edge)
		var toNode float64
		if next == e.B {
			toNode = e.Length - w.loc.Offset
		} else {
			toNode = w.loc.Offset
		}
		if remaining < toNode {
			if next == e.B {
				w.loc.Offset += remaining
			} else {
				w.loc.Offset -= remaining
			}
			return
		}
		remaining -= toNode
		w.path = w.path[1:]
		if len(w.path) == 0 {
			// Arrived at the destination room node.
			w.loc = s.g.LocationAtNode(next)
			room := s.g.Node(next).Room
			w.inRoom = true
			w.roomPos = s.randomPointInRoom(s.g.Plan().Room(room))
			w.dwellUntil = s.now + s.dwell()
			return
		}
		eid, ok := s.g.EdgeBetween(next, w.path[0])
		if !ok {
			// Defensive: a broken path; restart the trip next second.
			w.loc = s.g.LocationAtNode(next)
			w.path = nil
			w.inRoom = s.g.Node(next).Kind == walkgraph.RoomCenter
			w.dwellUntil = s.now
			return
		}
		edge := s.g.Edge(eid)
		if edge.A == next {
			w.loc = walkgraph.Location{Edge: eid, Offset: 0}
		} else {
			w.loc = walkgraph.Location{Edge: eid, Offset: edge.Length}
		}
	}
}

func (s *Simulator) dwell() model.Time {
	return model.Time(s.src.Intn(int(s.cfg.DwellMax-s.cfg.DwellMin+1))) + s.cfg.DwellMin
}

// startTrip picks a random destination room distinct from the current one
// and computes the shortest path there.
func (s *Simulator) startTrip(w *walker) {
	rooms := s.g.Plan().Rooms()
	curRoom := s.g.RoomAt(w.loc)
	var dest floorplan.RoomID
	for {
		dest = rooms[s.src.Intn(len(rooms))].ID
		if dest != curRoom || len(rooms) == 1 {
			break
		}
	}
	destNode := s.g.RoomNode(dest)
	path, _ := s.g.PathFromLocation(w.loc, destNode)
	if len(path) == 0 {
		return // unreachable; stay put
	}
	// The walker is at a room node; drop the leading node if it is the
	// current position so path[0] is always the next node to reach.
	if here := s.g.NodeAt(w.loc, 1e-9); here != walkgraph.NoNode && len(path) > 0 && path[0] == here {
		path = path[1:]
	}
	if len(path) == 0 {
		return
	}
	w.path = path
	w.inRoom = false
	w.speed = s.src.TruncGaussian(s.cfg.SpeedMean, s.cfg.SpeedStd, s.cfg.MinSpeed, s.cfg.MaxSpeed)
	w.lateral = s.src.Uniform(-1, 1)
}

// truePoint returns the walker's true 2-D position: inside a room it is the
// walker's fixed dwell point; on a hallway it is the centerline point
// shifted by the walker's lateral offset across the hallway width.
func (s *Simulator) truePoint(w *walker) geom.Point {
	if w.inRoom {
		return w.roomPos
	}
	p := s.g.Point(w.loc)
	e := s.g.Edge(w.loc.Edge)
	if e.Kind != walkgraph.HallwayEdge {
		return p
	}
	h := s.g.Plan().Hallway(e.Hallway)
	half := h.Width / 2 * w.lateral
	if h.Horizontal() {
		return geom.Pt(p.X, p.Y+half)
	}
	return geom.Pt(p.X+half, p.Y)
}

// TruePosition returns an object's true 2-D position.
func (s *Simulator) TruePosition(obj model.ObjectID) geom.Point {
	return s.truePoint(s.ws[obj])
}

// TrueLocation returns an object's true walking-graph location.
func (s *Simulator) TrueLocation(obj model.ObjectID) walkgraph.Location {
	return s.ws[obj].loc
}

// InRoom reports whether the object is currently dwelling inside a room.
func (s *Simulator) InRoom(obj model.ObjectID) bool { return s.ws[obj].inRoom }

// Away reports whether the object has left the building.
func (s *Simulator) Away(obj model.ObjectID) bool { return s.ws[obj].away }

// TrueRange evaluates the ground-truth range query: the objects whose true
// positions lie inside the window, ascending by ID.
func (s *Simulator) TrueRange(q geom.Rect) []model.ObjectID {
	var out []model.ObjectID
	for _, w := range s.ws {
		if w.away {
			continue
		}
		if q.Contains(s.truePoint(w)) {
			out = append(out, w.id)
		}
	}
	return out
}

// TrueKNN evaluates the ground-truth kNN query by shortest network distance
// from the query point to every object's true location.
func (s *Simulator) TrueKNN(q geom.Point, k int) []model.ObjectID {
	loc := s.g.NearestLocation(q)
	nd := s.g.DistancesFromLocation(loc)
	type od struct {
		obj model.ObjectID
		d   float64
	}
	all := make([]od, 0, len(s.ws))
	for _, w := range s.ws {
		if w.away {
			continue
		}
		all = append(all, od{obj: w.id, d: s.g.DistToLocation(loc, nd, w.loc)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d < all[j].d
		}
		return all[i].obj < all[j].obj
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]model.ObjectID, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].obj
	}
	return out
}
