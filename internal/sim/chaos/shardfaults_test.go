package chaos

import (
	"os"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/floorplan"
	"repro/internal/rfid"
	"repro/internal/sim"
	"repro/internal/wal"
)

func shardFaultConfig(t *testing.T, shards int) (*floorplan.Plan, *rfid.Deployment, ShardFaultConfig) {
	t.Helper()
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	ec := engine.DefaultConfig()
	ec.Particle.Ns = 16
	ec.Seed = 41
	ec.Shards = shards
	ec.SlowQueryThreshold = 0
	ec.Durability = engine.DurabilityConfig{
		Dir:           t.TempDir(),
		Fsync:         wal.SyncAlways,
		SnapshotEvery: 7,
	}
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 12
	tc.DwellMin, tc.DwellMax = 2, 6
	return plan, dep, ShardFaultConfig{
		Engine:  ec,
		Trace:   tc,
		Seconds: 40,
		Seed:    909,
	}
}

// checkShardReport fails the test on any contract violation and, when
// CHAOS_LEDGER names a file, writes the conservation ledger there so CI can
// upload it as an artifact for the failed run.
func checkShardReport(t *testing.T, rep ShardFaultReport, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("shard-fault run failed: %v", err)
	}
	for _, m := range rep.Mismatches {
		t.Errorf("contract violation: %s", m)
	}
	if (t.Failed() || len(rep.Mismatches) > 0) && os.Getenv("CHAOS_LEDGER") != "" {
		body := "ledger for " + t.Name() + "\n" +
			strings.Join(rep.Ledger, "\n") + "\nmismatches:\n" +
			strings.Join(rep.Mismatches, "\n") + "\n"
		if werr := os.WriteFile(os.Getenv("CHAOS_LEDGER"), []byte(body), 0o644); werr != nil {
			t.Logf("write chaos ledger: %v", werr)
		}
	}
	t.Logf("quarantines=%d droppedQuarantined=%d transientAbsorbed=%d healed=%v ledger=%v",
		rep.Quarantines, rep.DroppedQuarantined, rep.TransientAbsorbed, rep.Healed, rep.Ledger)
}

// TestShardFaultPermanentQuarantine breaks one shard's disk permanently
// mid-stream: the shard must quarantine (exactly once), its readings must
// become typed drops, the other shards must keep every acked reading, and
// the end-of-run heal must bring the engine back to bit-for-bit equivalence
// with an unfaulted oracle over the effective stream.
func TestShardFaultPermanentQuarantine(t *testing.T) {
	plan, dep, cfg := shardFaultConfig(t, 4)
	cfg.Faults = []ShardFault{{Shard: 2, At: 10}}
	rep, err := RunShardFaults(plan, dep, cfg)
	checkShardReport(t, rep, err)
	if rep.Quarantines != 1 {
		t.Errorf("quarantines = %d, want 1", rep.Quarantines)
	}
	if rep.DroppedQuarantined == 0 {
		t.Error("no readings were dropped for the quarantined shard; fault never bit")
	}
	if !rep.Healed {
		t.Error("shard did not heal after the fault cleared")
	}
}

// TestShardFaultTransientAbsorbed injects a short transient write fault: the
// append retry loop must absorb it with no quarantine and no drops.
func TestShardFaultTransientAbsorbed(t *testing.T) {
	plan, dep, cfg := shardFaultConfig(t, 4)
	cfg.Faults = []ShardFault{{Shard: 1, At: 15, Transient: true, TransientTimes: 2}}
	rep, err := RunShardFaults(plan, dep, cfg)
	checkShardReport(t, rep, err)
	if rep.Quarantines != 0 {
		t.Errorf("transient fault caused %d quarantine(s); retries should have absorbed it", rep.Quarantines)
	}
	if rep.DroppedQuarantined != 0 {
		t.Errorf("transient fault dropped %d readings", rep.DroppedQuarantined)
	}
	if rep.TransientAbsorbed == 0 {
		t.Error("transient fault never fired; scenario proves nothing")
	}
}

// TestShardFaultMidStreamHeal clears the fault while the stream is still
// running: the shard heals mid-stream, resumes ingesting, and the final
// state matches the oracle (which saw the shard's readings vanish only for
// the quarantine window).
func TestShardFaultMidStreamHeal(t *testing.T) {
	plan, dep, cfg := shardFaultConfig(t, 4)
	cfg.Faults = []ShardFault{{Shard: 0, At: 8, Until: 22}}
	rep, err := RunShardFaults(plan, dep, cfg)
	checkShardReport(t, rep, err)
	if rep.Quarantines == 0 {
		t.Error("fault never quarantined the shard")
	}
	if !rep.Healed {
		t.Error("shard did not heal")
	}
}

// TestShardFaultTwoShards quarantines two of four shards at different times;
// the remaining two must carry the stream and both must heal.
func TestShardFaultTwoShards(t *testing.T) {
	if testing.Short() {
		t.Skip("two-shard fault scenario skipped in -short")
	}
	plan, dep, cfg := shardFaultConfig(t, 4)
	cfg.Faults = []ShardFault{
		{Shard: 1, At: 9},
		{Shard: 3, At: 18},
	}
	rep, err := RunShardFaults(plan, dep, cfg)
	checkShardReport(t, rep, err)
	if rep.Quarantines != 2 {
		t.Errorf("quarantines = %d, want 2", rep.Quarantines)
	}
	if !rep.Healed {
		t.Error("shards did not heal")
	}
}
