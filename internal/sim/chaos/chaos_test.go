package chaos

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/floorplan"
	"repro/internal/rfid"
	"repro/internal/sim"
	"repro/internal/wal"
)

func baseConfig(t *testing.T) (*floorplan.Plan, *rfid.Deployment, Config) {
	t.Helper()
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	ec := engine.DefaultConfig()
	ec.Particle.Ns = 16
	ec.Seed = 41
	ec.SlowQueryThreshold = 0
	ec.Durability = engine.DurabilityConfig{
		Dir:           t.TempDir(),
		Fsync:         wal.SyncAlways,
		SnapshotEvery: 7,
	}
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 8
	tc.DwellMin, tc.DwellMax = 2, 6
	return plan, dep, Config{
		Engine:  ec,
		Trace:   tc,
		Seconds: 40,
		Crashes: 4,
		Seed:    909,
	}
}

func checkReport(t *testing.T, rep Report, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	for _, m := range rep.Mismatches {
		t.Errorf("contract violation: %s", m)
	}
	if rep.Crashes == 0 {
		t.Fatal("harness performed no crashes; scenario proves nothing")
	}
	t.Logf("crashes=%d replayed=%d snapshots=%d redelivered=%d tornInjected=%d truncated=%d stats=%+v",
		rep.Crashes, rep.RecordsReplayed, rep.SnapshotsRestored, rep.RedeliveredSeconds,
		rep.TornBytesInjected, rep.TruncatedBytes, rep.Stats)
}

// TestKillRecover crashes an in-order (horizon 0) stream four times and
// requires the survivor to match the uncrashed oracle exactly. With fsync
// always and horizon 0 every acked second is on disk, so nothing is ever
// re-delivered.
func TestKillRecover(t *testing.T) {
	plan, dep, cfg := baseConfig(t)
	rep, err := Run(plan, dep, cfg)
	checkReport(t, rep, err)
	if rep.RedeliveredSeconds != 0 {
		t.Errorf("horizon 0 run re-delivered %d seconds; acked seconds were lost", rep.RedeliveredSeconds)
	}
	if rep.RecordsReplayed == 0 && rep.SnapshotsRestored == 0 {
		t.Error("no recovery work observed across 4 crashes")
	}
}

// TestKillRecoverTornTail additionally smears garbage over the WAL tail
// after every kill; recovery must truncate at least the injected bytes and
// still match the oracle.
func TestKillRecoverTornTail(t *testing.T) {
	plan, dep, cfg := baseConfig(t)
	cfg.TornTailBytes = 23
	rep, err := Run(plan, dep, cfg)
	checkReport(t, rep, err)
	if rep.TruncatedBytes < int64(rep.TornBytesInjected) {
		t.Errorf("truncated %d bytes < injected %d garbage bytes", rep.TruncatedBytes, rep.TornBytesInjected)
	}
}

// TestKillRecoverWithHorizon runs with a reorder horizon, so a crash loses
// the buffered-not-flushed window and the harness re-delivers it — the
// gateway retransmission model the recovery watermark policy is built for.
func TestKillRecoverWithHorizon(t *testing.T) {
	plan, dep, cfg := baseConfig(t)
	cfg.Engine.Ingest.Horizon = 3
	rep, err := Run(plan, dep, cfg)
	checkReport(t, rep, err)
}
