package chaos

import (
	"errors"
	"fmt"
	"reflect"
	"time"

	"repro/internal/engine"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/ingest"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/shardmap"
	"repro/internal/sim"
	"repro/internal/sim/errfs"
)

// ShardFault schedules one disk fault against one shard's WAL directory.
// The fault makes writes under shard-NNNN/ fail from delivery index At
// until delivery index Until (exclusive); Until <= At keeps it active to the
// end of the stream (the harness clears every fault before the heal phase).
type ShardFault struct {
	Shard int
	At    int
	Until int
	// Transient marks the injected errors retryable and bounds them to
	// TransientTimes failures: the append retry loop should absorb them
	// without quarantining the shard.
	Transient bool
	// TransientTimes is how many calls a transient fault fails (default 2,
	// under the default retry budget of 3).
	TransientTimes int
}

// ShardFaultConfig parameterizes one per-shard disk-fault scenario.
type ShardFaultConfig struct {
	// Engine is the sharded system's configuration. Durability.Dir and
	// Shards must be set; the harness installs its own fault-injecting
	// filesystem over Durability.FS and forces an in-order stream
	// (Ingest.Horizon = 0) so fault timing is deterministic: after
	// Ingest(t) returns, second t is flushed and the degraded set is
	// exactly what the flush left behind.
	Engine  engine.Config
	Trace   sim.TraceConfig
	Seconds int
	Faults  []ShardFault
	Seed    int64
}

// ShardFaultReport summarizes a per-shard fault scenario.
type ShardFaultReport struct {
	Seconds     int
	Quarantines int
	// DroppedQuarantined counts readings the router turned into typed drops
	// because their shard was out; the oracle never sees them.
	DroppedQuarantined int
	// TransientAbsorbed counts injected transient faults that fired without
	// quarantining anything (the retry loop ate them).
	TransientAbsorbed int
	Healed            bool
	// Ledger is the conservation accounting, one line per check — written
	// out as a CI artifact when a scenario fails.
	Ledger     []string
	Mismatches []string
}

// RunShardFaults drives a simulated stream into a sharded durable engine
// while injecting the scheduled per-shard disk faults, heals every
// quarantined shard after clearing the faults, and verifies the survivor
// against an unfaulted oracle fed the effective stream (the same deliveries
// minus the readings the router reported as quarantine drops). Healthy
// shards must never lose acked data; healed shards must rejoin bit-for-bit.
//
// Unlike Run, this harness performs no kills: a crash concurrent with a
// quarantine loses the router-side drop accounting (by design — those
// readings reached no WAL), which would make the conservation ledger
// inexact. Crash-plus-marker recovery is covered by the engine's own tests.
func RunShardFaults(plan *floorplan.Plan, dep *rfid.Deployment, cfg ShardFaultConfig) (ShardFaultReport, error) {
	var rep ShardFaultReport
	if !cfg.Engine.Durability.Enabled() {
		return rep, fmt.Errorf("chaos: Engine.Durability.Dir must be set")
	}
	if cfg.Engine.Shards < 2 {
		return rep, fmt.Errorf("chaos: shard faults need Shards >= 2, got %d", cfg.Engine.Shards)
	}
	if cfg.Seconds <= 0 {
		return rep, fmt.Errorf("chaos: Seconds must be positive, got %d", cfg.Seconds)
	}
	rep.Seconds = cfg.Seconds
	n := cfg.Engine.Shards

	fsys := errfs.New(nil, cfg.Seed)
	cfg.Engine.Durability.FS = fsys
	cfg.Engine.Ingest.Horizon = 0
	// Keep the background healer quiet: heals happen only at the harness's
	// explicit HealNow calls, so the rejoin boundary is deterministic.
	cfg.Engine.Durability.HealBaseDelay = time.Hour
	cfg.Engine.Durability.HealMaxDelay = time.Hour

	sys, err := engine.OpenSharded(plan, dep, cfg.Engine)
	if err != nil {
		return rep, err
	}
	defer sys.Close()
	world, err := sim.New(sys.Graph(), rfid.NewSensor(dep), cfg.Trace, cfg.Seed)
	if err != nil {
		return rep, err
	}
	deliveries := make([]delivery, cfg.Seconds)
	for i := range deliveries {
		t, raws := world.Step()
		deliveries[i] = delivery{t, raws}
	}

	handles := make([]*errfs.Handle, len(cfg.Faults))
	transient := make(map[int]bool, len(cfg.Faults))
	for fi, f := range cfg.Faults {
		if f.Shard < 0 || f.Shard >= n {
			return rep, fmt.Errorf("chaos: fault %d targets shard %d of %d", fi, f.Shard, n)
		}
		transient[fi] = f.Transient
	}

	// effective is the oracle's stream: each second minus the readings the
	// survivor's router dropped for quarantined shards that second.
	effective := make([]delivery, 0, cfg.Seconds)
	droppedByIngest := 0
	wasDegraded := make(map[int]bool)
	for i, d := range deliveries {
		for fi, f := range cfg.Faults {
			if f.At == i {
				times := 0 // permanent: every matching write fails
				if f.Transient {
					times = f.TransientTimes
					if times <= 0 {
						times = 2
					}
				}
				handles[fi] = fsys.Fail(errfs.Rule{
					Ops:       errfs.OpWrite,
					Path:      fmt.Sprintf("shard-%04d", f.Shard),
					Times:     times,
					Transient: f.Transient,
				})
			}
			if f.Until > f.At && f.Until == i && handles[fi] != nil {
				fsys.Clear(handles[fi])
				if err := sys.HealNow(); err != nil {
					rep.Mismatches = append(rep.Mismatches,
						fmt.Sprintf("mid-stream heal after fault %d cleared: %v", fi, err))
				}
			}
		}
		ierr := sys.Ingest(d.t, d.raws)
		if ierr != nil {
			var ie *ingest.Error
			if !errors.As(ierr, &ie) || ie.Kind != ingest.KindQuarantined {
				return rep, fmt.Errorf("chaos: ingest t=%d: %w", d.t, ierr)
			}
			droppedByIngest += ie.Dropped
		}
		// The degraded set after the flush tells us exactly which readings
		// the router dropped: the parts owned by non-live shards.
		degraded := make(map[int]bool)
		for _, s := range sys.DegradedShards() {
			degraded[s] = true
			if !wasDegraded[s] {
				rep.Quarantines++
				wasDegraded[s] = true
			}
		}
		for s := range wasDegraded {
			if !degraded[s] {
				delete(wasDegraded, s) // healed mid-stream; count a re-quarantine if it recurs
			}
		}
		if len(degraded) == 0 {
			effective = append(effective, d)
			continue
		}
		kept := make([]model.RawReading, 0, len(d.raws))
		for _, r := range d.raws {
			if degraded[shardmap.Of(r.Object, n)] {
				rep.DroppedQuarantined++
				continue
			}
			kept = append(kept, r)
		}
		effective = append(effective, delivery{d.t, kept})
	}

	// Heal phase: clear every remaining fault, then heal until the engine
	// reports no degraded shards. HealNow is synchronous; one call per
	// quarantined shard suffices once the disk is healthy again.
	fsys.Clear()
	deadline := time.Now().Add(5 * time.Second)
	for len(sys.DegradedShards()) > 0 && time.Now().Before(deadline) {
		// A kicked background attempt may hold a shard in HEALING briefly;
		// HealNow skips it, so poll until the engine settles.
		if err := sys.HealNow(); err != nil {
			rep.Mismatches = append(rep.Mismatches, fmt.Sprintf("heal: %v", err))
			break
		}
		if len(sys.DegradedShards()) > 0 {
			time.Sleep(10 * time.Millisecond)
		}
	}
	rep.Healed = len(sys.DegradedShards()) == 0
	if !rep.Healed {
		rep.Mismatches = append(rep.Mismatches,
			fmt.Sprintf("shards still degraded after heal phase: %v", sys.DegradedShards()))
	}
	sys.FlushIngest()
	for fi, h := range handles {
		if h != nil && transient[fi] && h.Fired() > 0 && rep.Quarantines == 0 {
			rep.TransientAbsorbed += h.Fired()
		}
	}

	// Oracle: an unfaulted, memory-only sharded engine fed the effective
	// stream. The survivor must be indistinguishable from it everywhere the
	// quarantine contract promises: clock, query answers, occupancy, events.
	oracleCfg := cfg.Engine
	oracleCfg.Durability = engine.DurabilityConfig{}
	oracle, err := engine.NewSharded(plan, dep, oracleCfg)
	if err != nil {
		return rep, err
	}
	for _, d := range effective {
		if err := oracle.Ingest(d.t, d.raws); err != nil {
			return rep, fmt.Errorf("chaos: oracle ingest t=%d: %w", d.t, err)
		}
	}
	oracle.FlushIngest()
	rep.Mismatches = append(rep.Mismatches, compareSharded(sys, oracle, plan)...)

	// Conservation ledger: every produced reading is either in the oracle's
	// effective stream or accounted as a quarantine drop, and the router's
	// typed-drop errors agree with the harness's own filter count.
	produced := 0
	for _, d := range deliveries {
		produced += len(d.raws)
	}
	fed := 0
	for _, d := range effective {
		fed += len(d.raws)
	}
	st := sys.Stats()
	rep.Ledger = append(rep.Ledger,
		fmt.Sprintf("produced=%d", produced),
		fmt.Sprintf("effective=%d", fed),
		fmt.Sprintf("droppedQuarantined(harness)=%d", rep.DroppedQuarantined),
		fmt.Sprintf("droppedQuarantined(ingest errors)=%d", droppedByIngest),
		fmt.Sprintf("droppedQuarantined(stats)=%d", st.Ingest.QuarantinedReadings),
		fmt.Sprintf("ingested=%d dropped=%d pending=%d", st.ReadingsIngested, st.ReadingsDropped, st.ReadingsPending),
	)
	if fed+rep.DroppedQuarantined != produced {
		rep.Mismatches = append(rep.Mismatches, fmt.Sprintf(
			"conservation: effective(%d) + quarantine drops(%d) != produced(%d)", fed, rep.DroppedQuarantined, produced))
	}
	if droppedByIngest != rep.DroppedQuarantined {
		rep.Mismatches = append(rep.Mismatches, fmt.Sprintf(
			"typed drops disagree: ingest errors reported %d, harness filtered %d", droppedByIngest, rep.DroppedQuarantined))
	}
	if st.Ingest.QuarantinedReadings != rep.DroppedQuarantined {
		rep.Mismatches = append(rep.Mismatches, fmt.Sprintf(
			"stats drops disagree: engine counted %d quarantined readings, harness filtered %d",
			st.Ingest.QuarantinedReadings, rep.DroppedQuarantined))
	}
	return rep, nil
}

// compareSharded checks the survivor against the oracle: clock, accounting,
// live query answers, occupancy, and the merged event log. Drop counters are
// excluded (the oracle never saw the dropped readings); ReadingsIngested
// must still agree — healthy shards lose nothing, healed shards resume.
func compareSharded(sys, oracle *engine.Sharded, plan *floorplan.Plan) []string {
	var ms []string
	if got, want := sys.Now(), oracle.Now(); got != want {
		ms = append(ms, fmt.Sprintf("clock: survivor now=%d oracle now=%d", got, want))
	}
	if got, want := sys.Stats().ReadingsIngested, oracle.Stats().ReadingsIngested; got != want {
		ms = append(ms, fmt.Sprintf("ingested: survivor %d oracle %d", got, want))
	}
	b := plan.Bounds()
	center := geom.Point{X: (b.Min.X + b.Max.X) / 2, Y: (b.Min.Y + b.Max.Y) / 2}
	if got, want := sys.RangeQuery(b), oracle.RangeQuery(b); !reflect.DeepEqual(got, want) {
		ms = append(ms, fmt.Sprintf("range query diverged: survivor %v oracle %v", got, want))
	}
	if got, want := sys.KNNQuery(center, 3), oracle.KNNQuery(center, 3); !reflect.DeepEqual(got, want) {
		ms = append(ms, fmt.Sprintf("knn query diverged: survivor %v oracle %v", got, want))
	}
	if got, want := sys.Occupancy(), oracle.Occupancy(); !reflect.DeepEqual(got, want) {
		ms = append(ms, "occupancy diverged")
	}
	gotEv, _, _ := sys.EventsSince(0)
	wantEv, _, _ := oracle.EventsSince(0)
	if !reflect.DeepEqual(gotEv, wantEv) {
		ms = append(ms, fmt.Sprintf("event log diverged: survivor %d events, oracle %d", len(gotEv), len(wantEv)))
	}
	return ms
}
