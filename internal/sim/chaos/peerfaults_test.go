package chaos

import (
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/floorplan"
	"repro/internal/rfid"
	"repro/internal/sim"
)

func peerFaultConfig(t *testing.T) (*floorplan.Plan, *rfid.Deployment, PeerFaultConfig) {
	t.Helper()
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	ec := engine.DefaultConfig()
	ec.Particle.Ns = 16
	ec.Seed = 43
	ec.SlowQueryThreshold = 0
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 12
	tc.DwellMin, tc.DwellMax = 2, 6
	return plan, dep, PeerFaultConfig{
		Engine:  ec,
		Trace:   tc,
		Seconds: 40,
		Seed:    911,
	}
}

// checkPeerReport fails the test on any contract violation and, when
// CHAOS_LEDGER names a file, writes the conservation ledger there so CI can
// upload it as an artifact for the failed run.
func checkPeerReport(t *testing.T, rep PeerFaultReport, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("peer-fault run failed: %v", err)
	}
	for _, m := range rep.Mismatches {
		t.Errorf("contract violation: %s", m)
	}
	if (t.Failed() || len(rep.Mismatches) > 0) && os.Getenv("CHAOS_LEDGER") != "" {
		body := "ledger for " + t.Name() + "\n" +
			strings.Join(rep.Ledger, "\n") + "\nmismatches:\n" +
			strings.Join(rep.Mismatches, "\n") + "\n"
		if werr := os.WriteFile(os.Getenv("CHAOS_LEDGER"), []byte(body), 0o644); werr != nil {
			t.Logf("write chaos ledger: %v", werr)
		}
	}
	t.Logf("droppedUnreachable=%d degradedObserved=%v healed=%v ledger=%v",
		rep.DroppedUnreachable, rep.DegradedObserved, rep.Healed, rep.Ledger)
}

// checkNoLeaks verifies the run left no goroutines behind: all cluster
// forwarding is synchronous, so quiescence means the baseline count.
func checkNoLeaks(t *testing.T, before int) {
	t.Helper()
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d before run, %d after", before, runtime.NumGoroutine())
}

// TestPeerFaultKillHeal kills node-1 mid-stream and heals it before the end:
// readings owed to it become typed unreachable drops, the survivor keeps
// answering (partial, naming the dead peer), and after heal both nodes
// answer range/kNN/occupancy bit-for-bit like a single-process oracle fed
// the effective stream — the ISSUE's pinned equivalence scenario.
func TestPeerFaultKillHeal(t *testing.T) {
	before := runtime.NumGoroutine()
	plan, dep, cfg := peerFaultConfig(t)
	cfg.Faults = []PeerFault{{Kind: "kill", At: 10, Until: 25}}
	rep, err := RunPeerFaults(plan, dep, cfg)
	checkPeerReport(t, rep, err)
	if rep.DroppedUnreachable == 0 {
		t.Error("no readings were dropped while node-1 was dead; fault never bit")
	}
	if !rep.DegradedObserved {
		t.Error("mid-fault query never reported the dead peer degraded")
	}
	if !rep.Healed {
		t.Error("cluster did not heal after the fault cleared")
	}
	checkNoLeaks(t, before)
}

// TestPeerFaultPartitionToEnd partitions the two nodes and never lifts the
// rule until the final heal phase: the catch-up queue replays the whole
// missed window at once.
func TestPeerFaultPartitionToEnd(t *testing.T) {
	before := runtime.NumGoroutine()
	plan, dep, cfg := peerFaultConfig(t)
	cfg.Faults = []PeerFault{{Kind: "partition", At: 20}}
	rep, err := RunPeerFaults(plan, dep, cfg)
	checkPeerReport(t, rep, err)
	if rep.DroppedUnreachable == 0 {
		t.Error("no readings were dropped during the partition; fault never bit")
	}
	if !rep.Healed {
		t.Error("cluster did not heal in the final phase")
	}
	checkNoLeaks(t, before)
}

// TestPeerFaultNoFaults is the control: a healthy two-node cluster must be
// indistinguishable from the oracle with zero drops.
func TestPeerFaultNoFaults(t *testing.T) {
	before := runtime.NumGoroutine()
	plan, dep, cfg := peerFaultConfig(t)
	rep, err := RunPeerFaults(plan, dep, cfg)
	checkPeerReport(t, rep, err)
	if rep.DroppedUnreachable != 0 {
		t.Errorf("healthy cluster dropped %d readings", rep.DroppedUnreachable)
	}
	if !rep.Healed {
		t.Error("healthy cluster reported itself degraded")
	}
	checkNoLeaks(t, before)
}

// TestPeerFaultRepeatedOutages kills and heals node-1 twice; the breaker
// must re-open and re-close and the final state must still match the oracle.
func TestPeerFaultRepeatedOutages(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated-outage scenario skipped in -short")
	}
	before := runtime.NumGoroutine()
	plan, dep, cfg := peerFaultConfig(t)
	cfg.Faults = []PeerFault{
		{Kind: "kill", At: 8, Until: 14},
		{Kind: "partition", At: 24, Until: 32},
	}
	rep, err := RunPeerFaults(plan, dep, cfg)
	checkPeerReport(t, rep, err)
	if rep.DroppedUnreachable == 0 {
		t.Error("no readings dropped across two outages; faults never bit")
	}
	if !rep.Healed {
		t.Error("cluster did not heal after the second outage")
	}
	checkNoLeaks(t, before)
}
