package chaos

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/health"
	"repro/internal/ingest"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/shardmap"
	"repro/internal/sim"
	"repro/internal/sim/netsim"
)

// PeerFault schedules one network fault against a two-node cluster, armed by
// delivery index like ShardFault: active from delivery At until delivery
// Until (exclusive); Until <= At keeps it active until the final heal phase.
type PeerFault struct {
	// Kind is "kill" (node-1's process is gone: every link touching it
	// drops) or "partition" (both nodes run, the link between them drops).
	// For a two-node cluster the two are indistinguishable to the survivor;
	// both are kept so scenarios read as what they model.
	Kind  string
	At    int
	Until int
}

// PeerFaultConfig parameterizes one peer-fault scenario.
type PeerFaultConfig struct {
	// Engine is each node's engine configuration. The harness enforces the
	// cluster determinism preconditions: memory-only (no durability),
	// in-order stream (Ingest.Horizon = 0), and the per-reader health
	// monitor disabled — a per-node monitor sees only its partition of the
	// stream, so its compensation would diverge from the single-process
	// oracle's (DESIGN.md §17).
	Engine  engine.Config
	Trace   sim.TraceConfig
	Seconds int
	Faults  []PeerFault
	Seed    int64
}

// PeerFaultReport summarizes a peer-fault scenario.
type PeerFaultReport struct {
	Seconds int
	// DroppedUnreachable counts readings the forwarder turned into typed
	// drops because their owner was unreachable; the oracle never sees them.
	DroppedUnreachable int
	// DegradedObserved reports that a query answered mid-fault carried the
	// typed partial marker naming the unreachable peer.
	DegradedObserved bool
	Healed           bool
	// Ledger is the conservation accounting, one line per check — written
	// out as a CI artifact when a scenario fails.
	Ledger     []string
	Mismatches []string
}

// RunPeerFaults drives a simulated stream into node-0 of a two-node netsim
// cluster while injecting the scheduled network faults, heals the cluster
// after clearing them, and verifies BOTH nodes against a single-process
// oracle fed the effective stream (the same deliveries minus the readings
// the forwarder reported as unreachable drops). The contract under test:
// every produced reading is acked by its owner exactly once or dropped with
// a typed reason; after heal, cluster answers are bit-for-bit the oracle's.
func RunPeerFaults(plan *floorplan.Plan, dep *rfid.Deployment, cfg PeerFaultConfig) (PeerFaultReport, error) {
	var rep PeerFaultReport
	if cfg.Seconds <= 0 {
		return rep, fmt.Errorf("chaos: Seconds must be positive, got %d", cfg.Seconds)
	}
	rep.Seconds = cfg.Seconds
	for fi, f := range cfg.Faults {
		if f.Kind != "kill" && f.Kind != "partition" {
			return rep, fmt.Errorf("chaos: fault %d: unknown kind %q", fi, f.Kind)
		}
	}
	ecfg := cfg.Engine
	ecfg.Durability = engine.DurabilityConfig{}
	ecfg.Ingest.Horizon = 0
	ecfg.Health = health.Config{}
	ecfg.Shards = 0

	const (
		addr0 = "node-0"
		addr1 = "node-1"
	)
	net := netsim.New(cfg.Seed)
	mkNode := func(self string) (*cluster.Node, *engine.System, error) {
		eng, err := engine.New(plan, dep, ecfg)
		if err != nil {
			return nil, nil, err
		}
		node, err := cluster.New(eng, cluster.Config{
			Self:      self,
			Peers:     []string{addr0, addr1},
			Transport: net.Transport(self),
			// No retransmissions and an effectively infinite probe interval:
			// fault boundaries land exactly on delivery indices, and heals
			// happen only at the harness's explicit ProbePeers calls.
			Retry:     cluster.RetryConfig{Max: -1},
			ProbeBase: 24 * time.Hour,
			ProbeMax:  24 * time.Hour,
			Seed:      cfg.Seed,
		})
		return node, eng, err
	}
	node0, eng0, err := mkNode(addr0)
	if err != nil {
		return rep, err
	}
	defer node0.Close()
	node1, eng1, err := mkNode(addr1)
	if err != nil {
		return rep, err
	}
	defer node1.Close()
	net.AddNode(addr0, node0)
	net.AddNode(addr1, node1)

	world, err := sim.New(eng0.Graph(), rfid.NewSensor(dep), cfg.Trace, cfg.Seed)
	if err != nil {
		return rep, err
	}
	deliveries := make([]delivery, cfg.Seconds)
	for i := range deliveries {
		t, raws := world.Step()
		deliveries[i] = delivery{t, raws}
	}

	// clear tears down a fault's rules and probes so node-0's breaker heals
	// and the catch-up seconds drain deterministically at the boundary.
	handles := make(map[int][]*netsim.Handle, len(cfg.Faults))
	clearFault := func(fi int) {
		for _, h := range handles[fi] {
			h.Clear()
		}
		delete(handles, fi)
		node0.ProbePeers(context.Background())
	}

	// effective is the oracle's stream: each second minus the readings the
	// forwarder dropped for the unreachable owner that second.
	effective := make([]delivery, 0, cfg.Seconds)
	droppedByErr := 0
	faultActive := false
	for i, d := range deliveries {
		for fi, f := range cfg.Faults {
			if f.Until > f.At && f.Until == i && handles[fi] != nil {
				clearFault(fi)
			}
			if f.At == i {
				switch f.Kind {
				case "kill":
					handles[fi] = []*netsim.Handle{net.Kill(addr1)}
				case "partition":
					h1, h2 := net.Partition(addr0, addr1)
					handles[fi] = []*netsim.Handle{h1, h2}
				}
			}
		}
		faultActive = len(handles) > 0

		before := node0.Stats().Ingest.UnreachableReadings
		ierr := node0.Ingest(d.t, d.raws)
		if ierr != nil {
			var ie *ingest.Error
			if !errors.As(ierr, &ie) || ie.Kind != ingest.KindUnreachable {
				return rep, fmt.Errorf("chaos: ingest t=%d: %w", d.t, ierr)
			}
			droppedByErr += ie.Dropped
		}
		delta := node0.Stats().Ingest.UnreachableReadings - before
		rep.DroppedUnreachable += delta

		// Reconstruct the delivery the cluster effectively acked. The only
		// readings node-0 can fail to place are node-1's.
		owned1 := 0
		for _, r := range d.raws {
			if shardmap.Of(r.Object, 2) == 1 {
				owned1++
			}
		}
		switch delta {
		case 0:
			effective = append(effective, d)
		case owned1:
			kept := make([]model.RawReading, 0, len(d.raws)-owned1)
			for _, r := range d.raws {
				if shardmap.Of(r.Object, 2) == 0 {
					kept = append(kept, r)
				}
			}
			effective = append(effective, delivery{d.t, kept})
		default:
			return rep, fmt.Errorf("chaos: t=%d: %d unreachable drops but node-1 owns %d readings", d.t, delta, owned1)
		}

		// Mid-fault, a query through the survivor must still answer — marked
		// partial with the unreachable peer named.
		if faultActive && delta > 0 && !rep.DegradedObserved {
			_, qerr := node0.RangeQueryContext(context.Background(), plan.Bounds())
			if de, ok := cluster.IsDegraded(qerr); ok {
				for _, p := range de.Peers {
					if p == addr1 {
						rep.DegradedObserved = true
					}
				}
			}
			if !rep.DegradedObserved {
				rep.Mismatches = append(rep.Mismatches, fmt.Sprintf(
					"t=%d: mid-fault query did not report peer %s degraded (err=%v)", d.t, addr1, qerr))
				rep.DegradedObserved = true // report once, not per second
			}
		}
	}

	// Heal phase: clear every remaining rule and probe until the breaker is
	// LIVE and the catch-up queue is drained.
	net.Clear()
	node0.ProbePeers(context.Background())
	node0.FlushIngest()
	node1.FlushIngest()
	st0 := node0.ClusterStatus()
	rep.Healed = !st0.Degraded
	for _, ps := range st0.Peers {
		if ps.PendingTicks != 0 {
			rep.Healed = false
			rep.Mismatches = append(rep.Mismatches, fmt.Sprintf(
				"peer %s still has %d catch-up seconds pending after heal", ps.Addr, ps.PendingTicks))
		}
	}
	if !rep.Healed {
		rep.Mismatches = append(rep.Mismatches, fmt.Sprintf("cluster still degraded after heal: %+v", st0.Peers))
	}

	// Oracle: one single-process engine fed the effective stream.
	oracle, err := engine.New(plan, dep, ecfg)
	if err != nil {
		return rep, err
	}
	defer oracle.Close()
	for _, d := range effective {
		if err := oracle.Ingest(d.t, d.raws); err != nil {
			return rep, fmt.Errorf("chaos: oracle ingest t=%d: %w", d.t, err)
		}
	}
	oracle.FlushIngest()

	rep.Mismatches = append(rep.Mismatches, compareNode("node-0", node0, oracle, plan)...)
	rep.Mismatches = append(rep.Mismatches, compareNode("node-1", node1, oracle, plan)...)

	// Conservation ledger: every produced reading is acked by its owner
	// exactly once (node-0 locally, node-1 via a forward), or dropped with
	// the typed unreachable reason — and all four accountings agree.
	produced := 0
	for _, d := range deliveries {
		produced += len(d.raws)
	}
	fed := 0
	for _, d := range effective {
		fed += len(d.raws)
	}
	var acked, remoteDropped int64
	for _, ps := range st0.Peers {
		acked += ps.AckedReadings
		remoteDropped += ps.RemoteDropped
	}
	ing0 := eng0.Stats().ReadingsIngested
	ing1 := eng1.Stats().ReadingsIngested
	rep.Ledger = append(rep.Ledger,
		fmt.Sprintf("produced=%d", produced),
		fmt.Sprintf("effective=%d", fed),
		fmt.Sprintf("droppedUnreachable(stats)=%d", rep.DroppedUnreachable),
		fmt.Sprintf("droppedUnreachable(ingest errors)=%d", droppedByErr),
		fmt.Sprintf("forwardAcked=%d remoteDropped=%d", acked, remoteDropped),
		fmt.Sprintf("ingested node-0=%d node-1=%d", ing0, ing1),
	)
	if fed+rep.DroppedUnreachable != produced {
		rep.Mismatches = append(rep.Mismatches, fmt.Sprintf(
			"conservation: effective(%d) + unreachable drops(%d) != produced(%d)", fed, rep.DroppedUnreachable, produced))
	}
	if droppedByErr != rep.DroppedUnreachable {
		rep.Mismatches = append(rep.Mismatches, fmt.Sprintf(
			"typed drops disagree: ingest errors reported %d, stats counted %d", droppedByErr, rep.DroppedUnreachable))
	}
	if remoteDropped != 0 {
		rep.Mismatches = append(rep.Mismatches, fmt.Sprintf(
			"owner refused %d forwarded readings (in-order stream should refuse none)", remoteDropped))
	}
	if int(ing0+ing1) != fed {
		rep.Mismatches = append(rep.Mismatches, fmt.Sprintf(
			"acked exactly once violated: node-0 ingested %d + node-1 ingested %d != effective %d", ing0, ing1, fed))
	}
	if int(acked) != int(ing1) {
		rep.Mismatches = append(rep.Mismatches, fmt.Sprintf(
			"forward acks disagree with owner: forwarder acked %d, node-1 ingested %d", acked, ing1))
	}
	return rep, nil
}

// compareNode checks one node's cluster-wide answers against the oracle:
// clock, range, kNN, and occupancy must be bit-for-bit identical no matter
// which node coordinates.
func compareNode(name string, node *cluster.Node, oracle *engine.System, plan *floorplan.Plan) []string {
	var ms []string
	if got, want := node.Now(), oracle.Now(); got != want {
		ms = append(ms, fmt.Sprintf("%s clock: cluster now=%d oracle now=%d", name, got, want))
	}
	b := plan.Bounds()
	center := geom.Point{X: (b.Min.X + b.Max.X) / 2, Y: (b.Min.Y + b.Max.Y) / 2}
	if got, want := node.RangeQuery(b), oracle.RangeQuery(b); !reflect.DeepEqual(got, want) {
		ms = append(ms, fmt.Sprintf("%s range query diverged: cluster %v oracle %v", name, got, want))
	}
	if got, want := node.KNNQuery(center, 3), oracle.KNNQuery(center, 3); !reflect.DeepEqual(got, want) {
		ms = append(ms, fmt.Sprintf("%s knn query diverged: cluster %v oracle %v", name, got, want))
	}
	if got, want := node.Occupancy(), oracle.Occupancy(); !reflect.DeepEqual(got, want) {
		ms = append(ms, fmt.Sprintf("%s occupancy diverged", name))
	}
	return ms
}
