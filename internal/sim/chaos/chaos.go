// Package chaos is the crash/restart harness for the durable engine: it
// drives a simulated reading stream into a WAL-backed system, hard-kills the
// process state at pseudo-random points (no Close, no flush — exactly what a
// power cut leaves behind), optionally smears garbage over the WAL tail, and
// reopens. At the end it verifies the survivor against a memory-only oracle
// fed the same effective delivery sequence: identical Stats, identical
// collector state, identical query answers.
//
// It lives under internal/sim because it is a simulation tool, but in its own
// package: the engine's own tests import internal/sim, so the harness (which
// imports engine) must sit one level down to stay cycle-free.
package chaos

import (
	"fmt"
	"math/rand"
	"os"
	"reflect"

	"repro/internal/engine"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/sim"
	"repro/internal/wal"
)

// Config parameterizes one chaos run.
type Config struct {
	// Engine is the durable system's configuration. Durability.Dir must be
	// set; the harness refuses to run without it (a memoryless crash test
	// proves nothing).
	Engine engine.Config
	// Trace parameterizes the simulated world.
	Trace sim.TraceConfig
	// Seconds is the stream length to drive.
	Seconds int
	// Crashes is how many hard kills to spread across the run.
	Crashes int
	// TornTailBytes, when non-zero, appends that many random garbage bytes
	// to the newest WAL segment after each crash, simulating a write torn
	// mid-record. Recovery must truncate them.
	TornTailBytes int
	// Seed drives the world, the crash schedule, and the garbage bytes.
	Seed int64
}

// Report summarizes what the run did and found.
type Report struct {
	// Seconds is the stream length driven; Crashes the kills performed.
	Seconds, Crashes int
	// RecordsReplayed and SnapshotsRestored are summed across restarts.
	RecordsReplayed   int
	SnapshotsRestored int
	// RedeliveredSeconds counts seconds the harness re-sent after a crash
	// because they were buffered (inside the reorder horizon) but not yet
	// flushed to the WAL — the gateway-retransmission model.
	RedeliveredSeconds int
	// TornBytesInjected / TruncatedBytes account the garbage smeared on the
	// tail and what recovery cut. Truncated can exceed injected when a kill
	// also tore a partially appended record.
	TornBytesInjected int
	TruncatedBytes    int64
	// Stats is the survivor's final accounting.
	Stats engine.Stats
	// Mismatches lists every divergence from the oracle; empty means the
	// crash-recovery contract held.
	Mismatches []string
}

type delivery struct {
	t    model.Time
	raws []model.RawReading
}

// Run executes one chaos scenario and verifies the survivor against an
// uncrashed oracle. It returns an error only for operational failures
// (bad config, I/O); contract violations land in Report.Mismatches.
func Run(plan *floorplan.Plan, dep *rfid.Deployment, cfg Config) (Report, error) {
	var rep Report
	if !cfg.Engine.Durability.Enabled() {
		return rep, fmt.Errorf("chaos: Engine.Durability.Dir must be set")
	}
	if cfg.Seconds <= 0 {
		return rep, fmt.Errorf("chaos: Seconds must be positive, got %d", cfg.Seconds)
	}
	rep.Seconds = cfg.Seconds

	sys, err := engine.Open(plan, dep, cfg.Engine)
	if err != nil {
		return rep, err
	}
	world, err := sim.New(sys.Graph(), rfid.NewSensor(dep), cfg.Trace, cfg.Seed)
	if err != nil {
		return rep, err
	}
	// Pre-generate the whole stream so post-crash rewinds re-send the exact
	// bytes a real gateway would retransmit.
	deliveries := make([]delivery, cfg.Seconds)
	for i := range deliveries {
		t, raws := world.Step()
		deliveries[i] = delivery{t, raws}
	}

	// Crash schedule: after which delivery indices to kill. Never after the
	// last one — the final stretch must prove post-recovery liveness.
	rng := rand.New(rand.NewSource(cfg.Seed + 7177))
	crashAfter := make(map[int]bool, cfg.Crashes)
	for len(crashAfter) < cfg.Crashes && len(crashAfter) < cfg.Seconds-1 {
		crashAfter[rng.Intn(cfg.Seconds-1)] = true
	}

	// fed is the effective delivery sequence: everything the surviving
	// state reflects. A crash erases the buffered-not-flushed window, so
	// the rewind cuts fed back to the recovered watermark before re-sending.
	fed := make([]delivery, 0, cfg.Seconds)
	i := 0
	for i < len(deliveries) {
		d := deliveries[i]
		if err := sys.Ingest(d.t, d.raws); err != nil {
			return rep, fmt.Errorf("chaos: ingest t=%d: %w", d.t, err)
		}
		fed = append(fed, d)
		if crashAfter[i] {
			delete(crashAfter, i) // a rewind may cross this index again
			rep.Crashes++
			// Hard kill: abandon the system without Close. Open file
			// handles leak for the run's duration, exactly like a killed
			// process until the OS reaps it.
			sys = nil
			if cfg.TornTailBytes > 0 {
				n, err := smearTail(cfg.Engine.Durability.Dir, rng, cfg.TornTailBytes)
				if err != nil {
					return rep, err
				}
				rep.TornBytesInjected += n
			}
			sys, err = engine.Open(plan, dep, cfg.Engine)
			if err != nil {
				return rep, fmt.Errorf("chaos: reopen after crash %d: %w", rep.Crashes, err)
			}
			rec := sys.Recovery()
			rep.RecordsReplayed += rec.RecordsReplayed
			rep.TruncatedBytes += rec.TruncatedBytes
			if rec.SnapshotRestored {
				rep.SnapshotsRestored++
			}
			// Rewind past the lost window: the recovered watermark is the
			// last acked second; everything newer must be re-sent.
			w := sys.Now()
			for len(fed) > 0 && fed[len(fed)-1].t > w {
				fed = fed[:len(fed)-1]
				i--
				rep.RedeliveredSeconds++
			}
		}
		i++
	}
	sys.FlushIngest()

	// Oracle: a memory-only system fed the effective sequence in one
	// uncrashed pass. The survivor must be indistinguishable from it.
	oracleCfg := cfg.Engine
	oracleCfg.Durability = engine.DurabilityConfig{}
	oracle, err := engine.New(plan, dep, oracleCfg)
	if err != nil {
		return rep, err
	}
	for _, d := range fed {
		if err := oracle.Ingest(d.t, d.raws); err != nil {
			return rep, fmt.Errorf("chaos: oracle ingest t=%d: %w", d.t, err)
		}
	}
	oracle.FlushIngest()

	rep.Stats = sys.Stats()
	rep.Mismatches = compare(sys, oracle, plan)

	// Conservation: every reading fed to the survivor's effective sequence
	// is either ingested, dropped with a reason, or (impossible after
	// FlushIngest) pending.
	produced := 0
	for _, d := range fed {
		produced += len(d.raws)
	}
	st := rep.Stats
	if got := st.ReadingsIngested + st.ReadingsDropped + st.ReadingsPending; got != produced {
		rep.Mismatches = append(rep.Mismatches, fmt.Sprintf(
			"conservation: ingested(%d)+dropped(%d)+pending(%d) = %d, want %d offered",
			st.ReadingsIngested, st.ReadingsDropped, st.ReadingsPending, got, produced))
	}

	if err := sys.Close(); err != nil {
		return rep, fmt.Errorf("chaos: final close: %w", err)
	}
	return rep, nil
}

// compare checks the survivor against the oracle: accounting, collector
// state, and live query answers over the plan's bounding box.
func compare(sys, oracle *engine.System, plan *floorplan.Plan) []string {
	var ms []string
	if got, want := sys.Now(), oracle.Now(); got != want {
		ms = append(ms, fmt.Sprintf("clock: survivor now=%d oracle now=%d", got, want))
	}
	if got, want := sys.Stats(), oracle.Stats(); !reflect.DeepEqual(got, want) {
		ms = append(ms, fmt.Sprintf("stats: survivor %+v oracle %+v", got, want))
	}
	if got, want := sys.Collector().Snapshot(), oracle.Collector().Snapshot(); !reflect.DeepEqual(got, want) {
		ms = append(ms, "collector state diverged")
	}
	// Query the whole floor: one range window over the plan bounds and a
	// kNN probe at its center. Order matters — run the same queries in the
	// same order on both so cache and counter effects stay symmetric.
	b := plan.Bounds()
	center := geom.Point{X: (b.Min.X + b.Max.X) / 2, Y: (b.Min.Y + b.Max.Y) / 2}
	if got, want := sys.RangeQuery(b), oracle.RangeQuery(b); !reflect.DeepEqual(got, want) {
		ms = append(ms, fmt.Sprintf("range query diverged: survivor %v oracle %v", got, want))
	}
	if got, want := sys.KNNQuery(center, 3), oracle.KNNQuery(center, 3); !reflect.DeepEqual(got, want) {
		ms = append(ms, fmt.Sprintf("knn query diverged: survivor %v oracle %v", got, want))
	}
	return ms
}

// smearTail appends n random bytes to the newest WAL segment, simulating a
// record torn mid-write by the kill.
func smearTail(dir string, rng *rand.Rand, n int) (int, error) {
	segs, err := wal.SegmentInfos(dir)
	if err != nil || len(segs) == 0 {
		return 0, err
	}
	garbage := make([]byte, n)
	rng.Read(garbage)
	f, err := os.OpenFile(segs[len(segs)-1].Path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if _, err := f.Write(garbage); err != nil {
		return 0, err
	}
	return n, nil
}
