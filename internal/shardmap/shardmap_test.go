package shardmap

import (
	"testing"

	"repro/internal/model"
)

func TestOfRange(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 16, 64} {
		for obj := model.ObjectID(0); obj < 1000; obj++ {
			i := Of(obj, shards)
			if i < 0 || i >= shards {
				t.Fatalf("Of(%d, %d) = %d out of range", obj, shards, i)
			}
		}
	}
}

func TestOfSingleShard(t *testing.T) {
	for _, shards := range []int{-1, 0, 1} {
		if got := Of(42, shards); got != 0 {
			t.Errorf("Of(42, %d) = %d, want 0", shards, got)
		}
	}
}

// TestOfDeterministic pins the assignment as a pure function: the sharded
// engine's recovery path depends on the same object landing in the same
// shard across processes.
func TestOfDeterministic(t *testing.T) {
	for obj := model.ObjectID(0); obj < 500; obj++ {
		a := Of(obj, 16)
		b := Of(obj, 16)
		if a != b {
			t.Fatalf("Of(%d, 16) unstable: %d then %d", obj, a, b)
		}
	}
}

// TestOfBalance checks the splitmix64+jump combination spreads sequential
// object IDs evenly: no shard may hold more than twice its fair share.
func TestOfBalance(t *testing.T) {
	const objects, shards = 10000, 16
	counts := make([]int, shards)
	for obj := model.ObjectID(0); obj < objects; obj++ {
		counts[Of(obj, shards)]++
	}
	fair := objects / shards
	for i, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Errorf("shard %d holds %d objects (fair share %d)", i, c, fair)
		}
	}
}

// TestJumpConsistency pins the jump hash's defining property: growing the
// bucket count never moves a key between two pre-existing buckets.
func TestJumpConsistency(t *testing.T) {
	for key := uint64(1); key < 2000; key += 7 {
		prev := Jump(mix(key), 8)
		next := Jump(mix(key), 9)
		if next != prev && next != 8 {
			t.Fatalf("key %d moved %d -> %d when adding bucket 8", key, prev, next)
		}
	}
}
