// Package shardmap assigns objects to in-process engine shards. The
// assignment is a pure function of (object ID, shard count): every router,
// every recovery, and every test partitions identically, which is what lets
// the sharded engine promise bit-for-bit equivalence with the single-shard
// one — an object's readings, cache entries, and WAL records always land in
// the same shard.
//
// The map is a splitmix64 finalizer (so adjacent object IDs scatter) feeding
// Lamping–Veach jump consistent hashing. Jump hashing keeps the assignment
// balanced at any shard count and moves only ~1/(n+1) of the keys when the
// count grows from n to n+1 — relevant for future resharding tooling, and
// free today.
package shardmap

import "repro/internal/model"

// Of returns the shard index in [0, shards) owning the object. shards < 2
// always yields 0, so single-shard callers can use it unconditionally.
func Of(obj model.ObjectID, shards int) int {
	if shards < 2 {
		return 0
	}
	return Jump(mix(uint64(obj)), shards)
}

// Jump is the Lamping–Veach jump consistent hash: a O(log n) bucket
// assignment with no lookup table, balanced to within sampling error.
func Jump(key uint64, buckets int) int {
	var b, j int64 = -1, 0
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// mix is the splitmix64 finalizer: a bijective avalanche so the sequential
// object IDs a simulator hands out do not stripe across buckets.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
