// Package metrics implements the paper's evaluation metrics: Kullback-
// Leibler divergence between probabilistic query answers and the ground
// truth (Equation 7), kNN hit rate, and the top-k success rate of inferred
// location distributions.
package metrics

import (
	"math"
	"sort"

	"repro/internal/anchor"
	"repro/internal/model"
)

// DefaultEpsilon is the smoothing constant added to every bin before
// normalizing. Equation 7 is undefined when Q has zero mass where P does
// not; epsilon smoothing is the standard remedy and is applied identically
// to both methods under comparison.
const DefaultEpsilon = 1e-6

// KLDivergence returns D_KL(P || Q) over the union of the two supports,
// with epsilon smoothing and renormalization. P is the ground truth and Q
// the method's answer. The result is >= 0 (within floating-point error) and
// 0 when the distributions agree exactly.
func KLDivergence(p, q model.ResultSet, eps float64) float64 {
	seen := make(map[model.ObjectID]struct{}, len(p)+len(q))
	for o := range p {
		seen[o] = struct{}{}
	}
	for o := range q {
		seen[o] = struct{}{}
	}
	if len(seen) == 0 {
		return 0
	}
	// Sort the support so the floating-point summation order (and thus the
	// result, bit for bit) is deterministic regardless of map layout.
	support := make([]model.ObjectID, 0, len(seen))
	for o := range seen {
		support = append(support, o)
	}
	sort.Slice(support, func(i, j int) bool { return support[i] < support[j] })
	pTotal, qTotal := 0.0, 0.0
	for _, o := range support {
		pTotal += p[o] + eps
		qTotal += q[o] + eps
	}
	d := 0.0
	for _, o := range support {
		pi := (p[o] + eps) / pTotal
		qi := (q[o] + eps) / qTotal
		if pi > 0 {
			d += pi * math.Log(pi/qi)
		}
	}
	if d < 0 {
		return 0 // rounding guard: KL divergence is non-negative
	}
	return d
}

// HitRate returns |returned intersect truth| / |truth|: the fraction of the
// ground-truth result set a method recovered. It returns 1 when the truth is
// empty (nothing to miss).
func HitRate(returned, truth []model.ObjectID) float64 {
	if len(truth) == 0 {
		return 1
	}
	in := make(map[model.ObjectID]bool, len(returned))
	for _, o := range returned {
		in[o] = true
	}
	hits := 0
	for _, o := range truth {
		if in[o] {
			hits++
		}
	}
	return float64(hits) / float64(len(truth))
}

// TopKLocations returns the k anchor points with the highest probability in
// the distribution, ties broken toward lower anchor IDs for determinism.
func TopKLocations(dist map[anchor.ID]float64, k int) []anchor.ID {
	type ap struct {
		id anchor.ID
		p  float64
	}
	all := make([]ap, 0, len(dist))
	for id, p := range dist {
		all = append(all, ap{id: id, p: p})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].p != all[j].p {
			return all[i].p > all[j].p
		}
		return all[i].id < all[j].id
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]anchor.ID, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].id
	}
	return out
}

// TopKSuccess reports whether the true anchor location is among the top-k
// predicted anchor points of the distribution.
func TopKSuccess(dist map[anchor.ID]float64, trueAnchor anchor.ID, k int) bool {
	for _, id := range TopKLocations(dist, k) {
		if id == trueAnchor {
			return true
		}
	}
	return false
}

// SilentLoss returns the number of readings a pipeline lost without
// accounting for them: the readings offered minus those accepted, dropped
// with a counted reason, or still pending in a reorder buffer. A hardened
// ingestion path keeps this at exactly zero under any fault pattern.
func SilentLoss(offered, accepted, dropped, pending int) int {
	return offered - accepted - dropped - pending
}

// DropRate returns the fraction of non-pending input that was dropped,
// dropped/(accepted+dropped), or 0 when there was no input.
func DropRate(accepted, dropped int) float64 {
	if accepted+dropped == 0 {
		return 0
	}
	return float64(dropped) / float64(accepted+dropped)
}

// Mean returns the arithmetic mean of the values, or NaN when empty.
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	total := 0.0
	for _, v := range vs {
		total += v
	}
	return total / float64(len(vs))
}

// Stddev returns the sample standard deviation, or 0 for fewer than two
// values.
func Stddev(vs []float64) float64 {
	if len(vs) < 2 {
		return 0
	}
	m := Mean(vs)
	sq := 0.0
	for _, v := range vs {
		sq += (v - m) * (v - m)
	}
	return math.Sqrt(sq / float64(len(vs)-1))
}
