package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/anchor"
	"repro/internal/model"
)

func TestKLDivergenceZeroForIdentical(t *testing.T) {
	p := model.ResultSet{1: 0.5, 2: 0.5}
	if d := KLDivergence(p, p.Clone(), DefaultEpsilon); d > 1e-12 {
		t.Errorf("KL(P||P) = %v", d)
	}
}

func TestKLDivergencePositiveForDifferent(t *testing.T) {
	p := model.ResultSet{1: 1.0}
	q := model.ResultSet{2: 1.0}
	if d := KLDivergence(p, q, DefaultEpsilon); d <= 1 {
		t.Errorf("KL for disjoint masses = %v, want large", d)
	}
}

func TestKLDivergenceOrderMatters(t *testing.T) {
	p := model.ResultSet{1: 0.9, 2: 0.1}
	q := model.ResultSet{1: 0.5, 2: 0.5}
	dpq := KLDivergence(p, q, DefaultEpsilon)
	dqp := KLDivergence(q, p, DefaultEpsilon)
	if dpq <= 0 || dqp <= 0 {
		t.Fatalf("non-positive divergences %v, %v", dpq, dqp)
	}
	if math.Abs(dpq-dqp) < 1e-9 {
		t.Error("KL should be asymmetric for these inputs")
	}
}

func TestKLDivergenceEmpty(t *testing.T) {
	if d := KLDivergence(nil, nil, DefaultEpsilon); d != 0 {
		t.Errorf("empty KL = %v", d)
	}
}

func TestKLDivergenceNonNegativeProperty(t *testing.T) {
	f := func(ps, qs [8]float64) bool {
		p, q := model.ResultSet{}, model.ResultSet{}
		for i := range ps {
			p[model.ObjectID(i)] = math.Abs(math.Mod(ps[i], 1))
			q[model.ObjectID(i)] = math.Abs(math.Mod(qs[i], 1))
		}
		return KLDivergence(p, q, DefaultEpsilon) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestKLDivergenceBetterApproximationScoresLower(t *testing.T) {
	truth := model.ResultSet{1: 1.0, 2: 1.0} // both objects in range
	good := model.ResultSet{1: 0.9, 2: 0.8, 3: 0.1}
	bad := model.ResultSet{1: 0.1, 3: 0.9, 4: 0.9}
	dg := KLDivergence(truth, good, DefaultEpsilon)
	db := KLDivergence(truth, bad, DefaultEpsilon)
	if dg >= db {
		t.Errorf("good answer KL %v >= bad answer KL %v", dg, db)
	}
}

func TestHitRate(t *testing.T) {
	truth := []model.ObjectID{1, 2, 3}
	if hr := HitRate([]model.ObjectID{1, 2, 3}, truth); hr != 1 {
		t.Errorf("perfect hit rate = %v", hr)
	}
	if hr := HitRate([]model.ObjectID{1, 5, 6}, truth); math.Abs(hr-1.0/3) > 1e-12 {
		t.Errorf("one-of-three hit rate = %v", hr)
	}
	if hr := HitRate(nil, truth); hr != 0 {
		t.Errorf("empty return hit rate = %v", hr)
	}
	if hr := HitRate([]model.ObjectID{1}, nil); hr != 1 {
		t.Errorf("empty truth hit rate = %v", hr)
	}
	// Returned set may be larger than truth without penalty (the paper
	// counts hits over the ground truth set).
	if hr := HitRate([]model.ObjectID{1, 2, 3, 4, 5}, truth); hr != 1 {
		t.Errorf("superset hit rate = %v", hr)
	}
}

func TestTopKLocations(t *testing.T) {
	dist := map[anchor.ID]float64{1: 0.1, 2: 0.6, 3: 0.3}
	top := TopKLocations(dist, 2)
	if len(top) != 2 || top[0] != 2 || top[1] != 3 {
		t.Errorf("top-2 = %v", top)
	}
	// k beyond the support returns everything.
	if got := TopKLocations(dist, 10); len(got) != 3 {
		t.Errorf("oversized k = %v", got)
	}
	// Ties break to the lower ID.
	tie := map[anchor.ID]float64{5: 0.5, 3: 0.5}
	if got := TopKLocations(tie, 1); got[0] != 3 {
		t.Errorf("tie-break = %v", got)
	}
}

func TestTopKSuccess(t *testing.T) {
	dist := map[anchor.ID]float64{1: 0.1, 2: 0.6, 3: 0.3}
	if !TopKSuccess(dist, 2, 1) {
		t.Error("top-1 should contain anchor 2")
	}
	if TopKSuccess(dist, 1, 1) {
		t.Error("top-1 should not contain anchor 1")
	}
	if !TopKSuccess(dist, 3, 2) {
		t.Error("top-2 should contain anchor 3")
	}
	if TopKSuccess(nil, 1, 3) {
		t.Error("empty distribution cannot succeed")
	}
}

func TestMeanAndStddev(t *testing.T) {
	vs := []float64{1, 2, 3, 4}
	if m := Mean(vs); math.Abs(m-2.5) > 1e-12 {
		t.Errorf("Mean = %v", m)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if s := Stddev(vs); math.Abs(s-1.2909944487) > 1e-6 {
		t.Errorf("Stddev = %v", s)
	}
	if Stddev([]float64{5}) != 0 {
		t.Error("Stddev of singleton should be 0")
	}
}

func TestSilentLoss(t *testing.T) {
	if got := SilentLoss(100, 90, 6, 4); got != 0 {
		t.Errorf("balanced pipeline: silent loss %d", got)
	}
	if got := SilentLoss(100, 90, 6, 0); got != 4 {
		t.Errorf("leaky pipeline: silent loss %d, want 4", got)
	}
	if got := SilentLoss(0, 0, 0, 0); got != 0 {
		t.Errorf("empty pipeline: silent loss %d", got)
	}
}

func TestDropRate(t *testing.T) {
	if got := DropRate(0, 0); got != 0 {
		t.Errorf("no input: drop rate %v", got)
	}
	if got := DropRate(90, 10); got != 0.1 {
		t.Errorf("drop rate %v, want 0.1", got)
	}
	if got := DropRate(0, 5); got != 1 {
		t.Errorf("all dropped: drop rate %v, want 1", got)
	}
}
