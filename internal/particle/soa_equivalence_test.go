package particle

import (
	"testing"

	"repro/internal/model"
	"repro/internal/rng"
)

// TestSoAKernelMatchesAoSBitForBit is the determinism-contract property test
// of the structure-of-arrays kernel: on 50 random floorplans and random
// reading streams, a full pooled Run must produce exactly the particle set of
// the array-of-structs reference path — same locations, directions, speeds,
// resting flags, and weights, down to the last bit. Both paths consume the
// same random stream, so any divergence in motion, reweighting, recovery,
// resampling, or roughening would desynchronize them visibly.
func TestSoAKernelMatchesAoSBitForBit(t *testing.T) {
	pool := NewPool() // shared across trials, like an engine worker's pool
	for trial := 0; trial < 50; trial++ {
		g, dep := randomSetup(t, trial)

		cfgSoA := DefaultConfig()
		cfgAoS := DefaultConfig()
		cfgAoS.DisableSoAKernel = true
		fSoA := MustNew(cfgSoA, g, dep)
		fAoS := MustNew(cfgAoS, g, dep)
		if !fSoA.SoAKernel() || fAoS.SoAKernel() {
			t.Fatal("SoA knob did not select the expected paths")
		}

		src := rng.New(int64(15000 + trial))
		entries := randomEntries(src, dep, 40+trial)
		now := entries[len(entries)-1].Time + model.Time(trial%8)

		stSoA, errSoA := fSoA.RunPool(pool, rng.Derive(7, int64(trial)), 1, entries, now)
		stAoS, errAoS := fAoS.RunPool(pool, rng.Derive(7, int64(trial)), 1, entries, now)
		if (errSoA == nil) != (errAoS == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, errSoA, errAoS)
		}
		if !statesEqual(stSoA, stAoS) {
			t.Fatalf("trial %d: SoA and AoS filter output diverged\nsoa: %+v\naos: %+v",
				trial, stSoA, stAoS)
		}

		// The cache-hit path must agree too: advance both states further
		// with a second batch of readings.
		more := randomEntries(src, dep, 20)
		for i := range more {
			more[i].Time += now + 1
		}
		later := now + 25
		fSoA.AdvancePool(pool, rng.Derive(8, int64(trial)), stSoA, more, later)
		fAoS.AdvancePool(pool, rng.Derive(8, int64(trial)), stAoS, more, later)
		if !statesEqual(stSoA, stAoS) {
			t.Fatalf("trial %d: AdvancePool diverged between SoA and AoS paths", trial)
		}
	}
}

// TestSoAKernelMatchesAoSInstrumented repeats a handful of trials with stage
// timing enabled: instrumentation must not perturb the particle output, and
// the non-timing RunStats fields (step/detection/resample counts, ESS) must
// agree exactly between the kernels.
func TestSoAKernelMatchesAoSInstrumented(t *testing.T) {
	pool := NewPool()
	for trial := 0; trial < 8; trial++ {
		g, dep := randomSetup(t, trial)
		cfgAoS := DefaultConfig()
		cfgAoS.DisableSoAKernel = true
		fSoA := MustNew(DefaultConfig(), g, dep)
		fAoS := MustNew(cfgAoS, g, dep)
		fSoA.Instrument(Metrics{})
		fAoS.Instrument(Metrics{})

		src := rng.New(int64(16000 + trial))
		entries := randomEntries(src, dep, 50)
		now := entries[len(entries)-1].Time + 3

		stSoA, _ := fSoA.RunPool(pool, rng.Derive(9, int64(trial)), 1, entries, now)
		stAoS, _ := fAoS.RunPool(pool, rng.Derive(9, int64(trial)), 1, entries, now)
		if !statesEqual(stSoA, stAoS) {
			t.Fatalf("trial %d: instrumented SoA and AoS output diverged", trial)
		}
		a, b := stSoA.LastRun, stAoS.LastRun
		if a.From != b.From || a.To != b.To || a.Steps != b.Steps ||
			a.Detections != b.Detections || a.Resamples != b.Resamples || a.ESS != b.ESS {
			t.Fatalf("trial %d: RunStats diverged: %+v vs %+v", trial, a, b)
		}
	}
}

// TestSoAKernelFallbacks pins the dispatch rules: a nil pool, a custom
// resampler, the geometric path, and the explicit knob must all take the AoS
// path — and still produce identical output through the pooled entry points.
func TestSoAKernelFallbacks(t *testing.T) {
	g, dep := randomSetup(t, 3)
	src := rng.New(42)
	entries := randomEntries(src, dep, 30)
	now := entries[len(entries)-1].Time + 2

	base := MustNew(DefaultConfig(), g, dep)
	if !base.SoAKernel() {
		t.Fatal("default indexed filter should enable the SoA kernel")
	}
	want, err := base.Run(rng.Derive(1), 1, entries, now)
	if err != nil {
		t.Fatal(err)
	}

	cfgMulti := DefaultConfig()
	cfgMulti.Resample = Multinomial
	cfgGeo := DefaultConfig()
	cfgGeo.DisableCoverageIndex = true
	cfgOff := DefaultConfig()
	cfgOff.DisableSoAKernel = true
	for name, f := range map[string]*Filter{
		"multinomial": MustNew(cfgMulti, g, dep),
		"geometric":   MustNew(cfgGeo, g, dep),
		"disabled":    MustNew(cfgOff, g, dep),
	} {
		if f.SoAKernel() {
			t.Fatalf("%s: SoA kernel unexpectedly enabled", name)
		}
	}

	// nil pool on an SoA-capable filter: must fall back, not crash, and
	// match the plain Run output exactly.
	got, err := base.RunPool(nil, rng.Derive(1), 1, entries, now)
	if err != nil {
		t.Fatal(err)
	}
	if !statesEqual(got, want) {
		t.Fatal("nil-pool RunPool diverged from Run")
	}
	// Pooled run on an SoA-capable filter must match the plain Run too.
	got2, err := base.RunPool(NewPool(), rng.Derive(1), 1, entries, now)
	if err != nil {
		t.Fatal(err)
	}
	if !statesEqual(got2, want) {
		t.Fatal("pooled RunPool diverged from Run")
	}
}
