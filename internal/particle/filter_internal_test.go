package particle

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/rng"
	"repro/internal/walkgraph"
)

// longCorridor builds an 80 m hallway with readers every 10 m, for
// exercising the silence/negative-information machinery over long runs.
func longCorridor(t *testing.T) (*walkgraph.Graph, *rfid.Deployment) {
	t.Helper()
	b := floorplan.NewBuilder()
	h := b.AddHallway("h", geom.Seg(geom.Pt(0, 10), geom.Pt(80, 10)), 2)
	b.AddRoom("R0", geom.RectWH(22, 3, 6, 6), h)
	b.AddRoom("R1", geom.RectWH(52, 3, 6, 6), h)
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := walkgraph.MustBuild(plan)
	var readers []rfid.Reader
	for x := 10.0; x <= 70; x += 10 {
		readers = append(readers, rfid.Reader{Pos: geom.Pt(x, 10), Range: 2})
	}
	return g, rfid.NewDeployment(readers)
}

// TestRecoveryOnInconsistentObservation drives the filter into a state where
// no particle matches a reading and verifies the kidnapped-robot recovery
// reinitializes the cloud inside the detecting reader's range.
func TestRecoveryOnInconsistentObservation(t *testing.T) {
	g, dep := longCorridor(t)
	f := MustNew(DefaultConfig(), g, dep)
	src := rng.New(3)
	// Readings jump from reader 0 (x=10) to reader 6 (x=70) in one second —
	// physically impossible, so every particle is inconsistent.
	entries := []model.AggregatedReading{
		{Object: 1, Reader: 0, Time: 0},
		{Object: 1, Reader: 6, Time: 1},
	}
	st, err := f.Run(src, 1, entries, 1)
	if err != nil {
		t.Fatal(err)
	}
	reader := dep.Reader(6)
	for _, p := range st.Particles {
		if !reader.Covers(g.Point(p.Loc)) {
			t.Fatalf("particle at %v outside the recovering reader's range", g.Point(p.Loc))
		}
	}
}

// TestNegativeUpdatePushesMassOutOfRanges verifies that prolonged silence
// drains probability mass from covered zones.
func TestNegativeUpdatePushesMassOutOfRanges(t *testing.T) {
	g, dep := longCorridor(t)
	cfg := DefaultConfig()
	f := MustNew(cfg, g, dep)
	src := rng.New(4)
	entries := []model.AggregatedReading{
		{Object: 1, Reader: 3, Time: 0}, // at x=40
	}
	// After 12 silent seconds, particles that wandered into the adjacent
	// readers' ranges (x=30, x=50) should have been demoted.
	st, err := f.Run(src, 1, entries, 12)
	if err != nil {
		t.Fatal(err)
	}
	inRange := 0.0
	total := 0.0
	for _, p := range st.Particles {
		total += p.Weight
		pos := g.Point(p.Loc)
		if _, covered := dep.CoveringReader(pos); covered && g.RoomAt(p.Loc) == floorplan.NoRoom {
			inRange += p.Weight
		}
	}
	if inRange/total > 0.35 {
		t.Errorf("mass still inside silent ranges = %v", inRange/total)
	}
}

// TestNegativeInfoOffMatchesPaperAlgorithm verifies the ablation switch: with
// UseNegativeInfo off, silent seconds change nothing but particle motion
// (weights stay untouched).
func TestNegativeInfoOffMatchesPaperAlgorithm(t *testing.T) {
	g, dep := longCorridor(t)
	cfg := DefaultConfig()
	cfg.UseNegativeInfo = false
	f := MustNew(cfg, g, dep)
	src := rng.New(5)
	entries := []model.AggregatedReading{{Object: 1, Reader: 3, Time: 0}}
	st, err := f.Run(src, 1, entries, 10)
	if err != nil {
		t.Fatal(err)
	}
	// All weights remain the uniform initial value.
	want := 1.0 / float64(cfg.Ns)
	for _, p := range st.Particles {
		if math.Abs(p.Weight-want) > 1e-12 {
			t.Fatalf("weight %v changed despite disabled negative info", p.Weight)
		}
	}
}

// TestRougheningPreservesSpeedBounds verifies resampled speeds stay within
// the configured bounds under heavy jitter.
func TestRougheningPreservesSpeedBounds(t *testing.T) {
	g, dep := longCorridor(t)
	cfg := DefaultConfig()
	cfg.SpeedJitter = 0.5
	f := MustNew(cfg, g, dep)
	src := rng.New(6)
	entries := []model.AggregatedReading{
		{Object: 1, Reader: 2, Time: 0},
		{Object: 1, Reader: 3, Time: 10},
		{Object: 1, Reader: 4, Time: 20},
	}
	st, err := f.Run(src, 1, entries, 25)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range st.Particles {
		if p.Speed < cfg.MinSpeed || p.Speed > cfg.MaxSpeed {
			t.Fatalf("speed %v escaped [%v, %v]", p.Speed, cfg.MinSpeed, cfg.MaxSpeed)
		}
	}
}

// TestZeroJitterKeepsCloneSpeeds verifies disabling roughening leaves
// resampled speeds exactly equal to their parents'.
func TestZeroJitterKeepsCloneSpeeds(t *testing.T) {
	g, dep := longCorridor(t)
	cfg := DefaultConfig()
	cfg.SpeedJitter = 0
	cfg.UseNegativeInfo = false
	f := MustNew(cfg, g, dep)
	src := rng.New(7)
	st := f.InitAt(src, 1, 3, 0)
	speeds := make(map[float64]bool)
	for _, p := range st.Particles {
		speeds[p.Speed] = true
	}
	// Reweight + resample: all surviving speeds must come from the initial
	// set.
	f.reweight(st.Particles, 3)
	NormalizeWeights(st.Particles)
	st.Particles = cfg.Resample(src, nil, st.Particles)
	f.roughen(src, st.Particles) // no-op at zero jitter
	for _, p := range st.Particles {
		if !speeds[p.Speed] {
			t.Fatalf("speed %v not inherited from a parent", p.Speed)
		}
	}
}

// TestAdvanceIsIncrementallyConsistent checks that running the filter in one
// shot and in two Advance stages over the same derived stream covers the
// same reading times (weaker than bit-equality, which the different rng
// consumption patterns do not guarantee).
func TestAdvanceIsIncrementallyConsistent(t *testing.T) {
	g, dep := longCorridor(t)
	f := MustNew(DefaultConfig(), g, dep)
	entries := []model.AggregatedReading{
		{Object: 1, Reader: 2, Time: 0},
		{Object: 1, Reader: 3, Time: 12},
	}
	st, err := f.Run(rng.New(8), 1, entries[:1], 5)
	if err != nil {
		t.Fatal(err)
	}
	f.Advance(rng.New(9), st, entries, 14)
	if st.Time != 14 || st.LastReadingTime != 12 {
		t.Fatalf("staged state: time=%d lastReading=%d", st.Time, st.LastReadingTime)
	}
	reader := dep.Reader(3)
	near := 0
	for _, p := range st.Particles {
		if g.Point(p.Loc).Dist(reader.Pos) < reader.Range+3 {
			near++
		}
	}
	if near < len(st.Particles)/2 {
		t.Errorf("staged advance did not track the new reading: %d/%d near", near, len(st.Particles))
	}
}
