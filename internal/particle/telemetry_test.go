package particle

import (
	"testing"

	"repro/internal/floorplan"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rfid"
	"repro/internal/rng"
	"repro/internal/walkgraph"
)

func instrumentedFilter(t testing.TB) (*Filter, Metrics) {
	t.Helper()
	plan := floorplan.DefaultOffice()
	g := walkgraph.MustBuild(plan)
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	f := MustNew(DefaultConfig(), g, dep)
	r := obs.NewRegistry()
	m := Metrics{
		Predict:       r.Histogram("repro_filter_predict_seconds", "x", nil),
		Reweight:      r.Histogram("repro_filter_reweight_seconds", "x", nil),
		Resample:      r.Histogram("repro_filter_resample_seconds", "x", nil),
		ParticleSteps: r.Counter("repro_filter_particle_steps_total", "x"),
	}
	f.Instrument(m)
	return f, m
}

// TestInstrumentedAdvanceZeroAllocs is the telemetry counterpart of
// TestSteadyStateAdvanceZeroAllocs: with stage histograms and the particle-
// step counter attached, the per-second filter loop must still perform zero
// heap allocations — instrumentation may cost clock reads, never garbage.
func TestInstrumentedAdvanceZeroAllocs(t *testing.T) {
	f, _ := instrumentedFilter(t)
	src := rng.Derive(46)
	st := f.InitAt(src, 1, 3, 0)
	entry := []model.AggregatedReading{{Object: 1, Reader: 3}}

	detected := func() {
		next := st.Time + 1
		entry[0].Time = next
		f.Advance(src, st, entry, next)
	}
	silent := func() {
		f.Advance(src, st, nil, st.Time+1)
	}
	// Warm up: first calls build the scratch slice and the byTime map.
	detected()
	silent()

	if allocs := testing.AllocsPerRun(200, detected); allocs != 0 {
		t.Errorf("instrumented detected-second Advance allocates %v times per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, silent); allocs != 0 {
		t.Errorf("instrumented silent-second Advance allocates %v times per run, want 0", allocs)
	}
}

// TestStageTimingsRecorded checks that an instrumented run fills LastRun
// and the stage sinks coherently: every advanced second is a predict step,
// detected seconds resample, and the particle-step counter matches
// steps × Ns exactly.
func TestStageTimingsRecorded(t *testing.T) {
	f, m := instrumentedFilter(t)
	src := rng.Derive(47)
	st := f.InitAt(src, 1, 3, 0)
	entries := []model.AggregatedReading{
		{Object: 1, Reader: 3, Time: 1},
		{Object: 1, Reader: 3, Time: 2},
	}
	f.Advance(src, st, entries, 4)

	rs := st.LastRun
	if rs.From != 0 || rs.To != 4 {
		t.Errorf("window = [%d, %d], want [0, 4]", rs.From, rs.To)
	}
	if rs.Steps != 4 {
		t.Errorf("Steps = %d, want 4", rs.Steps)
	}
	if rs.Detections != 2 || rs.Resamples > 2 {
		t.Errorf("Detections = %d, Resamples = %d", rs.Detections, rs.Resamples)
	}
	if rs.Predict <= 0 {
		t.Errorf("Predict duration = %v", rs.Predict)
	}
	if rs.ESS <= 0 || rs.ESS > float64(len(st.Particles))+1e-9 {
		t.Errorf("ESS = %v with Ns = %d", rs.ESS, len(st.Particles))
	}
	if got := m.Predict.Count(); got != 1 {
		t.Errorf("predict histogram observations = %d, want 1", got)
	}
	if got := m.ParticleSteps.Value(); got != uint64(4*len(st.Particles)) {
		t.Errorf("particle steps = %d, want %d", got, 4*len(st.Particles))
	}
	if m.Predict.Sum() != rs.Predict.Seconds() {
		t.Errorf("histogram sum %v != LastRun predict %v", m.Predict.Sum(), rs.Predict.Seconds())
	}
}

// TestInstrumentationPreservesResults proves telemetry is purely passive:
// the same seed produces bit-for-bit identical particle states with and
// without instrumentation.
func TestInstrumentationPreservesResults(t *testing.T) {
	plan := floorplan.DefaultOffice()
	g := walkgraph.MustBuild(plan)
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	plain := MustNew(DefaultConfig(), g, dep)
	timed := MustNew(DefaultConfig(), g, dep)
	timed.Instrument(Metrics{})

	entries := []model.AggregatedReading{
		{Object: 7, Reader: 2, Time: 1},
		{Object: 7, Reader: 2, Time: 3},
		{Object: 7, Reader: 5, Time: 9},
	}
	a, err := plain.Run(rng.Derive(99), 7, entries, 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := timed.Run(rng.Derive(99), 7, entries, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Particles) != len(b.Particles) {
		t.Fatalf("particle counts differ: %d vs %d", len(a.Particles), len(b.Particles))
	}
	for i := range a.Particles {
		pa, pb := a.Particles[i], b.Particles[i]
		if pa != pb {
			t.Fatalf("particle %d differs: %+v vs %+v", i, pa, pb)
		}
	}
	if b.LastRun.Steps == 0 {
		t.Error("instrumented run recorded no steps")
	}
}
