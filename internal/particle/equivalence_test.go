package particle

import (
	"testing"

	"repro/internal/floorplan"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/rng"
	"repro/internal/walkgraph"
)

// randomSetup builds a random floorplan, walking graph, and deployment for
// an equivalence trial.
func randomSetup(t *testing.T, trial int) (*walkgraph.Graph, *rfid.Deployment) {
	t.Helper()
	src := rng.New(int64(9000 + trial))
	plan := floorplan.RandomOffice(src, 1+trial%3)
	g, err := walkgraph.Build(plan)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := rfid.DeployUniform(plan, 4+trial%16, 1.5+0.1*float64(trial%10))
	if err != nil {
		t.Fatal(err)
	}
	return g, dep
}

// randomEntries synthesizes an aggregated reading stream: bursts of
// detections at randomly chosen readers separated by silent stretches, the
// mix that drives the filter through InitAt, reweight, the kidnapped-robot
// recovery, and negativeUpdate.
func randomEntries(src *rng.Source, dep *rfid.Deployment, seconds int) []model.AggregatedReading {
	var entries []model.AggregatedReading
	reader := model.ReaderID(src.Intn(dep.NumReaders()))
	for t := 0; t < seconds; t++ {
		switch {
		case t == 0 || src.Bool(0.45):
			if src.Bool(0.15) {
				reader = model.ReaderID(src.Intn(dep.NumReaders()))
			}
			entries = append(entries, model.AggregatedReading{
				Object: 1, Reader: reader, Time: model.Time(t),
			})
		default:
			// Silent second: no entry at all.
		}
	}
	return entries
}

// statesEqual compares the observable filter output bit-for-bit.
func statesEqual(a, b *State) bool {
	if a.Object != b.Object || a.Time != b.Time || a.LastReadingTime != b.LastReadingTime ||
		len(a.Particles) != len(b.Particles) {
		return false
	}
	for i := range a.Particles {
		if a.Particles[i] != b.Particles[i] {
			return false
		}
	}
	return true
}

// TestIndexedFilterMatchesGeometricBitForBit is the determinism-contract
// property test of the coverage index: on 50 random floorplans and random
// reading streams, a full Filter.Run on the indexed path must produce
// exactly the particle set of the geometric reference path — same
// locations, directions, speeds, and weights, down to the last bit (both
// paths consume the same random stream, so any divergence in a coverage
// predicate would desynchronize them visibly).
func TestIndexedFilterMatchesGeometricBitForBit(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		g, dep := randomSetup(t, trial)

		cfgIdx := DefaultConfig()
		cfgGeo := DefaultConfig()
		cfgGeo.DisableCoverageIndex = true
		fIdx := MustNew(cfgIdx, g, dep)
		fGeo := MustNew(cfgGeo, g, dep)
		if fIdx.Coverage() == nil || fGeo.Coverage() != nil {
			t.Fatal("coverage knob did not select the expected paths")
		}

		src := rng.New(int64(5000 + trial))
		entries := randomEntries(src, dep, 40+trial)
		now := entries[len(entries)-1].Time + model.Time(trial%8)

		stIdx, errIdx := fIdx.Run(rng.Derive(7, int64(trial)), 1, entries, now)
		stGeo, errGeo := fGeo.Run(rng.Derive(7, int64(trial)), 1, entries, now)
		if (errIdx == nil) != (errGeo == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, errIdx, errGeo)
		}
		if !statesEqual(stIdx, stGeo) {
			t.Fatalf("trial %d: indexed and geometric filter output diverged\nindexed:   %+v\ngeometric: %+v",
				trial, stIdx, stGeo)
		}

		// The cache-hit path must agree too: advance both states further
		// with a second batch of readings.
		more := randomEntries(src, dep, 20)
		for i := range more {
			more[i].Time += now + 1
		}
		later := now + 25
		fIdx.Advance(rng.Derive(8, int64(trial)), stIdx, more, later)
		fGeo.Advance(rng.Derive(8, int64(trial)), stGeo, more, later)
		if !statesEqual(stIdx, stGeo) {
			t.Fatalf("trial %d: Advance diverged between indexed and geometric paths", trial)
		}
	}
}

// TestIndexedInitAtMatchesGeometric checks the initialization distribution
// alone: for every reader of each random deployment, the sampled particle
// sets must be identical.
func TestIndexedInitAtMatchesGeometric(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		g, dep := randomSetup(t, trial)
		cfgGeo := DefaultConfig()
		cfgGeo.DisableCoverageIndex = true
		fIdx := MustNew(DefaultConfig(), g, dep)
		fGeo := MustNew(cfgGeo, g, dep)
		for _, r := range dep.Readers() {
			a := fIdx.InitAt(rng.Derive(11, int64(trial), int64(r.ID)), 1, r.ID, 0)
			b := fGeo.InitAt(rng.Derive(11, int64(trial), int64(r.ID)), 1, r.ID, 0)
			if !statesEqual(a, b) {
				t.Fatalf("trial %d reader %d: InitAt diverged", trial, r.ID)
			}
		}
	}
}
