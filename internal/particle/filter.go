package particle

import (
	"fmt"
	"reflect"
	"sort"
	"time"

	"repro/internal/floorplan"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rfid"
	"repro/internal/rng"
	"repro/internal/walkgraph"
)

// Filter runs the paper's Algorithm 2 (Particle Filter) for individual
// objects: initialize particles in the activation range of the older of the
// object's two retained detecting devices, step them through the motion
// model at one-second resolution, reweight and resample at every detected
// second, and stop MaxCoastSeconds past the last reading.
//
// The coverage predicates of the inner loop (is this particle inside the
// detecting reader's range? inside any range? inside a room?) are answered
// by the precomputed edge-coverage index (rfid.Coverage) instead of
// per-particle 2-D geometry; the results are bit-for-bit identical (see
// Config.DisableCoverageIndex).
type Filter struct {
	cfg Config
	g   *walkgraph.Graph
	dep *rfid.Deployment
	// et is the graph's flat per-edge table (kind, door position) used by
	// the hot-loop classifications; nt its per-node counterpart used by the
	// SoA motion kernel.
	et *walkgraph.EdgeTable
	nt *walkgraph.NodeTable
	// cov is the edge-coverage index; nil selects the geometric reference
	// path.
	cov *rfid.Coverage
	// spans is cov's per-edge span table, cached so the per-particle loops
	// scan it without a method call per particle.
	spans [][]rfid.CoverSpan
	// met holds the optional stage telemetry; timed gates all timing work so
	// an uninstrumented filter pays nothing (see Instrument).
	met   Metrics
	timed bool
	// unhealthy flags readers whose ranges must not contribute negative
	// evidence (a dead reader's silence says nothing about the object). It is
	// nil when every reader is healthy, which keeps the common path — and its
	// float operations — exactly as without health tracking.
	unhealthy []bool
	// maxNs, when positive, caps the particle count of newly initialized
	// states below cfg.Ns: the degraded-mode budget under overload. Cached
	// states keep their existing particle count.
	maxNs int
	// soa records whether RunPool/AdvancePool may step particles on the
	// structure-of-arrays kernel (see soa.go): it requires the coverage
	// index, the package's own Systematic resampler (the kernel inlines
	// Algorithm 1), and Config.DisableSoAKernel unset.
	soa bool
}

// Metrics are the filter's optional telemetry sinks. Every field may be nil
// independently; recording is atomic and allocation-free, so the
// steady-state loop's zero-allocation contract holds with instrumentation
// enabled (pinned by TestInstrumentedAdvanceZeroAllocs).
type Metrics struct {
	// Predict, Reweight, and Resample receive the per-stage wall time in
	// seconds of each Run/Advance call. Reweight includes the silent-second
	// negative update (both are observation incorporation); Resample
	// includes roughening.
	Predict, Reweight, Resample *obs.Histogram
	// ParticleSteps accumulates particle × second motion steps, the
	// filter's fundamental unit of work.
	ParticleSteps *obs.Counter
}

// Instrument attaches telemetry sinks and enables per-run stage timing
// (State.LastRun). Call it before the filter is shared across goroutines;
// a zero Metrics still enables timing alone.
func (f *Filter) Instrument(m Metrics) {
	f.met = m
	f.timed = true
}

// RunStats is the per-stage wall-time breakdown of one Run/Advance call,
// recorded on the State when the filter is instrumented.
type RunStats struct {
	// From and To bound the simulated seconds this call advanced over.
	From, To model.Time
	// Predict, Reweight, and Resample are the stage wall times. Reweight
	// includes negative updates; Resample includes roughening.
	Predict, Reweight, Resample time.Duration
	// Steps counts simulated seconds stepped; Detections the detected
	// seconds incorporated; Resamples the detected-second resampling passes.
	Steps, Detections, Resamples int
	// ESS is the effective sample size of the final particle set, computed
	// from unnormalized weights (Ns means healthy, ~1 means degenerate).
	ESS float64
}

// New builds a Filter. The configuration is validated once here, and the
// coverage index is built unless cfg.DisableCoverageIndex is set.
func New(cfg Config, g *walkgraph.Graph, dep *rfid.Deployment) (*Filter, error) {
	var cov *rfid.Coverage
	if !cfg.DisableCoverageIndex {
		cov = rfid.BuildCoverage(g, dep)
	}
	return NewWithCoverage(cfg, g, dep, cov)
}

// NewWithCoverage builds a Filter around an existing coverage index, so a
// System that already built one (engine.New does) shares it instead of
// recomputing. A nil cov selects the geometric reference path regardless of
// cfg.DisableCoverageIndex.
func NewWithCoverage(cfg Config, g *walkgraph.Graph, dep *rfid.Deployment, cov *rfid.Coverage) (*Filter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &Filter{cfg: cfg, g: g, dep: dep, et: g.EdgeTable(), nt: g.NodeTable(), cov: cov}
	if cov != nil {
		f.spans = cov.SpanTable()
	}
	f.soa = cov != nil && !cfg.DisableSoAKernel && isSystematic(cfg.Resample)
	return f, nil
}

// isSystematic reports whether r is this package's Systematic function. Go
// cannot compare function values directly; the code-pointer comparison works
// for the top-level function, which is all the SoA kernel needs — any other
// resampler (Multinomial, test doubles) falls back to the scalar path.
func isSystematic(r ResampleFunc) bool {
	return r != nil &&
		reflect.ValueOf(r).Pointer() == reflect.ValueOf(ResampleFunc(Systematic)).Pointer()
}

// MustNew is New for known-valid configurations.
func MustNew(cfg Config, g *walkgraph.Graph, dep *rfid.Deployment) *Filter {
	f, err := New(cfg, g, dep)
	if err != nil {
		panic(err)
	}
	return f
}

// Config returns the filter's configuration.
func (f *Filter) Config() Config { return f.cfg }

// SetUnhealthy installs the set of readers whose silence must be ignored by
// the negative update (indexed by ReaderID; nil or all-false restores the
// uncompensated behavior). The caller must not mutate the slice afterwards
// and must not call this concurrently with Run/Advance.
func (f *Filter) SetUnhealthy(un []bool) {
	all := false
	for _, u := range un {
		if u {
			all = true
			break
		}
	}
	if !all {
		un = nil
	}
	f.unhealthy = un
}

// Unhealthy returns the installed unhealthy-reader set (nil when none).
func (f *Filter) Unhealthy() []bool { return f.unhealthy }

// SetParticleBudget caps the particle count of newly initialized states at n
// (degraded-mode operation under overload); n <= 0 or n >= Ns restores the
// configured count. Already-cached states are not resized.
func (f *Filter) SetParticleBudget(n int) {
	if n <= 0 || n >= f.cfg.Ns {
		n = 0
	}
	f.maxNs = n
}

// ParticleBudget returns the effective per-object particle count for new
// states: the configured Ns, or the degraded-mode cap when one is set.
func (f *Filter) ParticleBudget() int {
	if f.maxNs > 0 {
		return f.maxNs
	}
	return f.cfg.Ns
}

// Coverage returns the filter's coverage index (nil on the geometric path).
func (f *Filter) Coverage() *rfid.Coverage { return f.cov }

// InitAt creates a fresh particle set for an object uniformly distributed on
// the graph edges within the detection range of the given reader, each
// particle with a random direction and a Gaussian walking speed. The
// activation intervals come from the coverage index when available; the
// geometric path re-intersects the activation circle with every edge.
func (f *Filter) InitAt(src *rng.Source, obj model.ObjectID, reader model.ReaderID, t model.Time) *State {
	st := &State{Object: obj, Time: t, LastReadingTime: t}
	st.Particles = f.initParticles(src, reader, nil)
	return st
}

// initParticles samples a fresh particle set within the reader's activation
// range into dst, reusing its capacity when it suffices (the kidnapped-robot
// recovery inside advance passes the state's existing slice, keeping the
// steady-state loop allocation-free; InitAt passes nil).
func (f *Filter) initParticles(src *rng.Source, reader model.ReaderID, dst []Particle) []Particle {
	r := f.dep.Reader(reader)
	var ivs []rfid.InitInterval
	var total float64
	if f.cov != nil {
		ivs, total = f.cov.InitIntervals(reader)
	} else {
		ivs, total = rfid.ComputeInitIntervals(f.g, r)
	}

	ns := f.ParticleBudget()
	if cap(dst) >= ns {
		dst = dst[:ns]
	} else {
		dst = make([]Particle, ns)
	}
	w := 1.0 / float64(ns)
	for i := range dst {
		var loc walkgraph.Location
		if total > 0 {
			u := src.Uniform(0, total)
			// Find the interval containing u.
			j := sort.Search(len(ivs), func(k int) bool { return ivs[k].CumStart > u }) - 1
			iv := ivs[j]
			loc = walkgraph.Location{Edge: iv.Edge, Offset: iv.Lo + (u - iv.CumStart)}
		} else {
			// Degenerate deployment: the range covers no edge; collapse to
			// the nearest graph point.
			loc = f.g.NearestLocation(r.Pos)
		}
		e := f.g.Edge(loc.Edge)
		toward := e.A
		if src.Bool(0.5) {
			toward = e.B
		}
		dst[i] = Particle{
			Loc:    loc,
			Toward: toward,
			Speed:  src.TruncGaussian(f.cfg.SpeedMean, f.cfg.SpeedStd, f.cfg.MinSpeed, f.cfg.MaxSpeed),
			Weight: w,
		}
	}
	return dst
}

// Run executes the full Algorithm 2 for one object: entries must be the
// object's aggregated readings from the collector (oldest first, covering at
// most its two most recent detecting devices). The filter initializes at the
// first entry's device and advances to min(lastReading + MaxCoastSeconds,
// now). It returns an error when there are no readings to start from.
func errNoReadings(obj model.ObjectID) error {
	return fmt.Errorf("particle: no readings for object %d", obj)
}

func (f *Filter) Run(src *rng.Source, obj model.ObjectID, entries []model.AggregatedReading, now model.Time) (*State, error) {
	if len(entries) == 0 {
		return nil, errNoReadings(obj)
	}
	first := entries[0]
	st := f.InitAt(src, obj, first.Reader, first.Time)
	f.advance(src, st, entries[1:], now, false)
	return st, nil
}

// Advance resumes a cached state: it incorporates entries newer than the
// state's time stamp and steps the particles up to min(lastReading +
// MaxCoastSeconds, now). Entries at or before the state's time are skipped.
// This is the cache-hit path of the cache management module.
func (f *Filter) Advance(src *rng.Source, st *State, entries []model.AggregatedReading, now model.Time) {
	f.advance(src, st, entries, now, true)
}

// advance steps st second by second to min(td + coast, now), where td is the
// newest reading time, reweighting and resampling at every detected second.
// With skipStale set, entries at or before st.Time are ignored (the Advance
// contract); Run passes every entry through.
func (f *Filter) advance(src *rng.Source, st *State, entries []model.AggregatedReading, now model.Time, skipStale bool) {
	st.soaPool = nil // scalar path mutates Particles: drop any SoA residency
	if st.byTime == nil {
		st.byTime = make(map[model.Time]model.ReaderID, len(entries))
	} else {
		clear(st.byTime)
	}
	byTime := st.byTime
	td := st.LastReadingTime
	for _, e := range entries {
		if skipStale && e.Time <= st.Time {
			continue
		}
		if e.Detected() {
			byTime[e.Time] = e.Reader
			if e.Time > td {
				td = e.Time
			}
		}
	}
	tmin := td + model.Time(f.cfg.MaxCoastSeconds)
	if now < tmin {
		tmin = now
	}
	// Stage timing is gated on one bool so the uninstrumented loop pays no
	// clock reads; time.Now and the histogram sinks allocate nothing, which
	// keeps the instrumented loop inside the zero-allocation contract.
	timed := f.timed
	var rs RunStats
	var t0 time.Time
	if timed {
		rs.From = st.Time
	}
	for tj := st.Time + 1; tj <= tmin; tj++ {
		if timed {
			t0 = time.Now()
		}
		for i := range st.Particles {
			f.cfg.Step(src, f.g, &st.Particles[i], 1.0)
		}
		if timed {
			rs.Predict += time.Since(t0)
			rs.Steps++
		}
		reader, detected := byTime[tj]
		if !detected {
			// The paper's reading.Device = null case. With negative
			// information enabled, silence is itself an observation: the
			// object is (almost surely) not inside any reader's range.
			if f.cfg.UseNegativeInfo {
				if timed {
					t0 = time.Now()
				}
				f.negativeUpdate(src, st)
				if timed {
					rs.Reweight += time.Since(t0)
				}
			}
			continue
		}
		if timed {
			rs.Detections++
			t0 = time.Now()
		}
		consistent := f.reweight(st.Particles, reader)
		if timed {
			rs.Reweight += time.Since(t0)
		}
		if !consistent {
			// Degenerate observation: no particle is consistent with the
			// reading. Without intervention the filter would keep the wrong
			// cloud forever (all weights equally low), so recover by
			// reinitializing within the detecting reader's range — the
			// standard kidnapped-robot recovery. The existing slice is
			// reused, so recovery stays inside the loop's zero-allocation
			// contract.
			st.Particles = f.initParticles(src, reader, st.Particles)
			continue
		}
		NormalizeWeights(st.Particles)
		if timed {
			t0 = time.Now()
		}
		f.resample(src, st)
		f.roughen(src, st.Particles)
		if timed {
			rs.Resample += time.Since(t0)
			rs.Resamples++
		}
	}
	if tmin > st.Time {
		st.Time = tmin
	}
	st.LastReadingTime = td
	if timed {
		rs.To = st.Time
		rs.ESS = essOf(st.Particles)
		st.LastRun = rs
		if f.met.Predict != nil {
			f.met.Predict.Observe(rs.Predict.Seconds())
		}
		if f.met.Reweight != nil {
			f.met.Reweight.Observe(rs.Reweight.Seconds())
		}
		if f.met.Resample != nil {
			f.met.Resample.Observe(rs.Resample.Seconds())
		}
		if f.met.ParticleSteps != nil {
			f.met.ParticleSteps.Add(uint64(rs.Steps) * uint64(len(st.Particles)))
		}
	}
}

// essOf is EffectiveSampleSize for possibly unnormalized weights:
// (sum w)^2 / sum w^2.
func essOf(ps []Particle) float64 {
	var sum, sq float64
	for i := range ps {
		w := ps[i].Weight
		sum += w
		sq += w * w
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / sq
}

// resample replaces st.Particles with a resampled set and recycles the
// previous backing array as the next resample's output buffer, so the
// steady-state loop allocates nothing.
func (f *Filter) resample(src *rng.Source, st *State) {
	out := f.cfg.Resample(src, st.scratch[:0], st.Particles)
	st.scratch = st.Particles
	st.Particles = out
}

// negativeUpdate applies the negative observation "no reader saw the object
// this second". Unlike positive readings, silence is weak evidence — a
// particle can be a second or two ahead of the true object — so the update
// is a sequential importance step: weights of covered (non-room) particles
// are multiplied by NegativeWeight and the set is resampled only when the
// effective sample size degenerates below half the particle count. This
// preserves particle diversity across long silent stretches instead of
// collapsing the cloud into whichever hypothesis was briefly favored.
// Ranges of SUSPECT/DEAD readers (Filter.SetUnhealthy) are excluded: silence
// from a reader that may not be reporting carries no information, so the
// penalty there would push mass away from where the object plausibly is.
func (f *Filter) negativeUpdate(src *rng.Source, st *State) {
	ps := st.Particles
	inside := 0
	un := f.unhealthy
	if f.cov != nil {
		for i := range ps {
			loc := ps[i].Loc
			// Stairwells (link edges) and rooms are shielded from readers and
			// therefore always consistent with silence.
			if f.et.Kind[loc.Edge] == walkgraph.LinkEdge || f.et.InRoom(loc) {
				continue
			}
			// Mirror Graph.Point's offset clamping, then scan the edge's
			// coverage spans: inside an inner interval is covered for
			// certain, the guard fringe falls back to exact geometry.
			off := loc.Offset
			if off < 0 {
				off = 0
			} else if l := f.et.Length[loc.Edge]; off > l {
				off = l
			}
			spans := f.spans[loc.Edge]
			for si := range spans {
				s := &spans[si]
				if un != nil && un[s.Reader] {
					continue
				}
				if off < s.OuterLo || off > s.OuterHi {
					continue
				}
				if (off >= s.InnerLo && off <= s.InnerHi) ||
					f.dep.Reader(s.Reader).Covers(f.g.Point(loc)) {
					ps[i].Weight *= f.cfg.NegativeWeight
					inside++
					break
				}
			}
		}
	} else {
		for i := range ps {
			if f.g.Edge(ps[i].Loc.Edge).Kind == walkgraph.LinkEdge {
				continue
			}
			_, covered := f.dep.CoveringReaderExcept(f.g.Point(ps[i].Loc), un)
			if covered && f.g.RoomAt(ps[i].Loc) == floorplan.NoRoom {
				ps[i].Weight *= f.cfg.NegativeWeight
				inside++
			}
		}
	}
	if inside == 0 {
		return
	}
	NormalizeWeights(ps)
	if EffectiveSampleSize(ps) < float64(len(ps))/2 {
		f.resample(src, st)
		f.roughen(src, st.Particles)
	}
}

// roughen perturbs resampled particle speeds with small Gaussian noise so
// cloned particles diverge again instead of moving in lock-step.
func (f *Filter) roughen(src *rng.Source, ps []Particle) {
	if f.cfg.SpeedJitter <= 0 {
		return
	}
	for i := range ps {
		ps[i].Speed = src.TruncGaussian(ps[i].Speed, f.cfg.SpeedJitter, f.cfg.MinSpeed, f.cfg.MaxSpeed)
	}
}

// reweight applies the device sensing model: particles within the detecting
// reader's activation range are consistent with the observation and get
// HighWeight; the rest get LowWeight. It reports whether any particle was
// consistent with the observation.
func (f *Filter) reweight(ps []Particle, reader model.ReaderID) bool {
	any := false
	if f.cov != nil {
		r := f.dep.Reader(reader)
		for i := range ps {
			// A detection places the object in the reader's range outside
			// any room or stairwell: walls block reads, so those particles
			// are inconsistent.
			loc := ps[i].Loc
			ps[i].Weight = f.cfg.LowWeight
			if f.et.Kind[loc.Edge] == walkgraph.LinkEdge || f.et.InRoom(loc) {
				continue
			}
			off := loc.Offset
			if off < 0 {
				off = 0
			} else if l := f.et.Length[loc.Edge]; off > l {
				off = l
			}
			spans := f.spans[loc.Edge]
			for si := range spans {
				s := &spans[si]
				if s.Reader != reader {
					continue
				}
				if off >= s.OuterLo && off <= s.OuterHi &&
					((off >= s.InnerLo && off <= s.InnerHi) || r.Covers(f.g.Point(loc))) {
					ps[i].Weight = f.cfg.HighWeight
					any = true
				}
				break
			}
		}
		return any
	}
	r := f.dep.Reader(reader)
	for i := range ps {
		if r.Covers(f.g.Point(ps[i].Loc)) &&
			f.g.RoomAt(ps[i].Loc) == floorplan.NoRoom &&
			f.g.Edge(ps[i].Loc.Edge).Kind != walkgraph.LinkEdge {
			ps[i].Weight = f.cfg.HighWeight
			any = true
		} else {
			ps[i].Weight = f.cfg.LowWeight
		}
	}
	return any
}
