package particle

import (
	"fmt"
	"sort"

	"repro/internal/floorplan"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/rng"
	"repro/internal/walkgraph"
)

// Filter runs the paper's Algorithm 2 (Particle Filter) for individual
// objects: initialize particles in the activation range of the older of the
// object's two retained detecting devices, step them through the motion
// model at one-second resolution, reweight and resample at every detected
// second, and stop MaxCoastSeconds past the last reading.
type Filter struct {
	cfg Config
	g   *walkgraph.Graph
	dep *rfid.Deployment
}

// New builds a Filter. The configuration is validated once here.
func New(cfg Config, g *walkgraph.Graph, dep *rfid.Deployment) (*Filter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Filter{cfg: cfg, g: g, dep: dep}, nil
}

// MustNew is New for known-valid configurations.
func MustNew(cfg Config, g *walkgraph.Graph, dep *rfid.Deployment) *Filter {
	f, err := New(cfg, g, dep)
	if err != nil {
		panic(err)
	}
	return f
}

// Config returns the filter's configuration.
func (f *Filter) Config() Config { return f.cfg }

// InitAt creates a fresh particle set for an object uniformly distributed on
// the graph edges within the detection range of the given reader, each
// particle with a random direction and a Gaussian walking speed.
func (f *Filter) InitAt(src *rng.Source, obj model.ObjectID, reader model.ReaderID, t model.Time) *State {
	r := f.dep.Reader(reader)
	circle := r.Circle()

	// Collect the edge intervals covered by the activation range.
	type interval struct {
		edge     walkgraph.EdgeID
		lo, hi   float64 // offsets in meters
		length   float64
		cumStart float64
	}
	var ivs []interval
	total := 0.0
	for _, e := range f.g.Edges() {
		t0, t1, ok := circle.SegmentIntersection(f.g.EdgeSegment(e.ID))
		if !ok {
			continue
		}
		lo, hi := t0*e.Length, t1*e.Length
		// A detected object cannot be inside a room (walls block reads), so
		// only the hallway-side portion of a door edge can hold particles.
		// Link edges (stairwells) are not physical space at all.
		if e.Kind == walkgraph.LinkEdge {
			continue
		}
		if e.Kind == walkgraph.DoorEdge && hi > e.DoorAt {
			hi = e.DoorAt
		}
		if hi-lo <= 0 {
			continue
		}
		ivs = append(ivs, interval{edge: e.ID, lo: lo, hi: hi, length: hi - lo, cumStart: total})
		total += hi - lo
	}

	st := &State{Object: obj, Time: t, LastReadingTime: t}
	st.Particles = make([]Particle, f.cfg.Ns)
	for i := range st.Particles {
		var loc walkgraph.Location
		if total > 0 {
			u := src.Uniform(0, total)
			// Find the interval containing u.
			j := sort.Search(len(ivs), func(k int) bool { return ivs[k].cumStart > u }) - 1
			iv := ivs[j]
			loc = walkgraph.Location{Edge: iv.edge, Offset: iv.lo + (u - iv.cumStart)}
		} else {
			// Degenerate deployment: the range covers no edge; collapse to
			// the nearest graph point.
			loc = f.g.NearestLocation(r.Pos)
		}
		e := f.g.Edge(loc.Edge)
		toward := e.A
		if src.Bool(0.5) {
			toward = e.B
		}
		st.Particles[i] = Particle{
			Loc:    loc,
			Toward: toward,
			Speed:  src.TruncGaussian(f.cfg.SpeedMean, f.cfg.SpeedStd, f.cfg.MinSpeed, f.cfg.MaxSpeed),
			Weight: 1.0 / float64(f.cfg.Ns),
		}
	}
	return st
}

// Run executes the full Algorithm 2 for one object: entries must be the
// object's aggregated readings from the collector (oldest first, covering at
// most its two most recent detecting devices). The filter initializes at the
// first entry's device and advances to min(lastReading + MaxCoastSeconds,
// now). It returns an error when there are no readings to start from.
func (f *Filter) Run(src *rng.Source, obj model.ObjectID, entries []model.AggregatedReading, now model.Time) (*State, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("particle: no readings for object %d", obj)
	}
	first := entries[0]
	st := f.InitAt(src, obj, first.Reader, first.Time)
	f.advance(src, st, entries[1:], now)
	return st, nil
}

// Advance resumes a cached state: it incorporates entries newer than the
// state's time stamp and steps the particles up to min(lastReading +
// MaxCoastSeconds, now). Entries at or before the state's time are skipped.
// This is the cache-hit path of the cache management module.
func (f *Filter) Advance(src *rng.Source, st *State, entries []model.AggregatedReading, now model.Time) {
	fresh := entries[:0:0]
	for _, e := range entries {
		if e.Time > st.Time {
			fresh = append(fresh, e)
		}
	}
	f.advance(src, st, fresh, now)
}

// advance steps st second by second to min(td + coast, now), where td is the
// newest reading time, reweighting and resampling at every detected second.
func (f *Filter) advance(src *rng.Source, st *State, entries []model.AggregatedReading, now model.Time) {
	byTime := make(map[model.Time]model.ReaderID, len(entries))
	td := st.LastReadingTime
	for _, e := range entries {
		if e.Detected() {
			byTime[e.Time] = e.Reader
			if e.Time > td {
				td = e.Time
			}
		}
	}
	tmin := td + model.Time(f.cfg.MaxCoastSeconds)
	if now < tmin {
		tmin = now
	}
	for tj := st.Time + 1; tj <= tmin; tj++ {
		for i := range st.Particles {
			f.cfg.Step(src, f.g, &st.Particles[i], 1.0)
		}
		reader, detected := byTime[tj]
		if !detected {
			// The paper's reading.Device = null case. With negative
			// information enabled, silence is itself an observation: the
			// object is (almost surely) not inside any reader's range.
			if f.cfg.UseNegativeInfo {
				st.Particles = f.negativeUpdate(src, st.Particles)
			}
			continue
		}
		if !f.reweight(st.Particles, reader) {
			// Degenerate observation: no particle is consistent with the
			// reading. Without intervention the filter would keep the wrong
			// cloud forever (all weights equally low), so recover by
			// reinitializing within the detecting reader's range — the
			// standard kidnapped-robot recovery.
			fresh := f.InitAt(src, st.Object, reader, tj)
			st.Particles = fresh.Particles
			continue
		}
		NormalizeWeights(st.Particles)
		st.Particles = f.cfg.Resample(src, st.Particles)
		f.roughen(src, st.Particles)
	}
	if tmin > st.Time {
		st.Time = tmin
	}
	st.LastReadingTime = td
}

// negativeUpdate applies the negative observation "no reader saw the object
// this second". Unlike positive readings, silence is weak evidence — a
// particle can be a second or two ahead of the true object — so the update
// is a sequential importance step: weights of covered (non-room) particles
// are multiplied by NegativeWeight and the set is resampled only when the
// effective sample size degenerates below half the particle count. This
// preserves particle diversity across long silent stretches instead of
// collapsing the cloud into whichever hypothesis was briefly favored.
func (f *Filter) negativeUpdate(src *rng.Source, ps []Particle) []Particle {
	inside := 0
	for i := range ps {
		if f.g.Edge(ps[i].Loc.Edge).Kind == walkgraph.LinkEdge {
			continue // stairwells are shielded: always consistent with silence
		}
		_, covered := f.dep.CoveringReader(f.g.Point(ps[i].Loc))
		// Particles inside rooms are shielded by walls and therefore always
		// consistent with silence.
		if covered && f.g.RoomAt(ps[i].Loc) == floorplan.NoRoom {
			ps[i].Weight *= f.cfg.NegativeWeight
			inside++
		}
	}
	if inside == 0 {
		return ps
	}
	NormalizeWeights(ps)
	if EffectiveSampleSize(ps) < float64(len(ps))/2 {
		ps = f.cfg.Resample(src, ps)
		f.roughen(src, ps)
	}
	return ps
}

// roughen perturbs resampled particle speeds with small Gaussian noise so
// cloned particles diverge again instead of moving in lock-step.
func (f *Filter) roughen(src *rng.Source, ps []Particle) {
	if f.cfg.SpeedJitter <= 0 {
		return
	}
	for i := range ps {
		ps[i].Speed = src.TruncGaussian(ps[i].Speed, f.cfg.SpeedJitter, f.cfg.MinSpeed, f.cfg.MaxSpeed)
	}
}

// reweight applies the device sensing model: particles within the detecting
// reader's activation range are consistent with the observation and get
// HighWeight; the rest get LowWeight. It reports whether any particle was
// consistent with the observation.
func (f *Filter) reweight(ps []Particle, reader model.ReaderID) bool {
	r := f.dep.Reader(reader)
	any := false
	for i := range ps {
		// A detection places the object in the reader's range outside any
		// room or stairwell: walls block reads, so those particles are
		// inconsistent.
		if r.Covers(f.g.Point(ps[i].Loc)) &&
			f.g.RoomAt(ps[i].Loc) == floorplan.NoRoom &&
			f.g.Edge(ps[i].Loc.Edge).Kind != walkgraph.LinkEdge {
			ps[i].Weight = f.cfg.HighWeight
			any = true
		} else {
			ps[i].Weight = f.cfg.LowWeight
		}
	}
	return any
}
