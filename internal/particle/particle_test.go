package particle

import (
	"math"
	"testing"

	"repro/internal/anchor"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/rng"
	"repro/internal/walkgraph"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}

func TestConfigValidateRejections(t *testing.T) {
	base := DefaultConfig()
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero particles", func(c *Config) { c.Ns = 0 }},
		{"negative speed mean", func(c *Config) { c.SpeedMean = -1 }},
		{"negative speed std", func(c *Config) { c.SpeedStd = -0.1 }},
		{"zero min speed", func(c *Config) { c.MinSpeed = 0 }},
		{"max below min speed", func(c *Config) { c.MaxSpeed = 0.01 }},
		{"exit prob above one", func(c *Config) { c.RoomExitProb = 1.5 }},
		{"low >= high weight", func(c *Config) { c.LowWeight = 2 }},
		{"negative coast", func(c *Config) { c.MaxCoastSeconds = -1 }},
		{"nil resampler", func(c *Config) { c.Resample = nil }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestNormalizeWeights(t *testing.T) {
	ps := []Particle{{Weight: 2}, {Weight: 6}}
	NormalizeWeights(ps)
	if math.Abs(ps[0].Weight-0.25) > 1e-12 || math.Abs(ps[1].Weight-0.75) > 1e-12 {
		t.Errorf("normalized = %v, %v", ps[0].Weight, ps[1].Weight)
	}
	// All-zero weights reset to uniform.
	ps = []Particle{{Weight: 0}, {Weight: 0}, {Weight: 0}, {Weight: 0}}
	NormalizeWeights(ps)
	for _, p := range ps {
		if math.Abs(p.Weight-0.25) > 1e-12 {
			t.Errorf("zero-weight reset = %v", p.Weight)
		}
	}
}

func TestEffectiveSampleSize(t *testing.T) {
	uniform := []Particle{{Weight: 0.25}, {Weight: 0.25}, {Weight: 0.25}, {Weight: 0.25}}
	if got := EffectiveSampleSize(uniform); math.Abs(got-4) > 1e-9 {
		t.Errorf("uniform ESS = %v, want 4", got)
	}
	degenerate := []Particle{{Weight: 1}, {Weight: 0}, {Weight: 0}}
	if got := EffectiveSampleSize(degenerate); math.Abs(got-1) > 1e-9 {
		t.Errorf("degenerate ESS = %v, want 1", got)
	}
	if EffectiveSampleSize(nil) != 0 {
		t.Error("empty ESS should be 0")
	}
}

func TestSystematicResamplePreservesCountAndWeights(t *testing.T) {
	src := rng.New(1)
	ps := make([]Particle, 100)
	for i := range ps {
		ps[i].Loc = walkgraph.Location{Edge: walkgraph.EdgeID(i)}
		ps[i].Weight = float64(i)
	}
	NormalizeWeights(ps)
	out := Systematic(src, nil, ps)
	if len(out) != 100 {
		t.Fatalf("count = %d", len(out))
	}
	for _, p := range out {
		if math.Abs(p.Weight-0.01) > 1e-12 {
			t.Fatalf("output weight = %v, want 0.01", p.Weight)
		}
	}
}

func TestSystematicEliminatesZeroWeight(t *testing.T) {
	src := rng.New(2)
	// Particle 0 has zero weight; it must never survive.
	ps := []Particle{
		{Loc: walkgraph.Location{Edge: 0}, Weight: 0},
		{Loc: walkgraph.Location{Edge: 1}, Weight: 0.5},
		{Loc: walkgraph.Location{Edge: 2}, Weight: 0.5},
	}
	for trial := 0; trial < 100; trial++ {
		out := Systematic(src, nil, ps)
		for _, p := range out {
			if p.Loc.Edge == 0 {
				t.Fatal("zero-weight particle survived systematic resampling")
			}
		}
	}
}

func TestSystematicReplicationProportional(t *testing.T) {
	src := rng.New(3)
	ps := []Particle{
		{Loc: walkgraph.Location{Edge: 0}, Weight: 0.75},
		{Loc: walkgraph.Location{Edge: 1}, Weight: 0.25},
	}
	// Systematic resampling with Ns=100 should give 75 +/- 1 copies of the
	// heavy particle on every draw. The heavy block is contiguous: with a
	// periodic weight arrangement systematic resampling aliases against its
	// fixed probe spacing (a documented property, not a bug).
	big := make([]Particle, 100)
	for i := range big {
		if i < 50 {
			big[i] = ps[0]
		} else {
			big[i] = ps[1]
		}
	}
	NormalizeWeights(big)
	out := Systematic(src, nil, big)
	heavy := 0
	for _, p := range out {
		if p.Loc.Edge == 0 {
			heavy++
		}
	}
	if heavy < 74 || heavy > 76 {
		t.Errorf("heavy copies = %d, want 75 +/- 1", heavy)
	}
}

func TestMultinomialResample(t *testing.T) {
	src := rng.New(4)
	ps := []Particle{
		{Loc: walkgraph.Location{Edge: 0}, Weight: 0},
		{Loc: walkgraph.Location{Edge: 1}, Weight: 1},
	}
	out := Multinomial(src, nil, ps)
	if len(out) != 2 {
		t.Fatalf("count = %d", len(out))
	}
	for _, p := range out {
		if p.Loc.Edge == 0 {
			t.Fatal("zero-weight particle survived multinomial resampling")
		}
		if p.Weight != 0.5 {
			t.Fatalf("weight = %v", p.Weight)
		}
	}
	if Systematic(src, nil, nil) != nil || Multinomial(src, nil, nil) != nil {
		t.Error("empty input should return nil")
	}
}

func TestStateClone(t *testing.T) {
	st := &State{Object: 1, Time: 5, Particles: []Particle{{Speed: 1}}}
	c := st.Clone()
	c.Particles[0].Speed = 9
	c.Time = 99
	if st.Particles[0].Speed != 1 || st.Time != 5 {
		t.Error("Clone aliases original")
	}
}

// corridor builds a 40 m hallway with three readers (the paper's Figure 1
// setting: d1, d2, d3 partitioning the hallway) and two side rooms.
func corridor(t *testing.T) (*walkgraph.Graph, *rfid.Deployment) {
	t.Helper()
	b := floorplan.NewBuilder()
	h := b.AddHallway("h", geom.Seg(geom.Pt(0, 10), geom.Pt(40, 10)), 2)
	b.AddRoom("R3", geom.RectWH(12, 3, 6, 6), h)  // south, near d1-d2
	b.AddRoom("R7", geom.RectWH(24, 11, 6, 6), h) // north, near d2-d3
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := walkgraph.MustBuild(plan)
	dep := rfid.NewDeployment([]rfid.Reader{
		{Pos: geom.Pt(10, 10), Range: 2},
		{Pos: geom.Pt(20, 10), Range: 2},
		{Pos: geom.Pt(30, 10), Range: 2},
	})
	return g, dep
}

func TestInitAtPlacesParticlesInRange(t *testing.T) {
	g, dep := corridor(t)
	f := MustNew(DefaultConfig(), g, dep)
	src := rng.New(5)
	st := f.InitAt(src, 1, 1, 0)
	if len(st.Particles) != 64 {
		t.Fatalf("particles = %d", len(st.Particles))
	}
	reader := dep.Reader(1)
	for _, p := range st.Particles {
		if !reader.Covers(g.Point(p.Loc)) {
			t.Fatalf("particle at %v outside reader range", g.Point(p.Loc))
		}
		if p.Speed < 0.1 || p.Speed > 2.5 {
			t.Fatalf("speed %v out of bounds", p.Speed)
		}
		if p.Weight != 1.0/64 {
			t.Fatalf("initial weight %v", p.Weight)
		}
	}
}

func TestStepMovesAtSpeed(t *testing.T) {
	g, _ := corridor(t)
	cfg := DefaultConfig()
	src := rng.New(6)
	// Put a particle mid-hallway on a long edge, heading to B.
	var e walkgraph.Edge
	for _, cand := range g.Edges() {
		if cand.Kind == walkgraph.HallwayEdge && cand.Length > 5 {
			e = cand
			break
		}
	}
	p := Particle{Loc: walkgraph.Location{Edge: e.ID, Offset: 1}, Toward: e.B, Speed: 1.2}
	cfg.Step(src, g, &p, 1.0)
	if math.Abs(p.Loc.Offset-2.2) > 1e-9 {
		t.Errorf("offset = %v, want 2.2", p.Loc.Offset)
	}
	// Heading to A decreases the offset.
	p = Particle{Loc: walkgraph.Location{Edge: e.ID, Offset: 3}, Toward: e.A, Speed: 1.0}
	cfg.Step(src, g, &p, 1.0)
	if math.Abs(p.Loc.Offset-2.0) > 1e-9 {
		t.Errorf("offset = %v, want 2.0", p.Loc.Offset)
	}
}

func TestStepEntersRoomAndRests(t *testing.T) {
	g, _ := corridor(t)
	cfg := DefaultConfig()
	src := rng.New(7)
	// Find room 0's door edge and walk a particle into the room.
	var door walkgraph.Edge
	for _, e := range g.Edges() {
		if e.Kind == walkgraph.DoorEdge && e.Room == 0 {
			door = e
		}
	}
	roomEnd := door.B
	if g.Node(roomEnd).Kind != walkgraph.RoomCenter {
		roomEnd = door.A
	}
	p := Particle{Loc: walkgraph.Location{Edge: door.ID, Offset: door.Length / 2}, Toward: roomEnd, Speed: 100}
	cfg.Step(src, g, &p, 1.0)
	if !p.Resting {
		t.Fatal("particle did not rest on reaching the room node")
	}
	if g.RoomAt(p.Loc) != 0 {
		t.Fatalf("resting particle not in room 0: %v", p.Loc)
	}
}

func TestRestingParticleLeavesAtConfiguredRate(t *testing.T) {
	g, _ := corridor(t)
	cfg := DefaultConfig()
	var door walkgraph.Edge
	for _, e := range g.Edges() {
		if e.Kind == walkgraph.DoorEdge && e.Room == 0 {
			door = e
		}
	}
	src := rng.New(8)
	exits := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		p := Particle{
			Loc:     walkgraph.Location{Edge: door.ID, Offset: door.Length},
			Toward:  door.B,
			Speed:   1,
			Resting: true,
		}
		cfg.Step(src, g, &p, 1.0)
		if !p.Resting {
			exits++
		}
	}
	rate := float64(exits) / trials
	if math.Abs(rate-0.1) > 0.01 {
		t.Errorf("room exit rate = %v, want ~0.1", rate)
	}
}

func TestNoUTurnAtJunctions(t *testing.T) {
	g, _ := corridor(t)
	cfg := DefaultConfig()
	src := rng.New(9)
	// A junction with degree >= 2: arriving there must never bounce straight
	// back along the arrival edge.
	var junction walkgraph.NodeID = walkgraph.NoNode
	for _, n := range g.Nodes() {
		if n.Kind == walkgraph.Junction && g.Degree(n.ID) >= 2 {
			junction = n.ID
			break
		}
	}
	if junction == walkgraph.NoNode {
		t.Fatal("no junction found")
	}
	arrival := g.IncidentEdges(junction)[0]
	for trial := 0; trial < 200; trial++ {
		p := Particle{
			Loc:    locationAtNode(g, arrival, g.OtherEnd(arrival, junction)),
			Toward: junction,
			Speed:  0.5,
		}
		// Place just short of the junction and step over it.
		edge := g.Edge(arrival)
		if p.Toward == edge.B {
			p.Loc.Offset = edge.Length - 0.1
		} else {
			p.Loc.Offset = 0.1
		}
		cfg.Step(src, g, &p, 1.0)
		if p.Loc.Edge == arrival && !p.Resting {
			// Allow it only if it moved past and came back through another
			// node, impossible at speed 0.5 in 1 s here.
			t.Fatalf("U-turn onto arrival edge at junction (trial %d)", trial)
		}
	}
}

func TestDeadEndReverses(t *testing.T) {
	g, _ := corridor(t)
	cfg := DefaultConfig()
	src := rng.New(10)
	// West end of the hallway (0,10) is a dead end with one incident edge.
	var deadEnd walkgraph.NodeID = walkgraph.NoNode
	for _, n := range g.Nodes() {
		if n.Kind == walkgraph.Junction && g.Degree(n.ID) == 1 {
			deadEnd = n.ID
			break
		}
	}
	if deadEnd == walkgraph.NoNode {
		t.Fatal("no dead end found")
	}
	e := g.IncidentEdges(deadEnd)[0]
	p := Particle{Loc: locationAtNode(g, e, g.OtherEnd(e, deadEnd)), Toward: deadEnd, Speed: 1}
	edge := g.Edge(e)
	if p.Toward == edge.B {
		p.Loc.Offset = edge.Length - 0.3
	} else {
		p.Loc.Offset = 0.3
	}
	cfg.Step(src, g, &p, 1.0)
	if p.Toward != g.OtherEnd(e, deadEnd) {
		t.Errorf("particle did not reverse at dead end: toward %v", p.Toward)
	}
}

// TestFilterLearnsDirection reproduces the paper's Figure 1 narrative: a tag
// seen at d2 and then d3 must afterwards be predicted ahead of d3 (the
// direction of travel), not behind it.
func TestFilterLearnsDirection(t *testing.T) {
	g, dep := corridor(t)
	f := MustNew(DefaultConfig(), g, dep)
	src := rng.New(11)

	var entries []model.AggregatedReading
	for _, tt := range []struct {
		t  model.Time
		rd model.ReaderID
	}{
		{0, 1}, {1, 1}, {2, 1}, // in d2's range (x ~ 18..22)
		{10, 2}, {11, 2}, {12, 2}, // in d3's range (x ~ 28..32)
	} {
		entries = append(entries, model.AggregatedReading{Object: 1, Reader: tt.rd, Time: tt.t})
	}
	st, err := f.Run(src, 1, entries, 16)
	if err != nil {
		t.Fatal(err)
	}
	if st.Time != 16 {
		t.Errorf("state time = %d, want 16", st.Time)
	}
	ahead, behind := 0, 0
	for _, p := range st.Particles {
		x := g.Point(p.Loc).X
		if x > 30 {
			ahead++
		}
		if x < 28 {
			behind++
		}
	}
	if ahead <= behind*2 {
		t.Errorf("direction not learned: ahead=%d behind=%d", ahead, behind)
	}
}

func TestFilterDeterministicGivenSeed(t *testing.T) {
	g, dep := corridor(t)
	f := MustNew(DefaultConfig(), g, dep)
	entries := []model.AggregatedReading{
		{Object: 1, Reader: 1, Time: 0},
		{Object: 1, Reader: 2, Time: 10},
	}
	st1, err := f.Run(rng.New(42), 1, entries, 15)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := f.Run(rng.New(42), 1, entries, 15)
	if err != nil {
		t.Fatal(err)
	}
	for i := range st1.Particles {
		if st1.Particles[i] != st2.Particles[i] {
			t.Fatalf("particle %d differs between equal-seed runs", i)
		}
	}
}

func TestFilterCoastLimit(t *testing.T) {
	g, dep := corridor(t)
	f := MustNew(DefaultConfig(), g, dep)
	src := rng.New(12)
	entries := []model.AggregatedReading{{Object: 1, Reader: 1, Time: 0}}
	// Last reading at t=0; the filter must stop at t=60 even when asked for
	// t=500.
	st, err := f.Run(src, 1, entries, 500)
	if err != nil {
		t.Fatal(err)
	}
	if st.Time != 60 {
		t.Errorf("state time = %d, want 60 (coast limit)", st.Time)
	}
	if st.LastReadingTime != 0 {
		t.Errorf("LastReadingTime = %d", st.LastReadingTime)
	}
}

func TestFilterNoReadingsError(t *testing.T) {
	g, dep := corridor(t)
	f := MustNew(DefaultConfig(), g, dep)
	if _, err := f.Run(rng.New(1), 1, nil, 10); err == nil {
		t.Fatal("expected error for empty readings")
	}
}

func TestFilterResamplesOnReadings(t *testing.T) {
	g, dep := corridor(t)
	f := MustNew(DefaultConfig(), g, dep)
	src := rng.New(13)
	entries := []model.AggregatedReading{
		{Object: 1, Reader: 1, Time: 0},
		{Object: 1, Reader: 2, Time: 10},
		{Object: 1, Reader: 2, Time: 11},
	}
	st, err := f.Run(src, 1, entries, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Right after reweight+resample on d3's reading, nearly all particles
	// should be inside (or very near) d3's activation range.
	reader := dep.Reader(2)
	near := 0
	for _, p := range st.Particles {
		if g.Point(p.Loc).Dist(reader.Pos) < reader.Range+1.5 {
			near++
		}
	}
	if near < len(st.Particles)*3/4 {
		t.Errorf("only %d/%d particles near the detecting reader", near, len(st.Particles))
	}
}

func TestAdvanceIncorporatesNewReadings(t *testing.T) {
	g, dep := corridor(t)
	f := MustNew(DefaultConfig(), g, dep)
	src := rng.New(14)
	entries := []model.AggregatedReading{{Object: 1, Reader: 1, Time: 0}}
	st, err := f.Run(src, 1, entries, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Time != 5 {
		t.Fatalf("time = %d", st.Time)
	}
	// New readings from d3 arrive; Advance must pull particles there.
	newEntries := []model.AggregatedReading{
		{Object: 1, Reader: 1, Time: 0}, // already processed: skipped
		{Object: 1, Reader: 2, Time: 10},
		{Object: 1, Reader: 2, Time: 11},
	}
	f.Advance(src, st, newEntries, 11)
	if st.Time != 11 {
		t.Errorf("time after Advance = %d, want 11", st.Time)
	}
	if st.LastReadingTime != 11 {
		t.Errorf("LastReadingTime = %d, want 11", st.LastReadingTime)
	}
	reader := dep.Reader(2)
	near := 0
	for _, p := range st.Particles {
		if g.Point(p.Loc).Dist(reader.Pos) < reader.Range+1.5 {
			near++
		}
	}
	if near < len(st.Particles)*3/4 {
		t.Errorf("Advance did not concentrate particles: %d near", near)
	}
}

func TestAnchorDistributionSumsToOne(t *testing.T) {
	g, dep := corridor(t)
	idx := anchor.MustBuildIndex(g, 1.0)
	f := MustNew(DefaultConfig(), g, dep)
	src := rng.New(15)
	entries := []model.AggregatedReading{
		{Object: 1, Reader: 1, Time: 0},
		{Object: 1, Reader: 2, Time: 10},
	}
	st, err := f.Run(src, 1, entries, 20)
	if err != nil {
		t.Fatal(err)
	}
	dist := st.AnchorDistribution(idx)
	total := 0.0
	for ap, p := range dist {
		if p <= 0 || p > 1 {
			t.Errorf("anchor %d has probability %v", ap, p)
		}
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("distribution total = %v", total)
	}
	// Empty state yields nil.
	empty := &State{}
	if empty.AnchorDistribution(idx) != nil {
		t.Error("empty state distribution not nil")
	}
}

func TestMeanPoint(t *testing.T) {
	g, dep := corridor(t)
	f := MustNew(DefaultConfig(), g, dep)
	src := rng.New(16)
	st := f.InitAt(src, 1, 1, 0)
	x, y := st.MeanPoint(g)
	// Initial particles are centered on reader d2 at (20, 10).
	if math.Abs(x-20) > 1 || math.Abs(y-10) > 1 {
		t.Errorf("mean point = (%v, %v), want ~(20, 10)", x, y)
	}
	empty := &State{}
	if mx, _ := empty.MeanPoint(g); !math.IsNaN(mx) {
		t.Error("empty state mean should be NaN")
	}
}
