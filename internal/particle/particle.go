// Package particle implements the paper's particle filter-based location
// inference (Sampling Importance Resampling): particles hypothesize an
// object's location, direction, and walking speed on the indoor walking
// graph; RFID readings reweight them through the device sensing model; and
// systematic resampling (the paper's Algorithm 1) concentrates them on
// consistent hypotheses. The Filter type runs the paper's Algorithm 2 over
// an object's aggregated readings.
package particle

import (
	"fmt"
	"math"

	"repro/internal/anchor"
	"repro/internal/model"
	"repro/internal/walkgraph"
)

// Particle is one hypothesis of an object's state: a location on the walking
// graph, a movement direction (the edge endpoint it is heading toward), a
// constant walking speed, and an importance weight.
type Particle struct {
	Loc walkgraph.Location
	// Toward is the endpoint of Loc.Edge the particle moves toward.
	Toward walkgraph.NodeID
	// Speed is the particle's walking speed in m/s.
	Speed float64
	// Resting marks a particle that has entered a room and is staying inside
	// (it leaves with the room-exit probability each second).
	Resting bool
	// Weight is the importance weight. Weights are normalized across a
	// particle set before resampling.
	Weight float64
}

// Config holds the particle filter parameters. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// Ns is the number of particles per object (paper default: 64).
	Ns int
	// SpeedMean and SpeedStd parameterize the Gaussian walking speed
	// distribution (paper: mu = 1 m/s, sigma = 0.1).
	SpeedMean, SpeedStd float64
	// MinSpeed and MaxSpeed truncate sampled speeds to a sane range.
	MinSpeed, MaxSpeed float64
	// RoomExitProb is the per-second probability that a particle resting in
	// a room moves out (paper: 0.1).
	RoomExitProb float64
	// HighWeight is assigned to particles consistent with a reading (inside
	// the detecting reader's activation range); LowWeight to the rest.
	HighWeight, LowWeight float64
	// MaxCoastSeconds bounds how long the filter keeps predicting past the
	// last active reading before the distribution becomes unusable
	// (paper: 60 s).
	MaxCoastSeconds int
	// UseNegativeInfo enables negative observations: during a second with no
	// reading for the object, particles sitting inside any reader's
	// activation range are inconsistent (a covered tag virtually never stays
	// silent for a whole second under the sensing model) and are reweighted
	// down. The paper's Algorithm 2 skips silent seconds entirely; this
	// extension follows the full device sensing model of the RFID cleansing
	// literature the paper builds on and is benchmarked by the
	// negative-information ablation.
	UseNegativeInfo bool
	// SpeedJitter is the standard deviation of the roughening noise added to
	// particle speeds after every resampling step. Resampling clones
	// particles; without roughening a cloud degenerates into identical
	// copies that snap to a single anchor point. Zero disables roughening.
	SpeedJitter float64
	// NegativeWeight is the weight a particle inside some reader's range
	// receives on a silent second. It is deliberately much softer than
	// LowWeight: a whole-second miss of a covered tag is rare, but a particle
	// can be slightly ahead of or behind the true object, entering the next
	// range a second or two early, and annihilating such particles collapses
	// the filter into rooms.
	NegativeWeight float64
	// Resample is the resampling algorithm (default: Systematic, the
	// paper's Algorithm 1).
	Resample ResampleFunc
	// DisableCoverageIndex turns off the precomputed edge-coverage index and
	// makes the filter answer every coverage predicate with the original
	// per-particle geometry. The two paths produce bit-for-bit identical
	// filter output (enforced by the equivalence property tests); the
	// geometric path exists as the reference implementation and for
	// benchmark comparison. Leave it off outside benchmarks.
	DisableCoverageIndex bool
	// DisableSoAKernel makes RunPool/AdvancePool step particles through the
	// original array-of-structs loops even when given a Pool, instead of the
	// structure-of-arrays kernel (see soa.go). As with the coverage index,
	// the two paths produce bit-for-bit identical filter output (enforced by
	// the SoA equivalence property tests); the AoS path is the reference
	// implementation and the benchmark baseline. Leave it off outside
	// benchmarks.
	DisableSoAKernel bool
}

// DefaultConfig returns the paper's parameters (Table 2 and Section 4.4).
func DefaultConfig() Config {
	return Config{
		Ns:              64,
		SpeedMean:       1.0,
		SpeedStd:        0.1,
		MinSpeed:        0.1,
		MaxSpeed:        2.5,
		RoomExitProb:    0.1,
		HighWeight:      1.0,
		LowWeight:       0.01,
		MaxCoastSeconds: 60,
		UseNegativeInfo: true,
		NegativeWeight:  0.3,
		SpeedJitter:     0.05,
		Resample:        Systematic,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Ns <= 0 {
		return fmt.Errorf("particle: Ns must be positive, got %d", c.Ns)
	}
	if c.SpeedMean <= 0 || c.SpeedStd < 0 {
		return fmt.Errorf("particle: invalid speed distribution (%v, %v)", c.SpeedMean, c.SpeedStd)
	}
	if c.MinSpeed <= 0 || c.MaxSpeed < c.MinSpeed {
		return fmt.Errorf("particle: invalid speed bounds [%v, %v]", c.MinSpeed, c.MaxSpeed)
	}
	if c.RoomExitProb < 0 || c.RoomExitProb > 1 {
		return fmt.Errorf("particle: RoomExitProb %v out of [0,1]", c.RoomExitProb)
	}
	if c.HighWeight <= c.LowWeight || c.LowWeight < 0 {
		return fmt.Errorf("particle: weights must satisfy 0 <= low < high, got %v, %v", c.LowWeight, c.HighWeight)
	}
	if c.MaxCoastSeconds < 0 {
		return fmt.Errorf("particle: MaxCoastSeconds %d negative", c.MaxCoastSeconds)
	}
	if c.UseNegativeInfo && (c.NegativeWeight <= 0 || c.NegativeWeight > c.HighWeight) {
		return fmt.Errorf("particle: NegativeWeight %v out of (0, HighWeight]", c.NegativeWeight)
	}
	if c.SpeedJitter < 0 {
		return fmt.Errorf("particle: SpeedJitter %v negative", c.SpeedJitter)
	}
	if c.Resample == nil {
		return fmt.Errorf("particle: Resample function missing")
	}
	return nil
}

// State is a filtered particle set for one object at a point in time. It is
// the unit stored by the cache management module.
type State struct {
	Object    model.ObjectID
	Particles []Particle
	// Time is the simulation second the particle set describes.
	Time model.Time
	// LastReadingTime is the time of the newest reading incorporated.
	LastReadingTime model.Time
	// LastRun is the stage-timing breakdown of the most recent Run/Advance
	// call, filled only when the filter is instrumented (Filter.Instrument).
	LastRun RunStats

	// scratch is the recycled resampling output buffer: after each resample
	// the previous particle slice becomes the next call's destination, so
	// the steady-state filter loop allocates nothing. Its contents are
	// meaningless between calls.
	scratch []Particle
	// byTime is advance's recycled detection schedule (time -> detecting
	// reader), cleared and refilled on every advance call.
	byTime map[model.Time]model.ReaderID

	// soaPool/soaGen stamp the last SoA-kernel synchronization of this
	// state: when soaPool's arrays still hold exactly this state's
	// particles (generation match), the kernel skips re-loading them.
	// Every scalar-path mutation clears the stamp; clones don't carry it.
	soaPool *Pool
	soaGen  uint64
}

// Clone returns a deep copy of the state. Scratch buffers are not carried
// over: clones start with fresh ones, so a state and its clone can be
// advanced independently (the cache clones on both Put and Get).
func (s *State) Clone() *State {
	c := *s
	c.Particles = make([]Particle, len(s.Particles))
	copy(c.Particles, s.Particles)
	c.scratch = nil
	c.byTime = nil
	c.soaPool = nil
	c.soaGen = 0
	return &c
}

// NormalizeWeights scales weights to sum to one. If all weights are zero it
// resets them to uniform.
func NormalizeWeights(ps []Particle) {
	total := 0.0
	for i := range ps {
		total += ps[i].Weight
	}
	if total <= 0 {
		u := 1.0 / float64(len(ps))
		for i := range ps {
			ps[i].Weight = u
		}
		return
	}
	for i := range ps {
		ps[i].Weight /= total
	}
}

// EffectiveSampleSize returns 1 / sum(w^2) for normalized weights, the
// standard degeneracy diagnostic: it approaches 1 when one particle
// dominates and Ns when weights are uniform.
func EffectiveSampleSize(ps []Particle) float64 {
	sq := 0.0
	for i := range ps {
		sq += ps[i].Weight * ps[i].Weight
	}
	if sq == 0 {
		return 0
	}
	return 1 / sq
}

// AnchorDistribution snaps every particle to its nearest anchor point and
// returns the resulting probability distribution, weighting each particle by
// its (normalized) importance weight; with uniform weights — always the case
// right after a resampling step — this is exactly the paper's n/Ns counting.
// This is the discretization step feeding the APtoObjHT hash table.
func (s *State) AnchorDistribution(idx *anchor.Index) map[anchor.ID]float64 {
	if len(s.Particles) == 0 {
		return nil
	}
	// Normalize on the fly without mutating the particle weights, so
	// repeated calls on the same (possibly cached) state are bit-for-bit
	// identical.
	total := 0.0
	for i := range s.Particles {
		total += s.Particles[i].Weight
	}
	dist := make(map[anchor.ID]float64)
	if total <= 0 {
		u := 1.0 / float64(len(s.Particles))
		for i := range s.Particles {
			dist[idx.Snap(s.Particles[i].Loc)] += u
		}
		return dist
	}
	for i := range s.Particles {
		dist[idx.Snap(s.Particles[i].Loc)] += s.Particles[i].Weight / total
	}
	return dist
}

// MeanPoint returns the weighted mean of particle positions, a crude point
// estimate used by diagnostics.
func (s *State) MeanPoint(g *walkgraph.Graph) (x, y float64) {
	if len(s.Particles) == 0 {
		return math.NaN(), math.NaN()
	}
	total := 0.0
	for i := range s.Particles {
		total += s.Particles[i].Weight
	}
	if total <= 0 {
		total = float64(len(s.Particles))
		for i := range s.Particles {
			p := g.Point(s.Particles[i].Loc)
			x += p.X / total
			y += p.Y / total
		}
		return x, y
	}
	for i := range s.Particles {
		p := g.Point(s.Particles[i].Loc)
		x += p.X * s.Particles[i].Weight / total
		y += p.Y * s.Particles[i].Weight / total
	}
	return x, y
}
