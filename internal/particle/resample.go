package particle

import (
	"repro/internal/rng"
)

// ResampleFunc replaces a weighted particle set with an equally weighted one
// drawn (approximately) proportionally to the weights. Implementations must
// preserve the particle count. Input weights must be normalized.
type ResampleFunc func(src *rng.Source, ps []Particle) []Particle

// Systematic is the paper's Algorithm 1: construct the weight CDF, draw one
// uniform starting point u1 in [0, 1/Ns], and take Ns equally spaced probes
// u_j = u1 + (j-1)/Ns through the CDF. Low-weight particles are eliminated,
// high-weight particles replicated, and all output weights are 1/Ns.
func Systematic(src *rng.Source, ps []Particle) []Particle {
	ns := len(ps)
	if ns == 0 {
		return nil
	}
	// Construct the CDF.
	cdf := make([]float64, ns)
	acc := 0.0
	for i := range ps {
		acc += ps[i].Weight
		cdf[i] = acc
	}
	// Guard against rounding: the last CDF entry must cover u_Ns.
	cdf[ns-1] = acc + 1

	out := make([]Particle, ns)
	u1 := src.Uniform(0, 1.0/float64(ns))
	i := 0
	for j := 0; j < ns; j++ {
		u := u1 + float64(j)/float64(ns)
		for u > cdf[i] {
			i++
		}
		out[j] = ps[i]
		out[j].Weight = 1.0 / float64(ns)
	}
	return out
}

// Multinomial draws each output particle independently proportionally to the
// weights. It has higher variance than Systematic and exists as the ablation
// baseline for the resampling design choice.
func Multinomial(src *rng.Source, ps []Particle) []Particle {
	ns := len(ps)
	if ns == 0 {
		return nil
	}
	weights := make([]float64, ns)
	for i := range ps {
		weights[i] = ps[i].Weight
	}
	out := make([]Particle, ns)
	for j := 0; j < ns; j++ {
		out[j] = ps[src.Categorical(weights)]
		out[j].Weight = 1.0 / float64(ns)
	}
	return out
}
