package particle

import (
	"repro/internal/rng"
)

// ResampleFunc replaces a weighted particle set with an equally weighted one
// drawn (approximately) proportionally to the weights. Implementations must
// preserve the particle count. Input weights must be normalized.
//
// dst is an optional output buffer: when its capacity suffices the result is
// written into it instead of a fresh allocation, which is what lets the
// filter's steady-state loop run allocation-free (the filter recycles the
// previous particle slice as the next call's dst). dst may be nil and must
// not alias ps. Implementations must not read dst's contents.
type ResampleFunc func(src *rng.Source, dst, ps []Particle) []Particle

// Systematic is the paper's Algorithm 1: draw one uniform starting point u1
// in [0, 1/Ns] and take Ns equally spaced probes u_j = u1 + (j-1)/Ns through
// the weight CDF. Low-weight particles are eliminated, high-weight particles
// replicated, and all output weights are 1/Ns. The CDF is accumulated on the
// fly (the probes visit it in order), so no CDF array is materialized.
func Systematic(src *rng.Source, dst, ps []Particle) []Particle {
	ns := len(ps)
	if ns == 0 {
		return nil
	}
	out := dst
	if cap(out) >= ns {
		out = out[:ns]
	} else {
		out = make([]Particle, ns)
	}
	inv := 1.0 / float64(ns)
	u1 := src.Uniform(0, inv)
	// For the usual power-of-two particle counts, 1/ns is exact and
	// float64(j)*inv is the correctly rounded quotient float64(j)/float64(ns)
	// — the same bits without a division per probe. Other counts keep the
	// division so the probes stay bit-identical to the formula as written.
	pow2 := ns&(ns-1) == 0
	i := 0
	cum := ps[0].Weight
	for j := 0; j < ns; j++ {
		var u float64
		if pow2 {
			u = u1 + float64(j)*inv
		} else {
			u = u1 + float64(j)/float64(ns)
		}
		// Advance to the CDF bucket containing u. The last bucket acts as a
		// sentinel absorbing any rounding shortfall in the weight sum.
		for i < ns-1 && u > cum {
			i++
			cum += ps[i].Weight
		}
		out[j] = ps[i]
		out[j].Weight = inv
	}
	return out
}

// Multinomial draws each output particle independently proportionally to the
// weights. It has higher variance than Systematic and exists as the ablation
// baseline for the resampling design choice.
func Multinomial(src *rng.Source, dst, ps []Particle) []Particle {
	ns := len(ps)
	if ns == 0 {
		return nil
	}
	weights := make([]float64, ns)
	for i := range ps {
		weights[i] = ps[i].Weight
	}
	out := dst
	if cap(out) >= ns {
		out = out[:ns]
	} else {
		out = make([]Particle, ns)
	}
	for j := 0; j < ns; j++ {
		out[j] = ps[src.Categorical(weights)]
		out[j].Weight = 1.0 / float64(ns)
	}
	return out
}
