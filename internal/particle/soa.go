package particle

import (
	"math"
	"time"

	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/walkgraph"
)

// This file is the structure-of-arrays particle kernel: the filter's inner
// loops rewritten over flat parallel arrays (edge index, offset, heading,
// speed, resting bitset, weight) owned by a Pool, instead of a []Particle of
// 56-byte structs. The kernel's arithmetic is bit-for-bit identical to the
// scalar path in filter.go/motion.go — same float operations in the same
// order, same random draws in the same order — so a filter produces the same
// States whichever path runs (pinned by the SoA equivalence property tests).
// What changes is the memory traffic: predict streams through five flat
// arrays, reweight and the negative update hand whole batches to the
// coverage index (rfid.BatchDetectableBy/Any), resampling permutes arrays
// instead of structs, and roughening draws all speeds in one call.
//
// The Pool is the reusable scratch for one object-at-a-time stepping. It is
// not safe for concurrent use; the engine keeps one per worker and reuses it
// across all objects the worker steps, so the arrays stay hot in cache and
// steady-state processing allocates nothing.

// Pool holds the flat particle arrays the SoA kernel steps, plus the back
// buffers resampling permutes into and the scratch the batch coverage
// predicates fill. A zero Pool is ready to use; arrays grow on demand and are
// retained across calls.
type Pool struct {
	// n is the live particle count; every array below is sliced to it.
	n int

	edge   []int32   // Particle.Loc.Edge
	offset []float64 // Particle.Loc.Offset
	toward []int32   // Particle.Toward
	speed  []float64 // Particle.Speed
	weight []float64 // Particle.Weight
	// resting packs Particle.Resting as a bitset, bit i = particle i.
	resting []uint64

	// Back buffers: resampling permutes the arrays above into these and
	// swaps. Weights need no back buffer — every resampled weight is the
	// same 1/Ns, so the live array is overwritten after the permutation.
	bedge    []int32
	boffset  []float64
	btoward  []int32
	bspeed   []float64
	bresting []uint64

	// covered is the output of the batch coverage predicates.
	covered []bool
	// cum is the resampler's prefix-sum scratch (cumulative weights with a
	// +Inf sentinel in the last slot, so the CDF walk needs one compare).
	cum []float64

	// owner/gen implement load elision: store stamps the state it wrote
	// with (pool, generation), and a later load for the same state with a
	// matching stamp finds the arrays already in sync. The generation
	// guards against the pool having served another state in between.
	owner *State
	gen   uint64

	// sched is the recycled detection schedule (the SoA replacement for
	// State.byTime): (time, reader) pairs sorted by time, deduplicated
	// last-wins like the map writes it replaces.
	sched []soaSched
}

type soaSched struct {
	t      model.Time
	reader model.ReaderID
}

// NewPool returns an empty Pool. Arrays are allocated lazily on first use.
func NewPool() *Pool { return &Pool{} }

// ensure sizes every array for n particles, reusing capacity, and sets the
// live count.
func (p *Pool) ensure(n int) {
	if n == p.n && len(p.edge) == n {
		return
	}
	if cap(p.edge) < n {
		p.edge = make([]int32, n)
		p.offset = make([]float64, n)
		p.toward = make([]int32, n)
		p.speed = make([]float64, n)
		p.weight = make([]float64, n)
		p.bedge = make([]int32, n)
		p.boffset = make([]float64, n)
		p.btoward = make([]int32, n)
		p.bspeed = make([]float64, n)
		p.covered = make([]bool, n)
		p.cum = make([]float64, n)
	} else {
		p.edge = p.edge[:n]
		p.offset = p.offset[:n]
		p.toward = p.toward[:n]
		p.speed = p.speed[:n]
		p.weight = p.weight[:n]
		p.bedge = p.bedge[:n]
		p.boffset = p.boffset[:n]
		p.btoward = p.btoward[:n]
		p.bspeed = p.bspeed[:n]
		p.covered = p.covered[:n]
		p.cum = p.cum[:n]
	}
	words := (n + 63) / 64
	if cap(p.resting) < words {
		p.resting = make([]uint64, words)
		p.bresting = make([]uint64, words)
	} else {
		p.resting = p.resting[:words]
		p.bresting = p.bresting[:words]
	}
	p.n = n
}

// load copies a State's particles into the flat arrays. When the state's
// residency stamp shows this pool already holds exactly these particles
// (the previous store wrote them and nothing else used the pool since), the
// copy is skipped.
func (p *Pool) load(st *State) {
	n := len(st.Particles)
	if st.soaPool == p && p.owner == st && st.soaGen == p.gen && p.n == n {
		return
	}
	p.ensure(n)
	resting := p.resting
	for i := range resting {
		resting[i] = 0
	}
	ps := st.Particles
	edge, offset, toward, speed, weight := p.edge[:n], p.offset[:n], p.toward[:n], p.speed[:n], p.weight[:n]
	for i := range ps {
		pt := &ps[i]
		edge[i] = int32(pt.Loc.Edge)
		offset[i] = pt.Loc.Offset
		toward[i] = int32(pt.Toward)
		speed[i] = pt.Speed
		weight[i] = pt.Weight
		if pt.Resting {
			resting[i>>6] |= 1 << uint(i&63)
		}
	}
}

// store copies the flat arrays back into the State's particle slice, reusing
// its capacity (the count can change when a recovery reinitialization ran
// under a different particle budget).
func (p *Pool) store(st *State) {
	n := p.n
	if cap(st.Particles) < n {
		st.Particles = make([]Particle, n)
	} else {
		st.Particles = st.Particles[:n]
	}
	ps := st.Particles
	edge, offset, toward, speed, weight, resting := p.edge[:n], p.offset[:n], p.toward[:n], p.speed[:n], p.weight[:n], p.resting
	for i := range ps {
		pt := &ps[i]
		pt.Loc.Edge = walkgraph.EdgeID(edge[i])
		pt.Loc.Offset = offset[i]
		pt.Toward = walkgraph.NodeID(toward[i])
		pt.Speed = speed[i]
		pt.Resting = resting[i>>6]&(1<<uint(i&63)) != 0
		pt.Weight = weight[i]
	}
	p.gen++
	p.owner = st
	st.soaPool = p
	st.soaGen = p.gen
}

// RunPool is Run executing on the SoA kernel with pool as scratch. With a nil
// pool, or when the filter cannot use the kernel (geometric path, custom
// resampler, Config.DisableSoAKernel), it falls back to Run. Output is
// bit-for-bit identical either way.
func (f *Filter) RunPool(pool *Pool, src *rng.Source, obj model.ObjectID, entries []model.AggregatedReading, now model.Time) (*State, error) {
	if pool == nil || !f.soa {
		return f.Run(src, obj, entries, now)
	}
	if len(entries) == 0 {
		return nil, errNoReadings(obj)
	}
	first := entries[0]
	st := f.InitAt(src, obj, first.Reader, first.Time)
	f.advanceSoA(pool, src, st, entries[1:], now, false)
	return st, nil
}

// AdvancePool is Advance executing on the SoA kernel with pool as scratch,
// with the same fallback and equivalence contract as RunPool.
func (f *Filter) AdvancePool(pool *Pool, src *rng.Source, st *State, entries []model.AggregatedReading, now model.Time) {
	if pool == nil || !f.soa {
		f.advance(src, st, entries, now, true)
		return
	}
	f.advanceSoA(pool, src, st, entries, now, true)
}

// SoAKernel reports whether the filter steps particles on the SoA kernel when
// given a Pool: it requires the coverage index, the package's Systematic
// resampler, and Config.DisableSoAKernel unset.
func (f *Filter) SoAKernel() bool { return f.soa }

// advanceSoA is the SoA mirror of advance: same schedule semantics, same
// per-second stage order, same stage-timing attribution.
func (f *Filter) advanceSoA(p *Pool, src *rng.Source, st *State, entries []model.AggregatedReading, now model.Time, skipStale bool) {
	// Build the detection schedule. The scalar path uses a time-keyed map;
	// here it is a slice kept sorted by time with last-write-wins on
	// duplicates — the same contents, reading off in time order without
	// a per-second map lookup. Entries arrive oldest-first, so the insert
	// is an append in practice.
	sched := p.sched[:0]
	td := st.LastReadingTime
	for _, e := range entries {
		if skipStale && e.Time <= st.Time {
			continue
		}
		if !e.Detected() {
			continue
		}
		k := len(sched)
		for k > 0 && sched[k-1].t > e.Time {
			k--
		}
		if k > 0 && sched[k-1].t == e.Time {
			sched[k-1].reader = e.Reader
		} else {
			sched = append(sched, soaSched{})
			copy(sched[k+1:], sched[k:])
			sched[k] = soaSched{t: e.Time, reader: e.Reader}
		}
		if e.Time > td {
			td = e.Time
		}
	}
	p.sched = sched

	tmin := td + model.Time(f.cfg.MaxCoastSeconds)
	if now < tmin {
		tmin = now
	}
	timed := f.timed
	var rs RunStats
	var t0 time.Time
	if timed {
		rs.From = st.Time
	}
	p.load(st)
	cursor := 0
	for tj := st.Time + 1; tj <= tmin; tj++ {
		if timed {
			t0 = time.Now()
		}
		f.predictSoA(p, src)
		if timed {
			rs.Predict += time.Since(t0)
			rs.Steps++
		}
		for cursor < len(sched) && sched[cursor].t < tj {
			cursor++
		}
		var reader model.ReaderID
		detected := false
		if cursor < len(sched) && sched[cursor].t == tj {
			reader = sched[cursor].reader
			detected = true
			cursor++
		}
		if !detected {
			if f.cfg.UseNegativeInfo {
				if timed {
					t0 = time.Now()
				}
				f.negativeUpdateSoA(p, src)
				if timed {
					rs.Reweight += time.Since(t0)
				}
			}
			continue
		}
		if timed {
			rs.Detections++
			t0 = time.Now()
		}
		// Reweight: the batch coverage predicate decides HighWeight or
		// LowWeight per particle. The weights themselves are never
		// materialized — after reweight every weight is exactly one of the
		// two values, NormalizeWeights' total is their sum accumulated in
		// index order, and the normalized weights (two divisions instead of
		// Ns) are consumed solely by the resampler's CDF walk, which reads
		// them straight off the covered flags. Every float operation and its
		// order match the scalar reweight → normalize → resample chain, so
		// the output stays bit-identical.
		f.cov.BatchDetectableBy(reader, p.edge, p.offset, p.covered)
		hw, lw := f.cfg.HighWeight, f.cfg.LowWeight
		// Accumulate in index order (the scalar normalization's float
		// addition sequence) but select the addend by table index: the
		// covered flags are close to a coin flip here, so a branch would
		// mispredict constantly.
		wtab := [2]float64{lw, hw}
		hits := 0
		total := 0.0
		for _, c := range p.covered {
			k := 0
			if c {
				k = 1
			}
			hits += k
			total += wtab[k]
		}
		consistent := hits > 0
		if timed {
			rs.Reweight += time.Since(t0)
		}
		if !consistent {
			// Kidnapped-robot recovery, in place: reinitialize the arrays
			// within the detecting reader's range (same draws and floats as
			// the scalar recovery, without the fresh State allocation).
			f.initSoA(p, src, reader)
			continue
		}
		if timed {
			t0 = time.Now()
		}
		f.resampleTwoValuedSoA(p, src, hw/total, lw/total)
		f.roughenSoA(p, src)
		if timed {
			rs.Resample += time.Since(t0)
			rs.Resamples++
		}
	}
	p.store(st)
	if tmin > st.Time {
		st.Time = tmin
	}
	st.LastReadingTime = td
	if timed {
		rs.To = st.Time
		rs.ESS = essOf(st.Particles)
		st.LastRun = rs
		if f.met.Predict != nil {
			f.met.Predict.Observe(rs.Predict.Seconds())
		}
		if f.met.Reweight != nil {
			f.met.Reweight.Observe(rs.Reweight.Seconds())
		}
		if f.met.Resample != nil {
			f.met.Resample.Observe(rs.Resample.Seconds())
		}
		if f.met.ParticleSteps != nil {
			f.met.ParticleSteps.Add(uint64(rs.Steps) * uint64(len(st.Particles)))
		}
	}
}

// boolMask returns all-ones for true, zero for false (the compiler lowers
// the conditional to a flag materialization, not a branch).
func boolMask(b bool) uint64 {
	var k uint64
	if b {
		k = 1
	}
	return -k
}

// fsel returns a when m is all-ones and b when m is zero, by selecting the
// raw bit pattern: no float arithmetic, so the chosen value is exactly the
// operand.
func fsel(m uint64, a, b float64) float64 {
	return math.Float64frombits(math.Float64bits(a)&m | math.Float64bits(b)&^m)
}

// fneg returns -x by sign-bit flip (bit-identical to IEEE negation).
func fneg(x float64) float64 {
	return math.Float64frombits(math.Float64bits(x) ^ (1 << 63))
}

// predictSoA steps every particle by one second under the motion model,
// mirroring Config.Step draw for draw over the flat edge/node tables.
func (f *Filter) predictSoA(p *Pool, src *rng.Source) {
	et := f.et
	nt := f.nt
	rows, eRoom := et.Walk, et.RoomEnd
	isRoom := nt.IsRoom
	exitP := f.cfg.RoomExitProb // Step computes RoomExitProb*dt; dt is 1 here
	n := p.n
	pedge, poffset, ptoward, pspeed, presting := p.edge[:n], p.offset[:n], p.toward[:n], p.speed[:n], p.resting
	for i := 0; i < n; i++ {
		off, e, tw := poffset[i], pedge[i], ptoward[i]
		row := &rows[e]
		word, bit := i>>6, uint64(1)<<uint(i&63)
		if presting[word]&bit != 0 {
			if !src.Bool(exitP) {
				continue
			}
			// Leave the room: head down one of its door edges.
			presting[word] &^= bit
			node := eRoom[e]
			if node < 0 {
				node = row.A // roomNodeOf's fallback for roomless edges
			}
			adj := nt.Incident(node)
			e = adj[src.Intn(len(adj))]
			row = &rows[e]
			if row.A == node {
				off = 0
				tw = row.B
			} else {
				off = row.Length
				tw = row.A
			}
		}
		remaining := pspeed[i]
		for remaining > 0 {
			// The walk direction is a near-coin-flip per particle, so the
			// toward-B/toward-A split is done by bit-masked selection
			// instead of branches. Selection only picks one of two
			// already-computed float64 bit patterns — off+remaining vs
			// off-remaining (= off+(-remaining), identical in IEEE
			// arithmetic) — so the result is bit-for-bit the scalar path's.
			m := boolMask(tw == row.B)
			toNode := fsel(m, row.Length-off, off)
			if remaining < toNode {
				off += fsel(m, remaining, fneg(remaining))
				break
			}
			remaining -= toNode
			node := tw
			if isRoom[node] {
				if row.A == node {
					off = 0
				} else {
					off = row.Length
				}
				presting[word] |= bit
				break
			}
			// chooseNextEdge: uniform pick among incident edges != e, unless
			// the node is a dead end. Candidate order is the CSR adjacency
			// order, which is Graph.IncidentEdges order — identical draws.
			adj := nt.Incident(node)
			var next int32
			if len(adj) == 1 {
				next = adj[0]
			} else {
				cnt := 0
				next = e
				for _, a := range adj {
					if a == e {
						continue
					}
					cnt++
					if src.Intn(cnt) == 0 {
						next = a
					}
				}
			}
			row = &rows[next]
			if row.A == node {
				off = 0
				tw = row.B
			} else {
				off = row.Length
				tw = row.A
			}
			e = next
		}
		poffset[i], pedge[i], ptoward[i] = off, e, tw
	}
}

// resampleTwoValuedSoA is resampleSoA for the detected-second case where the
// normalized weights take exactly two values selected by the covered flags
// (hwn for covered particles, lwn for the rest). The CDF additions visit the
// same values in the same order as a materialized weight array would, so the
// permutation is bit-identical to the general path.
func (f *Filter) resampleTwoValuedSoA(p *Pool, src *rng.Source, hwn, lwn float64) {
	ns := p.n
	if ns == 0 {
		return
	}
	inv := 1.0 / float64(ns)
	u1 := src.Uniform(0, inv)
	pow2 := ns&(ns-1) == 0
	bresting := p.bresting
	for k := range bresting {
		bresting[k] = 0
	}
	covered := p.covered[:ns]
	edge, offset, toward, speed, resting := p.edge, p.offset, p.toward, p.speed, p.resting
	bedge, boffset, btoward, bspeed := p.bedge, p.boffset, p.btoward, p.bspeed
	wtab := [2]float64{lwn, hwn}
	// Prefix-sum the two-valued weights into the cum scratch in index order
	// (the same float additions, in the same order, as the scalar walk's
	// running accumulator), then overwrite the last slot with +Inf: the walk
	// below can never pass it, which turns the scalar path's bounds check
	// ("i < ns-1 && u > cum") into the single compare "u > cum[i]" while
	// stopping at exactly the same index.
	cum := p.cum[:ns]
	c := 0.0
	for i := 0; i < ns; i++ {
		k := 0
		if covered[i] {
			k = 1
		}
		c += wtab[k]
		cum[i] = c
	}
	cum[ns-1] = math.Inf(1)
	i := 0
	for j := 0; j < ns; j++ {
		var u float64
		if pow2 {
			u = u1 + float64(j)*inv
		} else {
			u = u1 + float64(j)/float64(ns)
		}
		for u > cum[i] {
			i++
		}
		bedge[j] = edge[i]
		boffset[j] = offset[i]
		btoward[j] = toward[i]
		bspeed[j] = speed[i]
		if resting[i>>6]&(1<<uint(i&63)) != 0 {
			bresting[j>>6] |= 1 << uint(j&63)
		}
	}
	p.edge, p.bedge = p.bedge, p.edge
	p.offset, p.boffset = p.boffset, p.offset
	p.toward, p.btoward = p.btoward, p.toward
	p.speed, p.bspeed = p.bspeed, p.speed
	p.resting, p.bresting = p.bresting, p.resting
	w := p.weight
	for j := range w {
		w[j] = inv
	}
}

// negativeUpdateSoA is the SoA mirror of negativeUpdate: soft-penalize
// particles inside any healthy reader's range, then resample only on weight
// degeneracy. Normalization and the ESS test replicate the scalar float
// operations exactly.
func (f *Filter) negativeUpdateSoA(p *Pool, src *rng.Source) {
	n := p.n
	f.cov.BatchDetectableAny(p.edge, p.offset, f.unhealthy, p.covered)
	inside := 0
	nw := f.cfg.NegativeWeight
	w := p.weight
	for i := 0; i < n; i++ {
		if p.covered[i] {
			w[i] *= nw
			inside++
		}
	}
	if inside == 0 {
		return
	}
	total := 0.0
	for i := range w {
		total += w[i]
	}
	if total <= 0 {
		u := 1.0 / float64(n)
		for i := range w {
			w[i] = u
		}
	} else {
		for i := range w {
			w[i] /= total
		}
	}
	sq := 0.0
	for i := range w {
		sq += w[i] * w[i]
	}
	ess := 0.0
	if sq != 0 {
		ess = 1 / sq
	}
	if ess < float64(n)/2 {
		f.resampleSoA(p, src)
		f.roughenSoA(p, src)
	}
}

// resampleSoA is Systematic (Algorithm 1) permuting the flat arrays into the
// back buffers. The probe positions and CDF walk are bit-identical to the
// scalar resampler, including its division-avoiding fast path for
// power-of-two counts (see Systematic).
func (f *Filter) resampleSoA(p *Pool, src *rng.Source) {
	ns := p.n
	if ns == 0 {
		return
	}
	inv := 1.0 / float64(ns)
	u1 := src.Uniform(0, inv)
	pow2 := ns&(ns-1) == 0
	bresting := p.bresting
	for k := range bresting {
		bresting[k] = 0
	}
	weight := p.weight[:ns]
	edge, offset, toward, speed, resting := p.edge, p.offset, p.toward, p.speed, p.resting
	bedge, boffset, btoward, bspeed := p.bedge, p.boffset, p.btoward, p.bspeed
	// Same prefix-sum + sentinel trick as resampleTwoValuedSoA: identical
	// additions in identical order, with +Inf in the last slot standing in
	// for the scalar walk's bounds check.
	cum := p.cum[:ns]
	c := 0.0
	for i := 0; i < ns; i++ {
		c += weight[i]
		cum[i] = c
	}
	cum[ns-1] = math.Inf(1)
	i := 0
	for j := 0; j < ns; j++ {
		var u float64
		if pow2 {
			u = u1 + float64(j)*inv
		} else {
			u = u1 + float64(j)/float64(ns)
		}
		for u > cum[i] {
			i++
		}
		bedge[j] = edge[i]
		boffset[j] = offset[i]
		btoward[j] = toward[i]
		bspeed[j] = speed[i]
		if resting[i>>6]&(1<<uint(i&63)) != 0 {
			bresting[j>>6] |= 1 << uint(j&63)
		}
	}
	p.edge, p.bedge = p.bedge, p.edge
	p.offset, p.boffset = p.boffset, p.offset
	p.toward, p.btoward = p.btoward, p.toward
	p.speed, p.bspeed = p.bspeed, p.speed
	p.resting, p.bresting = p.bresting, p.resting
	for j := range weight {
		weight[j] = inv
	}
}

// roughenSoA perturbs all speeds in one batched draw (stream-identical to the
// scalar per-particle loop).
func (f *Filter) roughenSoA(p *Pool, src *rng.Source) {
	if f.cfg.SpeedJitter <= 0 {
		return
	}
	src.TruncGaussianFill(p.speed, f.cfg.SpeedJitter, f.cfg.MinSpeed, f.cfg.MaxSpeed)
}

// initSoA reinitializes the pool's particles within the detecting reader's
// activation range: the in-place SoA form of InitAt's sampling, with the same
// draws, the same binary search over the precomputed intervals (the SoA
// kernel always has the coverage index), and no allocation.
func (f *Filter) initSoA(p *Pool, src *rng.Source, reader model.ReaderID) {
	ivs, total := f.cov.InitIntervals(reader)
	ns := f.ParticleBudget()
	p.ensure(ns)
	for k := range p.resting {
		p.resting[k] = 0
	}
	et := f.et
	w := 1.0 / float64(ns)
	for i := 0; i < ns; i++ {
		var e int32
		var off float64
		if total > 0 {
			u := src.Uniform(0, total)
			// Find the interval containing u: the last index with
			// CumStart <= u, the same index sort.Search yields on the
			// scalar path (only the index matters for equivalence, not the
			// probe sequence). Reader coverage rarely spans more than a
			// handful of edges, so a branchless linear count beats a binary
			// search whose every probe is a coin-flip branch; large tables
			// keep the logarithmic search.
			lo := 1
			if len(ivs) <= 16 {
				for k := 1; k < len(ivs); k++ {
					b := 0
					if ivs[k].CumStart <= u {
						b = 1
					}
					lo += b
				}
			} else {
				hi := len(ivs)
				for lo < hi {
					mid := int(uint(lo+hi) >> 1)
					if !(ivs[mid].CumStart > u) {
						lo = mid + 1
					} else {
						hi = mid
					}
				}
			}
			iv := &ivs[lo-1]
			e = int32(iv.Edge)
			off = iv.Lo + (u - iv.CumStart)
		} else {
			// Degenerate deployment: collapse to the nearest graph point.
			loc := f.g.NearestLocation(f.dep.Reader(reader).Pos)
			e = int32(loc.Edge)
			off = loc.Offset
		}
		tw := et.A[e]
		if src.Bool(0.5) {
			tw = et.B[e]
		}
		p.edge[i] = e
		p.offset[i] = off
		p.toward[i] = tw
		p.speed[i] = src.TruncGaussian(f.cfg.SpeedMean, f.cfg.SpeedStd, f.cfg.MinSpeed, f.cfg.MaxSpeed)
		p.weight[i] = w
	}
}
