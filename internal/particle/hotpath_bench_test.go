package particle

import (
	"testing"

	"repro/internal/floorplan"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/rng"
	"repro/internal/walkgraph"
)

// benchSetup builds the paper's default deployment (DefaultOffice, 19
// readers at 2 m range) and one filter per coverage path.
func benchSetup(b *testing.B) (*walkgraph.Graph, *rfid.Deployment, map[string]*Filter) {
	b.Helper()
	plan := floorplan.DefaultOffice()
	g, err := walkgraph.Build(plan)
	if err != nil {
		b.Fatal(err)
	}
	dep, err := rfid.DeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	if err != nil {
		b.Fatal(err)
	}
	cfgGeo := DefaultConfig()
	cfgGeo.DisableCoverageIndex = true
	return g, dep, map[string]*Filter{
		"indexed":   MustNew(DefaultConfig(), g, dep),
		"geometric": MustNew(cfgGeo, g, dep),
	}
}

// spreadState initializes a particle set covering a realistic spread: the
// cloud of a reader detection after a few seconds of coasting.
func spreadState(f *Filter, seed int64) (*State, *rng.Source) {
	src := rng.Derive(seed)
	st := f.InitAt(src, 1, 3, 0)
	f.Advance(src, st, nil, 4) // coast a few silent seconds to spread out
	return st, src
}

// BenchmarkFilterStep measures one full filter second on the detected path:
// motion step, reweight against the detecting reader, normalization,
// systematic resampling, and roughening, for the paper's Ns=64 particles.
func BenchmarkFilterStep(b *testing.B) {
	_, _, filters := benchSetup(b)
	for _, name := range []string{"indexed", "geometric"} {
		f := filters[name]
		b.Run(name, func(b *testing.B) {
			st, src := spreadState(f, 42)
			entry := []model.AggregatedReading{{Object: 1, Reader: 3}}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				next := st.Time + 1
				entry[0].Time = next
				f.Advance(src, st, entry, next)
			}
		})
	}
}

// BenchmarkNegativeUpdate measures the silent-second observation: the
// covered-by-any-reader test for every particle plus the conditional
// degeneracy resampling.
func BenchmarkNegativeUpdate(b *testing.B) {
	_, _, filters := benchSetup(b)
	for _, name := range []string{"indexed", "geometric"} {
		f := filters[name]
		b.Run(name, func(b *testing.B) {
			st, src := spreadState(f, 43)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.negativeUpdate(src, st)
			}
		})
	}
}

// BenchmarkInitAt measures particle-set initialization within a reader's
// activation range (the filter (re)start path, also hit by the
// kidnapped-robot recovery).
func BenchmarkInitAt(b *testing.B) {
	_, dep, filters := benchSetup(b)
	for _, name := range []string{"indexed", "geometric"} {
		f := filters[name]
		b.Run(name, func(b *testing.B) {
			src := rng.Derive(44)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reader := model.ReaderID(i % dep.NumReaders())
				f.InitAt(src, 1, reader, 0)
			}
		})
	}
}

// BenchmarkReweight isolates the positive-observation predicate (covered by
// the detecting reader, outside rooms and stairwells) without the resampling
// that follows it.
func BenchmarkReweight(b *testing.B) {
	_, _, filters := benchSetup(b)
	for _, name := range []string{"indexed", "geometric"} {
		f := filters[name]
		b.Run(name, func(b *testing.B) {
			st, _ := spreadState(f, 45)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.reweight(st.Particles, 3)
			}
		})
	}
}

// TestSteadyStateAdvanceZeroAllocs verifies the satellite contract: once a
// state's scratch buffers exist, the per-second filter loop — detected and
// silent seconds alike — performs zero heap allocations.
func TestSteadyStateAdvanceZeroAllocs(t *testing.T) {
	plan := floorplan.DefaultOffice()
	g := walkgraph.MustBuild(plan)
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	f := MustNew(DefaultConfig(), g, dep)

	src := rng.Derive(46)
	st := f.InitAt(src, 1, 3, 0)
	entry := []model.AggregatedReading{{Object: 1, Reader: 3}}

	detected := func() {
		next := st.Time + 1
		entry[0].Time = next
		f.Advance(src, st, entry, next)
	}
	silent := func() {
		f.Advance(src, st, nil, st.Time+1)
	}
	// Warm up: first calls build the scratch slice and the byTime map.
	detected()
	silent()

	if allocs := testing.AllocsPerRun(200, detected); allocs != 0 {
		t.Errorf("detected-second Advance allocates %v times per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, silent); allocs != 0 {
		t.Errorf("silent-second Advance allocates %v times per run, want 0", allocs)
	}
}
