package particle

import (
	"testing"

	"repro/internal/anchor"
	"repro/internal/floorplan"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rfid"
	"repro/internal/rng"
	"repro/internal/walkgraph"
)

// benchSetup builds the paper's default deployment (DefaultOffice, 19
// readers at 2 m range) and one filter per coverage path.
func benchSetup(b *testing.B) (*walkgraph.Graph, *rfid.Deployment, map[string]*Filter) {
	b.Helper()
	plan := floorplan.DefaultOffice()
	g, err := walkgraph.Build(plan)
	if err != nil {
		b.Fatal(err)
	}
	dep, err := rfid.DeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	if err != nil {
		b.Fatal(err)
	}
	cfgGeo := DefaultConfig()
	cfgGeo.DisableCoverageIndex = true
	return g, dep, map[string]*Filter{
		"indexed":   MustNew(DefaultConfig(), g, dep),
		"geometric": MustNew(cfgGeo, g, dep),
	}
}

// spreadState initializes a particle set covering a realistic spread: the
// cloud of a reader detection after a few seconds of coasting.
func spreadState(f *Filter, seed int64) (*State, *rng.Source) {
	src := rng.Derive(seed)
	st := f.InitAt(src, 1, 3, 0)
	f.Advance(src, st, nil, 4) // coast a few silent seconds to spread out
	return st, src
}

// BenchmarkFilterStep measures one full filter second on the detected path:
// motion step, reweight against the detecting reader, normalization,
// systematic resampling, and roughening, for the paper's Ns=64 particles.
// Both paths run through the pooled entry point the engine uses: "indexed"
// executes the SoA kernel, "geometric" falls back to the scalar reference.
func BenchmarkFilterStep(b *testing.B) {
	_, _, filters := benchSetup(b)
	pool := NewPool()
	for _, name := range []string{"indexed", "geometric"} {
		f := filters[name]
		b.Run(name, func(b *testing.B) {
			st, src := spreadState(f, 42)
			entry := []model.AggregatedReading{{Object: 1, Reader: 3}}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				next := st.Time + 1
				entry[0].Time = next
				f.AdvancePool(pool, src, st, entry, next)
			}
		})
	}
}

// BenchmarkNegativeUpdate measures the silent-second observation: the
// covered-by-any-reader test for every particle plus the conditional
// degeneracy resampling.
func BenchmarkNegativeUpdate(b *testing.B) {
	_, _, filters := benchSetup(b)
	for _, name := range []string{"indexed", "geometric"} {
		f := filters[name]
		b.Run(name, func(b *testing.B) {
			st, src := spreadState(f, 43)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.negativeUpdate(src, st)
			}
		})
	}
}

// BenchmarkInitAt measures particle-set initialization within a reader's
// activation range (the filter (re)start path, also hit by the
// kidnapped-robot recovery).
func BenchmarkInitAt(b *testing.B) {
	_, dep, filters := benchSetup(b)
	for _, name := range []string{"indexed", "geometric"} {
		f := filters[name]
		b.Run(name, func(b *testing.B) {
			src := rng.Derive(44)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reader := model.ReaderID(i % dep.NumReaders())
				f.InitAt(src, 1, reader, 0)
			}
		})
	}
}

// BenchmarkReweight isolates the positive-observation predicate (covered by
// the detecting reader, outside rooms and stairwells) without the resampling
// that follows it.
func BenchmarkReweight(b *testing.B) {
	_, _, filters := benchSetup(b)
	for _, name := range []string{"indexed", "geometric"} {
		f := filters[name]
		b.Run(name, func(b *testing.B) {
			st, _ := spreadState(f, 45)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.reweight(st.Particles, 3)
			}
		})
	}
}

// TestSteadyStateAdvanceZeroAllocs verifies the satellite contract: once a
// state's scratch buffers exist, the per-second filter loop — detected and
// silent seconds alike — performs zero heap allocations.
func TestSteadyStateAdvanceZeroAllocs(t *testing.T) {
	plan := floorplan.DefaultOffice()
	g := walkgraph.MustBuild(plan)
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	f := MustNew(DefaultConfig(), g, dep)

	src := rng.Derive(46)
	st := f.InitAt(src, 1, 3, 0)
	entry := []model.AggregatedReading{{Object: 1, Reader: 3}}

	detected := func() {
		next := st.Time + 1
		entry[0].Time = next
		f.Advance(src, st, entry, next)
	}
	silent := func() {
		f.Advance(src, st, nil, st.Time+1)
	}
	// Warm up: first calls build the scratch slice and the byTime map.
	detected()
	silent()

	if allocs := testing.AllocsPerRun(200, detected); allocs != 0 {
		t.Errorf("detected-second Advance allocates %v times per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, silent); allocs != 0 {
		t.Errorf("silent-second Advance allocates %v times per run, want 0", allocs)
	}
}

// TestFullStepZeroAllocs extends the alloc pin to the entire engine-shaped
// step: the pooled (SoA-kernel) advance with stage telemetry attached must
// stay at zero allocations — detected seconds, silent seconds, and the
// kidnapped-robot recovery path alike — and the trailing anchor-snap
// discretization may allocate only its result map, never per-particle or
// per-second garbage.
func TestFullStepZeroAllocs(t *testing.T) {
	plan := floorplan.DefaultOffice()
	g := walkgraph.MustBuild(plan)
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	f := MustNew(DefaultConfig(), g, dep)
	r := obs.NewRegistry()
	f.Instrument(Metrics{
		Predict:       r.Histogram("p", "x", nil),
		Reweight:      r.Histogram("w", "x", nil),
		Resample:      r.Histogram("r", "x", nil),
		ParticleSteps: r.Counter("s", "x"),
	})
	idx, err := anchor.BuildIndex(g, anchor.DefaultSpacing)
	if err != nil {
		t.Fatal(err)
	}

	pool := NewPool()
	src := rng.Derive(48)
	st := f.InitAt(src, 1, 3, 0)
	entry := []model.AggregatedReading{{Object: 1, Reader: 3}}

	detected := func() {
		next := st.Time + 1
		entry[0].Time = next
		f.AdvancePool(pool, src, st, entry, next)
	}
	// A far-away reader forces the recovery re-initialization inside the
	// kernel (no particle is consistent with the detection).
	recovery := func() {
		next := st.Time + 1
		entry[0].Time = next
		entry[0].Reader = model.ReaderID((int(entry[0].Reader) + 7) % dep.NumReaders())
		f.AdvancePool(pool, src, st, entry, next)
	}
	fullStep := func() {
		detected()
		if dist := st.AnchorDistribution(idx); len(dist) == 0 {
			t.Fatal("empty distribution")
		}
	}
	// Warm up: build scratch, pool arrays, and the telemetry plumbing, and
	// cover a pooled silent second once.
	detected()
	f.AdvancePool(pool, src, st, nil, st.Time+1)
	silent := func() {
		f.AdvancePool(pool, src, st, nil, st.Time+1)
	}
	if allocs := testing.AllocsPerRun(200, silent); allocs != 0 {
		t.Errorf("pooled instrumented silent advance allocates %v times per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, detected); allocs != 0 {
		t.Errorf("pooled instrumented detected advance allocates %v times per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, recovery); allocs != 0 {
		t.Errorf("pooled recovery advance allocates %v times per run, want 0", allocs)
	}
	entry[0].Reader = 3
	// The anchor snap returns a freshly built map — a handful of allocations
	// for the map header and buckets. Anything on the order of Ns would mean
	// per-particle garbage crept into the step.
	if allocs := testing.AllocsPerRun(200, fullStep); allocs > 8 {
		t.Errorf("full step (advance + snap) allocates %v times per run, want <= 8 (result map only)", allocs)
	}
}
