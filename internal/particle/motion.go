package particle

import (
	"repro/internal/rng"
	"repro/internal/walkgraph"
)

// Step advances one particle by dt seconds under the object motion model:
// particles move forward with their constant speed along graph edges, pick a
// random direction at intersections (never an immediate U-turn unless at a
// dead end), enter rooms when their random walk reaches a room node, and
// once resting in a room leave it with probability RoomExitProb per second.
func (c *Config) Step(src *rng.Source, g *walkgraph.Graph, p *Particle, dt float64) {
	if p.Resting {
		if !src.Bool(c.RoomExitProb * dt) {
			return
		}
		// Leave the room: head down one of its door edges.
		p.Resting = false
		node := roomNodeOf(g, p.Loc)
		edges := g.IncidentEdges(node)
		next := edges[src.Intn(len(edges))]
		p.Loc = locationAtNode(g, next, node)
		p.Toward = g.OtherEnd(next, node)
	}
	remaining := p.Speed * dt
	for remaining > 0 {
		e := g.Edge(p.Loc.Edge)
		var toNode float64
		if p.Toward == e.B {
			toNode = e.Length - p.Loc.Offset
		} else {
			toNode = p.Loc.Offset
		}
		if remaining < toNode {
			if p.Toward == e.B {
				p.Loc.Offset += remaining
			} else {
				p.Loc.Offset -= remaining
			}
			return
		}
		remaining -= toNode
		node := p.Toward
		if g.Node(node).Kind == walkgraph.RoomCenter {
			// The particle walked through a door into the room; it stays
			// inside until the exit coin flip succeeds on a later second.
			p.Loc = locationAtNode(g, p.Loc.Edge, node)
			p.Resting = true
			return
		}
		next := chooseNextEdge(src, g, node, p.Loc.Edge)
		p.Loc = locationAtNode(g, next, node)
		p.Toward = g.OtherEnd(next, node)
	}
}

// chooseNextEdge picks a uniformly random incident edge at the node,
// excluding the edge just traversed unless the node is a dead end.
func chooseNextEdge(src *rng.Source, g *walkgraph.Graph, node walkgraph.NodeID, from walkgraph.EdgeID) walkgraph.EdgeID {
	edges := g.IncidentEdges(node)
	if len(edges) == 1 {
		return edges[0]
	}
	// Reservoir-free uniform pick among candidates != from.
	n := 0
	pick := from
	for _, e := range edges {
		if e == from {
			continue
		}
		n++
		if src.Intn(n) == 0 {
			pick = e
		}
	}
	return pick
}

// locationAtNode returns the Location on edge e that coincides with node n.
func locationAtNode(g *walkgraph.Graph, e walkgraph.EdgeID, n walkgraph.NodeID) walkgraph.Location {
	edge := g.Edge(e)
	if edge.A == n {
		return walkgraph.Location{Edge: e, Offset: 0}
	}
	return walkgraph.Location{Edge: e, Offset: edge.Length}
}

// roomNodeOf returns the RoomCenter endpoint of the door edge a resting
// particle sits on.
func roomNodeOf(g *walkgraph.Graph, loc walkgraph.Location) walkgraph.NodeID {
	e := g.Edge(loc.Edge)
	if g.Node(e.B).Kind == walkgraph.RoomCenter {
		return e.B
	}
	return e.A
}
