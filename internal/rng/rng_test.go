package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("sources with equal seeds diverged at draw %d", i)
		}
	}
}

func TestSplitIndependentButDeterministic(t *testing.T) {
	a, b := New(7), New(7)
	sa, sb := a.Split(), b.Split()
	for i := 0; i < 100; i++ {
		if sa.Float64() != sb.Float64() {
			t.Fatalf("split sources from equal parents diverged at draw %d", i)
		}
	}
}

func TestUniformRange(t *testing.T) {
	s := New(1)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(2.5, 7.5)
		if v < 2.5 || v >= 7.5 {
			t.Fatalf("Uniform(2.5, 7.5) = %v out of range", v)
		}
	}
}

func TestGaussianMoments(t *testing.T) {
	s := New(99)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Gaussian(1.0, 0.1)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-1.0) > 0.005 {
		t.Errorf("Gaussian mean = %v, want ~1.0", mean)
	}
	if math.Abs(math.Sqrt(variance)-0.1) > 0.005 {
		t.Errorf("Gaussian stddev = %v, want ~0.1", math.Sqrt(variance))
	}
}

func TestTruncGaussianBounds(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.TruncGaussian(1.0, 0.1, 0.5, 1.5)
		if v < 0.5 || v > 1.5 {
			t.Fatalf("TruncGaussian escaped bounds: %v", v)
		}
	}
}

func TestTruncGaussianFarWindowClamps(t *testing.T) {
	s := New(3)
	v := s.TruncGaussian(0, 0.01, 10, 11)
	if v != 10 {
		t.Errorf("far-window TruncGaussian = %v, want clamp to 10", v)
	}
}

func TestTruncGaussianPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for lo > hi")
		}
	}()
	New(1).TruncGaussian(0, 1, 5, 4)
}

func TestCategoricalRespectsWeights(t *testing.T) {
	s := New(5)
	weights := []float64{0.0, 1.0, 3.0}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Categorical(weights)]++
	}
	if counts[0] != 0 {
		t.Errorf("zero-weight bucket sampled %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3.0) > 0.15 {
		t.Errorf("weight ratio = %v, want ~3.0", ratio)
	}
}

func TestCategoricalAllZeroFallsBackToUniform(t *testing.T) {
	s := New(8)
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[s.Categorical([]float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("bucket %d count = %d, want ~10000", i, c)
		}
	}
}

func TestCategoricalNegativeTreatedAsZero(t *testing.T) {
	s := New(11)
	for i := 0; i < 1000; i++ {
		if idx := s.Categorical([]float64{-5, 1}); idx != 1 {
			t.Fatalf("negative-weight bucket sampled (idx=%d)", idx)
		}
	}
}

func TestCategoricalPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty weights")
		}
	}()
	New(1).Categorical(nil)
}

func TestCategoricalIndexAlwaysValid(t *testing.T) {
	s := New(13)
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		idx := s.Categorical(raw)
		return idx >= 0 && idx < len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(21)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.1) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.1) > 0.01 {
		t.Errorf("Bool(0.1) hit rate = %v", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(30)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := New(50)
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	s.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make([]bool, 10)
	for _, v := range vals {
		if seen[v] {
			t.Fatalf("Shuffle lost/duplicated values: %v", vals)
		}
		seen[v] = true
	}
}

func TestDeriveDeterministicAndOrderSensitive(t *testing.T) {
	a := Derive(1, 2, 3)
	b := Derive(1, 2, 3)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("equal derivations diverged")
		}
	}
	// Different id order yields a different stream.
	c := Derive(1, 3, 2)
	d := Derive(1, 2, 3)
	same := true
	for i := 0; i < 10; i++ {
		if c.Float64() != d.Float64() {
			same = false
		}
	}
	if same {
		t.Error("order-swapped derivation produced an identical stream")
	}
	// Different seed too.
	e := Derive(2, 2, 3)
	f2 := Derive(1, 2, 3)
	same = true
	for i := 0; i < 10; i++ {
		if e.Float64() != f2.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different-seed derivation produced an identical stream")
	}
}

func TestDeriveNoIDs(t *testing.T) {
	a, b := Derive(7), Derive(7)
	if a.Float64() != b.Float64() {
		t.Error("zero-id derivation not deterministic")
	}
}
