// Package rng provides deterministic random number generation for the
// simulator and the particle filter.
//
// Every stochastic component in this repository draws its randomness from an
// explicit *rng.Source so that whole experiments are reproducible from a
// single seed. The generator is a SplitMix64 core with a ziggurat Gaussian
// sampler, implemented natively so the particle kernel's hot loops (predict
// draws, roughening, recovery re-initialization) pay a couple of nanoseconds
// per draw instead of math/rand's interface-dispatched generator. Streams are
// platform-independent: every draw is pure 64-bit integer and IEEE float64
// arithmetic, so a seed reproduces the same experiment on any architecture.
package rng

import (
	"fmt"
	"math"
	"math/bits"
)

// Source is a deterministic random source. It is not safe for concurrent use;
// derive one Source per goroutine with Split.
type Source struct {
	s uint64
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{s: uint64(seed)}
}

// Uint64 returns the next 64 uniform bits: one SplitMix64 step (Weyl
// increment + avalanche). SplitMix64 is a full-period 2^64 generator whose
// output function is a strong mixer, which makes every seed — including 0 and
// small integers — immediately well distributed.
func (s *Source) Uint64() uint64 {
	s.s += 0x9e3779b97f4a7c15
	z := s.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a uniform 63-bit non-negative integer.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// Split derives a new, independently seeded Source from s. The derived
// source is deterministic given s's current state.
func (s *Source) Split() *Source {
	return New(s.Int63())
}

// Derive returns a Source deterministically keyed by a base seed and a list
// of identifiers (object IDs, time stamps). Equal inputs always yield the
// same stream, independent of call order — the property that makes parallel
// per-object processing reproducible.
func Derive(seed int64, ids ...int64) *Source {
	// SplitMix64-style avalanche over the running hash.
	h := uint64(seed) ^ 0x9e3779b97f4a7c15
	mix := func(v uint64) {
		h ^= v
		h += 0x9e3779b97f4a7c15
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	for _, id := range ids {
		mix(uint64(id))
	}
	return New(int64(h & 0x7fffffffffffffff))
}

// Float64 returns a uniform value in [0, 1): the top 53 bits of one draw
// scaled by 2^-53.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * 0x1p-53
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
//
// The sample is Lemire's multiply-shift reduction: the high 64 bits of
// draw*n. With a 64-bit draw the bias against a perfectly uniform [0, n) is
// below 2^-32 for any n this codebase uses (particle counts, edge fan-outs),
// which is far beneath the Monte Carlo noise floor of the filter, and the
// reduction costs one multiply instead of math/rand's rejection loop.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	hi, _ := bits.Mul64(s.Uint64(), uint64(n))
	return int(hi)
}

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Ziggurat tables for the standard normal (Marsaglia & Tsang, 128 layers),
// computed once at init from the published constants: R is the start of the
// tail, V the common layer area.
const (
	zigR = 3.442619855899
	zigV = 9.91256303526217e-3
	zigM = 2147483648.0 // 2^31: draws are reduced to signed 32-bit integers
)

var (
	zigK [128]uint32  // acceptance thresholds on |j|
	zigW [128]float64 // layer widths: x = j * zigW[i]
	zigF [128]float64 // f(x) at the layer boundaries
)

func init() {
	dn, tn := zigR, zigR
	q := zigV / math.Exp(-0.5*dn*dn)
	zigK[0] = uint32(dn / q * zigM)
	zigK[1] = 0
	zigW[0] = q / zigM
	zigW[127] = dn / zigM
	zigF[0] = 1
	zigF[127] = math.Exp(-0.5 * dn * dn)
	for i := 126; i >= 1; i-- {
		dn = math.Sqrt(-2 * math.Log(zigV/dn+math.Exp(-0.5*dn*dn)))
		zigK[i+1] = uint32(dn / tn * zigM)
		tn = dn
		zigF[i] = math.Exp(-0.5 * dn * dn)
		zigW[i] = dn / zigM
	}
}

// NormFloat64 returns a standard normal sample via the ziggurat: one draw and
// one table compare on the fast path (~98.8% of samples), exact rejection
// against the density on the layer fringes, and Marsaglia's exponential
// wedge for the tail beyond R. The fast path is small enough to inline into
// the particle kernel's roughening loop; the fringe and tail live in
// normSlow.
func (s *Source) NormFloat64() float64 {
	u := s.Uint64()
	j := int32(u) // low 32 bits, signed: magnitude and sign of the candidate
	i := u >> 32 & 127
	m := j >> 31             // branchless |j|: the sign is uniform, a branch would
	a := uint32((j ^ m) - m) // mispredict half the time
	if a < zigK[i] {
		return float64(j) * zigW[i]
	}
	return s.normSlow(j, i)
}

// normSlow finishes a ziggurat sample whose first candidate (j, layer i) fell
// outside the acceptance threshold: fringe rejection against the density,
// Marsaglia's wedge for the tail, and fresh candidates until one lands.
func (s *Source) normSlow(j int32, i uint64) float64 {
	for {
		if i == 0 {
			// Tail: sample x > R from the normal tail distribution.
			for {
				x := -math.Log(s.Float64()) / zigR
				y := -math.Log(s.Float64())
				if y+y >= x*x {
					if j < 0 {
						return -(zigR + x)
					}
					return zigR + x
				}
			}
		}
		x := float64(j) * zigW[i]
		if zigF[i]+s.Float64()*(zigF[i-1]-zigF[i]) < math.Exp(-0.5*x*x) {
			return x
		}
		u := s.Uint64()
		j = int32(u)
		i = u >> 32 & 127
		m := j >> 31
		if uint32((j^m)-m) < zigK[i] {
			return float64(j) * zigW[i]
		}
	}
}

// Gaussian returns a normal sample with the given mean and standard
// deviation.
func (s *Source) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*s.NormFloat64()
}

// TruncGaussian returns a normal sample truncated to [lo, hi] by rejection.
// It is used for walking speeds, which must stay positive. If the window is
// more than a few standard deviations away from the mean the loop falls back
// to clamping after a bounded number of attempts.
//
// The first attempt's ziggurat fast path is written out here so the whole
// common case — candidate accepted from the layer body, inside the window —
// inlines into callers (the recovery re-initialization draws one speed per
// particle and cannot batch, unlike roughening). Rejections, fringe/tail
// candidates, and invalid bounds (for which no candidate can ever land in
// the empty window) continue in truncSlow.
func (s *Source) TruncGaussian(mean, stddev, lo, hi float64) float64 {
	u := s.Uint64()
	j := int32(u)
	i := u >> 32 & 127
	m := j >> 31
	if uint32((j^m)-m) < zigK[i] {
		v := mean + stddev*(float64(j)*zigW[i])
		if v >= lo && v <= hi {
			return v
		}
		return s.truncSlow(mean, stddev, lo, hi, 1)
	}
	v := mean + stddev*s.normSlow(j, i)
	if v >= lo && v <= hi {
		return v
	}
	return s.truncSlow(mean, stddev, lo, hi, 1)
}

// truncSlow continues TruncGaussian's rejection loop after `done` failed
// attempts.
func (s *Source) truncSlow(mean, stddev, lo, hi float64, done int) float64 {
	if lo > hi {
		panic(fmt.Sprintf("rng: TruncGaussian invalid bounds [%v, %v]", lo, hi))
	}
	for i := done; i < 64; i++ {
		v := mean + stddev*s.NormFloat64()
		if v >= lo && v <= hi {
			return v
		}
	}
	return math.Min(hi, math.Max(lo, mean))
}

// TruncGaussianFill overwrites each vs[i] with TruncGaussian(vs[i], stddev,
// lo, hi), consuming the random stream exactly as the equivalent loop of
// scalar calls would. It exists for the particle kernel's roughening pass:
// one call per particle batch instead of one per particle, with the
// generator state and the ziggurat fast path hoisted into the loop so the
// common case (candidate accepted from the layer body, inside the window) is
// pure register arithmetic with no calls.
func (s *Source) TruncGaussianFill(vs []float64, stddev, lo, hi float64) {
	if lo > hi {
		panic(fmt.Sprintf("rng: TruncGaussianFill invalid bounds [%v, %v]", lo, hi))
	}
	st := s.s
	for i, mean := range vs {
		ok := false
		for a := 0; a < 64; a++ {
			st += 0x9e3779b97f4a7c15
			z := st
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			u := z ^ (z >> 31)
			j := int32(u)
			idx := u >> 32 & 127
			m := j >> 31
			var g float64
			if uint32((j^m)-m) < zigK[idx] {
				g = mean + stddev*(float64(j)*zigW[idx])
			} else {
				s.s = st
				g = mean + stddev*s.normSlow(j, idx)
				st = s.s
			}
			if g >= lo && g <= hi {
				vs[i] = g
				ok = true
				break
			}
		}
		if !ok {
			vs[i] = math.Min(hi, math.Max(lo, mean))
		}
	}
	s.s = st
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.Float64() < p }

// Categorical samples an index proportionally to weights. Negative weights
// are treated as zero. If all weights are zero it returns a uniform index.
// It panics if weights is empty.
func (s *Source) Categorical(weights []float64) int {
	if len(weights) == 0 {
		panic("rng: Categorical with empty weights")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return s.Intn(len(weights))
	}
	u := s.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w > 0 {
			acc += w
		}
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, s.Intn(i+1))
	}
}
