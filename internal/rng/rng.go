// Package rng provides deterministic random number generation for the
// simulator and the particle filter.
//
// Every stochastic component in this repository draws its randomness from an
// explicit *rng.Source so that whole experiments are reproducible from a
// single seed. The package wraps math/rand with the handful of distributions
// the paper's models need: Gaussian walking speeds, uniform picks on
// intervals, and categorical (weighted) sampling.
package rng

import (
	"fmt"
	"math"
	"math/rand"
)

// Source is a deterministic random source. It is not safe for concurrent use;
// derive one Source per goroutine with Split.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Split derives a new, independently seeded Source from s. The derived
// source is deterministic given s's current state.
func (s *Source) Split() *Source {
	return New(s.r.Int63())
}

// Derive returns a Source deterministically keyed by a base seed and a list
// of identifiers (object IDs, time stamps). Equal inputs always yield the
// same stream, independent of call order — the property that makes parallel
// per-object processing reproducible.
func Derive(seed int64, ids ...int64) *Source {
	// SplitMix64-style avalanche over the running hash.
	h := uint64(seed) ^ 0x9e3779b97f4a7c15
	mix := func(v uint64) {
		h ^= v
		h += 0x9e3779b97f4a7c15
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	for _, id := range ids {
		mix(uint64(id))
	}
	return New(int64(h & 0x7fffffffffffffff))
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Gaussian returns a normal sample with the given mean and standard
// deviation.
func (s *Source) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// TruncGaussian returns a normal sample truncated to [lo, hi] by rejection.
// It is used for walking speeds, which must stay positive. If the window is
// more than a few standard deviations away from the mean the loop falls back
// to clamping after a bounded number of attempts.
func (s *Source) TruncGaussian(mean, stddev, lo, hi float64) float64 {
	if lo > hi {
		panic(fmt.Sprintf("rng: TruncGaussian invalid bounds [%v, %v]", lo, hi))
	}
	for i := 0; i < 64; i++ {
		v := s.Gaussian(mean, stddev)
		if v >= lo && v <= hi {
			return v
		}
	}
	return math.Min(hi, math.Max(lo, mean))
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.r.Float64() < p }

// Categorical samples an index proportionally to weights. Negative weights
// are treated as zero. If all weights are zero it returns a uniform index.
// It panics if weights is empty.
func (s *Source) Categorical(weights []float64) int {
	if len(weights) == 0 {
		panic("rng: Categorical with empty weights")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return s.Intn(len(weights))
	}
	u := s.r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w > 0 {
			acc += w
		}
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }
