package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/anchor"
	"repro/internal/engine"
	"repro/internal/ingest"
	"repro/internal/model"
	"repro/internal/obs/trace"
	"repro/internal/query"
)

// Op selects the peer RPC.
type Op uint8

const (
	// OpPing checks liveness and reads the peer's stream clock.
	OpPing Op = iota
	// OpIngest applies one forwarded ingest sub-batch (idempotent, keyed by
	// the batch fingerprint).
	OpIngest
	// OpGather returns the peer's candidate summaries (the gather stage of
	// the distributed query pipeline).
	OpGather
	// OpEvaluate preprocesses the peer-owned candidates and returns their
	// anchor distributions (the scatter stage).
	OpEvaluate
	// OpLocalize answers a single-object localization on the owner.
	OpLocalize
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpIngest:
		return "ingest"
	case OpGather:
		return "gather"
	case OpEvaluate:
		return "evaluate"
	case OpLocalize:
		return "localize"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Request is one peer RPC, gob-encoded on the wire.
type Request struct {
	Op   Op
	From string
	// TraceID propagates the forwarder's request trace so both halves
	// stitch into one trace at /debug/traces (0: untraced). The HTTP
	// transport additionally carries it in the X-Repro-Trace-Id header.
	TraceID uint64
	// DeadlineMillis is the remaining client budget at send time (0: none).
	// The owner re-applies it locally, so retries can never spend more than
	// the client's ?deadline_ms= end to end.
	DeadlineMillis int64

	// OpIngest.
	Time        model.Time
	Readings    []model.RawReading
	Fingerprint uint64

	// OpGather / OpEvaluate.
	At         model.Time
	Historical bool
	Candidates []model.ObjectID

	// OpLocalize.
	Object model.ObjectID
}

// Response is the reply to one peer RPC.
type Response struct {
	Now model.Time

	// OpIngest: the owner's own ingest accounting for the sub-batch.
	Accepted int
	Dropped  int
	DropKind string
	Rejected bool

	// Shed marks an owner that refused the request under load;
	// RetryAfterSeconds is its own backoff estimate, relayed verbatim to
	// the client.
	Shed              bool
	RetryAfterSeconds int

	// OpGather.
	Infos []query.ObjectInfo

	// OpEvaluate: per-object anchor distributions, merged into the
	// coordinator's table; DeadlineStage marks a deadline-partial table;
	// DegradedShards reports the owner's quarantined in-process shards.
	Dists          map[model.ObjectID]map[anchor.ID]float64
	DeadlineStage  string
	DegradedShards []int

	// OpLocalize.
	Loc   engine.Localization
	Found bool
}

// send delivers one request to a peer with bounded retries: exponential
// backoff with per-peer jitter, each attempt capped by ForwardTimeout and
// by the caller's remaining deadline. Transport errors are retried;
// application responses (including sheds) return immediately.
func (n *Node) send(ctx context.Context, p *peer, req *Request) (*Response, error) {
	req.From = n.cfg.Self
	if tc := trace.From(ctx); tc != nil {
		req.TraceID = tc.ID()
	}
	rc := n.cfg.Retry
	var last error
	for attempt := 0; ; attempt++ {
		budget := n.cfg.forwardTimeout()
		if dl, ok := ctx.Deadline(); ok {
			remaining := time.Until(dl)
			if remaining <= 0 {
				if last == nil {
					last = context.DeadlineExceeded
				}
				return nil, last
			}
			if remaining < budget {
				budget = remaining
			}
		}
		req.DeadlineMillis = budget.Milliseconds()
		actx, cancel := context.WithTimeout(ctx, budget)
		start := time.Now()
		resp, err := n.cfg.Transport.Send(actx, p.addr, req)
		p.mFwd.Observe(time.Since(start).Seconds())
		cancel()
		trace.From(ctx).Add("forward", trace.RouterShard, start, time.Since(start),
			trace.Attr{Key: "peer", Value: p.addr}, trace.Attr{Key: "op", Value: req.Op.String()})
		if err == nil {
			return resp, nil
		}
		p.mErr.Inc()
		last = err
		if attempt >= rc.max() || ctx.Err() != nil {
			return nil, last
		}
		p.mu.Lock()
		p.retries++
		p.mu.Unlock()
		select {
		case <-ctx.Done():
			return nil, last
		case <-time.After(rc.delay(attempt, p.salt)):
		}
	}
}

// HandleRPC serves one peer request against the local engine. It is the
// single entry point for every transport: the HTTP handler decodes into it,
// and the in-memory test transport calls it directly.
func (n *Node) HandleRPC(ctx context.Context, req *Request) (*Response, error) {
	if tc := n.tracer.StartWith(req.TraceID, "rpc-"+req.Op.String()); tc != nil {
		defer n.tracer.Finish(tc)
		ctx = trace.With(ctx, tc)
	}
	if req.DeadlineMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMillis)*time.Millisecond)
		defer cancel()
	}
	switch req.Op {
	case OpPing:
		return &Response{Now: n.Now()}, nil
	case OpIngest:
		return n.handleIngestRPC(ctx, req)
	case OpGather:
		n.lock()
		var infos []query.ObjectInfo
		if req.Historical {
			infos = n.eng.ObjectInfosAt(req.At)
		} else {
			infos = n.eng.ObjectInfos()
		}
		now := n.eng.Now()
		n.unlock()
		return &Response{Now: now, Infos: infos}, nil
	case OpEvaluate:
		return n.handleEvaluateRPC(ctx, req)
	case OpLocalize:
		n.lock()
		loc, ok := n.eng.Localize(req.Object)
		n.unlock()
		return &Response{Loc: loc, Found: ok}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown op %d", req.Op)
	}
}

// handleIngestRPC applies one forwarded sub-batch idempotently: a (second,
// fingerprint) pair already applied returns its cached ack, so a forwarder
// retrying after a lost reply never double-counts and never sees a spurious
// late-batch refusal.
func (n *Node) handleIngestRPC(ctx context.Context, req *Request) (*Response, error) {
	key := idemKey{t: req.Time, fp: req.Fingerprint}
	n.idemMu.Lock()
	if cached, ok := n.idem[key]; ok {
		n.idemMu.Unlock()
		return cached, nil
	}
	n.idemMu.Unlock()

	n.lock()
	err := n.eng.IngestContext(ctx, req.Time, req.Readings)
	now := n.eng.Now()
	n.unlock()
	resp := &Response{Now: now, Accepted: len(req.Readings)}
	var ie *ingest.Error
	if errors.As(err, &ie) {
		resp.Accepted = len(req.Readings) - ie.Dropped
		resp.Dropped = ie.Dropped
		resp.DropKind = ie.Kind.String()
		resp.Rejected = ie.Rejected
		if ie.Rejected {
			resp.Accepted = 0
			resp.Dropped = len(req.Readings)
		}
	} else if err != nil {
		return nil, err
	}

	n.idemMu.Lock()
	if len(n.idemFIFO) >= maxIdem {
		delete(n.idem, n.idemFIFO[0])
		n.idemFIFO = n.idemFIFO[1:]
	}
	n.idem[key] = resp
	n.idemFIFO = append(n.idemFIFO, key)
	n.idemMu.Unlock()
	return resp, nil
}

// handleEvaluateRPC preprocesses the owner's candidates under the evaluate
// gate and returns their anchor distributions.
func (n *Node) handleEvaluateRPC(ctx context.Context, req *Request) (*Response, error) {
	if n.gate != nil {
		select {
		case n.gate <- struct{}{}:
			defer func() { <-n.gate }()
		default:
			return &Response{Shed: true, RetryAfterSeconds: n.retryAfterSeconds()}, nil
		}
	}
	tr := trace.From(ctx)
	start := time.Now()
	var tab *anchor.Table
	var err error
	if req.Historical {
		n.lock()
		tab = n.eng.PreprocessAt(req.Candidates, req.At)
		n.unlock()
	} else {
		n.lock()
		tab, err = n.eng.PreprocessContext(ctx, req.Candidates)
		n.unlock()
	}
	tr.Add("remote-evaluate", trace.RouterShard, start, time.Since(start),
		trace.Attr{Key: "from", Value: req.From},
		trace.Attr{Key: "candidates", Value: fmt.Sprintf("%d", len(req.Candidates))})
	n.observeEval(time.Since(start))

	resp := &Response{DegradedShards: n.DegradedShards()}
	if tab != nil {
		resp.Dists = make(map[model.ObjectID]map[anchor.ID]float64, len(tab.Objects()))
		for _, obj := range tab.Objects() {
			resp.Dists[obj] = tab.DistributionOf(obj)
		}
	}
	if de, ok := engine.IsDeadline(err); ok {
		resp.DeadlineStage = de.Stage
	} else if err != nil {
		return nil, err
	}
	return resp, nil
}

// observeEval feeds the owner-side shed estimator: an exponentially
// smoothed remote-evaluate latency.
func (n *Node) observeEval(d time.Duration) {
	n.ewmaMu.Lock()
	const alpha = 0.2
	if n.evalEWMA == 0 {
		n.evalEWMA = d.Seconds()
	} else {
		n.evalEWMA = (1-alpha)*n.evalEWMA + alpha*d.Seconds()
	}
	n.ewmaMu.Unlock()
}

// retryAfterSeconds estimates how long a shed caller should wait: enough
// for the configured slots to turn over once at the smoothed evaluate
// latency, clamped to [1s, 30s]. This is the owner's own estimate — the
// coordinator relays it to the client verbatim.
func (n *Node) retryAfterSeconds() int {
	n.ewmaMu.Lock()
	ewma := n.evalEWMA
	n.ewmaMu.Unlock()
	slots := n.cfg.EvaluateSlots
	if slots < 1 {
		slots = 1
	}
	secs := int(math.Ceil(ewma * float64(slots)))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}
