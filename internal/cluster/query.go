package cluster

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/anchor"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/query"
)

// The distributed query pipeline mirrors the in-process router's: gather
// candidate summaries from every owner, prune ONCE on the coordinator (kNN
// pruning is global — it needs every object's distance bound to find the
// k-th smallest), scatter preprocessing to the owners, merge the disjoint
// distribution tables, and evaluate once. Because each object's filter run
// is keyed by (Seed, object, its own readings), the merged table is
// bit-for-bit the table a single process holding all the readings would
// compute — the determinism argument behind the two-node oracle diff
// (DESIGN.md §17).

// gatherResult is one peer's contribution to the gather stage.
type gatherResult struct {
	infos    []query.ObjectInfo
	degraded bool
}

// gather collects candidate summaries from the local engine and every
// reachable peer. Unreachable peers are skipped and reported as degraded.
func (n *Node) gather(ctx context.Context, at model.Time, historical bool) ([]query.ObjectInfo, []string) {
	per := make([][]query.ObjectInfo, len(n.members))
	n.lock()
	if historical {
		per[n.selfIdx] = n.eng.ObjectInfosAt(at)
	} else {
		per[n.selfIdx] = n.eng.ObjectInfos()
	}
	n.unlock()

	results := make([]gatherResult, len(n.members))
	var wg sync.WaitGroup
	for i, p := range n.peers {
		if p == nil {
			continue
		}
		if !p.available(time.Now()) {
			results[i].degraded = true
			continue
		}
		wg.Add(1)
		go func(i int, p *peer) {
			defer wg.Done()
			p.mu.Lock()
			p.queryForwards++
			p.mu.Unlock()
			resp, err := n.send(ctx, p, &Request{Op: OpGather, At: at, Historical: historical})
			if err != nil {
				p.noteFailure(err)
				p.mu.Lock()
				p.queryFailures++
				p.mu.Unlock()
				results[i].degraded = true
				return
			}
			p.noteSuccess()
			results[i].infos = resp.Infos
		}(i, p)
	}
	wg.Wait()

	var degraded []string
	for i, r := range results {
		if r.degraded {
			degraded = append(degraded, n.members[i])
		}
		per[i] = append(per[i], r.infos...)
	}
	return mergeInfos(per), degraded
}

// scatter partitions the candidate set by owner, preprocesses the local
// partition, forwards the remote partitions as evaluate RPCs, and merges
// the disjoint tables. It returns the merged table, the degraded peer set,
// a deadline error (if any stage ran out), a shed error (if an owner
// refused under load), and the union of the owners' quarantined shards.
func (n *Node) scatter(ctx context.Context, cands []model.ObjectID, at model.Time, historical bool) (
	*anchor.Table, []string, error, *ShedError) {
	parts := make([][]model.ObjectID, len(n.members))
	for _, obj := range cands {
		i := n.OwnerIdx(obj)
		parts[i] = append(parts[i], obj)
	}

	tabs := make([]*anchor.Table, len(n.members))
	errsDeadline := make([]error, len(n.members))
	degradedF := make([]bool, len(n.members))
	var shedMu sync.Mutex
	var shed *ShedError
	var wg sync.WaitGroup
	for i, p := range n.peers {
		if p == nil || len(parts[i]) == 0 {
			continue
		}
		if !p.available(time.Now()) {
			degradedF[i] = true
			continue
		}
		wg.Add(1)
		go func(i int, p *peer) {
			defer wg.Done()
			p.mu.Lock()
			p.queryForwards++
			p.mu.Unlock()
			resp, err := n.send(ctx, p, &Request{Op: OpEvaluate, Candidates: parts[i], At: at, Historical: historical})
			if err != nil {
				p.noteFailure(err)
				p.mu.Lock()
				p.queryFailures++
				p.mu.Unlock()
				degradedF[i] = true
				return
			}
			if resp.Shed {
				p.mu.Lock()
				p.sheds++
				p.mu.Unlock()
				shedMu.Lock()
				if shed == nil {
					shed = &ShedError{Peer: p.addr, RetryAfterSeconds: resp.RetryAfterSeconds}
				}
				shedMu.Unlock()
				return
			}
			p.noteSuccess()
			tab := anchor.NewTable()
			objs := make([]model.ObjectID, 0, len(resp.Dists))
			for obj := range resp.Dists {
				objs = append(objs, obj)
			}
			sort.Slice(objs, func(a, b int) bool { return objs[a] < objs[b] })
			for _, obj := range objs {
				tab.SetDistribution(obj, resp.Dists[obj])
			}
			tabs[i] = tab
			if resp.DeadlineStage != "" {
				errsDeadline[i] = &query.DeadlineError{Stage: resp.DeadlineStage, Err: context.DeadlineExceeded}
			}
			if len(resp.DegradedShards) > 0 {
				// The owner answered, but from a partially quarantined
				// engine: its missing shards degrade the cluster answer.
				degradedF[i] = true
			}
		}(i, p)
	}

	// Local partition, concurrently with the remote scatter.
	var localTab *anchor.Table
	var localErr error
	if historical {
		n.lock()
		localTab = n.eng.PreprocessAt(parts[n.selfIdx], at)
		n.unlock()
	} else {
		n.lock()
		localTab, localErr = n.eng.PreprocessContext(ctx, parts[n.selfIdx])
		n.unlock()
	}
	wg.Wait()

	merged := anchor.NewTable()
	tabs[n.selfIdx] = localTab
	for _, tab := range tabs {
		if tab == nil {
			continue
		}
		for _, obj := range tab.Objects() {
			merged.SetDistribution(obj, tab.DistributionOf(obj))
		}
	}
	var degraded []string
	for i, d := range degradedF {
		if d {
			degraded = append(degraded, n.members[i])
		}
	}
	errsDeadline = append(errsDeadline, localErr)
	var firstDl error
	for _, e := range errsDeadline {
		if e == nil {
			continue
		}
		if _, ok := engine.IsDeadline(e); ok && firstDl == nil {
			firstDl = e
		}
	}
	return merged, degraded, firstDl, shed
}

// joinDegraded folds the typed partial markers of one query into a single
// error: degraded peers (union, deduplicated, sorted), a deadline overrun,
// and the local engine's quarantined shards.
func (n *Node) joinDegraded(deadlineErr error, peerSets ...[]string) error {
	set := map[string]bool{}
	for _, ps := range peerSets {
		for _, p := range ps {
			set[p] = true
		}
	}
	var errs []error
	if deadlineErr != nil {
		errs = append(errs, deadlineErr)
	}
	if len(set) > 0 {
		peers := make([]string, 0, len(set))
		for p := range set {
			peers = append(peers, p)
		}
		sort.Strings(peers)
		errs = append(errs, &DegradedError{Peers: peers})
	}
	if qe := n.localQuarantineErr(); qe != nil {
		errs = append(errs, qe)
	}
	switch len(errs) {
	case 0:
		return nil
	case 1:
		return errs[0]
	default:
		return errors.Join(errs...)
	}
}

// prune runs the coordinator-global pruning stage (pass-through inside the
// engine when pruning is disabled). The engine wrapper, not a raw Pruner
// handle, so the unhealthy-reader set stays fenced by the engine's own lock.
func (n *Node) pruneRange(ctx context.Context, infos []query.ObjectInfo, window geom.Rect, now model.Time) ([]model.ObjectID, error) {
	n.lock()
	defer n.unlock()
	return n.eng.PruneRangeContext(ctx, infos, []geom.Rect{window}, now)
}

func (n *Node) pruneKNN(ctx context.Context, infos []query.ObjectInfo, q geom.Point, k int, now model.Time) ([]model.ObjectID, error) {
	n.lock()
	defer n.unlock()
	return n.eng.PruneKNNContext(ctx, infos, q, k, now)
}

func infosToIDs(infos []query.ObjectInfo) []model.ObjectID {
	out := make([]model.ObjectID, len(infos))
	for i, in := range infos {
		out[i] = in.Object
	}
	return out
}

// RangeQueryContext answers a probabilistic range query over the whole
// cluster under the partial-result contract: unreachable owners degrade the
// answer (typed DegradedError), an owner shedding under load aborts it
// (typed ShedError, relayed as 429), and a deadline overrun returns the
// usable prefix.
func (n *Node) RangeQueryContext(ctx context.Context, window geom.Rect) (model.ResultSet, error) {
	now := n.Now()
	infos, degG := n.gather(ctx, 0, false)
	cands, perr := n.pruneRange(ctx, infos, window, now)
	tab, degS, dlerr, shed := n.scatter(ctx, cands, 0, false)
	if shed != nil {
		return nil, shed
	}
	rs, eerr := n.eng.Evaluator().RangeContext(ctx, tab, window)
	return rs, n.joinDegraded(firstNonNil(perr, dlerr, eerr), degG, degS)
}

// KNNQueryContext answers a probabilistic k-nearest-neighbors query over
// the whole cluster; see RangeQueryContext for the degradation contract.
func (n *Node) KNNQueryContext(ctx context.Context, q geom.Point, k int) (model.ResultSet, error) {
	now := n.Now()
	infos, degG := n.gather(ctx, 0, false)
	cands, perr := n.pruneKNN(ctx, infos, q, k, now)
	tab, degS, dlerr, shed := n.scatter(ctx, cands, 0, false)
	if shed != nil {
		return nil, shed
	}
	rs, eerr := n.eng.Evaluator().KNNContext(ctx, tab, q, k)
	return rs, n.joinDegraded(firstNonNil(perr, dlerr, eerr), degG, degS)
}

// RangeQuery is RangeQueryContext without a deadline; partial markers are
// dropped (legacy surface, used by harness diffs over healthy clusters).
func (n *Node) RangeQuery(window geom.Rect) model.ResultSet {
	rs, _ := n.RangeQueryContext(context.Background(), window)
	return rs
}

// KNNQuery is KNNQueryContext without a deadline.
func (n *Node) KNNQuery(q geom.Point, k int) model.ResultSet {
	rs, _ := n.KNNQueryContext(context.Background(), q, k)
	return rs
}

// RangeQueryAt answers a historical range query. Unlike snapshot queries,
// historical runs draw from each node's own serial random source, so
// cluster answers are self-consistent but not pinned bit-for-bit to a
// single-process engine (DESIGN.md §17 documents this non-goal).
func (n *Node) RangeQueryAt(window geom.Rect, t model.Time) model.ResultSet {
	ctx := context.Background()
	infos, _ := n.gather(ctx, t, true)
	cands, _ := n.pruneRange(ctx, infos, window, t)
	tab, _, _, _ := n.scatter(ctx, cands, t, true)
	return n.eng.Evaluator().Range(tab, window)
}

// KNNQueryAt answers a historical kNN query; see RangeQueryAt.
func (n *Node) KNNQueryAt(q geom.Point, k int, t model.Time) model.ResultSet {
	ctx := context.Background()
	infos, _ := n.gather(ctx, t, true)
	cands, _ := n.pruneKNN(ctx, infos, q, k, t)
	tab, _, _, _ := n.scatter(ctx, cands, t, true)
	return n.eng.Evaluator().KNN(tab, q, k)
}

// Occupancy aggregates per-room expected counts over the whole cluster.
func (n *Node) Occupancy() []engine.RoomOdds {
	odds, _ := n.OccupancyContext(context.Background())
	return odds
}

// OccupancyContext is Occupancy under a caller deadline and the cluster
// degradation contract.
func (n *Node) OccupancyContext(ctx context.Context) ([]engine.RoomOdds, error) {
	infos, degG := n.gather(ctx, 0, false)
	tab, degS, dlerr, shed := n.scatter(ctx, infosToIDs(infos), 0, false)
	if shed != nil {
		return nil, shed
	}
	odds := engine.OccupancyFromTable(n.eng.AnchorIndex(), tab)
	return odds, n.joinDegraded(dlerr, degG, degS)
}

// Localize answers a single-object localization on the object's owner.
func (n *Node) Localize(obj model.ObjectID) (engine.Localization, bool) {
	i := n.OwnerIdx(obj)
	if i == n.selfIdx {
		n.lock()
		defer n.unlock()
		return n.eng.Localize(obj)
	}
	p := n.peers[i]
	if !p.available(time.Now()) {
		return engine.Localization{}, false
	}
	resp, err := n.send(context.Background(), p, &Request{Op: OpLocalize, Object: obj})
	if err != nil {
		p.noteFailure(err)
		return engine.Localization{}, false
	}
	p.noteSuccess()
	return resp.Loc, resp.Found
}

// KnownObjects returns the objects known across the whole cluster, sorted.
// Unreachable owners' objects are silently absent (the endpoint has no
// partial contract).
func (n *Node) KnownObjects() []model.ObjectID {
	infos, _ := n.gather(context.Background(), 0, false)
	return infosToIDs(infos)
}

// Preprocess fills a distribution table for an explicit candidate set via
// the scatter path (the snapshot renderer's entry point).
func (n *Node) Preprocess(candidates []model.ObjectID) *anchor.Table {
	tab, _, _, _ := n.scatter(context.Background(), candidates, 0, false)
	return tab
}

func firstNonNil(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
