package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/health"
	"repro/internal/ingest"
	"repro/internal/model"
	"repro/internal/shardmap"
)

// Ingest accepts one gateway delivery on any node: the readings are
// partitioned by owner, each remote owner's sub-batch is forwarded (with
// retries, breaker, and idempotent application), and the local partition is
// applied to the local engine. Readings owed to an unreachable owner become
// a typed ingest.KindUnreachable drop counted in Stats; the missed second
// is queued for heal-time catch-up.
func (n *Node) Ingest(t model.Time, raws []model.RawReading) error {
	return n.IngestContext(context.Background(), t, raws)
}

// IngestContext is Ingest with a caller context bounding the forwards.
func (n *Node) IngestContext(ctx context.Context, t model.Time, raws []model.RawReading) error {
	parts := n.partition(raws)
	fdrops := 0
	for i, p := range n.peers {
		if p == nil {
			continue
		}
		if err := n.forwardTo(ctx, p, t, parts[i]); err != nil {
			fdrops += len(parts[i])
		}
	}
	n.lock()
	lerr := n.eng.IngestContext(ctx, t, parts[n.selfIdx])
	n.unlock()
	return n.mergeIngestErr(t, lerr, fdrops)
}

// FlushIngest force-flushes the local reorder buffer (used by harnesses;
// peers flush their own on their next delivery).
func (n *Node) FlushIngest() {
	type flusher interface{ FlushIngest() }
	if f, ok := n.eng.(flusher); ok {
		n.lock()
		f.FlushIngest()
		n.unlock()
	}
}

// partition splits a delivery by owning member. Every member gets an entry
// (possibly empty): empty sub-batches still advance the remote stream
// clocks, exactly as the in-process router's partition does for shards.
func (n *Node) partition(raws []model.RawReading) [][]model.RawReading {
	parts := make([][]model.RawReading, len(n.members))
	for _, r := range raws {
		i := shardmap.Of(r.Object, len(n.members))
		parts[i] = append(parts[i], r)
	}
	return parts
}

// forwardTo sends one sub-batch to its owner, preserving per-peer second
// order (fwMu), draining any queued catch-up seconds first. On failure the
// sub-batch's readings are dropped (typed) and its second joins the
// catch-up queue.
func (n *Node) forwardTo(ctx context.Context, p *peer, t model.Time, raws []model.RawReading) error {
	p.fwMu.Lock()
	defer p.fwMu.Unlock()
	if !p.available(time.Now()) {
		n.dropForward(p, t, raws)
		return fmt.Errorf("%w: %s is dead", ErrUnreachable, p.addr)
	}
	if err := n.drainTicks(ctx, p); err != nil {
		n.dropForward(p, t, raws)
		return err
	}
	resp, err := n.send(ctx, p, &Request{
		Op:          OpIngest,
		Time:        t,
		Readings:    raws,
		Fingerprint: ingest.Fingerprint(raws),
	})
	if err != nil {
		p.noteFailure(err)
		n.dropForward(p, t, raws)
		return fmt.Errorf("%w: %s: %v", ErrUnreachable, p.addr, err)
	}
	p.noteSuccess()
	p.mu.Lock()
	p.forwardedBatches++
	p.ackedReadings += int64(resp.Accepted)
	p.remoteDropped += int64(resp.Dropped)
	p.mu.Unlock()
	return nil
}

// drainTicks replays the peer's missed seconds as empty batches, in order,
// before any newer second is forwarded. A healed peer thereby reconstructs
// the exact per-second ingest sequence of a never-partitioned cluster for
// its objects: the readings it missed were dropped (typed) on both sides of
// the comparison, and the bare seconds carry the clock advance and LEAVE
// detection.
func (n *Node) drainTicks(ctx context.Context, p *peer) error {
	for {
		p.mu.Lock()
		if len(p.ticks) == 0 {
			p.mu.Unlock()
			return nil
		}
		tk := p.ticks[0]
		p.mu.Unlock()
		_, err := n.send(ctx, p, &Request{
			Op:          OpIngest,
			Time:        tk,
			Fingerprint: ingest.Fingerprint(nil),
		})
		if err != nil {
			p.noteFailure(err)
			return fmt.Errorf("%w: %s: catch-up t=%d: %v", ErrUnreachable, p.addr, tk, err)
		}
		p.mu.Lock()
		p.ticks = p.ticks[1:]
		p.mu.Unlock()
	}
}

// dropForward accounts one dropped sub-batch: the readings become typed
// unreachable drops in the engine's Stats, and the second joins the
// catch-up queue.
func (n *Node) dropForward(p *peer, t model.Time, raws []model.RawReading) {
	p.recordMissed(t)
	if len(raws) == 0 {
		return
	}
	p.mu.Lock()
	p.droppedReadings += int64(len(raws))
	p.mu.Unlock()
	n.lock()
	n.eng.NoteTransportDrops(len(raws))
	n.unlock()
}

// mergeIngestErr combines the local engine's ingest report with the
// forwarder's unreachable drops into one typed error, keeping the HTTP
// accepted/dropped accounting exact.
func (n *Node) mergeIngestErr(t model.Time, lerr error, fdrops int) error {
	if fdrops == 0 {
		return lerr
	}
	if lerr == nil {
		return &ingest.Error{Kind: ingest.KindUnreachable, Time: t, Dropped: fdrops}
	}
	var ie *ingest.Error
	if errors.As(lerr, &ie) {
		if ie.Rejected {
			// The whole delivery was refused locally (late batch); the
			// owners refused their sub-batches the same way. Rejection
			// dominates the report.
			return lerr
		}
		return &ingest.Error{Kind: ingest.KindUnreachable, Time: t, Dropped: ie.Dropped + fdrops}
	}
	return lerr
}

// ProbePeers synchronously probes every peer that is not LIVE or still owes
// catch-up seconds, ignoring the probe pacing: queued seconds are drained
// and, on success, the peer returns to LIVE. It returns the addresses that
// healed. The harness calls it after clearing faults so the rejoin boundary
// is deterministic; production traffic probes implicitly on the forward
// path.
func (n *Node) ProbePeers(ctx context.Context) []string {
	var healed []string
	for _, p := range n.remotePeers() {
		if p.currentState() == health.Live && p.pendingTicks() == 0 {
			continue
		}
		p.fwMu.Lock()
		err := n.drainTicks(ctx, p)
		if err == nil {
			if _, err = n.send(ctx, p, &Request{Op: OpPing}); err != nil {
				p.noteFailure(err)
			}
		}
		if err == nil {
			p.noteSuccess()
			healed = append(healed, p.addr)
		}
		p.fwMu.Unlock()
	}
	return healed
}

// DegradedPeers returns the remote peers currently not LIVE, in membership
// order (nil when the whole fleet is reachable).
func (n *Node) DegradedPeers() []string {
	var out []string
	for _, p := range n.remotePeers() {
		if p.currentState() != health.Live {
			out = append(out, p.addr)
		}
	}
	return out
}
