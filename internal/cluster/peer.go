package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/health"
	"repro/internal/model"
	"repro/internal/obs"
)

// RetryConfig bounds forward retransmissions, mirroring the durability
// layer's retry shape (engine.RetryConfig): exponential backoff with a cap
// and deterministic splitmix64 jitter in [d/2, d).
type RetryConfig struct {
	// Max is the number of re-attempts after the first failure. 0 means the
	// default (3); negative disables retries.
	Max int
	// BaseDelay is the wait before the first retry, doubled per attempt up
	// to MaxDelay, with deterministic ±50% jitter. 0 means 2ms and 100ms.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

func (rc RetryConfig) max() int {
	if rc.Max < 0 {
		return 0
	}
	if rc.Max == 0 {
		return 3
	}
	return rc.Max
}

// delay returns the backoff before retry attempt (0-based), salted per peer
// so lockstep retries across peers spread out without a shared randomness
// source.
func (rc RetryConfig) delay(attempt int, salt uint64) time.Duration {
	base, cap := rc.BaseDelay, rc.MaxDelay
	if base <= 0 {
		base = 2 * time.Millisecond
	}
	if cap <= 0 {
		cap = 100 * time.Millisecond
	}
	d := base
	for i := 0; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	x := salt + uint64(attempt)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if d > 1 {
		d = d/2 + time.Duration(x%uint64(d))/2
	}
	return d
}

// splitmix64 finalizes x into a well-mixed 64-bit value (same mixer as the
// partition map's).
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// peer is the forwarder's view of one remote member: circuit-breaker state,
// the catch-up queue of missed seconds, counters, and metric handles.
//
// Lock order: fwMu (serializes the forward sequence so a peer receives its
// seconds in delivery order) is taken before mu (guards the fields below);
// mu is never held across a transport call.
type peer struct {
	addr string
	salt uint64
	cfg  *Config

	fwMu sync.Mutex

	mu        sync.Mutex
	state     health.State
	fails     int // consecutive failed forwards, each already retried
	nextProbe time.Time
	lastErr   string
	// ticks are the stream seconds this peer missed while unreachable. The
	// readings were dropped (typed); the bare seconds replay as empty
	// batches on heal so the peer's clock and LEAVE detection catch up.
	ticks     []model.Time
	lostTicks int

	// Counters, guarded by mu; surfaced at GET /cluster.
	forwardedBatches int64
	ackedReadings    int64
	droppedReadings  int64
	remoteDropped    int64 // readings the owner's own taxonomy refused
	retries          int64
	queryForwards    int64
	queryFailures    int64
	sheds            int64

	mFwd   *obs.Histogram
	mErr   *obs.Counter
	mState *obs.Gauge
}

func newPeer(addr string, cfg Config, fwd *obs.Histogram, errs *obs.Counter, state *obs.Gauge) *peer {
	h := splitmix64(uint64(cfg.Seed))
	for _, c := range addr {
		h = splitmix64(h + uint64(c))
	}
	p := &peer{addr: addr, salt: h, cfg: &cfg, mFwd: fwd, mErr: errs, mState: state}
	p.mState.Set(float64(health.Live))
	return p
}

// available reports whether a forward to this peer should be attempted now:
// LIVE and SUSPECT peers always, DEAD peers only once their probe interval
// has elapsed (the next forward doubles as the probe).
func (p *peer) available(now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state != health.Dead || !now.Before(p.nextProbe)
}

// currentState returns the breaker state.
func (p *peer) currentState() health.State {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state
}

// noteFailure records one failed forward (post-retry) and advances the
// breaker: SuspectAfter consecutive failures mark the peer SUSPECT,
// DeadAfter mark it DEAD; while DEAD the probe interval doubles from
// ProbeBase to ProbeMax.
func (p *peer) noteFailure(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fails++
	p.lastErr = err.Error()
	switch {
	case p.fails >= p.cfg.deadAfter():
		p.state = health.Dead
		d := p.cfg.probeBase()
		for i := p.cfg.deadAfter(); i < p.fails && d < p.cfg.probeMax(); i++ {
			d *= 2
		}
		if d > p.cfg.probeMax() {
			d = p.cfg.probeMax()
		}
		p.nextProbe = time.Now().Add(d)
	case p.fails >= p.cfg.suspectAfter():
		p.state = health.Suspect
	}
	p.mState.Set(float64(p.state))
}

// noteSuccess resets the breaker to LIVE.
func (p *peer) noteSuccess() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fails = 0
	p.state = health.Live
	p.lastErr = ""
	p.mState.Set(float64(health.Live))
}

// recordMissed queues one missed stream second for heal-time catch-up,
// bounded by MaxMissedSeconds (oldest seconds beyond it are lost: counted,
// and clock lockstep is no longer guaranteed after heal).
func (p *peer) recordMissed(t model.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.ticks) >= p.cfg.maxMissed() {
		p.ticks = p.ticks[1:]
		p.lostTicks++
	}
	p.ticks = append(p.ticks, t)
}

func (p *peer) pendingTicks() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.ticks)
}

func (p *peer) syncGauge() {
	p.mu.Lock()
	p.mState.Set(float64(p.state))
	p.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Typed errors of the degradation contract.

// DegradedError marks a query answered without one or more unreachable (or
// internally quarantined) owners: the result is correct over the reachable
// owners' objects but is not the full population. The HTTP layer surfaces
// it as "partial": true with "degradedPeers", mirroring the shard
// quarantine contract.
type DegradedError struct {
	Peers []string
}

// Error implements the error interface.
func (e *DegradedError) Error() string {
	return fmt.Sprintf("cluster: partial result: %d peer(s) degraded %v", len(e.Peers), e.Peers)
}

// IsDegraded reports whether err (or anything it wraps) marks a partial
// result caused by unreachable peers.
func IsDegraded(err error) (*DegradedError, bool) {
	var de *DegradedError
	if errors.As(err, &de) {
		return de, true
	}
	return nil, false
}

// ShedError marks a query refused because an owner shed the forwarded
// evaluate under load. The HTTP layer relays the owner's Retry-After —
// not the forwarder's own estimate — as a 429.
type ShedError struct {
	Peer              string
	RetryAfterSeconds int
}

// Error implements the error interface.
func (e *ShedError) Error() string {
	return fmt.Sprintf("cluster: peer %s shed the forwarded request, retry in %ds", e.Peer, e.RetryAfterSeconds)
}

// IsShed reports whether err (or anything it wraps) is an owner-side shed.
func IsShed(err error) (*ShedError, bool) {
	var se *ShedError
	if errors.As(err, &se) {
		return se, true
	}
	return nil, false
}

// ErrUnreachable is the sentinel wrapped by forward failures after the
// breaker and retries gave up.
var ErrUnreachable = errors.New("cluster: peer unreachable")
