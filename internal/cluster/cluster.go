// Package cluster promotes the in-process object partition map to a
// multi-node layer (DESIGN.md §17). Membership is static: every node is
// started with the same -peers list and its own -node-id, and the ownership
// table maps each object to its owning node with the same splitmix64 jump
// hash (internal/shardmap) the sharded router uses for in-process shards —
// stateless, identical on every node, and moving only ~1/(n+1) of the keys
// when the membership grows by one.
//
// Any node accepts any ingest batch or query. Ingest deliveries are
// partitioned by owner and forwarded synchronously (every peer receives its
// sub-batch every second, even when empty, so remote stream clocks advance
// in lockstep); queries run the same gather → prune → scatter → merge →
// evaluate pipeline as the in-process router, with the remote stages carried
// over an injectable Transport.
//
// The robustness contract mirrors PR 5/PR 9: a slow, partitioned, or dead
// peer degrades service with typed partial results, never silent loss and
// never a stalled cluster. Forwards retry with bounded exponential backoff
// and deterministic jitter; repeated failures walk a per-peer circuit
// breaker through LIVE → SUSPECT → DEAD; ingest owed to an unreachable peer
// becomes a typed ingest.KindUnreachable drop counted in Stats, while the
// missed seconds are queued and replayed as empty batches on heal so the
// healed peer's clock and LEAVE detection realign with a never-partitioned
// cluster; queries answered without an owner return partial results marked
// with the degraded peer set.
package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/anchor"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/health"
	"repro/internal/model"
	"repro/internal/obs/trace"
	"repro/internal/query"
	"repro/internal/shardmap"
	"repro/internal/walkgraph"
)

// Transport delivers one request to one peer and returns its response.
// Errors are transport-level failures (unreachable, dropped, timed out);
// application-level refusals (shed, rejected batch) ride inside Response.
// Implementations must be safe for concurrent use.
type Transport interface {
	Send(ctx context.Context, addr string, req *Request) (*Response, error)
}

// Local is the engine surface a Node wraps: the single-shard *engine.System
// and the in-process sharded *engine.Sharded both implement it. The first
// block is the server-facing API the node mostly delegates; the second is
// the piecewise query pipeline the distributed coordinator drives.
type Local interface {
	Ingest(t model.Time, raws []model.RawReading) error
	IngestContext(ctx context.Context, t model.Time, raws []model.RawReading) error
	Now() model.Time
	KnownObjects() []model.ObjectID
	Localize(obj model.ObjectID) (engine.Localization, bool)
	DegradedShards() []int
	Preprocess(candidates []model.ObjectID) *anchor.Table
	Stats() engine.Stats
	CacheStats() (hits, misses int)
	Graph() *walkgraph.Graph
	AnchorIndex() *anchor.Index
	Telemetry() *engine.Telemetry
	SyncMetrics()
	SetParticleBudget(n int)
	NoteOversizedBody()
	HealthMonitorEnabled() bool
	ReaderHealth() []health.ReaderHealth
	WALError() error
	Recovery() engine.RecoveryInfo
	Close() error

	ObjectInfos() []query.ObjectInfo
	ObjectInfosAt(t model.Time) []query.ObjectInfo
	PreprocessContext(ctx context.Context, candidates []model.ObjectID) (*anchor.Table, error)
	PreprocessAt(candidates []model.ObjectID, t model.Time) *anchor.Table
	Evaluator() *query.Evaluator
	PruneRangeContext(ctx context.Context, infos []query.ObjectInfo, windows []geom.Rect, now model.Time) ([]model.ObjectID, error)
	PruneKNNContext(ctx context.Context, infos []query.ObjectInfo, q geom.Point, k int, now model.Time) ([]model.ObjectID, error)
	NoteTransportDrops(n int)
}

// Config parameterizes a Node.
type Config struct {
	// Self is this node's address exactly as it appears in Peers.
	Self string
	// Peers is the full static membership, including Self. Every node must
	// be started with the same set; the ownership table is the sorted list,
	// so order does not matter but content does.
	Peers []string
	// Transport carries all peer I/O (HTTP/gob in production, netsim under
	// test).
	Transport Transport
	// Retry bounds per-forward retransmissions: exponential backoff from
	// BaseDelay to MaxDelay with deterministic per-peer jitter, mirroring
	// the durability retry shape.
	Retry RetryConfig
	// ForwardTimeout caps one forward attempt (default 2s). Query forwards
	// are additionally bounded by the client's propagated deadline.
	ForwardTimeout time.Duration
	// SuspectAfter and DeadAfter are the circuit-breaker thresholds:
	// consecutive failed forwards (each already retried) before the peer is
	// marked SUSPECT (default 1) and DEAD (default 3).
	SuspectAfter int
	DeadAfter    int
	// ProbeBase and ProbeMax pace re-probes of a DEAD peer: the next
	// forward after the probe interval elapses is attempted instead of
	// dropped, with the interval doubling from ProbeBase to ProbeMax while
	// the peer stays dead (defaults 500ms and 15s). Tests set ProbeBase
	// very high and drive probes explicitly via ProbePeers.
	ProbeBase time.Duration
	ProbeMax  time.Duration
	// MaxMissedSeconds bounds the per-peer catch-up queue of stream seconds
	// missed while the peer was unreachable (default 4096). Beyond it the
	// oldest seconds are discarded and counted as lost: the peer can still
	// heal, but clock lockstep with a never-partitioned cluster is no
	// longer guaranteed.
	MaxMissedSeconds int
	// EvaluateSlots bounds concurrent remote-evaluate RPCs served by this
	// node; excess requests are shed with a Retry-After estimated from
	// recent evaluate latency (0: unbounded, never shed).
	EvaluateSlots int
	// Seed keys the deterministic retry jitter.
	Seed int64
}

func (c *Config) forwardTimeout() time.Duration {
	if c.ForwardTimeout <= 0 {
		return 2 * time.Second
	}
	return c.ForwardTimeout
}

func (c *Config) suspectAfter() int {
	if c.SuspectAfter <= 0 {
		return 1
	}
	return c.SuspectAfter
}

func (c *Config) deadAfter() int {
	if c.DeadAfter <= 0 {
		return 3
	}
	return c.DeadAfter
}

func (c *Config) probeBase() time.Duration {
	if c.ProbeBase <= 0 {
		return 500 * time.Millisecond
	}
	return c.ProbeBase
}

func (c *Config) probeMax() time.Duration {
	if c.ProbeMax <= 0 {
		return 15 * time.Second
	}
	return c.ProbeMax
}

func (c *Config) maxMissed() int {
	if c.MaxMissedSeconds <= 0 {
		return 4096
	}
	return c.MaxMissedSeconds
}

// Node wraps a local engine with cluster membership, forwarding, and the
// distributed query pipeline. It implements the server's Engine interface,
// so the HTTP layer is unchanged whether it fronts one engine or a fleet.
type Node struct {
	cfg     Config
	eng     Local
	members []string // sorted; index is the jump-hash bucket
	selfIdx int
	peers   []*peer // remote members in members order (nil at selfIdx)

	// mu serializes access to engines that do not synchronize internally
	// (the single-shard System); noLock skips it for the sharded router.
	mu     sync.Mutex
	noLock bool

	// tracer stitches forwarded traces; set by the server at mount time
	// (SetTracer). Nil disables owner-side spans.
	tracer *trace.Tracer

	// Idempotent forward application: recently applied (second,
	// fingerprint) pairs with their cached ack, so a retransmission after a
	// lost reply re-acks instead of double-counting.
	idemMu   sync.Mutex
	idem     map[idemKey]*Response
	idemFIFO []idemKey

	// Owner-side remote-evaluate gate (nil: unbounded).
	gate     chan struct{}
	ewmaMu   sync.Mutex
	evalEWMA float64 // seconds, exponentially smoothed

	closeOnce sync.Once
	closeErr  error
}

type idemKey struct {
	t  model.Time
	fp uint64
}

// maxIdem bounds the idempotency cache (FIFO eviction). A gateway retries
// within seconds; 4096 cached acks cover over an hour of per-second
// deliveries per peer.
const maxIdem = 4096

// selfSynchronizing mirrors the server's optional interface for engines
// that do their own locking.
type selfSynchronizing interface {
	SelfSynchronizing() bool
}

// New builds a Node over a local engine. The membership must contain
// cfg.Self and at least one other peer, and every node of the cluster must
// be given the same set.
func New(eng Local, cfg Config) (*Node, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("cluster: Config.Transport is required")
	}
	seen := make(map[string]bool, len(cfg.Peers))
	members := make([]string, 0, len(cfg.Peers))
	for _, p := range cfg.Peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		members = append(members, p)
	}
	sort.Strings(members)
	if len(members) < 2 {
		return nil, fmt.Errorf("cluster: need at least 2 distinct peers, got %d", len(members))
	}
	selfIdx := -1
	for i, m := range members {
		if m == cfg.Self {
			selfIdx = i
		}
	}
	if selfIdx < 0 {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list %v", cfg.Self, members)
	}
	n := &Node{
		cfg:     cfg,
		eng:     eng,
		members: members,
		selfIdx: selfIdx,
		peers:   make([]*peer, len(members)),
		idem:    make(map[idemKey]*Response),
	}
	if ss, ok := eng.(selfSynchronizing); ok && ss.SelfSynchronizing() {
		n.noLock = true
	}
	if cfg.EvaluateSlots > 0 {
		n.gate = make(chan struct{}, cfg.EvaluateSlots)
	}
	reg := eng.Telemetry().Registry()
	fwd := reg.HistogramVec("repro_peer_forward_seconds",
		"Wall time of one forward attempt to a peer (ingest sub-batch or query RPC).", nil, "peer")
	errs := reg.CounterVec("repro_peer_errors_total",
		"Failed forward attempts per peer (transport errors, before retries give up).", "peer")
	states := reg.GaugeVec("repro_peer_state",
		"Peer circuit-breaker state: 0 live, 1 suspect, 2 dead.", "peer")
	for i, m := range members {
		if i == selfIdx {
			continue
		}
		n.peers[i] = newPeer(m, cfg, fwd.With(m), errs.With(m), states.With(m))
	}
	return n, nil
}

// SetTracer attaches the tracer used to stitch forwarded request traces
// (the server passes its own at mount time, so forwarder and owner halves
// land in the same /debug/traces rings by shared trace ID).
func (n *Node) SetTracer(t *trace.Tracer) { n.tracer = t }

// SelfSynchronizing reports that the node does its own locking; the HTTP
// server skips its serialization mutex.
func (n *Node) SelfSynchronizing() bool { return true }

func (n *Node) lock() {
	if !n.noLock {
		n.mu.Lock()
	}
}

func (n *Node) unlock() {
	if !n.noLock {
		n.mu.Unlock()
	}
}

// Members returns the sorted membership (the ownership table: bucket i is
// owned by Members()[i]).
func (n *Node) Members() []string { return append([]string(nil), n.members...) }

// Self returns this node's address.
func (n *Node) Self() string { return n.cfg.Self }

// OwnerIdx returns the membership index owning obj.
func (n *Node) OwnerIdx(obj model.ObjectID) int { return shardmap.Of(obj, len(n.members)) }

// Owner returns the address of the node owning obj.
func (n *Node) Owner(obj model.ObjectID) string { return n.members[n.OwnerIdx(obj)] }

// remotePeers iterates the remote peers in membership order.
func (n *Node) remotePeers() []*peer {
	out := make([]*peer, 0, len(n.peers)-1)
	for _, p := range n.peers {
		if p != nil {
			out = append(out, p)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Engine delegations. Methods that only touch immutable wiring skip the
// lock; everything touching engine state takes it (no-op over the sharded
// router, which synchronizes internally).

// Now returns the local engine's stream clock. Every node ingests every
// delivered second (its own partition, possibly empty), so clocks agree
// across a healthy cluster.
func (n *Node) Now() model.Time {
	n.lock()
	defer n.unlock()
	return n.eng.Now()
}

// Graph exposes the local walk graph (identical on every node).
func (n *Node) Graph() *walkgraph.Graph { return n.eng.Graph() }

// AnchorIndex exposes the local anchor index (identical on every node).
func (n *Node) AnchorIndex() *anchor.Index { return n.eng.AnchorIndex() }

// Telemetry exposes the local engine's observability surface.
func (n *Node) Telemetry() *engine.Telemetry { return n.eng.Telemetry() }

// Stats returns the local engine's counters; readings dropped because their
// owner was unreachable are already merged in (NoteTransportDrops).
func (n *Node) Stats() engine.Stats {
	n.lock()
	defer n.unlock()
	return n.eng.Stats()
}

// CacheStats delegates to the local engine.
func (n *Node) CacheStats() (hits, misses int) {
	n.lock()
	defer n.unlock()
	return n.eng.CacheStats()
}

// DegradedShards reports the local engine's quarantined shards.
func (n *Node) DegradedShards() []int {
	n.lock()
	defer n.unlock()
	return n.eng.DegradedShards()
}

// SyncMetrics refreshes the local engine's scrape-time mirrors and the
// per-peer state gauges.
func (n *Node) SyncMetrics() {
	n.lock()
	n.eng.SyncMetrics()
	n.unlock()
	for _, p := range n.remotePeers() {
		p.syncGauge()
	}
}

// SetParticleBudget delegates to the local engine.
func (n *Node) SetParticleBudget(k int) {
	n.lock()
	defer n.unlock()
	n.eng.SetParticleBudget(k)
}

// NoteOversizedBody delegates to the local engine.
func (n *Node) NoteOversizedBody() {
	n.lock()
	defer n.unlock()
	n.eng.NoteOversizedBody()
}

// HealthMonitorEnabled delegates to the local engine.
func (n *Node) HealthMonitorEnabled() bool { return n.eng.HealthMonitorEnabled() }

// ReaderHealth delegates to the local engine. Per-node monitors observe
// only the local partition of the stream; see DESIGN.md §17.
func (n *Node) ReaderHealth() []health.ReaderHealth {
	n.lock()
	defer n.unlock()
	return n.eng.ReaderHealth()
}

// WALError delegates to the local engine.
func (n *Node) WALError() error {
	n.lock()
	defer n.unlock()
	return n.eng.WALError()
}

// Recovery delegates to the local engine.
func (n *Node) Recovery() engine.RecoveryInfo {
	n.lock()
	defer n.unlock()
	return n.eng.Recovery()
}

// Close shuts the local engine down.
func (n *Node) Close() error {
	n.closeOnce.Do(func() { n.closeErr = n.eng.Close() })
	return n.closeErr
}

// localQuarantineErr surfaces the local engine's quarantined shards as the
// same typed partial marker the in-process router uses.
func (n *Node) localQuarantineErr() error {
	n.lock()
	ds := n.eng.DegradedShards()
	n.unlock()
	if len(ds) == 0 {
		return nil
	}
	return &engine.QuarantineError{Shards: ds}
}

// infoLess orders candidate summaries by object, matching the engines'.
func infoLess(a, b query.ObjectInfo) bool { return a.Object < b.Object }

// mergeInfos merges per-node candidate summaries (each sorted by object,
// pairwise disjoint by ownership) into one sorted slice, so the coordinator
// prunes over exactly the summary a single-process engine would produce.
func mergeInfos(per [][]query.ObjectInfo) []query.ObjectInfo {
	total := 0
	for _, s := range per {
		total += len(s)
	}
	out := make([]query.ObjectInfo, 0, total)
	idx := make([]int, len(per))
	for {
		best := -1
		for i, s := range per {
			if idx[i] >= len(s) {
				continue
			}
			if best < 0 || infoLess(s[idx[i]], per[best][idx[best]]) {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, per[best][idx[best]])
		idx[best]++
	}
}
