package cluster

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Wire format: gob over a single POST /cluster/rpc endpoint. The trace ID
// additionally rides the X-Repro-Trace-Id header so intermediaries (and
// humans with curl) can follow a forwarded request without decoding the
// body.
const (
	rpcPath       = "/cluster/rpc"
	traceIDHeader = "X-Repro-Trace-Id"
	fromHeader    = "X-Repro-From"
)

// HTTPTransport is the production Transport: one gob-encoded POST per RPC,
// over a shared connection pool.
type HTTPTransport struct {
	// Client is the underlying HTTP client; nil uses a pooled default whose
	// per-request timeout comes from the caller's context.
	Client *http.Client
}

// NewHTTPTransport builds an HTTPTransport with a pooled client.
func NewHTTPTransport() *HTTPTransport {
	return &HTTPTransport{Client: &http.Client{
		Transport: &http.Transport{
			MaxIdleConnsPerHost: 4,
			IdleConnTimeout:     90 * time.Second,
		},
	}}
}

// Send implements Transport.
func (t *HTTPTransport) Send(ctx context.Context, addr string, req *Request) (*Response, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(req); err != nil {
		return nil, fmt.Errorf("cluster: encode request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+rpcPath, &body)
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/octet-stream")
	hreq.Header.Set(fromHeader, req.From)
	if req.TraceID != 0 {
		hreq.Header.Set(traceIDHeader, strconv.FormatUint(req.TraceID, 16))
	}
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	hresp, err := client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 512))
		return nil, fmt.Errorf("cluster: peer %s: %s: %s", addr, hresp.Status, bytes.TrimSpace(msg))
	}
	var resp Response
	if err := gob.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("cluster: decode response from %s: %w", addr, err)
	}
	return &resp, nil
}

// RPCHandler returns the peer-facing HTTP handler the server mounts at
// POST /cluster/rpc: it decodes the gob request, restores the propagated
// trace ID from the header when the body lacks one, and serves it through
// HandleRPC.
func (n *Node) RPCHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req Request
		if err := gob.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad rpc body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if req.TraceID == 0 {
			if h := r.Header.Get(traceIDHeader); h != "" {
				if id, err := strconv.ParseUint(h, 16, 64); err == nil {
					req.TraceID = id
				}
			}
		}
		resp, err := n.HandleRPC(r.Context(), &req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(resp); err != nil {
			http.Error(w, "encode response: "+err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(buf.Bytes())
	})
}
