package cluster

import (
	"repro/internal/model"
)

// Status is the GET /cluster document: membership, ownership, and the
// forwarder's view of every remote peer.
type Status struct {
	Self    string   `json:"self"`
	Members []string `json:"members"`
	// Now is the local stream clock (agrees across a healthy cluster).
	Now model.Time `json:"now"`
	// Degraded reports whether any peer is not LIVE.
	Degraded bool         `json:"degraded"`
	Peers    []PeerStatus `json:"peers"`
}

// PeerStatus is the breaker and ledger view of one remote peer.
type PeerStatus struct {
	Addr  string `json:"addr"`
	State string `json:"state"` // "live" | "suspect" | "dead"
	// LastError is the most recent transport failure ("" when LIVE).
	LastError string `json:"lastError,omitempty"`
	// PendingTicks is the catch-up queue depth: stream seconds this peer
	// missed that will replay as empty batches on heal. LostTicks counts
	// seconds evicted beyond MaxMissedSeconds.
	PendingTicks int `json:"pendingTicks"`
	LostTicks    int `json:"lostTicks"`

	ForwardedBatches int64 `json:"forwardedBatches"`
	AckedReadings    int64 `json:"ackedReadings"`
	// DroppedReadings were owed to this peer while unreachable (typed
	// ingest.KindUnreachable drops in Stats); RemoteDropped were refused by
	// the owner's own ingest taxonomy.
	DroppedReadings int64 `json:"droppedReadings"`
	RemoteDropped   int64 `json:"remoteDropped"`
	Retries         int64 `json:"retries"`
	QueryForwards   int64 `json:"queryForwards"`
	QueryFailures   int64 `json:"queryFailures"`
	Sheds           int64 `json:"sheds"`
}

// ClusterStatus snapshots the node for GET /cluster.
func (n *Node) ClusterStatus() Status {
	st := Status{
		Self:    n.cfg.Self,
		Members: n.Members(),
		Now:     n.Now(),
	}
	for _, p := range n.remotePeers() {
		p.mu.Lock()
		ps := PeerStatus{
			Addr:             p.addr,
			State:            p.state.String(),
			LastError:        p.lastErr,
			PendingTicks:     len(p.ticks),
			LostTicks:        p.lostTicks,
			ForwardedBatches: p.forwardedBatches,
			AckedReadings:    p.ackedReadings,
			DroppedReadings:  p.droppedReadings,
			RemoteDropped:    p.remoteDropped,
			Retries:          p.retries,
			QueryForwards:    p.queryForwards,
			QueryFailures:    p.queryFailures,
			Sheds:            p.sheds,
		}
		p.mu.Unlock()
		if ps.State != "live" {
			st.Degraded = true
		}
		st.Peers = append(st.Peers, ps)
	}
	return st
}
