package cluster_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/floorplan"
	"repro/internal/health"
	"repro/internal/ingest"
	"repro/internal/model"
	"repro/internal/obs/trace"
	"repro/internal/rfid"
	"repro/internal/shardmap"
	"repro/internal/sim/netsim"
)

// twoNodes builds a two-node netsim cluster over memory-only single-shard
// engines, with probes disabled so breaker transitions happen only at the
// test's own boundaries.
func twoNodes(t *testing.T, seed int64, tweak func(*cluster.Config)) (*netsim.Network, *cluster.Node, *cluster.Node, *engine.System, *engine.System) {
	t.Helper()
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	cfg := engine.DefaultConfig()
	cfg.Particle.Ns = 16
	cfg.Seed = seed
	cfg.SlowQueryThreshold = 0
	cfg.Ingest.Horizon = 0
	cfg.Health = health.Config{}

	net := netsim.New(seed)
	mk := func(self string) (*cluster.Node, *engine.System) {
		eng, err := engine.New(plan, dep, cfg)
		if err != nil {
			t.Fatalf("engine: %v", err)
		}
		ccfg := cluster.Config{
			Self:      self,
			Peers:     []string{"node-0", "node-1"},
			Transport: net.Transport(self),
			ProbeBase: 24 * time.Hour,
			ProbeMax:  24 * time.Hour,
			Seed:      seed,
		}
		if tweak != nil {
			tweak(&ccfg)
		}
		node, err := cluster.New(eng, ccfg)
		if err != nil {
			t.Fatalf("cluster.New(%s): %v", self, err)
		}
		return node, eng
	}
	n0, e0 := mk("node-0")
	n1, e1 := mk("node-1")
	net.AddNode("node-0", n0)
	net.AddNode("node-1", n1)
	t.Cleanup(func() { n0.Close(); n1.Close() })
	return net, n0, n1, e0, e1
}

// objectsOwnedBy returns count object IDs whose two-member owner is the
// given bucket.
func objectsOwnedBy(bucket, count int) []model.ObjectID {
	out := make([]model.ObjectID, 0, count)
	for id := model.ObjectID(1); len(out) < count; id++ {
		if shardmap.Of(id, 2) == bucket {
			out = append(out, id)
		}
	}
	return out
}

func readingsFor(objs []model.ObjectID, t model.Time) []model.RawReading {
	raws := make([]model.RawReading, len(objs))
	for i, o := range objs {
		raws[i] = model.RawReading{Object: o, Reader: model.ReaderID(i % rfid.DefaultReaders), Time: t}
	}
	return raws
}

// TestForwardingRoutesToOwner ingests through node-0 a batch whose objects
// all belong to node-1: every reading must land in node-1's engine, none in
// node-0's, and both nodes must answer queries over them identically.
func TestForwardingRoutesToOwner(t *testing.T) {
	_, n0, n1, e0, e1 := twoNodes(t, 5, nil)
	objs := objectsOwnedBy(1, 5)
	for sec := model.Time(1); sec <= 3; sec++ {
		if err := n0.Ingest(sec, readingsFor(objs, sec)); err != nil {
			t.Fatalf("ingest t=%d: %v", sec, err)
		}
	}
	if got := e0.Stats().ReadingsIngested; got != 0 {
		t.Errorf("node-0 engine ingested %d readings it does not own", got)
	}
	if got, want := e1.Stats().ReadingsIngested, 15; got != want {
		t.Errorf("node-1 engine ingested %d, want %d", got, want)
	}
	if got, want := n0.Now(), n1.Now(); got != want {
		t.Errorf("clocks disagree: node-0 %d node-1 %d", got, want)
	}
	known0, known1 := n0.KnownObjects(), n1.KnownObjects()
	if len(known0) != len(objs) || len(known1) != len(objs) {
		t.Errorf("cluster-wide objects: node-0 %v node-1 %v, want %d objects", known0, known1, len(objs))
	}
}

// TestIdempotentForwardRetry drops the reply of one forwarded ingest: the
// owner applied the batch, the forwarder retries, and the idempotency cache
// must re-ack instead of double-counting.
func TestIdempotentForwardRetry(t *testing.T) {
	net, n0, _, _, e1 := twoNodes(t, 7, func(c *cluster.Config) {
		c.Retry = cluster.RetryConfig{Max: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	})
	objs := objectsOwnedBy(1, 4)
	net.Install(netsim.Rule{From: "node-0", To: "node-1", DropReply: true, Times: 1})
	if err := n0.Ingest(1, readingsFor(objs, 1)); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if got, want := e1.Stats().ReadingsIngested, len(objs); got != want {
		t.Errorf("owner ingested %d readings, want %d (lost-reply retry must not double-count)", got, want)
	}
	st := n0.ClusterStatus()
	if st.Peers[0].AckedReadings != int64(len(objs)) {
		t.Errorf("forwarder acked %d, want %d", st.Peers[0].AckedReadings, len(objs))
	}
	if st.Peers[0].Retries == 0 {
		t.Error("no retry recorded; the drop-reply rule never bit")
	}
}

// TestDuplicateDeliveryDeduped duplicates a forwarded ingest in flight: the
// second application must hit the idempotency cache.
func TestDuplicateDeliveryDeduped(t *testing.T) {
	net, n0, _, _, e1 := twoNodes(t, 9, nil)
	objs := objectsOwnedBy(1, 4)
	net.Install(netsim.Rule{From: "node-0", To: "node-1", Duplicate: true, Times: 1})
	if err := n0.Ingest(1, readingsFor(objs, 1)); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if got, want := e1.Stats().ReadingsIngested, len(objs); got != want {
		t.Errorf("owner ingested %d readings, want %d (duplicate delivery must dedup)", got, want)
	}
}

// TestUnreachableOwnerDegrades kills node-1: forwarded ingest becomes a
// typed unreachable drop, queries answer partial naming the peer, and the
// breaker walks SUSPECT then DEAD; after heal the peer catches up.
func TestUnreachableOwnerDegrades(t *testing.T) {
	before := runtime.NumGoroutine()
	net, n0, _, e0, e1 := twoNodes(t, 11, nil)
	objs := append(objectsOwnedBy(0, 3), objectsOwnedBy(1, 3)...)
	kill := net.Kill("node-1")
	var sec model.Time
	for sec = 1; sec <= 4; sec++ {
		err := n0.Ingest(sec, readingsFor(objs, sec))
		var ie *ingest.Error
		if !errors.As(err, &ie) || ie.Kind != ingest.KindUnreachable {
			t.Fatalf("ingest t=%d: want typed unreachable error, got %v", sec, err)
		}
		if ie.Dropped != 3 {
			t.Errorf("t=%d: dropped %d, want 3", sec, ie.Dropped)
		}
	}
	if got := e0.Stats().Ingest.UnreachableReadings; got != 12 {
		t.Errorf("unreachable drops in stats = %d, want 12", got)
	}

	_, qerr := n0.RangeQueryContext(context.Background(), floorplan.DefaultOffice().Bounds())
	de, ok := cluster.IsDegraded(qerr)
	if !ok {
		t.Fatalf("mid-fault query error = %v, want DegradedError", qerr)
	}
	if len(de.Peers) != 1 || de.Peers[0] != "node-1" {
		t.Errorf("degraded peers = %v, want [node-1]", de.Peers)
	}
	if peers := n0.DegradedPeers(); len(peers) != 1 || peers[0] != "node-1" {
		t.Errorf("DegradedPeers() = %v, want [node-1]", peers)
	}

	kill.Clear()
	if healed := n0.ProbePeers(context.Background()); len(healed) != 1 {
		t.Fatalf("ProbePeers healed %v, want [node-1]", healed)
	}
	if err := n0.Ingest(sec, readingsFor(objs, sec)); err != nil {
		t.Fatalf("post-heal ingest: %v", err)
	}
	if got, want := e1.Now(), n0.Now(); got != want {
		t.Errorf("healed peer clock %d, want %d (catch-up seconds must replay)", got, want)
	}
	if peers := n0.DegradedPeers(); peers != nil {
		t.Errorf("DegradedPeers() after heal = %v, want none", peers)
	}
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
}

// shedTransport wraps a real transport and turns every evaluate RPC into an
// owner-side shed.
type shedTransport struct{ inner cluster.Transport }

func (s *shedTransport) Send(ctx context.Context, addr string, req *cluster.Request) (*cluster.Response, error) {
	if req.Op == cluster.OpEvaluate {
		return &cluster.Response{Shed: true, RetryAfterSeconds: 7}, nil
	}
	return s.inner.Send(ctx, addr, req)
}

// TestShedRelaysOwnersEstimate makes the remote owner shed every forwarded
// evaluate: the coordinator must return a typed ShedError carrying the
// OWNER's Retry-After estimate verbatim.
func TestShedRelaysOwnersEstimate(t *testing.T) {
	net, n0, _, _, _ := twoNodes(t, 13, func(c *cluster.Config) {
		c.Transport = &shedTransport{inner: net0Transport(c.Transport)}
	})
	_ = net
	objs := append(objectsOwnedBy(0, 3), objectsOwnedBy(1, 3)...)
	if err := n0.Ingest(1, readingsFor(objs, 1)); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	_, qerr := n0.RangeQueryContext(context.Background(), floorplan.DefaultOffice().Bounds())
	se, ok := cluster.IsShed(qerr)
	if !ok {
		t.Fatalf("query error = %v, want ShedError", qerr)
	}
	if se.Peer != "node-1" || se.RetryAfterSeconds != 7 {
		t.Errorf("shed = %+v, want peer node-1 retry 7s", se)
	}
}

// net0Transport is a helper for tests that wrap the generated transport.
func net0Transport(inner cluster.Transport) cluster.Transport { return inner }

// capturingTransport records the trace ID of every request it carries.
type capturingTransport struct {
	inner cluster.Transport
	ids   []uint64
}

func (c *capturingTransport) Send(ctx context.Context, addr string, req *cluster.Request) (*cluster.Response, error) {
	c.ids = append(c.ids, req.TraceID)
	return c.inner.Send(ctx, addr, req)
}

// TestTraceIDPropagates attaches a trace to the ingest context and checks
// every forward carried its ID.
func TestTraceIDPropagates(t *testing.T) {
	var cap0 *capturingTransport
	_, n0, _, _, _ := twoNodes(t, 15, func(c *cluster.Config) {
		if c.Self == "node-0" {
			cap0 = &capturingTransport{inner: c.Transport}
			c.Transport = cap0
		}
	})
	tracer := trace.New(trace.Config{Sample: 1})
	tc := tracer.Start("ingest")
	ctx := trace.With(context.Background(), tc)
	objs := objectsOwnedBy(1, 2)
	if err := n0.IngestContext(ctx, 1, readingsFor(objs, 1)); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	tracer.Finish(tc)
	if len(cap0.ids) == 0 {
		t.Fatal("no forwards captured")
	}
	for i, id := range cap0.ids {
		if id != tc.ID() {
			t.Errorf("forward %d carried trace ID %x, want %x", i, id, tc.ID())
		}
	}
}

// TestOwnershipStability is the membership property test: every node
// computes the identical ownership table regardless of peer-list order, and
// growing the membership from N to N+1 remaps at most ~1/(N+1) of the keys
// (jump-hash minimal disruption), with slack for sampling noise.
func TestOwnershipStability(t *testing.T) {
	const keys = 20000
	for n := 2; n <= 8; n++ {
		moved := 0
		for id := model.ObjectID(0); id < keys; id++ {
			if shardmap.Of(id, n) != shardmap.Of(id, n+1) {
				moved++
			}
		}
		frac := float64(moved) / keys
		want := 1.0 / float64(n+1)
		if frac > want*1.25 {
			t.Errorf("N=%d -> %d: moved %.4f of keys, want <= ~%.4f", n, n+1, frac, want)
		}
		if moved == 0 {
			t.Errorf("N=%d -> %d: no keys moved; growth would leave the new node empty", n, n+1)
		}
	}

	// Identical tables across nodes: construction sorts the membership, so
	// differently-ordered peer lists must agree on every owner.
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	cfg := engine.DefaultConfig()
	cfg.Particle.Ns = 8
	mkNode := func(self string, peers []string) *cluster.Node {
		eng, err := engine.New(plan, dep, cfg)
		if err != nil {
			t.Fatal(err)
		}
		node, err := cluster.New(eng, cluster.Config{
			Self: self, Peers: peers, Transport: netsim.New(1).Transport(self),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		return node
	}
	a := mkNode("alpha:1", []string{"gamma:3", "alpha:1", "beta:2"})
	b := mkNode("beta:2", []string{"beta:2", "gamma:3", "alpha:1"})
	for id := model.ObjectID(0); id < 1000; id++ {
		if a.Owner(id) != b.Owner(id) {
			t.Fatalf("object %d: node a says owner %s, node b says %s", id, a.Owner(id), b.Owner(id))
		}
	}
}
