package rfid

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/rng"
)

func TestDeployUniformDefaults(t *testing.T) {
	plan := floorplan.DefaultOffice()
	d := MustDeployUniform(plan, DefaultReaders, DefaultActivationRange)
	if d.NumReaders() != 19 {
		t.Fatalf("NumReaders = %d", d.NumReaders())
	}
	// All readers sit on hallway centerlines.
	for _, r := range d.Readers() {
		h := plan.Hallway(r.Hallway)
		if h.Center.DistToPoint(r.Pos) > 1e-9 {
			t.Errorf("reader %d at %v off hallway %d centerline", r.ID, r.Pos, r.Hallway)
		}
	}
	// Uniform spacing along the concatenation: 156/19 m apart.
	spacing := plan.TotalHallwayLength() / 19
	if spacing < 8 || spacing > 8.5 {
		t.Fatalf("unexpected spacing %v", spacing)
	}
}

func TestDeployUniformDisjointRanges(t *testing.T) {
	plan := floorplan.DefaultOffice()
	// With the default 2 m range and ~8.2 m spacing, ranges are disjoint.
	d := MustDeployUniform(plan, DefaultReaders, DefaultActivationRange)
	if !d.Disjoint() {
		t.Error("default deployment has overlapping activation ranges")
	}
	// With a huge range they overlap.
	d2 := MustDeployUniform(plan, DefaultReaders, 10)
	if d2.Disjoint() {
		t.Error("10 m ranges reported disjoint")
	}
}

func TestDeployUniformValidation(t *testing.T) {
	plan := floorplan.DefaultOffice()
	if _, err := DeployUniform(plan, 0, 2); err == nil {
		t.Error("expected error for zero readers")
	}
	if _, err := DeployUniform(plan, 5, 0); err == nil {
		t.Error("expected error for zero range")
	}
}

func TestCoveringReader(t *testing.T) {
	d := NewDeployment([]Reader{
		{Pos: geom.Pt(10, 10), Range: 2},
		{Pos: geom.Pt(20, 10), Range: 2},
	})
	if id, ok := d.CoveringReader(geom.Pt(11, 10)); !ok || id != 0 {
		t.Errorf("CoveringReader = %v, %v", id, ok)
	}
	if id, ok := d.CoveringReader(geom.Pt(19, 10)); !ok || id != 1 {
		t.Errorf("CoveringReader = %v, %v", id, ok)
	}
	if _, ok := d.CoveringReader(geom.Pt(15, 10)); ok {
		t.Error("gap point reported covered")
	}
}

func TestCoveringReaderNearestWins(t *testing.T) {
	d := NewDeployment([]Reader{
		{Pos: geom.Pt(10, 10), Range: 5},
		{Pos: geom.Pt(14, 10), Range: 5},
	})
	if id, _ := d.CoveringReader(geom.Pt(11, 10)); id != 0 {
		t.Errorf("nearest reader = %v, want 0", id)
	}
	if id, _ := d.CoveringReader(geom.Pt(13.5, 10)); id != 1 {
		t.Errorf("nearest reader = %v, want 1", id)
	}
}

func TestReaderCovers(t *testing.T) {
	r := Reader{Pos: geom.Pt(0, 0), Range: 2}
	if !r.Covers(geom.Pt(1, 1)) || !r.Covers(geom.Pt(2, 0)) {
		t.Error("Covers failed inside range")
	}
	if r.Covers(geom.Pt(2, 1)) {
		t.Error("Covers accepted point outside range")
	}
	if r.Circle().R != 2 {
		t.Error("Circle radius")
	}
}

func TestNewDeploymentReassignsIDs(t *testing.T) {
	d := NewDeployment([]Reader{
		{ID: 77, Pos: geom.Pt(0, 0), Range: 1},
		{ID: 99, Pos: geom.Pt(10, 0), Range: 1},
	})
	for i, r := range d.Readers() {
		if r.ID != model.ReaderID(i) {
			t.Errorf("reader %d has ID %d", i, r.ID)
		}
	}
	if d.Reader(1).Pos != geom.Pt(10, 0) {
		t.Error("Reader(1) wrong")
	}
}

func TestSensorSecondMissProb(t *testing.T) {
	s := &Sensor{PerSampleDetection: 0.7, SamplesPerSecond: 10}
	want := math.Pow(0.3, 10)
	if got := s.SecondMissProb(); math.Abs(got-want) > 1e-15 {
		t.Errorf("SecondMissProb = %v, want %v", got, want)
	}
}

func TestSensorReadSecondOutsideRangeSilent(t *testing.T) {
	d := NewDeployment([]Reader{{Pos: geom.Pt(0, 0), Range: 2}})
	s := NewSensor(d)
	r := rng.New(1)
	if got := s.ReadSecond(r, 1, geom.Pt(50, 50), 0); got != nil {
		t.Errorf("readings outside range: %v", got)
	}
}

func TestSensorReadSecondInsideRangeRate(t *testing.T) {
	d := NewDeployment([]Reader{{Pos: geom.Pt(0, 0), Range: 2}})
	s := NewSensor(d)
	r := rng.New(2)
	totalReads := 0
	seconds := 2000
	for i := 0; i < seconds; i++ {
		reads := s.ReadSecond(r, 1, geom.Pt(1, 0), model.Time(i))
		totalReads += len(reads)
		for _, rd := range reads {
			if rd.Object != 1 || rd.Reader != 0 || rd.Time != model.Time(i) {
				t.Fatalf("bad reading %v", rd)
			}
		}
	}
	// Expected reads per second = 10 * 0.7 = 7.
	rate := float64(totalReads) / float64(seconds)
	if math.Abs(rate-7) > 0.2 {
		t.Errorf("read rate = %v, want ~7", rate)
	}
}

func TestSensorFullSecondMissesAreRare(t *testing.T) {
	d := NewDeployment([]Reader{{Pos: geom.Pt(0, 0), Range: 2}})
	s := NewSensor(d)
	r := rng.New(3)
	misses := 0
	const seconds = 20000
	for i := 0; i < seconds; i++ {
		if len(s.ReadSecond(r, 1, geom.Pt(1, 0), model.Time(i))) == 0 {
			misses++
		}
	}
	// Expected miss rate ~6e-6; with 20000 trials, even 3 misses would be
	// far above expectation.
	if misses > 2 {
		t.Errorf("full-second misses = %d, want ~0", misses)
	}
}

func TestSensorLowRateHasMisses(t *testing.T) {
	d := NewDeployment([]Reader{{Pos: geom.Pt(0, 0), Range: 2}})
	s := &Sensor{Deployment: d, PerSampleDetection: 0.1, SamplesPerSecond: 1}
	r := rng.New(4)
	misses := 0
	const seconds = 10000
	for i := 0; i < seconds; i++ {
		if len(s.ReadSecond(r, 1, geom.Pt(1, 0), model.Time(i))) == 0 {
			misses++
		}
	}
	rate := float64(misses) / seconds
	if math.Abs(rate-0.9) > 0.02 {
		t.Errorf("miss rate = %v, want ~0.9", rate)
	}
}
