package rfid

import (
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/walkgraph"
)

// coveringReaderBrute is the pre-index linear scan, kept verbatim as the
// reference the grid and interval answers must match bit-for-bit.
func coveringReaderBrute(d *Deployment, p geom.Point) (model.ReaderID, bool) {
	best := model.NoReader
	bestDist := 0.0
	for _, r := range d.readers {
		dist := r.Pos.Dist(p)
		if dist <= r.Range && (best == model.NoReader || dist < bestDist) {
			best, bestDist = r.ID, dist
		}
	}
	return best, best != model.NoReader
}

// randomDeployment builds a random floorplan, its walking graph, and a
// uniform deployment whose size and range vary with the trial index.
func randomDeployment(t *testing.T, src *rng.Source, trial int) (*walkgraph.Graph, *Deployment) {
	t.Helper()
	plan := floorplan.RandomOffice(src, 1+trial%3)
	g, err := walkgraph.Build(plan)
	if err != nil {
		t.Fatal(err)
	}
	readers := 3 + trial%17
	actRange := 1.0 + 0.1*float64(trial%20)
	dep, err := DeployUniform(plan, readers, actRange)
	if err != nil {
		t.Fatal(err)
	}
	return g, dep
}

// TestCoverageMatchesGeometry is the equivalence property test of the edge-
// coverage index: on 50 random floorplans, indexed coverage answers
// (covered by reader r? covered by any? which reader wins?) must equal the
// geometric implementation exactly, for uniformly random offsets and for
// offsets engineered to sit right at interval boundaries.
func TestCoverageMatchesGeometry(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		src := rng.New(int64(1000 + trial))
		g, dep := randomDeployment(t, src, trial)
		cov := BuildCoverage(g, dep)

		check := func(loc walkgraph.Location) {
			t.Helper()
			p := g.Point(loc)
			for _, r := range dep.Readers() {
				want := r.Covers(p)
				if got := cov.ReaderCovers(r.ID, loc); got != want {
					t.Fatalf("trial %d: ReaderCovers(%d, %v) = %v, geometric = %v",
						trial, r.ID, loc, got, want)
				}
			}
			wantID, wantOK := coveringReaderBrute(dep, p)
			if gotOK := cov.AnyReaderCovers(loc); gotOK != wantOK {
				t.Fatalf("trial %d: AnyReaderCovers(%v) = %v, geometric = %v",
					trial, loc, gotOK, wantOK)
			}
			gotID, gotOK := cov.CoveringReader(loc)
			if gotID != wantID || gotOK != wantOK {
				t.Fatalf("trial %d: CoveringReader(%v) = (%d, %v), geometric = (%d, %v)",
					trial, loc, gotID, gotOK, wantID, wantOK)
			}
		}

		// Uniformly random locations, including offsets slightly out of
		// range to exercise the endpoint clamping.
		for i := 0; i < 200; i++ {
			e := g.Edges()[src.Intn(g.NumEdges())]
			check(walkgraph.Location{Edge: e.ID, Offset: src.Uniform(-0.5, e.Length+0.5)})
		}

		// Boundary-targeted locations: offsets at and within a few float
		// steps of every reader's activation interval endpoints, where the
		// index must fall back to the exact geometric test.
		for _, r := range dep.Readers() {
			circle := r.Circle()
			for _, e := range g.Edges() {
				t0, t1, ok := circle.SegmentIntersection(g.EdgeSegment(e.ID))
				if !ok {
					continue
				}
				for _, tt := range []float64{t0, t1} {
					base := tt * e.Length
					for _, d := range []float64{0, 1e-12, -1e-12, 1e-9, -1e-9, 1e-4, -1e-4} {
						check(walkgraph.Location{Edge: e.ID, Offset: base + d})
					}
				}
			}
		}
	}
}

// TestCoveringReaderGridMatchesBrute checks the reader grid against the
// linear scan on arbitrary 2-D points (the sensor path's queries are true
// positions off the hallway centerline, not graph locations).
func TestCoveringReaderGridMatchesBrute(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		src := rng.New(int64(2000 + trial))
		_, dep := randomDeployment(t, src, trial)
		if dep.grid == nil {
			t.Fatalf("trial %d: constructor did not build the reader grid", trial)
		}
		bounds := dep.grid.bounds
		for i := 0; i < 500; i++ {
			// Sample beyond the grid bounds too: outside points must come
			// back uncovered.
			p := geom.Pt(
				src.Uniform(bounds.Min.X-5, bounds.Max.X+5),
				src.Uniform(bounds.Min.Y-5, bounds.Max.Y+5),
			)
			wantID, wantOK := coveringReaderBrute(dep, p)
			gotID, gotOK := dep.CoveringReader(p)
			if gotID != wantID || gotOK != wantOK {
				t.Fatalf("trial %d: CoveringReader(%v) = (%d, %v), brute = (%d, %v)",
					trial, p, gotID, gotOK, wantID, wantOK)
			}
		}
		// Points right on activation circle boundaries.
		for _, r := range dep.Readers() {
			for _, d := range []float64{r.Range, r.Range - 1e-12, r.Range + 1e-12} {
				p := geom.Pt(r.Pos.X+d, r.Pos.Y)
				wantID, wantOK := coveringReaderBrute(dep, p)
				gotID, gotOK := dep.CoveringReader(p)
				if gotID != wantID || gotOK != wantOK {
					t.Fatalf("trial %d: boundary CoveringReader(%v) = (%d, %v), brute = (%d, %v)",
						trial, p, gotID, gotOK, wantID, wantOK)
				}
			}
		}
	}
}

// TestInitIntervalsMatchSeedSemantics pins ComputeInitIntervals (and the
// cached copies served by the index) to the original InitAt interval
// computation, re-implemented here verbatim.
func TestInitIntervalsMatchSeedSemantics(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		src := rng.New(int64(3000 + trial))
		g, dep := randomDeployment(t, src, trial)
		cov := BuildCoverage(g, dep)
		for _, r := range dep.Readers() {
			circle := r.Circle()
			var wantIvs []InitInterval
			wantTotal := 0.0
			for _, e := range g.Edges() {
				t0, t1, ok := circle.SegmentIntersection(g.EdgeSegment(e.ID))
				if !ok {
					continue
				}
				lo, hi := t0*e.Length, t1*e.Length
				if e.Kind == walkgraph.LinkEdge {
					continue
				}
				if e.Kind == walkgraph.DoorEdge && hi > e.DoorAt {
					hi = e.DoorAt
				}
				if hi-lo <= 0 {
					continue
				}
				wantIvs = append(wantIvs, InitInterval{Edge: e.ID, Lo: lo, Hi: hi, CumStart: wantTotal})
				wantTotal += hi - lo
			}
			gotIvs, gotTotal := cov.InitIntervals(r.ID)
			if gotTotal != wantTotal || len(gotIvs) != len(wantIvs) {
				t.Fatalf("trial %d reader %d: intervals (%d, total %v), want (%d, total %v)",
					trial, r.ID, len(gotIvs), gotTotal, len(wantIvs), wantTotal)
			}
			for i := range wantIvs {
				if gotIvs[i] != wantIvs[i] {
					t.Fatalf("trial %d reader %d: interval %d = %+v, want %+v",
						trial, r.ID, i, gotIvs[i], wantIvs[i])
				}
			}
		}
	}
}
