package rfid

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/rng"
)

func twoReaderSensor() *Sensor {
	d := NewDeployment([]Reader{
		{Pos: geom.Pt(0, 0), Range: 2},
		{Pos: geom.Pt(10, 0), Range: 2},
	})
	return NewSensor(d)
}

func TestOfflineReaderSilent(t *testing.T) {
	s := twoReaderSensor()
	src := rng.New(1)
	s.SetOffline(0, true)
	if !s.Offline(0) || s.Offline(1) {
		t.Fatal("offline bookkeeping wrong")
	}
	for i := 0; i < 100; i++ {
		if got := s.ReadSecond(src, 1, geom.Pt(1, 0), model.Time(i)); got != nil {
			t.Fatalf("offline reader produced readings: %v", got)
		}
	}
	// The other reader still works.
	total := 0
	for i := 0; i < 100; i++ {
		total += len(s.ReadSecond(src, 1, geom.Pt(9, 0), model.Time(i)))
	}
	if total == 0 {
		t.Error("online reader silent")
	}
	// Restore.
	s.SetOffline(0, false)
	total = 0
	for i := 0; i < 100; i++ {
		total += len(s.ReadSecond(src, 1, geom.Pt(1, 0), model.Time(i)))
	}
	if total == 0 {
		t.Error("restored reader still silent")
	}
}

func TestGhostReads(t *testing.T) {
	s := twoReaderSensor()
	s.GhostReadProb = 0.5
	src := rng.New(2)
	ghost := 0
	const seconds = 2000
	for i := 0; i < seconds; i++ {
		for _, r := range s.ReadSecond(src, 1, geom.Pt(1, 0), model.Time(i)) {
			if r.Reader == 1 {
				ghost++
			}
		}
	}
	// Roughly one ghost read on half the seconds.
	if ghost < 800 || ghost > 1200 {
		t.Errorf("ghost reads = %d over %d s, want ~1000", ghost, seconds)
	}
	// Ghosts never outvote the true reader in a second: samples ~7 vs 1.
}

func TestGhostReadsDisabledByDefault(t *testing.T) {
	s := twoReaderSensor()
	src := rng.New(3)
	for i := 0; i < 500; i++ {
		for _, r := range s.ReadSecond(src, 1, geom.Pt(1, 0), model.Time(i)) {
			if r.Reader != 0 {
				t.Fatalf("unexpected ghost read from %d", r.Reader)
			}
		}
	}
}

func TestGhostReadsToOfflineReaderSuppressed(t *testing.T) {
	s := twoReaderSensor()
	s.GhostReadProb = 1.0
	s.SetOffline(1, true)
	src := rng.New(4)
	for i := 0; i < 200; i++ {
		for _, r := range s.ReadSecond(src, 1, geom.Pt(1, 0), model.Time(i)) {
			if r.Reader == 1 {
				t.Fatal("ghost read from offline reader")
			}
		}
	}
}
