package rfid

import (
	"encoding/json"
	"testing"

	"repro/internal/floorplan"
)

// FuzzDecodeDeployment hardens the deployment decoder: arbitrary input must
// either fail cleanly or yield a usable deployment — never panic.
func FuzzDecodeDeployment(f *testing.F) {
	plan := floorplan.DefaultOffice()
	valid, err := json.Marshal(MustDeployUniform(plan, DefaultReaders, DefaultActivationRange))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"readers":[{"pos":[10,12],"range":2,"kind":"presence"}],"pairs":[[0,0]]}`))
	f.Add([]byte(`{"readers":[{"pos":[1e308,-1e308],"range":1}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		dep, err := DecodeDeployment(data, plan)
		if err != nil {
			return
		}
		// Usable: every reader addressable, CoveringReader never panics.
		for _, r := range dep.Readers() {
			_ = dep.Reader(r.ID)
		}
		dep.CoveringReader(plan.Bounds().Center())
	})
}
