// Package rfid simulates the RFID sensing substrate: readers deployed along
// hallways, their activation ranges, and the noisy raw read stream they
// produce. Raw RFID data is inherently unreliable — false negatives arise
// from RF interference, limited detection range, and tag orientation — so
// the sensor model makes each sub-second sample an independent Bernoulli
// detection; the collector's one-second aggregation then recovers most
// misses, exactly as the paper argues.
package rfid

import (
	"fmt"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/rng"
)

// ReaderKind classifies positioning devices following the paper's taxonomy
// (Section 3.3).
type ReaderKind int

const (
	// Partitioning readers span the full hallway width: an object cannot
	// cross the activation range undetected, so the device partitions the
	// space into cells (the paper's undirected partitioning device; two
	// paired partitioning readers form a directed partitioning device).
	Partitioning ReaderKind = iota
	// Presence readers sense objects within range but do not block
	// movement: objects can pass around them undetected, so they do not
	// partition the space (the paper's presence device, e.g. reader3 in its
	// Figure 2).
	Presence
)

// String implements fmt.Stringer.
func (k ReaderKind) String() string {
	switch k {
	case Partitioning:
		return "partitioning"
	case Presence:
		return "presence"
	default:
		return fmt.Sprintf("ReaderKind(%d)", int(k))
	}
}

// Reader is a deployed RFID reader. Readers sit on hallway centerlines and
// partitioning readers' activation ranges cover the full hallway width.
type Reader struct {
	ID      model.ReaderID
	Pos     geom.Point
	Hallway floorplan.HallwayID
	// Range is the activation (detection) radius in meters.
	Range float64
	// Kind distinguishes partitioning from presence devices. The zero value
	// is Partitioning, the paper's default deployment.
	Kind ReaderKind
}

// Covers reports whether a point is inside the reader's activation range.
func (r Reader) Covers(p geom.Point) bool {
	return r.Pos.Dist(p) <= r.Range
}

// Circle returns the reader's activation disk.
func (r Reader) Circle() geom.Circle { return geom.Circle{C: r.Pos, R: r.Range} }

// DirectedPair marks two partitioning readers deployed side by side as a
// directed partitioning device: the order in which a tag is seen at Entry
// and then Exit reveals its moving direction (the paper's reader1/reader1'
// example).
type DirectedPair struct {
	Entry, Exit model.ReaderID
}

// Deployment is an immutable set of deployed readers.
type Deployment struct {
	readers []Reader
	pairs   []DirectedPair
	// grid accelerates CoveringReader: readers bucketed by the cells their
	// activation disks overlap. Built once by the constructors; nil for
	// zero-value Deployments, which fall back to the linear scan.
	grid *readerGrid
}

// readerGrid is a uniform grid over the union of all activation disks. Each
// cell lists, ascending by ID, every reader whose disk touches the cell, so
// a point query tests only the handful of readers near it instead of the
// whole deployment — while selecting the winner with the exact comparison
// logic of the linear scan, keeping results bit-for-bit identical.
type readerGrid struct {
	bounds geom.Rect
	cell   float64
	nx, ny int
	cells  [][]model.ReaderID
}

// buildGrid indexes the deployment's readers. Cell size is twice the
// largest activation range (at least one meter), so disks overlap only a
// few cells each.
func (d *Deployment) buildGrid() {
	d.grid = nil
	if len(d.readers) == 0 {
		return
	}
	maxR := 0.0
	bounds := geom.Rect{Min: d.readers[0].Pos, Max: d.readers[0].Pos}
	for _, r := range d.readers {
		if r.Range > maxR {
			maxR = r.Range
		}
		bounds = bounds.Union(geom.RectFromCorners(
			geom.Pt(r.Pos.X-r.Range, r.Pos.Y-r.Range),
			geom.Pt(r.Pos.X+r.Range, r.Pos.Y+r.Range),
		))
	}
	cell := 2 * maxR
	if cell < 1 {
		cell = 1
	}
	g := &readerGrid{
		bounds: bounds,
		cell:   cell,
		nx:     int(bounds.Width()/cell) + 1,
		ny:     int(bounds.Height()/cell) + 1,
	}
	g.cells = make([][]model.ReaderID, g.nx*g.ny)
	for _, r := range d.readers {
		// Insert the reader into every cell its disk could reach; iterating
		// readers in ID order keeps each cell's candidate list ascending.
		ix0, iy0 := g.cellIndex(geom.Pt(r.Pos.X-r.Range, r.Pos.Y-r.Range))
		ix1, iy1 := g.cellIndex(geom.Pt(r.Pos.X+r.Range, r.Pos.Y+r.Range))
		for ix := ix0; ix <= ix1; ix++ {
			for iy := iy0; iy <= iy1; iy++ {
				rect := geom.RectWH(g.bounds.Min.X+float64(ix)*cell,
					g.bounds.Min.Y+float64(iy)*cell, cell, cell)
				// The small slack absorbs the Eps tolerance of Rect.Contains
				// so boundary points still find every candidate.
				if rect.DistToPoint(r.Pos) <= r.Range+1e-6 {
					i := ix*g.ny + iy
					g.cells[i] = append(g.cells[i], r.ID)
				}
			}
		}
	}
	d.grid = g
}

// cellIndex maps a point to grid coordinates, clamped into range.
func (g *readerGrid) cellIndex(p geom.Point) (ix, iy int) {
	ix = int((p.X - g.bounds.Min.X) / g.cell)
	iy = int((p.Y - g.bounds.Min.Y) / g.cell)
	if ix < 0 {
		ix = 0
	} else if ix >= g.nx {
		ix = g.nx - 1
	}
	if iy < 0 {
		iy = 0
	} else if iy >= g.ny {
		iy = g.ny - 1
	}
	return ix, iy
}

// candidates returns the readers that could cover p, or nil when p is
// certainly uncovered (outside every activation disk's bounding box).
func (g *readerGrid) candidates(p geom.Point) []model.ReaderID {
	if !g.bounds.Contains(p) {
		return nil
	}
	ix, iy := g.cellIndex(p)
	return g.cells[ix*g.ny+iy]
}

// DefaultReaders is the paper's reader count: 19 readers deployed on
// hallways with uniform spacing.
const DefaultReaders = 19

// DefaultActivationRange is the paper's default activation range (Table 2).
const DefaultActivationRange = 2.0

// DeployUniform places n readers along the concatenated hallway centerlines
// of the plan at uniform spacing, each with the given activation range.
func DeployUniform(plan *floorplan.Plan, n int, activationRange float64) (*Deployment, error) {
	if n <= 0 {
		return nil, fmt.Errorf("rfid: reader count must be positive, got %d", n)
	}
	if activationRange <= 0 {
		return nil, fmt.Errorf("rfid: activation range must be positive, got %v", activationRange)
	}
	total := plan.TotalHallwayLength()
	spacing := total / float64(n)
	d := &Deployment{}
	for i := 0; i < n; i++ {
		dist := (float64(i) + 0.5) * spacing
		pos, hall := plan.PointOnHallway(dist)
		d.readers = append(d.readers, Reader{
			ID:      model.ReaderID(i),
			Pos:     pos,
			Hallway: hall,
			Range:   activationRange,
		})
	}
	d.buildGrid()
	return d, nil
}

// MustDeployUniform is DeployUniform for known-valid parameters.
func MustDeployUniform(plan *floorplan.Plan, n int, activationRange float64) *Deployment {
	d, err := DeployUniform(plan, n, activationRange)
	if err != nil {
		panic(err)
	}
	return d
}

// NewDeployment builds a deployment from an explicit reader list, for
// irregular layouts and tests. Reader IDs are reassigned to slice order.
func NewDeployment(readers []Reader) *Deployment {
	d := &Deployment{readers: make([]Reader, len(readers))}
	copy(d.readers, readers)
	for i := range d.readers {
		d.readers[i].ID = model.ReaderID(i)
	}
	d.buildGrid()
	return d
}

// AddDirectedPair declares two existing partitioning readers a directed
// partitioning device. It returns an error for unknown or non-partitioning
// readers.
func (d *Deployment) AddDirectedPair(entry, exit model.ReaderID) error {
	for _, id := range []model.ReaderID{entry, exit} {
		if int(id) < 0 || int(id) >= len(d.readers) {
			return fmt.Errorf("rfid: directed pair references unknown reader %d", id)
		}
		if d.readers[id].Kind != Partitioning {
			return fmt.Errorf("rfid: directed pair reader %d is not a partitioning device", id)
		}
	}
	if entry == exit {
		return fmt.Errorf("rfid: directed pair must use two distinct readers")
	}
	d.pairs = append(d.pairs, DirectedPair{Entry: entry, Exit: exit})
	return nil
}

// DirectedPairs returns the declared directed partitioning devices.
func (d *Deployment) DirectedPairs() []DirectedPair { return d.pairs }

// PairFor returns the directed pair that (a, b) traverses, in either
// orientation, and ok=false when the two readers are not paired.
func (d *Deployment) PairFor(a, b model.ReaderID) (DirectedPair, bool) {
	for _, p := range d.pairs {
		if (p.Entry == a && p.Exit == b) || (p.Entry == b && p.Exit == a) {
			return p, true
		}
	}
	return DirectedPair{}, false
}

// Readers returns all readers indexed by ReaderID. Must not be modified.
func (d *Deployment) Readers() []Reader { return d.readers }

// NumReaders returns the reader count.
func (d *Deployment) NumReaders() int { return len(d.readers) }

// Reader returns the reader with the given ID.
func (d *Deployment) Reader(id model.ReaderID) Reader { return d.readers[id] }

// CoveringReader returns the reader whose activation range covers p. When
// ranges overlap, the nearest reader wins. ok is false if no reader covers p.
// Constructor-built deployments answer from the reader grid, testing only
// the readers near p; the result is identical to the full scan.
func (d *Deployment) CoveringReader(p geom.Point) (model.ReaderID, bool) {
	best := model.NoReader
	bestDist := 0.0
	if d.grid != nil {
		for _, id := range d.grid.candidates(p) {
			r := &d.readers[id]
			dist := r.Pos.Dist(p)
			if dist <= r.Range && (best == model.NoReader || dist < bestDist) {
				best, bestDist = r.ID, dist
			}
		}
		return best, best != model.NoReader
	}
	for _, r := range d.readers {
		dist := r.Pos.Dist(p)
		if dist <= r.Range && (best == model.NoReader || dist < bestDist) {
			best, bestDist = r.ID, dist
		}
	}
	return best, best != model.NoReader
}

// CoveringReaderExcept is CoveringReader restricted to readers whose skip
// flag is false. A nil skip is the unrestricted query. The filter's negative
// update uses it so silence from an unhealthy reader is not treated as
// evidence.
func (d *Deployment) CoveringReaderExcept(p geom.Point, skip []bool) (model.ReaderID, bool) {
	if skip == nil {
		return d.CoveringReader(p)
	}
	best := model.NoReader
	bestDist := 0.0
	if d.grid != nil {
		for _, id := range d.grid.candidates(p) {
			if skip[id] {
				continue
			}
			r := &d.readers[id]
			dist := r.Pos.Dist(p)
			if dist <= r.Range && (best == model.NoReader || dist < bestDist) {
				best, bestDist = r.ID, dist
			}
		}
		return best, best != model.NoReader
	}
	for _, r := range d.readers {
		if skip[r.ID] {
			continue
		}
		dist := r.Pos.Dist(p)
		if dist <= r.Range && (best == model.NoReader || dist < bestDist) {
			best, bestDist = r.ID, dist
		}
	}
	return best, best != model.NoReader
}

// Disjoint reports whether all activation ranges are pairwise disjoint, the
// paper's usual deployment assumption for cost reasons.
func (d *Deployment) Disjoint() bool {
	for i := range d.readers {
		for j := i + 1; j < len(d.readers); j++ {
			a, b := d.readers[i], d.readers[j]
			if a.Pos.Dist(b.Pos) < a.Range+b.Range {
				return false
			}
		}
	}
	return true
}

// Sensor is the noise model of the read process: every reader samples tags
// SamplesPerSecond times a second and each sample independently detects a
// covered tag with probability PerSampleDetection. Optional impairments
// model the messier failure modes of real deployments: ghost reads (false
// positives, e.g. multipath reflections briefly lighting up a neighboring
// reader) and readers dropping offline entirely.
type Sensor struct {
	Deployment *Deployment
	// PerSampleDetection is the probability a single read attempt detects a
	// covered tag (false negatives come from 1 minus this).
	PerSampleDetection float64
	// SamplesPerSecond is the reader sampling rate (readers typically take
	// tens of samples per second).
	SamplesPerSecond int
	// GhostReadProb is the per-second probability that a covered tag also
	// produces a single spurious read at the nearest other reader. The
	// collector's majority aggregation absorbs these. Zero disables.
	GhostReadProb float64
	// offline marks readers that currently produce no readings at all.
	offline map[model.ReaderID]bool
}

// Default sensor parameters: a 70% single-read detection rate at 10 samples
// per second makes a full one-second miss of a covered tag vanishingly rare
// (0.3^10 ~ 6e-6), matching the paper's aggregation argument.
const (
	DefaultPerSampleDetection = 0.7
	DefaultSamplesPerSecond   = 10
)

// NewSensor returns a Sensor with the default noise parameters.
func NewSensor(d *Deployment) *Sensor {
	return &Sensor{
		Deployment:         d,
		PerSampleDetection: DefaultPerSampleDetection,
		SamplesPerSecond:   DefaultSamplesPerSecond,
	}
}

// SecondMissProb returns the probability that a covered tag produces no raw
// reading at all during one second.
func (s *Sensor) SecondMissProb() float64 {
	miss := 1.0
	for i := 0; i < s.SamplesPerSecond; i++ {
		miss *= 1 - s.PerSampleDetection
	}
	return miss
}

// SetOffline marks a reader as failed (producing no readings) or restores
// it. Use it to inject reader outages into a simulation.
func (s *Sensor) SetOffline(id model.ReaderID, offline bool) {
	if s.offline == nil {
		s.offline = make(map[model.ReaderID]bool)
	}
	if offline {
		s.offline[id] = true
	} else {
		delete(s.offline, id)
	}
}

// Offline reports whether a reader is currently failed.
func (s *Sensor) Offline(id model.ReaderID) bool { return s.offline[id] }

// ReadSecond simulates one second of reads for an object at position pos,
// returning the raw readings generated (zero or more, one per successful
// sample, all stamped with time t), including any injected impairments.
func (s *Sensor) ReadSecond(r *rng.Source, obj model.ObjectID, pos geom.Point, t model.Time) []model.RawReading {
	reader, ok := s.Deployment.CoveringReader(pos)
	if !ok || s.offline[reader] {
		return nil
	}
	var out []model.RawReading
	for i := 0; i < s.SamplesPerSecond; i++ {
		if r.Bool(s.PerSampleDetection) {
			out = append(out, model.RawReading{Object: obj, Reader: reader, Time: t})
		}
	}
	if s.GhostReadProb > 0 && len(out) > 0 && r.Bool(s.GhostReadProb) {
		if ghost, ok := s.nearestOtherReader(reader, pos); ok && !s.offline[ghost] {
			out = append(out, model.RawReading{Object: obj, Reader: ghost, Time: t})
		}
	}
	return out
}

// nearestOtherReader returns the online reader other than exclude closest
// to pos.
func (s *Sensor) nearestOtherReader(exclude model.ReaderID, pos geom.Point) (model.ReaderID, bool) {
	best := model.NoReader
	bestDist := 0.0
	for _, r := range s.Deployment.Readers() {
		if r.ID == exclude {
			continue
		}
		d := r.Pos.Dist(pos)
		if best == model.NoReader || d < bestDist {
			best, bestDist = r.ID, d
		}
	}
	return best, best != model.NoReader
}
