package rfid

import (
	"math"

	"repro/internal/model"
	"repro/internal/walkgraph"
)

// This file is the batch entry point of the edge-coverage index: the SoA
// particle kernel hands over whole particle batches as flat (edge, offset)
// arrays and receives the detectability predicate per particle, instead of
// asking one coverage question per particle through a method call. The
// predicates answered here are exactly the ones the filter's reweight and
// negative-update loops need — "consistent with a detection by reader r"
// and "consistent with silence" — including the structural exclusions
// (rooms and stairwells are shielded from readers) and the guard-fringe
// fallback to exact geometry, so the results are bit-for-bit identical to
// the per-particle scalar path.

// FlatSpans is the CSR layout of the span table: edge e's coverage spans are
// Spans[Start[e]:Start[e+1]], ascending by reader ID within each edge. The
// flat layout replaces the slice-of-slices SpanTable with one contiguous
// array, which is what lets the batch scans below stream through memory.
//
// The flat copy bakes the structural exclusions of the scalar predicate into
// the span bounds themselves: spans on stairwell links are dropped, and every
// upper bound is clamped below the edge's room boundary (DoorAt), so the
// per-particle loop tests one interval instead of re-deriving edge kind and
// room membership. Offsets are clamped to [0, Length] before the interval
// test, exactly like the scalar path, and the clamped value only ever feeds
// comparisons, so the fold changes no observable result.
//
// ByReader additionally inverts the table for the single-reader predicate:
// ByReader[r][e] is the index into Spans of reader r's span on edge e, or -1.
// There is at most one span per (edge, reader) pair — a circle's coverage of
// a segment is one interval — so the batched reweight resolves its span with
// one load instead of scanning the edge's span list for the reader.
type FlatSpans struct {
	Start    []int32
	Spans    []CoverSpan
	ByReader [][]int32
}

// FlatSpans returns the CSR span table, building it on first use (callers
// construct the Coverage once per system; the engine calls this at build
// time, so the lazy build is never concurrent). The result is shared and
// must not be modified.
func (c *Coverage) FlatSpans() *FlatSpans {
	if c.flat == nil {
		f := &FlatSpans{Start: make([]int32, len(c.edges)+1)}
		total := 0
		for _, spans := range c.edges {
			total += len(spans)
		}
		f.Spans = make([]CoverSpan, 0, total)
		for e, spans := range c.edges {
			f.Start[e] = int32(len(f.Spans))
			if c.et.Kind[e] == walkgraph.LinkEdge {
				continue // stairwell links are never detectable
			}
			// Room interiors are never detectable: offsets at or beyond
			// DoorAt are out, so the largest admissible clamped offset is
			// the predecessor of DoorAt (DoorAt is +Inf on doorless edges).
			doorHi := math.Nextafter(c.et.DoorAt[e], math.Inf(-1))
			for _, s := range spans {
				if s.OuterHi > doorHi {
					s.OuterHi = doorHi
				}
				if s.InnerHi > doorHi {
					s.InnerHi = doorHi
				}
				f.Spans = append(f.Spans, s)
			}
		}
		f.Start[len(c.edges)] = int32(len(f.Spans))
		f.ByReader = make([][]int32, len(c.rds))
		for r := range f.ByReader {
			row := make([]int32, len(c.edges))
			for e := range row {
				row[e] = -1
			}
			f.ByReader[r] = row
		}
		for e := 0; e < len(c.edges); e++ {
			for si := f.Start[e]; si < f.Start[e+1]; si++ {
				f.ByReader[f.Spans[si].Reader][e] = si
			}
		}
		c.flat = f
	}
	return c.flat
}

// BatchDetectableBy fills out[i] with whether a particle on edge[i] at
// offset off[i] is consistent with a detection by reader id: inside the
// reader's activation range, outside every room, and not on a stairwell
// link. It is the batched form of the reweight predicate, bit-for-bit
// identical to the scalar span scan (inner interval certain, fringe falls
// back to exact geometry). All slices must have equal length.
func (c *Coverage) BatchDetectableBy(id model.ReaderID, edge []int32, off []float64, out []bool) {
	fs := c.FlatSpans()
	byEdge := fs.ByReader[id]
	spans := fs.Spans
	length := c.et.Length
	r := &c.dep.readers[id]
	off = off[:len(edge)]
	out = out[:len(edge)]
	for i, e := range edge {
		o := off[i]
		out[i] = false
		si := byEdge[e]
		if si < 0 {
			continue
		}
		// The clamp and the interval tests compile branch-free (min/max and
		// SETcc composition): whether a particle sits inside the span is
		// close to a coin flip in a converged cloud, so data branches here
		// would mispredict constantly. The clamped value is only ever
		// compared, never used in arithmetic, so min/max zero-sign
		// differences from the scalar path's branchy clamp cannot leak into
		// the output.
		co := min(max(o, 0), length[e])
		s := &spans[si]
		outer := co >= s.OuterLo && co <= s.OuterHi
		inner := outer && co >= s.InnerLo && co <= s.InnerHi
		out[i] = inner
		if outer && !inner {
			// Guard fringe: fall back to exact geometry (rare by
			// construction — the fringe is CoverageGuard wide).
			out[i] = r.Covers(c.g.Point(walkgraph.Location{Edge: walkgraph.EdgeID(e), Offset: o}))
		}
	}
}

// BatchDetectableAny fills out[i] with whether a particle on edge[i] at
// offset off[i] sits inside the activation range of any healthy reader —
// the batched negative-observation predicate. Readers flagged in un are
// excluded (a dead reader's silence says nothing); un may be nil. Rooms and
// stairwell links are never detectable. Bit-for-bit identical to the scalar
// negative-update span scan. All slices must have equal length.
func (c *Coverage) BatchDetectableAny(edge []int32, off []float64, un []bool, out []bool) {
	fs := c.FlatSpans()
	start, spans := fs.Start, fs.Spans
	length := c.et.Length
	off = off[:len(edge)]
	out = out[:len(edge)]
	for i, e := range edge {
		o := off[i]
		out[i] = false
		co := min(max(o, 0), length[e])
		for si := start[e]; si < start[e+1]; si++ {
			s := &spans[si]
			if un != nil && un[s.Reader] {
				continue
			}
			if co < s.OuterLo || co > s.OuterHi {
				continue
			}
			if (co >= s.InnerLo && co <= s.InnerHi) ||
				c.dep.readers[s.Reader].Covers(c.g.Point(walkgraph.Location{Edge: walkgraph.EdgeID(e), Offset: o})) {
				out[i] = true
				break
			}
		}
	}
}
