package rfid

import (
	"encoding/json"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
)

func TestDeploymentJSONRoundTrip(t *testing.T) {
	plan := floorplan.DefaultOffice()
	orig := MustDeployUniform(plan, DefaultReaders, DefaultActivationRange)
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDeployment(data, plan)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumReaders() != orig.NumReaders() {
		t.Fatalf("reader count changed: %d vs %d", got.NumReaders(), orig.NumReaders())
	}
	for i, r := range orig.Readers() {
		gr := got.Readers()[i]
		if !gr.Pos.Equal(r.Pos) || gr.Range != r.Range || gr.Kind != r.Kind || gr.Hallway != r.Hallway {
			t.Errorf("reader %d changed: %+v vs %+v", i, gr, r)
		}
	}
}

func TestDeploymentJSONKindsAndPairs(t *testing.T) {
	plan := floorplan.DefaultOffice()
	orig := NewDeployment([]Reader{
		{Pos: geom.Pt(10, 12), Range: 1.5},
		{Pos: geom.Pt(14, 12), Range: 1.5},
		{Pos: geom.Pt(30, 12), Range: 2, Kind: Presence},
	})
	if err := orig.AddDirectedPair(0, 1); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDeployment(data, plan)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reader(2).Kind != Presence {
		t.Error("presence kind lost")
	}
	if _, ok := got.PairFor(0, 1); !ok {
		t.Error("directed pair lost")
	}
	if len(got.DirectedPairs()) != 1 {
		t.Errorf("pairs = %v", got.DirectedPairs())
	}
}

func TestDecodeDeploymentRejectsBadInput(t *testing.T) {
	plan := floorplan.DefaultOffice()
	if _, err := DecodeDeployment([]byte("nope"), plan); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := DecodeDeployment([]byte(`{"readers":[{"pos":[1,1],"range":0}]}`), plan); err == nil {
		t.Error("zero range accepted")
	}
	if _, err := DecodeDeployment([]byte(`{"readers":[{"pos":[1,1],"range":2,"kind":"alien"}]}`), plan); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := DecodeDeployment([]byte(`{"readers":[{"pos":[1,1],"range":2}],"pairs":[[0,5]]}`), plan); err == nil {
		t.Error("bad pair accepted")
	}
}
