package rfid

import (
	"math"

	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/walkgraph"
)

// This file implements the edge-coverage index: a deployment-build-time
// precomputation that turns the particle filter's per-particle 2-D geometry
// (circle-covers-point, covering-reader scans, circle-edge intersections)
// into 1-D interval lookups on walking-graph edges.
//
// Particles live on graph edges with scalar offsets, so for every
// (edge, reader) pair the set of covered offsets is a single interval — the
// distance from a fixed point to a point moving along a segment is convex in
// the offset. The index stores that interval twice, conservatively:
//
//   - an *outer* interval guaranteed to contain every covered offset, and
//   - an *inner* interval guaranteed to contain only covered offsets.
//
// The two differ by CoverageGuard at each end. Offsets inside the inner
// interval are covered for certain; offsets outside the outer interval are
// uncovered for certain; offsets in the fringe between them (a few
// millimeters per boundary, hit with probability ~1e-5 per test) fall back
// to the exact geometric predicate. The indexed answers are therefore
// bit-for-bit identical to the geometric ones — the determinism contract the
// engine's Config.Workers documentation promises — while the common case
// costs two float compares instead of a hypot.
//
// For Filter.InitAt the index stores, per reader, the exact activation
// intervals the geometric code computes (same expressions, same edge order,
// same floats) together with their cumulative lengths, so initialization
// sampling is a binary search instead of re-intersecting the activation
// circle with every edge of the graph.

// CoverageGuard is the half-width, in meters, of the fringe around computed
// interval endpoints inside which coverage queries fall back to the exact
// geometric test. It is chosen orders of magnitude above the worst-case
// float error of the quadratic root computation (~1e-5 m near tangency) and
// orders of magnitude below any anchor spacing, so fallbacks are both safe
// and rare.
const CoverageGuard = 1e-3

// InitInterval is one edge interval of a reader's activation range, as used
// by particle initialization: offsets [Lo, Hi] on Edge are inside the range
// (door edges already clipped to their hallway side), and CumStart is the
// summed length of all preceding intervals, so a uniform draw u over the
// total length maps to the interval with the greatest CumStart <= u.
type InitInterval struct {
	Edge     walkgraph.EdgeID
	Lo, Hi   float64
	CumStart float64
}

// ComputeInitIntervals returns the activation intervals of one reader in
// graph-edge order, exactly as Filter.InitAt's geometric path computes them
// (same intersection routine, same clipping, same accumulation order — the
// floats are identical), plus their total length. The coverage index calls
// this once per reader at build time; the filter's geometric reference path
// calls it per initialization.
func ComputeInitIntervals(g *walkgraph.Graph, r Reader) ([]InitInterval, float64) {
	circle := r.Circle()
	var ivs []InitInterval
	total := 0.0
	for _, e := range g.Edges() {
		t0, t1, ok := circle.SegmentIntersection(g.EdgeSegment(e.ID))
		if !ok {
			continue
		}
		lo, hi := t0*e.Length, t1*e.Length
		// A detected object cannot be inside a room (walls block reads), so
		// only the hallway-side portion of a door edge can hold particles.
		// Link edges (stairwells) are not physical space at all.
		if e.Kind == walkgraph.LinkEdge {
			continue
		}
		if e.Kind == walkgraph.DoorEdge && hi > e.DoorAt {
			hi = e.DoorAt
		}
		if hi-lo <= 0 {
			continue
		}
		ivs = append(ivs, InitInterval{Edge: e.ID, Lo: lo, Hi: hi, CumStart: total})
		total += hi - lo
	}
	return ivs, total
}

// CoverSpan is the coverage interval of one reader on one edge, in offset
// meters from endpoint A. Inner is the certain subset, outer the certain
// superset; InnerLo > InnerHi encodes an empty inner interval (the whole
// span is fringe). Offsets in [OuterLo, InnerLo) or (InnerHi, OuterHi] must
// fall back to the exact geometric predicate
// Deployment.Reader(Reader).Covers(point).
type CoverSpan struct {
	Reader           model.ReaderID
	OuterLo, OuterHi float64
	InnerLo, InnerHi float64
}

// readerCoverage is the reverse map for one reader.
type readerCoverage struct {
	init      []InitInterval
	initTotal float64
}

// Coverage is the precomputed edge-coverage index over one (graph,
// deployment) pair. It is immutable after BuildCoverage and safe for
// concurrent readers. Memory cost is O(E + S + I) where S is the number of
// (edge, reader) pairs whose circle touches the edge and I the number of
// activation intervals — for the paper's deployment (19 readers, ~300
// edges) a few kilobytes.
type Coverage struct {
	g   *walkgraph.Graph
	dep *Deployment
	et  *walkgraph.EdgeTable
	// edges[e] lists the readers whose activation circles touch edge e,
	// ascending by reader ID (the deployment's scan order, preserved so
	// nearest-reader tie-breaking stays identical).
	edges [][]CoverSpan
	rds   []readerCoverage
	// flat is the lazily built CSR form of edges (see FlatSpans).
	flat *FlatSpans
}

// BuildCoverage precomputes the coverage index for a deployment on a
// walking graph. Call it once at system-construction time.
func BuildCoverage(g *walkgraph.Graph, d *Deployment) *Coverage {
	c := &Coverage{
		g:     g,
		dep:   d,
		et:    g.EdgeTable(),
		edges: make([][]CoverSpan, g.NumEdges()),
		rds:   make([]readerCoverage, d.NumReaders()),
	}
	for _, r := range d.Readers() {
		for _, e := range g.Edges() {
			if sp, ok := spanOf(g.EdgeSegment(e.ID), r.Circle(), e.Length); ok {
				sp.Reader = r.ID
				c.edges[e.ID] = append(c.edges[e.ID], sp)
			}
		}
		ivs, total := ComputeInitIntervals(g, r)
		c.rds[r.ID] = readerCoverage{init: ivs, initTotal: total}
	}
	c.FlatSpans() // build eagerly so the index is immutable once returned
	return c
}

// Graph returns the walking graph the index was built on.
func (c *Coverage) Graph() *walkgraph.Graph { return c.g }

// Deployment returns the reader deployment the index was built on.
func (c *Coverage) Deployment() *Deployment { return c.dep }

// spanOf computes the conservative coverage span of a circle on an edge of
// the given length, solving the circle/line quadratic with unclamped roots
// (unlike geom.Circle.SegmentIntersection, whose clamping would hide
// coverage that starts before the edge). ok is false when no offset on the
// edge can possibly be covered.
func spanOf(seg geom.Segment, circle geom.Circle, length float64) (CoverSpan, bool) {
	d := seg.B.Sub(seg.A)
	a := d.Dot(d)
	if a <= geom.Eps*geom.Eps {
		// Degenerate segment (cannot occur for validated graphs); treat the
		// whole edge as fringe so queries fall back to geometry.
		if seg.A.Dist(circle.C) <= circle.R+CoverageGuard {
			return CoverSpan{OuterLo: 0, OuterHi: length, InnerLo: 1, InnerHi: 0}, true
		}
		return CoverSpan{}, false
	}
	f := seg.A.Sub(circle.C)
	b := 2 * f.Dot(d)
	cc := f.Dot(f) - circle.R*circle.R
	disc := b*b - 4*a*cc
	if disc < 0 {
		// No crossing in float arithmetic. The circle may still graze the
		// edge within float error: check the closest approach and, when it
		// is within the guard of the radius, record a fringe-only span.
		tc := -b / (2 * a)
		if tc < 0 {
			tc = 0
		} else if tc > 1 {
			tc = 1
		}
		if circle.C.Dist(seg.At(tc)) > circle.R+CoverageGuard {
			return CoverSpan{}, false
		}
		oc := tc * length
		return CoverSpan{
			OuterLo: math.Max(0, oc-CoverageGuard),
			OuterHi: math.Min(length, oc+CoverageGuard),
			InnerLo: 1, InnerHi: 0, // empty inner: always fall back
		}, true
	}
	sq := math.Sqrt(disc)
	lo := (-b - sq) / (2 * a) * length
	hi := (-b + sq) / (2 * a) * length
	if hi < -CoverageGuard || lo > length+CoverageGuard {
		return CoverSpan{}, false
	}
	return CoverSpan{
		OuterLo: math.Max(0, lo-CoverageGuard),
		OuterHi: math.Min(length, hi+CoverageGuard),
		InnerLo: math.Max(0, lo+CoverageGuard),
		InnerHi: math.Min(length, hi-CoverageGuard),
	}, true
}

// clampOffset mirrors Graph.Point's parameter clamping: offsets outside
// [0, length] behave like the corresponding endpoint.
func (c *Coverage) clampOffset(loc walkgraph.Location) float64 {
	off := loc.Offset
	if off < 0 {
		return 0
	}
	if l := c.et.Length[loc.Edge]; off > l {
		return l
	}
	return off
}

// SpanTable returns the per-edge coverage spans, indexed by EdgeID and
// ascending by reader ID within each edge. The filter hot loops iterate it
// inline (span scans are too hot to hide behind a call per particle); the
// table and its rows must not be modified.
func (c *Coverage) SpanTable() [][]CoverSpan { return c.edges }

// ReaderCovers reports whether the given reader's activation range covers
// the location, bit-for-bit identical to
// d.Reader(id).Covers(g.Point(loc)).
func (c *Coverage) ReaderCovers(id model.ReaderID, loc walkgraph.Location) bool {
	off := c.clampOffset(loc)
	for _, s := range c.edges[loc.Edge] {
		if s.Reader != id {
			continue
		}
		if off < s.OuterLo || off > s.OuterHi {
			return false
		}
		if off >= s.InnerLo && off <= s.InnerHi {
			return true
		}
		return c.dep.readers[id].Covers(c.g.Point(loc))
	}
	return false
}

// AnyReaderCovers reports whether any reader's activation range covers the
// location, bit-for-bit identical to the boolean result of
// d.CoveringReader(g.Point(loc)).
func (c *Coverage) AnyReaderCovers(loc walkgraph.Location) bool {
	off := c.clampOffset(loc)
	spans := c.edges[loc.Edge]
	for i := range spans {
		s := &spans[i]
		if off < s.OuterLo || off > s.OuterHi {
			continue
		}
		if off >= s.InnerLo && off <= s.InnerHi {
			return true
		}
		if c.dep.readers[s.Reader].Covers(c.g.Point(loc)) {
			return true
		}
	}
	return false
}

// CoveringReader returns the reader covering the location (nearest wins on
// overlap), bit-for-bit identical to d.CoveringReader(g.Point(loc)). Only
// the readers whose spans reach the offset are distance-tested.
func (c *Coverage) CoveringReader(loc walkgraph.Location) (model.ReaderID, bool) {
	off := c.clampOffset(loc)
	spans := c.edges[loc.Edge]
	best := model.NoReader
	bestDist := 0.0
	var p geom.Point
	havePoint := false
	for i := range spans {
		s := &spans[i]
		if off < s.OuterLo || off > s.OuterHi {
			continue
		}
		if !havePoint {
			p, havePoint = c.g.Point(loc), true
		}
		r := &c.dep.readers[s.Reader]
		dist := r.Pos.Dist(p)
		if dist <= r.Range && (best == model.NoReader || dist < bestDist) {
			best, bestDist = r.ID, dist
		}
	}
	return best, best != model.NoReader
}

// InitIntervals returns the precomputed activation intervals of a reader
// (identical to ComputeInitIntervals's result) and their total length. The
// slice must not be modified.
func (c *Coverage) InitIntervals(id model.ReaderID) ([]InitInterval, float64) {
	rc := &c.rds[id]
	return rc.init, rc.initTotal
}
