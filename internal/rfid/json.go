package rfid

import (
	"encoding/json"
	"fmt"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/model"
)

// The JSON format describes a reader deployment portably:
//
//	{
//	  "readers": [{"pos": [10,12], "range": 2, "kind": "partitioning"}],
//	  "pairs": [[0, 1]]
//	}

type readerJSON struct {
	Pos   [2]float64 `json:"pos"`
	Range float64    `json:"range"`
	Kind  string     `json:"kind,omitempty"`
}

type deploymentJSON struct {
	Readers []readerJSON `json:"readers"`
	Pairs   [][2]int     `json:"pairs,omitempty"`
}

// MarshalJSON encodes the deployment in the portable JSON format.
func (d *Deployment) MarshalJSON() ([]byte, error) {
	out := deploymentJSON{}
	for _, r := range d.readers {
		kind := ""
		if r.Kind == Presence {
			kind = "presence"
		}
		out.Readers = append(out.Readers, readerJSON{
			Pos:   [2]float64{r.Pos.X, r.Pos.Y},
			Range: r.Range,
			Kind:  kind,
		})
	}
	for _, p := range d.pairs {
		out.Pairs = append(out.Pairs, [2]int{int(p.Entry), int(p.Exit)})
	}
	return json.Marshal(out)
}

// DecodeDeployment parses the portable JSON format. The plan is used to
// locate each reader's hallway.
func DecodeDeployment(data []byte, plan *floorplan.Plan) (*Deployment, error) {
	var in deploymentJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("rfid: decode: %w", err)
	}
	readers := make([]Reader, 0, len(in.Readers))
	for i, r := range in.Readers {
		kind := Partitioning
		switch r.Kind {
		case "", "partitioning":
		case "presence":
			kind = Presence
		default:
			return nil, fmt.Errorf("rfid: decode: reader %d has unknown kind %q", i, r.Kind)
		}
		if r.Range <= 0 {
			return nil, fmt.Errorf("rfid: decode: reader %d has non-positive range %v", i, r.Range)
		}
		pos := geom.Pt(r.Pos[0], r.Pos[1])
		readers = append(readers, Reader{
			Pos:     pos,
			Hallway: plan.HallwayAt(pos),
			Range:   r.Range,
			Kind:    kind,
		})
	}
	d := NewDeployment(readers)
	for _, p := range in.Pairs {
		if err := d.AddDirectedPair(model.ReaderID(p[0]), model.ReaderID(p[1])); err != nil {
			return nil, fmt.Errorf("rfid: decode: %w", err)
		}
	}
	return d, nil
}
