package engine

import (
	"math"
	"sort"

	"repro/internal/anchor"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/model"
)

// Localization summarizes one object's inferred whereabouts: a point
// estimate, the most likely anchor, room-level odds, and an uncertainty
// measure. It is the track-and-trace view on top of the query engine.
type Localization struct {
	Object model.ObjectID
	// Mean is the probability-weighted mean position.
	Mean geom.Point
	// Mode is the most probable anchor point.
	Mode anchor.ID
	// ModeProb is the probability mass at Mode.
	ModeProb float64
	// Room is the most probable room, or floorplan.NoRoom when the object
	// is more likely in a hallway.
	Room floorplan.RoomID
	// RoomProb is the probability of Room (or of "some hallway" when Room
	// is NoRoom).
	RoomProb float64
	// Entropy is the Shannon entropy of the anchor distribution in nats;
	// 0 means certainty.
	Entropy float64
}

// RoomOdds is one entry of a room-level localization ranking.
type RoomOdds struct {
	// Room is a room ID, or floorplan.NoRoom for the hallway share.
	Room floorplan.RoomID
	P    float64
}

// Localize runs the particle filter for one object and summarizes the
// result. ok is false when the object has no readings to infer from.
func (s *System) Localize(obj model.ObjectID) (Localization, bool) {
	tab := s.Preprocess([]model.ObjectID{obj})
	dist := tab.DistributionOf(obj)
	if len(dist) == 0 {
		return Localization{}, false
	}
	return s.summarize(obj, dist), true
}

// LocalizeAll localizes every known object, sorted by object ID.
func (s *System) LocalizeAll() []Localization {
	objs := s.col.KnownObjects()
	tab := s.Preprocess(objs)
	out := make([]Localization, 0, len(objs))
	for _, obj := range objs {
		dist := tab.DistributionOf(obj)
		if len(dist) == 0 {
			continue
		}
		out = append(out, s.summarize(obj, dist))
	}
	return out
}

// RoomDistribution returns the object's room-level distribution, ranked by
// descending probability; the hallway share appears as a single NoRoom
// entry. ok is false when the object cannot be localized.
func (s *System) RoomDistribution(obj model.ObjectID) ([]RoomOdds, bool) {
	tab := s.Preprocess([]model.ObjectID{obj})
	dist := tab.DistributionOf(obj)
	if len(dist) == 0 {
		return nil, false
	}
	return roomOdds(s.idx, dist), true
}

// sortedAnchorIDs returns a distribution's support in ascending anchor
// order. Every float accumulation over a distribution iterates through it:
// addition order is pinned, so summaries are reproducible run to run and
// identical across the single and sharded engines.
func sortedAnchorIDs(dist map[anchor.ID]float64) []anchor.ID {
	ids := make([]anchor.ID, 0, len(dist))
	for ap := range dist {
		ids = append(ids, ap)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func roomOdds(idx *anchor.Index, dist map[anchor.ID]float64) []RoomOdds {
	byRoom := make(map[floorplan.RoomID]float64)
	for _, ap := range sortedAnchorIDs(dist) {
		byRoom[idx.Anchor(ap).Room] += dist[ap]
	}
	out := make([]RoomOdds, 0, len(byRoom))
	for room, p := range byRoom {
		out = append(out, RoomOdds{Room: room, P: p})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].P != out[j].P {
			return out[i].P > out[j].P
		}
		return out[i].Room < out[j].Room
	})
	return out
}

func (s *System) summarize(obj model.ObjectID, dist map[anchor.ID]float64) Localization {
	loc := Localization{Object: obj, Mode: anchor.NoAnchor}
	var mx, my float64
	for _, ap := range sortedAnchorIDs(dist) {
		a, p := s.idx.Anchor(ap), dist[ap]
		mx += a.Pos.X * p
		my += a.Pos.Y * p
		if p > loc.ModeProb || (p == loc.ModeProb && ap < loc.Mode) {
			loc.Mode, loc.ModeProb = ap, p
		}
		if p > 0 {
			loc.Entropy -= p * math.Log(p)
		}
	}
	loc.Mean = geom.Pt(mx, my)
	odds := roomOdds(s.idx, dist)
	if len(odds) > 0 {
		loc.Room, loc.RoomProb = odds[0].Room, odds[0].P
	}
	return loc
}
