package engine

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/ingest"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/sim"
	"repro/internal/sim/errfs"
	"repro/internal/wal"
)

// TestShardedConcurrentStress hammers a Sharded engine from several
// goroutines at once — one ingester, live range and kNN queriers, and a
// stats/metrics scraper — at shard counts 1, 4, and 16. It is primarily a
// -race target (the router's lock discipline must keep every surface safe),
// and it re-checks two invariants the concurrency must not break: the final
// quiesced answers are identical at every shard count, and no goroutines
// leak once the engine falls idle.
func TestShardedConcurrentStress(t *testing.T) {
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	before := runtime.NumGoroutine()

	const steps = 60
	type quiesced struct {
		rng   model.ResultSet
		knn   model.ResultSet
		known []model.ObjectID
	}
	outcomes := make(map[int]quiesced)
	for _, n := range []int{1, 4, 16} {
		cfg := DefaultConfig()
		cfg.Seed = 33
		cfg.Shards = n
		// With the cache on, answers depend on when past queries ran (a
		// resumed filter continues from the cached state of the previous
		// query's time). The racing queriers make that history
		// nondeterministic, so pin the stronger cache-off invariant:
		// quiesced answers are a pure function of the ingested stream.
		cfg.UseCache = false
		sh := MustNewSharded(plan, dep, cfg)
		tc := sim.DefaultTraceConfig()
		tc.NumObjects = 40
		tc.DwellMin, tc.DwellMax = 2, 8
		world := sim.MustNew(sh.Graph(), rfid.NewSensor(dep), tc, 77)

		done := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(4)
		// The single ingester owns the simulator; everyone else hammers the
		// query and observability surfaces until it finishes.
		go func() {
			defer wg.Done()
			defer close(done)
			for i := 0; i < steps; i++ {
				tm, raws := world.Step()
				if err := sh.Ingest(tm, raws); err != nil {
					t.Errorf("shards=%d: Ingest: %v", n, err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					sh.RangeQuery(geom.RectWH(5, 9, 25, 14))
					sh.Occupancy()
				}
			}
		}()
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					sh.KNNQuery(geom.Pt(20, 12), 10)
					sh.EventsSince(0)
				}
			}
		}()
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					sh.Stats()
					sh.CacheStats()
					sh.SyncMetrics()
					sh.ReaderHealth()
					sh.KnownObjects()
				}
			}
		}()
		wg.Wait()
		sh.FlushIngest()

		// Quiesced state depends only on the ingested stream, which is the
		// same at every shard count; concurrent queries must not perturb it.
		outcomes[n] = quiesced{
			rng:   sh.RangeQuery(geom.RectWH(5, 9, 25, 14)),
			knn:   sh.KNNQuery(geom.Pt(20, 12), 10),
			known: sh.KnownObjects(),
		}
	}

	base := outcomes[1]
	if len(base.known) == 0 || len(base.rng) == 0 {
		t.Fatalf("stress baseline is vacuous: %d objects, %d range rows", len(base.known), len(base.rng))
	}
	for _, n := range []int{4, 16} {
		if !reflect.DeepEqual(outcomes[n], base) {
			t.Errorf("shards=%d: quiesced answers diverge from shards=1", n)
		}
	}

	// Worker pools and query goroutines must all have exited; give the
	// runtime a moment to reap them.
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d before stress, %d after", before, runtime.NumGoroutine())
}

// TestShardedQuarantineHealStress is the -race target for the fault-isolation
// machinery: a durable 4-shard engine under concurrent ingest and query load
// has one shard's disk fail mid-stream (quarantine) and recover (heal) while
// queriers hammer the partial-answer surfaces and the background healer races
// HealNow. The engine must never report an engine-wide WAL error, every
// ingest refusal must be a typed quarantine drop, the shard must be live
// again at the end, and no goroutines — healer included — may leak.
func TestShardedQuarantineHealStress(t *testing.T) {
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	before := runtime.NumGoroutine()

	fsys := errfs.New(nil, 29)
	cfg := DefaultConfig()
	cfg.Seed = 33
	cfg.Shards = 4
	cfg.UseCache = false
	cfg.SlowQueryThreshold = 0
	cfg.Durability = DurabilityConfig{
		Dir:   t.TempDir(),
		Fsync: wal.SyncAlways,
		FS:    fsys,
		Retry: RetryConfig{Max: 2, BaseDelay: 50 * time.Microsecond, MaxDelay: 200 * time.Microsecond},
		// An aggressive background healer on purpose: it must race the
		// explicit HealNow calls below without tripping -race or double-heals.
		HealBaseDelay: time.Millisecond,
		HealMaxDelay:  4 * time.Millisecond,
	}
	sh, err := OpenSharded(plan, dep, cfg)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 40
	tc.DwellMin, tc.DwellMax = 2, 8
	world := sim.MustNew(sh.Graph(), rfid.NewSensor(dep), tc, 77)

	const steps = 80
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < steps; i++ {
			switch i {
			case 30:
				fsys.Fail(errfs.Rule{Ops: errfs.OpWrite, Path: "shard-0001"})
			case 55:
				fsys.Clear()
			}
			tm, raws := world.Step()
			if err := sh.Ingest(tm, raws); err != nil {
				var ie *ingest.Error
				if !errors.As(err, &ie) || ie.Kind != ingest.KindQuarantined {
					t.Errorf("Ingest: %v", err)
					return
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		ctx := context.Background()
		for {
			select {
			case <-done:
				return
			default:
				if _, err := sh.RangeQueryContext(ctx, geom.RectWH(5, 9, 25, 14)); err != nil {
					if _, ok := IsQuarantine(err); !ok {
						t.Errorf("range query: %v", err)
						return
					}
				}
				sh.OccupancyContext(ctx)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				sh.KNNQuery(geom.Pt(20, 12), 10)
				sh.DegradedShards()
				sh.EventsSince(0)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				sh.HealNow()
				sh.Stats()
				sh.SyncMetrics()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	wg.Wait()
	sh.FlushIngest()

	if err := sh.WALError(); err != nil {
		t.Fatalf("engine-wide WAL error under a single-shard fault: %v", err)
	}
	// The fault is long gone; any shard still down must heal on demand.
	fsys.Clear()
	deadline := time.Now().Add(5 * time.Second)
	for len(sh.DegradedShards()) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("shards %v never healed", sh.DegradedShards())
		}
		if err := sh.HealNow(); err != nil {
			t.Logf("HealNow: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if sh.tel.shardQuarantines.Value() == 0 {
		t.Error("fault never quarantined the shard; stress proved nothing")
	}
	if err := sh.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d before stress, %d after", before, runtime.NumGoroutine())
}
