package engine

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/metrics"
)

func TestLocalizeProducesSaneSummaries(t *testing.T) {
	sys, world := testSystem(t, 20, 200, 21)
	locs := sys.LocalizeAll()
	if len(locs) == 0 {
		t.Fatal("nothing localized")
	}
	bounds := sys.Graph().Plan().Bounds().Expand(1)
	var errs []float64
	for _, l := range locs {
		if !bounds.Contains(l.Mean) {
			t.Errorf("o%d mean %v outside the building", l.Object, l.Mean)
		}
		if l.ModeProb <= 0 || l.ModeProb > 1+1e-9 {
			t.Errorf("o%d mode prob %v", l.Object, l.ModeProb)
		}
		if l.Entropy < 0 {
			t.Errorf("o%d negative entropy %v", l.Object, l.Entropy)
		}
		if l.RoomProb < 0 || l.RoomProb > 1+1e-9 {
			t.Errorf("o%d room prob %v", l.Object, l.RoomProb)
		}
		errs = append(errs, l.Mean.Dist(world.TruePosition(l.Object)))
	}
	// The mean estimate should track truth reasonably: average error below
	// 12 m on a 70 m floor (mean positions can split across lobes).
	if m := metrics.Mean(errs); m > 12 {
		t.Errorf("mean localization error = %v m", m)
	}
}

func TestLocalizeSingleObjectMatchesAll(t *testing.T) {
	sys, _ := testSystem(t, 10, 150, 22)
	objs := sys.Collector().KnownObjects()
	if len(objs) == 0 {
		t.Skip("no objects")
	}
	one, ok := sys.Localize(objs[0])
	if !ok {
		t.Fatal("Localize failed for a known object")
	}
	if one.Object != objs[0] {
		t.Errorf("object mismatch: %d", one.Object)
	}
}

func TestLocalizeUnknownObject(t *testing.T) {
	sys, _ := testSystem(t, 5, 60, 23)
	if _, ok := sys.Localize(9999); ok {
		t.Error("localized an unknown object")
	}
	if _, ok := sys.RoomDistribution(9999); ok {
		t.Error("room distribution for unknown object")
	}
}

func TestRoomDistributionSumsToOne(t *testing.T) {
	sys, _ := testSystem(t, 15, 200, 24)
	objs := sys.Collector().KnownObjects()
	for _, obj := range objs[:min(5, len(objs))] {
		odds, ok := sys.RoomDistribution(obj)
		if !ok {
			continue
		}
		total := 0.0
		prev := math.Inf(1)
		for _, ro := range odds {
			if ro.P > prev+1e-12 {
				t.Errorf("o%d odds not sorted: %v", obj, odds)
			}
			prev = ro.P
			total += ro.P
			if ro.Room != floorplan.NoRoom {
				if int(ro.Room) < 0 || int(ro.Room) >= len(sys.Graph().Plan().Rooms()) {
					t.Errorf("o%d bad room %d", obj, ro.Room)
				}
			}
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("o%d room odds sum to %v", obj, total)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
