package engine

import (
	"context"
	"testing"
	"time"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/obs/trace"
	"repro/internal/rfid"
	"repro/internal/sim"
	"repro/internal/wal"
)

// spansByName groups a finished trace's spans: name -> set of shards that
// recorded it.
func spansByName(d trace.Done) map[string]map[int]bool {
	out := map[string]map[int]bool{}
	for _, sp := range d.Spans {
		if out[sp.Name] == nil {
			out[sp.Name] = map[int]bool{}
		}
		out[sp.Name][sp.Shard] = true
	}
	return out
}

// TestShardedTraceSpans drives a durable four-shard engine through a traced
// ingest stream and a traced kNN query, and asserts the span topology the
// tracing tentpole promises: ingest traces carry the reorder wait plus
// per-shard WAL append, fsync, and collect spans; query traces carry
// router-scoped gather/prune/merge plus one evaluate span per shard
// (zero-duration for shards with no candidates) and shard-attributed filter
// stage spans.
func TestShardedTraceSpans(t *testing.T) {
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	cfg := DefaultConfig()
	cfg.Seed = 91
	cfg.Shards = 4
	cfg.SlowQueryThreshold = time.Nanosecond // every query is "slow": the ring must fill
	cfg.Durability = DurabilityConfig{Dir: t.TempDir(), Fsync: wal.SyncAlways}
	sys, err := OpenSharded(plan, dep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	world := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), traceCfg120(), 77)

	tracer := trace.New(trace.Config{Sample: 1, Seed: 5})

	// Traced ingest: accumulate every delivery's spans on one trace so the
	// assertion does not depend on which exact second the reorder buffer
	// flushes.
	itc := tracer.Start("ingest")
	ictx := trace.With(context.Background(), itc)
	for i := 0; i < 25; i++ {
		tm, raws := world.Step()
		if err := sys.IngestContext(ictx, tm, raws); err != nil {
			t.Fatalf("IngestContext: %v", err)
		}
	}
	tracer.Finish(itc)
	sys.FlushIngest()

	ing := spansByName(tracer.Snapshot()[0])
	if len(ing["reorder"]) == 0 || !ing["reorder"][trace.RouterShard] {
		t.Errorf("ingest trace: no router reorder span (got %v)", ing["reorder"])
	}
	for _, name := range []string{"collect", "wal-append", "wal-fsync"} {
		for shard := 0; shard < 4; shard++ {
			if !ing[name][shard] {
				t.Errorf("ingest trace: %s span missing for shard %d (got shards %v)", name, shard, ing[name])
			}
		}
	}

	// Traced query.
	qtc := tracer.Start("knn")
	qctx := trace.With(context.Background(), qtc)
	if _, err := sys.KNNQueryContext(qctx, geom.Pt(20, 12), 10); err != nil {
		t.Fatalf("KNNQueryContext: %v", err)
	}
	tracer.Finish(qtc)

	snaps := tracer.Snapshot()
	q := spansByName(snaps[len(snaps)-1])
	for _, name := range []string{"gather", "prune", "merge"} {
		if !q[name][trace.RouterShard] {
			t.Errorf("query trace: no router %s span (got %v)", name, q[name])
		}
	}
	if len(q["evaluate"]) != 4 {
		t.Errorf("query trace: evaluate spans cover shards %v, want exactly {0,1,2,3}", q["evaluate"])
	}
	for shard := 0; shard < 4; shard++ {
		if !q["evaluate"][shard] {
			t.Errorf("query trace: evaluate span missing for shard %d", shard)
		}
	}
	if len(q["predict"]) == 0 || len(q["snap"]) == 0 {
		t.Errorf("query trace: no filter stage spans (predict=%v snap=%v)", q["predict"], q["snap"])
	}

	// Satellite: the slow-query ring entry names the trace and breaks the
	// scatter down per shard.
	slow := sys.Telemetry().Slow.Snapshot()
	if len(slow) == 0 {
		t.Fatal("slow-query ring is empty despite a 1ns threshold")
	}
	last := slow[len(slow)-1]
	if last.TraceID != qtc.IDString() {
		t.Errorf("slow-query traceId = %q, want %q", last.TraceID, qtc.IDString())
	}
	if len(last.ShardMicros) != 4 {
		t.Errorf("slow-query shardMicros = %v, want 4 entries", last.ShardMicros)
	}

	// Satellite: filter-trace ring entries carry shard attribution. With 120
	// objects hashed across 4 shards, runs must land outside shard 0 too.
	var shardsSeen [4]bool
	for _, ft := range sys.Telemetry().Trace.Snapshot() {
		if ft.Shard >= 0 && ft.Shard < 4 {
			shardsSeen[ft.Shard] = true
		}
	}
	if !shardsSeen[0] || (!shardsSeen[1] && !shardsSeen[2] && !shardsSeen[3]) {
		t.Errorf("filter-trace ring shard attribution did not spread: %v", shardsSeen)
	}
}

// TestSingleEngineTraceSpans pins the single-shard span topology: the System
// records the same span names the router does, with shard 0 standing in for
// the whole object space.
func TestSingleEngineTraceSpans(t *testing.T) {
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	cfg := DefaultConfig()
	cfg.Seed = 91
	sys := MustNew(plan, dep, cfg)
	world := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), traceCfg120(), 77)

	tracer := trace.New(trace.Config{Sample: 1, Seed: 5})
	itc := tracer.Start("ingest")
	ictx := trace.With(context.Background(), itc)
	for i := 0; i < 25; i++ {
		tm, raws := world.Step()
		if err := sys.IngestContext(ictx, tm, raws); err != nil {
			t.Fatalf("IngestContext: %v", err)
		}
	}
	tracer.Finish(itc)
	sys.FlushIngest()

	ing := spansByName(tracer.Snapshot()[0])
	if len(ing["reorder"]) == 0 {
		t.Error("ingest trace: no reorder span")
	}
	if !ing["collect"][0] {
		t.Errorf("ingest trace: no shard-0 collect span (got %v)", ing["collect"])
	}

	qtc := tracer.Start("range")
	qctx := trace.With(context.Background(), qtc)
	if _, err := sys.RangeQueryContext(qctx, geom.RectWH(5, 9, 25, 14)); err != nil {
		t.Fatalf("RangeQueryContext: %v", err)
	}
	tracer.Finish(qtc)
	snaps := tracer.Snapshot()
	q := spansByName(snaps[len(snaps)-1])
	for _, name := range []string{"gather", "prune", "merge"} {
		if !q[name][trace.RouterShard] {
			t.Errorf("query trace: no router %s span (got %v)", name, q[name])
		}
	}
	if !q["evaluate"][0] {
		t.Errorf("query trace: no shard-0 evaluate span (got %v)", q["evaluate"])
	}
}
