package engine

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/rfid"
	"repro/internal/sim"
)

// TestCompositeRoomPipeline runs the full system over a plan with an
// L-shaped room: objects dwell inside it (uniformly over the true
// footprint), the range query's area-ratio compensation uses the footprint,
// and querying the notch returns nothing extra.
func TestCompositeRoomPipeline(t *testing.T) {
	b := floorplan.NewBuilder()
	h := b.AddHallway("h", geom.Seg(geom.Pt(0, 10), geom.Pt(60, 10)), 2)
	b.AddCompositeRoom("L", []geom.Rect{
		geom.RectWH(4, 2, 12, 4),
		geom.RectWH(4, 6, 6, 3),
	}, h)
	b.AddRoom("A", geom.RectWH(24, 3, 8, 6), h)
	b.AddRoom("B", geom.RectWH(40, 3, 8, 6), h)
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dep := rfid.NewDeployment([]rfid.Reader{
		{Pos: geom.Pt(10, 10), Range: 2},
		{Pos: geom.Pt(25, 10), Range: 2},
		{Pos: geom.Pt(42, 10), Range: 2},
		{Pos: geom.Pt(55, 10), Range: 2},
	})
	cfg := DefaultConfig()
	cfg.Seed = 91
	sys := MustNew(plan, dep, cfg)
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 10
	tc.DwellMin, tc.DwellMax = 3, 10
	world := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), tc, 919)
	for i := 0; i < 250; i++ {
		tm, raws := world.Step()
		sys.Ingest(tm, raws)
		// Dwelling objects inside the L always sit on the true footprint.
		for _, o := range world.Objects() {
			if world.InRoom(o) {
				p := world.TruePosition(o)
				if r := plan.RoomAt(p); r == floorplan.NoRoom {
					t.Fatalf("dwelling object at %v outside every room", p)
				}
			}
		}
	}
	tab := sys.Preprocess(sys.Collector().KnownObjects())
	for _, obj := range tab.Objects() {
		if total := tab.TotalProbOf(obj); math.Abs(total-1) > 1e-9 {
			t.Errorf("o%d mass %v", obj, total)
		}
	}
	// The notch rectangle (inside the bounding box, outside the footprint)
	// must contribute zero room probability.
	notch := geom.RectFromCorners(geom.Pt(10.5, 6.5), geom.Pt(15.5, 8.5))
	rs := sys.RangeQueryOn(tab, notch)
	for obj, p := range rs {
		if p > 1e-9 {
			t.Errorf("P(o%d in notch) = %v, want 0", obj, p)
		}
	}
	// Full-footprint window == the room's whole probability; half-area
	// window == half of it (uniform-over-footprint semantics).
	full := sys.RangeQueryOn(tab, geom.RectFromCorners(geom.Pt(4, 2), geom.Pt(16, 9)))
	base := sys.RangeQueryOn(tab, geom.RectFromCorners(geom.Pt(4, 2), geom.Pt(16, 6)))
	for obj, p := range base {
		want := full[obj] * 48.0 / 66.0
		if full[obj] > 0.2 && math.Abs(p-want) > 1e-6 {
			t.Errorf("o%d base-part mass = %v, want %v (footprint ratio)", obj, p, want)
		}
	}
}
