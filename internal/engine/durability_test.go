package engine

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/sim"
	"repro/internal/wal"
)

// durableFixture is the shared small world for the recovery tests: a few
// objects over the default office so each engine.Open stays cheap.
type durableFixture struct {
	plan *floorplan.Plan
	dep  *rfid.Deployment
	cfg  Config
	// deliveries[i] is the i-th one-second delivery; at horizon 0 each
	// becomes exactly one WAL record, so "crash after N records" and "oracle
	// fed deliveries 1..N" describe the same acked prefix.
	deliveries []struct {
		t    model.Time
		raws []model.RawReading
	}
}

func newDurableFixture(t *testing.T, seconds int) *durableFixture {
	t.Helper()
	f := &durableFixture{}
	f.plan = floorplan.DefaultOffice()
	f.dep = rfid.MustDeployUniform(f.plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	f.cfg = DefaultConfig()
	f.cfg.Seed = 31
	f.cfg.Particle.Ns = 16
	f.cfg.SlowQueryThreshold = 0

	probe := MustNew(f.plan, f.dep, f.cfg)
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 8
	tc.DwellMin, tc.DwellMax = 2, 6
	world := sim.MustNew(probe.Graph(), rfid.NewSensor(f.dep), tc, 555)
	for i := 0; i < seconds; i++ {
		tm, raws := world.Step()
		f.deliveries = append(f.deliveries, struct {
			t    model.Time
			raws []model.RawReading
		}{tm, append([]model.RawReading(nil), raws...)})
	}
	return f
}

func (f *durableFixture) config(dir string) Config {
	cfg := f.cfg
	cfg.Durability = DurabilityConfig{Dir: dir, Fsync: wal.SyncAlways}
	return cfg
}

// oracle builds an uncrashed, memory-only system fed the first n deliveries.
func (f *durableFixture) oracle(t *testing.T, n int) *System {
	t.Helper()
	sys := MustNew(f.plan, f.dep, f.cfg)
	for _, d := range f.deliveries[:n] {
		sys.Ingest(d.t, d.raws)
	}
	return sys
}

var (
	probeWindow = geom.Rect{Min: geom.Point{X: 2, Y: 2}, Max: geom.Point{X: 28, Y: 18}}
	probePoint  = geom.Point{X: 15, Y: 10}
)

// mustMatchOracle asserts the recovered system is bit-for-bit the oracle:
// Stats, collector view, and the query results themselves.
func mustMatchOracle(t *testing.T, label string, got, want *System, queries bool) {
	t.Helper()
	if gs, ws := got.Stats(), want.Stats(); !reflect.DeepEqual(gs, ws) {
		t.Fatalf("%s: Stats diverged:\n  got  %+v\n  want %+v", label, gs, ws)
	}
	if got.Now() != want.Now() {
		t.Fatalf("%s: Now %d != %d", label, got.Now(), want.Now())
	}
	if gc, wc := got.Collector().Snapshot(), want.Collector().Snapshot(); !reflect.DeepEqual(gc, wc) {
		for i := range wc.Objects {
			if i < len(gc.Objects) && !reflect.DeepEqual(gc.Objects[i], wc.Objects[i]) {
				t.Logf("%s: object %d state:\n  got  %+v\n  want %+v", label, wc.Objects[i].Object, gc.Objects[i], wc.Objects[i])
			}
		}
		t.Fatalf("%s: collector state diverged (now %d/%d, %d/%d objects)", label,
			gc.Now, wc.Now, len(gc.Objects), len(wc.Objects))
	}
	if !queries {
		return
	}
	objs := want.Collector().KnownObjects()
	gt, wt := got.Preprocess(objs), want.Preprocess(objs)
	for _, o := range objs {
		if !reflect.DeepEqual(gt.DistributionOf(o), wt.DistributionOf(o)) {
			t.Fatalf("%s: anchor distribution of object %d diverged", label, o)
		}
	}
	if gr, wr := got.RangeQuery(probeWindow), want.RangeQuery(probeWindow); !reflect.DeepEqual(gr, wr) {
		t.Fatalf("%s: range query diverged:\n  got  %v\n  want %v", label, gr, wr)
	}
	if gk, wk := got.KNNQuery(probePoint, 3), want.KNNQuery(probePoint, 3); !reflect.DeepEqual(gk, wk) {
		t.Fatalf("%s: kNN query diverged:\n  got  %v\n  want %v", label, gk, wk)
	}
}

func TestOpenEmptyDataDir(t *testing.T) {
	f := newDurableFixture(t, 6)
	dir := t.TempDir()
	sys, err := Open(f.plan, f.dep, f.config(dir))
	if err != nil {
		t.Fatalf("Open on empty dir: %v", err)
	}
	rec := sys.Recovery()
	if !rec.Enabled || rec.SnapshotRestored || rec.RecordsReplayed != 0 || rec.Corrupt {
		t.Fatalf("empty-dir recovery %+v", rec)
	}
	for _, d := range f.deliveries {
		if err := sys.Ingest(d.t, d.raws); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	mustMatchOracle(t, "fresh durable run", sys, f.oracle(t, len(f.deliveries)), true)
	if err := sys.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestCrashRecoveryAtArbitraryOffsets is the tentpole property test: run a
// stream into a durable engine, then for crash points throughout the WAL —
// every record boundary and its neighbors, plus a byte stride through the
// interiors — truncate a copy of the log there, recover, and require the
// result to be bit-for-bit identical to an uncrashed run over the surviving
// acked prefix. Stats and collector state are checked at every crash point;
// the full query comparison runs once per distinct prefix length.
func TestCrashRecoveryAtArbitraryOffsets(t *testing.T) {
	f := newDurableFixture(t, 18)
	dir := t.TempDir()
	cfg := f.config(dir)
	sys, err := Open(f.plan, f.dep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.deliveries {
		if err := sys.Ingest(d.t, d.raws); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	// Simulated crash: the process dies here. No Close, no final snapshot;
	// the fsynced segment bytes are all that survives.
	segs, err := wal.SegmentInfos(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("want one segment, got %v (%v)", segs, err)
	}
	full, err := os.ReadFile(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	// Record boundaries, from the framing itself.
	type boundary struct {
		end  int64
		recs int
	}
	var bounds []boundary
	scan, err := wal.ScanSegment(segs[0].Path, func(r wal.Rec) error {
		bounds = append(bounds, boundary{end: r.End, recs: int(r.Seq)})
		return nil
	})
	if err != nil || scan.Stopped {
		t.Fatalf("scan of healthy segment: %+v err=%v", scan, err)
	}
	if len(bounds) != len(f.deliveries) {
		t.Fatalf("%d records for %d deliveries (horizon 0 should map 1:1)", len(bounds), len(f.deliveries))
	}

	offsets := map[int64]bool{0: true, 1: true, int64(len(full)): true}
	for _, b := range bounds {
		offsets[b.end-1] = true
		offsets[b.end] = true
		offsets[b.end+1] = true
	}
	for off := int64(0); off < int64(len(full)); off += 97 {
		offsets[off] = true
	}

	oracles := map[int]*System{}
	queriedPrefix := map[int]bool{}
	for off := range offsets {
		if off < 0 || off > int64(len(full)) {
			continue
		}
		n := 0
		for _, b := range bounds {
			if b.end <= off {
				n = b.recs
			}
		}
		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, filepath.Base(segs[0].Path)), full[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		recovered, err := Open(f.plan, f.dep, f.config(cdir))
		if err != nil {
			t.Fatalf("offset %d: Open: %v", off, err)
		}
		rec := recovered.Recovery()
		if rec.RecordsReplayed != n {
			t.Fatalf("offset %d: replayed %d records, want %d", off, rec.RecordsReplayed, n)
		}
		// The cached oracle is only ever compared stats-for-stats (queries
		// mutate counters, so the one full query comparison per prefix gets
		// a fresh oracle of its own).
		if oracles[n] == nil {
			oracles[n] = f.oracle(t, n)
		}
		mustMatchOracle(t, "crash at offset "+itoa(off), recovered, oracles[n], false)
		if !queriedPrefix[n] {
			queriedPrefix[n] = true
			mustMatchOracle(t, "crash at offset "+itoa(off), recovered, f.oracle(t, n), true)
		}
		// The recovered log must accept the rest of the stream.
		if n < len(f.deliveries) {
			if err := recovered.Ingest(f.deliveries[n].t, f.deliveries[n].raws); err != nil {
				t.Fatalf("offset %d: post-recovery ingest: %v", off, err)
			}
		}
		recovered.Close()
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TestCrashRecoveryWithSnapshots reruns the crash property across snapshot
// boundaries: periodic snapshots bound the replay, and a crash point must
// recover identically whether it lands before or after a snapshot. Snapshot
// files claiming seconds past the crash point are removed, mirroring the
// real ordering guarantee (a snapshot is only written after its covered
// records are fsynced, so it can never survive a crash they did not).
func TestCrashRecoveryWithSnapshots(t *testing.T) {
	f := newDurableFixture(t, 17)
	dir := t.TempDir()
	cfg := f.config(dir)
	cfg.Durability.SnapshotEvery = 5
	sys, err := Open(f.plan, f.dep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.deliveries {
		if err := sys.Ingest(d.t, d.raws); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	snaps, err := wal.ListSnapshots(dir)
	if err != nil || len(snaps) == 0 {
		t.Fatalf("expected periodic snapshots, got %v (%v)", snaps, err)
	}
	segs, _ := wal.SegmentInfos(dir)
	// Snapshot pruning may have removed early segments; recovery must still
	// work from what remains.
	for _, n := range []int{3, 5, 9, 10, 14, 17} {
		cdir := t.TempDir()
		copied := false
		for _, seg := range segs {
			data, err := os.ReadFile(seg.Path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(cdir, filepath.Base(seg.Path)), data, 0o644); err != nil {
				t.Fatal(err)
			}
			copied = true
		}
		if !copied {
			t.Fatal("no segments to copy")
		}
		// Truncate the log copy to exactly n records.
		var cut int64 = -1
		csegs, _ := wal.SegmentInfos(cdir)
		remaining := n
		for _, seg := range csegs {
			if cut >= 0 {
				os.Remove(seg.Path)
				continue
			}
			var end int64
			scan, err := wal.ScanSegment(seg.Path, func(r wal.Rec) error {
				if int(r.Seq) <= remaining {
					end = r.End
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if int(scan.LastSeq) >= remaining {
				cut = end
				if err := os.Truncate(seg.Path, end); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, sn := range snaps {
			if int(sn.Seq) > n {
				os.Remove(filepath.Join(cdir, filepath.Base(sn.Path)))
			} else {
				data, err := os.ReadFile(sn.Path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(cdir, filepath.Base(sn.Path)), data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
		recovered, err := Open(f.plan, f.dep, f.config(cdir))
		if err != nil {
			t.Fatalf("n=%d: Open: %v", n, err)
		}
		rec := recovered.Recovery()
		// The newest surviving snapshot at or below the crash point must be
		// the one used (pruning keeps only the most recent two, so early
		// crash points may have none left and replay from the start).
		var wantSnap uint64
		for _, sn := range snaps {
			if int(sn.Seq) <= n && sn.Seq > wantSnap {
				wantSnap = sn.Seq
			}
		}
		if rec.SnapshotSeq != wantSnap || (wantSnap > 0 && !rec.SnapshotRestored) {
			t.Fatalf("n=%d: recovered from snapshot %d (restored=%v), want %d", n, rec.SnapshotSeq, rec.SnapshotRestored, wantSnap)
		}
		if int(rec.SnapshotSeq)+rec.RecordsReplayed != n {
			t.Fatalf("n=%d: snapshot %d + %d replayed != %d", n, rec.SnapshotSeq, rec.RecordsReplayed, n)
		}
		mustMatchOracle(t, "snapshot crash n="+itoa(int64(n)), recovered, f.oracle(t, n), true)
		recovered.Close()
	}
}

// TestGracefulCloseThenResume: a clean shutdown writes a final snapshot, and
// a restarted system that ingests the rest of the stream ends bit-for-bit
// where an uninterrupted run does.
func TestGracefulCloseThenResume(t *testing.T) {
	f := newDurableFixture(t, 14)
	dir := t.TempDir()
	sys, err := Open(f.plan, f.dep, f.config(dir))
	if err != nil {
		t.Fatal(err)
	}
	half := len(f.deliveries) / 2
	for _, d := range f.deliveries[:half] {
		sys.Ingest(d.t, d.raws)
	}
	if err := sys.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	restarted, err := Open(f.plan, f.dep, f.config(dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	rec := restarted.Recovery()
	if !rec.SnapshotRestored {
		t.Fatalf("clean shutdown should leave a snapshot: %+v", rec)
	}
	if rec.RecordsReplayed != 0 {
		t.Fatalf("snapshot-covered log should need no replay, replayed %d", rec.RecordsReplayed)
	}
	for _, d := range f.deliveries[half:] {
		if err := restarted.Ingest(d.t, d.raws); err != nil {
			t.Fatalf("post-restart Ingest: %v", err)
		}
	}
	mustMatchOracle(t, "close+resume", restarted, f.oracle(t, len(f.deliveries)), true)
	restarted.Close()
}

// TestSoAStateRecoveryRoundTrip pins the durability contract of the SoA
// particle kernel: states cleansed through the flat-array kernel, cached,
// gob-snapshotted, and recovered must continue bit-for-bit — the recovered
// system re-enters the kernel (AoS state loaded back into pool arrays) and
// answers every query exactly like an uncrashed system that did the same
// interleaved preprocessing. The final snapshotBytes comparison additionally
// asserts the durable encodings themselves are identical.
func TestSoAStateRecoveryRoundTrip(t *testing.T) {
	f := newDurableFixture(t, 24)
	dir := t.TempDir()
	cfg := f.config(dir)
	cfg.Durability.SnapshotEvery = 4
	sys, err := Open(f.plan, f.dep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle := MustNew(f.plan, f.dep, f.cfg)
	preprocessed := false
	for i, d := range f.deliveries {
		if err := sys.Ingest(d.t, clone(d.raws)); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
		oracle.Ingest(d.t, clone(d.raws))
		// Preprocess mid-stream on both sides so the periodic snapshots
		// carry kernel-produced cached states, not just raw readings.
		if (i+1)%6 == 0 {
			objs := sys.Collector().KnownObjects()
			if len(objs) > 0 {
				preprocessed = true
			}
			sys.Preprocess(objs)
			oracle.Preprocess(oracle.Collector().KnownObjects())
		}
	}
	if !preprocessed {
		t.Fatal("stream produced no objects to preprocess; scenario is vacuous")
	}
	if err := sys.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	recovered, err := Open(f.plan, f.dep, f.config(dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer recovered.Close()
	if !recovered.Recovery().SnapshotRestored {
		t.Fatalf("clean shutdown should leave a snapshot: %+v", recovered.Recovery())
	}
	mustMatchOracle(t, "soa round trip", recovered, oracle, true)
	if got, want := snapshotBytes(t, recovered), snapshotBytes(t, oracle); !bytes.Equal(got, want) {
		t.Fatalf("recovered snapshot encoding diverged from uncrashed (%d vs %d bytes)", len(got), len(want))
	}
}

// TestRecoveryTornFinalRecord and TestRecoveryCRCCorruption cover the two
// damage shapes a crash leaves: a half-written tail and a bit-rotted middle.
func TestRecoveryTornFinalRecord(t *testing.T) {
	f := newDurableFixture(t, 8)
	dir := t.TempDir()
	sys, _ := Open(f.plan, f.dep, f.config(dir))
	for _, d := range f.deliveries {
		sys.Ingest(d.t, d.raws)
	}
	segs, _ := wal.SegmentInfos(dir)
	st, err := os.Stat(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0].Path, st.Size()-7); err != nil {
		t.Fatal(err)
	}
	recovered, err := Open(f.plan, f.dep, f.config(dir))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rec := recovered.Recovery()
	if !rec.Corrupt || rec.TruncatedBytes == 0 {
		t.Fatalf("torn tail not reported: %+v", rec)
	}
	if rec.RecordsReplayed != len(f.deliveries)-1 {
		t.Fatalf("replayed %d, want %d", rec.RecordsReplayed, len(f.deliveries)-1)
	}
	mustMatchOracle(t, "torn tail", recovered, f.oracle(t, len(f.deliveries)-1), true)
	recovered.Close()
}

func TestRecoveryCRCCorruptionMidSegment(t *testing.T) {
	f := newDurableFixture(t, 8)
	dir := t.TempDir()
	sys, _ := Open(f.plan, f.dep, f.config(dir))
	for _, d := range f.deliveries {
		sys.Ingest(d.t, d.raws)
	}
	segs, _ := wal.SegmentInfos(dir)
	var target wal.Rec
	if _, err := wal.ScanSegment(segs[0].Path, func(r wal.Rec) error {
		if r.Seq == 4 {
			target = r
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	data[target.Start+20] ^= 0xff
	if err := os.WriteFile(segs[0].Path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	recovered, err := Open(f.plan, f.dep, f.config(dir))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rec := recovered.Recovery()
	if !rec.Corrupt || rec.RecordsReplayed != 3 {
		t.Fatalf("mid-segment corruption recovery %+v, want 3 records", rec)
	}
	mustMatchOracle(t, "CRC corruption", recovered, f.oracle(t, 3), true)
	recovered.Close()
}

// TestSnapshotWithEmptyWAL: a data dir holding only a snapshot (all
// segments gone, e.g. aggressively pruned) still recovers to the snapshot
// point.
func TestSnapshotWithEmptyWAL(t *testing.T) {
	f := newDurableFixture(t, 6)
	dir := t.TempDir()
	sys, _ := Open(f.plan, f.dep, f.config(dir))
	for _, d := range f.deliveries {
		sys.Ingest(d.t, d.raws)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := wal.SegmentInfos(dir)
	for _, seg := range segs {
		if err := os.Remove(seg.Path); err != nil {
			t.Fatal(err)
		}
	}
	recovered, err := Open(f.plan, f.dep, f.config(dir))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rec := recovered.Recovery()
	if !rec.SnapshotRestored || rec.RecordsReplayed != 0 {
		t.Fatalf("snapshot-only recovery %+v", rec)
	}
	mustMatchOracle(t, "snapshot only", recovered, f.oracle(t, len(f.deliveries)), true)
	// The stream resumes: the reorder position came from the snapshot.
	if err := recovered.Ingest(recovered.Now()+1, nil); err != nil {
		t.Fatalf("resume after snapshot-only recovery: %v", err)
	}
	recovered.Close()
}

// TestStreamIdentityMismatch: a data directory written under a different
// seed (hence floor-plan hash) refuses to load with a typed error.
func TestStreamIdentityMismatch(t *testing.T) {
	f := newDurableFixture(t, 4)
	dir := t.TempDir()
	sys, _ := Open(f.plan, f.dep, f.config(dir))
	for _, d := range f.deliveries {
		sys.Ingest(d.t, d.raws)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	other := f.config(dir)
	other.Seed = f.cfg.Seed + 1
	_, err := Open(f.plan, f.dep, other)
	var me *wal.MismatchError
	if !errors.As(err, &me) {
		t.Fatalf("Open with foreign seed returned %v, want *wal.MismatchError", err)
	}
}
