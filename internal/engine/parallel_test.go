package engine

import (
	"reflect"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/rfid"
	"repro/internal/sim"
)

// TestParallelPreprocessDeterministic verifies the core promise of the
// parallel preprocessing module: worker count never changes the output,
// because every object's randomness is derived from (Seed, object, last
// reading time) rather than from execution order.
func TestParallelPreprocessDeterministic(t *testing.T) {
	build := func(workers int) map[int]map[int]float64 {
		plan := floorplan.DefaultOffice()
		dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
		cfg := DefaultConfig()
		cfg.Seed = 33
		cfg.Workers = workers
		sys := MustNew(plan, dep, cfg)
		tc := sim.DefaultTraceConfig()
		tc.NumObjects = 25
		tc.DwellMin, tc.DwellMax = 2, 8
		world := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), tc, 77)
		for i := 0; i < 150; i++ {
			tm, raws := world.Step()
			sys.Ingest(tm, raws)
		}
		tab := sys.Preprocess(sys.Collector().KnownObjects())
		out := make(map[int]map[int]float64)
		for _, obj := range tab.Objects() {
			m := make(map[int]float64)
			for ap, p := range tab.DistributionOf(obj) {
				m[int(ap)] = p
			}
			out[int(obj)] = m
		}
		return out
	}
	serial := build(1)
	parallel4 := build(4)
	parallel16 := build(16)
	if !reflect.DeepEqual(serial, parallel4) {
		t.Error("workers=1 and workers=4 disagree")
	}
	if !reflect.DeepEqual(serial, parallel16) {
		t.Error("workers=1 and workers=16 disagree")
	}
	if len(serial) == 0 {
		t.Fatal("no distributions computed")
	}
}

// TestRepeatedPreprocessSameAnswer verifies idempotence: asking the same
// question twice (same readings, same time) gives the same answer even
// though the cache path is exercised the second time.
func TestRepeatedPreprocessSameAnswer(t *testing.T) {
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	cfg := DefaultConfig()
	cfg.Seed = 44
	sys := MustNew(plan, dep, cfg)
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 10
	world := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), tc, 88)
	for i := 0; i < 120; i++ {
		tm, raws := world.Step()
		sys.Ingest(tm, raws)
	}
	objs := sys.Collector().KnownObjects()
	first := sys.Preprocess(objs)
	second := sys.Preprocess(objs)
	for _, obj := range first.Objects() {
		a := first.DistributionOf(obj)
		b := second.DistributionOf(obj)
		if len(a) != len(b) {
			t.Errorf("o%d support changed between identical queries", obj)
			continue
		}
		for ap, p := range a {
			if b[ap] != p {
				t.Errorf("o%d anchor %d: %v then %v", obj, ap, p, b[ap])
			}
		}
	}
}
