package engine

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/sim"
)

// TestParallelPreprocessDeterministic verifies the core promise of the
// parallel preprocessing module: worker count never changes the output,
// because every object's randomness is derived from (Seed, object, last
// reading time) rather than from execution order.
func TestParallelPreprocessDeterministic(t *testing.T) {
	build := func(workers int) map[int]map[int]float64 {
		plan := floorplan.DefaultOffice()
		dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
		cfg := DefaultConfig()
		cfg.Seed = 33
		cfg.Workers = workers
		sys := MustNew(plan, dep, cfg)
		tc := sim.DefaultTraceConfig()
		tc.NumObjects = 25
		tc.DwellMin, tc.DwellMax = 2, 8
		world := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), tc, 77)
		for i := 0; i < 150; i++ {
			tm, raws := world.Step()
			sys.Ingest(tm, raws)
		}
		tab := sys.Preprocess(sys.Collector().KnownObjects())
		out := make(map[int]map[int]float64)
		for _, obj := range tab.Objects() {
			m := make(map[int]float64)
			for ap, p := range tab.DistributionOf(obj) {
				m[int(ap)] = p
			}
			out[int(obj)] = m
		}
		return out
	}
	serial := build(1)
	parallel4 := build(4)
	parallel16 := build(16)
	if !reflect.DeepEqual(serial, parallel4) {
		t.Error("workers=1 and workers=4 disagree")
	}
	if !reflect.DeepEqual(serial, parallel16) {
		t.Error("workers=1 and workers=16 disagree")
	}
	if len(serial) == 0 {
		t.Fatal("no distributions computed")
	}
}

// snapshotBytes encodes exactly the payload writeSnapshot would, so tests
// can compare two systems' durable state byte for byte without a WAL
// directory. Collector.Snapshot and Cache.Dump both emit object-ID-sorted
// slices, so equal logical state means equal bytes.
func snapshotBytes(t *testing.T, s *System) []byte {
	t.Helper()
	hits, misses := s.cache.Stats()
	wm, started := s.reorder.Watermark()
	ms, _ := s.reorder.MaxSeen()
	snap := engineSnap{
		Stats:          s.stats,
		Collector:      s.col.Snapshot(),
		CacheEntries:   s.cache.Dump(),
		CacheHits:      hits,
		CacheMisses:    misses,
		Events:         s.eventLog,
		EventOff:       s.eventOff,
		ReorderStarted: started,
		Watermark:      wm,
		MaxSeen:        ms,
		Drops:          s.reorder.Drops(),
		Forced:         s.reorder.ForcedFlushes(),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		t.Fatalf("encode snapshot: %v", err)
	}
	return buf.Bytes()
}

// TestParallelPreprocessDeterministicAtScale drives 1000 objects through the
// batched worker-pool scheduler across the full (workers × batch size) grid
// and asserts that cumulative Stats, range and kNN answers, and the durable
// snapshot encoding are bit-for-bit identical to the serial single-object
// baseline. This pins the scheduler's whole observable surface, not just the
// distributions: cache hit/miss accounting, filter-run counters, and the
// gob-encoded particle states that recovery depends on.
func TestParallelPreprocessDeterministicAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-object grid is not a -short test")
	}
	type outcome struct {
		stats Stats
		rng   model.ResultSet
		knn   model.ResultSet
		snap  []byte
	}
	build := func(workers, batch int) outcome {
		plan := floorplan.DefaultOffice()
		dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
		cfg := DefaultConfig()
		cfg.Seed = 33
		cfg.Workers = workers
		cfg.BatchSize = batch
		sys := MustNew(plan, dep, cfg)
		tc := sim.DefaultTraceConfig()
		tc.NumObjects = 1000
		tc.DwellMin, tc.DwellMax = 2, 8
		world := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), tc, 77)
		for i := 0; i < 40; i++ {
			tm, raws := world.Step()
			sys.Ingest(tm, raws)
		}
		rng := sys.RangeQuery(geom.RectWH(5, 9, 25, 14))
		knn := sys.KNNQuery(geom.Pt(20, 12), 10)
		return outcome{stats: sys.Stats(), rng: rng, knn: knn, snap: snapshotBytes(t, sys)}
	}
	base := build(1, 1)
	if base.stats.FiltersRun == 0 || len(base.rng) == 0 {
		t.Fatalf("baseline is vacuous: stats=%+v |range|=%d", base.stats, len(base.rng))
	}
	for _, workers := range []int{1, 4, 16} {
		for _, batch := range []int{1, 7, 64} {
			if workers == 1 && batch == 1 {
				continue
			}
			got := build(workers, batch)
			if !reflect.DeepEqual(got.stats, base.stats) {
				t.Errorf("workers=%d batch=%d: stats diverge:\n got %+v\nwant %+v", workers, batch, got.stats, base.stats)
			}
			if !reflect.DeepEqual(got.rng, base.rng) {
				t.Errorf("workers=%d batch=%d: range answers diverge", workers, batch)
			}
			if !reflect.DeepEqual(got.knn, base.knn) {
				t.Errorf("workers=%d batch=%d: kNN answers diverge", workers, batch)
			}
			if !bytes.Equal(got.snap, base.snap) {
				t.Errorf("workers=%d batch=%d: snapshot bytes diverge (%d vs %d bytes)", workers, batch, len(got.snap), len(base.snap))
			}
		}
	}
}

// TestRepeatedPreprocessSameAnswer verifies idempotence: asking the same
// question twice (same readings, same time) gives the same answer even
// though the cache path is exercised the second time.
func TestRepeatedPreprocessSameAnswer(t *testing.T) {
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	cfg := DefaultConfig()
	cfg.Seed = 44
	sys := MustNew(plan, dep, cfg)
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 10
	world := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), tc, 88)
	for i := 0; i < 120; i++ {
		tm, raws := world.Step()
		sys.Ingest(tm, raws)
	}
	objs := sys.Collector().KnownObjects()
	first := sys.Preprocess(objs)
	second := sys.Preprocess(objs)
	for _, obj := range first.Objects() {
		a := first.DistributionOf(obj)
		b := second.DistributionOf(obj)
		if len(a) != len(b) {
			t.Errorf("o%d support changed between identical queries", obj)
			continue
		}
		for ap, p := range a {
			if b[ap] != p {
				t.Errorf("o%d anchor %d: %v then %v", obj, ap, p, b[ap])
			}
		}
	}
}
