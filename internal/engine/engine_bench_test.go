package engine

import (
	"fmt"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/rfid"
	"repro/internal/sim"
)

// BenchmarkEngineStep1kObjects measures one full engine second at population
// scale: simulate a second of movement for 1000 tracked objects, ingest the
// raw readings, and preprocess every known object (cached particle states
// advance one second through the batched worker pool; the anchor snap and
// telemetry run inline). ns/op here is the wall-clock cost of keeping 1000
// objects current at 1 Hz — divide by 1000 for the per-object budget, and
// multiply by 100 to estimate the 100k-object step time the roadmap targets.
func BenchmarkEngineStep1kObjects(b *testing.B) {
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	cfg := DefaultConfig()
	cfg.Seed = 7
	sys := MustNew(plan, dep, cfg)
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 1000
	tc.DwellMin, tc.DwellMax = 2, 8
	world := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), tc, 7)

	// Warm up: let every object appear at least once and build its cached
	// state, so the timed loop measures the steady state (cache hits, pooled
	// SoA advances) rather than cold-start filter runs.
	for i := 0; i < 30; i++ {
		tm, raws := world.Step()
		sys.Ingest(tm, raws)
	}
	objs := sys.Collector().KnownObjects()
	if len(objs) < 900 {
		b.Fatalf("warmup too cold: only %d/1000 objects known", len(objs))
	}
	sys.Preprocess(objs)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm, raws := world.Step()
		sys.Ingest(tm, raws)
		sys.Preprocess(objs)
	}
	b.StopTimer()
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(float64(len(objs))*float64(b.N)/secs, "objs/s")
	}
}

// BenchmarkEngineStepSharded1kObjects is the sharded-router variant of
// BenchmarkEngineStep1kObjects: the same 1000-object second (simulate,
// ingest, preprocess all known objects), routed through engine.Sharded at
// several shard counts. shards=1 is the router-overhead floor; higher counts
// show how ingest+preprocess throughput scales when object state is
// partitioned across independently locked shards.
func BenchmarkEngineStepSharded1kObjects(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			plan := floorplan.DefaultOffice()
			dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
			cfg := DefaultConfig()
			cfg.Seed = 7
			cfg.Shards = n
			sys := MustNewSharded(plan, dep, cfg)
			tc := sim.DefaultTraceConfig()
			tc.NumObjects = 1000
			tc.DwellMin, tc.DwellMax = 2, 8
			world := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), tc, 7)

			for i := 0; i < 30; i++ {
				tm, raws := world.Step()
				sys.Ingest(tm, raws)
			}
			objs := sys.KnownObjects()
			if len(objs) < 900 {
				b.Fatalf("warmup too cold: only %d/1000 objects known", len(objs))
			}
			sys.Preprocess(objs)

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tm, raws := world.Step()
				sys.Ingest(tm, raws)
				sys.Preprocess(objs)
			}
			b.StopTimer()
			secs := b.Elapsed().Seconds()
			if secs > 0 {
				b.ReportMetric(float64(len(objs))*float64(b.N)/secs, "objs/s")
			}
		})
	}
}
