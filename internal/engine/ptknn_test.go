package engine

import (
	"testing"

	"repro/internal/geom"
)

func TestPTKNNQueryEndToEnd(t *testing.T) {
	sys, world := testSystem(t, 15, 150, 71)
	out := sys.PTKNNQuery(geom.Pt(35, 12), 3, 0.3)
	for i, r := range out {
		if r.P < 0.3 || r.P > 1+1e-9 {
			t.Errorf("member %d P = %v", i, r.P)
		}
		if i > 0 && out[i].P > out[i-1].P {
			t.Error("not sorted descending")
		}
	}
	// Low threshold returns at least as many members as a high one.
	low := sys.PTKNNQuery(geom.Pt(35, 12), 3, 0.05)
	high := sys.PTKNNQuery(geom.Pt(35, 12), 3, 0.9)
	if len(low) < len(high) {
		t.Errorf("threshold monotonicity violated: %d < %d", len(low), len(high))
	}
	_ = world
}
