package engine

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/query"
)

// The paper's system answers *registered* queries: the query aware
// optimization module prunes objects against the set of currently registered
// windows and kNN points, and the evaluation module refreshes all of their
// results from one preprocessing pass. This file implements that registry on
// top of the continuous monitors.

// QueryID identifies a registered query.
type QueryID int

// EventKind classifies registered-query result changes.
type EventKind int

const (
	// Entered: an object joined a range query's result set.
	Entered EventKind = iota
	// Left: an object left a range query's result set.
	Left
	// Added: an object joined a kNN query's top-k set.
	Added
	// Removed: an object left a kNN query's top-k set.
	Removed
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case Entered:
		return "entered"
	case Left:
		return "left"
	case Added:
		return "added"
	case Removed:
		return "removed"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// QueryEvent is one result-set change of a registered query.
type QueryEvent struct {
	Query  QueryID
	Kind   EventKind
	Object model.ObjectID
	Time   model.Time
}

// String implements fmt.Stringer.
func (e QueryEvent) String() string {
	return fmt.Sprintf("q%d: o%d %s (t=%d)", e.Query, e.Object, e.Kind, e.Time)
}

type registeredRange struct {
	id       QueryID
	window   geom.Rect
	monitor  *query.ContinuousRange
	critical map[model.ReaderID]bool
	// evaluated marks that the monitor has a baseline result.
	evaluated bool
}

type registeredKNN struct {
	id      QueryID
	q       geom.Point
	k       int
	monitor *query.ContinuousKNN
}

// Registry tracks registered continuous queries for a System.
type Registry struct {
	sys    *System
	nextID QueryID
	ranges []*registeredRange
	knns   []*registeredKNN
	// eventDriven enables the critical-device optimization: range queries
	// whose critical devices saw no ENTER/LEAVE events since the last
	// evaluation are skipped. Exact under the symbolic cell model; a
	// heuristic under particle filter inference (see critical.go).
	eventDriven bool
	eventSeq    int
}

// NewRegistry creates an empty query registry over a system.
func NewRegistry(sys *System) *Registry { return &Registry{sys: sys} }

// SetEventDriven toggles the critical-device optimization.
func (r *Registry) SetEventDriven(v bool) { r.eventDriven = v }

// RegisterRange registers a continuous range query; objects whose membership
// probability crosses threshold produce Entered/Left events.
func (r *Registry) RegisterRange(window geom.Rect, threshold float64) QueryID {
	id := r.nextID
	r.nextID++
	r.ranges = append(r.ranges, &registeredRange{
		id:       id,
		window:   window,
		monitor:  query.NewContinuousRange(window, threshold),
		critical: criticalDevices(r.sys.DeploymentGraph(), window),
	})
	return id
}

// RegisterKNN registers a continuous kNN query; top-k set changes produce
// Added/Removed events.
func (r *Registry) RegisterKNN(q geom.Point, k int) QueryID {
	id := r.nextID
	r.nextID++
	r.knns = append(r.knns, &registeredKNN{
		id:      id,
		q:       q,
		k:       k,
		monitor: query.NewContinuousKNN(q, k),
	})
	return id
}

// Deregister removes a query. It reports whether the ID existed.
func (r *Registry) Deregister(id QueryID) bool {
	for i, rr := range r.ranges {
		if rr.id == id {
			r.ranges = append(r.ranges[:i], r.ranges[i+1:]...)
			return true
		}
	}
	for i, rk := range r.knns {
		if rk.id == id {
			r.knns = append(r.knns[:i], r.knns[i+1:]...)
			return true
		}
	}
	return false
}

// Len returns the number of registered queries.
func (r *Registry) Len() int { return len(r.ranges) + len(r.knns) }

// Result returns the current result membership of a registered query.
func (r *Registry) Result(id QueryID) []model.ObjectID {
	for _, rr := range r.ranges {
		if rr.id == id {
			return rr.monitor.Result()
		}
	}
	for _, rk := range r.knns {
		if rk.id == id {
			return rk.monitor.Result()
		}
	}
	return nil
}

// Evaluate refreshes every registered query from a single preprocessing pass
// over the union of their candidate objects (the paper's query aware
// optimization across all registered queries) and returns the result-set
// changes since the previous evaluation.
func (r *Registry) Evaluate() []QueryEvent {
	if r.Len() == 0 {
		return nil
	}
	s := r.sys
	now := s.col.Now()
	infos := s.objectInfos()

	// Decide which range queries actually need a refresh.
	needRange := make(map[QueryID]bool, len(r.ranges))
	events, next, truncated := s.EventsSince(r.eventSeq)
	r.eventSeq = next
	for _, rr := range r.ranges {
		if !r.eventDriven || !rr.evaluated || truncated {
			needRange[rr.id] = true
			continue
		}
		for _, ev := range events {
			if rr.critical[ev.Reader] {
				needRange[rr.id] = true
				break
			}
		}
	}

	// Union the candidates over all registered queries.
	candidateSet := make(map[model.ObjectID]bool)
	if s.cfg.UsePruning {
		windows := make([]geom.Rect, 0, len(r.ranges))
		for _, rr := range r.ranges {
			if !needRange[rr.id] {
				continue
			}
			windows = append(windows, rr.window)
		}
		if len(windows) > 0 {
			for _, o := range s.pruner.RangeCandidates(infos, windows, now) {
				candidateSet[o] = true
			}
		}
		for _, rk := range r.knns {
			for _, o := range s.pruner.KNNCandidates(infos, rk.q, rk.k, now) {
				candidateSet[o] = true
			}
		}
	} else {
		for _, info := range infos {
			candidateSet[info.Object] = true
		}
	}
	candidates := make([]model.ObjectID, 0, len(candidateSet))
	for o := range candidateSet {
		candidates = append(candidates, o)
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })

	tab := s.Preprocess(candidates)

	var out []QueryEvent
	for _, rr := range r.ranges {
		if !needRange[rr.id] {
			continue
		}
		rr.evaluated = true
		entered, left := rr.monitor.Update(s.RangeQueryOn(tab, rr.window))
		for _, o := range entered {
			out = append(out, QueryEvent{Query: rr.id, Kind: Entered, Object: o, Time: now})
		}
		for _, o := range left {
			out = append(out, QueryEvent{Query: rr.id, Kind: Left, Object: o, Time: now})
		}
	}
	for _, rk := range r.knns {
		added, removed := rk.monitor.Update(s.KNNQueryOn(tab, rk.q, rk.k))
		for _, o := range added {
			out = append(out, QueryEvent{Query: rk.id, Kind: Added, Object: o, Time: now})
		}
		for _, o := range removed {
			out = append(out, QueryEvent{Query: rk.id, Kind: Removed, Object: o, Time: now})
		}
	}
	return out
}
