package engine

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/rfid"
	"repro/internal/sim"
)

// telemetrySystem builds a warmed-up system with a custom config tweak.
func telemetrySystem(t *testing.T, warmup int, tweak func(*Config)) *System {
	t.Helper()
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	cfg := DefaultConfig()
	cfg.Seed = 77
	if tweak != nil {
		tweak(&cfg)
	}
	sys := MustNew(plan, dep, cfg)
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 10
	tc.DwellMin, tc.DwellMax = 2, 8
	simulator := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), tc, 1077)
	for i := 0; i < warmup; i++ {
		tm, raws := simulator.Step()
		sys.Ingest(tm, raws)
	}
	return sys
}

// TestStageHistogramsRecorded runs queries and checks all four filter stages
// plus both query kinds landed observations in the registry.
func TestStageHistogramsRecorded(t *testing.T) {
	sys := telemetrySystem(t, 60, nil)
	sys.RangeQuery(geom.RectWH(1, 2, 140, 32))
	sys.KNNQuery(geom.Pt(35, 12), 3)

	sys.SyncMetrics()
	var buf bytes.Buffer
	if _, err := sys.Telemetry().Registry().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseText(&buf)
	if err != nil {
		t.Fatalf("exposition does not lint: %v", err)
	}

	stage := fams["repro_filter_stage_seconds"]
	if stage == nil {
		t.Fatal("repro_filter_stage_seconds missing")
	}
	counts := map[string]float64{}
	for _, s := range stage.Samples {
		if s.Name == "repro_filter_stage_seconds_count" {
			counts[s.Labels["stage"]] = s.Value
		}
	}
	for _, want := range []string{"predict", "reweight", "resample", "snap"} {
		if counts[want] == 0 {
			t.Errorf("stage %q has no observations (got %v)", want, counts)
		}
	}

	q := fams["repro_query_seconds"]
	if q == nil {
		t.Fatal("repro_query_seconds missing")
	}
	qc := map[string]float64{}
	for _, s := range q.Samples {
		if s.Name == "repro_query_seconds_count" {
			qc[s.Labels["kind"]] = s.Value
		}
	}
	if qc["range"] != 1 || qc["knn"] != 1 {
		t.Errorf("query counts = %v, want one range and one knn", qc)
	}
}

// TestTraceRingMatchesRunCounters cross-checks the trace ring against both
// the engine's Stats counters and the runs metric: every filter execution
// leaves exactly one trace, split by mode the same way everywhere.
func TestTraceRingMatchesRunCounters(t *testing.T) {
	sys := telemetrySystem(t, 45, nil)
	sys.RangeQuery(geom.RectWH(1, 2, 140, 32))
	sys.KNNQuery(geom.Pt(35, 12), 3) // second query resumes from cache

	st := sys.Stats()
	tel := sys.Telemetry()
	if st.FiltersRun == 0 {
		t.Fatal("no full filter runs recorded")
	}
	traces := tel.Trace.Snapshot()
	var full, resumed int
	for _, tr := range traces {
		if tr.Resumed {
			resumed++
		} else {
			full++
		}
		if tr.Particles <= 0 {
			t.Errorf("trace for object %d has %d particles", tr.Object, tr.Particles)
		}
		if tr.ESS <= 0 || float64(tr.Particles) < tr.ESS-1e-9 {
			t.Errorf("trace ESS %v outside (0, %d]", tr.ESS, tr.Particles)
		}
	}
	if full != st.FiltersRun || resumed != st.FiltersResumed {
		t.Errorf("trace ring has %d full + %d resumed, stats say %d + %d",
			full, resumed, st.FiltersRun, st.FiltersResumed)
	}
	if got := tel.runsFull.Value(); got != uint64(st.FiltersRun) {
		t.Errorf("runs_total{mode=full} = %d, stats %d", got, st.FiltersRun)
	}
	if got := tel.runsResumed.Value(); got != uint64(st.FiltersResumed) {
		t.Errorf("runs_total{mode=resumed} = %d, stats %d", got, st.FiltersResumed)
	}
	if int(tel.Trace.Total()) != len(traces) && len(traces) != tel.Trace.Cap() {
		t.Errorf("ring total %d disagrees with snapshot %d", tel.Trace.Total(), len(traces))
	}
}

// TestSlowQueryLog sets a threshold of one nanosecond so every query is
// slow, and checks the log and counter fire.
func TestSlowQueryLog(t *testing.T) {
	sys := telemetrySystem(t, 30, func(c *Config) {
		c.SlowQueryThreshold = time.Nanosecond
	})
	sys.RangeQuery(geom.RectWH(1, 2, 140, 32))
	sys.KNNQuery(geom.Pt(35, 12), 3)

	tel := sys.Telemetry()
	if got := tel.slowQueries.Value(); got != 2 {
		t.Errorf("slow query counter = %d, want 2", got)
	}
	entries := tel.Slow.Snapshot()
	if len(entries) != 2 {
		t.Fatalf("slow log has %d entries, want 2", len(entries))
	}
	if entries[0].Kind != "range" || entries[1].Kind != "knn" {
		t.Errorf("slow log kinds = %q, %q", entries[0].Kind, entries[1].Kind)
	}
	for _, e := range entries {
		if e.Detail == "" || e.Micros < 0 {
			t.Errorf("malformed slow entry %+v", e)
		}
	}
}

// TestSlowQueryLogDisabled checks threshold 0 records latency histograms but
// never the slow log.
func TestSlowQueryLogDisabled(t *testing.T) {
	sys := telemetrySystem(t, 30, func(c *Config) {
		c.SlowQueryThreshold = 0
	})
	sys.RangeQuery(geom.RectWH(1, 2, 140, 32))
	tel := sys.Telemetry()
	if got := tel.slowQueries.Value(); got != 0 {
		t.Errorf("slow counter = %d with disabled log", got)
	}
	if n := len(tel.Slow.Snapshot()); n != 0 {
		t.Errorf("slow log has %d entries with disabled log", n)
	}
	if tel.queryRange.Count() != 1 {
		t.Errorf("range latency histogram count = %d, want 1", tel.queryRange.Count())
	}
}

// TestSyncMetricsMirrorsStats checks the scrape-time mirrors equal the
// authoritative engine accounting.
func TestSyncMetricsMirrorsStats(t *testing.T) {
	sys := telemetrySystem(t, 40, nil)
	// A rejected (late) batch and some invalid readings to populate drops.
	sys.Ingest(1, nil)
	sys.SyncMetrics()

	st := sys.Stats()
	tel := sys.Telemetry()
	if got := tel.ingested.Value(); got != uint64(st.ReadingsIngested) {
		t.Errorf("ingested mirror %d != stats %d", got, st.ReadingsIngested)
	}
	if got := tel.rejectedBatches.Value(); got != uint64(st.Ingest.LateBatches) {
		t.Errorf("rejected mirror %d != stats %d", got, st.Ingest.LateBatches)
	}
	if st.Ingest.LateBatches == 0 {
		t.Error("late batch not accounted")
	}
	for kind, c := range tel.dropped {
		if got, want := c.Value(), uint64(st.Ingest.Of(kind)); got != want {
			t.Errorf("dropped{%v} mirror %d != stats %d", kind, got, want)
		}
	}
	if got := tel.objectsKnown.Value(); got != float64(sys.Collector().NumObjects()) {
		t.Errorf("objects mirror %v != %d", got, sys.Collector().NumObjects())
	}
}

// TestCacheMetricsWired checks cache hits and misses flow into the registry
// counters alongside the cache's own stats.
func TestCacheMetricsWired(t *testing.T) {
	sys := telemetrySystem(t, 45, nil)
	sys.RangeQuery(geom.RectWH(1, 2, 140, 32))
	sys.RangeQuery(geom.RectWH(1, 2, 140, 32))

	hits, misses := sys.CacheStats()
	tel := sys.Telemetry()
	if got := tel.cacheHits.Value(); got != uint64(hits) {
		t.Errorf("cache hit counter %d != stats %d", got, hits)
	}
	if got := tel.cacheMisses.Value(); got != uint64(misses) {
		t.Errorf("cache miss counter %d != stats %d", got, misses)
	}
	if hits == 0 {
		t.Error("second identical query produced no cache hits")
	}
}
