package engine

import (
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/sim"
	"repro/internal/wal"
)

// shardedOutcome is everything externally observable about an engine after a
// fixed ingest stream and a fixed query sequence: answers, analytics,
// events, and every counter. Equivalence tests compare it with
// reflect.DeepEqual, so ordering is pinned too.
type shardedOutcome struct {
	rng     model.ResultSet
	knn     model.ResultSet
	rngAt   model.ResultSet
	knnAt   model.ResultSet
	occ     []RoomOdds
	loc     Localization
	locOK   bool
	events  []model.Event
	known   []model.ObjectID
	stats   Stats
	hits    int
	misses  int
}

// observe runs the fixed ingest stream and query sequence against any engine
// exposing the System/Sharded query surface. Both engine kinds must execute
// the exact same sequence — Stats counts queries and filter runs, and
// historical queries consume the engine's replay RNG in call order.
func observe[E interface {
	Ingest(t model.Time, raws []model.RawReading) error
	FlushIngest()
	RangeQuery(window geom.Rect) model.ResultSet
	KNNQuery(q geom.Point, k int) model.ResultSet
	RangeQueryAt(window geom.Rect, t model.Time) model.ResultSet
	KNNQueryAt(q geom.Point, k int, t model.Time) model.ResultSet
	Occupancy() []RoomOdds
	Localize(obj model.ObjectID) (Localization, bool)
	EventsSince(seq int) ([]model.Event, int, bool)
	KnownObjects() []model.ObjectID
	Stats() Stats
	CacheStats() (hits, misses int)
}](t *testing.T, sys E, world *sim.Simulator) shardedOutcome {
	t.Helper()
	var mid model.Time
	for i := 0; i < 80; i++ {
		tm, raws := world.Step()
		if i == 40 {
			mid = tm
		}
		if err := sys.Ingest(tm, raws); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	sys.FlushIngest()

	var out shardedOutcome
	out.rng = sys.RangeQuery(geom.RectWH(5, 9, 25, 14))
	out.knn = sys.KNNQuery(geom.Pt(20, 12), 10)
	out.rngAt = sys.RangeQueryAt(geom.RectWH(5, 9, 25, 14), mid)
	out.knnAt = sys.KNNQueryAt(geom.Pt(20, 12), 10, mid)
	out.occ = sys.Occupancy()
	out.known = sys.KnownObjects()
	if len(out.known) > 0 {
		out.loc, out.locOK = sys.Localize(out.known[len(out.known)/2])
	}
	out.events, _, _ = sys.EventsSince(0)
	out.stats = sys.Stats()
	out.hits, out.misses = sys.CacheStats()
	return out
}

// TestShardedEquivalence is the tentpole correctness property: a Sharded
// engine at ANY shard count answers every query, reports every counter, and
// exposes every event exactly as the single-shard System does over the same
// input. The merge discipline (object-sorted preprocessing, (time, object)
// event merge, per-shard stat summation) makes shard count unobservable.
func TestShardedEquivalence(t *testing.T) {
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	baseCfg := DefaultConfig()
	baseCfg.Seed = 33
	baseCfg.KeepHistory = true

	single := MustNew(plan, dep, baseCfg)
	world := sim.MustNew(single.Graph(), rfid.NewSensor(dep), traceCfg120(), 77)
	base := observe(t, single, world)
	if base.stats.FiltersRun == 0 || len(base.rng) == 0 || len(base.events) == 0 || !base.locOK {
		t.Fatalf("baseline is vacuous: stats=%+v |range|=%d |events|=%d locOK=%v",
			base.stats, len(base.rng), len(base.events), base.locOK)
	}

	for _, n := range []int{1, 4, 16} {
		cfg := baseCfg
		cfg.Shards = n
		sh := MustNewSharded(plan, dep, cfg)
		world := sim.MustNew(sh.Graph(), rfid.NewSensor(dep), traceCfg120(), 77)
		got := observe(t, sh, world)
		if !reflect.DeepEqual(got, base) {
			if !reflect.DeepEqual(got.rng, base.rng) {
				t.Errorf("shards=%d: range answers diverge", n)
			}
			if !reflect.DeepEqual(got.knn, base.knn) {
				t.Errorf("shards=%d: kNN answers diverge", n)
			}
			if !reflect.DeepEqual(got.rngAt, base.rngAt) {
				t.Errorf("shards=%d: historical range answers diverge", n)
			}
			if !reflect.DeepEqual(got.knnAt, base.knnAt) {
				t.Errorf("shards=%d: historical kNN answers diverge", n)
			}
			if !reflect.DeepEqual(got.occ, base.occ) {
				t.Errorf("shards=%d: occupancy diverges:\n got %+v\nwant %+v", n, got.occ, base.occ)
			}
			if !reflect.DeepEqual(got.loc, base.loc) || got.locOK != base.locOK {
				t.Errorf("shards=%d: localization diverges:\n got %+v\nwant %+v", n, got.loc, base.loc)
			}
			if !reflect.DeepEqual(got.events, base.events) {
				t.Errorf("shards=%d: event streams diverge (%d vs %d events)", n, len(got.events), len(base.events))
			}
			if !reflect.DeepEqual(got.known, base.known) {
				t.Errorf("shards=%d: known objects diverge", n)
			}
			if got.stats != base.stats {
				t.Errorf("shards=%d: stats diverge:\n got %+v\nwant %+v", n, got.stats, base.stats)
			}
			if got.hits != base.hits || got.misses != base.misses {
				t.Errorf("shards=%d: cache stats diverge: got %d/%d want %d/%d",
					n, got.hits, got.misses, base.hits, base.misses)
			}
		}
	}
}

func traceCfg120() sim.TraceConfig {
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 120
	tc.DwellMin, tc.DwellMax = 2, 8
	return tc
}

// recoveredOutcome captures the queryable state right after a reopen, before
// any further ingestion.
func recoveredOutcome[E interface {
	RangeQuery(window geom.Rect) model.ResultSet
	KNNQuery(q geom.Point, k int) model.ResultSet
	Occupancy() []RoomOdds
	EventsSince(seq int) ([]model.Event, int, bool)
	KnownObjects() []model.ObjectID
	Stats() Stats
}](sys E) shardedOutcome {
	var out shardedOutcome
	out.rng = sys.RangeQuery(geom.RectWH(5, 9, 25, 14))
	out.knn = sys.KNNQuery(geom.Pt(20, 12), 10)
	out.occ = sys.Occupancy()
	out.events, _, _ = sys.EventsSince(0)
	out.known = sys.KnownObjects()
	out.stats = sys.Stats()
	return out
}

// ingestTrace feeds steps seconds of the deterministic trace into sys.
func ingestTrace(t *testing.T, sys interface {
	Ingest(tm model.Time, raws []model.RawReading) error
	FlushIngest()
}, world *sim.Simulator, steps int) {
	t.Helper()
	for i := 0; i < steps; i++ {
		tm, raws := world.Step()
		if err := sys.Ingest(tm, raws); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	sys.FlushIngest()
}

// TestShardedRecoveryEquivalence pins recovery: after an identical durable
// ingest run, a reopened Sharded engine at any shard count answers exactly
// like a reopened single engine — whether the first process closed cleanly
// (snapshot restore) or vanished without Close (pure WAL replay).
func TestShardedRecoveryEquivalence(t *testing.T) {
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	newCfg := func(dir string) Config {
		cfg := DefaultConfig()
		cfg.Seed = 33
		cfg.Durability = DurabilityConfig{Dir: dir, Fsync: wal.SyncAlways}
		return cfg
	}

	for _, clean := range []bool{true, false} {
		name := "clean-close"
		if !clean {
			name = "crash"
		}
		t.Run(name, func(t *testing.T) {
			// Single-engine baseline.
			dir := t.TempDir()
			sys, err := Open(plan, dep, newCfg(dir))
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			world := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), traceCfg120(), 77)
			ingestTrace(t, sys, world, 60)
			if clean {
				if err := sys.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
			}
			re, err := Open(plan, dep, newCfg(dir))
			if err != nil {
				t.Fatalf("reopen single: %v", err)
			}
			base := recoveredOutcome(re)
			if len(base.known) == 0 || len(base.rng) == 0 {
				t.Fatalf("recovered baseline is vacuous: %d objects, %d range rows", len(base.known), len(base.rng))
			}
			if clean != re.Recovery().SnapshotRestored {
				t.Fatalf("single: SnapshotRestored = %v after %s", re.Recovery().SnapshotRestored, name)
			}

			for _, n := range []int{1, 4, 16} {
				sdir := t.TempDir()
				cfg := newCfg(sdir)
				cfg.Shards = n
				sh, err := OpenSharded(plan, dep, cfg)
				if err != nil {
					t.Fatalf("OpenSharded(%d): %v", n, err)
				}
				world := sim.MustNew(sh.Graph(), rfid.NewSensor(dep), traceCfg120(), 77)
				ingestTrace(t, sh, world, 60)
				if clean {
					if err := sh.Close(); err != nil {
						t.Fatalf("Close sharded(%d): %v", n, err)
					}
				}
				sre, err := OpenSharded(plan, dep, cfg)
				if err != nil {
					t.Fatalf("reopen sharded(%d): %v", n, err)
				}
				if clean != sre.Recovery().SnapshotRestored {
					t.Errorf("shards=%d: SnapshotRestored = %v after %s", n, sre.Recovery().SnapshotRestored, name)
				}
				got := recoveredOutcome(sre)
				if !reflect.DeepEqual(got, base) {
					if !reflect.DeepEqual(got.rng, base.rng) {
						t.Errorf("shards=%d %s: recovered range answers diverge", n, name)
					}
					if !reflect.DeepEqual(got.knn, base.knn) {
						t.Errorf("shards=%d %s: recovered kNN answers diverge", n, name)
					}
					if !reflect.DeepEqual(got.occ, base.occ) {
						t.Errorf("shards=%d %s: recovered occupancy diverges", n, name)
					}
					if !reflect.DeepEqual(got.events, base.events) {
						t.Errorf("shards=%d %s: recovered events diverge (%d vs %d)", n, name, len(got.events), len(base.events))
					}
					if !reflect.DeepEqual(got.known, base.known) {
						t.Errorf("shards=%d %s: recovered known objects diverge", n, name)
					}
					if got.stats != base.stats {
						t.Errorf("shards=%d %s: recovered stats diverge:\n got %+v\nwant %+v", n, name, got.stats, base.stats)
					}
				}
				if err := sre.Close(); err != nil {
					t.Errorf("close reopened sharded(%d): %v", n, err)
				}
			}
		})
	}
}

// TestShardedShardGuard verifies the data directory pins its shard count:
// reopening with a different count is refused instead of silently
// mis-routing objects.
func TestShardedShardGuard(t *testing.T) {
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.Seed = 1
	cfg.Shards = 4
	cfg.Durability = DurabilityConfig{Dir: dir, Fsync: wal.SyncAlways}
	sh, err := OpenSharded(plan, dep, cfg)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	if err := sh.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	cfg.Shards = 8
	if _, err := OpenSharded(plan, dep, cfg); err == nil {
		t.Fatal("reopening a 4-shard directory with 8 shards succeeded")
	}
}

// TestShardedRaggedTailRecovery crashes a sharded engine "between the
// per-shard appends of one second": one shard's WAL runs a record ahead of
// the others. Recovery must cut the ragged tail back to the common sequence,
// report the repair, and leave every log appendable.
func TestShardedRaggedTailRecovery(t *testing.T) {
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.Seed = 33
	cfg.Shards = 4
	cfg.Durability = DurabilityConfig{Dir: dir, Fsync: wal.SyncAlways}

	sh, err := OpenSharded(plan, dep, cfg)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	world := sim.MustNew(sh.Graph(), rfid.NewSensor(dep), traceCfg120(), 77)
	var last model.Time
	for i := 0; i < 40; i++ {
		tm, raws := world.Step()
		if err := sh.Ingest(tm, raws); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
		last = tm
	}
	sh.FlushIngest()
	want := recoveredOutcome(sh)
	if err := sh.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Simulate the partial append: shard 0 gets one more record than the
	// rest, at the next sequence, for a second the router never acked.
	sid, err := cfg.StreamID(plan, dep)
	if err != nil {
		t.Fatalf("StreamID: %v", err)
	}
	l, rep, err := wal.Open(filepath.Join(dir, "shard-0000"),
		wal.Options{StreamID: sid}, func(uint64, []byte) error { return nil })
	if err != nil {
		t.Fatalf("open shard-0000 log: %v", err)
	}
	extra := wal.Batch{Time: last + 1, MaxSeen: last + 1}
	if err := l.Append(rep.LastSeq+1, extra.Encode(nil)); err != nil {
		t.Fatalf("append ragged record: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close shard-0000 log: %v", err)
	}

	re, err := OpenSharded(plan, dep, cfg)
	if err != nil {
		t.Fatalf("reopen after ragged tail: %v", err)
	}
	rec := re.Recovery()
	if !rec.Corrupt || rec.TruncatedBytes <= 0 {
		t.Errorf("ragged tail not reported: %+v", rec)
	}
	got := recoveredOutcome(re)
	// The un-acked extra second must be invisible: Stats counters reflect
	// recovered query counters, so compare the data surfaces only.
	if !reflect.DeepEqual(got.known, want.known) || !reflect.DeepEqual(got.events, want.events) {
		t.Errorf("state after ragged-tail repair diverges from pre-crash state")
	}
	// The repaired logs must accept the next seconds and close cleanly.
	for i := 0; i < 5; i++ {
		tm, raws := world.Step()
		if err := re.Ingest(tm, raws); err != nil {
			t.Fatalf("Ingest after repair: %v", err)
		}
	}
	re.FlushIngest()
	if err := re.WALError(); err != nil {
		t.Fatalf("WAL failed after repair: %v", err)
	}
	if err := re.Close(); err != nil {
		t.Fatalf("Close after repair: %v", err)
	}
}

// TestOccupancyDeterministicOrder pins the map-order audit: Occupancy is
// assembled from map-backed distributions, and its output order (descending
// probability, ties by room) must be identical run to run. Two engines built
// from the same seeds must emit the same slice, element for element.
func TestOccupancyDeterministicOrder(t *testing.T) {
	build := func() []RoomOdds {
		plan := floorplan.DefaultOffice()
		dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
		cfg := DefaultConfig()
		cfg.Seed = 5
		sys := MustNew(plan, dep, cfg)
		world := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), traceCfg120(), 9)
		ingestTrace(t, sys, world, 50)
		return sys.Occupancy()
	}
	a, b := build(), build()
	if len(a) == 0 {
		t.Fatal("occupancy is empty")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("occupancy order is not deterministic:\n a=%+v\n b=%+v", a, b)
	}
	for i := 1; i < len(a); i++ {
		if a[i].P > a[i-1].P {
			t.Fatalf("occupancy not sorted by descending probability at %d: %+v", i, a)
		}
		if a[i].P == a[i-1].P && a[i].Room <= a[i-1].Room {
			t.Fatalf("occupancy tie not broken by room at %d: %+v", i, a)
		}
	}
}
