package engine

import (
	"context"

	"repro/internal/anchor"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/model"
)

// Occupancy returns the expected number of objects per room (and the
// combined hallway share as a NoRoom entry), ranked descending — the
// building-wide density view facilities dashboards want.
func (s *System) Occupancy() []RoomOdds {
	tab := s.Preprocess(infosToIDs(s.objectInfos()))
	return occupancyOn(s.idx, tab)
}

// OccupancyContext is Occupancy under a caller deadline: a deadline overrun
// returns the rooms computable from the objects preprocessed so far plus the
// typed partial error, mirroring RangeQueryContext.
func (s *System) OccupancyContext(ctx context.Context) ([]RoomOdds, error) {
	tab, err := s.preprocessCtx(ctx, infosToIDs(s.objectInfos()))
	if tab == nil {
		tab = anchor.NewTable()
	}
	return occupancyOn(s.idx, tab), err
}

// occupancyOn accumulates a table's distributions into per-room expectations.
// Objects and anchors are visited in sorted order: float addition is not
// associative, so a pinned order is what makes the answer reproducible across
// runs — and identical between the single and sharded engines, which both
// come through here with the same merged table.
func occupancyOn(idx *anchor.Index, tab *anchor.Table) []RoomOdds {
	byRoom := make(map[floorplan.RoomID]float64)
	for _, obj := range tab.Objects() {
		dist := tab.DistributionOf(obj)
		for _, ap := range sortedAnchorIDs(dist) {
			byRoom[idx.Anchor(ap).Room] += dist[ap]
		}
	}
	out := make([]RoomOdds, 0, len(byRoom))
	for room, p := range byRoom {
		out = append(out, RoomOdds{Room: room, P: p})
	}
	sortRoomOdds(out)
	return out
}

func sortRoomOdds(out []RoomOdds) {
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
}

func less(a, b RoomOdds) bool {
	if a.P != b.P {
		return a.P > b.P
	}
	return a.Room < b.Room
}

// TrajectoryPoint is one reconstructed sample of an object's past.
type TrajectoryPoint struct {
	Time model.Time
	// Mean is the probability-weighted position estimate.
	Mean geom.Point
	// Room is the most probable room at that moment (NoRoom for hallway).
	Room floorplan.RoomID
	// RoomProb is the probability of Room (or the hallway share).
	RoomProb float64
}

// Trajectory reconstructs an object's movement between two past time stamps
// by running historical inference every step seconds. It needs KeepHistory
// for times beyond the live retention window. Samples where the object had
// no readings yet are skipped.
func (s *System) Trajectory(obj model.ObjectID, from, to, step model.Time) []TrajectoryPoint {
	if step <= 0 {
		step = 1
	}
	var out []TrajectoryPoint
	for t := from; t <= to; t += step {
		tab := s.PreprocessAt([]model.ObjectID{obj}, t)
		dist := tab.DistributionOf(obj)
		if len(dist) == 0 {
			continue
		}
		var mx, my float64
		for _, ap := range sortedAnchorIDs(dist) {
			a, p := s.idx.Anchor(ap), dist[ap]
			mx += a.Pos.X * p
			my += a.Pos.Y * p
		}
		tp := TrajectoryPoint{Time: t, Mean: geom.Pt(mx, my)}
		odds := roomOdds(s.idx, dist)
		if len(odds) > 0 {
			tp.Room, tp.RoomProb = odds[0].Room, odds[0].P
		}
		out = append(out, tp)
	}
	return out
}
