package engine

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/model"
	"repro/internal/shardmap"
	"repro/internal/sim/errfs"
	"repro/internal/wal"
)

// fastRetry keeps the transient-retry backoff out of test wall-clock time.
var fastRetry = RetryConfig{Max: 4, BaseDelay: 50 * time.Microsecond, MaxDelay: 200 * time.Microsecond}

// TestTransientWALFaultsAbsorbed injects bounded transient write and fsync
// faults into a single durable engine: the retry loop must absorb every one —
// no ingest error, no WAL error, retry telemetry incremented — and the final
// state must be bit-for-bit the unfaulted oracle.
func TestTransientWALFaultsAbsorbed(t *testing.T) {
	f := newDurableFixture(t, 14)
	fsys := errfs.New(nil, 7)
	dir := t.TempDir()
	cfg := f.config(dir)
	cfg.Durability.FS = fsys
	cfg.Durability.Retry = fastRetry
	sys, err := Open(f.plan, f.dep, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	wh := fsys.Fail(errfs.Rule{Ops: errfs.OpWrite, After: 4, Times: 2, Transient: true})
	sh := fsys.Fail(errfs.Rule{Ops: errfs.OpSync, After: 9, Times: 2, Transient: true})

	for _, d := range f.deliveries {
		if err := sys.Ingest(d.t, d.raws); err != nil {
			t.Fatalf("Ingest under transient faults: %v", err)
		}
	}
	if wh.Fired() == 0 || sh.Fired() == 0 {
		t.Fatalf("faults never fired (write=%d sync=%d); scenario proves nothing", wh.Fired(), sh.Fired())
	}
	if sys.WALError() != nil {
		t.Fatalf("transient faults poisoned the WAL: %v", sys.WALError())
	}
	if got := sys.tel.walRetries.Value(); got == 0 {
		t.Error("repro_wal_retries_total stayed 0 despite fired transient faults")
	}
	mustMatchOracle(t, "transient faults absorbed", sys, f.oracle(t, len(f.deliveries)), true)
	fsys.Clear()
	if err := sys.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestCrashRecoveryWithTransientSyncFaults extends the crash-at-every-offset
// property: run the stream under probabilistic transient fsync faults (all
// absorbed by retries), then crash at every record boundary of the surviving
// log and require recovery to be bit-for-bit the oracle over that acked
// prefix. Transient faults must never cost an acked record.
func TestCrashRecoveryWithTransientSyncFaults(t *testing.T) {
	f := newDurableFixture(t, 12)
	fsys := errfs.New(nil, 11)
	dir := t.TempDir()
	cfg := f.config(dir)
	cfg.Durability.FS = fsys
	cfg.Durability.Retry = fastRetry
	sys, err := Open(f.plan, f.dep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := fsys.Fail(errfs.Rule{Ops: errfs.OpSync, Prob: 0.35, Transient: true})
	for _, d := range f.deliveries {
		if err := sys.Ingest(d.t, d.raws); err != nil {
			t.Fatalf("Ingest under transient sync faults: %v", err)
		}
	}
	if h.Fired() == 0 {
		t.Fatal("no sync fault fired; raise Prob or the stream length")
	}
	// Crash: no Close. Recovery below runs on the real filesystem.
	segs, err := wal.SegmentInfos(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("want one segment, got %v (%v)", segs, err)
	}
	full, err := os.ReadFile(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	type boundary struct {
		end  int64
		recs int
	}
	var bounds []boundary
	scan, err := wal.ScanSegment(segs[0].Path, func(r wal.Rec) error {
		bounds = append(bounds, boundary{end: r.End, recs: int(r.Seq)})
		return nil
	})
	if err != nil || scan.Stopped {
		t.Fatalf("scan of surviving segment: %+v err=%v", scan, err)
	}
	// Every delivery was acked, so every delivery must be on disk: absorbed
	// transients lose nothing.
	if len(bounds) != len(f.deliveries) {
		t.Fatalf("%d records for %d acked deliveries", len(bounds), len(f.deliveries))
	}
	for _, b := range bounds {
		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, filepath.Base(segs[0].Path)), full[:b.end], 0o644); err != nil {
			t.Fatal(err)
		}
		recovered, err := Open(f.plan, f.dep, f.config(cdir))
		if err != nil {
			t.Fatalf("record %d: Open: %v", b.recs, err)
		}
		if got := recovered.Recovery().RecordsReplayed; got != b.recs {
			t.Fatalf("record %d: replayed %d", b.recs, got)
		}
		mustMatchOracle(t, "crash after record "+itoa(int64(b.recs)), recovered, f.oracle(t, b.recs), b.recs == len(bounds))
		recovered.Close()
	}
}

// TestSnapshotFailureDoesNotStallSchedule breaks exactly one snapshot write:
// ingestion must keep acking, the failure must be counted, and the NEXT
// snapshot tick must succeed — a failed snapshot delays compaction, it does
// not stop the schedule or the stream.
func TestSnapshotFailureDoesNotStallSchedule(t *testing.T) {
	f := newDurableFixture(t, 16)
	fsys := errfs.New(nil, 13)
	dir := t.TempDir()
	cfg := f.config(dir)
	cfg.Durability.FS = fsys
	cfg.Durability.SnapshotEvery = 3
	sys, err := Open(f.plan, f.dep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := fsys.Fail(errfs.Rule{Ops: errfs.OpWrite, Path: "snap-", Times: 1})
	for _, d := range f.deliveries {
		if err := sys.Ingest(d.t, d.raws); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	if h.Fired() != 1 {
		t.Fatalf("snapshot fault fired %d times, want 1", h.Fired())
	}
	if got := sys.tel.snapshotFailures.Value(); got == 0 {
		t.Error("repro_snapshot_failures_total stayed 0 despite a failed snapshot write")
	}
	snaps, err := wal.ListSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshot ever landed: one failed write stalled the schedule")
	}
	if last := snaps[len(snaps)-1].Seq; last < 6 {
		t.Errorf("newest snapshot at seq %d; schedule never recovered past the failed tick", last)
	}
	mustMatchOracle(t, "after snapshot failure", sys, f.oracle(t, len(f.deliveries)), true)
	if err := sys.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// quarantineFixtureCfg is the shared 4-shard durable config for the
// fault-isolation tests: error-injecting FS, fast transient retries, and a
// background healer parked out of the way so the tests drive HealNow.
func quarantineFixtureCfg(f *durableFixture, dir string, fsys *errfs.FS) Config {
	cfg := f.config(dir)
	cfg.Shards = 4
	// With the cache on, answers depend on when past queries ran; these tests
	// query mid-stream (while degraded) and the oracle does not, so pin the
	// cache-off invariant: quiesced answers are a pure function of the stream.
	cfg.UseCache = false
	cfg.Durability.FS = fsys
	cfg.Durability.Retry = fastRetry
	cfg.Durability.HealBaseDelay = time.Hour
	cfg.Durability.HealMaxDelay = time.Hour
	return cfg
}

// shardFiltered returns the delivery's readings minus those owned by shard.
func shardFiltered(raws []model.RawReading, shard, n int) []model.RawReading {
	out := make([]model.RawReading, 0, len(raws))
	for _, r := range raws {
		if shardmap.Of(r.Object, n) != shard {
			out = append(out, r)
		}
	}
	return out
}

// shardOwned counts the delivery's readings owned by shard.
func shardOwned(raws []model.RawReading, shard, n int) int {
	return len(raws) - len(shardFiltered(raws, shard, n))
}

// quarantineOracle builds a memory-only 4-shard engine fed the effective
// stream: full deliveries outside [from, to), shard-filtered inside it.
func quarantineOracle(t *testing.T, f *durableFixture, shard, from, to int) *Sharded {
	t.Helper()
	cfg := f.cfg
	cfg.Shards = 4
	cfg.UseCache = false
	oracle := MustNewSharded(f.plan, f.dep, cfg)
	for i, d := range f.deliveries {
		raws := d.raws
		if i >= from && i < to {
			raws = shardFiltered(raws, shard, 4)
		}
		if err := oracle.Ingest(d.t, raws); err != nil {
			t.Fatalf("oracle ingest: %v", err)
		}
	}
	oracle.FlushIngest()
	return oracle
}

// mustMatchShardedOracle compares the externally observable answers (range,
// kNN, occupancy, events, known objects) of a healed engine against the
// effective-stream oracle. Stats are excluded: the faulted run counts typed
// drops the oracle never saw; the caller asserts those separately.
func mustMatchShardedOracle(t *testing.T, label string, got, want *Sharded) {
	t.Helper()
	g, w := recoveredOutcome(got), recoveredOutcome(want)
	g.stats, w.stats = Stats{}, Stats{}
	if !reflect.DeepEqual(g, w) {
		if !reflect.DeepEqual(g.rng, w.rng) {
			t.Errorf("%s: range answers diverge:\n  got  %v\n  want %v", label, g.rng, w.rng)
		}
		if !reflect.DeepEqual(g.knn, w.knn) {
			t.Errorf("%s: kNN answers diverge", label)
		}
		if !reflect.DeepEqual(g.occ, w.occ) {
			t.Errorf("%s: occupancy diverges", label)
		}
		if !reflect.DeepEqual(g.events, w.events) {
			t.Errorf("%s: event streams diverge (%d vs %d events)", label, len(g.events), len(w.events))
		}
		if !reflect.DeepEqual(g.known, w.known) {
			t.Errorf("%s: known objects diverge:\n  got  %v\n  want %v", label, g.known, w.known)
		}
		t.Fatalf("%s: healed engine diverged from the effective-stream oracle", label)
	}
}

// TestShardPermanentFaultIsolatesAndHeals is the PR's acceptance scenario: at
// 4 shards, a permanent fault in one shard's WAL must quarantine that shard
// only — typed drops for its objects, partial answers naming it, no
// engine-wide WAL error — and after the fault clears, HealNow must restore
// full service with answers bit-for-bit the unfaulted-oracle's over the
// effective stream.
func TestShardPermanentFaultIsolatesAndHeals(t *testing.T) {
	const faultAt, healAt = 10, 24
	f := newDurableFixture(t, 30)
	fsys := errfs.New(nil, 17)
	dir := t.TempDir()
	sh, err := OpenSharded(f.plan, f.dep, quarantineFixtureCfg(f, dir, fsys))
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	for _, d := range f.deliveries[:faultAt] {
		if err := sh.Ingest(d.t, d.raws); err != nil {
			t.Fatalf("clean ingest: %v", err)
		}
	}
	fsys.Fail(errfs.Rule{Ops: errfs.OpWrite, Path: "shard-0002"})
	var droppedTyped, droppedWant int
	for i := faultAt; i < healAt; i++ {
		d := f.deliveries[i]
		droppedWant += shardOwned(d.raws, 2, 4)
		err := sh.Ingest(d.t, d.raws)
		if err == nil {
			if shardOwned(d.raws, 2, 4) > 0 {
				t.Fatalf("second %d: ingest acked readings for the dead shard without a typed error", i)
			}
			continue
		}
		var ie *ingest.Error
		if !errors.As(err, &ie) || ie.Kind != ingest.KindQuarantined {
			t.Fatalf("second %d: ingest error is not a typed quarantine drop: %v", i, err)
		}
		droppedTyped += ie.Dropped
	}
	sh.FlushIngest()

	if werr := sh.WALError(); werr != nil {
		t.Fatalf("one dead shard poisoned the whole engine: %v", werr)
	}
	if ds := sh.DegradedShards(); !reflect.DeepEqual(ds, []int{2}) {
		t.Fatalf("DegradedShards = %v, want [2]", ds)
	}
	if droppedTyped != droppedWant {
		t.Errorf("typed drops = %d, want %d (every shard-2 reading in the window)", droppedTyped, droppedWant)
	}
	if got := sh.Stats().Ingest.QuarantinedReadings; got != droppedWant {
		t.Errorf("Stats.Ingest.QuarantinedReadings = %d, want %d", got, droppedWant)
	}
	if _, err := os.Stat(quarMarkerPath(dir, 2)); err != nil {
		t.Errorf("quarantine marker missing: %v", err)
	}

	// Every query surface must answer from the live shards and say so.
	ctx := context.Background()
	if res, qerr := sh.RangeQueryContext(ctx, probeWindow); qerr == nil {
		t.Error("range query under quarantine reported no degradation")
	} else if qe, ok := IsQuarantine(qerr); !ok || !reflect.DeepEqual(qe.Shards, []int{2}) {
		t.Errorf("range query error %v does not name shard 2", qerr)
	} else if res == nil {
		t.Error("range query returned no partial answer")
	}
	if _, qerr := sh.KNNQueryContext(ctx, probePoint, 3); qerr == nil {
		t.Error("kNN query under quarantine reported no degradation")
	} else if qe, ok := IsQuarantine(qerr); !ok || !reflect.DeepEqual(qe.Shards, []int{2}) {
		t.Errorf("kNN query error %v does not name shard 2", qerr)
	}
	if _, qerr := sh.OccupancyContext(ctx); qerr == nil {
		t.Error("occupancy under quarantine reported no degradation")
	} else if _, ok := IsQuarantine(qerr); !ok {
		t.Errorf("occupancy error %v is not a QuarantineError", qerr)
	}

	// Fault clears; heal; full service resumes.
	fsys.Clear()
	if err := sh.HealNow(); err != nil {
		t.Fatalf("HealNow after fault cleared: %v", err)
	}
	if ds := sh.DegradedShards(); len(ds) != 0 {
		t.Fatalf("DegradedShards = %v after heal", ds)
	}
	if _, err := os.Stat(quarMarkerPath(dir, 2)); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("quarantine marker survived the heal: %v", err)
	}
	if got := sh.tel.shardHeals.Value(); got != 1 {
		t.Errorf("repro_shard_heals_total = %d, want 1", got)
	}
	for _, d := range f.deliveries[healAt:] {
		if err := sh.Ingest(d.t, d.raws); err != nil {
			t.Fatalf("post-heal ingest: %v", err)
		}
	}
	sh.FlushIngest()
	if _, qerr := sh.RangeQueryContext(ctx, probeWindow); qerr != nil {
		t.Errorf("post-heal range query still degraded: %v", qerr)
	}

	mustMatchShardedOracle(t, "post-heal", sh, quarantineOracle(t, f, 2, faultAt, healAt))
	if err := sh.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestQuarantineSurvivesCleanRestart closes an engine with a quarantined
// shard: the restarted engine must come back with that shard still
// quarantined (marker + barrier record), heal on demand, and match the
// effective-stream oracle.
func TestQuarantineSurvivesCleanRestart(t *testing.T) {
	testQuarantineRestart(t, true)
}

// TestQuarantineSurvivesCrashRestart is the same scenario without Close: the
// process vanishes with a shard quarantined, and recovery must rebuild the
// missed-second list from the live shards' WAL replay alone.
func TestQuarantineSurvivesCrashRestart(t *testing.T) {
	testQuarantineRestart(t, false)
}

func testQuarantineRestart(t *testing.T, clean bool) {
	const faultAt, restartAt = 8, 16
	f := newDurableFixture(t, 24)
	fsys := errfs.New(nil, 19)
	dir := t.TempDir()
	cfg := quarantineFixtureCfg(f, dir, fsys)
	sh, err := OpenSharded(f.plan, f.dep, cfg)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	for i, d := range f.deliveries[:restartAt] {
		if i == faultAt {
			fsys.Fail(errfs.Rule{Ops: errfs.OpWrite, Path: "shard-0001"})
		}
		err := sh.Ingest(d.t, d.raws)
		if i < faultAt && err != nil {
			t.Fatalf("clean ingest: %v", err)
		}
		if err != nil {
			var ie *ingest.Error
			if !errors.As(err, &ie) || ie.Kind != ingest.KindQuarantined {
				t.Fatalf("second %d: %v", i, err)
			}
		}
	}
	sh.FlushIngest()
	if ds := sh.DegradedShards(); !reflect.DeepEqual(ds, []int{1}) {
		t.Fatalf("DegradedShards = %v before restart, want [1]", ds)
	}
	fsys.Clear()
	if clean {
		if err := sh.Close(); err != nil {
			t.Fatalf("Close with quarantined shard: %v", err)
		}
	} else {
		// Simulated crash: stop only the background healer so the test binary
		// does not leak its goroutine; everything else is abandoned as-is.
		sh.stopHealer()
	}

	re, err := OpenSharded(f.plan, f.dep, cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if ds := re.DegradedShards(); !reflect.DeepEqual(ds, []int{1}) {
		t.Fatalf("DegradedShards = %v after restart, want [1] (marker ignored?)", ds)
	}
	if err := re.HealNow(); err != nil {
		t.Fatalf("HealNow after restart: %v", err)
	}
	if ds := re.DegradedShards(); len(ds) != 0 {
		t.Fatalf("DegradedShards = %v after heal", ds)
	}
	for _, d := range f.deliveries[restartAt:] {
		if err := re.Ingest(d.t, d.raws); err != nil {
			t.Fatalf("post-heal ingest: %v", err)
		}
	}
	re.FlushIngest()
	mustMatchShardedOracle(t, "restart+heal", re, quarantineOracle(t, f, 1, faultAt, restartAt))
	if err := re.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
