package engine

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/rfid"
	"repro/internal/sim"
)

func TestOccupancySumsToKnownPopulation(t *testing.T) {
	sys, _ := testSystem(t, 20, 200, 31)
	occ := sys.Occupancy()
	if len(occ) == 0 {
		t.Fatal("empty occupancy")
	}
	total := 0.0
	prev := math.Inf(1)
	for _, ro := range occ {
		if ro.P > prev+1e-12 {
			t.Error("occupancy not sorted descending")
		}
		prev = ro.P
		total += ro.P
	}
	// Every filtered object contributes mass 1, so the total equals the
	// number of objects the system could localize.
	known := 0
	tab := sys.Preprocess(sys.Collector().KnownObjects())
	for range tab.Objects() {
		known++
	}
	if math.Abs(total-float64(known)) > 1e-6 {
		t.Errorf("occupancy total = %v, localized objects = %d", total, known)
	}
}

func TestTrajectoryReconstruction(t *testing.T) {
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	cfg := DefaultConfig()
	cfg.KeepHistory = true
	cfg.Seed = 41
	sys := MustNew(plan, dep, cfg)
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 8
	tc.DwellMin, tc.DwellMax = 2, 8
	world := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), tc, 123)

	// Record true positions while simulating.
	truth := make(map[int]geom.Point)
	for i := 0; i < 300; i++ {
		tm, raws := world.Step()
		sys.Ingest(tm, raws)
		if tm%50 == 0 {
			truth[int(tm)] = world.TruePosition(3)
		}
	}
	traj := sys.Trajectory(3, 50, 300, 50)
	if len(traj) == 0 {
		t.Fatal("empty trajectory")
	}
	bounds := plan.Bounds().Expand(1)
	var errSum float64
	for _, tp := range traj {
		if !bounds.Contains(tp.Mean) {
			t.Errorf("t=%d mean %v outside building", tp.Time, tp.Mean)
		}
		if tp.RoomProb < 0 || tp.RoomProb > 1+1e-9 {
			t.Errorf("t=%d room prob %v", tp.Time, tp.RoomProb)
		}
		errSum += tp.Mean.Dist(truth[int(tp.Time)])
	}
	if mean := errSum / float64(len(traj)); mean > 15 {
		t.Errorf("mean trajectory error %v m", mean)
	}
	// Times ascend with the requested step.
	for i := 1; i < len(traj); i++ {
		if traj[i].Time <= traj[i-1].Time {
			t.Error("trajectory times not ascending")
		}
	}
}

func TestTrajectoryStepDefaultsAndUnknownObject(t *testing.T) {
	sys, _ := testSystem(t, 5, 80, 42)
	// Unknown object: empty trajectory, no panic.
	if got := sys.Trajectory(999, 10, 50, 0); got != nil {
		t.Errorf("unknown object trajectory = %v", got)
	}
}

func TestStatsCounters(t *testing.T) {
	sys, _ := testSystem(t, 10, 100, 43)
	before := sys.Stats()
	if before.ReadingsIngested == 0 {
		t.Error("no readings counted during warm-up")
	}
	whole := sys.Graph().Plan().Bounds()
	sys.RangeQuery(whole)
	sys.KNNQuery(geom.Pt(35, 12), 2)
	after := sys.Stats()
	if after.RangeQueries != before.RangeQueries+1 {
		t.Errorf("range queries %d -> %d", before.RangeQueries, after.RangeQueries)
	}
	if after.KNNQueries != before.KNNQueries+1 {
		t.Errorf("kNN queries %d -> %d", before.KNNQueries, after.KNNQueries)
	}
	if after.FiltersRun == before.FiltersRun && after.FiltersResumed == before.FiltersResumed {
		t.Error("no filtering work recorded")
	}
	// A repeated query (same readings, same time) should resume from cache.
	mid := sys.Stats()
	sys.RangeQuery(whole)
	end := sys.Stats()
	if end.FiltersResumed <= mid.FiltersResumed {
		t.Error("repeat query did not resume any cached filters")
	}
}
