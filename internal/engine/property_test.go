package engine

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/rfid"
	"repro/internal/rng"
	"repro/internal/sim"
)

// TestPipelineInvariantsAcrossRandomGeometries is the system-level property
// test: for a spread of randomly generated floor plans, the full pipeline
// (graph, anchors, deployment, simulation, filtering, queries) must uphold
// its invariants — valid graphs, normalized distributions, probabilities in
// [0,1], whole-floor queries recovering full mass.
func TestPipelineInvariantsAcrossRandomGeometries(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		src := rng.New(seed * 131)
		hallways := 1 + src.Intn(3)
		plan := floorplan.RandomOffice(src, hallways)
		if err := plan.Validate(); err != nil {
			t.Fatalf("seed %d: invalid plan: %v", seed, err)
		}
		readers := 4 + src.Intn(10)
		dep, err := rfid.DeployUniform(plan, readers, 2)
		if err != nil {
			t.Fatalf("seed %d: deploy: %v", seed, err)
		}
		cfg := DefaultConfig()
		cfg.Seed = seed
		sys, err := New(plan, dep, cfg)
		if err != nil {
			t.Fatalf("seed %d: system: %v", seed, err)
		}
		tc := sim.DefaultTraceConfig()
		tc.NumObjects = 10
		tc.DwellMin, tc.DwellMax = 2, 8
		world, err := sim.New(sys.Graph(), rfid.NewSensor(dep), tc, seed)
		if err != nil {
			t.Fatalf("seed %d: sim: %v", seed, err)
		}
		for i := 0; i < 150; i++ {
			tm, raws := world.Step()
			sys.Ingest(tm, raws)
		}
		tab := sys.Preprocess(sys.Collector().KnownObjects())
		for _, obj := range tab.Objects() {
			if total := tab.TotalProbOf(obj); math.Abs(total-1) > 1e-9 {
				t.Errorf("seed %d: object %d mass %v", seed, obj, total)
			}
		}
		// Whole-floor range query: every filtered object with ~full mass.
		rs := sys.RangeQueryOn(tab, plan.Bounds())
		for obj, p := range rs {
			if p < 0.97 || p > 1+1e-9 {
				t.Errorf("seed %d: whole-floor P(o%d) = %v", seed, obj, p)
			}
		}
		// A kNN query from a random hallway point produces probabilities in
		// range and no negative masses.
		pt, _ := plan.PointOnHallway(src.Uniform(0, plan.TotalHallwayLength()))
		krs := sys.KNNQueryOn(tab, pt, 2)
		for obj, p := range krs {
			if p < -1e-9 || p > 1+1e-9 {
				t.Errorf("seed %d: kNN P(o%d) = %v", seed, obj, p)
			}
		}
		// The SM baseline upholds the same invariants.
		smTab := sys.SMPreprocess(sys.Collector().KnownObjects())
		for _, obj := range smTab.Objects() {
			if total := smTab.TotalProbOf(obj); math.Abs(total-1) > 1e-9 {
				t.Errorf("seed %d: SM object %d mass %v", seed, obj, total)
			}
		}
	}
}

// TestRandomGeometryQueriesConsistent checks result-set consistency on a
// random plan: a window's probability for an object never exceeds the
// whole-floor probability, and nested windows give monotone results.
func TestRandomGeometryQueriesConsistent(t *testing.T) {
	src := rng.New(99)
	plan := floorplan.RandomOffice(src, 2)
	dep, err := rfid.DeployUniform(plan, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys := MustNew(plan, dep, DefaultConfig())
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 12
	world := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), tc, 7)
	for i := 0; i < 150; i++ {
		tm, raws := world.Step()
		sys.Ingest(tm, raws)
	}
	tab := sys.Preprocess(sys.Collector().KnownObjects())
	b := plan.Bounds()
	inner := geom.RectFromCorners(
		geom.Pt(b.Min.X+b.Width()/4, b.Min.Y+b.Height()/4),
		geom.Pt(b.Max.X-b.Width()/4, b.Max.Y-b.Height()/4))
	rsInner := sys.RangeQueryOn(tab, inner)
	rsWhole := sys.RangeQueryOn(tab, b)
	for obj, p := range rsInner {
		if p > rsWhole[obj]+1e-6 {
			t.Errorf("monotonicity violated for o%d: inner %v > whole %v", obj, p, rsWhole[obj])
		}
	}
}
