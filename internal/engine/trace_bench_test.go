package engine

import (
	"context"
	"testing"
	"time"

	"repro/internal/floorplan"
	"repro/internal/model"
	"repro/internal/obs/trace"
	"repro/internal/particle"
	"repro/internal/rfid"
	"repro/internal/rng"
)

// traceStepHarness is the per-object body of preprocessCtx, isolated: the
// trace guard, the pooled instrumented filter advance, and (when traced) the
// stage-span reconstruction from particle.RunStats. It is exactly what every
// candidate object pays per query, so it is where tracing overhead would
// show.
type traceStepHarness struct {
	sys   *System
	pool  *particle.Pool
	src   *rng.Source
	st    *particle.State
	entry []model.AggregatedReading
}

func newTraceStepHarness(tb testing.TB) *traceStepHarness {
	tb.Helper()
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	sys := MustNew(plan, dep, DefaultConfig())
	src := rng.Derive(48)
	h := &traceStepHarness{
		sys:   sys,
		pool:  particle.NewPool(),
		src:   src,
		st:    sys.filter.InitAt(src, 1, 3, 0),
		entry: []model.AggregatedReading{{Object: 1, Reader: 3}},
	}
	// Warm up scratch, pool arrays, and the telemetry plumbing, covering the
	// detected and silent advance paths once each.
	h.step(nil)
	sys.filter.AdvancePool(h.pool, h.src, h.st, nil, h.st.Time+1)
	return h
}

// step runs one engine-shaped filter step under the given trace (nil:
// tracing disabled — the hot-path production case).
func (h *traceStepHarness) step(tr *trace.Context) {
	var callStart time.Time
	if tr != nil {
		callStart = time.Now()
	}
	next := h.st.Time + 1
	h.entry[0].Time = next
	h.sys.filter.AdvancePool(h.pool, h.src, h.st, h.entry, next)
	if tr != nil {
		h.sys.recordStageSpans(tr, callStart, h.st.Object, h.st.LastRun, 0)
	}
}

// TestFilterStepTracingDisabledZeroAllocs pins the disabled-tracing fast
// path at zero allocations: an untraced request reaches the per-object
// filter step as a nil *trace.Context, and the guard plus the instrumented
// pooled advance must not allocate. This is the observability counterpart of
// particle's TestFullStepZeroAllocs — if this fails, tracing leaked cost
// into every untraced query.
func TestFilterStepTracingDisabledZeroAllocs(t *testing.T) {
	h := newTraceStepHarness(t)
	ctx := context.Background() // no deadline, no trace: the default request
	disabled := func() {
		tr := trace.From(ctx)
		h.step(tr)
	}
	disabled()
	if allocs := testing.AllocsPerRun(200, disabled); allocs != 0 {
		t.Errorf("disabled-tracing filter step allocates %v times per run, want 0", allocs)
	}
}

// BenchmarkFilterStepTraced measures the request tracer's overhead on the
// per-object filter step: "disabled" is the production default (nil context,
// pointer-compare guards only) and is gated against regression by
// cmd/benchjson; "enabled" pays four span appends per object under the
// trace mutex.
func BenchmarkFilterStepTraced(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		h := newTraceStepHarness(b)
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.step(trace.From(ctx))
		}
	})
	b.Run("enabled", func(b *testing.B) {
		h := newTraceStepHarness(b)
		tracer := trace.New(trace.Config{Sample: 1, Seed: 9})
		tc := tracer.Start("bench")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A fresh context every 100 steps keeps span appends under the
			// MaxSpans cap, so the benchmark measures recording, not dropping.
			if i%100 == 0 {
				tc = tracer.Start("bench")
			}
			h.step(tc)
		}
	})
}
