package engine

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/health"
	"repro/internal/model"
	"repro/internal/query"
	"repro/internal/rfid"
	"repro/internal/sim"
)

// clone copies a reading slice so two engines never share backing storage.
func clone(raws []model.RawReading) []model.RawReading {
	out := make([]model.RawReading, len(raws))
	copy(out, raws)
	return out
}

// resultSetsEqual compares two result sets bit for bit.
func resultSetsEqual(a, b model.ResultSet) bool {
	return len(a) == len(b) && reflect.DeepEqual(a, b)
}

// TestHealthCompensationPassivity: with every reader LIVE, the whole health
// layer must be bit-for-bit invisible — a health-enabled engine and a
// health-disabled engine fed the identical clean stream produce identical
// preprocessing tables and identical query answers, and the context-aware
// query path with an unbounded context matches the plain path exactly.
func TestHealthCompensationPassivity(t *testing.T) {
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)

	cfgOn := DefaultConfig()
	cfgOn.Seed = 11
	if !cfgOn.Health.Enabled {
		t.Fatal("default config must enable health monitoring")
	}
	cfgOff := DefaultConfig()
	cfgOff.Seed = 11
	cfgOff.Health = health.Config{}

	sysOn := MustNew(plan, dep, cfgOn)
	sysOff := MustNew(plan, dep, cfgOff)

	world := sim.MustNew(sysOn.Graph(), rfid.NewSensor(dep), sim.DefaultTraceConfig(), 77)
	for i := 0; i < 200; i++ {
		tm, raws := world.Step()
		if err := sysOn.Ingest(tm, clone(raws)); err != nil {
			t.Fatal(err)
		}
		if err := sysOff.Ingest(tm, clone(raws)); err != nil {
			t.Fatal(err)
		}
	}

	for _, h := range sysOn.ReaderHealth() {
		if h.State != health.Live {
			t.Fatalf("reader %d is %s on a clean stream; passivity check would be vacuous", h.Reader, h.StateName)
		}
	}

	objs := sysOn.Collector().KnownObjects()
	if len(objs) == 0 {
		t.Fatal("no objects known")
	}
	tabOn, tabOff := sysOn.Preprocess(objs), sysOff.Preprocess(objs)
	for _, obj := range objs {
		dOn, dOff := tabOn.DistributionOf(obj), tabOff.DistributionOf(obj)
		if !reflect.DeepEqual(dOn, dOff) {
			t.Fatalf("object %d distribution diverges between health-on and health-off", obj)
		}
	}

	win := geom.Rect{Min: geom.Pt(5, 5), Max: geom.Pt(30, 25)}
	rsOn, rsOff := sysOn.RangeQuery(win), sysOff.RangeQuery(win)
	if !resultSetsEqual(rsOn, rsOff) {
		t.Fatalf("range answers diverge: on=%v off=%v", rsOn, rsOff)
	}
	q := dep.Reader(0).Pos
	if !resultSetsEqual(sysOn.KNNQuery(q, 5), sysOff.KNNQuery(q, 5)) {
		t.Fatal("kNN answers diverge between health-on and health-off")
	}

	// The deadline-aware path with an unbounded context is the plain path.
	rsCtx, err := sysOn.RangeQueryContext(context.Background(), win)
	if err != nil {
		t.Fatalf("unbounded-context range query errored: %v", err)
	}
	if !resultSetsEqual(rsCtx, rsOn) {
		t.Fatal("RangeQueryContext(background) diverges from RangeQuery")
	}
	rsCtx, err = sysOn.KNNQueryContext(context.Background(), q, 5)
	if err != nil {
		t.Fatalf("unbounded-context knn query errored: %v", err)
	}
	if !resultSetsEqual(rsCtx, sysOn.KNNQuery(q, 5)) {
		t.Fatal("KNNQueryContext(background) diverges from KNNQuery")
	}
}

// outageFixture drives two engines — health compensation on and off — through
// the identical degraded stream: a warmup phase, then a scheduled outage of
// the busiest reader injected by the fault layer.
type outageFixture struct {
	world      *sim.Simulator
	sysOn      *System
	sysOff     *System
	dep        *rfid.Deployment
	dead       model.ReaderID
	outageFrom model.Time
	outageTo   model.Time
}

func newOutageFixture(t *testing.T) *outageFixture {
	t.Helper()
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)

	cfgOn := DefaultConfig()
	cfgOn.Seed = 3
	cfgOff := DefaultConfig()
	cfgOff.Seed = 3
	cfgOff.Health = health.Config{}

	sysOn := MustNew(plan, dep, cfgOn)
	sysOff := MustNew(plan, dep, cfgOff)

	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 25
	tc.DwellMin, tc.DwellMax = 2, 6
	world := sim.MustNew(sysOn.Graph(), rfid.NewSensor(dep), tc, 42)

	// Warmup: clean traffic while counting per-reader readings, so the outage
	// hits the busiest reader (a dead quiet reader would make the test vacuous).
	const warmup = 80
	perReader := make([]int, dep.NumReaders())
	for i := 0; i < warmup; i++ {
		tm, raws := world.Step()
		for _, r := range raws {
			if r.Reader >= 0 && int(r.Reader) < len(perReader) {
				perReader[r.Reader]++
			}
		}
		sysOn.Ingest(tm, clone(raws))
		sysOff.Ingest(tm, clone(raws))
	}
	dead := model.ReaderID(0)
	for id, n := range perReader {
		if n > perReader[dead] {
			dead = model.ReaderID(id)
		}
	}
	if perReader[dead] == 0 {
		t.Fatal("warmup produced no readings")
	}

	return &outageFixture{
		world: world, sysOn: sysOn, sysOff: sysOff, dep: dep,
		dead: dead, outageFrom: warmup + 1, outageTo: 280,
	}
}

// drive runs the outage, feeding both engines the identical degraded stream.
// When each is non-nil it is invoked after every ingested second, so tests
// can evaluate queries at checkpoints throughout the outage.
func (f *outageFixture) drive(each func(now model.Time)) {
	inj := sim.MustNewInjector(sim.FaultConfig{
		Outages: []sim.Outage{{Reader: f.dead, From: f.outageFrom, To: f.outageTo}},
	}, f.dep.NumReaders(), 9)
	for f.world.Now() < f.outageTo {
		tm, raws := f.world.Step()
		for _, b := range inj.Apply(tm, raws) {
			f.sysOn.Ingest(b.Time, clone(b.Readings))
			f.sysOff.Ingest(b.Time, clone(b.Readings))
		}
		if each != nil {
			each(tm)
		}
	}
}

// TestOutageCompensationRecall: with the busiest reader dark, the compensated
// engine must (a) actually flag the reader and (b) keep at least as much
// probability mass on the true answers of range and kNN queries around the
// dead reader as the uncompensated engine. The uncompensated filter treats
// the dead reader's silence as negative evidence and confidently pushes mass
// away from where the objects really are; suppressing that penalty can only
// help recall.
func TestOutageCompensationRecall(t *testing.T) {
	f := newOutageFixture(t)
	pos := f.dep.Reader(f.dead).Pos
	// The query window sits inside the dead reader's activation circle: the
	// objects truly in it are exactly the ones no live reader can see, which
	// is where the uncompensated filter's negative evidence is wrong.
	r := f.dep.Reader(f.dead).Range * 0.75
	win := geom.Rect{Min: geom.Pt(pos.X-r, pos.Y-r), Max: geom.Pt(pos.X+r, pos.Y+r)}
	const k = 5

	var recOn, recOff float64 // summed range-recall mass over checkpoints
	var hitOn, hitOff, kTot int
	checkpoints := 0
	f.drive(func(now model.Time) {
		// Evaluate once the monitor has had time to notice, every 5 seconds.
		if now < f.outageFrom+20 || (now-f.outageFrom)%5 != 0 {
			return
		}
		if truth := f.world.TrueRange(win); len(truth) > 0 {
			rsOn, rsOff := f.sysOn.RangeQuery(win), f.sysOff.RangeQuery(win)
			for _, obj := range truth {
				recOn += rsOn[obj] / float64(len(truth))
				recOff += rsOff[obj] / float64(len(truth))
			}
			checkpoints++
		}
		trueK := f.world.TrueKNN(pos, k)
		inTrue := make(map[model.ObjectID]bool, len(trueK))
		for _, obj := range trueK {
			inTrue[obj] = true
		}
		for _, obj := range query.TopKObjects(f.sysOn.KNNQuery(pos, k), k) {
			if inTrue[obj] {
				hitOn++
			}
		}
		for _, obj := range query.TopKObjects(f.sysOff.KNNQuery(pos, k), k) {
			if inTrue[obj] {
				hitOff++
			}
		}
		kTot += len(trueK)
	})

	rh := f.sysOn.ReaderHealth()
	if rh[f.dead].State == health.Live {
		t.Fatalf("monitor never flagged reader %d (rate=%v missed=%v); recall comparison would be vacuous",
			f.dead, rh[f.dead].Rate, rh[f.dead].Missed)
	}
	t.Logf("reader %d is %s at outage end", f.dead, rh[f.dead].StateName)
	if checkpoints == 0 {
		t.Fatal("no checkpoint had objects truly inside the outage window; pick a different seed")
	}

	recOn /= float64(checkpoints)
	recOff /= float64(checkpoints)
	t.Logf("range recall over %d checkpoints: compensated=%.4f uncompensated=%.4f", checkpoints, recOn, recOff)
	if recOn < recOff-1e-9 {
		t.Errorf("compensated range recall %.4f below uncompensated %.4f", recOn, recOff)
	}
	t.Logf("kNN@%d recall: compensated=%d/%d uncompensated=%d/%d", k, hitOn, kTot, hitOff, kTot)
	if hitOn < hitOff {
		t.Errorf("compensated kNN recall %d below uncompensated %d", hitOn, hitOff)
	}
}

// TestOutagePrunerSoundness: while the reader is dark, the widened uncertain
// regions must keep every true answer in the candidate set — the pruner may
// widen (admit more) but never prune an object that is really inside the
// query window.
func TestOutagePrunerSoundness(t *testing.T) {
	f := newOutageFixture(t)
	pos := f.dep.Reader(f.dead).Pos
	windows := []geom.Rect{
		{Min: geom.Pt(pos.X-9, pos.Y-9), Max: geom.Pt(pos.X+9, pos.Y+9)},
		{Min: geom.Pt(pos.X-4, pos.Y-4), Max: geom.Pt(pos.X+4, pos.Y+4)},
		{Min: geom.Pt(0, 0), Max: geom.Pt(20, 20)},
	}
	checks := 0
	f.drive(func(now model.Time) {
		if (now-f.outageFrom)%15 != 0 {
			return
		}
		known := make(map[model.ObjectID]bool)
		for _, obj := range f.sysOn.Collector().KnownObjects() {
			known[obj] = true
		}
		for _, win := range windows {
			cands := f.sysOn.RangeCandidates([]geom.Rect{win})
			inCands := make(map[model.ObjectID]bool, len(cands))
			for _, obj := range cands {
				inCands[obj] = true
			}
			for _, obj := range f.world.TrueRange(win) {
				if known[obj] {
					checks++
					if !inCands[obj] {
						t.Errorf("t=%d window %v: true answer %d pruned during outage", now, win, obj)
					}
				}
			}
		}
	})
	if checks == 0 {
		t.Fatal("soundness check was vacuous: no true answers in any window at any checkpoint")
	}
	t.Logf("verified %d true answers across checkpoints stayed in the candidate sets", checks)
}

// TestDeadlineReturnsTypedPartial: a context that is already out of budget
// must surface a *query.DeadlineError naming the stage, satisfy
// errors.Is(err, context.DeadlineExceeded) via unwrapping, and still return a
// usable (possibly empty) partial result rather than panicking or blocking.
func TestDeadlineReturnsTypedPartial(t *testing.T) {
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	cfg := DefaultConfig()
	cfg.Seed = 2
	sys := MustNew(plan, dep, cfg)
	world := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), sim.DefaultTraceConfig(), 13)
	for i := 0; i < 60; i++ {
		tm, raws := world.Step()
		sys.Ingest(tm, raws)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	<-ctx.Done() // deadline certainly expired

	win := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(40, 30)}
	rs, err := sys.RangeQueryContext(ctx, win)
	if err == nil {
		t.Fatal("expired context produced no error")
	}
	de, ok := IsDeadline(err)
	if !ok {
		t.Fatalf("error %v is not a *query.DeadlineError", err)
	}
	if de.Stage == "" {
		t.Error("deadline error has no stage")
	}
	if rs == nil {
		t.Error("partial result is nil; want an (empty) result set")
	}
	t.Logf("range deadline overrun at stage %q with %d partial entries", de.Stage, len(rs))

	rs, err = sys.KNNQueryContext(ctx, dep.Reader(0).Pos, 3)
	if _, ok := IsDeadline(err); !ok {
		t.Fatalf("knn under expired context: error %v is not a deadline error", err)
	}
	if rs == nil {
		t.Error("knn partial result is nil")
	}

	// A generous deadline must complete without error and match the plain path.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30e9)
	defer cancel2()
	rs2, err := sys.RangeQueryContext(ctx2, win)
	if err != nil {
		t.Fatalf("generous deadline still expired: %v", err)
	}
	if !resultSetsEqual(rs2, sys.RangeQuery(win)) {
		t.Fatal("completed deadline query diverges from plain query")
	}
}

// TestParticleBudgetDegradesAndRestores: the degraded-mode knob caps the
// particle count of newly initialized filter states and restores full
// fidelity when cleared.
func TestParticleBudgetDegradesAndRestores(t *testing.T) {
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	cfg := DefaultConfig()
	cfg.Seed = 4
	sys := MustNew(plan, dep, cfg)
	if got := sys.ParticleBudget(); got != cfg.Particle.Ns {
		t.Fatalf("initial particle budget %d, want configured Ns %d", got, cfg.Particle.Ns)
	}
	sys.SetParticleBudget(16)
	if got := sys.ParticleBudget(); got != 16 {
		t.Fatalf("degraded particle budget %d, want 16", got)
	}
	sys.SetParticleBudget(0)
	if got := sys.ParticleBudget(); got != cfg.Particle.Ns {
		t.Fatalf("restored particle budget %d, want %d", got, cfg.Particle.Ns)
	}
	// Budgets beyond the configured Ns clamp to it (degraded mode can only
	// reduce fidelity, never inflate cost).
	sys.SetParticleBudget(cfg.Particle.Ns * 10)
	if got := sys.ParticleBudget(); got != cfg.Particle.Ns {
		t.Fatalf("over-budget %d, want clamp to %d", got, cfg.Particle.Ns)
	}
}
