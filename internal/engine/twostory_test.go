package engine

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/rfid"
	"repro/internal/sim"
	"repro/internal/walkgraph"
)

// TestTwoStoryPipeline runs the full system over the two-story office:
// objects roam both floors via the stair links, readings flow, and all query
// invariants hold.
func TestTwoStoryPipeline(t *testing.T) {
	plan := floorplan.TwoStoryOffice()
	dep, err := rfid.DeployUniform(plan, 38, 2) // 19 per floor
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Seed = 9
	sys := MustNew(plan, dep, cfg)
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 30
	tc.DwellMin, tc.DwellMax = 2, 8
	world := sim.MustNew(sys.Graph(), rfid.NewSensor(dep), tc, 101)
	for i := 0; i < 400; i++ {
		tm, raws := world.Step()
		sys.Ingest(tm, raws)
	}
	// Objects should have visited both floors: check some true positions on
	// each side of the gap (x < 70 ground, x > 72 upper).
	ground, upper := 0, 0
	for _, o := range world.Objects() {
		if world.TruePosition(o).X < 70 {
			ground++
		} else {
			upper++
		}
	}
	if ground == 0 || upper == 0 {
		t.Fatalf("population did not spread across floors: %d/%d", ground, upper)
	}

	tab := sys.Preprocess(sys.Collector().KnownObjects())
	for _, obj := range tab.Objects() {
		if total := tab.TotalProbOf(obj); math.Abs(total-1) > 1e-9 {
			t.Errorf("o%d mass %v", obj, total)
		}
	}

	// Per-floor range queries: probabilities in range, and a floor query
	// never exceeds the whole-building answer.
	groundWin := geom.RectWH(1, 3, 68, 30)
	whole := plan.Bounds()
	rsGround := sys.RangeQueryOn(tab, groundWin)
	rsWhole := sys.RangeQueryOn(tab, whole)
	for obj, p := range rsGround {
		if p < -1e-9 || p > 1+1e-9 {
			t.Errorf("P(o%d on ground) = %v", obj, p)
		}
		if p > rsWhole[obj]+1e-6 {
			t.Errorf("floor query exceeds building query for o%d", obj)
		}
	}

	// Cross-floor kNN works: query near the ground stair landing can return
	// objects from either floor.
	krs := sys.KNNQueryOn(tab, geom.Pt(68, 18), 3)
	if krs.TotalProb() <= 0 {
		t.Error("stairside kNN returned nothing")
	}
}

// TestTwoStoryObjectsCrossFloors verifies traces actually traverse the
// links: at least one object's floor changes over time.
func TestTwoStoryObjectsCrossFloors(t *testing.T) {
	plan := floorplan.TwoStoryOffice()
	dep := rfid.MustDeployUniform(plan, 38, 2)
	g := simGraph(t, plan)
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 20
	tc.DwellMin, tc.DwellMax = 1, 4
	world := sim.MustNew(g, rfid.NewSensor(dep), tc, 55)
	start := make(map[int]bool)
	for _, o := range world.Objects() {
		start[int(o)] = world.TruePosition(o).X < 70
	}
	crossed := 0
	for i := 0; i < 500; i++ {
		world.Step()
		for _, o := range world.Objects() {
			if (world.TruePosition(o).X < 70) != start[int(o)] {
				crossed++
				start[int(o)] = !start[int(o)]
			}
		}
	}
	if crossed == 0 {
		t.Error("no object ever crossed between floors")
	}
}

func simGraph(t *testing.T, plan *floorplan.Plan) *walkgraph.Graph {
	t.Helper()
	g, err := walkgraph.Build(plan)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
