package engine

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
)

func TestCriticalDevicesForWindow(t *testing.T) {
	sys, _ := testSystem(t, 5, 30, 81)
	dg := sys.DeploymentGraph()
	// A window over the west end of the south hallway: its critical devices
	// must include the readers bounding that stretch but not readers on the
	// far side of the building.
	win := geom.RectWH(2, 11, 12, 2)
	crit := criticalDevices(dg, win)
	if len(crit) == 0 {
		t.Fatal("no critical devices for a hallway window")
	}
	if len(crit) == sys.Deployment().NumReaders() {
		t.Fatal("every reader critical: no pruning value")
	}
	// Far-side readers (on the north hallway's middle) are not critical.
	for _, r := range sys.Deployment().Readers() {
		if crit[r.ID] {
			// Critical readers must be near the window's cells: within a
			// cell-diameter-ish distance of the window.
			if r.Pos.Dist(geom.Pt(8, 12)) > 40 {
				t.Errorf("implausibly distant critical reader at %v", r.Pos)
			}
		}
	}
}

func TestCriticalDevicesRoomWindow(t *testing.T) {
	sys, _ := testSystem(t, 5, 30, 82)
	dg := sys.DeploymentGraph()
	// A window entirely inside room S1: critical devices are the ones
	// bounding the cell its door opens into.
	room := sys.Graph().Plan().Room(0)
	crit := criticalDevices(dg, room.Bounds)
	if len(crit) == 0 {
		t.Fatal("room window has no critical devices")
	}
}

func TestEventDrivenRegistrySkipsQuietQueries(t *testing.T) {
	sys, world := testSystem(t, 10, 100, 83)
	reg := NewRegistry(sys)
	reg.SetEventDriven(true)
	id := reg.RegisterRange(geom.RectWH(2, 11, 12, 2), 0.5)

	// Baseline evaluation always runs.
	reg.Evaluate()
	statsAfterBaseline := sys.Stats()

	// Advance time with NO readings at all: no events anywhere, so the
	// event-driven registry must skip the query entirely.
	for i := 0; i < 5; i++ {
		sys.Ingest(sys.Now()+1, nil)
	}
	evs := reg.Evaluate()
	if len(evs) != 0 {
		t.Errorf("quiet evaluation produced events: %v", evs)
	}
	statsAfterQuiet := sys.Stats()
	if statsAfterQuiet.FiltersRun != statsAfterBaseline.FiltersRun &&
		statsAfterQuiet.FiltersResumed != statsAfterBaseline.FiltersResumed {
		t.Error("quiet evaluation still ran filters")
	}

	// Resume the world: events eventually touch critical devices and the
	// query gets refreshed again.
	refreshed := false
	for round := 0; round < 15 && !refreshed; round++ {
		for i := 0; i < 10; i++ {
			tm, raws := world.Step()
			sys.Ingest(tm, raws)
		}
		before := sys.Stats()
		reg.Evaluate()
		after := sys.Stats()
		if after.RangeQueries > before.RangeQueries {
			refreshed = true
		}
	}
	if !refreshed {
		t.Error("event-driven registry never refreshed despite movement")
	}
	_ = id
}

func TestEventsSinceTruncation(t *testing.T) {
	sys, _ := testSystem(t, 5, 30, 84)
	evs, next, truncated := sys.EventsSince(0)
	if truncated {
		t.Error("fresh log reported truncated")
	}
	if next != len(evs) {
		t.Errorf("next = %d, events = %d", next, len(evs))
	}
	// Asking from a negative (pre-offset) sequence is answered as truncated
	// only when the log has actually dropped entries; with a fresh log the
	// offset is 0 and seq 0 is valid.
	_, _, truncated = sys.EventsSince(next)
	if truncated {
		t.Error("at-head read reported truncated")
	}
	// Reader events exist after warm-up.
	found := false
	for _, ev := range evs {
		if ev.Reader != model.NoReader {
			found = true
		}
	}
	if !found {
		t.Error("no reader events recorded during warm-up")
	}
}
