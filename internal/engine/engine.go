// Package engine wires the full system of the paper's Figure 3: raw readings
// flow through the event-driven raw data collector; the query aware
// optimization module prunes non-candidate objects; the particle filter-based
// preprocessing module cleanses each candidate's noisy readings into a
// probability distribution indexed by anchor points (the APtoObjHT hash
// table); the cache management module reuses particle states across queries;
// and the query evaluation module answers range and kNN queries from the
// hash table. The symbolic model baseline is exposed through the same
// surface for side-by-side comparison.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/anchor"
	"repro/internal/cache"
	"repro/internal/collector"
	"repro/internal/depgraph"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/health"
	"repro/internal/ingest"
	"repro/internal/model"
	"repro/internal/obs/trace"
	"repro/internal/particle"
	"repro/internal/query"
	"repro/internal/rfid"
	"repro/internal/rng"
	"repro/internal/symbolic"
	"repro/internal/wal"
	"repro/internal/walkgraph"
)

// Config parameterizes a System.
type Config struct {
	// Particle holds the particle filter parameters.
	Particle particle.Config
	// AnchorSpacing is the anchor point spacing in meters.
	AnchorSpacing float64
	// MaxSpeed is the maximum walking speed umax used by the pruning
	// module's uncertain regions and the symbolic baseline.
	MaxSpeed float64
	// UseCache enables the cache management module.
	UseCache bool
	// CacheLifetime is the cache entry lifetime in seconds.
	CacheLifetime model.Time
	// UsePruning enables the query aware optimization module. When false,
	// every known object is a candidate for every query.
	UsePruning bool
	// SMTrials is the Monte Carlo trial count for the symbolic baseline's
	// maximum-probability kNN set.
	SMTrials int
	// KeepHistory retains the full reading history in the collector so
	// historical queries (RangeQueryAt, KNNQueryAt) can reach arbitrarily
	// far back. Off by default, matching the paper's snapshot-oriented
	// collector.
	KeepHistory bool
	// Workers bounds the number of goroutines preprocessing objects in
	// parallel. 0 means GOMAXPROCS. Results are bit-for-bit identical at any
	// worker count: every object's filtering stream derives from
	// (Seed, object, query time), not from execution order.
	Workers int
	// BatchSize is how many objects a preprocessing worker claims from the
	// shared queue at a time. Larger batches amortize the claim (one atomic
	// add per batch) and keep each worker's particle pool arrays hot across
	// consecutive objects; smaller batches balance ragged workloads better.
	// 0 means DefaultBatchSize. Results are bit-for-bit identical at any
	// batch size, for the same reason they are at any worker count.
	BatchSize int
	// Ingest parameterizes the hardened ingestion front end: the reorder
	// buffer's lateness horizon, skew tolerance, and buffer bound. The zero
	// value keeps the historical strict in-order contract (every batch
	// flushes immediately; older batches are late).
	Ingest ingest.Config
	// SlowQueryThreshold is the wall-clock latency above which a snapshot
	// range/kNN query is counted, logged, and retained in the slow-query
	// ring (Telemetry.Slow). Zero or negative disables the slow-query log;
	// latency histograms record regardless.
	SlowQueryThreshold time.Duration
	// TraceRing is the capacity of the filter-trace ring buffer
	// (Telemetry.Trace, served at /debug/filtertrace). 0 means 256.
	TraceRing int
	// Health parameterizes the per-reader liveness monitor that feeds the
	// sensing-model compensation (filter negative updates, pruner uncertain
	// regions). The zero value disables monitoring; monitoring is passive —
	// bit-for-bit — while every reader is LIVE either way.
	Health health.Config
	// Seed drives all of the engine's randomness.
	Seed int64
	// Shards partitions object state into this many in-process shards, each
	// owning its lock, collector slice, cache, particle workers, and WAL
	// segment stream (NewSharded/OpenSharded; New ignores it). 0 or 1 keeps
	// the single-shard engine. Answers, Stats, and recovered state are
	// bit-for-bit identical at any shard count.
	Shards int
	// Durability configures the write-ahead log and snapshot store. The zero
	// value disables durability entirely (the historical in-memory contract);
	// a non-empty Dir enables it, but only through Open — New ignores it.
	Durability DurabilityConfig
}

// DefaultBatchSize is how many objects a preprocessing worker claims at a
// time when Config.BatchSize is zero. One object's SoA state is a few
// kilobytes (Ns × five flat arrays), so a batch of 32 streams through
// comfortably under L2 while costing only one atomic claim per 32 filters.
const DefaultBatchSize = 32

// DefaultConfig returns the paper's defaults (Table 2).
func DefaultConfig() Config {
	return Config{
		Particle:           particle.DefaultConfig(),
		AnchorSpacing:      anchor.DefaultSpacing,
		MaxSpeed:           symbolic.DefaultMaxSpeed,
		UseCache:           true,
		CacheLifetime:      cache.DefaultLifetime,
		UsePruning:         true,
		SMTrials:           200,
		SlowQueryThreshold: 100 * time.Millisecond,
		Health:             health.DefaultConfig(),
		Seed:               1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Particle.Validate(); err != nil {
		return err
	}
	if c.AnchorSpacing <= 0 {
		return fmt.Errorf("engine: AnchorSpacing must be positive, got %v", c.AnchorSpacing)
	}
	if c.MaxSpeed <= 0 {
		return fmt.Errorf("engine: MaxSpeed must be positive, got %v", c.MaxSpeed)
	}
	if c.SMTrials <= 0 {
		return fmt.Errorf("engine: SMTrials must be positive, got %d", c.SMTrials)
	}
	if err := c.Health.Validate(); err != nil {
		return err
	}
	return nil
}

// Stats are cumulative counters describing the work the system has done.
type Stats struct {
	// FiltersRun counts full Algorithm 2 runs; FiltersResumed counts cache
	// hits that only advanced an existing particle state.
	FiltersRun, FiltersResumed int
	// RangeQueries and KNNQueries count evaluated snapshot queries.
	RangeQueries, KNNQueries int
	// ReadingsIngested counts raw readings accepted by the collector.
	ReadingsIngested int
	// ReadingsDropped counts every raw reading discarded on the ingestion
	// path (late, duplicate, mis-stamped, invalid); Ingest has the
	// per-reason breakdown. offered = ingested + dropped + pending always.
	ReadingsDropped int
	// ReadingsPending counts readings buffered in the reorder buffer,
	// waiting for the watermark to close their second.
	ReadingsPending int
	// Ingest breaks the drop accounting down by the ingest.Kind taxonomy,
	// merging the reorder buffer's and the collector's counters.
	Ingest ingest.Drops
}

// System is the assembled query evaluation system.
type System struct {
	cfg     Config
	g       *walkgraph.Graph
	dep     *rfid.Deployment
	idx     *anchor.Index
	col     *collector.Collector
	filter  *particle.Filter
	cache   *cache.Cache
	pruner  *query.Pruner
	eval    *query.Evaluator
	sm      *symbolic.Model
	src     *rng.Source
	reorder *ingest.Reorder
	stats   Stats
	tel     *Telemetry
	// monitor is the per-reader liveness monitor (nil when Config.Health is
	// disabled); extraDrops holds transport-level losses noted by the HTTP
	// layer (oversized bodies) that never reach the reorder buffer.
	monitor    *health.Monitor
	extraDrops ingest.Drops

	// shardID is this engine's position in a sharded router (0 standalone);
	// it labels filter traces, spans, and the shardTel metric handles.
	// curTrace is the request trace of the in-flight IngestContext call, read
	// by the reorder sink so flush-time work (WAL append/fsync, collect)
	// attributes to the delivery that triggered it. Both are written under
	// the same exclusion the rest of the System requires.
	shardID  int
	shardTel *shardMetrics
	curTrace *trace.Context
	// eventLog retains ENTER/LEAVE events for registry consumers (bounded).
	eventLog []model.Event
	eventOff int

	// pools recycles per-worker particle pools (the SoA kernel's flat
	// arrays and scratch) across Preprocess calls, so steady-state
	// preprocessing allocates nothing per query. histPool is the serial
	// historical-query path's dedicated pool.
	pools    sync.Pool
	histPool *particle.Pool

	// Durability state; all nil/zero when Config.Durability is disabled or
	// the system was built with New instead of Open.
	wal      *wal.Log
	walSeq   uint64
	walBuf   []byte
	walErr   error
	streamID uint64
	lastSync time.Time
	// sinceSnap counts acked seconds since the last snapshot; replaying
	// counts as true so recovery never re-replays an unbounded log.
	// snapFails counts consecutive snapshot-write failures, pacing retries
	// (see snapFailed).
	sinceSnap int
	snapFails int
	recovery  RecoveryInfo
}

// Stats returns the system's cumulative work counters, with the drop
// accounting of the reorder buffer and the collector merged in.
func (s *System) Stats() Stats {
	st := s.stats
	st.Ingest = s.reorder.Drops()
	st.Ingest.Merge(s.col.Drops())
	st.Ingest.Merge(s.extraDrops)
	st.ReadingsDropped = st.Ingest.Readings()
	st.ReadingsPending = s.reorder.PendingReadings()
	return st
}

// New assembles a System over a floor plan and reader deployment.
func New(plan *floorplan.Plan, dep *rfid.Deployment, cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g, err := walkgraph.Build(plan)
	if err != nil {
		return nil, err
	}
	idx, err := anchor.BuildIndex(g, cfg.AnchorSpacing)
	if err != nil {
		return nil, err
	}
	// Precompute the edge-coverage index once per System; the filter's hot
	// loops answer all coverage predicates from it (bit-for-bit identical to
	// the geometric path, so the Workers determinism contract holds).
	var cov *rfid.Coverage
	if !cfg.Particle.DisableCoverageIndex {
		cov = rfid.BuildCoverage(g, dep)
	}
	filter, err := particle.NewWithCoverage(cfg.Particle, g, dep, cov)
	if err != nil {
		return nil, err
	}
	sm, err := symbolic.New(g, dep, idx, cfg.MaxSpeed)
	if err != nil {
		return nil, err
	}
	col := collector.New()
	if cfg.KeepHistory {
		col = collector.NewWithHistory()
	}
	s := &System{
		cfg:    cfg,
		g:      g,
		dep:    dep,
		idx:    idx,
		col:    col,
		filter: filter,
		cache:  cache.New(cfg.CacheLifetime),
		pruner: query.NewPruner(g, idx, dep, cfg.MaxSpeed),
		eval:   query.NewEvaluator(g, idx),
		sm:     sm,
		src:    rng.New(cfg.Seed),
	}
	s.pools.New = func() any { return particle.NewPool() }
	s.histPool = particle.NewPool()
	s.reorder = ingest.NewReorder(cfg.Ingest, s.ingestSecond)
	if cfg.Health.Enabled {
		s.monitor, err = health.NewMonitor(cfg.Health, dep.NumReaders())
		if err != nil {
			return nil, err
		}
	}
	// Telemetry is always on: the record path is atomic and allocation-free,
	// and the stage timings are what every perf PR measures itself against.
	s.tel = newTelemetry(cfg)
	s.filter.Instrument(s.tel.filterMetrics())
	s.cache.Instrument(s.tel.cacheHits, s.tel.cacheMisses, s.tel.cacheEvictions)
	s.shardTel = s.tel.shardMetrics(0)
	return s, nil
}

// MustNew is New for known-valid inputs.
func MustNew(plan *floorplan.Plan, dep *rfid.Deployment, cfg Config) *System {
	s, err := New(plan, dep, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Accessors for the assembled components.

// Graph returns the indoor walking graph.
func (s *System) Graph() *walkgraph.Graph { return s.g }

// AnchorIndex returns the anchor point index.
func (s *System) AnchorIndex() *anchor.Index { return s.idx }

// Deployment returns the reader deployment.
func (s *System) Deployment() *rfid.Deployment { return s.dep }

// Coverage returns the precomputed edge-coverage index, or nil when
// Config.Particle.DisableCoverageIndex selected the geometric path.
func (s *System) Coverage() *rfid.Coverage { return s.filter.Coverage() }

// Collector returns the raw data collector.
func (s *System) Collector() *collector.Collector { return s.col }

// CacheStats returns the cache's cumulative hit and miss counts.
func (s *System) CacheStats() (hits, misses int) { return s.cache.Stats() }

// Now returns the most recently ingested second.
func (s *System) Now() model.Time { return s.col.Now() }

// KnownObjects returns the IDs of every object with retained collector
// state, ascending.
func (s *System) KnownObjects() []model.ObjectID { return s.col.KnownObjects() }

// Ingest feeds one delivery of raw readings through the hardened ingestion
// front end: the reorder buffer routes each reading to its own second,
// deduplicates retransmissions, and flushes whole seconds into the
// collector in order once the watermark (Config.Ingest.Horizon) closes
// them. With the zero-value ingest configuration every batch flushes
// immediately, matching the historical strict in-order contract.
//
// Whenever input is refused or discarded, Ingest returns a typed
// *ingest.Error and counts the loss in Stats — nothing is dropped
// silently. Unless the error's Rejected flag is set, the rest of the
// delivery was still accepted.
// With durability enabled (Open), every flushed second is appended to the
// write-ahead log before it is applied, and the log is fsynced per the
// configured policy before Ingest returns. A WAL failure is sticky: the
// first append or sync error fail-stops ingestion (every later Ingest
// returns the same error) rather than silently degrading to memory-only.
func (s *System) Ingest(t model.Time, raws []model.RawReading) error {
	if s.walErr != nil {
		return s.walErr
	}
	rstart := time.Now()
	err := s.reorder.Offer(t, raws)
	s.curTrace.Since("reorder", s.shardID, rstart)
	if serr := s.syncWAL(false); serr != nil {
		return serr
	}
	if s.walErr != nil {
		// The append inside the sink failed; the delivery is not durable.
		return s.walErr
	}
	return err
}

// IngestContext is Ingest carrying a request trace: flush-time spans
// (reorder, WAL append/fsync, collect) recorded while this delivery is in
// flight attach to the trace in ctx. Callers provide the same exclusion
// Ingest requires, so stashing the trace in the System is race-free.
func (s *System) IngestContext(ctx context.Context, t model.Time, raws []model.RawReading) error {
	s.curTrace = trace.From(ctx)
	defer func() { s.curTrace = nil }()
	return s.Ingest(t, raws)
}

// FlushIngest drains every second still buffered in the reorder buffer,
// regardless of the lateness horizon. Call it at end of stream or before
// final queries when a non-zero horizon is configured. With durability
// enabled the drained seconds are logged and fsynced like any others.
func (s *System) FlushIngest() {
	s.reorder.FlushAll()
	s.syncWAL(true)
}

// ingestSecond is the reorder buffer's sink. With durability enabled it
// first appends the second to the write-ahead log — together with the
// reorder buffer's position and drop accounting, so recovery restores
// Stats exactly — then applies it, then schedules a snapshot when due.
func (s *System) ingestSecond(t model.Time, raws []model.RawReading) {
	if maxSeen, ok := s.reorder.MaxSeen(); ok && maxSeen > t {
		s.tel.reorderLag.Observe(float64(maxSeen - t))
	} else {
		s.tel.reorderLag.Observe(0)
	}
	if s.wal != nil && s.walErr == nil {
		wstart := time.Now()
		s.appendWAL(t, raws)
		s.shardTel.walAppend.Observe(time.Since(wstart).Seconds())
		s.curTrace.Since("wal-append", s.shardID, wstart)
	}
	astart := time.Now()
	s.applySecond(t, raws)
	s.shardTel.step.Observe(time.Since(astart).Seconds())
	s.shardTel.queueDepth.Set(float64(len(raws)))
	s.curTrace.Since("collect", s.shardID, astart)
	s.maybeSnapshot()
}

// applySecond feeds one flushed second into the collector, applying the
// cache invalidation rule to every ENTER event. It is the recovery replay
// path too, so it must not touch the WAL.
func (s *System) applySecond(t model.Time, raws []model.RawReading) {
	if s.monitor != nil && s.monitor.ObserveSecond(t, raws) {
		s.refreshHealth()
	}
	dropped := s.col.Drops().Readings()
	s.col.IngestSecond(t, raws)
	s.stats.ReadingsIngested += len(raws) - (s.col.Drops().Readings() - dropped)
	for _, ev := range s.col.DrainEvents() {
		if ev.Kind == model.Enter {
			s.cache.Invalidate(ev.Object, ev.Reader)
			if s.monitor != nil {
				// The ENTER explains the object's coming silence (rooms are
				// uncovered): its reader should not expect more detections.
				s.monitor.Release(ev.Object)
			}
		}
		s.eventLog = append(s.eventLog, ev)
	}
	// Bound the retained log; consumers that fall further behind simply see
	// a truncated prefix (and, safely, re-evaluate everything).
	if len(s.eventLog) > maxEventLog {
		drop := len(s.eventLog) - maxEventLog
		s.eventLog = append(s.eventLog[:0:0], s.eventLog[drop:]...)
		s.eventOff += drop
	}
}

// maxEventLog bounds the retained ENTER/LEAVE event log. The sharded router
// applies the same bound to its merged log so EventsSince behaves identically
// at any shard count.
const maxEventLog = 65536

// Expire drops collector state and cached particle states for objects whose
// last reading is older than t. Pair it with population churn: objects that
// left the building stop producing readings and age out of the system
// instead of lingering as stale candidates.
func (s *System) Expire(olderThan model.Time) {
	s.col.ForgetBefore(olderThan)
	s.cache.EvictExpired(s.col.Now())
}

// EventsSince returns the ENTER/LEAVE events recorded at or after the given
// sequence number, plus the next sequence number to pass. A consumer that
// fell behind the bounded log receives truncated=true and should treat the
// state as fully dirty.
func (s *System) EventsSince(seq int) (events []model.Event, next int, truncated bool) {
	next = s.eventOff + len(s.eventLog)
	if seq < s.eventOff {
		return s.eventLog, next, true
	}
	return s.eventLog[seq-s.eventOff:], next, false
}

// DeploymentGraph exposes the deployment graph (cells, fragments) built for
// the symbolic baseline, also used by the registry's critical-device
// optimization.
func (s *System) DeploymentGraph() *depgraph.Graph { return s.sm.DeploymentGraph() }

// objectInfos summarizes every known object for the pruning module.
func (s *System) objectInfos() []query.ObjectInfo {
	objs := s.col.KnownObjects()
	out := make([]query.ObjectInfo, 0, len(objs))
	for _, o := range objs {
		last, ok := s.col.LastReading(o)
		if !ok {
			continue
		}
		out = append(out, query.ObjectInfo{Object: o, Reader: last.Reader, LastSeen: last.Time})
	}
	return out
}

// Preprocess runs the particle filter-based preprocessing module for the
// candidate set and returns the filled APtoObjHT table. It consults and
// updates the cache when enabled. Objects are filtered in parallel (see
// Config.Workers); each object's randomness derives from (Seed, object,
// last reading time), so the output is identical at any parallelism.
func (s *System) Preprocess(candidates []model.ObjectID) *anchor.Table {
	tab, _ := s.preprocessCtx(nil, candidates)
	return tab
}

// PreprocessContext is Preprocess with a per-request deadline, checked at
// every per-object task boundary. On expiry the remaining objects are
// skipped — they simply do not appear in the returned table — and a
// *query.DeadlineError is returned alongside the partial table.
func (s *System) PreprocessContext(ctx context.Context, candidates []model.ObjectID) (*anchor.Table, error) {
	return s.preprocessCtx(ctx, candidates)
}

// preprocessCtx is the shared implementation; a nil ctx skips every check
// and is exactly the pre-deadline behavior.
func (s *System) preprocessCtx(ctx context.Context, candidates []model.ObjectID) (*anchor.Table, error) {
	tab := anchor.NewTable()
	now := s.col.Now()
	tr := trace.From(ctx)
	sorted := append([]model.ObjectID(nil), candidates...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	type task struct {
		obj     model.ObjectID
		entries []model.AggregatedReading
		dj      model.ReaderID
		cached  *particle.State
		st      *particle.State
		dist    map[anchor.ID]float64
		snap    time.Duration
	}
	// Phase 1 (serial): gather readings and consult the cache — collector
	// and cache are not safe for concurrent use.
	tasks := make([]task, 0, len(sorted))
	for _, obj := range sorted {
		entries := s.col.Aggregated(obj)
		if len(entries) == 0 {
			continue
		}
		_, dj := s.col.RecentDevices(obj)
		t := task{obj: obj, entries: entries, dj: dj}
		if s.cfg.UseCache {
			if cached, ok := s.cache.Get(obj, dj, now); ok {
				t.cached = cached
			}
		}
		tasks = append(tasks, t)
	}

	// Phase 2 (parallel): run the particle filter per object. Each object's
	// stream is keyed by (Seed, object, last reading time): a later query
	// with new readings filters differently, but re-asking the same question
	// gives the same answer, at any worker count and batch size.
	//
	// Workers claim contiguous batches of the sorted task list from a shared
	// atomic cursor — one atomic add per batch instead of one channel
	// round-trip per object — and step every object in a batch through the
	// same recycled particle pool, so the SoA kernel's flat arrays stay hot
	// in cache from one object to the next. The goroutines live only for the
	// duration of the call; the pools are recycled across calls.
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers < 1 {
		workers = 1
	}
	batch := s.cfg.BatchSize
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	var wg sync.WaitGroup
	var cursor atomic.Int64
	worker := func() {
		defer wg.Done()
		pool := s.pools.Get().(*particle.Pool)
		defer s.pools.Put(pool)
		for {
			end := int(cursor.Add(int64(batch)))
			start := end - batch
			if start >= len(tasks) {
				return
			}
			if end > len(tasks) {
				end = len(tasks)
			}
			for i := start; i < end; i++ {
				if ctx != nil && ctx.Err() != nil {
					// Deadline hit: stop claiming and filtering; skipped
					// objects stay out of the table.
					return
				}
				t := &tasks[i]
				var callStart time.Time
				if tr != nil {
					callStart = time.Now()
				}
				src := rng.Derive(s.cfg.Seed, int64(t.obj), int64(t.entries[len(t.entries)-1].Time))
				if t.cached != nil {
					t.st = t.cached
					s.filter.AdvancePool(pool, src, t.st, t.entries, now)
				} else {
					st, err := s.filter.RunPool(pool, src, t.obj, t.entries, now)
					if err != nil {
						continue
					}
					t.st = st
				}
				// The anchor-snap discretization is the fourth filter stage;
				// histograms are atomic, so observing from workers is safe.
				snapStart := time.Now()
				t.dist = t.st.AnchorDistribution(s.idx)
				t.snap = time.Since(snapStart)
				s.tel.stageSnap.Observe(t.snap.Seconds())
				if tr != nil {
					s.recordStageSpans(tr, callStart, t.obj, t.st.LastRun, t.snap)
				}
			}
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()

	// Phase 3 (serial): commit to the cache and the table.
	for i := range tasks {
		t := &tasks[i]
		if t.st == nil {
			continue
		}
		if t.cached != nil {
			s.stats.FiltersResumed++
			s.tel.runsResumed.Inc()
		} else {
			s.stats.FiltersRun++
			s.tel.runsFull.Inc()
		}
		s.tel.recordTrace(s.shardID, t.st, t.snap, t.cached != nil)
		if s.cfg.UseCache {
			s.cache.Put(t.st, t.dj)
		}
		tab.SetDistribution(t.obj, t.dist)
	}
	if ctx != nil && ctx.Err() != nil {
		return tab, &query.DeadlineError{Stage: "preprocess", Err: ctx.Err()}
	}
	return tab, nil
}

// recordStageSpans reconstructs one filter call's per-stage spans from the
// particle.RunStats the instrumented filter left behind, laid consecutively
// from the call start. The filter kernel itself is never touched — its
// zero-allocation contract stays intact — and untraced calls skip this
// entirely (the tr != nil guard at the call site).
func (s *System) recordStageSpans(tr *trace.Context, callStart time.Time, obj model.ObjectID, rs particle.RunStats, snap time.Duration) {
	attr := trace.Attr{Key: "object", Value: fmt.Sprint(obj)}
	at := callStart
	tr.Add("predict", s.shardID, at, rs.Predict, attr)
	at = at.Add(rs.Predict)
	tr.Add("reweight", s.shardID, at, rs.Reweight, attr)
	at = at.Add(rs.Reweight)
	tr.Add("resample", s.shardID, at, rs.Resample, attr)
	at = at.Add(rs.Resample)
	tr.Add("snap", s.shardID, at, snap, attr)
}

// RangeCandidates applies the query aware optimization for range queries,
// or returns all known objects when pruning is disabled.
func (s *System) RangeCandidates(windows []geom.Rect) []model.ObjectID {
	infos := s.objectInfos()
	if !s.cfg.UsePruning {
		return infosToIDs(infos)
	}
	return s.pruner.RangeCandidates(infos, windows, s.col.Now())
}

// KNNCandidates applies the distance-based pruning for kNN queries, or
// returns all known objects when pruning is disabled.
func (s *System) KNNCandidates(q geom.Point, k int) []model.ObjectID {
	infos := s.objectInfos()
	if !s.cfg.UsePruning {
		return infosToIDs(infos)
	}
	return s.pruner.KNNCandidates(infos, q, k, s.col.Now())
}

func infosToIDs(infos []query.ObjectInfo) []model.ObjectID {
	out := make([]model.ObjectID, len(infos))
	for i, info := range infos {
		out[i] = info.Object
	}
	return out
}

// RangeQuery answers a snapshot indoor range query with the particle
// filter-based method: candidate pruning, preprocessing, then Algorithm 3.
func (s *System) RangeQuery(window geom.Rect) model.ResultSet {
	start := time.Now()
	cands := s.RangeCandidates([]geom.Rect{window})
	tab := s.Preprocess(cands)
	rs := s.RangeQueryOn(tab, window)
	s.observeQuery("range", rangeDetail(window.Min.X, window.Min.Y,
		window.Max.X-window.Min.X, window.Max.Y-window.Min.Y), len(cands), start, nil)
	return rs
}

// RangeQueryOn evaluates Algorithm 3 against an existing table (for batched
// workloads that preprocess once for many windows).
func (s *System) RangeQueryOn(tab *anchor.Table, window geom.Rect) model.ResultSet {
	s.stats.RangeQueries++
	return s.eval.Range(tab, window)
}

// KNNQuery answers a snapshot indoor kNN query with the particle
// filter-based method: distance pruning, preprocessing, then Algorithm 4.
func (s *System) KNNQuery(q geom.Point, k int) model.ResultSet {
	start := time.Now()
	cands := s.KNNCandidates(q, k)
	tab := s.Preprocess(cands)
	rs := s.KNNQueryOn(tab, q, k)
	s.observeQuery("knn", knnDetail(q.X, q.Y, k), len(cands), start, nil)
	return rs
}

// KNNQueryOn evaluates Algorithm 4 against an existing table.
func (s *System) KNNQueryOn(tab *anchor.Table, q geom.Point, k int) model.ResultSet {
	s.stats.KNNQueries++
	return s.eval.KNN(tab, q, k)
}

// ObjectDistribution returns the particle filter's current anchor-point
// distribution for one object (preprocessing just that object).
func (s *System) ObjectDistribution(obj model.ObjectID) map[anchor.ID]float64 {
	tab := s.Preprocess([]model.ObjectID{obj})
	return tab.DistributionOf(obj)
}

// PreprocessAt runs the particle filter for the candidates as of a past
// time stamp t, using only readings at or before t. With KeepHistory enabled
// it reaches arbitrarily far back; otherwise it is limited to the live
// retention window.
func (s *System) PreprocessAt(candidates []model.ObjectID, t model.Time) *anchor.Table {
	tab := anchor.NewTable()
	sorted := append([]model.ObjectID(nil), candidates...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, obj := range sorted {
		entries := s.col.AggregatedUpTo(obj, t)
		if len(entries) == 0 {
			continue
		}
		st, err := s.filter.RunPool(s.histPool, s.src, obj, entries, t)
		if err != nil {
			continue
		}
		tab.SetDistribution(obj, st.AnchorDistribution(s.idx))
	}
	return tab
}

// objectInfosAt summarizes objects as of a past time stamp.
func (s *System) objectInfosAt(t model.Time) []query.ObjectInfo {
	objs := s.col.KnownObjects()
	out := make([]query.ObjectInfo, 0, len(objs))
	for _, o := range objs {
		last, ok := s.col.LastReadingAt(o, t)
		if !ok {
			continue
		}
		out = append(out, query.ObjectInfo{Object: o, Reader: last.Reader, LastSeen: last.Time})
	}
	return out
}

// RangeQueryAt answers a historical indoor range query: the probabilistic
// result as of time t, inferred from readings up to t only.
func (s *System) RangeQueryAt(window geom.Rect, t model.Time) model.ResultSet {
	infos := s.objectInfosAt(t)
	candidates := infosToIDs(infos)
	if s.cfg.UsePruning {
		candidates = s.pruner.RangeCandidates(infos, []geom.Rect{window}, t)
	}
	tab := s.PreprocessAt(candidates, t)
	return s.eval.Range(tab, window)
}

// KNNQueryAt answers a historical indoor kNN query as of time t.
func (s *System) KNNQueryAt(q geom.Point, k int, t model.Time) model.ResultSet {
	infos := s.objectInfosAt(t)
	candidates := infosToIDs(infos)
	if s.cfg.UsePruning {
		candidates = s.pruner.KNNCandidates(infos, q, k, t)
	}
	tab := s.PreprocessAt(candidates, t)
	return s.eval.KNN(tab, q, k)
}

// PTKNNQuery answers the probabilistic threshold kNN query of Yang et al.
// (which the paper's related work defines formally): every object whose
// probability of belonging to the kNN result set is at least threshold,
// estimated by Monte Carlo over the particle filter's distributions.
func (s *System) PTKNNQuery(q geom.Point, k int, threshold float64) []query.PTKNNResult {
	tab := s.Preprocess(s.KNNCandidates(q, k))
	return s.eval.PTKNN(s.src, tab, q, k, threshold, s.cfg.SMTrials)
}

// Evaluator exposes the query evaluation module for advanced use (continuous
// monitors, custom tables).
func (s *System) Evaluator() *query.Evaluator { return s.eval }

// ClosestPairs answers the closest-pairs query (a future-work extension of
// the paper): the k object pairs with the smallest expected network
// distance, over the particle filter's current distributions of all known
// objects.
func (s *System) ClosestPairs(k int) []query.Pair {
	tab := s.Preprocess(infosToIDs(s.objectInfos()))
	return s.eval.ClosestPairs(tab, k)
}

// smSighting converts collector state into a symbolic-model sighting.
func (s *System) smSighting(obj model.ObjectID) (symbolic.Sighting, bool) {
	last, ok := s.col.LastReading(obj)
	if !ok {
		return symbolic.Sighting{}, false
	}
	prev, _ := s.col.RecentDevices(obj)
	return symbolic.Sighting{
		Reader:  last.Reader,
		Time:    last.Time,
		Current: s.col.CurrentlyDetectedBy(obj) != model.NoReader,
		Prev:    prev,
	}, true
}

// SMPreprocess builds the symbolic baseline's anchor-point table for the
// candidates.
func (s *System) SMPreprocess(candidates []model.ObjectID) *anchor.Table {
	tab := anchor.NewTable()
	now := s.col.Now()
	for _, obj := range candidates {
		sight, ok := s.smSighting(obj)
		if !ok {
			continue
		}
		tab.SetDistribution(obj, s.sm.Distribution(sight, now))
	}
	return tab
}

// SMRangeQuery answers a range query with the symbolic model baseline.
func (s *System) SMRangeQuery(window geom.Rect) model.ResultSet {
	tab := s.SMPreprocess(s.RangeCandidates([]geom.Rect{window}))
	return s.eval.Range(tab, window)
}

// SMKNNQuery answers a kNN query with the symbolic model baseline: the
// maximum probability result set of the probabilistic threshold kNN
// formulation, estimated by Monte Carlo.
func (s *System) SMKNNQuery(q geom.Point, k int) []model.ObjectID {
	candidates := s.KNNCandidates(q, k)
	now := s.col.Now()
	dists := make(map[model.ObjectID]map[anchor.ID]float64, len(candidates))
	for _, obj := range candidates {
		sight, ok := s.smSighting(obj)
		if !ok {
			continue
		}
		dists[obj] = s.sm.Distribution(sight, now)
	}
	return s.smKNNFromDists(dists, q, k)
}

// SMKNNQueryOn answers a kNN query with the symbolic baseline against an
// existing SM table (for batched workloads that run SMPreprocess once for
// many query points).
func (s *System) SMKNNQueryOn(tab *anchor.Table, q geom.Point, k int) []model.ObjectID {
	dists := make(map[model.ObjectID]map[anchor.ID]float64)
	for _, obj := range tab.Objects() {
		dists[obj] = tab.DistributionOf(obj)
	}
	return s.smKNNFromDists(dists, q, k)
}

func (s *System) smKNNFromDists(dists map[model.ObjectID]map[anchor.ID]float64, q geom.Point, k int) []model.ObjectID {
	loc := s.g.NearestLocation(q)
	ids, ds := s.idx.AnchorsByNetworkDistance(loc)
	anchorDist := make(map[anchor.ID]float64, len(ids))
	for i, id := range ids {
		anchorDist[id] = ds[i]
	}
	return symbolic.KNNMaxProbSet(s.src, k, dists, anchorDist, s.cfg.SMTrials)
}
