package engine

import (
	"context"

	"repro/internal/anchor"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/query"
)

// Cluster-facing surface (DESIGN.md §17). The multi-node layer in
// internal/cluster runs the same gather → prune → scatter → merge → evaluate
// pipeline as the sharded router, but across processes: the coordinator
// gathers candidate summaries from every peer, prunes once globally (kNN
// pruning needs every object's distance bound), scatters preprocessing to
// the owners, merges the disjoint distribution tables, and evaluates once.
// These accessors expose the pipeline's stages piecewise without widening
// the query API itself.

// ObjectInfos summarizes every known object for the pruning module, in
// ascending object order. It is the gather stage of the distributed query
// pipeline.
func (s *System) ObjectInfos() []query.ObjectInfo { return s.objectInfos() }

// ObjectInfosAt is ObjectInfos as of historical time t.
func (s *System) ObjectInfosAt(t model.Time) []query.ObjectInfo { return s.objectInfosAt(t) }

// PruneRangeContext runs the coordinator-global range pruning stage over
// candidate summaries gathered from many engines (pass-through when the
// optimization module is disabled). Pruning must run once, globally: the
// uncertain-region test is per object, but only the full summary reproduces
// the single-process candidate set bit for bit.
func (s *System) PruneRangeContext(ctx context.Context, infos []query.ObjectInfo, windows []geom.Rect, now model.Time) ([]model.ObjectID, error) {
	if !s.cfg.UsePruning {
		return infoIDs(infos), nil
	}
	return s.pruner.RangeCandidatesContext(ctx, infos, windows, now)
}

// PruneKNNContext is the coordinator-global kNN pruning stage: it needs
// every object's distance bound to find the k-th smallest, which is exactly
// why the distributed pipeline prunes on the coordinator and not per owner.
func (s *System) PruneKNNContext(ctx context.Context, infos []query.ObjectInfo, q geom.Point, k int, now model.Time) ([]model.ObjectID, error) {
	if !s.cfg.UsePruning {
		return infoIDs(infos), nil
	}
	return s.pruner.KNNCandidatesContext(ctx, infos, q, k, now)
}

func infoIDs(infos []query.ObjectInfo) []model.ObjectID {
	out := make([]model.ObjectID, len(infos))
	for i, in := range infos {
		out[i] = in.Object
	}
	return out
}

// NoteTransportDrops accounts n readings dropped by the cluster forwarder
// because their owning peer was unreachable. Keeping the count inside the
// engine's Drops keeps Stats and the mirrored /metrics counters in
// agreement. Callers provide the engine's usual external synchronization.
func (s *System) NoteTransportDrops(n int) {
	s.extraDrops.UnreachableReadings += n
}

// OccupancyFromTable computes per-room expected counts from an
// already-merged distribution table, in the same pinned order as Occupancy.
// The cluster coordinator uses it after merging tables evaluated by peers.
func OccupancyFromTable(idx *anchor.Index, tab *anchor.Table) []RoomOdds {
	return occupancyOn(idx, tab)
}

// ObjectInfos mirrors System.ObjectInfos over the live shards.
func (e *Sharded) ObjectInfos() []query.ObjectInfo {
	e.healthMu.RLock()
	defer e.healthMu.RUnlock()
	return e.gatherInfos()
}

// ObjectInfosAt mirrors System.ObjectInfosAt over the live shards.
func (e *Sharded) ObjectInfosAt(t model.Time) []query.ObjectInfo {
	e.healthMu.RLock()
	defer e.healthMu.RUnlock()
	return e.gatherInfosAt(t)
}

// PreprocessContext is Preprocess under a caller deadline, mirroring
// System.PreprocessContext: on expiry the remaining objects are skipped and
// a *query.DeadlineError is returned alongside the partial table.
func (e *Sharded) PreprocessContext(ctx context.Context, cands []model.ObjectID) (*anchor.Table, error) {
	e.healthMu.RLock()
	defer e.healthMu.RUnlock()
	return e.preprocessCtx(ctx, cands)
}

// PreprocessAt runs the historical (uncached, serial) preprocessing
// pipeline, mirroring System.PreprocessAt.
func (e *Sharded) PreprocessAt(cands []model.ObjectID, t model.Time) *anchor.Table {
	e.healthMu.RLock()
	defer e.healthMu.RUnlock()
	return e.preprocessAt(cands, t)
}

// Evaluator exposes the shared query evaluation module (every shard holds
// an identical one over the same anchor index).
func (e *Sharded) Evaluator() *query.Evaluator { return e.shards[0].eval }

// PruneRangeContext mirrors System.PruneRangeContext. The read lock fences
// the pruner's unhealthy-reader set against a concurrent health refresh.
func (e *Sharded) PruneRangeContext(ctx context.Context, infos []query.ObjectInfo, windows []geom.Rect, now model.Time) ([]model.ObjectID, error) {
	if !e.cfg.UsePruning {
		return infoIDs(infos), nil
	}
	e.healthMu.RLock()
	defer e.healthMu.RUnlock()
	return e.shards[0].pruner.RangeCandidatesContext(ctx, infos, windows, now)
}

// PruneKNNContext mirrors System.PruneKNNContext under the same fence.
func (e *Sharded) PruneKNNContext(ctx context.Context, infos []query.ObjectInfo, q geom.Point, k int, now model.Time) ([]model.ObjectID, error) {
	if !e.cfg.UsePruning {
		return infoIDs(infos), nil
	}
	e.healthMu.RLock()
	defer e.healthMu.RUnlock()
	return e.shards[0].pruner.KNNCandidatesContext(ctx, infos, q, k, now)
}

// NoteTransportDrops mirrors System.NoteTransportDrops; the count merges
// into the router-owned extraDrops under the ingest lock.
func (e *Sharded) NoteTransportDrops(n int) {
	e.ingestMu.Lock()
	e.extraDrops.UnreachableReadings += n
	e.ingestMu.Unlock()
}
