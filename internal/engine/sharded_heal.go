package engine

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/collector"
	"repro/internal/model"
	"repro/internal/wal"
)

// Shard fault isolation (DESIGN.md §16). A durability failure on one shard's
// WAL must not poison the router: the shard is quarantined (bulkhead), its
// objects' readings become typed drops, queries answer from the live shards
// with an explicit partial marker, and a background loop re-opens the shard
// from its snapshot+WAL and replays it back into lockstep.
//
// Per-shard state machine:
//
//	LIVE ──(append/fsync failure after retries)──▶ QUARANTINED
//	QUARANTINED ──(heal attempt starts)──▶ HEALING
//	HEALING ──(replay verified, barrier written)──▶ LIVE
//	HEALING ──(any step fails)──▶ QUARANTINED (backoff, try again)
//
// The state lives in an atomic so query paths read it without ingestMu; every
// transition is made under ingestMu so the durability pipeline observes a
// consistent picture.

const (
	shardLive int32 = iota
	shardQuarantined
	shardHealing
)

// quarInfo is the router's book-keeping for one quarantined shard. Guarded by
// ingestMu.
type quarInfo struct {
	// seq is the last WAL sequence fully present in the shard's log (and
	// applied to its in-memory state) when it was quarantined. The heal
	// replay must land exactly here or the shard does not rejoin.
	seq   uint64
	cause error
	// missed records the flushed seconds applied to the live shards while
	// this one was out. Healing fast-forwards them (with no readings — the
	// shard's readings were dropped) so LEAVE detection and the shard clock
	// match an engine that was never quarantined.
	missed []model.Time
	// splicedThrough counts the missed entries whose LEAVE events have
	// already been merged into the router event log by a heal attempt that
	// later failed its barrier; re-heals must not splice them twice.
	splicedThrough int
	attempts       int
	nextTry        time.Time
}

// QuarantineError marks a query answered without one or more quarantined
// shards: the result is correct over every live shard's objects but is not
// the full population. It mirrors the deadline-partial contract — the HTTP
// layer surfaces it as "partial": true with the degraded shard list.
type QuarantineError struct {
	Shards []int
}

// Error implements the error interface.
func (e *QuarantineError) Error() string {
	return fmt.Sprintf("engine: partial result: %d shard(s) quarantined %v", len(e.Shards), e.Shards)
}

// IsQuarantine reports whether err (or anything it wraps) marks a partial
// result caused by quarantined shards.
func IsQuarantine(err error) (*QuarantineError, bool) {
	var qe *QuarantineError
	if errors.As(err, &qe) {
		return qe, true
	}
	return nil, false
}

// DegradedShards returns the shards currently quarantined or healing, in
// order (nil when all shards are live). Safe without locks.
func (e *Sharded) DegradedShards() []int {
	var out []int
	for i := range e.shardState {
		if e.shardState[i].Load() != shardLive {
			out = append(out, i)
		}
	}
	return out
}

// quarantineErr returns the QuarantineError describing the current degraded
// set, or nil when every shard is live. The all-live path allocates nothing.
func (e *Sharded) quarantineErr() error {
	for i := range e.shardState {
		if e.shardState[i].Load() != shardLive {
			return &QuarantineError{Shards: e.DegradedShards()}
		}
	}
	return nil
}

// liveShards counts shards in the LIVE state.
func (e *Sharded) liveShards() int {
	n := 0
	for i := range e.shardState {
		if e.shardState[i].Load() == shardLive {
			n++
		}
	}
	return n
}

// quarMarkerPath names the durable quarantine marker for shard i. The marker
// carries the quarantine sequence; its presence tells recovery that the
// shard's log is legitimately behind the others (exempt from the lockstep
// cut) rather than a ragged tail that should truncate the live shards.
func quarMarkerPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("quarantine-%04d", i))
}

func writeQuarMarker(fsys wal.FS, dir string, i int, seq uint64) error {
	return wal.WriteFileFS(fsys, quarMarkerPath(dir, i), []byte(strconv.FormatUint(seq, 10)+"\n"), 0o644)
}

func removeQuarMarker(fsys wal.FS, dir string, i int) error {
	err := fsys.Remove(quarMarkerPath(dir, i))
	if err != nil && errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// readQuarMarkers returns the quarantine markers present in dir as
// shard → quarantine seq. Unparsable markers are treated as seq 0 (the shard
// restores from scratch — safe, just slower).
func readQuarMarkers(fsys wal.FS, dir string, n int) (map[int]uint64, error) {
	out := make(map[int]uint64)
	for i := 0; i < n; i++ {
		data, err := wal.ReadFileFS(fsys, quarMarkerPath(dir, i))
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("engine: read quarantine marker for shard %d: %w", i, err)
		}
		seq, perr := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
		if perr != nil {
			log.Printf("engine: unreadable quarantine marker for shard %d (%q); treating as seq 0", i, strings.TrimSpace(string(data)))
			seq = 0
		}
		out[i] = seq
	}
	return out, nil
}

// quarantineShard takes shard i out of the durability pipeline after an
// unrecoverable WAL failure: its log is closed at the last whole record, a
// durable marker written, and the self-heal loop scheduled. Healthy shards
// are untouched. Called under ingestMu.
func (e *Sharded) quarantineShard(i int, cause error) {
	if !e.shardState[i].CompareAndSwap(shardLive, shardQuarantined) {
		return
	}
	var seq uint64
	if l := e.wals[i]; l != nil {
		// Leave the log ending at the last whole record: the final failed
		// attempt may have persisted a partial frame (best effort — recovery's
		// torn-tail repair covers a failure here too).
		l.ResetTail()
		seq = l.LastSeq()
		l.Close()
		e.wals[i] = nil
	}
	e.quar[i] = &quarInfo{seq: seq, cause: cause}
	e.shards[i].shardTel.quarantined.Set(1)
	e.tel.shardQuarantines.Inc()
	if err := writeQuarMarker(e.cfg.Durability.fsys(), e.cfg.Durability.Dir, i, seq); err != nil {
		log.Printf("engine: write quarantine marker for shard %d: %v", i, err)
	}
	log.Printf("engine: shard %d quarantined at seq %d: %v (live shards continue; self-heal scheduled)", i, seq, cause)
	if e.liveShards() == 0 {
		e.failWAL(fmt.Errorf("all %d shards quarantined; last cause: %w", e.n, cause))
		return
	}
	e.startHealer()
	e.kickHealer()
}

// dropQuarantined strips the flushed second's readings destined for non-live
// shards before the WAL appends: they can reach no log, so they become typed
// drops, and the second is recorded as missed so healing can fast-forward it.
// Called under ingestMu.
func (e *Sharded) dropQuarantined(t model.Time, parts [][]model.RawReading) {
	for i := range parts {
		if e.shardState[i].Load() == shardLive {
			continue
		}
		e.extraDrops.QuarantinedReadings += len(parts[i])
		parts[i] = nil
		if q := e.quar[i]; q != nil {
			q.missed = append(q.missed, t)
		}
	}
}

// dropPart is dropQuarantined for a single shard that failed mid-append.
func (e *Sharded) dropPart(i int, t model.Time, parts [][]model.RawReading) {
	e.extraDrops.QuarantinedReadings += len(parts[i])
	parts[i] = nil
	if q := e.quar[i]; q != nil {
		q.missed = append(q.missed, t)
	}
}

// ---------------------------------------------------------------------------
// The self-heal loop.

// startHealer launches the background heal goroutine once. Called under
// ingestMu.
func (e *Sharded) startHealer() {
	if e.healerOn {
		return
	}
	e.healerOn = true
	e.healKick = make(chan struct{}, 1)
	e.healStop = make(chan struct{})
	e.healDone = make(chan struct{})
	go e.healLoop(e.healKick, e.healStop, e.healDone)
}

// kickHealer wakes the heal loop without waiting.
func (e *Sharded) kickHealer() {
	if e.healKick != nil {
		select {
		case e.healKick <- struct{}{}:
		default:
		}
	}
}

// stopHealer shuts the heal goroutine down and waits for it. Must be called
// WITHOUT ingestMu held (the loop takes ingestMu).
func (e *Sharded) stopHealer() {
	e.ingestMu.Lock()
	if !e.healerOn {
		e.ingestMu.Unlock()
		return
	}
	stop, done := e.healStop, e.healDone
	e.ingestMu.Unlock()
	close(stop)
	<-done
	e.ingestMu.Lock()
	e.healerOn = false
	e.ingestMu.Unlock()
}

// healLoop periodically attempts to heal quarantined shards, backing off
// per-shard between failed attempts (healBackoff). It runs until stopped.
func (e *Sharded) healLoop(kick, stop, done chan struct{}) {
	defer close(done)
	base := e.cfg.Durability.healBaseDelay()
	timer := time.NewTimer(base)
	defer timer.Stop()
	for {
		select {
		case <-stop:
			return
		case <-kick:
		case <-timer.C:
		}
		now := time.Now()
		for i := 0; i < e.n; i++ {
			if e.shardState[i].Load() != shardQuarantined {
				continue
			}
			e.ingestMu.Lock()
			q := e.quar[i]
			due := q != nil && !q.nextTry.After(now)
			e.ingestMu.Unlock()
			if due {
				if err := e.tryHeal(i); err != nil {
					log.Printf("engine: heal shard %d: %v", i, err)
				}
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(base)
	}
}

// healBackoff is the wait before attempt n (1-based) of healing one shard:
// exponential from HealBaseDelay up to HealMaxDelay.
func (d DurabilityConfig) healBackoff(attempts int) time.Duration {
	w := d.healBaseDelay()
	cap := d.healMaxDelay()
	for i := 1; i < attempts && w < cap; i++ {
		w *= 2
	}
	if w > cap {
		w = cap
	}
	return w
}

// HealNow synchronously attempts to heal every quarantined shard, ignoring
// the backoff schedule. It returns the first heal failure (nil when nothing
// was quarantined or every attempt succeeded). Tests and operators use it;
// the background loop does the same work on its own clock.
func (e *Sharded) HealNow() error {
	var first error
	for i := 0; i < e.n; i++ {
		if e.shardState[i].Load() != shardQuarantined {
			continue
		}
		if err := e.tryHeal(i); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// tryHeal attempts to bring shard i back into lockstep:
//
//  1. QUARANTINED → HEALING under ingestMu (claims the shard).
//  2. Off-lock disk phase: restore the shard's newest snapshot at or below
//     the quarantine sequence and open its log, collecting the records in
//     between. The recovered log must end exactly at the quarantine sequence
//     — the router barrier position the shard was cut at — or the shard does
//     not rejoin (acked data would silently diverge).
//  3. Under ingestMu again: rebuild the shard's in-memory state (replay +
//     fast-forward of the missed seconds), splice the fast-forward LEAVE
//     events into the router event log, mark the shard LIVE, and write a full
//     snapshot barrier. The barrier must succeed before appends resume: the
//     shard's log has no records for the quarantine window, so only a
//     snapshot at the current sequence makes its next append gapless.
func (e *Sharded) tryHeal(i int) error {
	e.ingestMu.Lock()
	q := e.quar[i]
	if q == nil || e.walErr != nil || !e.shardState[i].CompareAndSwap(shardQuarantined, shardHealing) {
		e.ingestMu.Unlock()
		return nil
	}
	qseq := q.seq
	e.ingestMu.Unlock()

	fail := func(err error) error {
		e.ingestMu.Lock()
		e.shardState[i].CompareAndSwap(shardHealing, shardQuarantined)
		if q := e.quar[i]; q != nil {
			q.attempts++
			q.nextTry = time.Now().Add(e.cfg.Durability.healBackoff(q.attempts))
		}
		e.ingestMu.Unlock()
		return err
	}

	// Phase 2: disk, no router locks held. Live ingestion continues.
	d := e.cfg.Durability
	fsys := d.fsys()
	sdir := shardDir(d.Dir, i)
	snaps, err := wal.ListSnapshotsFS(fsys, sdir)
	if err != nil {
		return fail(err)
	}
	var (
		snapSeq  uint64
		ssnap    shardSnap
		restored bool
	)
	for k := len(snaps) - 1; k >= 0 && !restored; k-- {
		if snaps[k].Seq > qseq {
			continue
		}
		_, payload, rerr := wal.ReadSnapshotFileFS(fsys, snaps[k].Path, e.streamID)
		if rerr != nil {
			var mm *wal.MismatchError
			if errors.As(rerr, &mm) {
				return fail(rerr)
			}
			continue
		}
		var s shardSnap
		if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(&s); derr != nil {
			continue
		}
		snapSeq, ssnap, restored = snaps[k].Seq, s, true
	}
	var batches []wal.Batch
	expected := snapSeq + 1
	newLog, _, err := wal.Open(sdir, wal.Options{StreamID: e.streamID, SegmentBytes: d.SegmentBytes, FS: d.FS},
		func(seq uint64, payload []byte) error {
			if seq <= snapSeq {
				return nil
			}
			if seq != expected {
				return fmt.Errorf("engine: shard %d WAL gap during heal: snapshot covers seq %d but next record is %d (want %d)",
					i, snapSeq, seq, expected)
			}
			b, derr := wal.DecodeBatch(payload)
			if derr != nil {
				return derr
			}
			batches = append(batches, b)
			expected++
			return nil
		})
	if err != nil {
		return fail(err)
	}
	if got := newLog.LastSeq(); got != qseq {
		newLog.Close()
		return fail(fmt.Errorf("engine: shard %d heal: recovered log ends at seq %d, quarantined at %d; refusing to rejoin", i, got, qseq))
	}

	// Phase 3: rejoin under ingestMu.
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	if e.quar[i] != q || e.shardState[i].Load() != shardHealing || e.walErr != nil {
		newLog.Close()
		return nil
	}
	sh := e.shards[i]
	var healEvents []model.Event
	e.shardMu[i].Lock()
	if restored {
		sh.stats = ssnap.Stats
		sh.col.Restore(ssnap.Collector)
		sh.cache.RestoreEntries(ssnap.CacheEntries)
		sh.cache.RestoreStats(ssnap.CacheHits, ssnap.CacheMisses)
	} else {
		// No usable snapshot: the shard restarts from nothing and its whole
		// log replays below.
		sh.stats = Stats{}
		sh.col.Restore(collector.Snapshot{})
		sh.cache.RestoreEntries(nil)
		sh.cache.RestoreStats(0, 0)
	}
	for k := range batches {
		b := &batches[k]
		dropped := sh.col.Drops().Readings()
		sh.col.IngestSecond(b.Time, b.Readings)
		sh.stats.ReadingsIngested += len(b.Readings) - (sh.col.Drops().Readings() - dropped)
		// These seconds pre-date the quarantine; their events are already in
		// the router log. Drain (and re-invalidate the cache) but discard.
		for _, ev := range sh.col.DrainEvents() {
			if ev.Kind == model.Enter {
				sh.cache.Invalidate(ev.Object, ev.Reader)
			}
		}
	}
	// Fast-forward the seconds flushed while the shard was out. The shard's
	// readings for them were dropped, so each advances the clock with an
	// empty second — LEAVE detection fires exactly as it would have live.
	for k, t := range q.missed {
		sh.col.IngestSecond(t, nil)
		evs := sh.col.DrainEvents()
		if k >= q.splicedThrough {
			healEvents = append(healEvents, evs...)
		}
	}
	e.shardMu[i].Unlock()
	if len(healEvents) > 0 {
		e.spliceEvents(healEvents)
		q.splicedThrough = len(q.missed)
	}
	e.wals[i] = newLog
	// The barrier pins the rejoin: the healed log ends at qseq but the next
	// append is walSeq+1, and only a snapshot at walSeq bridges that gap for
	// recovery. The shard stays HEALING (still degraded to lock-free readers)
	// until the barrier is durable — flipping LIVE first would let a reader
	// observe a rejoin that then reverts. If it fails, the shard goes back to
	// quarantine untouched on disk and a later attempt retries.
	e.rejoining = i
	berr := e.writeSnapshots()
	e.rejoining = -1
	if berr != nil {
		e.shardState[i].Store(shardQuarantined)
		newLog.Close()
		e.wals[i] = nil
		q.attempts++
		q.nextTry = time.Now().Add(e.cfg.Durability.healBackoff(q.attempts))
		return fmt.Errorf("engine: shard %d heal: rejoin barrier failed: %w", i, berr)
	}
	e.shardState[i].Store(shardLive)
	if err := removeQuarMarker(fsys, d.Dir, i); err != nil {
		// The stale marker is harmless: recovery detects a marker whose shard
		// has a snapshot at the chosen barrier and treats it as live.
		log.Printf("engine: remove quarantine marker for shard %d: %v", i, err)
	}
	e.quar[i] = nil
	sh.shardTel.quarantined.Set(0)
	e.tel.shardHeals.Inc()
	log.Printf("engine: shard %d healed: rejoined at seq %d after %d missed seconds", i, e.walSeq, len(q.missed))
	return nil
}

// joinPartial combines a deadline overrun and a quarantine marker into one
// error carrying both typed values (errors.As sees through errors.Join), so
// the HTTP layer can report deadline_stage and degradedShards together.
func joinPartial(derr, qerr error) error {
	switch {
	case derr == nil:
		return qerr
	case qerr == nil:
		return derr
	default:
		return errors.Join(derr, qerr)
	}
}

// spliceEvents merges heal-time LEAVE events into the router event log at
// their (Time, Object) positions — the order an unfaulted engine would have
// recorded them in. Event offsets shift for registry consumers mid-stream;
// EventsSince reports truncation against the adjusted offset as usual.
// Called under ingestMu.
func (e *Sharded) spliceEvents(evs []model.Event) {
	e.eventLog = kMerge([][]model.Event{e.eventLog, evs}, eventLess)
	if len(e.eventLog) > maxEventLog {
		drop := len(e.eventLog) - maxEventLog
		e.eventLog = append(e.eventLog[:0:0], e.eventLog[drop:]...)
		e.eventOff += drop
	}
}
