package engine

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/rfid"
	"repro/internal/sim"
)

// TestRobustToGhostReads injects false positives (multipath ghost reads at
// neighboring readers) and checks that the collector's majority aggregation
// plus the particle filter still produce sane, normalized answers with
// reasonable accuracy.
func TestRobustToGhostReads(t *testing.T) {
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	cfg := DefaultConfig()
	cfg.Seed = 5
	sys := MustNew(plan, dep, cfg)
	sensor := rfid.NewSensor(dep)
	sensor.GhostReadProb = 0.3
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 20
	tc.DwellMin, tc.DwellMax = 2, 8
	world := sim.MustNew(sys.Graph(), sensor, tc, 55)
	for i := 0; i < 250; i++ {
		tm, raws := world.Step()
		sys.Ingest(tm, raws)
	}
	objs := sys.Collector().KnownObjects()
	if len(objs) == 0 {
		t.Fatal("no objects known")
	}
	tab := sys.Preprocess(objs)
	var hits []float64
	for _, obj := range objs {
		if !tab.HasObject(obj) {
			continue
		}
		if total := tab.TotalProbOf(obj); math.Abs(total-1) > 1e-9 {
			t.Errorf("object %d mass %v under ghost reads", obj, total)
		}
		// Localization within 8 m of truth for most objects.
		trueLoc := world.TrueLocation(obj)
		nd := sys.Graph().DistancesFromLocation(trueLoc)
		near := 0.0
		for ap, p := range tab.DistributionOf(obj) {
			if sys.Graph().DistToLocation(trueLoc, nd, sys.AnchorIndex().Anchor(ap).Loc) < 8 {
				near += p
			}
		}
		hits = append(hits, near)
	}
	if m := metrics.Mean(hits); m < 0.5 {
		t.Errorf("mean near-truth mass under ghost reads = %v, want >= 0.5", m)
	}
}

// TestRobustToReaderOutage fails two readers mid-simulation: the system must
// keep answering (objects near dead readers just coast longer) without any
// panics or denormalized output.
func TestRobustToReaderOutage(t *testing.T) {
	plan := floorplan.DefaultOffice()
	dep := rfid.MustDeployUniform(plan, rfid.DefaultReaders, rfid.DefaultActivationRange)
	cfg := DefaultConfig()
	cfg.Seed = 6
	sys := MustNew(plan, dep, cfg)
	sensor := rfid.NewSensor(dep)
	tc := sim.DefaultTraceConfig()
	tc.NumObjects = 20
	tc.DwellMin, tc.DwellMax = 2, 8
	world := sim.MustNew(sys.Graph(), sensor, tc, 66)
	for i := 0; i < 120; i++ {
		tm, raws := world.Step()
		sys.Ingest(tm, raws)
	}
	sensor.SetOffline(model.ReaderID(3), true)
	sensor.SetOffline(model.ReaderID(11), true)
	for i := 0; i < 120; i++ {
		tm, raws := world.Step()
		sys.Ingest(tm, raws)
		for _, r := range raws {
			if r.Reader == 3 || r.Reader == 11 {
				t.Fatalf("reading from offline reader %d", r.Reader)
			}
		}
	}
	tab := sys.Preprocess(sys.Collector().KnownObjects())
	for _, obj := range tab.Objects() {
		if total := tab.TotalProbOf(obj); math.Abs(total-1) > 1e-9 {
			t.Errorf("object %d mass %v after outage", obj, total)
		}
	}
}
